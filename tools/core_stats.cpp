// core_stats — core-density dumper for sizing the engine's
// SeaweedEngineOptions::core_density_cutoff from real traces.
//
// Reads whitespace-separated integer sequences, one per line, from the
// given files (or stdin when none are given), rank-reduces each to the
// strict-LIS permutation the kernels actually multiply, and reports its
// core size / density and identity-run structure. With --kernel each
// sequence is additionally pushed through lis::lis_kernel on an engine at
// the chosen cutoff, dumping the representation-decision counters so an
// operator can see how much of the workload the core-sparse path would
// absorb before flipping the knob in production.
//
// Usage:
//   core_stats [--cutoff D] [--probe-min-n N] [--kernel] [file...]
//
// Output: one line per sequence plus a summary block with density
// percentiles — pick a cutoff a notch above the bulk of your traces'
// densities (e.g. p90) so similar-sequence requests decompose while dense
// outliers skip straight to the SIMD path.

#include <algorithm>
#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "lis/kernel.h"
#include "lis/sequential.h"
#include "monge/core_sparse.h"
#include "monge/engine.h"

namespace {

struct Options {
  double cutoff = 0.25;
  std::int64_t probe_min_n = 64;
  bool kernel = false;
  std::vector<std::string> files;
};

[[noreturn]] void usage_and_exit(const char* argv0) {
  std::cerr << "usage: " << argv0
            << " [--cutoff D] [--probe-min-n N] [--kernel] [file...]\n"
               "  --cutoff D       core_density_cutoff to simulate "
               "(default 0.25; 0 disables)\n"
               "  --probe-min-n N  core_probe_min_n to simulate "
               "(default 64)\n"
               "  --kernel         run each sequence through lis_kernel "
               "and dump the engine's\n"
               "                   representation counters at that cutoff\n"
               "Sequences are whitespace-separated integers, one per "
               "line, from files or stdin.\n";
  std::exit(2);
}

Options parse_args(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--cutoff" && i + 1 < argc) {
      opt.cutoff = std::atof(argv[++i]);
    } else if (arg == "--probe-min-n" && i + 1 < argc) {
      opt.probe_min_n = std::atoll(argv[++i]);
    } else if (arg == "--kernel") {
      opt.kernel = true;
    } else if (arg == "--help" || arg == "-h" || arg.starts_with("--")) {
      usage_and_exit(argv[0]);
    } else {
      opt.files.push_back(arg);
    }
  }
  return opt;
}

void process_stream(std::istream& in, const Options& opt,
                    monge::SeaweedEngine& engine,
                    std::vector<double>& densities) {
  std::string line;
  while (std::getline(in, line)) {
    std::istringstream tokens(line);
    std::vector<std::int64_t> seq;
    std::int64_t v = 0;
    while (tokens >> v) seq.push_back(v);
    if (seq.empty()) continue;

    const auto perm = monge::lis::rank_reduce_strict(seq);
    const auto sparse = monge::CoreSparsePerm::from_dense(perm);
    const auto runs = sparse.identity_runs();
    std::int64_t longest_run = 0;
    for (const auto& run : runs) {
      longest_run = std::max<std::int64_t>(longest_run, run.len);
    }
    densities.push_back(sparse.core_density());

    std::cout << "n=" << sparse.n() << " core=" << sparse.core_size()
              << " density=" << sparse.core_density()
              << " identity_runs=" << runs.size()
              << " longest_run=" << longest_run;
    if (opt.kernel) {
      const auto before = engine.representation_stats();
      const auto kernel = monge::lis::lis_kernel(perm, engine);
      const auto delta = engine.representation_stats() - before;
      std::cout << " lis=" << monge::lis::lis_from_kernel(kernel)
                << " nodes_dense=" << delta.dense_nodes
                << " nodes_core_sparse=" << delta.core_sparse_nodes
                << " blocks_dense=" << delta.blocks_dense
                << " blocks_copied=" << delta.blocks_copied;
    }
    std::cout << "\n";
  }
}

double percentile(std::vector<double>& sorted, double p) {
  if (sorted.empty()) return 0.0;
  const auto idx = static_cast<std::size_t>(
      p * static_cast<double>(sorted.size() - 1) + 0.5);
  return sorted[std::min(idx, sorted.size() - 1)];
}

}  // namespace

int main(int argc, char** argv) {
  const Options opt = parse_args(argc, argv);

  monge::SeaweedEngineOptions engine_opt;
  engine_opt.core_density_cutoff = opt.cutoff;
  engine_opt.core_probe_min_n = opt.probe_min_n;
  monge::SeaweedEngine engine(engine_opt);

  std::vector<double> densities;
  if (opt.files.empty()) {
    process_stream(std::cin, opt, engine, densities);
  } else {
    for (const auto& path : opt.files) {
      std::ifstream in(path);
      if (!in) {
        std::cerr << "core_stats: cannot open " << path << "\n";
        return 1;
      }
      process_stream(in, opt, engine, densities);
    }
  }

  if (densities.empty()) {
    std::cerr << "core_stats: no sequences read\n";
    return 1;
  }
  std::sort(densities.begin(), densities.end());
  std::cout << "---\n"
            << "sequences=" << densities.size()
            << " density_p50=" << percentile(densities, 0.5)
            << " density_p90=" << percentile(densities, 0.9)
            << " density_max=" << densities.back() << "\n"
            << "suggestion: set core_density_cutoff just above the density "
               "of the traffic you want\n"
            << "on the core-sparse path (e.g. p90 of similar-sequence "
               "traces), and leave it\n"
            << "below ~0.5 so dense traffic exits the probe early.\n";
  return 0;
}
