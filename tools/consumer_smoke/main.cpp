// Consumer smoke test: exercises the installed monge package exactly the
// way an external user would — find_package(monge), include the facade and
// the generated version header, run a request per family, self-check.
#include <cstdio>

#include "api/solver.h"
#include "monge/version.h"
#include "util/rng.h"

int main() {
  monge::Rng rng(1);
  monge::Solver solver;

  const std::int64_t n = 256;
  const monge::MultiplyRequest multiply{monge::Perm::random(n, rng),
                                        monge::Perm::random(n, rng)};
  const auto product = solver.solve(multiply);

  const auto lis = solver.solve(monge::LisRequest{
      .seq = {5, 1, 2, 9, 3, 4}, .want_kernel = true});  // LIS 1,2,3,4

  const auto lcs = solver.solve(monge::LcsRequest{
      .s = {1, 2, 3, 4, 5}, .t = {2, 9, 4, 5}});  // LCS 2,4,5

  const bool ok = product.c.is_full_permutation() &&
                  product.c.rows() == n && lis.lis == 4 &&
                  lis.kernel.rows() == 6 && lcs.lcs == 3;
  std::printf("monge %s consumer smoke: product %lldx%lld, lis=%lld, "
              "lcs=%lld -> %s\n",
              monge::kVersionString, static_cast<long long>(product.c.rows()),
              static_cast<long long>(product.c.cols()),
              static_cast<long long>(lis.lis),
              static_cast<long long>(lcs.lcs), ok ? "OK" : "FAIL");
  return ok ? 0 : 1;
}
