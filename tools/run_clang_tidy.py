#!/usr/bin/env python3
"""Parallel clang-tidy driver for the monge repository.

Runs the repo's curated .clang-tidy configuration over the translation
units recorded in compile_commands.json, in parallel, and exits non-zero
if any diagnostic is emitted (all warnings are promoted to errors, so a
"clean" run is genuinely diagnostic-free).

CI is the gating consumer: the static-analysis job holds src/ warning
clean against a pinned clang-tidy. Locally the script does the same
thing with whatever clang-tidy is installed:

    cmake -B build -S .                # exports compile_commands.json
    python3 tools/run_clang_tidy.py -p build

Useful modes:
    python3 tools/run_clang_tidy.py -p build src/monge/engine.cpp
        Lint specific files only.
    python3 tools/run_clang_tidy.py -p build --diff origin/main
        Lint only files changed relative to a git ref — fast
        pre-commit loop.
    CLANG_TIDY=clang-tidy-18 python3 tools/run_clang_tidy.py -p build
        Pin the binary explicitly (otherwise newest found wins).

No third-party Python dependencies; stdlib only.
"""

from __future__ import annotations

import argparse
import json
import multiprocessing
import os
import shutil
import subprocess
import sys
from concurrent.futures import ThreadPoolExecutor
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent

# Newest first; CI pins one of these via apt, developers get whatever
# their distro ships. $CLANG_TIDY overrides the whole chain.
CANDIDATE_BINARIES = [
    "clang-tidy-19",
    "clang-tidy-18",
    "clang-tidy-17",
    "clang-tidy-16",
    "clang-tidy-15",
    "clang-tidy-14",
    "clang-tidy",
]


def find_clang_tidy() -> str | None:
    env = os.environ.get("CLANG_TIDY")
    if env:
        found = shutil.which(env)
        if not found:
            sys.stderr.write(f"error: $CLANG_TIDY={env!r} is not executable\n")
            sys.exit(2)
        return found
    for name in CANDIDATE_BINARIES:
        found = shutil.which(name)
        if found:
            return found
    return None


def load_compile_commands(build_dir: Path) -> list[dict]:
    db = build_dir / "compile_commands.json"
    if not db.is_file():
        sys.stderr.write(
            f"error: {db} not found.\n"
            "Configure first (the top-level CMakeLists.txt sets "
            "CMAKE_EXPORT_COMPILE_COMMANDS):\n"
            f"    cmake -B {build_dir} -S {REPO_ROOT}\n"
        )
        sys.exit(2)
    with db.open() as f:
        return json.load(f)


def changed_files(ref: str) -> set[Path]:
    out = subprocess.run(
        ["git", "diff", "--name-only", ref, "--"],
        cwd=REPO_ROOT,
        check=True,
        capture_output=True,
        text=True,
    ).stdout
    return {(REPO_ROOT / line).resolve() for line in out.splitlines() if line}


def select_translation_units(
    entries: list[dict],
    explicit: list[str],
    diff_ref: str | None,
    include_all: bool,
) -> list[Path]:
    """Pick TUs to lint. Default: gate scope = files under src/."""
    tus = []
    seen = set()
    for entry in entries:
        path = Path(entry["file"])
        if not path.is_absolute():
            path = (Path(entry["directory"]) / path).resolve()
        if path in seen:
            continue
        seen.add(path)
        # Generated TUs (header gate stubs) are compiled with warnings
        # already; tidy on them would double-report every header.
        if "header_gate" in path.parts:
            continue
        tus.append(path)

    if explicit:
        wanted = {(REPO_ROOT / p).resolve() for p in explicit}
        missing = wanted - set(tus)
        for path in sorted(missing):
            sys.stderr.write(f"warning: {path} is not in the compile database\n")
        return sorted(p for p in tus if p in wanted)

    if diff_ref is not None:
        touched = changed_files(diff_ref)
        return sorted(p for p in tus if p in touched)

    if include_all:
        return sorted(tus)
    src = (REPO_ROOT / "src").resolve()
    return sorted(p for p in tus if src in p.parents)


def run_one(binary: str, build_dir: Path, path: Path) -> tuple[Path, int, str]:
    proc = subprocess.run(
        [
            binary,
            "-p",
            str(build_dir),
            "--quiet",
            "--warnings-as-errors=*",
            str(path),
        ],
        capture_output=True,
        text=True,
    )
    # clang-tidy prints a suppression summary on stderr even on clean
    # runs; keep stderr only when the run actually failed.
    output = proc.stdout
    if proc.returncode != 0 and proc.stderr:
        output += proc.stderr
    return path, proc.returncode, output


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "files",
        nargs="*",
        help="specific files to lint (default: every TU under src/)",
    )
    parser.add_argument(
        "-p",
        "--build-dir",
        default="build",
        help="build directory containing compile_commands.json",
    )
    parser.add_argument(
        "--diff",
        metavar="GITREF",
        help="lint only files changed relative to GITREF",
    )
    parser.add_argument(
        "--all",
        action="store_true",
        help="lint every TU in the compile database, not just src/",
    )
    parser.add_argument(
        "-j",
        "--jobs",
        type=int,
        default=max(1, multiprocessing.cpu_count() - 1),
        help="parallel clang-tidy processes (default: cores - 1)",
    )
    args = parser.parse_args()

    binary = find_clang_tidy()
    if binary is None:
        sys.stderr.write(
            "error: no clang-tidy binary found.\n"
            "Install one (e.g. `apt install clang-tidy`) or point "
            "$CLANG_TIDY at it. CI runs a pinned version; see "
            ".github/workflows/ci.yml.\n"
        )
        return 2

    build_dir = Path(args.build_dir).resolve()
    entries = load_compile_commands(build_dir)
    tus = select_translation_units(entries, args.files, args.diff, args.all)
    if not tus:
        print("run_clang_tidy: nothing to lint")
        return 0

    version = subprocess.run(
        [binary, "--version"], capture_output=True, text=True
    ).stdout.strip().splitlines()
    print(f"run_clang_tidy: {binary} ({version[-1] if version else '?'})")
    print(f"run_clang_tidy: {len(tus)} translation units, -j{args.jobs}")

    failures = 0
    with ThreadPoolExecutor(max_workers=args.jobs) as pool:
        for path, code, output in pool.map(
            lambda p: run_one(binary, build_dir, p), tus
        ):
            rel = path.relative_to(REPO_ROOT) if REPO_ROOT in path.parents else path
            if code != 0:
                failures += 1
                print(f"FAIL {rel}")
                sys.stdout.write(output)
            elif output.strip():
                # Shouldn't happen with --warnings-as-errors=*, but don't
                # swallow diagnostics if a tidy version routes differently.
                print(f"note {rel}")
                sys.stdout.write(output)

    if failures:
        print(f"run_clang_tidy: {failures}/{len(tus)} files have diagnostics")
        return 1
    print(f"run_clang_tidy: clean ({len(tus)} files)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
