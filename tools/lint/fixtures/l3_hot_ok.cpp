// L3 positive fixture: an annotated hot function that only works in-place
// over spans / arena carves stays silent, and allocation OUTSIDE hot
// functions is none of this rule's business.
#include <algorithm>
#include <cstdint>
#include <span>
#include <vector>

namespace monge {

struct Arena {
  std::span<std::int32_t> alloc(std::int64_t) { return {}; }
};

// monge-lint: hot
void combine_in_place(std::span<std::int32_t> out, Arena& arena) {
  auto scratch = arena.alloc(static_cast<std::int64_t>(out.size()));
  std::copy(out.begin(), out.end(), scratch.begin());
  for (auto& v : out) v += 1;
}

// Unannotated functions may allocate freely.
std::vector<std::int32_t> cold_setup(std::int64_t n) {
  std::vector<std::int32_t> v;
  v.resize(static_cast<std::size_t>(n));
  return v;
}

}  // namespace monge
