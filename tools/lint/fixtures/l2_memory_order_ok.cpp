// L2 positive fixture: every atomic access names its memory order, and
// look-alike member calls on non-atomic types are not confused for atomics.
#include <atomic>
#include <vector>

namespace monge {

std::atomic<long> counter{0};
std::atomic<bool> flag{false};

long bump() { return counter.fetch_add(1, std::memory_order_relaxed); }

void publish() { flag.store(true, std::memory_order_release); }

bool consume() { return flag.load(std::memory_order_acquire); }

bool swap_in(long want) {
  long expected = 0;
  return counter.compare_exchange_strong(expected, want,
                                         std::memory_order_acq_rel,
                                         std::memory_order_acquire);
}

// Non-atomic receivers with atomic-looking member names stay silent.
struct Table {
  void load(int) {}
  void store(int) {}
  void clear() {}
};

void not_atomics(std::vector<int>& v, Table& t) {
  t.load(1);
  t.store(2);
  t.clear();
  v.clear();
}

}  // namespace monge
