// L4 positive fixture: every configured entry point validates the size
// limit, either directly through a checker or by delegating to a checked
// entry point. Self-test config:
// monge-lint-l4: class=Engine entries=mul,mul_into,mul_raw checkers=check_limit,kEngineMaxN
#include <cstdint>
#include <span>
#include <vector>

namespace monge {

inline constexpr std::int64_t kEngineMaxN = 1 << 30;

struct Engine {
  void mul_into(std::span<const std::int32_t> a, std::span<std::int32_t> out);
  std::vector<std::int32_t> mul_raw(std::span<const std::int32_t> a);
  std::vector<std::int32_t> mul(std::span<const std::int32_t> a);
};

void check_limit(std::size_t size);

// Direct check through the named helper.
void Engine::mul_into(std::span<const std::int32_t> a,
                      std::span<std::int32_t> out) {
  check_limit(a.size());
  (void)out;
}

// Direct check against the named constant.
std::vector<std::int32_t> Engine::mul_raw(std::span<const std::int32_t> a) {
  if (static_cast<std::int64_t>(a.size()) > kEngineMaxN) return {};
  std::vector<std::int32_t> out(a.size());
  mul_into(a, out);
  return out;
}

// Checked by delegation: calls mul_into, which checks.
std::vector<std::int32_t> Engine::mul(std::span<const std::int32_t> a) {
  std::vector<std::int32_t> out(a.size());
  mul_into(a, out);
  return out;
}

}  // namespace monge
