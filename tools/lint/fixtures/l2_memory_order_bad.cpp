// L2 negative fixture: implicit seq_cst accesses must fire.
#include <atomic>

namespace monge {

std::atomic<long> counter{0};
std::atomic<bool> flag{false};

long bump_implicit() { return counter.fetch_add(1); }  // monge-lint-expect: L2

void store_implicit() { flag.store(true); }  // monge-lint-expect: L2

bool load_implicit() { return flag.load(); }  // monge-lint-expect: L2

long increment_operator() { return counter++; }  // monge-lint-expect: L2

void compound_assign() { counter += 4; }  // monge-lint-expect: L2

}  // namespace monge
