// monge-lint-expect: L4  (configured entry point `gone` has no definition)
// L4 negative fixture: an unchecked entry point fires, a wrapper delegating
// to an UNchecked entry point fires too, and a configured name with no
// definition anchors a finding at line 1. Self-test config:
// monge-lint-l4: class=Engine entries=mul,mul_into,gone checkers=check_limit
#include <cstdint>
#include <span>
#include <vector>

namespace monge {

struct Engine {
  void mul_into(std::span<const std::int32_t> a, std::span<std::int32_t> out);
  std::vector<std::int32_t> mul(std::span<const std::int32_t> a);
};

// No size validation anywhere on this path.
void Engine::mul_into(std::span<const std::int32_t> a,  // monge-lint-expect: L4
                      std::span<std::int32_t> out) {
  (void)a;
  (void)out;
}

// Delegates, but to an entry point that never checks — still unguarded.
std::vector<std::int32_t> Engine::mul(std::span<const std::int32_t> a) {  // monge-lint-expect: L4
  std::vector<std::int32_t> out(a.size());
  mul_into(a, out);
  return out;
}

}  // namespace monge
