// L1 positive fixture: every throw is a taxonomy type (or a rethrow), so
// the rule must stay silent.
#include <string>

namespace monge {

struct Error {};
struct InvalidRequestError : Error {};
struct CodecError : Error {};

void validate(int n) {
  if (n < 0) throw InvalidRequestError{};
  if (n > 100) throw monge::CodecError{};
}

void rethrow_current() {
  try {
    validate(-1);
  } catch (...) {
    throw;  // bare rethrow is always fine — the original was checked
  }
}

// The word throw in a comment or a string must not fire either:
// "throw std::runtime_error" is what we are preventing.
const char* doc() { return "never throw std::logic_error here"; }

}  // namespace monge
