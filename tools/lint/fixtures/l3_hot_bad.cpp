// L3 negative fixture: allocating constructs inside a hot-annotated
// function must fire — one finding per construct.
#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

namespace monge {

// monge-lint: hot
void hot_but_allocating(std::span<std::int32_t> out) {
  std::vector<std::int32_t> tmp(out.size());  // monge-lint-expect: L3
  tmp.push_back(7);                           // monge-lint-expect: L3
  auto owned = std::make_unique<int>(5);      // monge-lint-expect: L3
  std::string label("x");                     // monge-lint-expect: L3
  label = std::to_string(out.size());         // monge-lint-expect: L3
  (void)owned;
  (void)label;
}

}  // namespace monge
