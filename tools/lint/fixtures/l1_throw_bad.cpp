// L1 negative fixture: throws outside the monge::Error taxonomy must fire.
#include <stdexcept>
#include <string>

namespace monge {

void bad_runtime(int n) {
  if (n < 0) throw std::runtime_error("negative");  // monge-lint-expect: L1
}

void bad_logic(int n) {
  if (n > 9) throw std::logic_error("too big");  // monge-lint-expect: L1
}

struct HomegrownError {};

void bad_homegrown() {
  throw HomegrownError{};  // monge-lint-expect: L1
}

void bad_literal() {
  throw 42;  // monge-lint-expect: L1
}

}  // namespace monge
