#!/usr/bin/env python3
"""monge-lint: project-specific invariant checks generic tools cannot express.

Four rules, each enforcing a convention the codebase's correctness leans on:

  L1  throw-taxonomy      Everything thrown in src/ is part of the
                          monge::Error taxonomy (util/error.h). The only
                          exempt files are util/check.h and util/error.h
                          themselves (MONGE_CHECK's std::logic_error is the
                          documented carve-out for programming errors).
  L2  explicit-memory-order
                          Every std::atomic load/store/RMW names an explicit
                          std::memory_order — no silent seq_cst. Implicit
                          operator forms (x++, x += k) on declared atomics
                          are flagged too.
  L3  hot-no-alloc        Functions annotated `// monge-lint: hot` must not
                          contain allocating constructs (new, make_unique/
                          make_shared, std::vector/std::string construction,
                          push_back/resize/reserve/..., std::to_string,
                          stringstreams). This is the static half of the
                          engine's zero-steady-state-allocation claim: hot
                          paths carve from the arena instead.
  L4  engine-entry-maxn   Every public SeaweedEngine entry point validates
                          kSeaweedEngineMaxN — directly via the named checker
                          helpers or by delegating to another checked entry
                          point. The rule also fails if a configured entry
                          point disappears, so renames cannot silently drop
                          the guard.

Suppression: append `// monge-lint: ignore(LN)` to the offending line. Each
suppression should carry a rationale comment, mirroring the .clang-tidy
policy.

Driving: by default the file list comes from compile_commands.json (every TU
under src/) unioned with all headers under src/; pass explicit paths to lint
just those. Exit status is 1 iff findings were emitted.

Self-tests: `--self-test` runs every rule against the fixture snippets in
tools/lint/fixtures/ and verifies the exact (line, rule) finding set each
fixture declares via `// monge-lint-expect: LN` markers — positive fixtures
declare none and must stay clean, negative fixtures prove each rule actually
fires.
"""

from __future__ import annotations

import argparse
import json
import re
import sys
from pathlib import Path

# ---------------------------------------------------------------------------
# Project configuration (overridable on the command line for the self-tests).
# ---------------------------------------------------------------------------

# L1: the taxonomy types of util/error.h, plus bare `throw;` rethrows.
ALLOWED_THROW_TYPES = {
    "Error",
    "InvalidRequestError",
    "CodecError",
    "FaultError",
    "SpaceLimitError",
    "OverloadedError",
}
# Files allowed to throw outside the taxonomy: the taxonomy itself and the
# MONGE_CHECK machinery (std::logic_error for programming errors is the
# documented carve-out — see util/error.h).
L1_EXEMPT_SUFFIXES = ("util/check.h", "util/error.h")

# L2: member calls that take an optional memory-order argument.
ATOMIC_MEMBER_CALLS = (
    "load",
    "store",
    "exchange",
    "fetch_add",
    "fetch_sub",
    "fetch_and",
    "fetch_or",
    "fetch_xor",
    "compare_exchange_weak",
    "compare_exchange_strong",
    "test_and_set",
    "clear",
    "wait",
)

# L3: allocating constructs banned inside `// monge-lint: hot` functions.
HOT_BANNED_PATTERNS = [
    (re.compile(r"\bnew\b"), "operator new"),
    (re.compile(r"\bstd::make_unique\b"), "std::make_unique"),
    (re.compile(r"\bstd::make_shared\b"), "std::make_shared"),
    (re.compile(r"\bstd::vector\s*<"), "std::vector construction"),
    (re.compile(r"\bstd::string\b"), "std::string construction"),
    (re.compile(r"\bstd::to_string\b"), "std::to_string"),
    (re.compile(r"\bstd::[io]?stringstream\b"), "stringstream"),
    (re.compile(r"\bstd::ostringstream\b"), "ostringstream"),
    (re.compile(r"\.\s*push_back\s*\("), "push_back"),
    (re.compile(r"\.\s*emplace_back\s*\("), "emplace_back"),
    (re.compile(r"\.\s*emplace\s*\("), "emplace"),
    (re.compile(r"\.\s*resize\s*\("), "resize"),
    (re.compile(r"\.\s*reserve\s*\("), "reserve"),
    (re.compile(r"\.\s*assign\s*\("), "assign"),
    (re.compile(r"\bmalloc\s*\("), "malloc"),
    (re.compile(r"\bcalloc\s*\("), "calloc"),
]

# L4 defaults: the SeaweedEngine public surface (src/monge/engine.cpp). A
# function passes if its body references a checker, or calls another entry
# point (delegation closure computed transitively).
L4_FILE_SUFFIX = "monge/engine.cpp"
L4_CLASS = "SeaweedEngine"
L4_ENTRY_POINTS = [
    "multiply",
    "multiply_raw",
    "multiply_into",
    "multiply_raw_batch",
    "multiply_batch_into",
    "subunit_multiply_raw",
    "subunit_multiply_into",
    "subunit_multiply_raw_batch",
    "subunit_multiply_batch_into",
]
L4_CHECKERS = ["check_size_limit", "check_subunit_shapes", "kSeaweedEngineMaxN"]

HOT_ANNOTATION = "// monge-lint: hot"
IGNORE_RE = re.compile(r"//\s*monge-lint:\s*ignore\((L[1-4])\)")
EXPECT_RE = re.compile(r"//\s*monge-lint-expect:\s*(L[1-4])")


class Finding:
    def __init__(self, path: Path, line: int, rule: str, message: str):
        self.path = path
        self.line = line  # 1-based
        self.rule = rule
        self.message = message

    def __str__(self) -> str:
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


# ---------------------------------------------------------------------------
# Lexing: strip comments and string/char literals while preserving offsets,
# so the rule regexes never fire inside text. Annotations and suppressions
# are collected from the raw source first.
# ---------------------------------------------------------------------------


def strip_comments_and_strings(src: str) -> str:
    """Returns src with comments and string/char literal *contents* replaced
    by spaces (newlines kept), so byte offsets and line numbers survive."""
    out = list(src)
    i, n = 0, len(src)

    def blank(a: int, b: int) -> None:
        for k in range(a, b):
            if out[k] != "\n":
                out[k] = " "

    while i < n:
        c = src[i]
        nxt = src[i + 1] if i + 1 < n else ""
        if c == "/" and nxt == "/":
            j = src.find("\n", i)
            j = n if j < 0 else j
            blank(i, j)
            i = j
        elif c == "/" and nxt == "*":
            j = src.find("*/", i + 2)
            j = n if j < 0 else j + 2
            blank(i, j)
            i = j
        elif c == "R" and src[i : i + 2] == 'R"':
            m = re.match(r'R"([^()\\ ]*)\(', src[i:])
            if not m:
                i += 1
                continue
            close = ")" + m.group(1) + '"'
            j = src.find(close, i + m.end())
            j = n if j < 0 else j + len(close)
            blank(i + 1, j)  # keep the R so identifiers don't merge
            i = j
        elif c == '"' or c == "'":
            # Skip char/string literal with escapes. A lone apostrophe used
            # as a digit separator (1'000'000) never reaches here because it
            # sits between digits — handle that first.
            if c == "'" and i > 0 and src[i - 1].isdigit() and nxt.isdigit():
                i += 1
                continue
            j = i + 1
            while j < n and src[j] != c:
                j = j + 2 if src[j] == "\\" else j + 1
            j = min(j + 1, n)
            blank(i + 1, j - 1)
            i = j
        else:
            i += 1
    return "".join(out)


def line_of(src: str, offset: int) -> int:
    return src.count("\n", 0, offset) + 1


def line_start(src: str, offset: int) -> int:
    return src.rfind("\n", 0, offset) + 1


def match_brace(src: str, open_idx: int) -> int:
    """Index one past the brace matching src[open_idx] == '{' (on stripped
    source, so literals cannot confuse the count)."""
    depth = 0
    for i in range(open_idx, len(src)):
        if src[i] == "{":
            depth += 1
        elif src[i] == "}":
            depth -= 1
            if depth == 0:
                return i + 1
    return len(src)


class SourceFile:
    def __init__(self, path: Path, text: str | None = None):
        self.path = path
        self.raw = text if text is not None else path.read_text()
        self.stripped = strip_comments_and_strings(self.raw)
        self.suppressed: dict[int, set[str]] = {}
        for ln, line in enumerate(self.raw.splitlines(), start=1):
            for m in IGNORE_RE.finditer(line):
                self.suppressed.setdefault(ln, set()).add(m.group(1))

    def is_suppressed(self, line: int, rule: str) -> bool:
        return rule in self.suppressed.get(line, set())


# ---------------------------------------------------------------------------
# L1: throw taxonomy.
# ---------------------------------------------------------------------------

# A bare `throw;` is a rethrow; anything else (identifier or not — `throw 42`
# is just as much a taxonomy violation) captures what follows for the message.
THROW_RE = re.compile(r"\bthrow\b\s*([A-Za-z_:][\w:]*|[^;\s)])?")


def check_l1(sf: SourceFile) -> list[Finding]:
    if str(sf.path).replace("\\", "/").endswith(L1_EXEMPT_SUFFIXES):
        return []
    findings = []
    for m in THROW_RE.finditer(sf.stripped):
        thrown = m.group(1)
        if thrown is None:
            # `throw;` rethrow — fine (the original came through a checked
            # site already).
            continue
        base = thrown.split("::")[-1]
        if base in ALLOWED_THROW_TYPES:
            continue
        ln = line_of(sf.stripped, m.start())
        if sf.is_suppressed(ln, "L1"):
            continue
        findings.append(
            Finding(
                sf.path,
                ln,
                "L1",
                f"throw of `{thrown}` is outside the monge::Error taxonomy "
                "(util/error.h); throw a taxonomy type or route the check "
                "through MONGE_CHECK",
            )
        )
    return findings


# ---------------------------------------------------------------------------
# L2: explicit memory orders.
# ---------------------------------------------------------------------------

ATOMIC_CALL_RE = re.compile(
    r"\.\s*(" + "|".join(ATOMIC_MEMBER_CALLS) + r")\s*\("
)
ATOMIC_DECL_RE = re.compile(r"\bstd::atomic(?:_flag|_bool|_int\w*)?\s*(?:<[^;{}]*?>)?\s+(\w+)")
ATOMIC_IMPLICIT_OPS = ("++", "--", "+=", "-=", "|=", "&=", "^=")


def balanced_args(src: str, open_paren: int) -> str:
    depth = 0
    for i in range(open_paren, len(src)):
        if src[i] == "(":
            depth += 1
        elif src[i] == ")":
            depth -= 1
            if depth == 0:
                return src[open_paren + 1 : i]
    return src[open_paren + 1 :]


def check_l2(sf: SourceFile) -> list[Finding]:
    findings = []
    src = sf.stripped
    # Member-call form. Only fires when the receiver expression mentions an
    # identifier that was declared std::atomic in this file, OR when the call
    # name is unambiguous (fetch_*/compare_exchange_* — nothing else in C++
    # spells those).
    atomics = {m.group(1) for m in ATOMIC_DECL_RE.finditer(src)}
    unambiguous = {
        "fetch_add", "fetch_sub", "fetch_and", "fetch_or", "fetch_xor",
        "compare_exchange_weak", "compare_exchange_strong", "test_and_set",
    }
    for m in ATOMIC_CALL_RE.finditer(src):
        name = m.group(1)
        args = balanced_args(src, m.end() - 1)
        if "memory_order" in args:
            continue
        # Receiver: walk back over the expression before the dot.
        recv = src[line_start(src, m.start()) : m.start()]
        recv_id = re.search(r"(\w+)\s*$", recv)
        receiver_is_atomic = recv_id and recv_id.group(1) in atomics
        if name not in unambiguous and not receiver_is_atomic:
            continue  # e.g. SomeTable.load(...) on a non-atomic type
        if name in ("compare_exchange_weak", "compare_exchange_strong"):
            pass  # two-order form required; absence of memory_order flags it
        ln = line_of(src, m.start())
        if sf.is_suppressed(ln, "L2"):
            continue
        findings.append(
            Finding(
                sf.path,
                ln,
                "L2",
                f"`{name}` without an explicit std::memory_order "
                "(implicit seq_cst); name the order — seq_cst too, if "
                "that is really what the site needs",
            )
        )
    # Implicit operator form on declared atomics: x++, ++x, x += k, ...
    for name in atomics:
        for op in ATOMIC_IMPLICIT_OPS:
            pat = re.compile(
                r"(?:\b" + re.escape(name) + r"\s*" + re.escape(op) + r")|(?:"
                + re.escape(op) + r"\s*" + re.escape(name) + r"\b)"
            )
            for m in pat.finditer(src):
                ln = line_of(src, m.start())
                if sf.is_suppressed(ln, "L2"):
                    continue
                findings.append(
                    Finding(
                        sf.path,
                        ln,
                        "L2",
                        f"implicit seq_cst `{op}` on std::atomic `{name}`; "
                        "use fetch_add/fetch_sub/store with an explicit "
                        "std::memory_order",
                    )
                )
    return findings


# ---------------------------------------------------------------------------
# L3: no allocation in `// monge-lint: hot` functions.
# ---------------------------------------------------------------------------


def hot_regions(sf: SourceFile) -> list[tuple[int, int, str]]:
    """(body_start, body_end, function_name) for each hot annotation."""
    regions = []
    for m in re.finditer(re.escape(HOT_ANNOTATION), sf.raw):
        # The annotated function's body: first '{' after the annotation (the
        # annotation sits directly above the signature by contract).
        open_idx = sf.stripped.find("{", m.end())
        if open_idx < 0:
            continue
        end = match_brace(sf.stripped, open_idx)
        sig = " ".join(sf.stripped[m.end() : open_idx].split())
        name_m = re.search(r"([\w:~]+)\s*\(", sig)
        regions.append((open_idx, end, name_m.group(1) if name_m else "?"))
    return regions


def check_l3(sf: SourceFile) -> list[Finding]:
    findings = []
    for start, end, fn in hot_regions(sf):
        body = sf.stripped[start:end]
        for pat, what in HOT_BANNED_PATTERNS:
            for m in pat.finditer(body):
                ln = line_of(sf.stripped, start + m.start())
                if sf.is_suppressed(ln, "L3"):
                    continue
                findings.append(
                    Finding(
                        sf.path,
                        ln,
                        "L3",
                        f"allocating construct ({what}) inside hot function "
                        f"`{fn}`; hot paths must carve from the arena "
                        "(annotated `// monge-lint: hot`)",
                    )
                )
    return findings


# ---------------------------------------------------------------------------
# L4: engine entry points validate kSeaweedEngineMaxN.
# ---------------------------------------------------------------------------


def function_bodies(sf: SourceFile, cls: str) -> dict[str, str]:
    """Bodies of `cls::name(...) ... { ... }` definitions in this file."""
    bodies: dict[str, str] = {}
    src = sf.stripped
    for m in re.finditer(re.escape(cls) + r"::(~?\w+)\s*\(", src):
        name = m.group(1)
        # Find the body '{' that follows the parameter list (skipping over
        # member initializer lists and specifiers).
        args_end = m.end() - 1
        depth = 0
        i = args_end
        while i < len(src):
            if src[i] == "(":
                depth += 1
            elif src[i] == ")":
                depth -= 1
                if depth == 0:
                    break
            i += 1
        open_idx = src.find("{", i)
        semi = src.find(";", i)
        if open_idx < 0 or (0 <= semi < open_idx):
            continue  # declaration, not a definition
        end = match_brace(src, open_idx)
        bodies[name] = src[open_idx:end]
    return bodies


def check_l4(
    sf: SourceFile,
    cls: str,
    entries: list[str],
    checkers: list[str],
) -> list[Finding]:
    if not str(sf.path).replace("\\", "/").endswith(L4_FILE_SUFFIX) and not entries:
        return []
    bodies = function_bodies(sf, cls)
    checker_re = re.compile("|".join(r"\b" + re.escape(c) + r"\b" for c in checkers))

    # Pass 1: direct checks. Pass 2 (to fixpoint): delegation to a checked
    # entry point (wrappers like multiply_raw -> multiply_into).
    checked: set[str] = set()
    for name in entries:
        if name in bodies and checker_re.search(bodies[name]):
            checked.add(name)
    changed = True
    while changed:
        changed = False
        for name in entries:
            if name in checked or name not in bodies:
                continue
            for other in checked:
                if re.search(r"\b" + re.escape(other) + r"\s*\(", bodies[name]):
                    checked.add(name)
                    changed = True
                    break

    findings = []
    for name in entries:
        if name not in bodies:
            findings.append(
                Finding(
                    sf.path,
                    1,
                    "L4",
                    f"configured entry point `{cls}::{name}` not found — "
                    "update tools/lint/monge_lint.py if the public surface "
                    "changed, so the MaxN guard list cannot rot",
                )
            )
        elif name not in checked:
            # Anchor the finding at the definition.
            dm = re.search(
                re.escape(cls) + r"::" + re.escape(name) + r"\s*\(", sf.stripped
            )
            ln = line_of(sf.stripped, dm.start()) if dm else 1
            if sf.is_suppressed(ln, "L4"):
                continue
            findings.append(
                Finding(
                    sf.path,
                    ln,
                    "L4",
                    f"public entry point `{cls}::{name}` neither validates "
                    "kSeaweedEngineMaxN (via "
                    + "/".join(checkers)
                    + ") nor delegates to a checked entry point",
                )
            )
    return findings


# ---------------------------------------------------------------------------
# Driving.
# ---------------------------------------------------------------------------


def files_from_compile_commands(build_dir: Path, root: Path) -> list[Path]:
    ccj = build_dir / "compile_commands.json"
    files: set[Path] = set()
    if ccj.exists():
        for entry in json.loads(ccj.read_text()):
            p = Path(entry["file"])
            if not p.is_absolute():
                p = Path(entry["directory"]) / p
            p = p.resolve()
            if (root / "src") in p.parents or str(p).startswith(str(root / "src")):
                files.add(p)
    else:
        print(
            f"monge-lint: warning: {ccj} not found; falling back to a glob "
            "of src/ (configure with -DCMAKE_EXPORT_COMPILE_COMMANDS=ON)",
            file=sys.stderr,
        )
        files.update((root / "src").rglob("*.cpp"))
    files.update((root / "src").rglob("*.h"))
    return sorted(files)


def lint_file(path: Path, args: argparse.Namespace) -> list[Finding]:
    sf = SourceFile(path)
    findings: list[Finding] = []
    findings += check_l1(sf)
    findings += check_l2(sf)
    findings += check_l3(sf)
    if str(path).replace("\\", "/").endswith(L4_FILE_SUFFIX):
        findings += check_l4(sf, L4_CLASS, L4_ENTRY_POINTS, L4_CHECKERS)
    return findings


# ---------------------------------------------------------------------------
# Self-tests over tools/lint/fixtures/.
# ---------------------------------------------------------------------------


def fixture_expectations(path: Path) -> list[tuple[int, str]]:
    expects = []
    for ln, line in enumerate(path.read_text().splitlines(), start=1):
        for m in EXPECT_RE.finditer(line):
            expects.append((ln, m.group(1)))
    return sorted(expects)


def self_test(fixture_dir: Path) -> int:
    failures = 0
    fixtures = sorted(fixture_dir.glob("*.cpp")) + sorted(fixture_dir.glob("*.h"))
    if not fixtures:
        print(f"monge-lint: self-test: no fixtures in {fixture_dir}", file=sys.stderr)
        return 1
    rules_fired: set[str] = set()
    for fx in fixtures:
        sf = SourceFile(fx)
        findings: list[Finding] = []
        findings += check_l1(sf)
        findings += check_l2(sf)
        findings += check_l3(sf)
        # Fixture L4 config: a fake `Engine` class with a fake entry list,
        # declared in the fixture itself via a config comment.
        cfg = re.search(
            r"monge-lint-l4:\s*class=(\w+)\s+entries=([\w,]+)\s+checkers=([\w,]+)",
            sf.raw,
        )
        if cfg:
            findings += check_l4(
                sf,
                cfg.group(1),
                cfg.group(2).split(","),
                cfg.group(3).split(","),
            )
        got = sorted((f.line, f.rule) for f in findings)
        want = fixture_expectations(fx)
        rules_fired.update(r for _, r in got)
        if got != want:
            failures += 1
            print(f"monge-lint: self-test FAIL {fx.name}:")
            print(f"  expected: {want}")
            print(f"  got:      {got}")
            for f in findings:
                print(f"    {f}")
    # Every rule must demonstrably fire on at least one negative fixture.
    missing = {"L1", "L2", "L3", "L4"} - rules_fired
    if missing:
        failures += 1
        print(f"monge-lint: self-test FAIL: rules never fired: {sorted(missing)}")
    if failures == 0:
        print(f"monge-lint: self-test OK ({len(fixtures)} fixtures, all rules fired)")
    return 1 if failures else 0


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("paths", nargs="*", type=Path, help="files to lint (default: src/ via compile_commands.json)")
    ap.add_argument("-p", "--build-dir", type=Path, default=Path("build"), help="build dir holding compile_commands.json")
    ap.add_argument("--root", type=Path, default=None, help="repo root (default: parent of this script's dir)")
    ap.add_argument("--self-test", action="store_true", help="run the fixture self-tests and exit")
    ap.add_argument("--list-hot", action="store_true", help="list annotated hot functions and exit")
    args = ap.parse_args()

    root = args.root or Path(__file__).resolve().parent.parent.parent
    if args.self_test:
        return self_test(Path(__file__).resolve().parent / "fixtures")

    files = [p.resolve() for p in args.paths] or files_from_compile_commands(
        args.build_dir if args.build_dir.is_absolute() else root / args.build_dir,
        root,
    )

    if args.list_hot:
        for path in files:
            sf = SourceFile(path)
            for start, _end, fn in hot_regions(sf):
                print(f"{path}:{line_of(sf.stripped, start)}: {fn}")
        return 0

    findings: list[Finding] = []
    seen_engine = False
    for path in files:
        findings += lint_file(path, args)
        seen_engine |= str(path).replace("\\", "/").endswith(L4_FILE_SUFFIX)
    if not seen_engine and not args.paths:
        findings.append(
            Finding(Path(L4_FILE_SUFFIX), 1, "L4", "engine TU missing from lint set")
        )
    for f in findings:
        print(f)
    if findings:
        print(f"monge-lint: {len(findings)} finding(s)", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
