#!/usr/bin/env python3
"""Relative-link checker for the repo's markdown docs.

Scans the top-level *.md files and everything under docs/ for markdown
links `[text](target)` and verifies that every relative target exists in
the working tree. External (http/https/mailto) links and pure #anchors are
skipped — the check must stay hermetic so CI never flakes on the network.

Exit code 0 = all links resolve; 1 = at least one broken link (each one is
printed as file:line: target).
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

# [text](target) with an optional "title"; target captured up to the first
# unescaped closing paren. Inline code spans are stripped first so code
# samples like `foo(bar)` never register as links.
LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
CODE_SPAN_RE = re.compile(r"`[^`]*`")
SKIP_PREFIXES = ("http://", "https://", "mailto:", "#")


def md_files(root: Path) -> list[Path]:
    files = sorted(root.glob("*.md"))
    docs = root / "docs"
    if docs.is_dir():
        files.extend(sorted(docs.rglob("*.md")))
    return files


def check_file(path: Path, root: Path) -> list[str]:
    errors = []
    for lineno, line in enumerate(path.read_text().splitlines(), start=1):
        for match in LINK_RE.finditer(CODE_SPAN_RE.sub("", line)):
            target = match.group(1)
            if target.startswith(SKIP_PREFIXES):
                continue
            # Drop any #anchor suffix; anchor validity is out of scope.
            file_part = target.split("#", 1)[0]
            if not file_part:
                continue
            resolved = (path.parent / file_part).resolve()
            if not resolved.exists():
                rel = path.relative_to(root)
                errors.append(f"{rel}:{lineno}: broken link -> {target}")
    return errors


def main() -> int:
    root = Path(__file__).resolve().parent.parent
    errors: list[str] = []
    checked = 0
    for path in md_files(root):
        errors.extend(check_file(path, root))
        checked += 1
    for err in errors:
        print(err)
    print(f"check_md_links: {checked} files checked, {len(errors)} broken")
    return 1 if errors else 0


if __name__ == "__main__":
    sys.exit(main())
