// Ablation 2: the IMS17-style baseline's accuracy/space/rounds tradeoff in
// eps, on a long-LIS workload (where the (1+eps) guarantee binds).
#include <cstdio>

#include "baselines/ims17.h"
#include "bench_common.h"
#include "lis/sequential.h"
#include "util/table.h"

using namespace monge;

int main() {
  const std::int64_t n = 1 << 13;
  Rng rng(5);
  std::vector<std::int64_t> seq(static_cast<std::size_t>(n));
  for (std::int64_t i = 0; i < n; ++i) seq[static_cast<std::size_t>(i)] = 4 * i;
  for (std::int64_t s = 0; s < n / 5; ++s) {
    std::swap(seq[static_cast<std::size_t>(rng.next_in(0, n - 1))],
              seq[static_cast<std::size_t>(rng.next_in(0, n - 1))]);
  }
  const std::int64_t exact = lis::lis_length(seq);

  std::printf(
      "IMS17-style (1+eps) ablation, near-sorted input, n = %lld, exact "
      "LIS = %lld.\n\n",
      static_cast<long long>(n), static_cast<long long>(exact));
  Table t({"eps", "net K", "estimate", "ratio", "rounds(tree)",
           "rounds(gather)", "table words"});
  for (double eps : {0.5, 0.2, 0.1, 0.05}) {
    baselines::Ims17Options tree;
    tree.eps = eps;
    mpc::Cluster c1(bench::scaled_cluster(n, 0.5));
    const auto rt = baselines::ims17_lis(c1, seq, tree);
    baselines::Ims17Options gather = tree;
    gather.fully_scalable = false;
    mpc::Cluster c2(bench::scaled_cluster(n, 0.5));
    const auto rg = baselines::ims17_lis(c2, seq, gather);
    t.add_row({Table::num(eps, 2), std::to_string(rt.net_size),
               std::to_string(rt.lis_estimate),
               Table::num(static_cast<double>(exact) /
                              static_cast<double>(std::max<std::int64_t>(
                                  1, rt.lis_estimate)),
                          3),
               std::to_string(rt.rounds), std::to_string(rg.rounds),
               std::to_string(rt.table_words)});
  }
  std::printf("%s\n", t.to_string().c_str());
  return 0;
}
