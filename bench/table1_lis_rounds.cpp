// Reproduces Table 1 of the paper: round complexity, scalability and
// exactness of massively-parallel LIS algorithms — with ROUNDS MEASURED in
// the simulator rather than quoted. Rows:
//   [KT10a]-profile   warmup multiply in a two-way merge tree  O(log^2 n)
//   [IMS17] tree      (1+eps)-approx, fully scalable           O(log n)
//   [IMS17] gather    (1+eps)-approx, O(1) rounds, delta<1/4   O(1)
//   [CHS23]-profile   binary split + binary search tree        O(log^3 n)
//   This paper        Theorem 1.3                              O(log n)
#include <cstdio>

#include "baselines/ims17.h"
#include "bench_common.h"
#include "lis/mpc_lis.h"
#include "lis/sequential.h"
#include "util/table.h"

using namespace monge;

namespace {

std::int64_t lis_rounds_with(mpc::Cluster& cluster,
                             const std::vector<std::int64_t>& seq,
                             std::int64_t split_h, std::int64_t fanout) {
  lis::MpcLisOptions opt;
  opt.multiply.split_h = split_h;
  opt.multiply.tree_fanout = fanout;
  const auto res = lis::mpc_lis(cluster, seq, opt);
  MONGE_CHECK(res.lis == lis::lis_length(seq));
  return res.rounds;
}

}  // namespace

int main() {
  std::printf(
      "Table 1 (reproduced, measured): rounds of massively parallel LIS\n"
      "algorithms on random inputs, delta = 0.5. Shape to check: the two\n"
      "polylog baselines grow markedly faster than this paper's O(log n);\n"
      "the IMS17 O(1) gather row stays flat but is approximate and dies\n"
      "(space) for delta >= 1/4-style regimes; this paper matches the\n"
      "fully-scalable IMS17 profile while being exact.\n\n");

  const std::vector<std::int64_t> sizes = {1 << 10, 1 << 12, 1 << 14};
  Table t({"algorithm", "scalability", "exact?", "n=2^10", "n=2^12",
           "n=2^14"});

  const auto paper_h = [](std::int64_t n) {
    return std::max<std::int64_t>(2, ipow_frac(n, 0.05));
  };

  std::vector<std::string> kt10a = {"[KT10a]-profile (warmup tree)",
                                    "delta<1/3", "exact"};
  std::vector<std::string> ims_tree = {"[IMS17] fully-scalable",
                                       "fully-scalable", "(1+eps)"};
  std::vector<std::string> ims_gather = {"[IMS17] O(1)-round", "delta<1/4",
                                         "(1+eps)"};
  std::vector<std::string> chs23 = {"[CHS23]-profile (binary tree)",
                                    "fully-scalable", "exact"};
  std::vector<std::string> ours = {"This paper (Thm 1.3)", "fully-scalable",
                                   "exact"};

  for (std::int64_t n : sizes) {
    const auto seq = bench::random_sequence(n, 42 + static_cast<std::uint64_t>(n));
    // Warmup profile: two-way splits with a flattened descent tree.
    {
      mpc::Cluster c(bench::scaled_cluster(n, 0.5));
      kt10a.push_back(
          std::to_string(lis_rounds_with(c, seq, 2, 4 * paper_h(n))));
    }
    {
      mpc::Cluster c(bench::scaled_cluster(n, 0.5));
      baselines::Ims17Options o;
      o.fully_scalable = true;
      ims_tree.push_back(std::to_string(baselines::ims17_lis(c, seq, o).rounds));
    }
    {
      mpc::Cluster c(bench::scaled_cluster(n, 0.5));
      baselines::Ims17Options o;
      o.fully_scalable = false;
      ims_gather.push_back(
          std::to_string(baselines::ims17_lis(c, seq, o).rounds));
    }
    {
      mpc::Cluster c(bench::scaled_cluster(n, 0.5));
      chs23.push_back(std::to_string(lis_rounds_with(c, seq, 2, 2)));
    }
    {
      mpc::Cluster c(bench::scaled_cluster(n, 0.5));
      ours.push_back(std::to_string(
          lis_rounds_with(c, seq, 4 * paper_h(n), 4 * paper_h(n))));
    }
  }

  t.add_row(kt10a);
  t.add_row(ims_tree);
  t.add_row(ims_gather);
  t.add_row(chs23);
  t.add_row(ours);
  std::printf("%s\n", t.to_string().c_str());
  std::printf(
      "Note: the paper's asymptotic H = n^{(1-delta)/10} is ~2 at these n;\n"
      "the harness uses 4H so the flattened-tree effect is visible at\n"
      "simulation scale (see EXPERIMENTS.md for the discussion).\n");
  return 0;
}
