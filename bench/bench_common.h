// Shared helpers for the table/figure reproduction binaries.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "mpc/cluster.h"
#include "util/rng.h"

namespace monge::bench {

inline mpc::MpcConfig scaled_cluster(std::int64_t n, double delta,
                                     bool strict = false) {
  auto cfg = mpc::MpcConfig::fully_scalable(n, delta, 24.0, strict);
  cfg.threads = 0;
  return cfg;
}

inline std::vector<std::int64_t> random_sequence(std::int64_t n,
                                                 std::uint64_t seed) {
  Rng rng(seed);
  std::vector<std::int64_t> seq(static_cast<std::size_t>(n));
  for (auto& x : seq) x = rng.next_in(0, 1LL << 40);
  return seq;
}

}  // namespace monge::bench
