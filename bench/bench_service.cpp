// Sustained-throughput benchmark for monge::SolverService (api/service.h).
//
// Closed-loop clients replay a mixed multiply/LIS/LCS trace against one
// service instance. A configurable fraction of the trace re-draws from a
// small hot set of requests ("duplicate ratio"), the rest are unique —
// so the run exercises the digest cache and in-flight dedup exactly the
// way repeated traffic would. Reports qps, p50/p99 latency per request
// kind and overall, and the service's own counters (cache hit rate,
// coalesce rate); optionally snapshots everything to a JSON file
// (BENCH_service.json is a committed run of this).
//
// Usage:
//   bench_service [--requests N] [--duplicate-ratio R] [--clients C]
//                 [--workers W] [--queue-depth D] [--cache-capacity K]
//                 [--hot-set H] [--seed S] [--json PATH]
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "api/service.h"
#include "util/rng.h"
#include "util/table.h"

using namespace monge;

namespace {

struct BenchOptions {
  std::int64_t requests = 2000;
  double duplicate_ratio = 0.5;
  int clients = 4;
  unsigned workers = 0;  // 0 = hardware concurrency
  std::size_t queue_depth = 256;
  std::size_t cache_capacity = 1024;
  std::int64_t hot_set = 12;  // distinct requests the duplicates draw from
  std::uint64_t seed = 1;
  const char* json = nullptr;
};

[[noreturn]] void usage_and_exit(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--requests N] [--duplicate-ratio R] [--clients C]"
               " [--workers W] [--queue-depth D] [--cache-capacity K]"
               " [--hot-set H] [--seed S] [--json PATH]\n",
               argv0);
  std::exit(2);
}

BenchOptions parse_args(int argc, char** argv) {
  BenchOptions o;
  for (int i = 1; i < argc; ++i) {
    const auto flag = [&](const char* name) {
      return std::strcmp(argv[i], name) == 0;
    };
    const auto value = [&]() -> const char* {
      if (i + 1 >= argc) usage_and_exit(argv[0]);
      return argv[++i];
    };
    if (flag("--requests")) {
      o.requests = std::atoll(value());
    } else if (flag("--duplicate-ratio")) {
      o.duplicate_ratio = std::atof(value());
    } else if (flag("--clients")) {
      o.clients = std::atoi(value());
    } else if (flag("--workers")) {
      o.workers = static_cast<unsigned>(std::atoi(value()));
    } else if (flag("--queue-depth")) {
      o.queue_depth = static_cast<std::size_t>(std::atoll(value()));
    } else if (flag("--cache-capacity")) {
      o.cache_capacity = static_cast<std::size_t>(std::atoll(value()));
    } else if (flag("--hot-set")) {
      o.hot_set = std::atoll(value());
    } else if (flag("--seed")) {
      o.seed = static_cast<std::uint64_t>(std::atoll(value()));
    } else if (flag("--json")) {
      o.json = value();
    } else {
      usage_and_exit(argv[0]);
    }
  }
  if (o.requests < 1 || o.clients < 1 || o.hot_set < 1 ||
      o.duplicate_ratio < 0.0 || o.duplicate_ratio > 1.0) {
    usage_and_exit(argv[0]);
  }
  return o;
}

std::vector<std::int64_t> random_sequence(std::int64_t n, std::int64_t hi,
                                          Rng& rng) {
  std::vector<std::int64_t> seq(static_cast<std::size_t>(n));
  for (auto& x : seq) x = rng.next_in(0, hi);
  return seq;
}

enum class Kind { kMultiply = 0, kLis = 1, kLcs = 2 };

// One pre-generated request of any kind; the hot set and every unique
// request are drawn from this shape. Payload sizes are deliberately small
// (n = 192/160, 40x48) so the bench measures the service tier — queueing,
// digesting, caching, future plumbing — with solve costs that do not
// drown everything else.
struct TraceRequest {
  Kind kind;
  MultiplyRequest multiply{Perm::identity(1), Perm::identity(1)};
  LisRequest lis;
  LcsRequest lcs;
};

TraceRequest make_request(Kind kind, Rng& rng) {
  TraceRequest r{.kind = kind};
  switch (kind) {
    case Kind::kMultiply:
      r.multiply = {Perm::random(192, rng), Perm::random(192, rng)};
      break;
    case Kind::kLis:
      r.lis = {.seq = random_sequence(160, 1 << 16, rng)};
      break;
    case Kind::kLcs:
      r.lcs = {random_sequence(40, 8, rng), random_sequence(48, 8, rng)};
      break;
  }
  return r;
}

struct LatencyRecorder {
  std::vector<double> by_kind[3];  // microseconds

  void record(Kind kind, double us) {
    by_kind[static_cast<int>(kind)].push_back(us);
  }
};

double percentile(std::vector<double>& v, double p) {
  if (v.empty()) return 0.0;
  std::sort(v.begin(), v.end());
  const auto idx = static_cast<std::size_t>(
      p * static_cast<double>(v.size() - 1) + 0.5);
  return v[std::min(idx, v.size() - 1)];
}

}  // namespace

int main(int argc, char** argv) {
  const BenchOptions bopts = parse_args(argc, argv);

  // Hot set: the requests duplicates re-draw. Round-robin over kinds so
  // every lane sees duplicate traffic.
  Rng setup_rng(bopts.seed);
  std::vector<TraceRequest> hot;
  hot.reserve(static_cast<std::size_t>(bopts.hot_set));
  for (std::int64_t i = 0; i < bopts.hot_set; ++i) {
    hot.push_back(make_request(static_cast<Kind>(i % 3), setup_rng));
  }

  ServiceOptions sopts;
  sopts.workers = bopts.workers;
  sopts.queue_depth = bopts.queue_depth;
  sopts.cache_capacity = bopts.cache_capacity;
  SolverService service(sopts);

  const auto submit_and_wait = [&](const TraceRequest& r) {
    switch (r.kind) {
      case Kind::kMultiply:
        (void)service.submit(r.multiply).get();
        break;
      case Kind::kLis:
        (void)service.submit(r.lis).get();
        break;
      case Kind::kLcs:
        (void)service.submit(r.lcs).get();
        break;
    }
  };

  // Closed-loop clients: each owns a deterministic slice of the trace and
  // issues submit();get() back to back.
  std::vector<LatencyRecorder> recorders(
      static_cast<std::size_t>(bopts.clients));
  std::vector<std::thread> clients;
  const auto wall_start = std::chrono::steady_clock::now();
  for (int tid = 0; tid < bopts.clients; ++tid) {
    clients.emplace_back([&, tid] {
      Rng rng(bopts.seed * 1000003 + static_cast<std::uint64_t>(tid));
      auto& rec = recorders[static_cast<std::size_t>(tid)];
      const std::int64_t share = bopts.requests / bopts.clients +
                                 (tid < bopts.requests % bopts.clients);
      for (std::int64_t i = 0; i < share; ++i) {
        const bool duplicate =
            static_cast<double>(rng.next_below(1u << 30)) /
                static_cast<double>(1u << 30) <
            bopts.duplicate_ratio;
        TraceRequest fresh{.kind = static_cast<Kind>(rng.next_below(3))};
        if (!duplicate) fresh = make_request(fresh.kind, rng);
        const TraceRequest& req =
            duplicate ? hot[rng.next_below(
                            static_cast<std::uint64_t>(hot.size()))]
                      : fresh;
        const auto t0 = std::chrono::steady_clock::now();
        submit_and_wait(req);
        const auto t1 = std::chrono::steady_clock::now();
        rec.record(req.kind,
                   std::chrono::duration<double, std::micro>(t1 - t0).count());
      }
    });
  }
  for (auto& c : clients) c.join();
  const double wall_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    wall_start)
          .count();

  std::vector<double> all;
  std::vector<double> per_kind[3];
  for (auto& rec : recorders) {
    for (int k = 0; k < 3; ++k) {
      per_kind[k].insert(per_kind[k].end(), rec.by_kind[k].begin(),
                         rec.by_kind[k].end());
      all.insert(all.end(), rec.by_kind[k].begin(), rec.by_kind[k].end());
    }
  }
  const ServiceStats stats = service.stats();
  const double qps = static_cast<double>(bopts.requests) / wall_s;
  const double p50 = percentile(all, 0.50);
  const double p99 = percentile(all, 0.99);
  const double hit_rate =
      static_cast<double>(stats.cache_hits) /
      static_cast<double>(std::max<std::int64_t>(stats.submitted, 1));
  const double coalesce_rate =
      static_cast<double>(stats.coalesced) /
      static_cast<double>(std::max<std::int64_t>(stats.submitted, 1));

  std::printf(
      "SolverService sustained throughput: %lld requests, %d clients, "
      "%u workers, duplicate ratio %.2f (hot set %lld)\n\n",
      static_cast<long long>(bopts.requests), bopts.clients,
      service.workers(), bopts.duplicate_ratio,
      static_cast<long long>(bopts.hot_set));
  Table t({"metric", "value"});
  t.add_row({"wall seconds", Table::num(wall_s, 3)});
  t.add_row({"qps", Table::num(qps, 1)});
  t.add_row({"p50 us", Table::num(p50, 1)});
  t.add_row({"p99 us", Table::num(p99, 1)});
  const char* kind_name[3] = {"multiply", "lis", "lcs"};
  for (int k = 0; k < 3; ++k) {
    t.add_row({std::string(kind_name[k]) + " p50 us",
               Table::num(percentile(per_kind[k], 0.50), 1)});
  }
  t.add_row({"cache hit rate", Table::num(hit_rate, 3)});
  t.add_row({"coalesce rate", Table::num(coalesce_rate, 3)});
  t.add_row({"solves", std::to_string(stats.solves)});
  t.add_row({"cache hits", std::to_string(stats.cache_hits)});
  t.add_row({"coalesced", std::to_string(stats.coalesced)});
  t.add_row({"rejected", std::to_string(stats.rejected)});
  std::printf("%s\n", t.to_string().c_str());

  if (bopts.json != nullptr) {
    FILE* f = std::fopen(bopts.json, "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot open %s for writing\n", bopts.json);
      return 1;
    }
    std::fprintf(
        f,
        "{\n"
        "  \"bench\": \"bench_service\",\n"
        "  \"config\": {\n"
        "    \"requests\": %lld,\n"
        "    \"duplicate_ratio\": %.3f,\n"
        "    \"hot_set\": %lld,\n"
        "    \"clients\": %d,\n"
        "    \"workers\": %u,\n"
        "    \"queue_depth\": %zu,\n"
        "    \"cache_capacity\": %zu,\n"
        "    \"seed\": %llu\n"
        "  },\n"
        "  \"metrics\": {\n"
        "    \"wall_seconds\": %.4f,\n"
        "    \"qps\": %.1f,\n"
        "    \"p50_us\": %.1f,\n"
        "    \"p99_us\": %.1f,\n"
        "    \"multiply_p50_us\": %.1f,\n"
        "    \"lis_p50_us\": %.1f,\n"
        "    \"lcs_p50_us\": %.1f,\n"
        "    \"cache_hit_rate\": %.4f,\n"
        "    \"coalesce_rate\": %.4f\n"
        "  },\n"
        "  \"service_stats\": {\n"
        "    \"submitted\": %lld,\n"
        "    \"admitted\": %lld,\n"
        "    \"rejected\": %lld,\n"
        "    \"coalesced\": %lld,\n"
        "    \"cache_hits\": %lld,\n"
        "    \"solves\": %lld,\n"
        "    \"solve_errors\": %lld\n"
        "  }\n"
        "}\n",
        static_cast<long long>(bopts.requests), bopts.duplicate_ratio,
        static_cast<long long>(bopts.hot_set), bopts.clients,
        service.workers(), bopts.queue_depth, bopts.cache_capacity,
        static_cast<unsigned long long>(bopts.seed), wall_s, qps, p50, p99,
        percentile(per_kind[0], 0.50), percentile(per_kind[1], 0.50),
        percentile(per_kind[2], 0.50), hit_rate, coalesce_rate,
        static_cast<long long>(stats.submitted),
        static_cast<long long>(stats.admitted),
        static_cast<long long>(stats.rejected),
        static_cast<long long>(stats.coalesced),
        static_cast<long long>(stats.cache_hits),
        static_cast<long long>(stats.solves),
        static_cast<long long>(stats.solve_errors));
    std::fclose(f);
    std::printf("snapshot written to %s\n", bopts.json);
  }
  return 0;
}
