// Online window-LIS serving benchmark: query::SemiLocalIndex lookups
// against the pre-index Solver flow, which re-runs the seaweed kernel
// machinery for every arriving request and answers through
// lis::kernel_window_lis_batch.
//
// Serving model: queries arrive ONE AT A TIME (the online regime the
// index exists for). The index answers each from the persisted merge tree
// in O(log² n); the re-solve baseline must rebuild the kernel first —
// exactly what a LisRequest{windows} did before the query tier existed.
// Because a full n = 2^14 kernel build per query is ~5 orders of
// magnitude slower than a lookup, the baseline is measured on a subsample
// (--baseline-resolves, reported in the snapshot) and its qps computed
// from the per-query mean; the index side serves every query. The offline
// middle ground — ONE kernel build, then the whole batch through the
// Fenwick sweep — is also reported for context.
//
// Usage:
//   bench_query [--n N] [--queries Q] [--baseline-resolves B] [--seed S]
//               [--json PATH]
// BENCH_query.json is a committed run of this.
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <utility>
#include <vector>

#include "lis/kernel.h"
#include "lis/sequential.h"
#include "query/semilocal_index.h"
#include "util/rng.h"
#include "util/table.h"

using namespace monge;

namespace {

struct BenchOptions {
  std::int64_t n = 1 << 14;
  std::int64_t queries = 2000;
  std::int64_t baseline_resolves = 24;
  std::uint64_t seed = 1;
  const char* json = nullptr;
};

[[noreturn]] void usage_and_exit(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--n N] [--queries Q] [--baseline-resolves B]"
               " [--seed S] [--json PATH]\n",
               argv0);
  std::exit(2);
}

BenchOptions parse_args(int argc, char** argv) {
  BenchOptions o;
  for (int i = 1; i < argc; ++i) {
    const auto flag = [&](const char* name) {
      return std::strcmp(argv[i], name) == 0;
    };
    const auto value = [&]() -> const char* {
      if (i + 1 >= argc) usage_and_exit(argv[0]);
      return argv[++i];
    };
    if (flag("--n")) {
      o.n = std::atoll(value());
    } else if (flag("--queries")) {
      o.queries = std::atoll(value());
    } else if (flag("--baseline-resolves")) {
      o.baseline_resolves = std::atoll(value());
    } else if (flag("--seed")) {
      o.seed = static_cast<std::uint64_t>(std::atoll(value()));
    } else if (flag("--json")) {
      o.json = value();
    } else {
      usage_and_exit(argv[0]);
    }
  }
  if (o.n < 1 || o.queries < 1 || o.baseline_resolves < 1) {
    usage_and_exit(argv[0]);
  }
  return o;
}

double percentile(std::vector<double>& v, double p) {
  if (v.empty()) return 0.0;
  std::sort(v.begin(), v.end());
  const auto idx =
      static_cast<std::size_t>(p * static_cast<double>(v.size() - 1) + 0.5);
  return v[std::min(idx, v.size() - 1)];
}

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

}  // namespace

int main(int argc, char** argv) {
  const BenchOptions o = parse_args(argc, argv);

  Rng rng(o.seed);
  std::vector<std::int64_t> seq(static_cast<std::size_t>(o.n));
  for (auto& x : seq) x = rng.next_in(0, o.n);

  // The query trace: uniform [l, r] spans.
  std::vector<std::pair<std::int64_t, std::int64_t>> windows;
  windows.reserve(static_cast<std::size_t>(o.queries));
  for (std::int64_t q = 0; q < o.queries; ++q) {
    std::int64_t a = rng.next_in(0, o.n - 1);
    std::int64_t b = rng.next_in(0, o.n - 1);
    if (a > b) std::swap(a, b);
    windows.emplace_back(a, b);
  }

  // Build once (timed): this is the cost the index pays up front and the
  // re-solve baseline pays per query.
  const auto build_t0 = std::chrono::steady_clock::now();
  const query::SemiLocalIndex index = query::SemiLocalIndex::from_sequence(seq);
  const double build_s = seconds_since(build_t0);

  // Index serving: every query answered online, individually timed.
  std::vector<double> index_us;
  index_us.reserve(windows.size());
  std::int64_t checksum = 0;
  const auto serve_t0 = std::chrono::steady_clock::now();
  for (const auto& [l, r] : windows) {
    const auto t0 = std::chrono::steady_clock::now();
    checksum += index.window_lis(l, r);
    index_us.push_back(
        std::chrono::duration<double, std::micro>(
            std::chrono::steady_clock::now() - t0)
            .count());
  }
  const double serve_s = seconds_since(serve_t0);
  const double index_qps = static_cast<double>(o.queries) / serve_s;

  // Re-solve baseline: kernel rebuild + single-window sweep per query, on
  // a subsample (mean extrapolates to qps).
  const auto resolves =
      std::min<std::int64_t>(o.baseline_resolves, o.queries);
  std::vector<double> resolve_ms;
  std::int64_t resolve_checksum = 0;
  for (std::int64_t q = 0; q < resolves; ++q) {
    const std::pair<std::int64_t, std::int64_t> one[] = {
        windows[static_cast<std::size_t>(q)]};
    const auto t0 = std::chrono::steady_clock::now();
    const Perm kernel = lis::lis_kernel(lis::rank_reduce_strict(seq));
    resolve_checksum += lis::kernel_window_lis_batch(kernel, one)[0];
    resolve_ms.push_back(
        std::chrono::duration<double, std::milli>(
            std::chrono::steady_clock::now() - t0)
            .count());
  }
  double resolve_mean_ms = 0.0;
  for (const double ms : resolve_ms) resolve_mean_ms += ms;
  resolve_mean_ms /= static_cast<double>(resolves);
  const double resolve_qps = 1000.0 / resolve_mean_ms;

  // Offline middle ground: ONE kernel build amortized over the whole
  // batch, answered by the Fenwick sweep — the best the pre-index flow
  // can do when the batch is known up front.
  const auto offline_t0 = std::chrono::steady_clock::now();
  const Perm offline_kernel = lis::lis_kernel(lis::rank_reduce_strict(seq));
  const auto offline_answers =
      lis::kernel_window_lis_batch(offline_kernel, windows);
  const double offline_s = seconds_since(offline_t0);
  const double offline_qps = static_cast<double>(o.queries) / offline_s;

  // Sanity: all three flows must agree (the test battery pins this; the
  // bench just refuses to report numbers for disagreeing answers).
  std::int64_t offline_checksum = 0;
  for (const auto a : offline_answers) offline_checksum += a;
  if (checksum != offline_checksum) {
    std::fprintf(stderr, "answer mismatch: index %lld vs offline %lld\n",
                 static_cast<long long>(checksum),
                 static_cast<long long>(offline_checksum));
    return 1;
  }
  (void)resolve_checksum;

  const double speedup = index_qps / resolve_qps;
  const double index_p50 = percentile(index_us, 0.50);
  const double index_p99 = percentile(index_us, 0.99);

  std::printf(
      "SemiLocalIndex online serving: n=%lld, %lld queries "
      "(re-solve baseline sampled at %lld)\n\n",
      static_cast<long long>(o.n), static_cast<long long>(o.queries),
      static_cast<long long>(resolves));
  Table t({"metric", "value"});
  t.add_row({"index build ms", Table::num(build_s * 1000.0, 2)});
  t.add_row({"index memory MiB",
             Table::num(static_cast<double>(index.memory_bytes()) /
                            (1024.0 * 1024.0),
                        2)});
  t.add_row({"index qps", Table::num(index_qps, 0)});
  t.add_row({"index p50 us", Table::num(index_p50, 2)});
  t.add_row({"index p99 us", Table::num(index_p99, 2)});
  t.add_row({"re-solve qps", Table::num(resolve_qps, 2)});
  t.add_row({"re-solve mean ms", Table::num(resolve_mean_ms, 2)});
  t.add_row({"offline batch qps", Table::num(offline_qps, 0)});
  t.add_row({"index vs re-solve", Table::num(speedup, 1) + "x"});
  t.add_row({"index vs offline", Table::num(index_qps / offline_qps, 1) + "x"});
  std::printf("%s\n", t.to_string().c_str());

  if (o.json != nullptr) {
    FILE* f = std::fopen(o.json, "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot open %s for writing\n", o.json);
      return 1;
    }
    std::fprintf(
        f,
        "{\n"
        "  \"bench\": \"bench_query\",\n"
        "  \"config\": {\n"
        "    \"n\": %lld,\n"
        "    \"queries\": %lld,\n"
        "    \"baseline_resolves\": %lld,\n"
        "    \"seed\": %llu\n"
        "  },\n"
        "  \"metrics\": {\n"
        "    \"index_build_ms\": %.3f,\n"
        "    \"index_memory_bytes\": %lld,\n"
        "    \"index_qps\": %.1f,\n"
        "    \"index_p50_us\": %.3f,\n"
        "    \"index_p99_us\": %.3f,\n"
        "    \"resolve_qps\": %.3f,\n"
        "    \"resolve_mean_ms\": %.3f,\n"
        "    \"offline_batch_qps\": %.1f,\n"
        "    \"speedup_vs_resolve\": %.1f,\n"
        "    \"speedup_vs_offline_batch\": %.2f\n"
        "  }\n"
        "}\n",
        static_cast<long long>(o.n), static_cast<long long>(o.queries),
        static_cast<long long>(resolves),
        static_cast<unsigned long long>(o.seed), build_s * 1000.0,
        static_cast<long long>(index.memory_bytes()), index_qps, index_p50,
        index_p99, resolve_qps, resolve_mean_ms, offline_qps, speedup,
        index_qps / offline_qps);
    std::fclose(f);
    std::printf("snapshot written to %s\n", o.json);
  }
  return 0;
}
