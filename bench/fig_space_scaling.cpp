// Figure B (fully-scalability): the peak per-machine footprint of a whole
// multiplication stays within the budget s = 24·n^{1−δ}·log n at every
// tested δ, with strict checking enabled. A non-scalable algorithm (gather
// everything on one machine) is shown to break the same budget.
#include <cstdio>

#include "bench_common.h"
#include "core/mpc_multiply.h"
#include "mpc/collectives.h"
#include "util/table.h"

using namespace monge;

int main() {
  std::printf(
      "Peak per-machine words vs (n, delta), strict space checking ON.\n"
      "PASS means the paper's algorithm finished inside s = 24 n^{1-d} lg n;\n"
      "the one-machine gather baseline violates the same budget.\n\n");
  Table t({"n", "delta", "machines", "budget s", "peak words", "paper alg",
           "gather-all"});
  for (std::int64_t n : {1 << 10, 1 << 12}) {
    for (double delta : {0.3, 0.5, 0.7}) {
      Rng rng(static_cast<std::uint64_t>(n) + static_cast<std::uint64_t>(delta * 10));
      const Perm a = Perm::random(n, rng);
      const Perm b = Perm::random(n, rng);

      auto cfg = bench::scaled_cluster(n, delta, /*strict=*/true);
      std::string ours = "PASS";
      std::int64_t peak = 0;
      std::int64_t budget = cfg.space_words;
      std::int64_t machines = cfg.num_machines;
      try {
        mpc::Cluster c(cfg);
        core::MpcMultiplyReport rep;
        (void)core::mpc_unit_monge_multiply(
            c, a, b, core::paper_profile(n, c), &rep);
        peak = rep.max_machine_words;
      } catch (const mpc::SpaceLimitError&) {
        ours = "FAIL";
      }

      std::string gather = "PASS";
      try {
        mpc::Cluster c(cfg);
        std::vector<std::int64_t> data(static_cast<std::size_t>(2 * n), 1);
        auto dv = mpc::DistVector<std::int64_t>::from_host(c, data);
        (void)mpc::gather_to_machine(c, dv, 0);
      } catch (const mpc::SpaceLimitError&) {
        gather = "FAIL (as expected)";
      }

      t.add_row({std::to_string(n), Table::num(delta, 1),
                 std::to_string(machines), std::to_string(budget),
                 std::to_string(peak), ours, gather});
    }
  }
  std::printf("%s\n", t.to_string().c_str());
  return 0;
}
