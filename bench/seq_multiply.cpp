// google-benchmark: the sequential substrate. The arena-backed SeaweedEngine
// vs the legacy per-node-allocating recursion it replaced, engine knob
// sweeps (base-case cutoff, thread scaling), the O(n^3) distribution-matrix
// oracle (crossover is immediate), the steady-ant combine on its own, and
// the monge::Solver facade dispatch overhead vs the direct engine call.
#include <benchmark/benchmark.h>

#include <numeric>

#include "api/solver.h"
#include "monge/core_sparse.h"
#include "monge/distribution.h"
#include "monge/engine.h"
#include "monge/seaweed.h"
#include "monge/steady_ant.h"
#include "monge/steady_ant_simd.h"
#include "monge/subperm.h"
#include "util/rng.h"
#include "util/thread_pool.h"

using namespace monge;

namespace {

// Public API path (routes through the thread-local engine).
void BM_SeaweedMultiply(benchmark::State& state) {
  const std::int64_t n = state.range(0);
  Rng rng(1);
  const Perm a = Perm::random(n, rng);
  const Perm b = Perm::random(n, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(seaweed_multiply(a, b));
  }
  state.SetComplexityN(n);
}
BENCHMARK(BM_SeaweedMultiply)->Range(1 << 8, 1 << 14)->Complexity();

// The seed's textbook recursion (~8 fresh std::vectors per node), kept as
// the baseline the engine is measured against.
void BM_SeaweedReference(benchmark::State& state) {
  const std::int64_t n = state.range(0);
  Rng rng(1);
  const auto a = rng.permutation(n);
  const auto b = rng.permutation(n);
  for (auto _ : state) {
    benchmark::DoNotOptimize(seaweed_multiply_reference_raw(a, b));
  }
  state.SetComplexityN(n);
}
BENCHMARK(BM_SeaweedReference)->Range(1 << 8, 1 << 14)->Complexity();

// Engine with a warm arena and default knobs, sequential.
void BM_SeaweedEngine(benchmark::State& state) {
  const std::int64_t n = state.range(0);
  Rng rng(1);
  const auto a = rng.permutation(n);
  const auto b = rng.permutation(n);
  SeaweedEngine engine;
  std::vector<std::int32_t> out(a.size());
  for (auto _ : state) {
    engine.multiply_into(a, b, out);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetComplexityN(n);
}
BENCHMARK(BM_SeaweedEngine)->Range(1 << 8, 1 << 14)->Complexity();

// Base-case cutoff sweep at fixed n (tuning knob for
// SeaweedEngineOptions::base_case_cutoff).
void BM_SeaweedEngineCutoff(benchmark::State& state) {
  const std::int64_t n = 1 << 14;
  const std::int64_t cutoff = state.range(0);
  Rng rng(1);
  const auto a = rng.permutation(n);
  const auto b = rng.permutation(n);
  SeaweedEngine engine({.base_case_cutoff = cutoff});
  std::vector<std::int32_t> out(a.size());
  for (auto _ : state) {
    engine.multiply_into(a, b, out);
    benchmark::DoNotOptimize(out.data());
  }
}
BENCHMARK(BM_SeaweedEngineCutoff)->RangeMultiplier(2)->Range(1, 128);

// Thread scaling at fixed n. The grain is dropped to n/16 so the fork tree
// is deep enough (16 leaves) to occupy every requested worker — with the
// default grain of 2^13 only the root of a 2^14 problem would fork.
void BM_SeaweedEngineThreads(benchmark::State& state) {
  const std::int64_t n = 1 << 14;
  const auto threads = static_cast<unsigned>(state.range(0));
  Rng rng(1);
  const auto a = rng.permutation(n);
  const auto b = rng.permutation(n);
  ThreadPool pool(threads);
  SeaweedEngine engine(
      {.parallel_grain = n / 16, .pool = threads > 1 ? &pool : nullptr});
  std::vector<std::int32_t> out(a.size());
  for (auto _ : state) {
    engine.multiply_into(a, b, out);
    benchmark::DoNotOptimize(out.data());
  }
}
BENCHMARK(BM_SeaweedEngineThreads)->DenseRange(1, 4)->UseRealTime();

// ---------------------------------------------------------------------------
// Batched engine leaf solves: one recursion level's worth of MPC leaves
// (64 independent G-sized products) as a single multiply_batch_into call
// vs 64 independent multiply_raw calls on an equally warm engine. The
// batch pays one arena sizing and zero per-leaf output allocations.
// ---------------------------------------------------------------------------

struct LeafBatch {
  std::vector<std::int32_t> pa, pb, pc;
  std::vector<PermPairView> views;
  std::vector<std::span<std::int32_t>> outs;
};

LeafBatch make_leaf_batch(std::int64_t g, std::int64_t pairs, Rng& rng) {
  LeafBatch batch;
  batch.pa.reserve(static_cast<std::size_t>(g * pairs));
  batch.pb.reserve(static_cast<std::size_t>(g * pairs));
  batch.pc.resize(static_cast<std::size_t>(g * pairs));
  for (std::int64_t t = 0; t < pairs; ++t) {
    const auto a = rng.permutation(g);
    const auto b = rng.permutation(g);
    batch.pa.insert(batch.pa.end(), a.begin(), a.end());
    batch.pb.insert(batch.pb.end(), b.begin(), b.end());
  }
  for (std::int64_t t = 0; t < pairs; ++t) {
    const auto off = static_cast<std::size_t>(t * g);
    const auto len = static_cast<std::size_t>(g);
    batch.views.push_back(
        {std::span<const std::int32_t>(batch.pa).subspan(off, len),
         std::span<const std::int32_t>(batch.pb).subspan(off, len)});
    batch.outs.push_back(std::span<std::int32_t>(batch.pc).subspan(off, len));
  }
  return batch;
}

void BM_SeaweedEngineLeafBatch(benchmark::State& state) {
  const std::int64_t g = state.range(0);
  const std::int64_t pairs = 64;
  Rng rng(5);
  LeafBatch batch = make_leaf_batch(g, pairs, rng);
  SeaweedEngine engine;
  for (auto _ : state) {
    engine.multiply_batch_into(batch.views, batch.outs);
    benchmark::DoNotOptimize(batch.pc.data());
  }
  state.SetItemsProcessed(state.iterations() * pairs);
}
BENCHMARK(BM_SeaweedEngineLeafBatch)->Arg(64)->Arg(256)->Arg(1024);

// N independent multiply_raw calls on a warm shared engine (the arena is
// already sized; each call still pays its own size-cache lookup and output
// allocation).
void BM_SeaweedEngineLeafSingles(benchmark::State& state) {
  const std::int64_t g = state.range(0);
  const std::int64_t pairs = 64;
  Rng rng(5);
  LeafBatch batch = make_leaf_batch(g, pairs, rng);
  SeaweedEngine engine;
  for (auto _ : state) {
    for (std::int64_t t = 0; t < pairs; ++t) {
      benchmark::DoNotOptimize(engine.multiply_raw(
          batch.views[static_cast<std::size_t>(t)].first,
          batch.views[static_cast<std::size_t>(t)].second));
    }
  }
  state.SetItemsProcessed(state.iterations() * pairs);
}
BENCHMARK(BM_SeaweedEngineLeafSingles)->Arg(64)->Arg(256)->Arg(1024);

// N independent multiply_raw calls, each paying its own arena sizing (a
// fresh engine per call: size-budget recursion, buffer allocation and
// zeroing) — the per-leaf cost shape the batch API removes.
void BM_SeaweedEngineLeafSinglesColdArena(benchmark::State& state) {
  const std::int64_t g = state.range(0);
  const std::int64_t pairs = 64;
  Rng rng(5);
  LeafBatch batch = make_leaf_batch(g, pairs, rng);
  for (auto _ : state) {
    for (std::int64_t t = 0; t < pairs; ++t) {
      SeaweedEngine engine;
      benchmark::DoNotOptimize(engine.multiply_raw(
          batch.views[static_cast<std::size_t>(t)].first,
          batch.views[static_cast<std::size_t>(t)].second));
    }
  }
  state.SetItemsProcessed(state.iterations() * pairs);
}
BENCHMARK(BM_SeaweedEngineLeafSinglesColdArena)->Arg(64)->Arg(256)->Arg(1024);

// Striping the same 64×256 batch across a ThreadPool (flat on a
// single-core host by construction; see ROADMAP).
void BM_SeaweedEngineBatchThreads(benchmark::State& state) {
  const auto threads = static_cast<unsigned>(state.range(0));
  Rng rng(5);
  LeafBatch batch = make_leaf_batch(256, 64, rng);
  ThreadPool pool(threads);
  SeaweedEngine engine({.pool = threads > 1 ? &pool : nullptr});
  for (auto _ : state) {
    engine.multiply_batch_into(batch.views, batch.outs);
    benchmark::DoNotOptimize(batch.pc.data());
  }
}
BENCHMARK(BM_SeaweedEngineBatchThreads)->DenseRange(1, 4)->UseRealTime();

// ---------------------------------------------------------------------------
// Subunit multiplication: the direct in-arena path vs the legacy reduction
// through explicitly padded Perms, on half-density sub-permutations.
// ---------------------------------------------------------------------------

void BM_SubunitDirect(benchmark::State& state) {
  const std::int64_t n = state.range(0);
  Rng rng(9);
  const Perm a = Perm::random_sub(n, n, n / 2, rng);
  const Perm b = Perm::random_sub(n, n, n / 2, rng);
  SeaweedEngine engine;
  for (auto _ : state) {
    benchmark::DoNotOptimize(subunit_multiply(a, b, engine));
  }
  state.SetComplexityN(n);
}
BENCHMARK(BM_SubunitDirect)->Range(1 << 8, 1 << 12)->Complexity();

void BM_SubunitPadded(benchmark::State& state) {
  const std::int64_t n = state.range(0);
  Rng rng(9);
  const Perm a = Perm::random_sub(n, n, n / 2, rng);
  const Perm b = Perm::random_sub(n, n, n / 2, rng);
  SeaweedEngine engine;
  for (auto _ : state) {
    benchmark::DoNotOptimize(subunit_multiply_padded(a, b, engine));
  }
  state.SetComplexityN(n);
}
BENCHMARK(BM_SubunitPadded)->Range(1 << 8, 1 << 12)->Complexity();

// ---------------------------------------------------------------------------
// Batched subunit solves: one LIS-kernel merge level's worth of subunit
// products (32 independent pairs of half-density n×n sub-permutations) as a
// single subunit_multiply_batch_into call vs 32 per-call
// subunit_multiply_into solves on an equally warm engine. The batch pays
// one arena sizing for the level; this is the call shape the level-order
// lis_kernel issues once per merge level. A/B deltas on the single-core
// dev box need interleaved repetitions (see README).
// ---------------------------------------------------------------------------

struct SubunitLevel {
  std::vector<std::vector<std::int32_t>> as, bs;
  std::vector<std::int32_t> out_backing;
  std::vector<SubunitPairView> views;
  std::vector<std::span<std::int32_t>> outs;
};

SubunitLevel make_subunit_level(std::int64_t n, std::int64_t pairs, Rng& rng) {
  SubunitLevel level;
  level.out_backing.resize(static_cast<std::size_t>(n * pairs));
  for (std::int64_t t = 0; t < pairs; ++t) {
    level.as.push_back(Perm::random_sub(n, n, n / 2, rng).row_to_col());
    level.bs.push_back(Perm::random_sub(n, n, n / 2, rng).row_to_col());
  }
  for (std::int64_t t = 0; t < pairs; ++t) {
    const auto i = static_cast<std::size_t>(t);
    level.views.push_back({level.as[i], level.bs[i], n});
    level.outs.push_back(std::span<std::int32_t>(level.out_backing)
                             .subspan(static_cast<std::size_t>(t * n),
                                      static_cast<std::size_t>(n)));
  }
  return level;
}

void BM_SubunitBatchLevel(benchmark::State& state) {
  const std::int64_t n = state.range(0);
  const std::int64_t pairs = 32;
  Rng rng(17);
  SubunitLevel level = make_subunit_level(n, pairs, rng);
  SeaweedEngine engine;
  for (auto _ : state) {
    engine.subunit_multiply_batch_into(level.views, level.outs);
    benchmark::DoNotOptimize(level.out_backing.data());
  }
  state.SetItemsProcessed(state.iterations() * pairs);
}
BENCHMARK(BM_SubunitBatchLevel)->Arg(64)->Arg(256)->Arg(1024);

void BM_SubunitBatchSingles(benchmark::State& state) {
  const std::int64_t n = state.range(0);
  const std::int64_t pairs = 32;
  Rng rng(17);
  SubunitLevel level = make_subunit_level(n, pairs, rng);
  SeaweedEngine engine;
  for (auto _ : state) {
    for (std::int64_t t = 0; t < pairs; ++t) {
      const auto i = static_cast<std::size_t>(t);
      engine.subunit_multiply_into(level.views[i].a, level.views[i].b,
                                   level.views[i].b_cols, level.outs[i]);
    }
    benchmark::DoNotOptimize(level.out_backing.data());
  }
  state.SetItemsProcessed(state.iterations() * pairs);
}
BENCHMARK(BM_SubunitBatchSingles)->Arg(64)->Arg(256)->Arg(1024);

// ---------------------------------------------------------------------------
// Facade dispatch overhead: the same Perm-in/Perm-out full multiply once
// through monge::Solver (request validation + routing + result wrapping)
// and once as the direct engine call the facade delegates to. Results are
// bit-identical by construction; the delta is the cost of the facade —
// an O(1) shape check, the backend switch and the result move (the O(n)
// full-permutation content check is NOT paid twice; the engine's own
// validating entry point does it once). The true delta is sub-noise on
// the 1-CPU dev box, so this A/B needs elevated repetitions:
// --benchmark_repetitions=41 --benchmark_enable_random_interleaving=true,
// compare medians (see README) — the acceptance bar is <= 2%.
// ---------------------------------------------------------------------------

void BM_SolverDispatch(benchmark::State& state) {
  const std::int64_t n = state.range(0);
  Rng rng(1);
  const MultiplyRequest req{Perm::random(n, rng), Perm::random(n, rng)};
  Solver solver;
  for (auto _ : state) {
    benchmark::DoNotOptimize(solver.solve(req));
  }
  state.SetComplexityN(n);
}
BENCHMARK(BM_SolverDispatch)->Range(1 << 8, 1 << 14)->Complexity();

// The delegate BM_SolverDispatch wraps: SeaweedEngine::multiply on an
// equally warm engine (same validation, same output Perm construction).
void BM_SolverDispatchDirect(benchmark::State& state) {
  const std::int64_t n = state.range(0);
  Rng rng(1);
  const Perm a = Perm::random(n, rng);
  const Perm b = Perm::random(n, rng);
  SeaweedEngine engine;
  for (auto _ : state) {
    benchmark::DoNotOptimize(engine.multiply(a, b));
  }
  state.SetComplexityN(n);
}
BENCHMARK(BM_SolverDispatchDirect)->Range(1 << 8, 1 << 14)->Complexity();

// ---------------------------------------------------------------------------
// The representation layer: density-adaptive dispatch vs the dense-only
// oracle across a similarity sweep. Inputs are identity permutations with
// ~n/d rows shuffled inside 64-wide windows (d = 64 → core ratio ~1/64,
// near-identical traffic) down to d = 1 (fully random, the dense regime
// the probe must bail out of cheaply). Arg pair: (d, adaptive 0/1); both
// variants produce bit-identical outputs, the delta is pure dispatch win
// (sparse inputs) or pure probe overhead (dense inputs). Single-CPU dev
// box: compare medians from interleaved repetitions (see README).
// ---------------------------------------------------------------------------

std::vector<std::int32_t> core_ratio_perm(std::int64_t n, std::int64_t denom,
                                          Rng& rng) {
  if (denom == 1) return rng.permutation(n);
  std::vector<std::int32_t> p(static_cast<std::size_t>(n));
  std::iota(p.begin(), p.end(), std::int32_t{0});
  const std::int64_t width = 64;
  const std::int64_t windows = std::max<std::int64_t>(1, n / denom / width);
  for (std::int64_t w = 0; w < windows; ++w) {
    const auto start =
        static_cast<std::int64_t>(rng.next_below(n - width + 1));
    for (std::int64_t i = width - 1; i > 0; --i) {
      std::swap(p[static_cast<std::size_t>(start + i)],
                p[static_cast<std::size_t>(
                    start + static_cast<std::int64_t>(rng.next_below(i + 1)))]);
    }
  }
  return p;
}

void BM_CoreSparseVsDense(benchmark::State& state) {
  const std::int64_t n = 1 << 14;
  const std::int64_t denom = state.range(0);
  const bool adaptive = state.range(1) != 0;
  Rng rng(7);
  const auto a = core_ratio_perm(n, denom, rng);
  const auto b = core_ratio_perm(n, denom, rng);
  SeaweedEngine engine({.core_density_cutoff = adaptive ? 0.25 : 0.0});
  std::vector<std::int32_t> out(a.size());
  for (auto _ : state) {
    engine.multiply_into(a, b, out);
    benchmark::DoNotOptimize(out.data());
  }
  state.counters["core_density_a"] =
      static_cast<double>(core_size_of(a)) / static_cast<double>(n);
}
BENCHMARK(BM_CoreSparseVsDense)
    ->ArgsProduct({{64, 16, 8, 4, 1}, {0, 1}});

void BM_NaiveMultiply(benchmark::State& state) {
  const std::int64_t n = state.range(0);
  Rng rng(1);
  const Perm a = Perm::random(n, rng);
  const Perm b = Perm::random(n, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(multiply_naive(a, b));
  }
  state.SetComplexityN(n);
}
BENCHMARK(BM_NaiveMultiply)->Range(1 << 5, 1 << 8)->Complexity();

// ---------------------------------------------------------------------------
// The full steady-ant combine, scalar vs the widest SIMD path in this
// build: walk (blocked descent) + resolution (mask-select) + col-pack
// scatter, on a warm scratch set. Any row coloring of a full permutation
// is a valid H=2 union, so a random coloring measures the real combine.
// A/B per the bench-noise protocol: interleaved repetitions, compare
// medians (see "Reproducing BENCH_seq_multiply.json" in README).
// ---------------------------------------------------------------------------

struct CombineCase {
  std::vector<std::int32_t> row_pk, col_pk, t, out;
};

CombineCase make_combine_case(std::int64_t n, Rng& rng) {
  CombineCase c;
  const auto rc = rng.permutation(n);
  c.row_pk.resize(static_cast<std::size_t>(n));
  for (std::int64_t r = 0; r < n; ++r) {
    c.row_pk[static_cast<std::size_t>(r)] = static_cast<std::int32_t>(
        (rc[static_cast<std::size_t>(r)] << 1) |
        static_cast<std::int32_t>(rng.next_below(2)));
  }
  c.col_pk.resize(static_cast<std::size_t>(n));
  c.t.resize(static_cast<std::size_t>(n) + 1);
  c.out.resize(static_cast<std::size_t>(n));
  return c;
}

void run_combine_bench(benchmark::State& state, SteadyAntIsa isa) {
  const std::int64_t n = state.range(0);
  Rng rng(2);
  CombineCase c = make_combine_case(n, rng);
  state.SetLabel(steady_ant_isa_name(isa));
  for (auto _ : state) {
    steady_ant_packed_into(isa, c.row_pk, c.col_pk, c.t, c.out);
    benchmark::DoNotOptimize(c.out.data());
  }
  state.SetComplexityN(n);
}

void BM_SteadyAntCombineScalar(benchmark::State& state) {
  run_combine_bench(state, SteadyAntIsa::kScalar);
}
BENCHMARK(BM_SteadyAntCombineScalar)->Range(1 << 10, 1 << 18)->Complexity();

// The widest ISA compiled in AND supported by this host (the dispatched
// default, ignoring MONGE_FORCE_SCALAR so the A/B stays an A/B); the
// label records which path ran.
void BM_SteadyAntCombineSimd(benchmark::State& state) {
  run_combine_bench(state, steady_ant_available_isas().back());
}
BENCHMARK(BM_SteadyAntCombineSimd)->Range(1 << 10, 1 << 18)->Complexity();

void BM_SteadyAnt(benchmark::State& state) {
  const std::int64_t n = state.range(0);
  Rng rng(2);
  std::vector<std::int32_t> rc = rng.permutation(n);
  std::vector<std::uint8_t> color(static_cast<std::size_t>(n));
  for (auto& c : color) c = static_cast<std::uint8_t>(rng.next_below(2));
  // Color split must be row/column consistent for a real combine; for a
  // throughput measurement the raw walk over a random coloring is
  // representative (the ant only reads the arrays).
  for (auto _ : state) {
    benchmark::DoNotOptimize(steady_ant_thresholds(rc, color));
  }
  state.SetComplexityN(n);
}
BENCHMARK(BM_SteadyAnt)->Range(1 << 10, 1 << 18)->Complexity();

}  // namespace

BENCHMARK_MAIN();
