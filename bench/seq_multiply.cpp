// google-benchmark: the sequential substrate. Seaweed O(n log n) vs the
// O(n^3) distribution-matrix oracle (crossover is immediate), plus the
// steady-ant combine on its own.
#include <benchmark/benchmark.h>

#include "monge/distribution.h"
#include "monge/seaweed.h"
#include "monge/steady_ant.h"
#include "util/rng.h"

using namespace monge;

namespace {

void BM_SeaweedMultiply(benchmark::State& state) {
  const std::int64_t n = state.range(0);
  Rng rng(1);
  const Perm a = Perm::random(n, rng);
  const Perm b = Perm::random(n, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(seaweed_multiply(a, b));
  }
  state.SetComplexityN(n);
}
BENCHMARK(BM_SeaweedMultiply)->Range(1 << 8, 1 << 14)->Complexity();

void BM_NaiveMultiply(benchmark::State& state) {
  const std::int64_t n = state.range(0);
  Rng rng(1);
  const Perm a = Perm::random(n, rng);
  const Perm b = Perm::random(n, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(multiply_naive(a, b));
  }
  state.SetComplexityN(n);
}
BENCHMARK(BM_NaiveMultiply)->Range(1 << 5, 1 << 8)->Complexity();

void BM_SteadyAnt(benchmark::State& state) {
  const std::int64_t n = state.range(0);
  Rng rng(2);
  std::vector<std::int32_t> rc = rng.permutation(n);
  std::vector<std::uint8_t> color(static_cast<std::size_t>(n));
  for (auto& c : color) c = static_cast<std::uint8_t>(rng.next_below(2));
  // Color split must be row/column consistent for a real combine; for a
  // throughput measurement the raw walk over a random coloring is
  // representative (the ant only reads the arrays).
  for (auto _ : state) {
    benchmark::DoNotOptimize(steady_ant_thresholds(rc, color));
  }
  state.SetComplexityN(n);
}
BENCHMARK(BM_SteadyAnt)->Range(1 << 10, 1 << 18)->Complexity();

}  // namespace

BENCHMARK_MAIN();
