// google-benchmark: the sequential substrate. The arena-backed SeaweedEngine
// vs the legacy per-node-allocating recursion it replaced, engine knob
// sweeps (base-case cutoff, thread scaling), the O(n^3) distribution-matrix
// oracle (crossover is immediate), plus the steady-ant combine on its own.
#include <benchmark/benchmark.h>

#include "monge/distribution.h"
#include "monge/engine.h"
#include "monge/seaweed.h"
#include "monge/steady_ant.h"
#include "util/rng.h"
#include "util/thread_pool.h"

using namespace monge;

namespace {

// Public API path (routes through the thread-local engine).
void BM_SeaweedMultiply(benchmark::State& state) {
  const std::int64_t n = state.range(0);
  Rng rng(1);
  const Perm a = Perm::random(n, rng);
  const Perm b = Perm::random(n, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(seaweed_multiply(a, b));
  }
  state.SetComplexityN(n);
}
BENCHMARK(BM_SeaweedMultiply)->Range(1 << 8, 1 << 14)->Complexity();

// The seed's textbook recursion (~8 fresh std::vectors per node), kept as
// the baseline the engine is measured against.
void BM_SeaweedReference(benchmark::State& state) {
  const std::int64_t n = state.range(0);
  Rng rng(1);
  const auto a = rng.permutation(n);
  const auto b = rng.permutation(n);
  for (auto _ : state) {
    benchmark::DoNotOptimize(seaweed_multiply_reference_raw(a, b));
  }
  state.SetComplexityN(n);
}
BENCHMARK(BM_SeaweedReference)->Range(1 << 8, 1 << 14)->Complexity();

// Engine with a warm arena and default knobs, sequential.
void BM_SeaweedEngine(benchmark::State& state) {
  const std::int64_t n = state.range(0);
  Rng rng(1);
  const auto a = rng.permutation(n);
  const auto b = rng.permutation(n);
  SeaweedEngine engine;
  std::vector<std::int32_t> out(a.size());
  for (auto _ : state) {
    engine.multiply_into(a, b, out);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetComplexityN(n);
}
BENCHMARK(BM_SeaweedEngine)->Range(1 << 8, 1 << 14)->Complexity();

// Base-case cutoff sweep at fixed n (tuning knob for
// SeaweedEngineOptions::base_case_cutoff).
void BM_SeaweedEngineCutoff(benchmark::State& state) {
  const std::int64_t n = 1 << 14;
  const std::int64_t cutoff = state.range(0);
  Rng rng(1);
  const auto a = rng.permutation(n);
  const auto b = rng.permutation(n);
  SeaweedEngine engine({.base_case_cutoff = cutoff});
  std::vector<std::int32_t> out(a.size());
  for (auto _ : state) {
    engine.multiply_into(a, b, out);
    benchmark::DoNotOptimize(out.data());
  }
}
BENCHMARK(BM_SeaweedEngineCutoff)->RangeMultiplier(2)->Range(1, 128);

// Thread scaling at fixed n. The grain is dropped to n/16 so the fork tree
// is deep enough (16 leaves) to occupy every requested worker — with the
// default grain of 2^13 only the root of a 2^14 problem would fork.
void BM_SeaweedEngineThreads(benchmark::State& state) {
  const std::int64_t n = 1 << 14;
  const auto threads = static_cast<unsigned>(state.range(0));
  Rng rng(1);
  const auto a = rng.permutation(n);
  const auto b = rng.permutation(n);
  ThreadPool pool(threads);
  SeaweedEngine engine(
      {.parallel_grain = n / 16, .pool = threads > 1 ? &pool : nullptr});
  std::vector<std::int32_t> out(a.size());
  for (auto _ : state) {
    engine.multiply_into(a, b, out);
    benchmark::DoNotOptimize(out.data());
  }
}
BENCHMARK(BM_SeaweedEngineThreads)->DenseRange(1, 4)->UseRealTime();

void BM_NaiveMultiply(benchmark::State& state) {
  const std::int64_t n = state.range(0);
  Rng rng(1);
  const Perm a = Perm::random(n, rng);
  const Perm b = Perm::random(n, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(multiply_naive(a, b));
  }
  state.SetComplexityN(n);
}
BENCHMARK(BM_NaiveMultiply)->Range(1 << 5, 1 << 8)->Complexity();

void BM_SteadyAnt(benchmark::State& state) {
  const std::int64_t n = state.range(0);
  Rng rng(2);
  std::vector<std::int32_t> rc = rng.permutation(n);
  std::vector<std::uint8_t> color(static_cast<std::size_t>(n));
  for (auto& c : color) c = static_cast<std::uint8_t>(rng.next_below(2));
  // Color split must be row/column consistent for a real combine; for a
  // throughput measurement the raw walk over a random coloring is
  // representative (the ant only reads the arrays).
  for (auto _ : state) {
    benchmark::DoNotOptimize(steady_ant_thresholds(rc, color));
  }
  state.SetComplexityN(n);
}
BENCHMARK(BM_SteadyAnt)->Range(1 << 10, 1 << 18)->Complexity();

}  // namespace

BENCHMARK_MAIN();
