// Ablation 1: the H = n^{(1−δ)/10} schedule. Sweeping the split arity /
// descent fanout shows the tradeoff the exponent balances: larger H means
// fewer recursion levels (fewer rounds) but more pairwise descents and
// rank-query traffic per combine.
#include <cstdio>

#include "bench_common.h"
#include "core/mpc_multiply.h"
#include "monge/seaweed.h"
#include "util/table.h"

using namespace monge;

int main() {
  const std::int64_t n = 1 << 12;
  Rng rng(17);
  const Perm a = Perm::random(n, rng);
  const Perm b = Perm::random(n, rng);
  const Perm expect = seaweed_multiply(a, b);

  std::printf("Fan-out ablation at n = %lld, delta = 0.5 (measured).\n\n",
              static_cast<long long>(n));
  Table t({"H (=fanout)", "levels", "rounds", "rank queries", "crossed boxes",
           "peak words"});
  for (std::int64_t h : {2, 4, 8, 16, 32}) {
    mpc::Cluster c(bench::scaled_cluster(n, 0.5));
    core::MpcMultiplyOptions opt;
    opt.split_h = h;
    opt.tree_fanout = h;
    core::MpcMultiplyReport rep;
    MONGE_CHECK(core::mpc_unit_monge_multiply(c, a, b, opt, &rep) == expect);
    t.add_row({std::to_string(h), std::to_string(rep.levels),
               std::to_string(rep.rounds), std::to_string(rep.rank_queries),
               std::to_string(rep.crossed_boxes),
               std::to_string(rep.max_machine_words)});
  }
  std::printf("%s\n", t.to_string().c_str());
  std::printf(
      "Rounds shrink with H while query volume grows ~H^2 per line — the\n"
      "paper's (1-delta)/10 exponent keeps the volume inside Õ(n).\n");
  return 0;
}
