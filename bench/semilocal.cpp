// Corollaries 1.3.2/1.3.3: the semi-local LIS kernel answers every window
// query; measured here: kernel build rounds + batched query throughput.
#include <chrono>
#include <cstdio>

#include "bench_common.h"
#include "lis/kernel.h"
#include "lis/mpc_lis.h"
#include "lis/sequential.h"
#include "util/table.h"

using namespace monge;

int main() {
  std::printf(
      "Semi-local LIS (Cor 1.3.2): one kernel, all windows. Checks a\n"
      "sample of windows against patience sorting.\n\n");
  Table t({"n", "kernel rounds", "kernel points", "windows", "query us/win",
           "spot-check"});
  for (std::int64_t n : {1 << 10, 1 << 12}) {
    const auto seq = bench::random_sequence(n, 3 * static_cast<std::uint64_t>(n));
    mpc::Cluster c(bench::scaled_cluster(n, 0.5));
    const auto res = lis::mpc_lis(c, seq);

    Rng rng(9);
    std::vector<std::pair<std::int64_t, std::int64_t>> windows;
    for (int q = 0; q < 2000; ++q) {
      const std::int64_t l = rng.next_in(0, n - 1);
      windows.push_back({l, rng.next_in(l, n - 1)});
    }
    const auto t0 = std::chrono::steady_clock::now();
    const auto ans = lis::kernel_window_lis_batch(res.kernel, windows);
    const auto t1 = std::chrono::steady_clock::now();
    bool ok = true;
    for (std::size_t q = 0; q < windows.size(); q += 97) {
      ok &= ans[q] == lis::lis_window(seq, windows[q].first,
                                      windows[q].second);
    }
    const double us =
        std::chrono::duration<double, std::micro>(t1 - t0).count() /
        static_cast<double>(windows.size());
    t.add_row({std::to_string(n), std::to_string(res.rounds),
               std::to_string(res.kernel.point_count()),
               std::to_string(windows.size()), Table::num(us, 3),
               ok ? "PASS" : "FAIL"});
  }
  std::printf("%s\n", t.to_string().c_str());
  return 0;
}
