// google-benchmark: wall-clock of the applications — sequential patience
// sorting, the sequential kernel, the Hunt–Szymanski LCS, and the whole
// simulated MPC LIS (which pays simulation overhead; the model's metric is
// rounds, reported by the fig_* binaries).
#include <benchmark/benchmark.h>

#include "bench_common.h"
#include "lcs/hunt_szymanski.h"
#include "lis/kernel.h"
#include "lis/mpc_lis.h"
#include "lis/sequential.h"

using namespace monge;

namespace {

void BM_PatienceLis(benchmark::State& state) {
  const auto seq = bench::random_sequence(state.range(0), 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(lis::lis_length(seq));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_PatienceLis)->Range(1 << 10, 1 << 18)->Complexity();

// Level-order builder: one batched subunit engine call per merge level.
void BM_LisKernelSeq(benchmark::State& state) {
  Rng rng(2);
  const auto p = rng.permutation(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(lis::lis_kernel(p));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_LisKernelSeq)->Range(1 << 8, 1 << 13)->Complexity();

// The pre-batching depth-first recursion (one engine call per merge), kept
// as the per-merge baseline. A/B against BM_LisKernelSeq needs interleaved
// repetitions on the single-core dev box (see README).
void BM_LisKernelPerMerge(benchmark::State& state) {
  Rng rng(2);
  const auto p = rng.permutation(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(lis::lis_kernel_reference(p));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_LisKernelPerMerge)->Range(1 << 8, 1 << 13)->Complexity();

void BM_MpcLisSimulated(benchmark::State& state) {
  const std::int64_t n = state.range(0);
  const auto seq = bench::random_sequence(n, 3);
  for (auto _ : state) {
    mpc::Cluster cluster(bench::scaled_cluster(n, 0.5));
    benchmark::DoNotOptimize(lis::mpc_lis(cluster, seq));
  }
}
BENCHMARK(BM_MpcLisSimulated)->Range(1 << 8, 1 << 11);

void BM_LcsHuntSzymanski(benchmark::State& state) {
  const std::int64_t n = state.range(0);
  Rng rng(4);
  std::vector<std::int64_t> s(static_cast<std::size_t>(n)),
      t(static_cast<std::size_t>(n));
  for (auto& x : s) x = rng.next_in(0, 64);
  for (auto& x : t) x = rng.next_in(0, 64);
  for (auto _ : state) {
    benchmark::DoNotOptimize(lcs::lcs_hs(s, t));
  }
}
BENCHMARK(BM_LcsHuntSzymanski)->Range(1 << 8, 1 << 12);

}  // namespace

BENCHMARK_MAIN();
