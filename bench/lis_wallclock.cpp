// google-benchmark: wall-clock of the applications — sequential patience
// sorting, the sequential kernel (direct substrate baseline + the
// monge::Solver facade route), the Hunt–Szymanski LCS, and the whole
// simulated MPC LIS driven through the facade (which pays simulation
// overhead; the model's metric is rounds, reported by the fig_* binaries).
#include <benchmark/benchmark.h>

#include "api/solver.h"
#include "bench_common.h"
#include "lcs/hunt_szymanski.h"
#include "lis/kernel.h"
#include "lis/sequential.h"

using namespace monge;

namespace {

void BM_PatienceLis(benchmark::State& state) {
  const auto seq = bench::random_sequence(state.range(0), 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(lis::lis_length(seq));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_PatienceLis)->Range(1 << 10, 1 << 18)->Complexity();

// Level-order builder: one batched subunit engine call per merge level.
void BM_LisKernelSeq(benchmark::State& state) {
  Rng rng(2);
  const auto p = rng.permutation(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(lis::lis_kernel(p));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_LisKernelSeq)->Range(1 << 8, 1 << 13)->Complexity();

// The pre-batching depth-first recursion (one engine call per merge), kept
// as the per-merge baseline. A/B against BM_LisKernelSeq needs interleaved
// repetitions on the single-core dev box (see README).
void BM_LisKernelPerMerge(benchmark::State& state) {
  Rng rng(2);
  const auto p = rng.permutation(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(lis::lis_kernel_reference(p));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_LisKernelPerMerge)->Range(1 << 8, 1 << 13)->Complexity();

// The facade kernel route: the same LisRequest a service client would
// send (sequence in, kernel out), paying the strict-LIS rank reduction on
// top of the lis_kernel build that BM_LisKernelSeq measures directly.
void BM_SolverLisKernel(benchmark::State& state) {
  Rng rng(2);
  const auto p = rng.permutation(state.range(0));
  LisRequest req;
  req.want_kernel = true;
  req.seq.assign(p.begin(), p.end());
  Solver solver;
  for (auto _ : state) {
    benchmark::DoNotOptimize(solver.solve(req));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_SolverLisKernel)->Range(1 << 8, 1 << 13)->Complexity();

// The whole simulated MPC LIS through the facade; the per-iteration Solver
// mirrors the fresh per-iteration cluster the direct call used (cluster
// construction/provisioning is part of the measured service cost).
void BM_MpcLisSimulated(benchmark::State& state) {
  const std::int64_t n = state.range(0);
  LisRequest req;
  req.seq = bench::random_sequence(n, 3);
  for (auto _ : state) {
    Solver solver({.backend = SolverBackend::kMpcSim,
                   .cluster = bench::scaled_cluster(n, 0.5)});
    benchmark::DoNotOptimize(solver.solve(req));
  }
}
BENCHMARK(BM_MpcLisSimulated)->Range(1 << 8, 1 << 11);

void BM_LcsHuntSzymanski(benchmark::State& state) {
  const std::int64_t n = state.range(0);
  Rng rng(4);
  std::vector<std::int64_t> s(static_cast<std::size_t>(n)),
      t(static_cast<std::size_t>(n));
  for (auto& x : s) x = rng.next_in(0, 64);
  for (auto& x : t) x = rng.next_in(0, 64);
  for (auto _ : state) {
    benchmark::DoNotOptimize(lcs::lcs_hs(s, t));
  }
}
BENCHMARK(BM_LcsHuntSzymanski)->Range(1 << 8, 1 << 12);

}  // namespace

BENCHMARK_MAIN();
