// Figure A (implied by Theorem 1.1): measured rounds of one unit-Monge
// multiplication versus n for three schedules. Shape to check: the paper's
// H-way schedule stays (near-)flat, the warmup grows like log n, and the
// CHS23-profile grows like log^2 n.
#include <cstdio>

#include "bench_common.h"
#include "core/mpc_multiply.h"
#include "monge/seaweed.h"
#include "util/table.h"

using namespace monge;

int main() {
  std::printf(
      "Multiply rounds vs n (measured), delta = 0.5. Series: paper H-way\n"
      "(flat-ish), warmup (log n), CHS23-profile (log^2 n).\n\n");
  Table t({"n", "H", "paper H-way", "warmup (2-way,flat)",
           "CHS23 (2-way,binary)"});
  for (std::int64_t n : {1 << 9, 1 << 11, 1 << 13}) {
    Rng rng(static_cast<std::uint64_t>(n));
    const Perm a = Perm::random(n, rng);
    const Perm b = Perm::random(n, rng);
    const Perm expect = seaweed_multiply(a, b);
    const std::int64_t h = std::max<std::int64_t>(4, ipow_frac(n, 0.25));

    std::vector<std::string> row = {std::to_string(n), std::to_string(h)};
    const auto run = [&](std::int64_t split, std::int64_t fanout) {
      mpc::Cluster c(bench::scaled_cluster(n, 0.5));
      core::MpcMultiplyOptions opt;
      opt.split_h = split;
      opt.tree_fanout = fanout;
      core::MpcMultiplyReport rep;
      MONGE_CHECK(core::mpc_unit_monge_multiply(c, a, b, opt, &rep) == expect);
      return rep.rounds;
    };
    row.push_back(std::to_string(run(h, h)));
    row.push_back(std::to_string(run(2, h)));
    row.push_back(std::to_string(run(2, 2)));
    t.add_row(row);
  }
  std::printf("%s\n", t.to_string().c_str());
  std::printf(
      "(H = max(4, n^{1/4}) here; with the asymptotic n^{(1-delta)/10}\n"
      "schedule the flattening only appears at astronomically large n —\n"
      "the ablation bench sweeps this knob.)\n");
  return 0;
}
