// Figure C (Theorem 1.3 / Corollary 1.3.1): LIS rounds grow like c·log n;
// LCS costs the same rounds as LIS over its match sequence.
#include <cstdio>

#include "bench_common.h"
#include "lcs/mpc_lcs.h"
#include "lis/mpc_lis.h"
#include "lis/sequential.h"
#include "util/table.h"

using namespace monge;

int main() {
  std::printf("LIS rounds vs n (measured), delta = 0.5, Theorem 1.3.\n\n");
  Table t({"n", "merge levels", "rounds", "rounds/level", "LIS ok"});
  for (std::int64_t n : {1 << 9, 1 << 11, 1 << 13}) {
    const auto seq = bench::random_sequence(n, 7 + static_cast<std::uint64_t>(n));
    mpc::Cluster c(bench::scaled_cluster(n, 0.5));
    lis::MpcLisOptions opt;
    opt.multiply.split_h = std::max<std::int64_t>(4, ipow_frac(n, 0.25));
    opt.multiply.tree_fanout = opt.multiply.split_h;
    const auto res = lis::mpc_lis(c, seq, opt);
    const bool ok = res.lis == lis::lis_length(seq);
    t.add_row({std::to_string(n), std::to_string(res.merge_levels),
               std::to_string(res.rounds),
               Table::num(static_cast<double>(res.rounds) /
                              static_cast<double>(std::max<std::int64_t>(
                                  1, res.merge_levels)),
                          1),
               ok ? "yes" : "NO"});
  }
  std::printf("%s\n", t.to_string().c_str());

  std::printf(
      "LCS via Hunt–Szymanski (Cor 1.3.1): rounds equal LIS rounds on the\n"
      "match sequence; total space is the match count (the n^{1+delta}\n"
      "machine regime).\n\n");
  Table t2({"|S|=|T|", "sigma", "matches", "rounds", "LCS"});
  for (std::int64_t n : {128, 256}) {
    Rng rng(static_cast<std::uint64_t>(n));
    std::vector<std::int64_t> s(static_cast<std::size_t>(n)),
        u(static_cast<std::size_t>(n));
    for (auto& x : s) x = rng.next_in(0, 8);
    for (auto& x : u) x = rng.next_in(0, 8);
    mpc::Cluster c(bench::scaled_cluster(n * n / 8, 0.5));
    const auto res = lcs::mpc_lcs(c, s, u);
    t2.add_row({std::to_string(n), "8", std::to_string(res.matches),
                std::to_string(res.rounds), std::to_string(res.lcs)});
  }
  std::printf("%s\n", t2.to_string().c_str());
  return 0;
}
