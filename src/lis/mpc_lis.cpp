#include "lis/mpc_lis.h"

#include <algorithm>

#include "core/mpc_subperm.h"
#include "lis/kernel.h"
#include "lis/sequential.h"
#include "mpc/collectives.h"
#include "mpc/dist_vector.h"
#include "util/check.h"
#include "util/math.h"

namespace monge::lis {

namespace {

using mpc::Cluster;
using mpc::DistVector;
using mpc::MachineCtx;
using mpc::PerMachine;

}  // namespace

MpcLisResult mpc_lis(Cluster& cluster, std::span<const std::int64_t> seq,
                     const MpcLisOptions& options) {
  const auto n = static_cast<std::int64_t>(seq.size());
  const std::int64_t m = cluster.machines();
  MpcLisResult result;
  const std::int64_t start_rounds = cluster.rounds();
  if (n == 0) {
    result.kernel = Perm(0, 0);
    return result;
  }

  // Rank reduction (strict LIS with duplicates -> permutation). The rank
  // order is computed by one cluster sort (Lemma 2.5); the tie-break uses
  // (value asc, position desc).
  struct RankItem {
    std::int64_t value;
    std::int64_t pos;
  };
  std::vector<RankItem> items;
  items.reserve(static_cast<std::size_t>(n));
  for (std::int64_t i = 0; i < n; ++i) {
    items.push_back(RankItem{seq[static_cast<std::size_t>(i)], i});
  }
  auto dv_items = DistVector<RankItem>::from_host(cluster, items);
  // Single-key sorts cannot express the (value, -pos) composite for
  // arbitrary 64-bit values; sort by value on the cluster (the dominant
  // communication), then fix equal-value runs by position (local to runs).
  mpc::sample_sort(cluster, dv_items,
                   [](const RankItem& it) { return it.value; });
  const std::vector<std::int32_t> rank = rank_reduce_strict(seq);

  // Value classes: class k holds ranks [k*n/C, (k+1)*n/C). Each class's
  // elements (position, class-local value) are routed to a home machine.
  std::int64_t classes = options.leaf_classes > 0 ? options.leaf_classes : m;
  classes = next_pow2(std::min<std::int64_t>(std::max<std::int64_t>(1, classes), n));
  const auto class_of = [&](std::int32_t rk) {
    return std::min<std::int64_t>(classes - 1,
                                  static_cast<std::int64_t>(rk) * classes / n);
  };
  const auto class_lo = [&](std::int64_t k) { return k * n / classes; };

  struct ClassElem {
    std::int32_t cls;
    std::int32_t pos;
    std::int32_t rk;
  };
  PerMachine<std::vector<std::pair<std::int64_t, ClassElem>>> route_out(
      static_cast<std::size_t>(m));
  const mpc::BlockLayout pos_layout{n, m};
  for (std::int64_t i = 0; i < n; ++i) {
    const std::int64_t cls = class_of(rank[static_cast<std::size_t>(i)]);
    route_out[static_cast<std::size_t>(pos_layout.owner(i))].push_back(
        {cls % m,
         ClassElem{static_cast<std::int32_t>(cls),
                   static_cast<std::int32_t>(i),
                   rank[static_cast<std::size_t>(i)]}});
  }
  const auto routed = mpc::route_items<ClassElem>(cluster, route_out);

  // Leaf kernels, one run_round of machine-local work.
  struct ClassState {
    std::vector<std::int32_t> positions;  // increasing
    Perm kernel;
  };
  std::vector<ClassState> state(static_cast<std::size_t>(classes));
  cluster.run_round([&](MachineCtx& mc) {
    const std::int64_t i = mc.id();
    std::vector<std::vector<std::pair<std::int32_t, std::int32_t>>> mine(
        static_cast<std::size_t>(classes));
    for (const ClassElem& e : routed[static_cast<std::size_t>(i)]) {
      mine[static_cast<std::size_t>(e.cls)].push_back({e.pos, e.rk});
    }
    // Collect the machine's class-local permutations, then solve every leaf
    // kernel through one level-order batch: each global merge level is one
    // batched subunit engine call shared by all classes this machine owns.
    std::vector<std::int64_t> owned;
    std::vector<std::vector<std::int32_t>> local_perms;
    for (std::int64_t k = 0; k < classes; ++k) {
      if (k % m != i || mine[static_cast<std::size_t>(k)].empty()) continue;
      auto& elems = mine[static_cast<std::size_t>(k)];
      std::sort(elems.begin(), elems.end());
      auto& st = state[static_cast<std::size_t>(k)];
      st.positions.clear();  // restartable: recovery re-executes the round
      std::vector<std::int32_t> local_perm;
      for (const auto& [pos, rk] : elems) {
        st.positions.push_back(pos);
        local_perm.push_back(static_cast<std::int32_t>(rk - class_lo(k)));
      }
      // Relabel class-local values to a permutation of [0, class size).
      std::vector<std::int32_t> vals(local_perm);
      std::sort(vals.begin(), vals.end());
      for (auto& v : local_perm) {
        v = static_cast<std::int32_t>(
            std::lower_bound(vals.begin(), vals.end(), v) - vals.begin());
      }
      owned.push_back(k);
      local_perms.push_back(std::move(local_perm));
    }
    if (owned.empty()) return;
    auto kernels = lis_kernel_batch(local_perms);
    for (std::size_t j = 0; j < owned.size(); ++j) {
      state[static_cast<std::size_t>(owned[j])].kernel = std::move(kernels[j]);
    }
  });

  // Merge levels: one batched subunit multiply per level.
  std::int64_t width = 1;
  while (width < classes) {
    std::vector<std::pair<Perm, Perm>> batch;
    std::vector<std::size_t> lo_of;  // class index of the lo half per pair
    std::vector<std::vector<std::int32_t>> merged_positions;
    for (std::int64_t k = 0; k < classes; k += 2 * width) {
      ClassState& lo = state[static_cast<std::size_t>(k)];
      ClassState& hi = state[static_cast<std::size_t>(k + width)];
      // Degenerate merges adopt the surviving side wholesale; the position
      // list round-trips through merged_positions by move (it is
      // reinstated below), never by copy.
      if (hi.positions.empty()) {
        merged_positions.push_back(std::move(lo.positions));
        lo_of.push_back(static_cast<std::size_t>(-1));
        continue;
      }
      if (lo.positions.empty()) {
        lo.kernel = std::move(hi.kernel);
        merged_positions.push_back(std::move(hi.positions));
        lo_of.push_back(static_cast<std::size_t>(-1));
        continue;
      }
      std::vector<std::int32_t> merged(lo.positions.size() +
                                       hi.positions.size());
      std::merge(lo.positions.begin(), lo.positions.end(),
                 hi.positions.begin(), hi.positions.end(), merged.begin());
      const auto pos_rank = [&](std::int32_t pos) {
        return static_cast<std::int64_t>(
            std::lower_bound(merged.begin(), merged.end(), pos) -
            merged.begin());
      };
      const auto sz = static_cast<std::int64_t>(merged.size());
      Perm a(sz, sz), b(sz, sz);
      for (const Point& pt : lo.kernel.points()) {
        a.set(pos_rank(lo.positions[static_cast<std::size_t>(pt.row)]),
              pos_rank(lo.positions[static_cast<std::size_t>(pt.col)]));
      }
      for (std::int32_t pos : hi.positions) a.set(pos_rank(pos), pos_rank(pos));
      for (std::int32_t pos : lo.positions) b.set(pos_rank(pos), pos_rank(pos));
      for (const Point& pt : hi.kernel.points()) {
        b.set(pos_rank(hi.positions[static_cast<std::size_t>(pt.row)]),
              pos_rank(hi.positions[static_cast<std::size_t>(pt.col)]));
      }
      lo_of.push_back(static_cast<std::size_t>(k));
      batch.emplace_back(std::move(a), std::move(b));
      merged_positions.push_back(std::move(merged));
    }
    if (!batch.empty()) {
      auto products = core::mpc_subunit_multiply_batch(cluster, batch,
                                                       options.multiply);
      std::size_t at = 0;
      std::size_t mp = 0;
      for (std::int64_t k = 0; k < classes; k += 2 * width) {
        ClassState& lo = state[static_cast<std::size_t>(k)];
        if (lo_of[mp] != static_cast<std::size_t>(-1)) {
          lo.kernel = std::move(products[at++]);
        }
        lo.positions = std::move(merged_positions[mp]);
        ++mp;
      }
    } else {
      std::size_t mp = 0;
      for (std::int64_t k = 0; k < classes; k += 2 * width) {
        state[static_cast<std::size_t>(k)].positions =
            std::move(merged_positions[mp++]);
      }
    }
    width *= 2;
    ++result.merge_levels;
  }

  result.kernel = std::move(state[0].kernel);
  MONGE_CHECK(result.kernel.rows() == n);
  result.lis = lis_from_kernel(result.kernel);
  result.rounds = cluster.rounds() - start_rounds;
  return result;
}

}  // namespace monge::lis
