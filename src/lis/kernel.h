// The semi-local LIS kernel (§4.2 / Corollary 1.3.2).
//
// For a permutation p of [0, n), the kernel K is an n×n sub-permutation
// with   LIS(p[l..r]) = (r − l + 1) − KΣ(l, r + 1),
// where KΣ(i, j) = #{kernel points (r, c) : r >= i, c < j}.
//
// It is built by the standard value-split divide and conquer: split values
// at the median into classes lo/hi, recurse on the (position-relabelled)
// classes, embed both kernels into the union's position ranks, and combine
// with one subunit-Monge product:
//   K = (K_lo ⊕ id_hi) ⊡ (id_lo ⊕ K_hi).
// This is the decomposition Theorem 1.3 parallelises: each merge level of
// the MPC algorithm is one batched ⊡.
//
// The builder walks that tree bottom-up in LEVEL ORDER, not depth-first:
// the permutation is split into the full leaf partition once, then every
// merge level issues ONE batched engine call
// (SeaweedEngine::subunit_multiply_batch_into) covering all of the level's
// (A, B) embedding pairs — O(log n) engine calls total, each sharing a
// single arena sizing and striping across the engine's pool when one is
// configured. lis_kernel_reference keeps the pre-batching depth-first
// recursion (one engine call per merge) as the differential-fuzz reference
// and per-merge benchmark baseline.
//
// Representation note: the merge products run through the engine's
// density-adaptive dispatch (monge/core_sparse.h) with no code here —
// nearly sorted inputs produce near-identity kernels at every level, so
// the clean-boundary block decomposition turns their merges into copies
// plus small dense blocks. SolveReport.representation (or
// SeaweedEngine::representation_stats deltas, surfaced per trace by
// tools/core_stats --kernel) shows how much of a workload it absorbs.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "monge/permutation.h"

namespace monge {
class SeaweedEngine;
}

namespace monge::lis {

/// Sequential kernel of a permutation (O(n log^2 n)). Level-order: one
/// batched subunit-Monge product per merge level on the thread-local
/// default SeaweedEngine. Bit-identical to lis_kernel_reference.
///
/// @param perm a permutation of [0, n) (validated).
/// @return the n×n kernel sub-permutation.
Perm lis_kernel(std::span<const std::int32_t> perm);

/// Same, but every merge level's batched subunit-Monge product runs on the
/// caller-provided engine (reusing its arena, and striping the level across
/// its thread pool if one is configured). Deterministic for every thread
/// count.
///
/// @param perm a permutation of [0, n) (validated).
/// @param engine the engine every batched merge level runs on.
/// @return the n×n kernel sub-permutation.
Perm lis_kernel(std::span<const std::int32_t> perm, SeaweedEngine& engine);

/// Kernels of many independent permutations in one level-order pass: each
/// global merge level issues ONE batched engine call covering that level's
/// merges across ALL inputs, so b kernels of size n cost O(log n) engine
/// calls instead of O(b log n). This is what the MPC LIS driver uses for
/// the leaf kernels a machine owns. Results are bit-identical to per-input
/// lis_kernel for every thread count.
///
/// @param perms one permutation of [0, n_i) per entry (each validated).
/// @return one kernel per input, in input order.
std::vector<Perm> lis_kernel_batch(
    std::span<const std::vector<std::int32_t>> perms);

/// Same, on a caller-provided engine.
///
/// @param perms one permutation of [0, n_i) per entry (each validated).
/// @param engine the engine every batched merge level runs on.
/// @return one kernel per input, in input order.
std::vector<Perm> lis_kernel_batch(
    std::span<const std::vector<std::int32_t>> perms, SeaweedEngine& engine);

/// The pre-batching depth-first recursion: one engine call
/// (subunit_multiply_raw) per merge, O(n) calls total. Kept as the
/// differential-fuzz reference for the level-order builder and as the
/// per-merge baseline in bench/lis_wallclock.
///
/// @param perm a permutation of [0, n) (validated).
/// @return the n×n kernel sub-permutation.
Perm lis_kernel_reference(std::span<const std::int32_t> perm);

/// Same, on a caller-provided engine.
///
/// @param perm a permutation of [0, n) (validated).
/// @param engine the engine every per-merge subunit product runs on.
/// @return the n×n kernel sub-permutation.
Perm lis_kernel_reference(std::span<const std::int32_t> perm,
                          SeaweedEngine& engine);

/// LIS of the whole permutation from its kernel: n − #points.
///
/// @param kernel a kernel built by lis_kernel / lis_kernel_batch.
/// @return the LIS length of the underlying permutation.
std::int64_t lis_from_kernel(const Perm& kernel);

/// LIS(p[l..r]) from the kernel (O(n) scan).
///
/// @param kernel a kernel built by lis_kernel / lis_kernel_batch.
/// @param l window start (inclusive).
/// @param r window end (inclusive); l > r is a legitimate empty window and
///     answers 0, even with endpoints outside [0, n).
/// @return the LIS length of p[l..r].
std::int64_t kernel_window_lis(const Perm& kernel, std::int64_t l,
                               std::int64_t r);

/// Offline batch of window queries in O((n + q) log n) via dominance
/// counting (Fenwick sweep). The whole batch must be known up front; for
/// ONLINE serving — queries arriving one at a time against a sequence
/// indexed once — query::SemiLocalIndex (src/query/semilocal_index.h)
/// answers each window in O(log² n) from a persisted kernel instead.
///
/// @param kernel a kernel built by lis_kernel / lis_kernel_batch.
/// @param windows (l, r) inclusive windows; empty (l > r) windows answer 0.
/// @return one LIS length per window, in input order.
std::vector<std::int64_t> kernel_window_lis_batch(
    const Perm& kernel,
    std::span<const std::pair<std::int64_t, std::int64_t>> windows);

}  // namespace monge::lis
