// The semi-local LIS kernel (§4.2 / Corollary 1.3.2).
//
// For a permutation p of [0, n), the kernel K is an n×n sub-permutation
// with   LIS(p[l..r]) = (r − l + 1) − KΣ(l, r + 1),
// where KΣ(i, j) = #{kernel points (r, c) : r >= i, c < j}.
//
// It is built by the standard value-split divide and conquer: split values
// at the median into classes lo/hi, recurse on the (position-relabelled)
// classes, embed both kernels into the union's position ranks, and combine
// with one subunit-Monge product:
//   K = (K_lo ⊕ id_hi) ⊡ (id_lo ⊕ K_hi).
// This is the decomposition Theorem 1.3 parallelises: each merge level of
// the MPC algorithm is one batched ⊡.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "monge/permutation.h"

namespace monge {
class SeaweedEngine;
}

namespace monge::lis {

/// Sequential kernel of a permutation (O(n log^2 n)). Every merge runs on
/// the thread-local default SeaweedEngine's direct subunit path
/// (SeaweedEngine::subunit_multiply_raw), so the recursion never
/// materializes padded Perm temporaries.
Perm lis_kernel(std::span<const std::int32_t> perm);

/// Same, but every subunit-Monge merge runs on the caller-provided engine
/// (reusing its arena, and its thread pool if configured).
Perm lis_kernel(std::span<const std::int32_t> perm, SeaweedEngine& engine);

/// LIS of the whole permutation from its kernel: n − #points.
std::int64_t lis_from_kernel(const Perm& kernel);

/// LIS(p[l..r]) from the kernel (O(n) scan).
std::int64_t kernel_window_lis(const Perm& kernel, std::int64_t l,
                               std::int64_t r);

/// Offline batch of window queries in O((n + q) log n) via dominance
/// counting (Fenwick sweep).
std::vector<std::int64_t> kernel_window_lis_batch(
    const Perm& kernel,
    std::span<const std::pair<std::int64_t, std::int64_t>> windows);

}  // namespace monge::lis
