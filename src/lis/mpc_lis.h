// Theorem 1.3 / Corollary 1.3.2: exact LIS (and the full semi-local LIS
// kernel) in O(log n) MPC rounds.
//
// The sequence is rank-reduced to a permutation, split into value classes
// that fit one machine, each class's kernel solved locally, and the classes
// merged pairwise up a binary tree; every merge level is ONE batched
// subunit-Monge product (Theorem 1.2 -> Theorem 1.1), so the level cost is
// the multiply's O(1) rounds and the total is O(log n).
#pragma once

#include <cstdint>
#include <span>

#include "core/mpc_multiply.h"
#include "monge/permutation.h"
#include "mpc/cluster.h"

namespace monge::lis {

struct MpcLisOptions {
  core::MpcMultiplyOptions multiply;
  /// Target number of value classes at the leaves (0 = number of machines).
  std::int64_t leaf_classes = 0;
};

struct MpcLisResult {
  std::int64_t lis = 0;
  Perm kernel;                 // semi-local kernel of the whole sequence
  std::int64_t rounds = 0;     // cluster rounds consumed
  std::int64_t merge_levels = 0;
};

/// Strictly-increasing LIS of an arbitrary sequence (duplicates allowed).
MpcLisResult mpc_lis(mpc::Cluster& cluster,
                     std::span<const std::int64_t> seq,
                     const MpcLisOptions& options = {});

}  // namespace monge::lis
