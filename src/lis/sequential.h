// Sequential LIS algorithms: Fredman's patience sorting (the O(n log n)
// classical algorithm the paper cites) and brute-force oracles for tests.
#pragma once

#include <cstdint>
#include <span>
#include <utility>
#include <vector>

namespace monge::lis {

/// Length of the longest strictly increasing subsequence (O(n log n)).
std::int64_t lis_length(std::span<const std::int64_t> seq);

/// O(n^2) DP oracle.
std::int64_t lis_length_dp(std::span<const std::int64_t> seq);

/// LIS of the window seq[l..r] inclusive (patience on the window).
std::int64_t lis_window(std::span<const std::int64_t> seq, std::int64_t l,
                        std::int64_t r);

/// Per-window patience oracle for a batch of [l, r] windows: O(q · n log n),
/// the reference `kernel_window_lis_batch` is fuzzed against (the kernel
/// answers the same batch in O((n + q) log n)).
std::vector<std::int64_t> lis_window_batch(
    std::span<const std::int64_t> seq,
    std::span<const std::pair<std::int64_t, std::int64_t>> windows);

/// Strict-LIS rank reduction: maps a sequence with possible duplicates to a
/// permutation of [0, n) ordered by (value asc, position desc), so that
/// strictly increasing subsequences correspond exactly to increasing
/// subsequences of the permutation.
std::vector<std::int32_t> rank_reduce_strict(
    std::span<const std::int64_t> seq);

}  // namespace monge::lis
