#include "lis/kernel.h"

#include <algorithm>

#include "monge/engine.h"
#include "util/check.h"
#include "util/fenwick.h"

namespace monge::lis {

namespace {

/// The kernel as a raw row->col array (kNone = empty row). The whole
/// value-split recursion stays in this representation and every merge runs
/// on the engine's direct subunit path, so no Perm is constructed (or
/// validated) until lis_kernel_reference wraps the final result. This is
/// the pre-batching depth-first builder: one engine call per merge.
std::vector<std::int32_t> kernel_rec(const std::vector<std::int32_t>& p,
                                     SeaweedEngine& engine) {
  const auto n = static_cast<std::int64_t>(p.size());
  if (n == 0) return {};
  if (n == 1) return {kNone};  // empty kernel: LIS of one element is 1

  const std::int64_t mid = n / 2;
  std::vector<std::int32_t> lo_pos, hi_pos, p_lo, p_hi;
  for (std::int64_t i = 0; i < n; ++i) {
    const std::int32_t v = p[static_cast<std::size_t>(i)];
    if (v < mid) {
      lo_pos.push_back(static_cast<std::int32_t>(i));
      p_lo.push_back(v);
    } else {
      hi_pos.push_back(static_cast<std::int32_t>(i));
      p_hi.push_back(static_cast<std::int32_t>(v - mid));
    }
  }
  const std::vector<std::int32_t> k_lo = kernel_rec(p_lo, engine);
  const std::vector<std::int32_t> k_hi = kernel_rec(p_hi, engine);

  // Embed: A = K_lo at lo positions + identity at hi positions;
  //        B = identity at lo positions + K_hi at hi positions.
  std::vector<std::int32_t> a(static_cast<std::size_t>(n), kNone),
      b(static_cast<std::size_t>(n), kNone);
  for (std::size_t i = 0; i < k_lo.size(); ++i) {
    if (k_lo[i] != kNone) {
      a[static_cast<std::size_t>(lo_pos[i])] =
          lo_pos[static_cast<std::size_t>(k_lo[i])];
    }
  }
  for (std::int32_t pos : hi_pos) a[static_cast<std::size_t>(pos)] = pos;
  for (std::int32_t pos : lo_pos) b[static_cast<std::size_t>(pos)] = pos;
  for (std::size_t i = 0; i < k_hi.size(); ++i) {
    if (k_hi[i] != kNone) {
      b[static_cast<std::size_t>(hi_pos[i])] =
          hi_pos[static_cast<std::size_t>(k_hi[i])];
    }
  }
  return engine.subunit_multiply_raw(a, b, n);
}

// ---------------------------------------------------------------------------
// Level-order builder. The value-split tree of every input is a STATIC
// structure (node sizes split floor/ceil independently of the data), so it
// is materialized once as bare topology — parent/children/depth per value
// interval, leaves = the full leaf partition — and each element carries one
// cursor to the node whose kernel currently represents it. The merges then
// run bottom-up by depth: one O(n) sweep over the elements in original
// position order recovers every merging node's lo/hi position ranks (the
// sweep order IS the node-local order), the level's (A, B) embedding pairs
// are built from the child kernels, and the whole level issues ONE
// SeaweedEngine::subunit_multiply_batch_into call — sharing a single arena
// sizing and striping across the engine's pool. Auxiliary memory stays
// O(n) (topology + cursors + one level's embeddings); the merge arrays are
// exactly kernel_rec's and the engine batch is bit-identical to per-call
// subunit_multiply_into, so the kernels match the reference bit for bit.
// ---------------------------------------------------------------------------

/// One node of the value-split forest: topology plus the bottom-up kernel.
/// `kernel` is in node-local coordinates (position ranks within the node);
/// it is filled when the node merges (or at leaf creation) and released
/// once the parent consumed it.
struct SplitNode {
  std::int32_t parent = -1;
  std::int32_t lo = -1, hi = -1;  // children; -1 on leaves (size 1)
  std::int32_t depth = 0;
  std::vector<std::int32_t> kernel;
};

/// One merge of the current level: the parent node and its children's
/// node-local position ranks (lo_pos/hi_pos), recovered by the element
/// sweep.
struct LevelMerge {
  std::int32_t node;
  std::vector<std::int32_t> lo_pos, hi_pos;
};

/// Kernels (raw row->col arrays) of all inputs, one batched engine call per
/// merge level of the forest.
std::vector<std::vector<std::int32_t>> kernel_forest(
    std::span<const std::vector<std::int32_t>> perms, SeaweedEngine& engine) {
  std::vector<SplitNode> nodes;
  std::vector<std::int32_t> roots(perms.size(), -1);
  // elem_node[t][g]: the node whose kernel currently represents element g
  // (original position order); starts at g's leaf, hoisted to the parent as
  // merges consume it.
  std::vector<std::vector<std::int32_t>> elem_node(perms.size());
  std::int32_t max_depth = 0;

  // Build the static topology per input: split the value interval
  // [vlo, vhi) at vlo + size/2 (kernel_rec's mid) until single values; a
  // size-1 leaf's kernel is the empty point set ({kNone}).
  for (std::size_t t = 0; t < perms.size(); ++t) {
    const auto n = static_cast<std::int64_t>(perms[t].size());
    if (n == 0) continue;  // empty input: empty kernel, no nodes
    std::vector<std::int32_t> leaf_of_value(static_cast<std::size_t>(n));
    struct Range {
      std::int64_t vlo, vhi;
      std::int32_t parent;
      bool is_lo;
    };
    std::vector<Range> stack{{0, n, -1, false}};
    while (!stack.empty()) {
      const Range r = stack.back();
      stack.pop_back();
      const auto id = static_cast<std::int32_t>(nodes.size());
      SplitNode node;
      node.parent = r.parent;
      node.depth =
          r.parent < 0
              ? 0
              : nodes[static_cast<std::size_t>(r.parent)].depth + 1;
      max_depth = std::max(max_depth, node.depth);
      if (r.parent >= 0) {
        (r.is_lo ? nodes[static_cast<std::size_t>(r.parent)].lo
                 : nodes[static_cast<std::size_t>(r.parent)].hi) = id;
      } else {
        roots[t] = id;
      }
      if (r.vhi - r.vlo == 1) {
        node.kernel.assign(1, kNone);
        leaf_of_value[static_cast<std::size_t>(r.vlo)] = id;
      } else {
        const std::int64_t vmid = r.vlo + (r.vhi - r.vlo) / 2;
        // Push hi first so the lo child gets the smaller node id (matches
        // kernel_rec's recursion order; ids are otherwise arbitrary).
        stack.push_back({vmid, r.vhi, id, false});
        stack.push_back({r.vlo, vmid, id, true});
      }
      nodes.push_back(std::move(node));
    }
    elem_node[t].reserve(static_cast<std::size_t>(n));
    for (const std::int32_t v : perms[t]) {
      elem_node[t].push_back(leaf_of_value[static_cast<std::size_t>(v)]);
    }
  }

  // Bottom-up: children live one level below their parent, so sweeping the
  // depths deepest-first has every merge's inputs ready. merge_of[] is a
  // per-node slot reused across levels; only touched entries are reset.
  std::vector<std::int32_t> merge_of(nodes.size(), -1);
  for (std::int32_t d = max_depth - 1; d >= 0; --d) {
    // Element sweep in original position order: an element participates in
    // this level iff its current node's parent sits at depth d. Visit
    // order within a node is its node-local position order, so the
    // running lo/hi counts are exactly kernel_rec's lo_pos / hi_pos ranks.
    std::vector<LevelMerge> merges;
    for (std::size_t t = 0; t < perms.size(); ++t) {
      for (std::int32_t& nd : elem_node[t]) {
        const std::int32_t pd = nodes[static_cast<std::size_t>(nd)].parent;
        if (pd < 0 || nodes[static_cast<std::size_t>(pd)].depth != d) continue;
        std::int32_t mi = merge_of[static_cast<std::size_t>(pd)];
        if (mi < 0) {
          mi = static_cast<std::int32_t>(merges.size());
          merge_of[static_cast<std::size_t>(pd)] = mi;
          merges.push_back({pd, {}, {}});
        }
        LevelMerge& mg = merges[static_cast<std::size_t>(mi)];
        const auto i = static_cast<std::int32_t>(mg.lo_pos.size() +
                                                 mg.hi_pos.size());
        (nd == nodes[static_cast<std::size_t>(pd)].lo ? mg.lo_pos : mg.hi_pos)
            .push_back(i);
        nd = pd;  // hoist the cursor; membership is recorded
      }
    }
    if (merges.empty()) continue;

    // Embed: A = K_lo at lo positions + identity at hi positions;
    //        B = identity at lo positions + K_hi at hi positions —
    // the same arrays kernel_rec builds per merge.
    std::vector<std::vector<std::int32_t>> ab;  // a, b interleaved per merge
    ab.reserve(2 * merges.size());
    for (const LevelMerge& mg : merges) {
      merge_of[static_cast<std::size_t>(mg.node)] = -1;
      const SplitNode& node = nodes[static_cast<std::size_t>(mg.node)];
      const std::size_t n = mg.lo_pos.size() + mg.hi_pos.size();
      std::vector<std::int32_t> a(n, kNone), b(n, kNone);
      const auto& k_lo = nodes[static_cast<std::size_t>(node.lo)].kernel;
      const auto& k_hi = nodes[static_cast<std::size_t>(node.hi)].kernel;
      for (std::size_t i = 0; i < k_lo.size(); ++i) {
        if (k_lo[i] != kNone) {
          a[static_cast<std::size_t>(mg.lo_pos[i])] =
              mg.lo_pos[static_cast<std::size_t>(k_lo[i])];
        }
      }
      for (std::int32_t pos : mg.hi_pos) a[static_cast<std::size_t>(pos)] = pos;
      for (std::int32_t pos : mg.lo_pos) b[static_cast<std::size_t>(pos)] = pos;
      for (std::size_t i = 0; i < k_hi.size(); ++i) {
        if (k_hi[i] != kNone) {
          b[static_cast<std::size_t>(mg.hi_pos[i])] =
              mg.hi_pos[static_cast<std::size_t>(k_hi[i])];
        }
      }
      ab.push_back(std::move(a));
      ab.push_back(std::move(b));
    }

    std::vector<SubunitPairView> views;
    std::vector<std::span<std::int32_t>> outs;
    views.reserve(merges.size());
    outs.reserve(merges.size());
    for (std::size_t i = 0; i < merges.size(); ++i) {
      SplitNode& node = nodes[static_cast<std::size_t>(merges[i].node)];
      const auto n = static_cast<std::int64_t>(ab[2 * i].size());
      views.push_back({ab[2 * i], ab[2 * i + 1], n});
      node.kernel.resize(static_cast<std::size_t>(n));
      outs.push_back(node.kernel);
    }
    engine.subunit_multiply_batch_into(views, outs);
    for (const LevelMerge& mg : merges) {
      const SplitNode& node = nodes[static_cast<std::size_t>(mg.node)];
      nodes[static_cast<std::size_t>(node.lo)].kernel = {};
      nodes[static_cast<std::size_t>(node.hi)].kernel = {};
    }
  }

  std::vector<std::vector<std::int32_t>> out(perms.size());
  for (std::size_t t = 0; t < perms.size(); ++t) {
    if (roots[t] >= 0) {
      out[t] = std::move(nodes[static_cast<std::size_t>(roots[t])].kernel);
    }
  }
  return out;
}

void check_permutation(std::span<const std::int32_t> p) {
  std::vector<bool> seen(p.size(), false);
  for (std::int32_t v : p) {
    MONGE_CHECK_MSG(v >= 0 && v < static_cast<std::int32_t>(p.size()) &&
                        !seen[static_cast<std::size_t>(v)],
                    "lis_kernel requires a permutation of [0, n)");
    seen[static_cast<std::size_t>(v)] = true;
  }
}

}  // namespace

Perm lis_kernel(std::span<const std::int32_t> perm) {
  return lis_kernel(perm, default_seaweed_engine());
}

Perm lis_kernel(std::span<const std::int32_t> perm, SeaweedEngine& engine) {
  check_permutation(perm);
  const std::vector<std::int32_t> p(perm.begin(), perm.end());
  auto kernels = kernel_forest({&p, 1}, engine);
  return Perm::from_rows(std::move(kernels[0]),
                         static_cast<std::int64_t>(perm.size()));
}

std::vector<Perm> lis_kernel_batch(
    std::span<const std::vector<std::int32_t>> perms) {
  return lis_kernel_batch(perms, default_seaweed_engine());
}

std::vector<Perm> lis_kernel_batch(
    std::span<const std::vector<std::int32_t>> perms, SeaweedEngine& engine) {
  for (const auto& p : perms) check_permutation(p);
  auto kernels = kernel_forest(perms, engine);
  std::vector<Perm> out;
  out.reserve(perms.size());
  for (std::size_t t = 0; t < perms.size(); ++t) {
    out.push_back(Perm::from_rows(std::move(kernels[t]),
                                  static_cast<std::int64_t>(perms[t].size())));
  }
  return out;
}

Perm lis_kernel_reference(std::span<const std::int32_t> perm) {
  return lis_kernel_reference(perm, default_seaweed_engine());
}

Perm lis_kernel_reference(std::span<const std::int32_t> perm,
                          SeaweedEngine& engine) {
  check_permutation(perm);
  const std::vector<std::int32_t> p(perm.begin(), perm.end());
  return Perm::from_rows(kernel_rec(p, engine),
                         static_cast<std::int64_t>(perm.size()));
}

std::int64_t lis_from_kernel(const Perm& kernel) {
  return kernel.rows() - kernel.point_count();
}

std::int64_t kernel_window_lis(const Perm& kernel, std::int64_t l,
                               std::int64_t r) {
  // Empty windows (l > r, including r == -1) are legitimate and answer 0.
  if (l > r) return 0;
  MONGE_CHECK(l >= 0 && r < kernel.rows());
  std::int64_t count = 0;
  for (std::int64_t row = l; row < kernel.rows(); ++row) {
    const std::int32_t c = kernel.col_of(row);
    count += (c != kNone && c < r + 1);
  }
  return (r - l + 1) - count;
}

std::vector<std::int64_t> kernel_window_lis_batch(
    const Perm& kernel,
    std::span<const std::pair<std::int64_t, std::int64_t>> windows) {
  // KΣ(l, r+1) counts points with row >= l and col <= r. Sweep rows from
  // high to low, inserting points into a Fenwick over columns; answer each
  // query when the sweep passes its l. Degenerate l > r windows are never
  // enqueued and keep their initial 0.
  const std::int64_t n = kernel.rows();
  std::vector<std::vector<std::size_t>> by_l(static_cast<std::size_t>(n) + 1);
  for (std::size_t qi = 0; qi < windows.size(); ++qi) {
    if (windows[qi].first > windows[qi].second) continue;  // empty: stays 0
    MONGE_CHECK(windows[qi].first >= 0 && windows[qi].second < n);
    by_l[static_cast<std::size_t>(windows[qi].first)].push_back(qi);
  }
  std::vector<std::int64_t> out(windows.size(), 0);
  Fenwick cols(n);
  for (std::int64_t row = n - 1; row >= 0; --row) {
    const std::int32_t c = kernel.col_of(row);
    if (c != kNone) cols.add(c, 1);
    for (std::size_t qi : by_l[static_cast<std::size_t>(row)]) {
      const auto [l, r] = windows[qi];
      out[qi] = (r - l + 1) - cols.prefix(r + 1);
    }
  }
  return out;
}

}  // namespace monge::lis
