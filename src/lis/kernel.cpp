#include "lis/kernel.h"

#include <algorithm>

#include "monge/engine.h"
#include "util/check.h"
#include "util/fenwick.h"

namespace monge::lis {

namespace {

/// The kernel as a raw row->col array (kNone = empty row). The whole
/// value-split recursion stays in this representation and every merge runs
/// on the engine's direct subunit path, so no Perm is constructed (or
/// validated) until lis_kernel wraps the final result.
std::vector<std::int32_t> kernel_rec(const std::vector<std::int32_t>& p,
                                     SeaweedEngine& engine) {
  const auto n = static_cast<std::int64_t>(p.size());
  if (n == 0) return {};
  if (n == 1) return {kNone};  // empty kernel: LIS of one element is 1

  const std::int64_t mid = n / 2;
  std::vector<std::int32_t> lo_pos, hi_pos, p_lo, p_hi;
  for (std::int64_t i = 0; i < n; ++i) {
    const std::int32_t v = p[static_cast<std::size_t>(i)];
    if (v < mid) {
      lo_pos.push_back(static_cast<std::int32_t>(i));
      p_lo.push_back(v);
    } else {
      hi_pos.push_back(static_cast<std::int32_t>(i));
      p_hi.push_back(static_cast<std::int32_t>(v - mid));
    }
  }
  const std::vector<std::int32_t> k_lo = kernel_rec(p_lo, engine);
  const std::vector<std::int32_t> k_hi = kernel_rec(p_hi, engine);

  // Embed: A = K_lo at lo positions + identity at hi positions;
  //        B = identity at lo positions + K_hi at hi positions.
  std::vector<std::int32_t> a(static_cast<std::size_t>(n), kNone),
      b(static_cast<std::size_t>(n), kNone);
  for (std::size_t i = 0; i < k_lo.size(); ++i) {
    if (k_lo[i] != kNone) {
      a[static_cast<std::size_t>(lo_pos[i])] =
          lo_pos[static_cast<std::size_t>(k_lo[i])];
    }
  }
  for (std::int32_t pos : hi_pos) a[static_cast<std::size_t>(pos)] = pos;
  for (std::int32_t pos : lo_pos) b[static_cast<std::size_t>(pos)] = pos;
  for (std::size_t i = 0; i < k_hi.size(); ++i) {
    if (k_hi[i] != kNone) {
      b[static_cast<std::size_t>(hi_pos[i])] =
          hi_pos[static_cast<std::size_t>(k_hi[i])];
    }
  }
  return engine.subunit_multiply_raw(a, b, n);
}

}  // namespace

Perm lis_kernel(std::span<const std::int32_t> perm) {
  return lis_kernel(perm, default_seaweed_engine());
}

Perm lis_kernel(std::span<const std::int32_t> perm, SeaweedEngine& engine) {
  std::vector<std::int32_t> p(perm.begin(), perm.end());
  // Validate it is a permutation of [0, n).
  std::vector<bool> seen(p.size(), false);
  for (std::int32_t v : p) {
    MONGE_CHECK_MSG(v >= 0 && v < static_cast<std::int32_t>(p.size()) &&
                        !seen[static_cast<std::size_t>(v)],
                    "lis_kernel requires a permutation of [0, n)");
    seen[static_cast<std::size_t>(v)] = true;
  }
  const auto n = static_cast<std::int64_t>(p.size());
  return Perm::from_rows(kernel_rec(p, engine), n);
}

std::int64_t lis_from_kernel(const Perm& kernel) {
  return kernel.rows() - kernel.point_count();
}

std::int64_t kernel_window_lis(const Perm& kernel, std::int64_t l,
                               std::int64_t r) {
  // Empty windows (l > r, including r == -1) are legitimate and answer 0.
  if (l > r) return 0;
  MONGE_CHECK(l >= 0 && r < kernel.rows());
  std::int64_t count = 0;
  for (std::int64_t row = l; row < kernel.rows(); ++row) {
    const std::int32_t c = kernel.col_of(row);
    count += (c != kNone && c < r + 1);
  }
  return (r - l + 1) - count;
}

std::vector<std::int64_t> kernel_window_lis_batch(
    const Perm& kernel,
    std::span<const std::pair<std::int64_t, std::int64_t>> windows) {
  // KΣ(l, r+1) counts points with row >= l and col <= r. Sweep rows from
  // high to low, inserting points into a Fenwick over columns; answer each
  // query when the sweep passes its l.
  const std::int64_t n = kernel.rows();
  std::vector<std::vector<std::size_t>> by_l(static_cast<std::size_t>(n) + 1);
  for (std::size_t qi = 0; qi < windows.size(); ++qi) {
    if (windows[qi].first > windows[qi].second) continue;  // empty: stays 0
    MONGE_CHECK(windows[qi].first >= 0 && windows[qi].second < n);
    by_l[static_cast<std::size_t>(windows[qi].first)].push_back(qi);
  }
  std::vector<std::int64_t> out(windows.size(), 0);
  Fenwick cols(n);
  for (std::int64_t row = n - 1; row >= 0; --row) {
    const std::int32_t c = kernel.col_of(row);
    if (c != kNone) cols.add(c, 1);
    for (std::size_t qi : by_l[static_cast<std::size_t>(row)]) {
      const auto [l, r] = windows[qi];
      out[qi] = (r - l + 1) - cols.prefix(r + 1);
    }
  }
  // Degenerate l > r windows.
  for (std::size_t qi = 0; qi < windows.size(); ++qi) {
    if (windows[qi].first > windows[qi].second) out[qi] = 0;
  }
  return out;
}

}  // namespace monge::lis
