#include "lis/sequential.h"

#include <algorithm>
#include <numeric>

#include "util/check.h"

namespace monge::lis {

std::int64_t lis_length(std::span<const std::int64_t> seq) {
  std::vector<std::int64_t> tails;  // tails[k] = min tail of an IS of len k+1
  for (std::int64_t x : seq) {
    const auto it = std::lower_bound(tails.begin(), tails.end(), x);
    if (it == tails.end()) {
      tails.push_back(x);
    } else {
      *it = x;
    }
  }
  return static_cast<std::int64_t>(tails.size());
}

std::int64_t lis_length_dp(std::span<const std::int64_t> seq) {
  const auto n = static_cast<std::int64_t>(seq.size());
  std::vector<std::int64_t> best(static_cast<std::size_t>(n), 1);
  std::int64_t ans = n == 0 ? 0 : 1;
  for (std::int64_t i = 0; i < n; ++i) {
    for (std::int64_t j = 0; j < i; ++j) {
      if (seq[static_cast<std::size_t>(j)] < seq[static_cast<std::size_t>(i)]) {
        best[static_cast<std::size_t>(i)] =
            std::max(best[static_cast<std::size_t>(i)],
                     best[static_cast<std::size_t>(j)] + 1);
      }
    }
    ans = std::max(ans, best[static_cast<std::size_t>(i)]);
  }
  return ans;
}

std::int64_t lis_window(std::span<const std::int64_t> seq, std::int64_t l,
                        std::int64_t r) {
  // Empty windows (l > r, including the r == -1 empty-sequence query) are
  // legitimate and answer 0; only non-empty windows must be in range.
  if (l > r) return 0;
  MONGE_CHECK(l >= 0 && r < static_cast<std::int64_t>(seq.size()));
  return lis_length(seq.subspan(static_cast<std::size_t>(l),
                                static_cast<std::size_t>(r - l + 1)));
}

std::vector<std::int64_t> lis_window_batch(
    std::span<const std::int64_t> seq,
    std::span<const std::pair<std::int64_t, std::int64_t>> windows) {
  std::vector<std::int64_t> out;
  out.reserve(windows.size());
  for (const auto& [l, r] : windows) out.push_back(lis_window(seq, l, r));
  return out;
}

std::vector<std::int32_t> rank_reduce_strict(
    std::span<const std::int64_t> seq) {
  const auto n = static_cast<std::int64_t>(seq.size());
  std::vector<std::int32_t> order(static_cast<std::size_t>(n));
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](std::int32_t x, std::int32_t y) {
    if (seq[static_cast<std::size_t>(x)] != seq[static_cast<std::size_t>(y)]) {
      return seq[static_cast<std::size_t>(x)] < seq[static_cast<std::size_t>(y)];
    }
    return x > y;  // equal values: later position gets the smaller rank
  });
  std::vector<std::int32_t> rank(static_cast<std::size_t>(n));
  for (std::int64_t k = 0; k < n; ++k) {
    rank[static_cast<std::size_t>(order[static_cast<std::size_t>(k)])] =
        static_cast<std::int32_t>(k);
  }
  return rank;
}

}  // namespace monge::lis
