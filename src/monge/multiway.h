// The H-way combine of §3.2/§3.3: given the colored union of H subproblem
// results PC,1..PC,H (a full permutation with colors), produce PC with
// PΣ_C = min_q F_q.
//
// Structure (exactly the paper's):
//   * vertical grid lines  x = 0, G, 2G, …, n  carry opt(·, jG) compressed
//     to at most H intervals, plus the δ_{k,k+1} "technical detail" values;
//   * horizontal grid lines carry opt(iG, ·);
//   * a subgrid ("box") of size G×G is *crossed* if its four corner opt
//     values disagree; Lemma 3.11 bounds crossed boxes by O(nH/G);
//   * crossed boxes are solved locally from O(G)-sized inputs: boundary opt
//     chains, δ anchors on the right boundary, and the row/column strip
//     points (our packing sends a point to every crossed box of its
//     row/column block with matching color — a factor-H relaxation of the
//     Lemma 3.12 packing, documented in DESIGN.md);
//   * points in uncrossed boxes survive iff their color equals the box's
//     uniform opt value; interesting cells (Lemma 3.9) are added by the box
//     solver.
//
// This module is pure sequential logic. The MPC algorithm (core/) reuses
// LineData and solve_box and replaces the line sweeps by the O(1)-round
// tree descent over batched rank queries.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "monge/delta.h"
#include "monge/permutation.h"

namespace monge {

/// opt(·) along one grid line, compressed to intervals, plus anchors.
struct LineData {
  /// Position of the line (a column for vertical lines, a row for
  /// horizontal ones), in [0, n].
  std::int64_t pos = 0;
  /// Interval starts: opt equals value[k] on [start[k], start[k+1]).
  /// start[0] == 0, starts strictly increasing, values strictly increasing.
  std::vector<std::int64_t> start;
  std::vector<std::int32_t> value;
  /// For vertical lines only: delta_anchor[g][k-kmin] with kmin=0 here:
  /// δ_{k,k+1}(gG, pos) for every grid row index g and every k in [0,H-1).
  /// (O((n/G)·H) words per line.)
  std::vector<std::vector<std::int64_t>> grid_anchors;

  /// opt at a coordinate t in [0, n].
  std::int32_t opt_at(std::int64_t t) const;
};

/// Sweeps F_q(i, col) over i for a vertical line (exact, O(nH)).
/// grid_g > 0 also records δ anchors at multiples of grid_g.
LineData sweep_vertical_line(const ColoredPointSet& s, std::int64_t col,
                             std::int64_t grid_g);

/// Sweeps F_q(row, j) over j for a horizontal line (exact, O(nH)).
LineData sweep_horizontal_line(const ColoredPointSet& s, std::int64_t row);

/// One crossed subgrid instance (§3.3). Lattice rows [r0, r1] and columns
/// [c0, c1]; cells [r0,r1) × [c0,c1).
struct BoxTask {
  std::int64_t r0, r1, c0, c1;
  std::int32_t kmin, kmax;  // corner opt range; demarcation lines kmin..kmax-1
  std::vector<std::int32_t> top_opt;    // opt(r0, c), c in [c0..c1]
  std::vector<std::int32_t> right_opt;  // opt(r, c1), r in [r0..r1]
  /// δ_{kmin+t, kmin+t+1}(r0, c1) for t in [0, kmax-kmin).
  std::vector<std::int64_t> anchor;
  /// Points with row in [r0, r1), color in [kmin, kmax] (whole rows).
  std::vector<ColoredPoint> row_points;
  /// Points with col in [c0, c1), color in [kmin, kmax] (whole columns).
  std::vector<ColoredPoint> col_points;
};

struct BoxResult {
  std::vector<Point> interesting;  // Lemma 3.9 cells (always PC = 1)
  /// Points inside the box that survive (color == opt(r+1,c+1) and cell not
  /// interesting).
  std::vector<Point> surviving;
};

/// Solves one crossed box with the §3.3 frontier DP.
/// O((r1-r0)(c1-c0)(kmax-kmin)) time, O(G + H) extra space.
BoxResult solve_box(const BoxTask& task);

struct MultiwayStats {
  std::int64_t lines = 0;
  std::int64_t crossed_boxes = 0;
  std::int64_t interesting_points = 0;
};

/// Full sequential combine with grid spacing `box_g`; reference
/// implementation for the distributed version. Requires a full union.
Perm multiway_combine_seq(const ColoredPointSet& s, std::int64_t box_g,
                          MultiwayStats* stats = nullptr);

}  // namespace monge
