// Core-sparse representation of full permutation matrices, after
// Gorbachev et al., "Core-Sparse Monge Matrix Multiplication" (PAPERS.md,
// arXiv 2408.04613).
//
// The *core* of a full permutation P are its non-trivial seaweeds: the rows
// r with P(r) != r, i.e. the points off the main diagonal. Real workloads
// (near-identical strings through the Hunt–Szymanski reduction, LIS of
// almost-sorted feeds) produce permutations whose core is a tiny fraction
// of n, and every operation here costs near the core size instead of n:
//
//   * CoreSparsePerm stores only the core points (sorted by row) plus the
//     implied identity runs between them — O(core) space, lossless
//     to_dense / from_dense round-trip, O(1) core_size() probe.
//   * core_sparse_multiply computes PA ⊡ PB via the common-block
//     decomposition: a boundary m is *clean* for P when P([0,m)) = [0,m),
//     and boundaries clean for BOTH inputs cut the product into independent
//     diagonal blocks (the seaweed braid never crosses a clean boundary, so
//     ⊡ distributes over the direct sum). Blocks where one side restricts
//     to the identity are copied verbatim (id ⊡ X = X ⊡ id = X); only
//     blocks where both cores interact pay a dense solve, delegated to the
//     caller-supplied solver (the SeaweedEngine in production, an O(n^3)
//     oracle in tests). Total cost O(core_a + core_b) for the decomposition
//     plus the dense solves over interacting blocks only.
//
// SeaweedEngine consumes the same decomposition internally (streaming over
// dense spans in arena scratch, no CoreSparsePerm materialization) when a
// probed node's density is below SeaweedEngineOptions::core_density_cutoff;
// this header is the representation-level API for callers that want to
// hold, inspect or multiply permutations in core-sparse form directly —
// and the ground truth the engine's streaming path is fuzzed against.
//
// The product permutation PA ⊡ PB is mathematically unique, so every path
// (core-sparse, engine-adaptive, dense reference) is bit-identical on every
// input; tests/test_core_sparse.cpp enforces that differentially.
#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <vector>

namespace monge {

/// One maximal run of fixed points (p[i] == i for start <= i < start+len)
/// between core points — the boundary run-length metadata of the
/// representation, recovered from the gaps of the sorted core rows.
struct IdentityRun {
  /// First row of the run.
  std::int32_t start = 0;
  /// Number of consecutive fixed rows.
  std::int32_t len = 0;
  friend bool operator==(const IdentityRun&, const IdentityRun&) = default;
};

/// A full permutation of [0, n) stored as its core: the points with
/// p[row] != row, sorted by row. Space is O(core_size); the identity
/// permutation of any n is zero bytes of payload.
class CoreSparsePerm {
 public:
  /// Empty (n = 0) permutation.
  CoreSparsePerm() = default;

  /// Builds the core-sparse form of a dense row->col array. Validates that
  /// `p` is a full permutation of [0, p.size()) and throws std::logic_error
  /// otherwise. O(n) time, O(core) result space.
  ///
  /// @param p dense row->col array of a full permutation.
  /// @return the equivalent core-sparse representation.
  static CoreSparsePerm from_dense(std::span<const std::int32_t> p);

  /// The n×n identity — the canonical zero-core permutation.
  ///
  /// @param n matrix dimension; must be >= 0.
  /// @return a CoreSparsePerm with core_size() == 0.
  static CoreSparsePerm identity(std::int64_t n);

  /// Lossless inverse of from_dense: materializes the dense row->col array.
  ///
  /// @return dense row->col array of size n().
  std::vector<std::int32_t> to_dense() const;

  /// Allocation-free to_dense.
  ///
  /// @param out receives the dense row->col array; out.size() must be n().
  void to_dense_into(std::span<std::int32_t> out) const;

  /// @return the matrix dimension n.
  std::int64_t n() const { return n_; }

  /// The cheap density probe: number of non-fixed rows. O(1).
  ///
  /// @return the number of core points.
  std::int64_t core_size() const {
    return static_cast<std::int64_t>(rows_.size());
  }

  /// @return core_size() / n, or 0.0 when n == 0 (the identity convention —
  ///     an empty permutation has nothing off-diagonal).
  double core_density() const {
    return n_ == 0 ? 0.0
                   : static_cast<double>(core_size()) / static_cast<double>(n_);
  }

  /// @return the core rows, sorted ascending.
  std::span<const std::int32_t> core_rows() const { return rows_; }

  /// @return the core columns, parallel to core_rows() (core_cols()[i] is
  ///     the image of core_rows()[i]).
  std::span<const std::int32_t> core_cols() const { return cols_; }

  /// The boundary run-length metadata: the maximal identity runs between
  /// core points, in row order. Their total length is n - core_size().
  ///
  /// @return the runs, possibly empty (a full-core permutation has none).
  std::vector<IdentityRun> identity_runs() const;

  friend bool operator==(const CoreSparsePerm&,
                         const CoreSparsePerm&) = default;

 private:
  friend CoreSparsePerm core_sparse_multiply(
      const CoreSparsePerm& a, const CoreSparsePerm& b,
      const std::function<void(std::span<const std::int32_t>,
                               std::span<const std::int32_t>,
                               std::span<std::int32_t>)>& solve_block);

  std::int64_t n_ = 0;
  std::vector<std::int32_t> rows_;
  std::vector<std::int32_t> cols_;
};

/// Number of non-fixed rows of a dense row->col array — Perm::core_size()
/// for raw spans. O(n).
///
/// @param p dense row->col array (need not be validated).
/// @return the count of indices with p[i] != i.
std::int64_t core_size_of(std::span<const std::int32_t> p);

/// Early-exit density probe: true iff `p` has more than `limit` non-fixed
/// rows. Stops scanning at the (limit+1)-th core element, so probing a
/// dense random permutation against a small cutoff is O(limit), not O(n).
///
/// @param p dense row->col array.
/// @param limit inclusive core budget; negative always exceeds (even n=0,
///   since core size >= 0 > limit).
/// @return whether core_size_of(p) > limit.
bool core_exceeds(std::span<const std::int32_t> p, std::int64_t limit);

/// Dense solver callback for interacting blocks of core_sparse_multiply:
/// receives two full permutations of the same (block-local) size and must
/// write their seaweed product PA ⊡ PB into `out`. Values are 0-based
/// within the block; `out` never aliases the inputs.
using DenseBlockSolver = std::function<void(
    std::span<const std::int32_t> a, std::span<const std::int32_t> b,
    std::span<std::int32_t> out)>;

/// Core-sparse seaweed product PC = PA ⊡ PB via the common-block
/// decomposition (see the file comment). Cost: O(core_a + core_b) plus one
/// `solve_block` call per block where both cores interact — zero dense work
/// when either input restricts to the identity everywhere.
///
/// @param a left operand.
/// @param b right operand; b.n() must equal a.n().
/// @param solve_block dense solver for interacting blocks (e.g. a
///     SeaweedEngine multiply_into wrapper).
/// @return the product in core-sparse form; bit-identical (after to_dense)
///     to the dense engine product for every input.
CoreSparsePerm core_sparse_multiply(const CoreSparsePerm& a,
                                    const CoreSparsePerm& b,
                                    const DenseBlockSolver& solve_block);

/// Convenience overload: interacting blocks are solved by the calling
/// thread's default_seaweed_engine().
///
/// @param a left operand.
/// @param b right operand; b.n() must equal a.n().
/// @return the product in core-sparse form.
CoreSparsePerm core_sparse_multiply(const CoreSparsePerm& a,
                                    const CoreSparsePerm& b);

}  // namespace monge
