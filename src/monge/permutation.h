// (Sub-)permutation matrices in the index representation of §2.1.
//
// A rows()×cols() matrix P is a sub-permutation matrix if every entry is 0/1
// and every row and column contains at most one 1; it is a permutation matrix
// if additionally rows() == cols() and every row/column contains exactly one.
// We store `row_to_col[r] = c` for a point in row r (at half-integer
// coordinates (r+1/2, c+1/2) in the paper's notation), or kNone for an empty
// row. This is exactly the representation Theorem 1.1 takes as input.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "util/rng.h"

namespace monge {

inline constexpr std::int32_t kNone = -1;

struct Point {
  std::int64_t row = 0;
  std::int64_t col = 0;
  friend bool operator==(const Point&, const Point&) = default;
  friend auto operator<=>(const Point&, const Point&) = default;
};

class Perm {
 public:
  Perm() = default;
  /// All-zero rows×cols sub-permutation.
  Perm(std::int64_t rows, std::int64_t cols);

  /// n×n identity permutation.
  static Perm identity(std::int64_t n);
  /// n×n anti-diagonal permutation (row r -> col n-1-r).
  static Perm reverse(std::int64_t n);
  /// Takes ownership of a row_to_col array; validates (throws on duplicate
  /// columns or out-of-range entries).
  static Perm from_rows(std::vector<std::int32_t> row_to_col,
                        std::int64_t cols);
  static Perm from_points(std::int64_t rows, std::int64_t cols,
                          std::span<const Point> pts);
  /// Uniformly random full n×n permutation.
  static Perm random(std::int64_t n, Rng& rng);
  /// Random sub-permutation with exactly k points.
  static Perm random_sub(std::int64_t rows, std::int64_t cols, std::int64_t k,
                         Rng& rng);

  std::int64_t rows() const { return static_cast<std::int64_t>(row_to_col_.size()); }
  std::int64_t cols() const { return cols_; }

  std::int32_t col_of(std::int64_t r) const {
    return row_to_col_[static_cast<std::size_t>(r)];
  }
  bool row_empty(std::int64_t r) const { return col_of(r) == kNone; }
  void set(std::int64_t r, std::int64_t c);
  void clear_row(std::int64_t r);

  /// Number of nonzero entries (O(rows)).
  std::int64_t point_count() const;
  /// Number of rows that differ from the identity pattern: col_of(r) != r,
  /// with empty (kNone) rows counting as off-identity. For full
  /// permutations this is the core size of src/monge/core_sparse.h — the
  /// quantity SeaweedEngineOptions::core_density_cutoff dispatches on.
  /// O(rows).
  std::int64_t core_size() const;
  /// core_size() / rows(), or 0.0 for an empty matrix. The measurement
  /// operators feed tools/core_stats traces through to size the engine's
  /// density cutoff.
  double core_density() const;
  /// True iff square and every row and column has exactly one point.
  bool is_full_permutation() const;
  /// Points sorted by row.
  std::vector<Point> points() const;
  /// Matrix transpose: point (r, c) -> (c, r). For full permutations this is
  /// the inverse permutation (Lemma 2.3 computes it in one MPC round).
  Perm transposed() const;
  /// col -> row map of size cols() (kNone where the column is empty).
  std::vector<std::int32_t> col_to_row() const;

  const std::vector<std::int32_t>& row_to_col() const { return row_to_col_; }

  friend bool operator==(const Perm&, const Perm&) = default;

 private:
  std::vector<std::int32_t> row_to_col_;
  std::int64_t cols_ = 0;
};

}  // namespace monge
