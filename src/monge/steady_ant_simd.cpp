#include "monge/steady_ant_simd.h"

#include <cstdlib>
#include <vector>

#include "monge/permutation.h"
#include "monge/steady_ant.h"
#include "monge/steady_ant_simd_impl.h"
#include "util/check.h"

#if defined(__SSE2__)
#include <emmintrin.h>
#define MONGE_STEADY_ANT_HAVE_SSE2 1
#endif
#if defined(__ARM_NEON) && defined(__aarch64__)
#include <arm_neon.h>
#define MONGE_STEADY_ANT_HAVE_NEON 1
#endif

namespace monge {

namespace {

#if defined(MONGE_STEADY_ANT_HAVE_SSE2)

/// SSE2 block primitives (W = 4). No hardware gather, so resolve_block
/// spills the four column indices and loads t[c+1] scalar; the compare and
/// blend halves stay vectorized (blend emulated with and/andnot/or — SSE2
/// has no blendv).
struct Sse2Ops {
  static constexpr std::int64_t kWidth = 4;

  static std::uint32_t step_mask(const std::int32_t* rows, std::int32_t thr) {
    const __m128i pk =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(rows));
    const __m128i one = _mm_set1_epi32(1);
    // (pk > thr) XOR (pk odd), both as 0/-1 lane masks.
    const __m128i gt = _mm_cmpgt_epi32(pk, _mm_set1_epi32(thr));
    const __m128i odd = _mm_cmpeq_epi32(_mm_and_si128(pk, one), one);
    return static_cast<std::uint32_t>(
        _mm_movemask_ps(_mm_castsi128_ps(_mm_xor_si128(gt, odd))));
  }

  static void resolve_block(const std::int32_t* rows, std::int32_t r0,
                            const std::int32_t* t, std::int32_t* out) {
    const __m128i pk =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(rows));
    const __m128i one = _mm_set1_epi32(1);
    const __m128i c = _mm_srli_epi32(pk, 1);
    alignas(16) std::int32_t ci[4];
    _mm_store_si128(reinterpret_cast<__m128i*>(ci), c);
    const __m128i tcp1 =
        _mm_setr_epi32(t[ci[0] + 1], t[ci[1] + 1], t[ci[2] + 1], t[ci[3] + 1]);
    const __m128i rv =
        _mm_add_epi32(_mm_set1_epi32(r0), _mm_setr_epi32(0, 1, 2, 3));
    // e = [r >= t[c+1]] = NOT (t[c+1] > r); write iff odd == e, i.e. the
    // XOR of the odd mask with NOT-e is all-ones.
    const __m128i not_e = _mm_cmpgt_epi32(tcp1, rv);
    const __m128i odd = _mm_cmpeq_epi32(_mm_and_si128(pk, one), one);
    const __m128i wr = _mm_xor_si128(odd, not_e);
    const __m128i old =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(out));
    const __m128i res =
        _mm_or_si128(_mm_and_si128(wr, c), _mm_andnot_si128(wr, old));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(out), res);
  }
};

#endif  // MONGE_STEADY_ANT_HAVE_SSE2

#if defined(MONGE_STEADY_ANT_HAVE_NEON)

/// NEON block primitives (W = 4), aarch64 only (vaddvq). Mirrors Sse2Ops;
/// the blend is a native vbslq.
struct NeonOps {
  static constexpr std::int64_t kWidth = 4;

  static std::uint32_t step_mask(const std::int32_t* rows, std::int32_t thr) {
    const int32x4_t pk = vld1q_s32(rows);
    const int32x4_t one = vdupq_n_s32(1);
    const uint32x4_t gt = vcgtq_s32(pk, vdupq_n_s32(thr));
    const uint32x4_t odd =
        vceqq_s32(vandq_s32(pk, one), one);
    const uint32x4_t step = veorq_u32(gt, odd);
    static const std::uint32_t kBits[4] = {1u, 2u, 4u, 8u};
    return vaddvq_u32(vandq_u32(step, vld1q_u32(kBits)));
  }

  static void resolve_block(const std::int32_t* rows, std::int32_t r0,
                            const std::int32_t* t, std::int32_t* out) {
    const int32x4_t pk = vld1q_s32(rows);
    const int32x4_t one = vdupq_n_s32(1);
    // Packs are non-negative, so the arithmetic shift equals a logical one.
    const int32x4_t c = vshrq_n_s32(pk, 1);
    std::int32_t ci[4];
    vst1q_s32(ci, c);
    const std::int32_t tc[4] = {t[ci[0] + 1], t[ci[1] + 1], t[ci[2] + 1],
                                t[ci[3] + 1]};
    const int32x4_t tcp1 = vld1q_s32(tc);
    static const std::int32_t kLane[4] = {0, 1, 2, 3};
    const int32x4_t rv = vaddq_s32(vdupq_n_s32(r0), vld1q_s32(kLane));
    const uint32x4_t not_e = vcgtq_s32(tcp1, rv);
    const uint32x4_t odd = vceqq_s32(vandq_s32(pk, one), one);
    const uint32x4_t wr = veorq_u32(odd, not_e);
    const int32x4_t old = vld1q_s32(out);
    vst1q_s32(out, vbslq_s32(wr, c, old));
  }
};

#endif  // MONGE_STEADY_ANT_HAVE_NEON

bool force_scalar_env() {
  const char* v = std::getenv("MONGE_FORCE_SCALAR");
  return v != nullptr && v[0] != '\0' && !(v[0] == '0' && v[1] == '\0');
}

bool cpu_has_avx2() {
#if defined(__GNUC__) && (defined(__x86_64__) || defined(__i386__))
  return __builtin_cpu_supports("avx2") != 0;
#else
  return false;
#endif
}

const std::vector<SteadyAntIsa>& available_isas_vec() {
  static const std::vector<SteadyAntIsa> isas = [] {
    std::vector<SteadyAntIsa> v{SteadyAntIsa::kScalar};
#if defined(MONGE_STEADY_ANT_HAVE_SSE2)
    v.push_back(SteadyAntIsa::kSse2);
#endif
    if (detail::steady_ant_avx2_compiled() && cpu_has_avx2()) {
      v.push_back(SteadyAntIsa::kAvx2);
    }
#if defined(MONGE_STEADY_ANT_HAVE_NEON)
    v.push_back(SteadyAntIsa::kNeon);
#endif
    return v;
  }();
  return isas;
}

}  // namespace

const char* steady_ant_isa_name(SteadyAntIsa isa) {
  switch (isa) {
    case SteadyAntIsa::kScalar:
      return "scalar";
    case SteadyAntIsa::kSse2:
      return "sse2";
    case SteadyAntIsa::kAvx2:
      return "avx2";
    case SteadyAntIsa::kNeon:
      return "neon";
  }
  return "unknown";
}

std::span<const SteadyAntIsa> steady_ant_available_isas() {
  return available_isas_vec();
}

SteadyAntIsa steady_ant_active_isa() {
  static const SteadyAntIsa isa = force_scalar_env()
                                      ? SteadyAntIsa::kScalar
                                      : available_isas_vec().back();
  return isa;
}

// monge-lint: hot
void steady_ant_packed_into(SteadyAntIsa isa,
                            std::span<const std::int32_t> row_pk,
                            std::span<std::int32_t> col_pk,
                            std::span<std::int32_t> t,
                            std::span<std::int32_t> out) {
  const auto n = row_pk.size();
  MONGE_CHECK(col_pk.size() == n && out.size() == n && t.size() == n + 1);
  // Degenerate shapes resolve here, before any kernel is selected: the
  // ISA paths (and their W-row block loads) never run on empty spans. The
  // scalar walk handles n <= 1 exactly (no descent, no block loads), so
  // delegate rather than hand-replicate its output.
  if (n <= 1) {
    steady_ant_packed_scalar(row_pk, col_pk, t, out);
    return;
  }
  switch (isa) {
    case SteadyAntIsa::kScalar:
      steady_ant_packed_scalar(row_pk, col_pk, t, out);
      return;
    case SteadyAntIsa::kSse2:
#if defined(MONGE_STEADY_ANT_HAVE_SSE2)
      detail::combine_blocked<Sse2Ops>(row_pk, col_pk, t, out);
      return;
#else
      break;
#endif
    case SteadyAntIsa::kAvx2:
      if (detail::steady_ant_avx2_compiled() && cpu_has_avx2()) {
        detail::steady_ant_packed_avx2(row_pk, col_pk, t, out);
        return;
      }
      break;
    case SteadyAntIsa::kNeon:
#if defined(MONGE_STEADY_ANT_HAVE_NEON)
      detail::combine_blocked<NeonOps>(row_pk, col_pk, t, out);
      return;
#else
      break;
#endif
  }
  MONGE_CHECK_MSG(false, "steady-ant ISA path not available in this build: "
                             << steady_ant_isa_name(isa));
}

// monge-lint: hot
void steady_ant_packed_into(std::span<const std::int32_t> row_pk,
                            std::span<std::int32_t> col_pk,
                            std::span<std::int32_t> t,
                            std::span<std::int32_t> out) {
  steady_ant_packed_into(steady_ant_active_isa(), row_pk, col_pk, t, out);
}

}  // namespace monge
