// Sequential O(n log n) implicit unit-Monge multiplication
// PC = PA ⊡ PB for full n×n permutation matrices.
//
// This is Tiskin's divide-and-conquer: split PA into column halves and PB
// into row halves (§3.1 with H = 2), compact empty rows/columns, recurse,
// re-expand through the M_A/M_B index maps, and combine the two colored
// subresults with the steady ant. T(n) = 2 T(n/2) + O(n) = O(n log n).
//
// It is both the sequential baseline the MPC algorithm is measured against
// and the local solver every simulated machine runs once a subproblem fits
// in its memory.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "monge/permutation.h"

namespace monge {

/// Raw variant on index arrays (both inputs full permutations of [0,n)).
/// Runs on the thread-local SeaweedEngine (see monge/engine.h): arena-backed
/// and allocation-free (beyond the result) after the first call of a given
/// size.
std::vector<std::int32_t> seaweed_multiply_raw(std::span<const std::int32_t> a,
                                               std::span<const std::int32_t> b);

/// The textbook recursion (one fresh std::vector per node), kept as the
/// reference baseline the engine is fuzzed and benchmarked against.
std::vector<std::int32_t> seaweed_multiply_reference_raw(
    const std::vector<std::int32_t>& a, const std::vector<std::int32_t>& b);

/// PC = PA ⊡ PB for full permutations (validating wrapper).
Perm seaweed_multiply(const Perm& a, const Perm& b);

}  // namespace monge
