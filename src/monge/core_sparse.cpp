#include "monge/core_sparse.h"

#include <algorithm>
#include <limits>
#include <numeric>

#include "monge/engine.h"
#include "util/check.h"

namespace monge {

namespace {

void check_full_permutation(std::span<const std::int32_t> p) {
  const auto n = static_cast<std::int64_t>(p.size());
  MONGE_CHECK_MSG(n <= std::numeric_limits<std::int32_t>::max(),
                  "CoreSparsePerm: size " << n << " exceeds int32 indexing");
  std::vector<bool> seen(static_cast<std::size_t>(n), false);
  for (std::int64_t r = 0; r < n; ++r) {
    const std::int32_t c = p[static_cast<std::size_t>(r)];
    MONGE_CHECK_MSG(c >= 0 && c < n && !seen[static_cast<std::size_t>(c)],
                    "CoreSparsePerm: not a full permutation (row "
                        << r << " -> col " << c << ")");
    seen[static_cast<std::size_t>(c)] = true;
  }
}

}  // namespace

CoreSparsePerm CoreSparsePerm::from_dense(std::span<const std::int32_t> p) {
  check_full_permutation(p);
  CoreSparsePerm out;
  out.n_ = static_cast<std::int64_t>(p.size());
  for (std::int64_t r = 0; r < out.n_; ++r) {
    const std::int32_t c = p[static_cast<std::size_t>(r)];
    if (c != r) {
      out.rows_.push_back(static_cast<std::int32_t>(r));
      out.cols_.push_back(c);
    }
  }
  return out;
}

CoreSparsePerm CoreSparsePerm::identity(std::int64_t n) {
  MONGE_CHECK_MSG(n >= 0 && n <= std::numeric_limits<std::int32_t>::max(),
                  "CoreSparsePerm::identity: bad n " << n);
  CoreSparsePerm out;
  out.n_ = n;
  return out;
}

std::vector<std::int32_t> CoreSparsePerm::to_dense() const {
  std::vector<std::int32_t> out(static_cast<std::size_t>(n_));
  to_dense_into(out);
  return out;
}

void CoreSparsePerm::to_dense_into(std::span<std::int32_t> out) const {
  MONGE_CHECK_MSG(static_cast<std::int64_t>(out.size()) == n_,
                  "CoreSparsePerm::to_dense_into: out.size() "
                      << out.size() << " != n " << n_);
  std::iota(out.begin(), out.end(), std::int32_t{0});
  for (std::size_t i = 0; i < rows_.size(); ++i) {
    out[static_cast<std::size_t>(rows_[i])] = cols_[i];
  }
}

std::vector<IdentityRun> CoreSparsePerm::identity_runs() const {
  std::vector<IdentityRun> runs;
  std::int64_t cursor = 0;
  for (const std::int32_t r : rows_) {
    if (r > cursor) {
      runs.push_back({static_cast<std::int32_t>(cursor),
                      static_cast<std::int32_t>(r - cursor)});
    }
    cursor = r + 1;
  }
  if (n_ > cursor) {
    runs.push_back({static_cast<std::int32_t>(cursor),
                    static_cast<std::int32_t>(n_ - cursor)});
  }
  return runs;
}

// monge-lint: hot
std::int64_t core_size_of(std::span<const std::int32_t> p) {
  std::int64_t core = 0;
  for (std::int64_t i = 0; i < static_cast<std::int64_t>(p.size()); ++i) {
    core += p[static_cast<std::size_t>(i)] != i;
  }
  return core;
}

// monge-lint: hot
bool core_exceeds(std::span<const std::int32_t> p, std::int64_t limit) {
  if (limit < 0) return true;  // core size >= 0 > limit for every input
  std::int64_t core = 0;
  for (std::int64_t i = 0; i < static_cast<std::int64_t>(p.size()); ++i) {
    core += p[static_cast<std::size_t>(i)] != i;
    if (core > limit) return true;
  }
  return false;
}

namespace {

/// Inclusive range [lo, hi] of boundaries a core point blocks: the seaweed
/// of point (r, c) crosses every vertical boundary strictly between its row
/// and its column, so boundaries min(r,c)+1 .. max(r,c) cannot be clean.
struct BlockedSpan {
  std::int32_t lo;
  std::int32_t hi;
};

void append_spans(const CoreSparsePerm& p, std::vector<BlockedSpan>& spans) {
  const auto rows = p.core_rows();
  const auto cols = p.core_cols();
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const std::int32_t r = rows[i];
    const std::int32_t c = cols[i];
    spans.push_back({std::min(r, c) + 1, std::max(r, c)});
  }
}

}  // namespace

CoreSparsePerm core_sparse_multiply(const CoreSparsePerm& a,
                                    const CoreSparsePerm& b,
                                    const DenseBlockSolver& solve_block) {
  MONGE_CHECK_MSG(a.n() == b.n(), "core_sparse_multiply: size mismatch "
                                      << a.n() << " vs " << b.n());
  CoreSparsePerm out = CoreSparsePerm::identity(a.n());
  if (a.core_size() == 0) return b;
  if (b.core_size() == 0) return a;

  // Every boundary blocked by either core, as sorted merged spans; the
  // complement boundaries are clean for BOTH inputs, so each merged span
  // [s, e] of blocked boundaries is one independent diagonal block over
  // rows [s-1, e] (direct-sum decomposition of the seaweed product).
  std::vector<BlockedSpan> spans;
  spans.reserve(static_cast<std::size_t>(a.core_size() + b.core_size()));
  append_spans(a, spans);
  append_spans(b, spans);
  std::sort(spans.begin(), spans.end(),
            [](const BlockedSpan& x, const BlockedSpan& y) {
              return x.lo < y.lo;
            });

  std::vector<std::int32_t> out_rows;
  std::vector<std::int32_t> out_cols;
  std::vector<std::int32_t> da;
  std::vector<std::int32_t> db;
  std::vector<std::int32_t> dc;
  std::size_t ia = 0;  // cursor into a's core (blocks ascend, rows ascend)
  std::size_t ib = 0;  // cursor into b's core

  std::size_t i = 0;
  while (i < spans.size()) {
    // Merge overlapping/adjacent spans into one maximal blocked run.
    std::int32_t s = spans[i].lo;
    std::int32_t e = spans[i].hi;
    for (++i; i < spans.size() && spans[i].lo <= e + 1; ++i) {
      e = std::max(e, spans[i].hi);
    }
    const std::int64_t lo = s - 1;   // first row of the block
    const std::int64_t hi = e + 1;   // one past the last row
    const std::int64_t size = hi - lo;

    // Gather each core's points inside the block. Every core point lies in
    // exactly one block (its blocked span is a subset of one merged run).
    const std::size_t a_begin = ia;
    while (ia < a.core_rows().size() && a.core_rows()[ia] < hi) ++ia;
    const std::size_t b_begin = ib;
    while (ib < b.core_rows().size() && b.core_rows()[ib] < hi) ++ib;
    const std::size_t ca = ia - a_begin;
    const std::size_t cb = ib - b_begin;

    if (cb == 0) {
      // B restricts to the identity here: the block's product is A's block.
      out_rows.insert(out_rows.end(), a.core_rows().begin() + a_begin,
                      a.core_rows().begin() + ia);
      out_cols.insert(out_cols.end(), a.core_cols().begin() + a_begin,
                      a.core_cols().begin() + ia);
      continue;
    }
    if (ca == 0) {
      out_rows.insert(out_rows.end(), b.core_rows().begin() + b_begin,
                      b.core_rows().begin() + ib);
      out_cols.insert(out_cols.end(), b.core_cols().begin() + b_begin,
                      b.core_cols().begin() + ib);
      continue;
    }

    // Both cores interact: materialize the dense block (shifted to [0,size))
    // and delegate to the dense solver.
    da.resize(static_cast<std::size_t>(size));
    db.resize(static_cast<std::size_t>(size));
    dc.resize(static_cast<std::size_t>(size));
    std::iota(da.begin(), da.end(), std::int32_t{0});
    std::iota(db.begin(), db.end(), std::int32_t{0});
    for (std::size_t k = a_begin; k < ia; ++k) {
      da[static_cast<std::size_t>(a.core_rows()[k] - lo)] =
          static_cast<std::int32_t>(a.core_cols()[k] - lo);
    }
    for (std::size_t k = b_begin; k < ib; ++k) {
      db[static_cast<std::size_t>(b.core_rows()[k] - lo)] =
          static_cast<std::int32_t>(b.core_cols()[k] - lo);
    }
    solve_block(da, db, dc);
    for (std::int64_t r = 0; r < size; ++r) {
      const std::int32_t c = dc[static_cast<std::size_t>(r)];
      if (c != r) {
        out_rows.push_back(static_cast<std::int32_t>(lo + r));
        out_cols.push_back(static_cast<std::int32_t>(lo + c));
      }
    }
  }

  out.rows_ = std::move(out_rows);
  out.cols_ = std::move(out_cols);
  return out;
}

CoreSparsePerm core_sparse_multiply(const CoreSparsePerm& a,
                                    const CoreSparsePerm& b) {
  return core_sparse_multiply(
      a, b,
      [](std::span<const std::int32_t> da, std::span<const std::int32_t> db,
         std::span<std::int32_t> dc) {
        default_seaweed_engine().multiply_into(da, db, dc);
      });
}

}  // namespace monge
