// SIMD-friendly steady-ant combine with runtime ISA dispatch.
//
// The steady-ant walk (steady_ant.h) is the hot inner loop of every seaweed
// product: the Lemma 3.9 combine runs once per node of the multiply
// recursion, for every entry point of the SeaweedEngine. The scalar walk is
// branch-heavy in two places — the data-dependent `while (delta > 0)`
// descent, and the per-row resolution pass. The accelerated paths here
// restructure both:
//
//   * the descent advances in W-row blocks: one vector compare over the
//     packed `row_pk` slab yields the Lemma 3.4 step bits for W rows at
//     once (a movemask; the stopping row is the mask's top set bit), so a
//     long descent costs O(steps / W) branch-light block hops instead of
//     `steps` dependent branches;
//   * the non-interesting-row resolution pass becomes a pure mask-select
//     over `row_pk`: per row, write the point's column iff its color equals
//     e = [r >= t(c+1)] — a compare + blend with no branches. (The write is
//     idempotent on interesting cells, which the walk already placed, so
//     no per-row "interesting?" test is needed.)
//
// Explicit SSE2 (W=4), AVX2 (W=8, hardware gathers) and NEON (W=4) kernels
// are selected by runtime feature detection; compilation of each path is
// gated by CMake (see MONGE_STEADY_ANT_ENABLE_* in CMakeLists.txt). Every
// path is bit-identical to steady_ant_packed_scalar — `out`, `t` and
// `col_pk` — for every input; the differential fuzz and pinned goldens in
// tests/test_steady_ant.cpp enforce this.
//
// Escape hatch: setting the MONGE_FORCE_SCALAR environment variable to a
// non-empty value other than "0" pins the dispatched entry point to the
// scalar walk (resolved once, at first use). This maps any benchmark or
// repro back onto the pre-SIMD path without rebuilding.
#pragma once

#include <cstdint>
#include <span>

namespace monge {

/// The combine kernels this build knows about. kScalar is always present;
/// the others exist only when compiled in AND supported by the host CPU.
enum class SteadyAntIsa : std::uint8_t { kScalar, kSse2, kAvx2, kNeon };

/// Human-readable name ("scalar", "sse2", "avx2", "neon"); never null.
const char* steady_ant_isa_name(SteadyAntIsa isa);

/// The ISA paths usable in this process: compiled into the binary and
/// passing runtime CPU feature detection. Ordered narrowest to widest;
/// the first entry is always kScalar. Stable for the process lifetime.
std::span<const SteadyAntIsa> steady_ant_available_isas();

/// The path the dispatched steady_ant_packed_into uses: the widest
/// available ISA, unless MONGE_FORCE_SCALAR (see file comment) pins it to
/// kScalar. Resolved once, on first use.
SteadyAntIsa steady_ant_active_isa();

/// The steady-ant combine on packed points, forced onto a specific ISA
/// path (tests and A/B benchmarks). Contract and outputs are exactly
/// steady_ant_packed_scalar's: `row_pk[r]` = (col << 1) | color of row r's
/// point in the full n-point union; `col_pk` (size n) and `t` (size n + 1)
/// are scratch, overwritten; `out` (size n) receives the combined
/// product's row->col array. Degenerate shapes (n == 0, n == 1) are
/// resolved by explicit early-outs before the ISA path is even consulted,
/// so ISA kernels never see an empty span — and those shapes succeed for
/// every `isa` value. For n >= 2, throws if `isa` is not available in
/// this process (check steady_ant_available_isas()).
void steady_ant_packed_into(SteadyAntIsa isa,
                            std::span<const std::int32_t> row_pk,
                            std::span<std::int32_t> col_pk,
                            std::span<std::int32_t> t,
                            std::span<std::int32_t> out);

/// Dispatched form: runs steady_ant_active_isa(). This is what the
/// SeaweedEngine's combine calls at every recursion node.
void steady_ant_packed_into(std::span<const std::int32_t> row_pk,
                            std::span<std::int32_t> col_pk,
                            std::span<std::int32_t> t,
                            std::span<std::int32_t> out);

}  // namespace monge
