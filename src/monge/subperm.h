// Theorem 1.2, sequential version: subunit-Monge multiplication of
// sub-permutation matrices by reduction to the permutation case (§4.1).
//
// Given PA (rA×n2) and PB (n2×cB):
//  1. delete empty rows of PA and empty columns of PB (they stay empty in
//     the product),
//  2. extend the compacted PA' (n1×n2) with n2−n1 fresh rows *above* it,
//     covering PA's empty columns in increasing order, producing a full
//     permutation P'A; symmetrically extend PB' with n2−n3 fresh columns
//     *to the right*, covering PB's empty rows,
//  3. multiply, and read PC out of the bottom-left n1×n3 block
//     ([∗ ∗; PC ∗] in the paper's display); the content of the ∗ blocks is
//     irrelevant as long as P'A, P'B are permutations.
#pragma once

#include "monge/permutation.h"

namespace monge {

class SeaweedEngine;

/// PC = PA ⊡ PB for sub-permutations (Lemma 2.2 guarantees PC exists and is
/// a sub-permutation). O((n2) log(n2)) on top of the compaction. Runs on
/// the thread-local default SeaweedEngine.
Perm subunit_multiply(const Perm& a, const Perm& b);

/// Same, but on a caller-provided engine (reusing its arena, and its thread
/// pool if configured).
Perm subunit_multiply(const Perm& a, const Perm& b, SeaweedEngine& engine);

}  // namespace monge
