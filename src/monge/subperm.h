// Theorem 1.2, sequential version: subunit-Monge multiplication of
// sub-permutation matrices by reduction to the permutation case (§4.1).
//
// Given PA (rA×n2) and PB (n2×cB):
//  1. delete empty rows of PA and empty columns of PB (they stay empty in
//     the product),
//  2. extend the compacted PA' (n1×n2) with n2−n1 fresh rows *above* it,
//     covering PA's empty columns in increasing order, producing a full
//     permutation P'A; symmetrically extend PB' with n2−n3 fresh columns
//     *to the right*, covering PB's empty rows,
//  3. multiply, and read PC out of the bottom-left n1×n3 block
//     ([∗ ∗; PC ∗] in the paper's display); the content of the ∗ blocks is
//     irrelevant as long as P'A, P'B are permutations.
//
// `subunit_multiply` runs this directly on the engine
// (SeaweedEngine::subunit_multiply_into): the compact/extend arithmetic
// happens in arena scratch and the product is read straight out of the
// core solve — no padded Perm temporaries. The explicit padding
// (SubunitPadding / subunit_pad_pair / subunit_unpad) is kept both as the
// legacy reference path (`subunit_multiply_padded`, differential-fuzzed
// against the direct path) and for callers that must materialize the
// padded permutations anyway — the MPC reduction in core/mpc_subperm
// feeds them to the cluster multiply.
#pragma once

#include <utility>
#include <vector>

#include "monge/permutation.h"

namespace monge {

class SeaweedEngine;

/// PC = PA ⊡ PB for sub-permutations (Lemma 2.2 guarantees PC exists and is
/// a sub-permutation). O((n2) log(n2)) on top of the compaction. Runs on
/// the thread-local default SeaweedEngine (whose arena is reused across
/// calls); deterministic — bit-identical to subunit_multiply_padded.
///
/// @param a sub-permutation PA (rA×n2).
/// @param b sub-permutation PB (n2×cB) with b.rows() == a.cols().
/// @return the product sub-permutation (rA×cB).
Perm subunit_multiply(const Perm& a, const Perm& b);

/// Same, but on a caller-provided engine (reusing its arena, and its thread
/// pool if configured — results stay bit-identical for every thread
/// count).
///
/// @param a sub-permutation PA (rA×n2).
/// @param b sub-permutation PB (n2×cB) with b.rows() == a.cols().
/// @param engine the engine the core solve runs on; not thread-safe, so
///     the caller must not share it across concurrent calls.
/// @return the product sub-permutation (rA×cB).
Perm subunit_multiply(const Perm& a, const Perm& b, SeaweedEngine& engine);

/// The §4.1 padding layout of one pair: which rows of A / columns of B
/// survive the compaction, and the shape bookkeeping needed to read the
/// product back out of the padded core.
struct SubunitPadding {
  std::vector<std::int32_t> rows_a;  ///< surviving original rows of PA
  std::vector<std::int32_t> cols_b;  ///< surviving original columns of PB
  std::int64_t shift = 0;            ///< n2 − n1
  std::int64_t n3 = 0;               ///< \#surviving columns of PB
  std::int64_t out_rows = 0;         ///< rows of the product (= rows of PA)
  std::int64_t out_cols = 0;         ///< columns of the product (= cols of PB)
  bool empty = false;  ///< product is all-zero; no core multiply needed
};

/// Materializes the padded full permutations P'A, P'B (both n2×n2) and the
/// layout needed to unpad. Returns empty Perms (and sets info.empty) when
/// the product is trivially all-zero. Pure layout arithmetic: no engine,
/// no arena, deterministic.
///
/// @param a sub-permutation PA (rA×n2).
/// @param b sub-permutation PB (n2×cB) with b.rows() == a.cols().
/// @param info receives the padding layout; safe to reuse one struct
///     across pairs (it is reset on entry).
/// @return the padded full permutations (P'A, P'B), each n2×n2.
std::pair<Perm, Perm> subunit_pad_pair(const Perm& a, const Perm& b,
                                       SubunitPadding& info);

/// Reads PC out of the bottom-left n1×n3 block of the padded product.
///
/// @param info the layout subunit_pad_pair produced for the pair.
/// @param padded_product P'A ⊡ P'B (n2×n2 full permutation).
/// @return the product sub-permutation (info.out_rows × info.out_cols).
Perm subunit_unpad(const SubunitPadding& info, const Perm& padded_product);

/// The legacy reduction through explicitly padded Perms, kept as the
/// reference the direct engine path is differential-fuzzed against. Runs
/// on the thread-local default SeaweedEngine.
///
/// @param a sub-permutation PA (rA×n2).
/// @param b sub-permutation PB (n2×cB) with b.rows() == a.cols().
/// @return the product sub-permutation (rA×cB).
Perm subunit_multiply_padded(const Perm& a, const Perm& b);

/// Same, on a caller-provided engine (arena reused across calls; results
/// bit-identical for every thread count).
///
/// @param a sub-permutation PA (rA×n2).
/// @param b sub-permutation PB (n2×cB) with b.rows() == a.cols().
/// @param engine the engine the padded core multiply runs on.
/// @return the product sub-permutation (rA×cB).
Perm subunit_multiply_padded(const Perm& a, const Perm& b,
                             SeaweedEngine& engine);

}  // namespace monge
