#include "monge/engine.h"

#include <algorithm>
#include <map>

#include "monge/core_sparse.h"
#include "monge/steady_ant_simd.h"
#include "util/check.h"
#include "util/thread_pool.h"

namespace monge {

namespace {

constexpr std::size_t kAlign = 64;

constexpr std::size_t aligned_bytes(std::size_t b) {
  return (b + (kAlign - 1)) & ~(kAlign - 1);
}

template <typename T>
constexpr std::size_t slot_bytes(std::int64_t count) {
  return aligned_bytes(sizeof(T) * static_cast<std::size_t>(count));
}

/// Bump allocator over a caller-owned byte range. Allocations are 64-byte
/// aligned; freeing is LIFO via mark()/rewind(). carve() splits off a
/// disjoint sub-arena so a forked subproblem can allocate concurrently.
class Arena {
 public:
  Arena(std::byte* base, std::size_t cap) : base_(base), cap_(cap) {}

  template <typename T>
  std::span<T> alloc(std::int64_t count) {
    const std::size_t bytes = slot_bytes<T>(count);
    MONGE_CHECK_MSG(used_ + bytes <= cap_,
                    "seaweed engine arena overflow: need "
                        << bytes << " bytes, " << (cap_ - used_) << " free");
    T* p = reinterpret_cast<T*>(base_ + used_);
    used_ += bytes;
    return {p, static_cast<std::size_t>(count)};
  }

  std::size_t mark() const { return used_; }
  void rewind(std::size_t mark) { used_ = mark; }

  Arena carve(std::size_t bytes) {
    MONGE_CHECK_MSG(used_ + bytes <= cap_,
                    "seaweed engine arena overflow on fork");
    Arena sub(base_ + used_, bytes);
    used_ += bytes;
    return sub;
  }

 private:
  std::byte* base_;
  std::size_t cap_;
  std::size_t used_ = 0;
};

// ---------------------------------------------------------------------------
// Sizing. These mirror the exact allocation sequence of base_case / mul_rec
// below; Arena::alloc re-checks at runtime, so a mismatch throws instead of
// corrupting memory. All sizes depend only on n (full permutations split
// exactly m / n-m), so the budget is data-independent.
// ---------------------------------------------------------------------------

/// The public-entry-point guard for kSeaweedEngineMaxN (see engine.h): the
/// packed (coord << 1) | color int32 representation the combine uses
/// overflows past 2^30, so every dimension is rejected with a clear error
/// instead of silently running into UB.
void check_size_limit(std::size_t size, const char* what) {
  MONGE_CHECK_MSG(size <= static_cast<std::size_t>(kSeaweedEngineMaxN),
                  "SeaweedEngine packs (coord, color) into one int32 and "
                  "supports dimensions up to 2^30; "
                      << what << " = " << size << " exceeds the limit");
}

std::size_t base_case_bytes(std::int64_t n) {
  return 3 * slot_bytes<std::int32_t>((n + 1) * (n + 1));
}

std::size_t split_scratch_bytes(std::int64_t n) {
  return slot_bytes<std::int32_t>(n);
}

std::size_t combine_scratch_bytes(std::int64_t n) {
  return 2 * slot_bytes<std::int32_t>(n) + slot_bytes<std::int32_t>(n + 1);
}

std::size_t persistent_bytes(std::int64_t m, std::int64_t h) {
  // rows_lo/cols_lo/a_lo (m+1), rows_hi/cols_hi/a_hi (h+1), b_ranks (m+h);
  // the +1s are slack slots for the branchless split writes.
  return 3 * slot_bytes<std::int32_t>(m + 1) +
         3 * slot_bytes<std::int32_t>(h + 1) + slot_bytes<std::int32_t>(m + h);
}

/// One top-level call's resolved options plus the per-size arena budget.
/// `sizes` (owned by the engine, so it persists across calls) is fully
/// populated for every reachable recursive size by the single-threaded
/// node_bytes() call at the top level, after which forked workers only
/// read it via node_bytes_cached().
struct Plan {
  std::int64_t cutoff;
  std::int64_t grain;
  ThreadPool* pool;
  std::map<std::int64_t, std::size_t>& sizes;
  double core_cutoff;
  std::int64_t core_min_n;
  detail::SeaweedRepCounters* rep;

  bool fork(std::int64_t n) const {
    return pool != nullptr && pool->thread_count() > 1 && n > grain;
  }

  /// Whether a size-n node runs the core-density probe (solve_adaptive).
  /// Upward-closed in n, which keeps node_bytes monotone.
  bool probe(std::int64_t n) const {
    return core_cutoff > 0 && n >= core_min_n && n > cutoff;
  }

  std::size_t node_bytes(std::int64_t n) {
    if (n <= 1) return 0;
    if (n <= cutoff) return base_case_bytes(n);
    if (const auto it = sizes.find(n); it != sizes.end()) return it->second;
    const std::int64_t m = n / 2;
    const std::int64_t h = n - m;
    const std::size_t children = fork(n)
                                     ? node_bytes(m) + node_bytes(h)
                                     : std::max(node_bytes(m), node_bytes(h));
    const std::size_t dense =
        persistent_bytes(m, h) +
        std::max({split_scratch_bytes(n), combine_scratch_bytes(n), children});
    // Probed nodes may take the block path, whose worst dense block of size
    // B < n needs two shifted input copies plus that block's own dense
    // frame: 2·slot(B) + dense(B) <= 2·slot(n) + dense(n) (both summands
    // are monotone in the size), so inflating by two size-n slots covers
    // every decomposition the data can produce.
    const std::size_t total =
        probe(n) ? dense + 2 * slot_bytes<std::int32_t>(n) : dense;
    sizes.emplace(n, total);
    return total;
  }

  std::size_t node_bytes_cached(std::int64_t n) const {
    if (n <= 1) return 0;
    if (n <= cutoff) return base_case_bytes(n);
    return sizes.at(n);
  }
};

// ---------------------------------------------------------------------------
// Base case: dense distribution-matrix (min,+) product, the arena version of
// multiply_naive. O(n^3) arithmetic but branch-light and allocation-free,
// which beats the recursion's per-node passes for small n.
// ---------------------------------------------------------------------------

/// dist(i, j) = #points with row >= i and col < j, row-major with stride w.
// monge-lint: hot
void fill_dist(std::span<const std::int32_t> p, std::span<std::int32_t> dist,
               std::int64_t w) {
  const std::int64_t n = w - 1;
  for (std::int64_t j = 0; j < w; ++j) dist[static_cast<std::size_t>(n * w + j)] = 0;
  for (std::int64_t i = n - 1; i >= 0; --i) {
    const std::int32_t c = p[static_cast<std::size_t>(i)];
    const std::size_t row = static_cast<std::size_t>(i * w);
    const std::size_t below = static_cast<std::size_t>((i + 1) * w);
    for (std::int64_t j = 0; j <= c; ++j) {
      dist[row + static_cast<std::size_t>(j)] =
          dist[below + static_cast<std::size_t>(j)];
    }
    for (std::int64_t j = c + 1; j < w; ++j) {
      dist[row + static_cast<std::size_t>(j)] =
          dist[below + static_cast<std::size_t>(j)] + 1;
    }
  }
}

// monge-lint: hot
void base_case(std::span<const std::int32_t> a, std::span<const std::int32_t> b,
               std::span<std::int32_t> out, Arena& arena) {
  const auto n = static_cast<std::int64_t>(a.size());
  const std::int64_t w = n + 1;
  const std::size_t mark = arena.mark();
  auto da = arena.alloc<std::int32_t>(w * w);
  auto db = arena.alloc<std::int32_t>(w * w);
  auto dc = arena.alloc<std::int32_t>(w * w);
  fill_dist(a, da, w);
  fill_dist(b, db, w);
  for (std::int64_t i = 0; i < w; ++i) {
    const std::size_t ai = static_cast<std::size_t>(i * w);
    for (std::int64_t k = 0; k < w; ++k) {
      std::int32_t best = da[ai] + db[static_cast<std::size_t>(k)];
      for (std::int64_t j = 1; j < w; ++j) {
        best = std::min(best, da[ai + static_cast<std::size_t>(j)] +
                                  db[static_cast<std::size_t>(j * w + k)]);
      }
      dc[ai + static_cast<std::size_t>(k)] = best;
    }
  }
  // Extract the product permutation from the cross-differences; for full
  // permutations every row holds exactly one point.
  for (std::int64_t r = 0; r < n; ++r) {
    const std::size_t row = static_cast<std::size_t>(r * w);
    const std::size_t below = static_cast<std::size_t>((r + 1) * w);
    for (std::int64_t c = 0; c < n; ++c) {
      const std::int32_t v = dc[row + static_cast<std::size_t>(c) + 1] -
                             dc[below + static_cast<std::size_t>(c) + 1] -
                             dc[row + static_cast<std::size_t>(c)] +
                             dc[below + static_cast<std::size_t>(c)];
      MONGE_DCHECK(v == 0 || v == 1);
      if (v == 1) {
        out[static_cast<std::size_t>(r)] = static_cast<std::int32_t>(c);
        break;
      }
    }
  }
  arena.rewind(mark);
}

// ---------------------------------------------------------------------------
// The recursion.
// ---------------------------------------------------------------------------

/// Density-adaptive dispatch wrapper around mul_rec: probes the node when
/// the plan says to and routes it to the core-sparse block path or the
/// dense recursion. Same contract as mul_rec (out may alias a).
void solve_adaptive(std::span<const std::int32_t> a,
                    std::span<const std::int32_t> b,
                    std::span<std::int32_t> out, Arena& arena,
                    const Plan& plan);

/// The dense recursion. `out` receives the product; it may alias `a` (all
/// reads of `a` happen in the split phase, all writes to `out` in the
/// combine) — the recursive calls exploit this by writing each child's
/// result over that child's input, so no separate result buffers exist.
// monge-lint: hot
void mul_rec(std::span<const std::int32_t> a, std::span<const std::int32_t> b,
             std::span<std::int32_t> out, Arena& arena, const Plan& plan) {
  const auto n = static_cast<std::int64_t>(a.size());
  if (n == 0) return;
  if (n == 1) {
    out[0] = 0;
    return;
  }
  if (n <= plan.cutoff) {
    base_case(a, b, out, arena);
    return;
  }

  const std::int64_t m = n / 2;
  const std::int64_t h = n - m;
  const std::size_t frame = arena.mark();

  // Persistent node state, live across the recursive calls. a_lo/a_hi hold
  // the compacted PA halves and are overwritten by the children with their
  // results; b_ranks holds b_lo then b_hi, written by one exact scatter.
  // The split loops below are branchless — both sides' targets are written
  // unconditionally and the cursor of the non-matching side stays put —
  // which is why each cursor-written list carries one slack slot.
  auto rows_lo = arena.alloc<std::int32_t>(m + 1);
  auto cols_lo = arena.alloc<std::int32_t>(m + 1);
  auto a_lo_buf = arena.alloc<std::int32_t>(m + 1);
  auto rows_hi = arena.alloc<std::int32_t>(h + 1);
  auto cols_hi = arena.alloc<std::int32_t>(h + 1);
  auto a_hi_buf = arena.alloc<std::int32_t>(h + 1);
  auto b_ranks = arena.alloc<std::int32_t>(n);
  const auto a_lo = a_lo_buf.first(static_cast<std::size_t>(m));
  const auto a_hi = a_hi_buf.first(static_cast<std::size_t>(h));
  const auto b_lo = b_ranks.subspan(0, static_cast<std::size_t>(m));
  const auto b_hi =
      b_ranks.subspan(static_cast<std::size_t>(m), static_cast<std::size_t>(h));

  // Split PA by columns into [0,m) / [m,n); compact by deleting empty rows.
  // A full permutation sends exactly m rows to the lo half.
  {
    std::int64_t la = 0, lb = 0;
    for (std::int64_t r = 0; r < n; ++r) {
      const std::int32_t c = a[static_cast<std::size_t>(r)];
      const bool is_lo = c < m;
      a_lo_buf[static_cast<std::size_t>(la)] = c;
      rows_lo[static_cast<std::size_t>(la)] = static_cast<std::int32_t>(r);
      a_hi_buf[static_cast<std::size_t>(lb)] = static_cast<std::int32_t>(c - m);
      rows_hi[static_cast<std::size_t>(lb)] = static_cast<std::int32_t>(r);
      la += is_lo;
      lb += !is_lo;
    }
    MONGE_DCHECK(la == m && lb == h);
  }

  // Split PB by rows; compact by deleting empty columns, relabelling each
  // surviving column by its rank. One inverse pass, then one fused scan in
  // column order that emits the column maps and both compacted inputs.
  {
    const std::size_t scratch = arena.mark();
    auto b_inv = arena.alloc<std::int32_t>(n);
    for (std::int64_t r = 0; r < n; ++r) {
      b_inv[static_cast<std::size_t>(b[static_cast<std::size_t>(r)])] =
          static_cast<std::int32_t>(r);
    }
    std::int64_t lo = 0, hi = 0;
    for (std::int64_t c = 0; c < n; ++c) {
      const std::int32_t r = b_inv[static_cast<std::size_t>(c)];
      const bool is_lo = r < m;
      cols_lo[static_cast<std::size_t>(lo)] = static_cast<std::int32_t>(c);
      cols_hi[static_cast<std::size_t>(hi)] = static_cast<std::int32_t>(c);
      b_ranks[static_cast<std::size_t>(r)] =
          static_cast<std::int32_t>(is_lo ? lo : hi);
      lo += is_lo;
      hi += !is_lo;
    }
    MONGE_DCHECK(lo == m && hi == h);
    arena.rewind(scratch);
  }

  // Recurse, each child writing its result over its own input; the
  // subproblems are independent, so above the grain size they run
  // concurrently on disjoint arena slices.
  if (plan.fork(n)) {
    const std::size_t mark = arena.mark();
    Arena lo_arena = arena.carve(plan.node_bytes_cached(m));
    Arena hi_arena = arena.carve(plan.node_bytes_cached(h));
    plan.pool->invoke_two(
        [&] { solve_adaptive(a_lo, b_lo, a_lo, lo_arena, plan); },
        [&] { solve_adaptive(a_hi, b_hi, a_hi, hi_arena, plan); });
    arena.rewind(mark);
  } else {
    solve_adaptive(a_lo, b_lo, a_lo, arena, plan);
    solve_adaptive(a_hi, b_hi, a_hi, arena, plan);
  }

  // Expand both results back to the n×n grid (a full colored permutation,
  // packed as (col << 1) | color per row) and combine with the steady ant —
  // the blocked, ISA-dispatched walk in steady_ant_simd.h (bit-identical
  // to the scalar reference; MONGE_FORCE_SCALAR pins it back to scalar).
  {
    const std::size_t scratch = arena.mark();
    auto row_pk = arena.alloc<std::int32_t>(n);
    auto col_pk = arena.alloc<std::int32_t>(n);
    auto t = arena.alloc<std::int32_t>(n + 1);
    for (std::int64_t i = 0; i < m; ++i) {
      row_pk[static_cast<std::size_t>(rows_lo[static_cast<std::size_t>(i)])] =
          cols_lo[static_cast<std::size_t>(a_lo[static_cast<std::size_t>(i)])]
          << 1;
    }
    for (std::int64_t i = 0; i < h; ++i) {
      row_pk[static_cast<std::size_t>(rows_hi[static_cast<std::size_t>(i)])] =
          (cols_hi[static_cast<std::size_t>(a_hi[static_cast<std::size_t>(i)])]
           << 1) |
          1;
    }
    steady_ant_packed_into(row_pk, col_pk, t, out);
    arena.rewind(scratch);
  }
  arena.rewind(frame);
}

/// The streaming form of the core-sparse block decomposition (the
/// representation-level version lives in src/monge/core_sparse.h): one
/// forward pass tracks the running maximum of both inputs' values; at
/// index i, mx == i means the boundary after i is clean for BOTH inputs —
/// the seaweed braid never crosses it — closing an independent diagonal
/// block. Blocks where one input restricts to the identity are copied
/// verbatim (id ⊡ X = X ⊡ id = X); blocks where both cores interact
/// recurse densely on shifted arena copies. Returns false without writing
/// anything when no interior boundary is clean (the node is one
/// indivisible block and the caller's dense recursion is the right tool).
///
/// `out` may alias `a`, like mul_rec: at index i every read of a[i]/b[i]
/// (the mx/fixed scan, the shifted copies) happens before any write to
/// out[j <= i], and indices past i are untouched until the cursor gets
/// there.
// monge-lint: hot
bool core_block_solve(std::span<const std::int32_t> a,
                      std::span<const std::int32_t> b,
                      std::span<std::int32_t> out, Arena& arena,
                      const Plan& plan) {
  const auto n = static_cast<std::int64_t>(a.size());
  std::int64_t start = 0;
  std::int64_t fixed_a = 0;
  std::int64_t fixed_b = 0;
  std::int64_t blocks_dense = 0;
  std::int64_t blocks_copied = 0;
  std::int32_t mx = -1;
  for (std::int64_t i = 0; i < n; ++i) {
    const std::int32_t av = a[static_cast<std::size_t>(i)];
    const std::int32_t bv = b[static_cast<std::size_t>(i)];
    mx = std::max({mx, av, bv});
    fixed_a += av == i;
    fixed_b += bv == i;
    if (mx != static_cast<std::int32_t>(i)) continue;
    const std::int64_t size = i + 1 - start;
    if (size == n) return false;  // one whole-range block: stay dense
    if (fixed_b == size) {
      // B is the identity on [start, i]: the product block is A's block
      // (which is also the identity when fixed_a == size).
      std::copy(a.begin() + start, a.begin() + (i + 1), out.begin() + start);
      ++blocks_copied;
    } else if (fixed_a == size) {
      std::copy(b.begin() + start, b.begin() + (i + 1), out.begin() + start);
      ++blocks_copied;
    } else {
      // Both cores interact: solve the block densely over copies shifted
      // to [0, size) — mul_rec, not solve_adaptive, because this block
      // provably has no clean boundary to probe for.
      const std::size_t mark = arena.mark();
      auto sa = arena.alloc<std::int32_t>(size);
      auto sb = arena.alloc<std::int32_t>(size);
      for (std::int64_t j = 0; j < size; ++j) {
        sa[static_cast<std::size_t>(j)] = static_cast<std::int32_t>(
            a[static_cast<std::size_t>(start + j)] - start);
        sb[static_cast<std::size_t>(j)] = static_cast<std::int32_t>(
            b[static_cast<std::size_t>(start + j)] - start);
      }
      const auto block_out =
          out.subspan(static_cast<std::size_t>(start),
                      static_cast<std::size_t>(size));
      mul_rec(sa, sb, block_out, arena, plan);
      for (std::int64_t j = 0; j < size; ++j) {
        block_out[static_cast<std::size_t>(j)] +=
            static_cast<std::int32_t>(start);
      }
      arena.rewind(mark);
      ++blocks_dense;
    }
    start = i + 1;
    fixed_a = 0;
    fixed_b = 0;
  }
  plan.rep->blocks_dense.fetch_add(blocks_dense, std::memory_order_relaxed);
  plan.rep->blocks_copied.fetch_add(blocks_copied, std::memory_order_relaxed);
  return true;
}

// monge-lint: hot
void solve_adaptive(std::span<const std::int32_t> a,
                    std::span<const std::int32_t> b,
                    std::span<std::int32_t> out, Arena& arena,
                    const Plan& plan) {
  const auto n = static_cast<std::int64_t>(a.size());
  if (plan.probe(n)) {
    // Both inputs must be at or below the density cutoff for the block
    // path to be worth trying; the early-exit scan keeps the probe cost
    // O(cutoff·n) on dense inputs.
    const auto limit = static_cast<std::int64_t>(
        plan.core_cutoff * static_cast<double>(n));
    if (!core_exceeds(a, limit) && !core_exceeds(b, limit) &&
        core_block_solve(a, b, out, arena, plan)) {
      plan.rep->core_sparse_nodes.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    plan.rep->dense_nodes.fetch_add(1, std::memory_order_relaxed);
  }
  mul_rec(a, b, out, arena, plan);
}

#ifndef NDEBUG
void dcheck_full_permutation(std::span<const std::int32_t> p) {
  const auto n = static_cast<std::int64_t>(p.size());
  std::vector<bool> seen(static_cast<std::size_t>(n), false);
  for (std::int32_t v : p) {
    MONGE_DCHECK(v >= 0 && v < n && !seen[static_cast<std::size_t>(v)]);
    seen[static_cast<std::size_t>(v)] = true;
  }
}
#endif

/// Solves batch entries [lo, hi), each in its pre-carved arena slice,
/// forking recursively via invoke_two so the join work-helps (deadlock-free
/// from pool workers, same as mul_rec's own forks). `solve(i)` runs entry i
/// in arena slice i; shared by the full-permutation and subunit batches.
template <typename Solve>
void batch_rec(std::size_t lo, std::size_t hi, ThreadPool* pool,
               const Solve& solve) {
  if (hi - lo == 1) {
    solve(lo);
    return;
  }
  const std::size_t mid = lo + (hi - lo) / 2;
  pool->invoke_two([&] { batch_rec(lo, mid, pool, solve); },
                   [&] { batch_rec(mid, hi, pool, solve); });
}

/// The shared batch skeleton: validate + budget every entry up front
/// (`budget_of(i)`, which must also populate the plan's size cache —
/// single-threaded, so the striped solvers below only read it), size the
/// arena ONCE for the whole batch, then either solve back-to-back on the
/// shared span or carve one disjoint slice per entry and fork-join.
/// `arena_span(bytes)` is the engine's buffer accessor; `solve(i, arena)`
/// runs entry i. Budgets are 64-byte multiples, so carving preserves
/// alignment.
template <typename ArenaSpanFn, typename BudgetFn, typename SolveFn>
void solve_batch(std::size_t count, const Plan& plan, ArenaSpanFn arena_span,
                 BudgetFn budget_of, SolveFn solve) {
  const bool stripe =
      plan.pool != nullptr && plan.pool->thread_count() > 1 && count > 1;
  std::vector<std::size_t> budgets;
  if (stripe) budgets.reserve(count);
  std::size_t max_budget = 0, sum_budget = 0;
  for (std::size_t i = 0; i < count; ++i) {
    const std::size_t budget = budget_of(i);
    max_budget = std::max(max_budget, budget);
    if (stripe) {
      budgets.push_back(budget);
      sum_budget += budget;
    }
  }

  if (!stripe) {
    // One arena, sized once for the largest entry; solve back-to-back.
    const auto span = arena_span(max_budget);
    for (std::size_t i = 0; i < count; ++i) {
      Arena arena(span.data(), span.size());
      solve(i, arena);
    }
    return;
  }

  const auto span = arena_span(sum_budget);
  Arena whole(span.data(), span.size());
  std::vector<Arena> arenas;
  arenas.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    arenas.push_back(whole.carve(budgets[i]));
  }
  batch_rec(0, count, plan.pool,
            [&](std::size_t i) { solve(i, arenas[i]); });
}

/// Shared allocating wrapper for the *_raw_batch twins: size one output
/// vector per entry (`size_of(i)`), then run the into-variant over views.
template <typename SizeFn, typename IntoFn>
std::vector<std::vector<std::int32_t>> raw_batch(std::size_t count,
                                                 SizeFn size_of, IntoFn into) {
  std::vector<std::vector<std::int32_t>> out(count);
  std::vector<std::span<std::int32_t>> views;
  views.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    out[i].resize(size_of(i));
    views.push_back(out[i]);
  }
  into(views);
  return out;
}

// ---------------------------------------------------------------------------
// The §4.1 subunit reduction in arena scratch (compact both inputs, extend
// to full n2×n2 permutations, core-solve over the padded-PA slot, read the
// product out of the bottom-left block). Shared by subunit_multiply_into
// and the batched entry point; the caller sizes the arena with
// subunit_node_bytes and guarantees capacity.
// ---------------------------------------------------------------------------

std::size_t subunit_node_bytes(Plan& plan, std::int64_t ra, std::int64_t n2,
                               std::int64_t b_cols) {
  // Arena layout: the padded permutations and the surviving-row/column maps
  // persist across the core solve; the column-occupancy scratch is rewound
  // before it, so the budget takes the max of the two phases. There are at
  // most n2 surviving rows/columns (their product columns/rows are
  // distinct), which bounds the map slots.
  const std::size_t core = plan.node_bytes(n2);
  const std::size_t persistent =
      2 * slot_bytes<std::int32_t>(n2) +
      slot_bytes<std::int32_t>(std::min(ra, n2)) +
      slot_bytes<std::int32_t>(std::min(b_cols, n2));
  const std::size_t compact_scratch =
      slot_bytes<std::uint8_t>(n2) + slot_bytes<std::int32_t>(b_cols);
  return persistent + std::max(core, compact_scratch);
}

// monge-lint: hot
void subunit_solve(PermView a, PermView b, std::int64_t b_cols,
                   std::span<std::int32_t> out, Arena& arena,
                   const Plan& plan) {
  const auto ra = static_cast<std::int64_t>(a.size());
  const auto n2 = static_cast<std::int64_t>(b.size());
  std::fill(out.begin(), out.end(), kNone);
  if (ra == 0 || n2 == 0 || b_cols == 0) return;

  auto pa = arena.alloc<std::int32_t>(n2);
  auto pb = arena.alloc<std::int32_t>(n2);
  auto rows_a = arena.alloc<std::int32_t>(std::min(ra, n2));
  auto cols_b = arena.alloc<std::int32_t>(std::min(b_cols, n2));
  const std::size_t scratch = arena.mark();

  // Compact PA: surviving original rows, and which columns they occupy.
  auto col_used = arena.alloc<std::uint8_t>(n2);
  std::fill(col_used.begin(), col_used.end(), std::uint8_t{0});
  std::int64_t n1 = 0;
  for (std::int64_t r = 0; r < ra; ++r) {
    const std::int32_t c = a[static_cast<std::size_t>(r)];
    if (c == kNone) continue;
    MONGE_CHECK_MSG(c >= 0 && c < n2 && !col_used[static_cast<std::size_t>(c)],
                    "subunit multiply: A is not a sub-permutation (row "
                        << r << " -> col " << c << ")");
    col_used[static_cast<std::size_t>(c)] = 1;
    rows_a[static_cast<std::size_t>(n1++)] = static_cast<std::int32_t>(r);
  }
  if (n1 == 0) return;

  // P'A (n2×n2): the top n2−n1 rows cover PA's empty columns in increasing
  // order; the bottom n1 rows are the compacted PA.
  std::int64_t top = 0;
  for (std::int64_t c = 0; c < n2; ++c) {
    if (!col_used[static_cast<std::size_t>(c)]) {
      pa[static_cast<std::size_t>(top++)] = static_cast<std::int32_t>(c);
    }
  }
  MONGE_CHECK(top == n2 - n1);
  for (std::int64_t i = 0; i < n1; ++i) {
    pa[static_cast<std::size_t>(top + i)] =
        a[static_cast<std::size_t>(rows_a[static_cast<std::size_t>(i)])];
  }

  // Compact PB: surviving columns ranked in column order (0 marks occupancy
  // in the first pass, then becomes the rank).
  auto col_rank = arena.alloc<std::int32_t>(b_cols);
  std::fill(col_rank.begin(), col_rank.end(), kNone);
  for (std::int64_t r = 0; r < n2; ++r) {
    const std::int32_t c = b[static_cast<std::size_t>(r)];
    if (c == kNone) continue;
    MONGE_CHECK_MSG(
        c >= 0 && c < b_cols && col_rank[static_cast<std::size_t>(c)] == kNone,
        "subunit multiply: B is not a sub-permutation (row " << r << " -> col "
                                                             << c << ")");
    col_rank[static_cast<std::size_t>(c)] = 0;
  }
  std::int64_t n3 = 0;
  for (std::int64_t c = 0; c < b_cols; ++c) {
    if (col_rank[static_cast<std::size_t>(c)] != kNone) {
      col_rank[static_cast<std::size_t>(c)] = static_cast<std::int32_t>(n3);
      cols_b[static_cast<std::size_t>(n3++)] = static_cast<std::int32_t>(c);
    }
  }
  if (n3 == 0) return;

  // P'B (n2×n2): surviving columns keep their rank in [0,n3); each empty
  // row of PB gets one of the appended columns [n3,n2) in increasing order.
  std::int64_t appended = 0;
  for (std::int64_t r = 0; r < n2; ++r) {
    const std::int32_t c = b[static_cast<std::size_t>(r)];
    pb[static_cast<std::size_t>(r)] =
        c == kNone ? static_cast<std::int32_t>(n3 + appended++)
                   : col_rank[static_cast<std::size_t>(c)];
  }
  MONGE_CHECK(appended == n2 - n3);
  arena.rewind(scratch);

  // Core solve; the result overwrites P'A (the out-aliases-a contract,
  // which the adaptive dispatch and the block path both honor).
  solve_adaptive(pa, pb, pa, arena, plan);

  // Read PC out of the bottom-left n1×n3 block.
  const std::int64_t shift = n2 - n1;
  for (std::int64_t r = shift; r < n2; ++r) {
    const std::int32_t c = pa[static_cast<std::size_t>(r)];
    if (c < n3) {
      out[static_cast<std::size_t>(rows_a[static_cast<std::size_t>(r - shift)])] =
          cols_b[static_cast<std::size_t>(c)];
    }
  }
}

void check_subunit_shapes(PermView a, PermView b, std::int64_t b_cols,
                          std::span<const std::int32_t> out) {
  MONGE_CHECK(out.size() == a.size() && b_cols >= 0);
  check_size_limit(a.size(), "a.size()");
  check_size_limit(b.size(), "b.size()");
  check_size_limit(static_cast<std::size_t>(b_cols), "b_cols");
}

}  // namespace

SeaweedEngine::SeaweedEngine(SeaweedEngineOptions options)
    : options_(options) {
  // Validate instead of silently rewriting the caller's knobs: a rejected
  // value is a caller bug worth surfacing, and options() must always
  // report exactly what was requested. The upper cutoff bound keeps the
  // O(cutoff^3) dense base case from dominating (the sweet spot is ~4-16).
  MONGE_CHECK_MSG(
      options_.base_case_cutoff >= 1 && options_.base_case_cutoff <= 256,
      "SeaweedEngineOptions::base_case_cutoff must be in [1, 256], got "
          << options_.base_case_cutoff);
  MONGE_CHECK_MSG(options_.parallel_grain >= 2,
                  "SeaweedEngineOptions::parallel_grain must be >= 2, got "
                      << options_.parallel_grain);
  // The comparison is written so NaN fails it (NaN >= 0.0 is false).
  MONGE_CHECK_MSG(options_.core_density_cutoff >= 0.0 &&
                      options_.core_density_cutoff <= 1.0,
                  "SeaweedEngineOptions::core_density_cutoff must be in "
                  "[0, 1], got "
                      << options_.core_density_cutoff);
  MONGE_CHECK_MSG(options_.core_probe_min_n >= 2,
                  "SeaweedEngineOptions::core_probe_min_n must be >= 2, got "
                      << options_.core_probe_min_n);
}

RepresentationStats SeaweedEngine::representation_stats() const {
  return {
      rep_counters_.dense_nodes.load(std::memory_order_relaxed),
      rep_counters_.core_sparse_nodes.load(std::memory_order_relaxed),
      rep_counters_.blocks_dense.load(std::memory_order_relaxed),
      rep_counters_.blocks_copied.load(std::memory_order_relaxed),
  };
}

std::size_t SeaweedEngine::arena_bytes_for(std::int64_t n) const {
  Plan plan{options_.base_case_cutoff,    options_.parallel_grain,
            options_.pool,               size_cache_,
            options_.core_density_cutoff, options_.core_probe_min_n,
            &rep_counters_};
  return plan.node_bytes(n);
}

std::span<std::byte> SeaweedEngine::arena_span(std::size_t bytes) {
  if (buffer_.size() < bytes + kAlign) {
    // The arena never carries state between calls, so grow without copying
    // the old scratch bytes.
    buffer_.clear();
    buffer_.resize(bytes + kAlign);
  }
  auto base = reinterpret_cast<std::uintptr_t>(buffer_.data());
  const std::size_t shift = (kAlign - base % kAlign) % kAlign;
  return {buffer_.data() + shift, buffer_.size() - shift};
}

void SeaweedEngine::multiply_into(std::span<const std::int32_t> a,
                                  std::span<const std::int32_t> b,
                                  std::span<std::int32_t> out) {
  MONGE_CHECK(a.size() == b.size() && out.size() == a.size());
  check_size_limit(a.size(), "n");
#ifndef NDEBUG
  dcheck_full_permutation(a);
  dcheck_full_permutation(b);
#endif
  const auto n = static_cast<std::int64_t>(a.size());
  if (n == 0) return;
  if (n == 1) {
    out[0] = 0;
    return;
  }
  Plan plan{options_.base_case_cutoff,    options_.parallel_grain,
            options_.pool,               size_cache_,
            options_.core_density_cutoff, options_.core_probe_min_n,
            &rep_counters_};
  const auto span = arena_span(plan.node_bytes(n));
  Arena arena(span.data(), span.size());
  solve_adaptive(a, b, out, arena, plan);
}

void SeaweedEngine::multiply_batch_into(
    std::span<const PermPairView> pairs,
    std::span<const std::span<std::int32_t>> outs) {
  MONGE_CHECK(pairs.size() == outs.size());
  if (pairs.empty()) return;
  Plan plan{options_.base_case_cutoff,    options_.parallel_grain,
            options_.pool,               size_cache_,
            options_.core_density_cutoff, options_.core_probe_min_n,
            &rep_counters_};
  solve_batch(
      pairs.size(), plan, [this](std::size_t bytes) { return arena_span(bytes); },
      [&](std::size_t i) {
        MONGE_CHECK(pairs[i].first.size() == pairs[i].second.size() &&
                    outs[i].size() == pairs[i].first.size());
        check_size_limit(pairs[i].first.size(), "n");
#ifndef NDEBUG
        dcheck_full_permutation(pairs[i].first);
        dcheck_full_permutation(pairs[i].second);
#endif
        return plan.node_bytes(static_cast<std::int64_t>(pairs[i].first.size()));
      },
      [&](std::size_t i, Arena& arena) {
        solve_adaptive(pairs[i].first, pairs[i].second, outs[i], arena, plan);
      });
}

std::vector<std::vector<std::int32_t>> SeaweedEngine::multiply_raw_batch(
    std::span<const PermPairView> pairs) {
  return raw_batch(
      pairs.size(), [&](std::size_t i) { return pairs[i].first.size(); },
      [&](std::span<const std::span<std::int32_t>> views) {
        multiply_batch_into(pairs, views);
      });
}

void SeaweedEngine::subunit_multiply_into(PermView a, PermView b,
                                          std::int64_t b_cols,
                                          std::span<std::int32_t> out) {
  check_subunit_shapes(a, b, b_cols, out);
  Plan plan{options_.base_case_cutoff,    options_.parallel_grain,
            options_.pool,               size_cache_,
            options_.core_density_cutoff, options_.core_probe_min_n,
            &rep_counters_};
  const auto span = arena_span(
      subunit_node_bytes(plan, static_cast<std::int64_t>(a.size()),
                         static_cast<std::int64_t>(b.size()), b_cols));
  Arena arena(span.data(), span.size());
  subunit_solve(a, b, b_cols, out, arena, plan);
}

void SeaweedEngine::subunit_multiply_batch_into(
    std::span<const SubunitPairView> pairs,
    std::span<const std::span<std::int32_t>> outs) {
  MONGE_CHECK(pairs.size() == outs.size());
  if (!pairs.empty()) {
    Plan plan{options_.base_case_cutoff,    options_.parallel_grain,
              options_.pool,               size_cache_,
              options_.core_density_cutoff, options_.core_probe_min_n,
              &rep_counters_};
    solve_batch(
        pairs.size(), plan,
        [this](std::size_t bytes) { return arena_span(bytes); },
        [&](std::size_t i) {
          check_subunit_shapes(pairs[i].a, pairs[i].b, pairs[i].b_cols,
                               outs[i]);
          return subunit_node_bytes(
              plan, static_cast<std::int64_t>(pairs[i].a.size()),
              static_cast<std::int64_t>(pairs[i].b.size()), pairs[i].b_cols);
        },
        [&](std::size_t i, Arena& arena) {
          subunit_solve(pairs[i].a, pairs[i].b, pairs[i].b_cols, outs[i],
                        arena, plan);
        });
  }
  // Count completed calls only — a batch rejected by validation (or that
  // threw mid-solve) was not served.
  ++subunit_batch_calls_;
}

std::vector<std::vector<std::int32_t>> SeaweedEngine::subunit_multiply_raw_batch(
    std::span<const SubunitPairView> pairs) {
  return raw_batch(
      pairs.size(), [&](std::size_t i) { return pairs[i].a.size(); },
      [&](std::span<const std::span<std::int32_t>> views) {
        subunit_multiply_batch_into(pairs, views);
      });
}

std::vector<std::int32_t> SeaweedEngine::subunit_multiply_raw(
    PermView a, PermView b, std::int64_t b_cols) {
  std::vector<std::int32_t> out(a.size());
  subunit_multiply_into(a, b, b_cols, out);
  return out;
}

std::vector<std::int32_t> SeaweedEngine::multiply_raw(
    std::span<const std::int32_t> a, std::span<const std::int32_t> b) {
  std::vector<std::int32_t> out(a.size());
  multiply_into(a, b, out);
  return out;
}

Perm SeaweedEngine::multiply(const Perm& a, const Perm& b) {
  MONGE_CHECK_MSG(a.is_full_permutation() && b.is_full_permutation(),
                  "SeaweedEngine::multiply requires full permutations (use "
                  "subunit_multiply for sub-permutations)");
  MONGE_CHECK(a.cols() == b.rows());
  return Perm::from_rows(multiply_raw(a.row_to_col(), b.row_to_col()),
                         b.cols());
}

SeaweedEngine& default_seaweed_engine() {
  thread_local SeaweedEngine engine;
  return engine;
}

}  // namespace monge
