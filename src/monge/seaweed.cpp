#include "monge/seaweed.h"

#include "monge/engine.h"
#include "monge/steady_ant.h"
#include "util/check.h"

namespace monge {

namespace {

std::vector<std::int32_t> mul_rec(const std::vector<std::int32_t>& a,
                                  const std::vector<std::int32_t>& b) {
  const std::int64_t n = static_cast<std::int64_t>(a.size());
  if (n == 0) return {};
  if (n == 1) return {0};

  const std::int64_t m = n / 2;

  // Split PA by columns into [0,m) and [m,n); compact by deleting empty
  // rows. Rows keep their relative order, so M_A^{-1} is just the sorted
  // list of surviving original rows.
  std::vector<std::int32_t> a_lo, a_hi, rows_lo, rows_hi;
  a_lo.reserve(static_cast<std::size_t>(m));
  rows_lo.reserve(static_cast<std::size_t>(m));
  a_hi.reserve(static_cast<std::size_t>(n - m));
  rows_hi.reserve(static_cast<std::size_t>(n - m));
  for (std::int64_t r = 0; r < n; ++r) {
    const std::int32_t c = a[static_cast<std::size_t>(r)];
    if (c < m) {
      a_lo.push_back(c);
      rows_lo.push_back(static_cast<std::int32_t>(r));
    } else {
      a_hi.push_back(static_cast<std::int32_t>(c - m));
      rows_hi.push_back(static_cast<std::int32_t>(r));
    }
  }

  // Split PB by rows into [0,m) and [m,n); compact by deleting empty
  // columns, relabelling each surviving column by its rank (M_B).
  std::vector<std::uint8_t> col_in_lo(static_cast<std::size_t>(n), 0);
  for (std::int64_t r = 0; r < m; ++r) {
    col_in_lo[static_cast<std::size_t>(b[static_cast<std::size_t>(r)])] = 1;
  }
  std::vector<std::int32_t> col_rank(static_cast<std::size_t>(n));
  std::vector<std::int32_t> cols_lo, cols_hi;  // M_B^{-1} per subproblem
  cols_lo.reserve(static_cast<std::size_t>(m));
  cols_hi.reserve(static_cast<std::size_t>(n - m));
  for (std::int64_t c = 0; c < n; ++c) {
    if (col_in_lo[static_cast<std::size_t>(c)]) {
      col_rank[static_cast<std::size_t>(c)] =
          static_cast<std::int32_t>(cols_lo.size());
      cols_lo.push_back(static_cast<std::int32_t>(c));
    } else {
      col_rank[static_cast<std::size_t>(c)] =
          static_cast<std::int32_t>(cols_hi.size());
      cols_hi.push_back(static_cast<std::int32_t>(c));
    }
  }
  std::vector<std::int32_t> b_lo(static_cast<std::size_t>(m));
  std::vector<std::int32_t> b_hi(static_cast<std::size_t>(n - m));
  for (std::int64_t r = 0; r < m; ++r) {
    b_lo[static_cast<std::size_t>(r)] =
        col_rank[static_cast<std::size_t>(b[static_cast<std::size_t>(r)])];
  }
  for (std::int64_t r = m; r < n; ++r) {
    b_hi[static_cast<std::size_t>(r - m)] =
        col_rank[static_cast<std::size_t>(b[static_cast<std::size_t>(r)])];
  }

  const std::vector<std::int32_t> c_lo = mul_rec(a_lo, b_lo);
  const std::vector<std::int32_t> c_hi = mul_rec(a_hi, b_hi);

  // Expand back to the n×n grid: PC,q(r,c) = P'C,q(M_A(r), M_B(c)), and the
  // two expanded results partition both the rows and the columns, so their
  // union is a full colored permutation — the steady ant's input.
  std::vector<std::int32_t> union_rc(static_cast<std::size_t>(n));
  std::vector<std::uint8_t> union_color(static_cast<std::size_t>(n));
  for (std::size_t i = 0; i < c_lo.size(); ++i) {
    const auto r = static_cast<std::size_t>(rows_lo[i]);
    union_rc[r] = cols_lo[static_cast<std::size_t>(c_lo[i])];
    union_color[r] = 0;
  }
  for (std::size_t i = 0; i < c_hi.size(); ++i) {
    const auto r = static_cast<std::size_t>(rows_hi[i]);
    union_rc[r] = cols_hi[static_cast<std::size_t>(c_hi[i])];
    union_color[r] = 1;
  }
  return steady_ant_combine_raw(union_rc, union_color);
}

}  // namespace

std::vector<std::int32_t> seaweed_multiply_raw(
    std::span<const std::int32_t> a, std::span<const std::int32_t> b) {
  MONGE_CHECK(a.size() == b.size());
  return default_seaweed_engine().multiply_raw(a, b);
}

std::vector<std::int32_t> seaweed_multiply_reference_raw(
    const std::vector<std::int32_t>& a, const std::vector<std::int32_t>& b) {
  MONGE_CHECK(a.size() == b.size());
  return mul_rec(a, b);
}

Perm seaweed_multiply(const Perm& a, const Perm& b) {
  MONGE_CHECK_MSG(a.is_full_permutation() && b.is_full_permutation(),
                  "seaweed_multiply requires full permutations (use "
                  "subunit_multiply for sub-permutations)");
  MONGE_CHECK(a.cols() == b.rows());
  return Perm::from_rows(
      seaweed_multiply_raw(a.row_to_col(), b.row_to_col()), b.cols());
}

}  // namespace monge
