// The AVX2 steady-ant kernel lives in its own translation unit: CMake
// compiles this file with -mavx2 (and defines MONGE_STEADY_ANT_ENABLE_AVX2)
// when the compiler supports the flag, so the intrinsics inline into the
// blocked walk. Nothing in this TU may be reached without the runtime
// feature check in steady_ant_simd.cpp passing — the dispatcher guards
// every call behind __builtin_cpu_supports("avx2") — and the TU is kept
// LEAN (see steady_ant_simd_impl.h): it must emit no shared inline
// symbols, because an AVX2-encoded comdat copy of, say, check_failed
// could be selected by the linker program-wide and executed on a host the
// feature check would have rejected. Enforced three ways: LEAN compiles
// out every check-machinery dependency, the block ops use compiler
// builtins instead of std inline templates, and CMake forces -O2 on this
// file so even Debug builds emit only the two kernel symbols (nm-verified).
#include "monge/steady_ant_simd.h"

#if defined(MONGE_STEADY_ANT_ENABLE_AVX2)

#include <immintrin.h>

#define MONGE_STEADY_ANT_SIMD_LEAN 1
#include "monge/steady_ant_simd_impl.h"

namespace monge::detail {

namespace {

/// AVX2 block primitives (W = 8): 8-lane step compares for the descent and
/// a hardware-gathered (vpgatherdd) threshold load + blendv resolution.
struct Avx2Ops {
  static constexpr std::int64_t kWidth = 8;

  static std::uint32_t step_mask(const std::int32_t* rows, std::int32_t thr) {
    const __m256i pk =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(rows));
    const __m256i one = _mm256_set1_epi32(1);
    // (pk > thr) XOR (pk odd), both as 0/-1 lane masks.
    const __m256i gt = _mm256_cmpgt_epi32(pk, _mm256_set1_epi32(thr));
    const __m256i odd = _mm256_cmpeq_epi32(_mm256_and_si256(pk, one), one);
    return static_cast<std::uint32_t>(
        _mm256_movemask_ps(_mm256_castsi256_ps(_mm256_xor_si256(gt, odd))));
  }

  static void resolve_block(const std::int32_t* rows, std::int32_t r0,
                            const std::int32_t* t, std::int32_t* out) {
    const __m256i pk =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(rows));
    const __m256i one = _mm256_set1_epi32(1);
    const __m256i c = _mm256_srli_epi32(pk, 1);
    const __m256i tcp1 =
        _mm256_i32gather_epi32(t, _mm256_add_epi32(c, one), 4);
    const __m256i rv = _mm256_add_epi32(
        _mm256_set1_epi32(r0), _mm256_setr_epi32(0, 1, 2, 3, 4, 5, 6, 7));
    // e = [r >= t[c+1]] = NOT (t[c+1] > r); write iff odd == e.
    const __m256i not_e = _mm256_cmpgt_epi32(tcp1, rv);
    const __m256i odd = _mm256_cmpeq_epi32(_mm256_and_si256(pk, one), one);
    const __m256i wr = _mm256_xor_si256(odd, not_e);
    const __m256i old =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(out));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out),
                        _mm256_blendv_epi8(old, c, wr));
  }
};

}  // namespace

bool steady_ant_avx2_compiled() { return true; }

// monge-lint: hot
void steady_ant_packed_avx2(std::span<const std::int32_t> row_pk,
                            std::span<std::int32_t> col_pk,
                            std::span<std::int32_t> t,
                            std::span<std::int32_t> out) {
  combine_blocked<Avx2Ops>(row_pk, col_pk, t, out);
}

}  // namespace monge::detail

#else  // !MONGE_STEADY_ANT_ENABLE_AVX2

// Stubs only; this branch is compiled WITHOUT -mavx2, so pulling in the
// shared check machinery is safe here.
#include "monge/steady_ant_simd_impl.h"
#include "util/check.h"

namespace monge::detail {

bool steady_ant_avx2_compiled() { return false; }

void steady_ant_packed_avx2(std::span<const std::int32_t> /*row_pk*/,
                            std::span<std::int32_t> /*col_pk*/,
                            std::span<std::int32_t> /*t*/,
                            std::span<std::int32_t> /*out*/) {
  MONGE_CHECK_MSG(false, "AVX2 steady-ant path not compiled into this binary");
}

}  // namespace monge::detail

#endif  // MONGE_STEADY_ANT_ENABLE_AVX2
