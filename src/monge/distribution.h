// Explicit distribution matrices and the naive (min,+) product.
//
// These are the O(n^2)-space test oracles for everything else in the
// library. Per §2.1, the distribution matrix of a (sub-)permutation P is
//   PΣ(i,j) = Σ_{(r̂,ĉ) ∈ ⟨i:rows⟩×⟨0:j⟩} P(r̂,ĉ)
//           = #{ points (r,c) : r >= i, c < j },  i ∈ [0,rows], j ∈ [0,cols].
// The (sub)unit-Monge product PC = PA ⊡ PB is defined by
//   PCΣ(i,k) = min_j ( PAΣ(i,j) + PBΣ(j,k) ).
#pragma once

#include <cstdint>
#include <vector>

#include "monge/permutation.h"
#include "util/check.h"

namespace monge {

class DistMatrix {
 public:
  DistMatrix(std::int64_t rows, std::int64_t cols);

  /// Builds PΣ from a (sub-)permutation in O(rows*cols).
  static DistMatrix from(const Perm& p);

  std::int64_t rows() const { return rows_; }  // matrix is (rows+1)x(cols+1)
  std::int64_t cols() const { return cols_; }

  /// PΣ(i,j); valid for i in [0, rows()] and j in [0, cols()] (the matrix
  /// is (rows+1)×(cols+1)). Bounds are MONGE_DCHECK'd: out-of-range access
  /// throws in debug builds and is undefined in release — the oracles'
  /// nested loops stay assertion-free on the Release hot path, matching
  /// the engine's hot-loop convention.
  std::int64_t at(std::int64_t i, std::int64_t j) const {
    MONGE_DCHECK(i >= 0 && i <= rows_ && j >= 0 && j <= cols_);
    return data_[static_cast<std::size_t>(i * (cols_ + 1) + j)];
  }
  std::int64_t& at(std::int64_t i, std::int64_t j) {
    MONGE_DCHECK(i >= 0 && i <= rows_ && j >= 0 && j <= cols_);
    return data_[static_cast<std::size_t>(i * (cols_ + 1) + j)];
  }

  /// (min,+) product: this is (r,m), other is (m,c), result (r,c).
  DistMatrix minplus(const DistMatrix& other) const;

  /// Recovers the unique (sub-)permutation whose distribution matrix this is
  /// (Lemmas 2.1/2.2 guarantee existence for products of distribution
  /// matrices); throws if the matrix is not a valid distribution matrix.
  Perm to_perm() const;

  /// True iff M(i,j) + M(i+1,j+1) <= M(i,j+1) + M(i+1,j) for all i,j
  /// (the Monge condition satisfied by distribution matrices).
  bool is_monge() const;

  friend bool operator==(const DistMatrix&, const DistMatrix&) = default;

 private:
  std::int64_t rows_;
  std::int64_t cols_;
  std::vector<std::int64_t> data_;
};

/// Direct evaluation of PΣ(i,j) in O(points) without materialising the
/// matrix; usable at any n.
std::int64_t dist_at(const Perm& p, std::int64_t i, std::int64_t j);

/// Oracle implementation of PA ⊡ PB via explicit distribution matrices.
/// O(r*m*c) time and O(n^2) space — small inputs only.
Perm multiply_naive(const Perm& a, const Perm& b);

}  // namespace monge
