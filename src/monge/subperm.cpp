#include "monge/subperm.h"

#include "monge/engine.h"
#include "monge/seaweed.h"
#include "util/check.h"

namespace monge {

Perm subunit_multiply(const Perm& a, const Perm& b) {
  return subunit_multiply(a, b, default_seaweed_engine());
}

Perm subunit_multiply(const Perm& a, const Perm& b, SeaweedEngine& engine) {
  MONGE_CHECK_MSG(a.cols() == b.rows(), "inner dimensions disagree: "
                                            << a.cols() << " vs " << b.rows());
  const std::int64_t n2 = a.cols();
  Perm out(a.rows(), b.cols());
  if (n2 == 0) return out;

  // Step 1: compact. rows_a = surviving original rows of PA (M_A^{-1});
  // cols_b = surviving original columns of PB.
  std::vector<std::int32_t> rows_a;
  for (std::int64_t r = 0; r < a.rows(); ++r) {
    if (!a.row_empty(r)) rows_a.push_back(static_cast<std::int32_t>(r));
  }
  const std::vector<std::int32_t> b_col_to_row = b.col_to_row();
  std::vector<std::int32_t> cols_b;
  std::vector<std::int32_t> col_rank_b(static_cast<std::size_t>(b.cols()),
                                       kNone);
  for (std::int64_t c = 0; c < b.cols(); ++c) {
    if (b_col_to_row[static_cast<std::size_t>(c)] != kNone) {
      col_rank_b[static_cast<std::size_t>(c)] =
          static_cast<std::int32_t>(cols_b.size());
      cols_b.push_back(static_cast<std::int32_t>(c));
    }
  }
  const auto n1 = static_cast<std::int64_t>(rows_a.size());
  const auto n3 = static_cast<std::int64_t>(cols_b.size());
  if (n1 == 0 || n3 == 0) return out;

  // Step 2a: P'A (n2×n2). The top n2−n1 rows cover PA's empty columns in
  // increasing order; the bottom n1 rows are the compacted PA.
  std::vector<std::uint8_t> col_used_a(static_cast<std::size_t>(n2), 0);
  for (std::int32_t r : rows_a) {
    col_used_a[static_cast<std::size_t>(a.col_of(r))] = 1;
  }
  std::vector<std::int32_t> pa(static_cast<std::size_t>(n2));
  {
    std::int64_t top = 0;
    for (std::int64_t c = 0; c < n2; ++c) {
      if (!col_used_a[static_cast<std::size_t>(c)]) {
        pa[static_cast<std::size_t>(top++)] = static_cast<std::int32_t>(c);
      }
    }
    MONGE_CHECK(top == n2 - n1);
    for (std::int64_t i = 0; i < n1; ++i) {
      pa[static_cast<std::size_t>(top + i)] =
          a.col_of(rows_a[static_cast<std::size_t>(i)]);
    }
  }

  // Step 2b: P'B (n2×n2). Surviving columns keep their rank in [0,n3); each
  // empty row of PB gets one of the appended columns [n3,n2) in increasing
  // row order.
  std::vector<std::int32_t> pb(static_cast<std::size_t>(n2));
  {
    std::int64_t appended = 0;
    for (std::int64_t r = 0; r < n2; ++r) {
      if (b.row_empty(r)) {
        pb[static_cast<std::size_t>(r)] =
            static_cast<std::int32_t>(n3 + appended++);
      } else {
        pb[static_cast<std::size_t>(r)] =
            col_rank_b[static_cast<std::size_t>(b.col_of(r))];
      }
    }
    MONGE_CHECK(appended == n2 - n3);
  }

  // Step 3: multiply and extract the bottom-left n1×n3 block.
  const std::vector<std::int32_t> pc = engine.multiply_raw(pa, pb);
  const std::int64_t shift = n2 - n1;
  for (std::int64_t r = shift; r < n2; ++r) {
    const std::int32_t c = pc[static_cast<std::size_t>(r)];
    if (c < n3) {
      out.set(rows_a[static_cast<std::size_t>(r - shift)],
              cols_b[static_cast<std::size_t>(c)]);
    }
  }
  return out;
}

}  // namespace monge
