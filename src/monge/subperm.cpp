#include "monge/subperm.h"

#include "monge/engine.h"
#include "util/check.h"

namespace monge {

Perm subunit_multiply(const Perm& a, const Perm& b) {
  return subunit_multiply(a, b, default_seaweed_engine());
}

Perm subunit_multiply(const Perm& a, const Perm& b, SeaweedEngine& engine) {
  MONGE_CHECK_MSG(a.cols() == b.rows(), "inner dimensions disagree: "
                                            << a.cols() << " vs " << b.rows());
  std::vector<std::int32_t> out(static_cast<std::size_t>(a.rows()), kNone);
  engine.subunit_multiply_into(a.row_to_col(), b.row_to_col(), b.cols(), out);
  return Perm::from_rows(std::move(out), b.cols());
}

std::pair<Perm, Perm> subunit_pad_pair(const Perm& a, const Perm& b,
                                       SubunitPadding& info) {
  MONGE_CHECK_MSG(a.cols() == b.rows(), "inner dimensions disagree: "
                                            << a.cols() << " vs " << b.rows());
  info = SubunitPadding{};  // safe to reuse one struct across pairs
  const std::int64_t n2 = a.cols();
  info.out_rows = a.rows();
  info.out_cols = b.cols();

  // Step 1: compact. rows_a = surviving original rows of PA (M_A^{-1});
  // cols_b = surviving original columns of PB, ranked in column order.
  for (std::int64_t r = 0; r < a.rows(); ++r) {
    if (!a.row_empty(r)) info.rows_a.push_back(static_cast<std::int32_t>(r));
  }
  const std::vector<std::int32_t> b_col_to_row = b.col_to_row();
  std::vector<std::int32_t> col_rank_b(static_cast<std::size_t>(b.cols()),
                                       kNone);
  for (std::int64_t c = 0; c < b.cols(); ++c) {
    if (b_col_to_row[static_cast<std::size_t>(c)] != kNone) {
      col_rank_b[static_cast<std::size_t>(c)] =
          static_cast<std::int32_t>(info.cols_b.size());
      info.cols_b.push_back(static_cast<std::int32_t>(c));
    }
  }
  const auto n1 = static_cast<std::int64_t>(info.rows_a.size());
  info.n3 = static_cast<std::int64_t>(info.cols_b.size());
  info.shift = n2 - n1;
  if (n1 == 0 || info.n3 == 0 || n2 == 0) {
    info.empty = true;
    return {Perm(0, 0), Perm(0, 0)};
  }

  // Step 2a: P'A (n2×n2). The top n2−n1 rows cover PA's empty columns in
  // increasing order; the bottom n1 rows are the compacted PA.
  std::vector<std::uint8_t> col_used_a(static_cast<std::size_t>(n2), 0);
  for (std::int32_t r : info.rows_a) {
    col_used_a[static_cast<std::size_t>(a.col_of(r))] = 1;
  }
  std::vector<std::int32_t> pa(static_cast<std::size_t>(n2));
  {
    std::int64_t top = 0;
    for (std::int64_t c = 0; c < n2; ++c) {
      if (!col_used_a[static_cast<std::size_t>(c)]) {
        pa[static_cast<std::size_t>(top++)] = static_cast<std::int32_t>(c);
      }
    }
    MONGE_CHECK(top == n2 - n1);
    for (std::int64_t i = 0; i < n1; ++i) {
      pa[static_cast<std::size_t>(top + i)] =
          a.col_of(info.rows_a[static_cast<std::size_t>(i)]);
    }
  }

  // Step 2b: P'B (n2×n2). Surviving columns keep their rank in [0,n3); each
  // empty row of PB gets one of the appended columns [n3,n2) in increasing
  // row order.
  std::vector<std::int32_t> pb(static_cast<std::size_t>(n2));
  {
    std::int64_t appended = 0;
    for (std::int64_t r = 0; r < n2; ++r) {
      if (b.row_empty(r)) {
        pb[static_cast<std::size_t>(r)] =
            static_cast<std::int32_t>(info.n3 + appended++);
      } else {
        pb[static_cast<std::size_t>(r)] =
            col_rank_b[static_cast<std::size_t>(b.col_of(r))];
      }
    }
    MONGE_CHECK(appended == n2 - info.n3);
  }
  return {Perm::from_rows(std::move(pa), n2),
          Perm::from_rows(std::move(pb), n2)};
}

Perm subunit_unpad(const SubunitPadding& info, const Perm& padded_product) {
  Perm out(info.out_rows, info.out_cols);
  if (info.empty) return out;
  for (std::int64_t r = info.shift; r < padded_product.rows(); ++r) {
    const std::int32_t c = padded_product.col_of(r);
    if (c < info.n3) {
      out.set(info.rows_a[static_cast<std::size_t>(r - info.shift)],
              info.cols_b[static_cast<std::size_t>(c)]);
    }
  }
  return out;
}

Perm subunit_multiply_padded(const Perm& a, const Perm& b) {
  return subunit_multiply_padded(a, b, default_seaweed_engine());
}

Perm subunit_multiply_padded(const Perm& a, const Perm& b,
                             SeaweedEngine& engine) {
  SubunitPadding info;
  const auto padded = subunit_pad_pair(a, b, info);
  if (info.empty) return Perm(info.out_rows, info.out_cols);
  return subunit_unpad(
      info, Perm::from_rows(engine.multiply_raw(padded.first.row_to_col(),
                                                padded.second.row_to_col()),
                            padded.first.cols()));
}

}  // namespace monge
