// Colored point sets and reference implementations of the §3.1 quantities:
// F_q, δ_{q,r}, opt(i,j), and the Lemma 3.7–3.10 reconstruction.
//
// These are deliberately brute-force (O(points) per query): they serve as
// the ground truth that the steady-ant combine (H = 2) and the grid/subgrid
// combine (general H) are tested against, and they document the paper's
// index conventions in executable form.
//
// Color x here is 0-based; the paper's subproblem index q ∈ [1, H] is our
// q ∈ [0, H). With A_x(i,j) = #{color-x points : row >= i, col < j},
// C_x(j) = A_x(0, j) and R_x(i) = A_x(i, cols):
//   F_q(i,j)     = Σ_{x<q} R_x(i) + A_q(i,j) + Σ_{x>q} C_x(j)      (Lemma 3.2)
//   δ_{q,r}(i,j) = F_q(i,j) − F_r(i,j)
//                = A_q(i,j) + Σ_{q<x<=r} C_x(j) − Σ_{q<=x<r} R_x(i) − A_r(i,j)
//   opt(i,j)     = min argmin_q F_q(i,j)
#pragma once

#include <cstdint>
#include <vector>

#include "monge/permutation.h"

namespace monge {

struct ColoredPoint {
  std::int64_t row = 0;
  std::int64_t col = 0;
  std::int32_t color = 0;
  friend bool operator==(const ColoredPoint&, const ColoredPoint&) = default;
};

/// A union of H sub-permutations on an n×n grid. For the combine steps of
/// §3 the union is itself a full permutation (every row and column holds
/// exactly one point); `is_full_union` checks that.
class ColoredPointSet {
 public:
  ColoredPointSet(std::int64_t n, std::int32_t num_colors,
                  std::vector<ColoredPoint> pts);

  /// Builds the union of the given sub-permutations (color = index).
  static ColoredPointSet from_subperms(const std::vector<Perm>& subs);

  std::int64_t n() const { return n_; }
  std::int32_t num_colors() const { return num_colors_; }
  const std::vector<ColoredPoint>& points() const { return pts_; }

  bool is_full_union() const;

  /// #{color-x points : row >= i, col < j}.
  std::int64_t A(std::int32_t x, std::int64_t i, std::int64_t j) const;
  /// #{color-x points : col < j}.
  std::int64_t C(std::int32_t x, std::int64_t j) const;
  /// #{color-x points : row >= i}.
  std::int64_t R(std::int32_t x, std::int64_t i) const;

  std::int64_t F(std::int32_t q, std::int64_t i, std::int64_t j) const;
  std::int64_t delta(std::int32_t q, std::int32_t r, std::int64_t i,
                     std::int64_t j) const;
  /// Smallest q attaining min_q F_q(i,j).
  std::int32_t opt(std::int64_t i, std::int64_t j) const;

  /// The sub-permutation formed by points of one color.
  Perm color_slice(std::int32_t x) const;

 private:
  std::int64_t n_;
  std::int32_t num_colors_;
  std::vector<ColoredPoint> pts_;
};

/// Reference combine: reconstructs PC from the opt table via the
/// characterisation of Lemmas 3.7–3.10. O(n^2 * H) — test oracle only.
/// Requires the union to be a full permutation.
Perm combine_opt_table(const ColoredPointSet& s);

}  // namespace monge
