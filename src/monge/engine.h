// Arena-backed sequential/parallel seaweed multiplication engine.
//
// SeaweedEngine runs Tiskin's divide-and-conquer unit-Monge multiplication
// (the same split/compact/combine recursion as seaweed.h) over index ranges
// into a flat scratch arena that is sized exactly once per top-level call:
// after the first multiply of a given size the recursion performs zero heap
// allocations. Below a configurable cutoff it switches to a dense
// distribution-matrix base case (the arena version of multiply_naive), and
// above a configurable grain size it forks the two independent lo/hi
// subproblems onto a ThreadPool (fork-join with caller work-helping, so
// nested forks cannot deadlock). The per-node combine is the steady-ant
// walk dispatched through steady_ant_simd.h (blocked descent + mask-select
// resolution on the widest ISA the host offers; MONGE_FORCE_SCALAR pins it
// back to the scalar walk). The result is bit-identical to
// seaweed_multiply_reference_raw for every input: PA ⊡ PB is unique and
// every combine path reproduces the same bits.
//
// Input-size limit: the combine packs each point as (coord << 1) | color
// in one int32, so every dimension a public entry point accepts (n for the
// full-permutation paths; a.size(), b.size() and b_cols for the subunit
// paths) must be <= kSeaweedEngineMaxN = 2^30. Larger inputs throw a clear
// std::logic_error up front — the limit is checked at every public entry
// point, never silently truncated into UB.
//
// Knobs (SeaweedEngineOptions):
//   * base_case_cutoff — subproblems of size <= cutoff are solved by the
//     dense (min,+) base case instead of recursing. The dense solve is
//     O(k^3) but branch-light and allocation-free, so it wins for small k;
//     the default is tuned on bench/seq_multiply (see README). Set to 1 to
//     force the pure recursion (useful in tests). Must be in [1, 256] —
//     the cubic base case turns pathological far below the upper bound —
//     and construction throws on out-of-range values instead of silently
//     rewriting the knob.
//   * parallel_grain — subproblems larger than this fork their lo/hi
//     halves onto the pool; smaller ones run sequentially on the calling
//     thread. Must be >= 2 (a size-1 subproblem cannot fork; construction
//     throws below that). Scheduling never affects results (subproblems
//     write disjoint arena slices), only wall-clock.
//   * pool — optional ThreadPool; nullptr means fully sequential. The
//     engine never owns the pool.
//
// Beyond the single-pair entry points the engine offers
//   * multiply_raw_batch / multiply_batch_into — many independent products
//     behind one arena sizing, solved back-to-back or striped across the
//     pool (this is what the MPC simulator's machine-local leaf solve
//     uses: one engine call per machine and level),
//   * subunit_multiply_into — the §4.1 sub-permutation reduction run
//     directly on raw row->col arrays, with the compact/extend arithmetic
//     in arena scratch instead of padded Perm temporaries, and
//   * subunit_multiply_batch_into / subunit_multiply_raw_batch — the
//     batched form of the subunit path (this is what the level-order LIS
//     kernel uses: one engine call per merge level instead of one per
//     merge).
//
// Representation-adaptive dispatch: every entry point routes its recursion
// nodes through a density probe (see core_density_cutoff below). Nodes
// whose inputs both have core density (fraction of rows with p[r] != r)
// at or below the cutoff are cut at boundaries clean for both inputs into
// independent diagonal blocks — the streaming form of the core-sparse
// decomposition in src/monge/core_sparse.h — where one-sided-identity
// blocks are copied verbatim and only interacting blocks recurse densely.
// Near-identical inputs (tiny cores) therefore cost near the core size
// instead of n log n, while dense random inputs pay only the early-exit
// probe. An engine constructed with core_density_cutoff = 0 never probes
// and is the pure dense differential oracle the adaptive path is fuzzed
// against. Dispatch never affects results: the product permutation is
// unique, so every path produces the same bits.
//
// An engine instance is NOT thread-safe (it owns one arena); use one
// engine per thread. default_seaweed_engine() returns a thread-local
// sequential instance whose arena is reused across calls — this is what
// the seaweed_multiply_raw / subunit_multiply wrappers use.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <map>
#include <span>
#include <utility>
#include <vector>

#include "monge/permutation.h"

namespace monge {

class ThreadPool;

/// Largest size any SeaweedEngine entry point accepts, in every dimension
/// (n for full permutations; rows, inner size and b_cols for the subunit
/// paths). The steady-ant combine packs each point as (coord << 1) | color
/// in one int32, which overflows past 2^30; inputs beyond the limit throw
/// std::logic_error at the public entry points.
inline constexpr std::int64_t kSeaweedEngineMaxN = std::int64_t{1} << 30;

/// Tuning knobs for a SeaweedEngine. Fixed and validated at construction
/// (out-of-range values throw std::logic_error rather than being silently
/// rewritten, so options() always reports exactly what the caller chose);
/// see the file comment for how each knob trades off. None of them affect
/// results — only wall-clock and arena footprint.
struct SeaweedEngineOptions {
  /// Subproblems of size <= cutoff use the dense O(k^3) base case.
  /// Must be in [1, 256]; validated at construction.
  std::int64_t base_case_cutoff = 8;
  /// Subproblems larger than this fork onto `pool` (when set). Must be
  /// >= 2; validated at construction.
  std::int64_t parallel_grain = 1 << 13;
  /// Optional fork-join pool; nullptr runs fully sequential. Borrowed,
  /// never owned: the pool must outlive the engine's calls that use it.
  ThreadPool* pool = nullptr;
  /// Density-adaptive dispatch knob: recursion nodes of size >=
  /// core_probe_min_n probe both inputs' core density (fraction of
  /// non-fixed rows, measured by an early-exit scan that stops as soon as
  /// the budget is blown). When BOTH densities are <= the cutoff, the node
  /// is cut at boundaries clean for both inputs into independent diagonal
  /// blocks: one-sided-identity blocks are copied, only interacting blocks
  /// recurse densely (src/monge/core_sparse.h documents the decomposition).
  /// Must be in [0, 1]; 0 disables probing entirely, which makes the
  /// engine the pure dense differential oracle. Like every knob it never
  /// affects results — only which path computes them and how fast.
  double core_density_cutoff = 0.25;
  /// Smallest recursion node the density probe considers; below it the
  /// dense recursion is already cheap and probing is pure overhead. Must
  /// be >= 2; validated at construction.
  std::int64_t core_probe_min_n = 64;
};

/// Counters of the engine's representation decisions (the
/// core_density_cutoff dispatch). Snapshot via
/// SeaweedEngine::representation_stats(); subtract two snapshots for a
/// per-call delta. Totals depend only on the inputs and the knobs — never
/// on scheduling — so they are deterministic across thread counts.
struct RepresentationStats {
  /// Probed nodes that stayed dense: core density above the cutoff, or no
  /// boundary clean for both inputs (the node is one indivisible block).
  std::int64_t dense_nodes = 0;
  /// Probed nodes that took the core-sparse block decomposition.
  std::int64_t core_sparse_nodes = 0;
  /// Decomposed blocks where both cores interact, solved by the dense
  /// recursion on shifted copies.
  std::int64_t blocks_dense = 0;
  /// Decomposed blocks where one input restricts to the identity, copied
  /// verbatim (id ⊡ X = X ⊡ id = X).
  std::int64_t blocks_copied = 0;

  friend bool operator==(const RepresentationStats&,
                         const RepresentationStats&) = default;

  /// Member-wise difference, for before/after per-call deltas.
  friend RepresentationStats operator-(const RepresentationStats& x,
                                       const RepresentationStats& y) {
    return {x.dense_nodes - y.dense_nodes,
            x.core_sparse_nodes - y.core_sparse_nodes,
            x.blocks_dense - y.blocks_dense,
            x.blocks_copied - y.blocks_copied};
  }
};

namespace detail {

/// Lock-free tallies behind SeaweedEngine::representation_stats(): forked
/// pool workers increment them concurrently, so they are atomics. Relaxed
/// ordering suffices — the fork-join barrier sequences every increment
/// before any snapshot the owning thread takes.
struct SeaweedRepCounters {
  std::atomic<std::int64_t> dense_nodes{0};
  std::atomic<std::int64_t> core_sparse_nodes{0};
  std::atomic<std::int64_t> blocks_dense{0};
  std::atomic<std::int64_t> blocks_copied{0};
};

}  // namespace detail

/// Borrowed view of a raw row->col index array. Full permutations for the
/// multiply entry points; the subunit entry points additionally allow kNone
/// (empty row) entries.
using PermView = std::span<const std::int32_t>;

/// One batch entry: the product PA ⊡ PB of pair.first and pair.second.
using PermPairView = std::pair<PermView, PermView>;

/// One batched subunit product: PC = PA ⊡ PB for sub-permutation row->col
/// arrays (kNone = empty row). `a` is a.size() × b.size(), `b` is
/// b.size() × b_cols — the same shape contract as subunit_multiply_into.
struct SubunitPairView {
  PermView a;
  PermView b;
  std::int64_t b_cols = 0;
};

class SeaweedEngine {
 public:
  /// Constructs an engine with the given knobs (validated as documented on
  /// SeaweedEngineOptions; out-of-range values throw std::logic_error).
  /// The arena starts empty and grows monotonically across calls;
  /// construction itself does not allocate scratch.
  ///
  /// @param options tuning knobs; copied, fixed for the engine's lifetime.
  explicit SeaweedEngine(SeaweedEngineOptions options = {});

  SeaweedEngine(const SeaweedEngine&) = delete;
  SeaweedEngine& operator=(const SeaweedEngine&) = delete;

  /// PC = PA ⊡ PB on raw row->col index arrays; both inputs must be full
  /// permutations of [0, n) (validated in debug builds only).
  ///
  /// Deterministic: bit-identical to seaweed_multiply_reference_raw for
  /// every input, every knob choice and every thread count. Reuses (and
  /// possibly grows) the engine's arena; no other allocations after the
  /// first call of a given size beyond the returned vector.
  ///
  /// @param a row->col array of PA (size n).
  /// @param b row->col array of PB (size n).
  /// @return row->col array of the product (size n).
  std::vector<std::int32_t> multiply_raw(std::span<const std::int32_t> a,
                                         std::span<const std::int32_t> b);

  /// Allocation-free variant of multiply_raw: writes the product into
  /// `out`. Same determinism and arena-reuse contract.
  ///
  /// @param a row->col array of PA (size n).
  /// @param b row->col array of PB (size n).
  /// @param out receives the product row->col array; must have size n and
  ///     must not alias `a` or `b`.
  void multiply_into(std::span<const std::int32_t> a,
                     std::span<const std::int32_t> b,
                     std::span<std::int32_t> out);

  /// Validating Perm wrapper around multiply_raw (full permutations only;
  /// use subunit_multiply / subunit_multiply_into for sub-permutations).
  ///
  /// @param a full permutation matrix PA.
  /// @param b full permutation matrix PB with b.rows() == a.cols().
  /// @return the product permutation PA ⊡ PB.
  Perm multiply(const Perm& a, const Perm& b);

  /// Batched products PC_i = PA_i ⊡ PB_i. The arena is sized ONCE for the
  /// whole batch (max subproblem budget when sequential, sum of budgets
  /// when striped), then the pairs are solved back-to-back — or, when a
  /// ThreadPool is configured, striped across it via invoke_two fork-join
  /// (caller work-helping, so batches may be issued from pool workers).
  /// Results are bit-identical to per-pair multiply_raw calls for every
  /// thread count. Pairs may have mixed sizes, including 0 and 1.
  ///
  /// @param pairs the (PA_i, PB_i) inputs; each pair's views must have
  ///     equal size and be full permutations.
  /// @return one product row->col array per pair, in input order.
  std::vector<std::vector<std::int32_t>> multiply_raw_batch(
      std::span<const PermPairView> pairs);

  /// Allocation-free batch core: solves pairs[i] into outs[i] (each the
  /// size of its inputs). This is what the MPC simulator's machine-local
  /// leaf solve calls — one engine call per worker and level instead of one
  /// per leaf. Same arena-sizing, striping and determinism contract as
  /// multiply_raw_batch.
  ///
  /// @param pairs the (PA_i, PB_i) inputs (full permutations, mixed sizes).
  /// @param outs one output span per pair, outs[i].size() ==
  ///     pairs[i].first.size(); outputs must not alias any input.
  void multiply_batch_into(std::span<const PermPairView> pairs,
                           std::span<const std::span<std::int32_t>> outs);

  /// Direct subunit path (Theorem 1.2 without the Perm round-trip):
  /// PC = PA ⊡ PB for sub-permutation row->col arrays (kNone = empty row).
  /// `a` has a.size() rows and b.size() columns; `b` has b.size() rows and
  /// `b_cols` columns. The §4.1 compact/extend arithmetic runs entirely in
  /// the arena — no Perm construction and no heap temporaries — and the
  /// core solve reuses the padded-PA slot as its output.
  ///
  /// Deterministic: bit-identical to subunit_multiply_padded's unpadded
  /// result for every input and thread count. Sub-permutation validity of
  /// the inputs is always checked (it falls out of the compaction pass).
  ///
  /// @param a row->col array of PA (kNone allowed), a.size() rows,
  ///     b.size() columns.
  /// @param b row->col array of PB (kNone allowed), b.size() rows, b_cols
  ///     columns.
  /// @param b_cols number of columns of PB (and of the product); >= 0.
  /// @param out receives out[r] = product column of row r, or kNone;
  ///     out.size() == a.size(). Must not alias `a` or `b`.
  void subunit_multiply_into(PermView a, PermView b, std::int64_t b_cols,
                             std::span<std::int32_t> out);

  /// Allocating convenience wrapper around subunit_multiply_into.
  ///
  /// @param a row->col array of PA (kNone allowed).
  /// @param b row->col array of PB (kNone allowed).
  /// @param b_cols number of columns of PB; >= 0.
  /// @return the product row->col array (size a.size(), kNone = empty row).
  std::vector<std::int32_t> subunit_multiply_raw(PermView a, PermView b,
                                                 std::int64_t b_cols);

  /// Batched subunit products PC_i = PA_i ⊡ PB_i, the §4.1 reduction for a
  /// whole batch behind ONE arena sizing — mirroring the multiply_batch_into
  /// contract. Sequentially the arena is sized once for the largest pair
  /// and the pairs are solved back-to-back; with a ThreadPool configured
  /// the batch is striped across the workers via invoke_two fork-join on
  /// disjoint carved arena slices (caller work-helping, so batches may be
  /// issued from pool workers — each stripe still runs its own core solve
  /// sequentially unless the pair exceeds parallel_grain).
  ///
  /// Deterministic: bit-identical to per-pair subunit_multiply_into calls
  /// for every thread count and batch shape. Pairs may have mixed and
  /// degenerate shapes (empty a/b, b_cols == 0, all-kNone rows). This is
  /// what the level-order LIS kernel issues: one call per merge level.
  ///
  /// @param pairs the (PA_i, PB_i, b_cols_i) inputs; shape contract per
  ///     entry as in subunit_multiply_into.
  /// @param outs one output span per pair, outs[i].size() ==
  ///     pairs[i].a.size(); outputs must not alias any input.
  void subunit_multiply_batch_into(
      std::span<const SubunitPairView> pairs,
      std::span<const std::span<std::int32_t>> outs);

  /// Allocating convenience wrapper around subunit_multiply_batch_into.
  ///
  /// @param pairs the (PA_i, PB_i, b_cols_i) inputs.
  /// @return one product row->col array per pair, in input order.
  std::vector<std::vector<std::int32_t>> subunit_multiply_raw_batch(
      std::span<const SubunitPairView> pairs);

  /// @return the engine's knobs, exactly as passed at construction (the
  ///     constructor validates instead of clamping, so the effective
  ///     values never differ from the requested ones).
  const SeaweedEngineOptions& options() const { return options_; }

  /// Number of subunit_multiply_batch_into calls this engine has served
  /// to completion — calls that threw (validation or solve) are not
  /// counted. One per LIS-kernel merge level; for tests asserting the
  /// O(log n) call structure.
  ///
  /// @return the lifetime completed batched-subunit call count.
  std::int64_t subunit_batch_calls() const { return subunit_batch_calls_; }

  /// Snapshot of the representation-decision counters, accumulated over
  /// the engine's lifetime (monotone — subtract two snapshots for the
  /// delta of one call; RepresentationStats::operator- does exactly that).
  /// Deterministic for a given input sequence and knob set.
  ///
  /// @return the current counter values.
  RepresentationStats representation_stats() const;

  /// Current arena capacity in bytes (grows monotonically; for tests and
  /// benchmarks).
  ///
  /// @return the scratch buffer size in bytes, including alignment slack.
  std::size_t arena_capacity() const { return buffer_.size(); }

  /// Exact number of scratch bytes a full-permutation multiply of size n
  /// will reserve (memoized; for tests and benchmarks).
  ///
  /// @param n problem size (rows of PA).
  /// @return the arena budget in bytes for one size-n core solve.
  std::size_t arena_bytes_for(std::int64_t n) const;

 private:
  /// Grows the buffer to hold at least `bytes` scratch (plus alignment
  /// slack) and returns the 64-byte-aligned usable range.
  std::span<std::byte> arena_span(std::size_t bytes);

  SeaweedEngineOptions options_;
  std::vector<std::byte> buffer_;
  std::int64_t subunit_batch_calls_ = 0;
  /// Representation-decision tallies; mutable because counting decisions
  /// does not change observable products, and incremented from forked
  /// workers during a call (hence atomics — see detail::SeaweedRepCounters).
  mutable detail::SeaweedRepCounters rep_counters_;
  /// Per-size arena budgets, memoized across calls (options are fixed at
  /// construction, so entries never go stale). Mutated only by the owning
  /// thread; forked workers read it through a const Plan.
  mutable std::map<std::int64_t, std::size_t> size_cache_;
};

/// Thread-local sequential engine with a persistent arena; backs the
/// seaweed_multiply_raw / subunit_multiply compatibility wrappers and the
/// MPC simulator's machine-local solves.
///
/// @return the calling thread's engine (default options, no pool).
SeaweedEngine& default_seaweed_engine();

}  // namespace monge
