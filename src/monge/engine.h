// Arena-backed sequential/parallel seaweed multiplication engine.
//
// SeaweedEngine runs Tiskin's divide-and-conquer unit-Monge multiplication
// (the same split/compact/combine recursion as seaweed.h) over index ranges
// into a flat scratch arena that is sized exactly once per top-level call:
// after the first multiply of a given size the recursion performs zero heap
// allocations. Below a configurable cutoff it switches to a dense
// distribution-matrix base case (the arena version of multiply_naive), and
// above a configurable grain size it forks the two independent lo/hi
// subproblems onto a ThreadPool (fork-join with caller work-helping, so
// nested forks cannot deadlock). The result is bit-identical to
// seaweed_multiply_reference_raw for every input: PA ⊡ PB is unique and
// both paths implement the same combine.
//
// Knobs (SeaweedEngineOptions):
//   * base_case_cutoff — subproblems of size <= cutoff are solved by the
//     dense (min,+) base case instead of recursing. The dense solve is
//     O(k^3) but branch-light and allocation-free, so it wins for small k;
//     the default is tuned on bench/seq_multiply (see README). Set to 1 to
//     force the pure recursion (useful in tests). Clamped to [1, 256] —
//     the cubic base case turns pathological far below that bound.
//   * parallel_grain — subproblems larger than this fork their lo/hi
//     halves onto the pool; smaller ones run sequentially on the calling
//     thread. Scheduling never affects results (subproblems write disjoint
//     arena slices), only wall-clock.
//   * pool — optional ThreadPool; nullptr means fully sequential. The
//     engine never owns the pool.
//
// Beyond the single-pair entry points the engine offers
//   * multiply_raw_batch / multiply_batch_into — many independent products
//     behind one arena sizing, solved back-to-back or striped across the
//     pool (this is what the MPC simulator's machine-local leaf solve
//     uses: one engine call per machine and level), and
//   * subunit_multiply_into — the §4.1 sub-permutation reduction run
//     directly on raw row->col arrays, with the compact/extend arithmetic
//     in arena scratch instead of padded Perm temporaries.
//
// An engine instance is NOT thread-safe (it owns one arena); use one
// engine per thread. default_seaweed_engine() returns a thread-local
// sequential instance whose arena is reused across calls — this is what
// the seaweed_multiply_raw / subunit_multiply wrappers use.
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <span>
#include <utility>
#include <vector>

#include "monge/permutation.h"

namespace monge {

class ThreadPool;

struct SeaweedEngineOptions {
  std::int64_t base_case_cutoff = 8;
  std::int64_t parallel_grain = 1 << 13;
  ThreadPool* pool = nullptr;
};

/// Borrowed view of a raw row->col index array. Full permutations for the
/// multiply entry points; the subunit entry points additionally allow kNone
/// (empty row) entries.
using PermView = std::span<const std::int32_t>;

/// One batch entry: the product PA ⊡ PB of pair.first and pair.second.
using PermPairView = std::pair<PermView, PermView>;

class SeaweedEngine {
 public:
  explicit SeaweedEngine(SeaweedEngineOptions options = {});

  SeaweedEngine(const SeaweedEngine&) = delete;
  SeaweedEngine& operator=(const SeaweedEngine&) = delete;

  /// PC = PA ⊡ PB on raw row->col index arrays; both inputs must be full
  /// permutations of [0, n) (validated in debug builds only).
  std::vector<std::int32_t> multiply_raw(std::span<const std::int32_t> a,
                                         std::span<const std::int32_t> b);

  /// Allocation-free variant: writes the product into `out` (size n).
  void multiply_into(std::span<const std::int32_t> a,
                     std::span<const std::int32_t> b,
                     std::span<std::int32_t> out);

  /// Validating Perm wrapper (full permutations only).
  Perm multiply(const Perm& a, const Perm& b);

  /// Batched products PC_i = PA_i ⊡ PB_i. The arena is sized ONCE for the
  /// whole batch (max subproblem budget when sequential, sum of budgets
  /// when striped), then the pairs are solved back-to-back — or, when a
  /// ThreadPool is configured, striped across it via invoke_two fork-join
  /// (caller work-helping, so batches may be issued from pool workers).
  /// Results are bit-identical to per-pair multiply_raw calls for every
  /// thread count. Pairs may have mixed sizes, including 0 and 1.
  std::vector<std::vector<std::int32_t>> multiply_raw_batch(
      std::span<const PermPairView> pairs);

  /// Allocation-free batch core: solves pairs[i] into outs[i] (each the
  /// size of its inputs). This is what the MPC simulator's machine-local
  /// leaf solve calls — one engine call per worker and level instead of one
  /// per leaf.
  void multiply_batch_into(std::span<const PermPairView> pairs,
                           std::span<const std::span<std::int32_t>> outs);

  /// Direct subunit path (Theorem 1.2 without the Perm round-trip):
  /// PC = PA ⊡ PB for sub-permutation row->col arrays (kNone = empty row).
  /// `a` has a.size() rows and b.size() columns; `b` has b.size() rows and
  /// `b_cols` columns. The §4.1 compact/extend arithmetic runs entirely in
  /// the arena — no Perm construction and no heap temporaries — and the
  /// core solve reuses the padded-PA slot as its output. Writes out[r] =
  /// product column of row r, or kNone; out.size() == a.size().
  void subunit_multiply_into(PermView a, PermView b, std::int64_t b_cols,
                             std::span<std::int32_t> out);

  /// Allocating convenience wrapper around subunit_multiply_into.
  std::vector<std::int32_t> subunit_multiply_raw(PermView a, PermView b,
                                                 std::int64_t b_cols);

  const SeaweedEngineOptions& options() const { return options_; }

  /// Current arena capacity in bytes (grows monotonically; for tests and
  /// benchmarks).
  std::size_t arena_capacity() const { return buffer_.size(); }

  /// Exact number of scratch bytes a multiply of size n will reserve.
  std::size_t arena_bytes_for(std::int64_t n) const;

 private:
  /// Grows the buffer to hold at least `bytes` scratch (plus alignment
  /// slack) and returns the 64-byte-aligned usable range.
  std::span<std::byte> arena_span(std::size_t bytes);

  SeaweedEngineOptions options_;
  std::vector<std::byte> buffer_;
  /// Per-size arena budgets, memoized across calls (options are fixed at
  /// construction, so entries never go stale). Mutated only by the owning
  /// thread; forked workers read it through a const Plan.
  mutable std::map<std::int64_t, std::size_t> size_cache_;
};

/// Thread-local sequential engine with a persistent arena; backs the
/// seaweed_multiply_raw / subunit_multiply compatibility wrappers and the
/// MPC simulator's machine-local solves.
SeaweedEngine& default_seaweed_engine();

}  // namespace monge
