#include "monge/steady_ant.h"

#include <algorithm>

#include "util/check.h"

namespace monge {

namespace {

/// δ(i, j+1) − δ(i, j): contribution of the point in column j (Lemma 3.3).
/// color 0 (the paper's q): +1 iff its row >= i; color 1 (r): +1 iff row < i.
inline std::int64_t col_step(std::int64_t point_row, std::uint8_t color,
                             std::int64_t i) {
  return color == 0 ? (point_row >= i ? 1 : 0) : (point_row < i ? 1 : 0);
}

/// δ(i+1, j) − δ(i, j): contribution of the point in row i (Lemma 3.4).
/// color 0: +1 iff its column >= j; color 1: +1 iff column < j.
inline std::int64_t row_step(std::int64_t point_col, std::uint8_t color,
                             std::int64_t j) {
  return color == 0 ? (point_col >= j ? 1 : 0) : (point_col < j ? 1 : 0);
}

}  // namespace

std::vector<std::int64_t> steady_ant_thresholds(
    std::span<const std::int32_t> rc, std::span<const std::uint8_t> color) {
  const std::int64_t n = static_cast<std::int64_t>(rc.size());
  MONGE_DCHECK(color.size() == rc.size());

  // col -> (row, color) of the unique point in that column.
  std::vector<std::int32_t> col_row(static_cast<std::size_t>(n));
  std::vector<std::uint8_t> col_color(static_cast<std::size_t>(n));
  for (std::int64_t r = 0; r < n; ++r) {
    const std::int32_t c = rc[static_cast<std::size_t>(r)];
    MONGE_DCHECK(c >= 0 && c < n);
    col_row[static_cast<std::size_t>(c)] = static_cast<std::int32_t>(r);
    col_color[static_cast<std::size_t>(c)] = color[static_cast<std::size_t>(r)];
  }

  std::vector<std::int64_t> t(static_cast<std::size_t>(n) + 1);
  // δ(i, 0) = −R_0(i) <= 0 for every i, so t(0) = n; δ(n, 0) = 0.
  std::int64_t i = n;
  std::int64_t delta = 0;
  t[0] = n;
  for (std::int64_t j = 0; j < n; ++j) {
    // Move right: δ(i, j) -> δ(i, j+1).
    delta += col_step(col_row[static_cast<std::size_t>(j)],
                      col_color[static_cast<std::size_t>(j)], i);
    // Descend while the invariant δ(i, j+1) <= 0 is violated. δ(0, ·) <= 0
    // always, so the loop terminates with i >= 0.
    while (delta > 0) {
      MONGE_DCHECK(i > 0);
      --i;
      delta -= row_step(rc[static_cast<std::size_t>(i)],
                        color[static_cast<std::size_t>(i)], j + 1);
    }
    t[static_cast<std::size_t>(j) + 1] = i;
  }
  return t;
}

std::vector<std::int32_t> steady_ant_combine_raw(
    std::span<const std::int32_t> rc, std::span<const std::uint8_t> color) {
  const std::int64_t n = static_cast<std::int64_t>(rc.size());
  const std::vector<std::int64_t> t = steady_ant_thresholds(rc, color);

  // A cell (r,c) is "interesting" (Lemma 3.9) iff its corner pattern is
  // opt(r,c) = opt(r,c+1) = opt(r+1,c) = 0 and opt(r+1,c+1) = 1, i.e.
  // r == t[c+1] and r + 1 <= t[c] — exactly one per strict drop of t.
  const auto interesting = [&](std::int64_t r, std::int64_t c) {
    return r == t[static_cast<std::size_t>(c) + 1] &&
           r + 1 <= t[static_cast<std::size_t>(c)];
  };

  std::vector<std::int32_t> out(static_cast<std::size_t>(n), kNone);
  for (std::int64_t c = 0; c < n; ++c) {
    if (t[static_cast<std::size_t>(c) + 1] < t[static_cast<std::size_t>(c)]) {
      const std::int64_t r = t[static_cast<std::size_t>(c) + 1];
      MONGE_DCHECK(out[static_cast<std::size_t>(r)] == kNone);
      out[static_cast<std::size_t>(r)] = static_cast<std::int32_t>(c);
    }
  }
  // Every other cell: PC(r,c) = PC,e(r,c) with e = opt(r+1, c+1)
  // (Lemmas 3.7/3.8/3.10; see combine_opt_table for the derivation).
  for (std::int64_t r = 0; r < n; ++r) {
    const std::int64_t c = rc[static_cast<std::size_t>(r)];
    if (interesting(r, c)) continue;  // already handled above
    const std::uint8_t e =
        (r + 1 <= t[static_cast<std::size_t>(c) + 1]) ? 0 : 1;
    if (color[static_cast<std::size_t>(r)] == e) {
      MONGE_DCHECK(out[static_cast<std::size_t>(r)] == kNone);
      out[static_cast<std::size_t>(r)] = static_cast<std::int32_t>(c);
    }
  }
  return out;
}

// monge-lint: hot
void steady_ant_packed_scalar(std::span<const std::int32_t> row_pk,
                              std::span<std::int32_t> col_pk,
                              std::span<std::int32_t> t,
                              std::span<std::int32_t> out) {
  const auto n = static_cast<std::int64_t>(row_pk.size());
  for (std::int64_t r = 0; r < n; ++r) {
    const std::int32_t pk = row_pk[static_cast<std::size_t>(r)];
    const std::int32_t c = pk >> 1;
    MONGE_DCHECK(c >= 0 && c < n);
    col_pk[static_cast<std::size_t>(c)] =
        static_cast<std::int32_t>((r << 1) | (pk & 1));
  }
#ifndef NDEBUG
  std::fill(out.begin(), out.end(), kNone);
#endif
  std::int64_t i = n;
  std::int64_t delta = 0;
  t[0] = static_cast<std::int32_t>(n);
  for (std::int64_t j = 0; j < n; ++j) {
    const std::int32_t pk = col_pk[static_cast<std::size_t>(j)];
    const std::int32_t pr = pk >> 1;
    delta += (pk & 1) == 0 ? (pr >= i ? 1 : 0) : (pr < i ? 1 : 0);
    const std::int64_t prev = i;
    while (delta > 0) {
      MONGE_DCHECK(i > 0);
      --i;
      const std::int32_t qk = row_pk[static_cast<std::size_t>(i)];
      const std::int32_t qc = qk >> 1;
      delta -= (qk & 1) == 0 ? (qc >= j + 1 ? 1 : 0) : (qc < j + 1 ? 1 : 0);
    }
    t[static_cast<std::size_t>(j) + 1] = static_cast<std::int32_t>(i);
    if (i < prev) {
      // Interesting cell (Lemma 3.9): t drops strictly at column j.
      MONGE_DCHECK(out[static_cast<std::size_t>(i)] == kNone);
      out[static_cast<std::size_t>(i)] = static_cast<std::int32_t>(j);
    }
  }
  // Every other cell: PC(r,c) = PC,e(r,c) with e = opt(r+1, c+1).
  for (std::int64_t r = 0; r < n; ++r) {
    const std::int32_t pk = row_pk[static_cast<std::size_t>(r)];
    const std::int64_t c = pk >> 1;
    if (r == t[static_cast<std::size_t>(c) + 1] &&
        r + 1 <= t[static_cast<std::size_t>(c)]) {
      continue;  // interesting cell, already placed during the walk
    }
    const std::int32_t e = (r + 1 <= t[static_cast<std::size_t>(c) + 1]) ? 0 : 1;
    if ((pk & 1) == e) {
      MONGE_DCHECK(out[static_cast<std::size_t>(r)] == kNone);
      out[static_cast<std::size_t>(r)] = static_cast<std::int32_t>(c);
    }
  }
#ifndef NDEBUG
  for (std::int64_t r = 0; r < n; ++r) {
    MONGE_DCHECK(out[static_cast<std::size_t>(r)] != kNone);
  }
#endif
}

Perm steady_ant_combine(const Perm& union_perm,
                        const std::vector<std::uint8_t>& row_color) {
  MONGE_CHECK(union_perm.is_full_permutation());
  MONGE_CHECK(static_cast<std::int64_t>(row_color.size()) ==
              union_perm.rows());
  Perm out = Perm::from_rows(
      steady_ant_combine_raw(union_perm.row_to_col(), row_color),
      union_perm.cols());
  MONGE_CHECK_MSG(out.is_full_permutation(),
                  "steady ant did not produce a permutation");
  return out;
}

}  // namespace monge
