#include "monge/distribution.h"

#include <algorithm>
#include <limits>

#include "util/check.h"

namespace monge {

DistMatrix::DistMatrix(std::int64_t rows, std::int64_t cols)
    : rows_(rows),
      cols_(cols),
      data_(static_cast<std::size_t>((rows + 1) * (cols + 1)), 0) {
  MONGE_CHECK(rows >= 0 && cols >= 0);
}

DistMatrix DistMatrix::from(const Perm& p) {
  DistMatrix m(p.rows(), p.cols());
  // PΣ(i,j) counts points with row >= i and col < j. Fill by downward
  // row recurrence: PΣ(i,j) = PΣ(i+1,j) + #{points in row i with col < j}.
  for (std::int64_t i = p.rows() - 1; i >= 0; --i) {
    const std::int32_t c = p.col_of(i);
    for (std::int64_t j = 0; j <= p.cols(); ++j) {
      m.at(i, j) = m.at(i + 1, j) + (c != kNone && c < j ? 1 : 0);
    }
  }
  return m;
}

DistMatrix DistMatrix::minplus(const DistMatrix& other) const {
  MONGE_CHECK_MSG(cols_ == other.rows_, "inner dimensions disagree: "
                                            << cols_ << " vs " << other.rows_);
  DistMatrix out(rows_, other.cols_);
  for (std::int64_t i = 0; i <= rows_; ++i) {
    for (std::int64_t k = 0; k <= other.cols_; ++k) {
      std::int64_t best = std::numeric_limits<std::int64_t>::max();
      for (std::int64_t j = 0; j <= cols_; ++j) {
        best = std::min(best, at(i, j) + other.at(j, k));
      }
      out.at(i, k) = best;
    }
  }
  return out;
}

Perm DistMatrix::to_perm() const {
  Perm p(rows_, cols_);
  for (std::int64_t r = 0; r < rows_; ++r) {
    for (std::int64_t c = 0; c < cols_; ++c) {
      const std::int64_t v =
          at(r, c + 1) - at(r + 1, c + 1) - at(r, c) + at(r + 1, c);
      MONGE_CHECK_MSG(v == 0 || v == 1,
                      "not a distribution matrix at (" << r << "," << c << ")");
      if (v == 1) {
        MONGE_CHECK_MSG(p.row_empty(r), "two points in row " << r);
        p.set(r, c);
      }
    }
  }
  return p;
}

bool DistMatrix::is_monge() const {
  for (std::int64_t i = 0; i < rows_; ++i) {
    for (std::int64_t j = 0; j < cols_; ++j) {
      if (at(i, j) + at(i + 1, j + 1) > at(i, j + 1) + at(i + 1, j)) {
        return false;
      }
    }
  }
  return true;
}

std::int64_t dist_at(const Perm& p, std::int64_t i, std::int64_t j) {
  MONGE_CHECK(i >= 0 && i <= p.rows() && j >= 0 && j <= p.cols());
  std::int64_t count = 0;
  for (std::int64_t r = i; r < p.rows(); ++r) {
    const std::int32_t c = p.col_of(r);
    count += (c != kNone && c < j);
  }
  return count;
}

Perm multiply_naive(const Perm& a, const Perm& b) {
  const DistMatrix pa = DistMatrix::from(a);
  const DistMatrix pb = DistMatrix::from(b);
  return pa.minplus(pb).to_perm();
}

}  // namespace monge
