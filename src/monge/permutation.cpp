#include "monge/permutation.h"

#include <algorithm>
#include <numeric>

#include "util/check.h"

namespace monge {

Perm::Perm(std::int64_t rows, std::int64_t cols)
    : row_to_col_(static_cast<std::size_t>(rows), kNone), cols_(cols) {
  MONGE_CHECK(rows >= 0 && cols >= 0);
}

Perm Perm::identity(std::int64_t n) {
  Perm p(n, n);
  for (std::int64_t r = 0; r < n; ++r) {
    p.row_to_col_[static_cast<std::size_t>(r)] = static_cast<std::int32_t>(r);
  }
  return p;
}

Perm Perm::reverse(std::int64_t n) {
  Perm p(n, n);
  for (std::int64_t r = 0; r < n; ++r) {
    p.row_to_col_[static_cast<std::size_t>(r)] =
        static_cast<std::int32_t>(n - 1 - r);
  }
  return p;
}

Perm Perm::from_rows(std::vector<std::int32_t> row_to_col, std::int64_t cols) {
  Perm p;
  p.row_to_col_ = std::move(row_to_col);
  p.cols_ = cols;
  std::vector<bool> seen(static_cast<std::size_t>(cols), false);
  for (std::int32_t c : p.row_to_col_) {
    if (c == kNone) continue;
    MONGE_CHECK_MSG(c >= 0 && c < cols, "column " << c << " out of range");
    MONGE_CHECK_MSG(!seen[static_cast<std::size_t>(c)],
                    "duplicate column " << c);
    seen[static_cast<std::size_t>(c)] = true;
  }
  return p;
}

Perm Perm::from_points(std::int64_t rows, std::int64_t cols,
                       std::span<const Point> pts) {
  Perm p(rows, cols);
  for (const Point& pt : pts) {
    MONGE_CHECK(pt.row >= 0 && pt.row < rows && pt.col >= 0 && pt.col < cols);
    MONGE_CHECK_MSG(p.row_empty(pt.row), "duplicate row " << pt.row);
    p.set(pt.row, pt.col);
  }
  // Validate column uniqueness.
  std::vector<bool> seen(static_cast<std::size_t>(cols), false);
  for (std::int32_t c : p.row_to_col_) {
    if (c == kNone) continue;
    MONGE_CHECK_MSG(!seen[static_cast<std::size_t>(c)],
                    "duplicate column " << c);
    seen[static_cast<std::size_t>(c)] = true;
  }
  return p;
}

Perm Perm::random(std::int64_t n, Rng& rng) {
  Perm p;
  p.row_to_col_ = rng.permutation(n);
  p.cols_ = n;
  return p;
}

Perm Perm::random_sub(std::int64_t rows, std::int64_t cols, std::int64_t k,
                      Rng& rng) {
  MONGE_CHECK(k <= rows && k <= cols);
  std::vector<std::int32_t> rs(static_cast<std::size_t>(rows));
  std::iota(rs.begin(), rs.end(), 0);
  rng.shuffle(rs);
  std::vector<std::int32_t> cs(static_cast<std::size_t>(cols));
  std::iota(cs.begin(), cs.end(), 0);
  rng.shuffle(cs);
  Perm p(rows, cols);
  for (std::int64_t i = 0; i < k; ++i) {
    p.set(rs[static_cast<std::size_t>(i)], cs[static_cast<std::size_t>(i)]);
  }
  return p;
}

void Perm::set(std::int64_t r, std::int64_t c) {
  MONGE_DCHECK(r >= 0 && r < rows() && c >= 0 && c < cols());
  row_to_col_[static_cast<std::size_t>(r)] = static_cast<std::int32_t>(c);
}

void Perm::clear_row(std::int64_t r) {
  row_to_col_[static_cast<std::size_t>(r)] = kNone;
}

std::int64_t Perm::point_count() const {
  std::int64_t k = 0;
  for (std::int32_t c : row_to_col_) k += (c != kNone);
  return k;
}

std::int64_t Perm::core_size() const {
  std::int64_t core = 0;
  for (std::int64_t r = 0; r < rows(); ++r) {
    core += row_to_col_[static_cast<std::size_t>(r)] != r;
  }
  return core;
}

double Perm::core_density() const {
  return rows() == 0 ? 0.0
                     : static_cast<double>(core_size()) /
                           static_cast<double>(rows());
}

bool Perm::is_full_permutation() const {
  if (rows() != cols()) return false;
  std::vector<bool> seen(static_cast<std::size_t>(cols_), false);
  for (std::int32_t c : row_to_col_) {
    if (c == kNone || seen[static_cast<std::size_t>(c)]) return false;
    seen[static_cast<std::size_t>(c)] = true;
  }
  return true;
}

std::vector<Point> Perm::points() const {
  std::vector<Point> pts;
  pts.reserve(static_cast<std::size_t>(point_count()));
  for (std::int64_t r = 0; r < rows(); ++r) {
    if (!row_empty(r)) pts.push_back(Point{r, col_of(r)});
  }
  return pts;
}

Perm Perm::transposed() const {
  Perm t(cols_, rows());
  for (std::int64_t r = 0; r < rows(); ++r) {
    if (!row_empty(r)) t.set(col_of(r), r);
  }
  return t;
}

std::vector<std::int32_t> Perm::col_to_row() const {
  std::vector<std::int32_t> inv(static_cast<std::size_t>(cols_), kNone);
  for (std::int64_t r = 0; r < rows(); ++r) {
    if (!row_empty(r)) {
      inv[static_cast<std::size_t>(col_of(r))] = static_cast<std::int32_t>(r);
    }
  }
  return inv;
}

}  // namespace monge
