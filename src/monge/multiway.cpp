#include "monge/multiway.h"

#include <algorithm>

#include "util/check.h"
#include "util/math.h"

namespace monge {

std::int32_t LineData::opt_at(std::int64_t t) const {
  MONGE_DCHECK(!start.empty() && start[0] == 0);
  const auto it = std::upper_bound(start.begin(), start.end(), t);
  return value[static_cast<std::size_t>(it - start.begin() - 1)];
}

namespace {

struct SweepState {
  std::vector<std::int64_t> f;  // F_q at the current sweep position

  std::int32_t argmin() const {
    std::int32_t best = 0;
    for (std::int32_t q = 1; q < static_cast<std::int32_t>(f.size()); ++q) {
      if (f[static_cast<std::size_t>(q)] < f[static_cast<std::size_t>(best)]) {
        best = q;
      }
    }
    return best;
  }
};

}  // namespace

LineData sweep_vertical_line(const ColoredPointSet& s, std::int64_t col,
                             std::int64_t grid_g) {
  const std::int64_t n = s.n();
  const auto h = static_cast<std::size_t>(s.num_colors());
  MONGE_CHECK(col >= 0 && col <= n);

  // Row-indexed lookup of the unique point per row.
  std::vector<std::int32_t> row_color(static_cast<std::size_t>(n), kNone);
  std::vector<std::int32_t> row_col(static_cast<std::size_t>(n), kNone);
  for (const auto& p : s.points()) {
    row_color[static_cast<std::size_t>(p.row)] = p.color;
    row_col[static_cast<std::size_t>(p.row)] = static_cast<std::int32_t>(p.col);
  }

  // F_q(n, col) = Σ_{x>q} C_x(col).
  std::vector<std::int64_t> c_below(h, 0);  // C_x(col)
  for (const auto& p : s.points()) {
    if (p.col < col) ++c_below[static_cast<std::size_t>(p.color)];
  }
  SweepState st;
  st.f.assign(h, 0);
  for (std::size_t q = 0; q < h; ++q) {
    for (std::size_t x = q + 1; x < h; ++x) st.f[q] += c_below[x];
  }

  // Sweep i = n down to 0; record opt changes and grid anchors. A change
  // between i+1 and i means the value opt(i+1) occupies an interval that
  // starts at i+1.
  const std::int64_t anchors =
      grid_g > 0 ? n / grid_g + 1 : 0;  // grid rows 0, G, 2G, ... <= n
  LineData out;
  out.pos = col;
  out.grid_anchors.assign(static_cast<std::size_t>(anchors),
                          std::vector<std::int64_t>(h > 0 ? h - 1 : 0, 0));
  std::vector<std::int64_t> rev_start;
  std::vector<std::int32_t> rev_value;
  std::int32_t cur = st.argmin();

  const auto record_anchor = [&](std::int64_t i) {
    if (grid_g <= 0 || i % grid_g != 0 || i / grid_g >= anchors) return;
    auto& a = out.grid_anchors[static_cast<std::size_t>(i / grid_g)];
    for (std::size_t k = 0; k + 1 < h; ++k) {
      a[k] = st.f[k] - st.f[k + 1];  // δ_{k,k+1}(i, col)
    }
  };
  record_anchor(n);

  for (std::int64_t i = n - 1; i >= 0; --i) {
    // Add row i: F_q gains [x<q] + [x==q][pc<col].
    const std::int32_t x = row_color[static_cast<std::size_t>(i)];
    if (x != kNone) {
      const std::int32_t pc = row_col[static_cast<std::size_t>(i)];
      for (std::size_t q = static_cast<std::size_t>(x) + 1; q < h; ++q) {
        ++st.f[q];
      }
      if (pc < col) ++st.f[static_cast<std::size_t>(x)];
    }
    const std::int32_t o = st.argmin();
    if (o != cur) {
      rev_start.push_back(i + 1);
      rev_value.push_back(cur);
      cur = o;
    }
    record_anchor(i);
  }
  rev_start.push_back(0);
  rev_value.push_back(cur);

  for (std::size_t k = rev_start.size(); k-- > 0;) {
    out.start.push_back(rev_start[k]);
    out.value.push_back(rev_value[k]);
  }
  return out;
}

LineData sweep_horizontal_line(const ColoredPointSet& s, std::int64_t row) {
  const std::int64_t n = s.n();
  const auto h = static_cast<std::size_t>(s.num_colors());
  MONGE_CHECK(row >= 0 && row <= n);

  std::vector<std::int32_t> col_color(static_cast<std::size_t>(n), kNone);
  std::vector<std::int32_t> col_row(static_cast<std::size_t>(n), kNone);
  std::vector<std::int64_t> r_above(h, 0);  // R_x(row)
  for (const auto& p : s.points()) {
    col_color[static_cast<std::size_t>(p.col)] = p.color;
    col_row[static_cast<std::size_t>(p.col)] = static_cast<std::int32_t>(p.row);
    if (p.row >= row) ++r_above[static_cast<std::size_t>(p.color)];
  }

  // F_q(row, 0) = Σ_{x<q} R_x(row).
  SweepState st;
  st.f.assign(h, 0);
  for (std::size_t q = 0; q < h; ++q) {
    for (std::size_t x = 0; x < q; ++x) st.f[q] += r_above[x];
  }

  LineData out;
  out.pos = row;
  std::int32_t cur = st.argmin();
  out.start.push_back(0);
  out.value.push_back(cur);
  for (std::int64_t j = 0; j < n; ++j) {
    // Cross column j: F_q gains [x>q] + [x==q][pr>=row].
    const std::int32_t x = col_color[static_cast<std::size_t>(j)];
    if (x != kNone) {
      const std::int32_t pr = col_row[static_cast<std::size_t>(j)];
      for (std::size_t q = 0; q < static_cast<std::size_t>(x); ++q) ++st.f[q];
      if (pr >= row) ++st.f[static_cast<std::size_t>(x)];
    }
    const std::int32_t o = st.argmin();
    if (o != cur) {
      cur = o;
      out.start.push_back(j + 1);
      out.value.push_back(o);
    }
  }
  return out;
}

BoxResult solve_box(const BoxTask& t) {
  const std::int64_t rows = t.r1 - t.r0;
  const std::int64_t cols = t.c1 - t.c0;
  const std::int32_t kspan = t.kmax - t.kmin;  // demarcation pairs in play
  MONGE_CHECK(rows >= 1 && cols >= 1 && kspan >= 1);
  MONGE_CHECK(static_cast<std::int64_t>(t.top_opt.size()) == cols + 1);
  MONGE_CHECK(static_cast<std::int64_t>(t.right_opt.size()) == rows + 1);
  MONGE_CHECK(static_cast<std::int64_t>(t.anchor.size()) == kspan);

  // Per-row / per-column point lookup (at most one each by uniqueness).
  std::vector<std::int32_t> rp_col(static_cast<std::size_t>(rows), kNone);
  std::vector<std::int32_t> rp_color(static_cast<std::size_t>(rows), kNone);
  for (const auto& p : t.row_points) {
    MONGE_DCHECK(p.row >= t.r0 && p.row < t.r1);
    rp_col[static_cast<std::size_t>(p.row - t.r0)] =
        static_cast<std::int32_t>(p.col);
    rp_color[static_cast<std::size_t>(p.row - t.r0)] = p.color;
  }
  std::vector<std::int32_t> cp_row(static_cast<std::size_t>(cols), kNone);
  std::vector<std::int32_t> cp_color(static_cast<std::size_t>(cols), kNone);
  for (const auto& p : t.col_points) {
    MONGE_DCHECK(p.col >= t.c0 && p.col < t.c1);
    cp_row[static_cast<std::size_t>(p.col - t.c0)] =
        static_cast<std::int32_t>(p.row);
    cp_color[static_cast<std::size_t>(p.col - t.c0)] = p.color;
  }

  BoxResult out;
  std::vector<std::int64_t> anchor = t.anchor;  // δ_{k,k+1}(r, c1)
  std::vector<std::int64_t> delta(static_cast<std::size_t>(kspan));
  std::vector<std::int32_t> opt_prev(t.top_opt.begin(), t.top_opt.end());
  std::vector<std::int32_t> opt_cur(static_cast<std::size_t>(cols) + 1);

  for (std::int64_t r = t.r0 + 1; r <= t.r1; ++r) {
    // Advance the right-boundary anchors across row r-1 (Lemma 3.4 step).
    const std::int32_t arc = rp_col[static_cast<std::size_t>(r - 1 - t.r0)];
    const std::int32_t arx = rp_color[static_cast<std::size_t>(r - 1 - t.r0)];
    if (arx != kNone) {
      for (std::int32_t k = 0; k < kspan; ++k) {
        const std::int32_t lo = t.kmin + k;
        if (arx == lo) {
          anchor[static_cast<std::size_t>(k)] += (arc >= t.c1) ? 1 : 0;
        } else if (arx == lo + 1) {
          anchor[static_cast<std::size_t>(k)] += (arc < t.c1) ? 1 : 0;
        }
      }
    }

    delta = anchor;  // δ_{k,k+1}(r, c1)
    opt_cur[static_cast<std::size_t>(cols)] =
        t.right_opt[static_cast<std::size_t>(r - t.r0)];

    for (std::int64_t c = t.c1 - 1; c >= t.c0; --c) {
      // δ(r, c) = δ(r, c+1) − colstep(point in column c; r)  (Lemma 3.3).
      const std::int32_t pcr = cp_row[static_cast<std::size_t>(c - t.c0)];
      const std::int32_t pcx = cp_color[static_cast<std::size_t>(c - t.c0)];
      if (pcx != kNone) {
        for (std::int32_t k = 0; k < kspan; ++k) {
          const std::int32_t lo = t.kmin + k;
          if (pcx == lo) {
            delta[static_cast<std::size_t>(k)] -= (pcr >= r) ? 1 : 0;
          } else if (pcx == lo + 1) {
            delta[static_cast<std::size_t>(k)] -= (pcr < r) ? 1 : 0;
          }
        }
      }

      // opt(r, c) from opt(r-1, c) <= opt(r, c) <= opt(r, c+1) and the
      // consecutive differences: F_k = F_a − Σ_{t=a}^{k-1} δ_{t,t+1}, so the
      // minimiser is the smallest k maximising the prefix sum.
      const std::int32_t a = opt_prev[static_cast<std::size_t>(c - t.c0)];
      const std::int32_t b = opt_cur[static_cast<std::size_t>(c - t.c0) + 1];
      std::int32_t o = a;
      if (a != b) {
        std::int64_t sum = 0, best = 0;
        for (std::int32_t k = a + 1; k <= b; ++k) {
          sum += delta[static_cast<std::size_t>(k - 1 - t.kmin)];
          if (sum > best) {
            best = sum;
            o = k;
          }
        }
      }
      opt_cur[static_cast<std::size_t>(c - t.c0)] = o;

      // Cell (r-1, c): interesting iff opt(r-1,c) = opt(r-1,c+1) = opt(r,c)
      // differ from opt(r,c+1) (Lemma 3.9).
      const bool interesting =
          a == opt_prev[static_cast<std::size_t>(c - t.c0) + 1] && a == o &&
          a != b;
      if (interesting) out.interesting.push_back(Point{r - 1, c});

      // Fate of the point in this cell, if any: PC = PC,e with
      // e = opt(r, c+1) unless the cell is interesting (Lemmas 3.7–3.10).
      if (arc == c && arx != kNone && !interesting && arx == b) {
        out.surviving.push_back(Point{r - 1, c});
      }
    }
    opt_prev.assign(opt_cur.begin(), opt_cur.end());
  }
  return out;
}

Perm multiway_combine_seq(const ColoredPointSet& s, std::int64_t box_g,
                          MultiwayStats* stats) {
  MONGE_CHECK_MSG(s.is_full_union(),
                  "multiway combine requires a full colored union");
  const std::int64_t n = s.n();
  const std::int64_t g = std::clamp<std::int64_t>(box_g, 1, n);
  const std::int64_t nb = ceil_div(n, g);

  // Grid lines. Vertical line J sits at column min(J*g, n); similarly for
  // horizontal lines.
  std::vector<LineData> vlines, hlines;
  for (std::int64_t j = 0; j <= nb; ++j) {
    vlines.push_back(sweep_vertical_line(s, std::min(j * g, n), g));
  }
  for (std::int64_t i = 0; i <= nb; ++i) {
    hlines.push_back(sweep_horizontal_line(s, std::min(i * g, n)));
  }
  if (stats) stats->lines = 2 * (nb + 1);

  // Corner opts: corner(I, J) = opt(min(I*g,n), min(J*g,n)).
  const auto corner = [&](std::int64_t i, std::int64_t j) {
    return vlines[static_cast<std::size_t>(j)].opt_at(std::min(i * g, n));
  };

  Perm out(n, n);
  std::int64_t interesting_total = 0, crossed_total = 0;
  const auto add_point = [&](const Point& p) {
    MONGE_CHECK_MSG(out.row_empty(p.row), "duplicate output row " << p.row);
    out.set(p.row, p.col);
  };

  // Crossed boxes get the §3.3 treatment; points in uncrossed boxes are
  // filtered by the box's uniform opt value.
  std::vector<std::vector<std::int32_t>> box_state(
      static_cast<std::size_t>(nb),
      std::vector<std::int32_t>(static_cast<std::size_t>(nb)));
  for (std::int64_t bi = 0; bi < nb; ++bi) {
    for (std::int64_t bj = 0; bj < nb; ++bj) {
      const std::int32_t c00 = corner(bi, bj), c01 = corner(bi, bj + 1),
                         c10 = corner(bi + 1, bj), c11 = corner(bi + 1, bj + 1);
      if (c00 == c01 && c00 == c10 && c00 == c11) {
        box_state[static_cast<std::size_t>(bi)][static_cast<std::size_t>(bj)] =
            c00;  // uniform value
        continue;
      }
      box_state[static_cast<std::size_t>(bi)][static_cast<std::size_t>(bj)] =
          -1;  // crossed
      ++crossed_total;

      BoxTask task;
      task.r0 = bi * g;
      task.r1 = std::min((bi + 1) * g, n);
      task.c0 = bj * g;
      task.c1 = std::min((bj + 1) * g, n);
      task.kmin = std::min(std::min(c00, c01), std::min(c10, c11));
      task.kmax = std::max(std::max(c00, c01), std::max(c10, c11));
      const LineData& top = hlines[static_cast<std::size_t>(bi)];
      const LineData& right = vlines[static_cast<std::size_t>(bj) + 1];
      for (std::int64_t c = task.c0; c <= task.c1; ++c) {
        task.top_opt.push_back(top.opt_at(c));
      }
      for (std::int64_t r = task.r0; r <= task.r1; ++r) {
        task.right_opt.push_back(right.opt_at(r));
      }
      const auto& anchors =
          right.grid_anchors[static_cast<std::size_t>(task.r0 / g)];
      for (std::int32_t k = task.kmin; k < task.kmax; ++k) {
        task.anchor.push_back(anchors[static_cast<std::size_t>(k)]);
      }
      for (const auto& p : s.points()) {
        if (p.color < task.kmin || p.color > task.kmax) continue;
        if (p.row >= task.r0 && p.row < task.r1) task.row_points.push_back(p);
        if (p.col >= task.c0 && p.col < task.c1) task.col_points.push_back(p);
      }

      const BoxResult res = solve_box(task);
      interesting_total += static_cast<std::int64_t>(res.interesting.size());
      for (const Point& p : res.interesting) add_point(p);
      for (const Point& p : res.surviving) add_point(p);
    }
  }

  for (const auto& p : s.points()) {
    const std::int64_t bi = p.row / g, bj = p.col / g;
    const std::int32_t state =
        box_state[static_cast<std::size_t>(bi)][static_cast<std::size_t>(bj)];
    if (state >= 0 && p.color == state) add_point(Point{p.row, p.col});
  }

  if (stats) {
    stats->crossed_boxes = crossed_total;
    stats->interesting_points = interesting_total;
  }
  MONGE_CHECK_MSG(out.is_full_permutation(),
                  "multiway combine did not produce a permutation");
  return out;
}

}  // namespace monge
