#include "monge/delta.h"

#include <algorithm>

#include "util/check.h"

namespace monge {

ColoredPointSet::ColoredPointSet(std::int64_t n, std::int32_t num_colors,
                                 std::vector<ColoredPoint> pts)
    : n_(n), num_colors_(num_colors), pts_(std::move(pts)) {
  for (const auto& p : pts_) {
    MONGE_CHECK(p.row >= 0 && p.row < n_ && p.col >= 0 && p.col < n_);
    MONGE_CHECK(p.color >= 0 && p.color < num_colors_);
  }
}

ColoredPointSet ColoredPointSet::from_subperms(const std::vector<Perm>& subs) {
  MONGE_CHECK(!subs.empty());
  const std::int64_t n = subs[0].rows();
  std::vector<ColoredPoint> pts;
  for (std::size_t x = 0; x < subs.size(); ++x) {
    MONGE_CHECK(subs[x].rows() == n && subs[x].cols() == n);
    for (const Point& p : subs[x].points()) {
      pts.push_back(ColoredPoint{p.row, p.col, static_cast<std::int32_t>(x)});
    }
  }
  return ColoredPointSet(n, static_cast<std::int32_t>(subs.size()),
                         std::move(pts));
}

bool ColoredPointSet::is_full_union() const {
  if (static_cast<std::int64_t>(pts_.size()) != n_) return false;
  std::vector<bool> row_seen(static_cast<std::size_t>(n_), false);
  std::vector<bool> col_seen(static_cast<std::size_t>(n_), false);
  for (const auto& p : pts_) {
    if (row_seen[static_cast<std::size_t>(p.row)] ||
        col_seen[static_cast<std::size_t>(p.col)]) {
      return false;
    }
    row_seen[static_cast<std::size_t>(p.row)] = true;
    col_seen[static_cast<std::size_t>(p.col)] = true;
  }
  return true;
}

std::int64_t ColoredPointSet::A(std::int32_t x, std::int64_t i,
                                std::int64_t j) const {
  std::int64_t k = 0;
  for (const auto& p : pts_) {
    k += (p.color == x && p.row >= i && p.col < j);
  }
  return k;
}

std::int64_t ColoredPointSet::C(std::int32_t x, std::int64_t j) const {
  return A(x, 0, j);
}

std::int64_t ColoredPointSet::R(std::int32_t x, std::int64_t i) const {
  return A(x, i, n_);
}

std::int64_t ColoredPointSet::F(std::int32_t q, std::int64_t i,
                                std::int64_t j) const {
  std::int64_t v = A(q, i, j);
  for (std::int32_t x = 0; x < q; ++x) v += R(x, i);
  for (std::int32_t x = q + 1; x < num_colors_; ++x) v += C(x, j);
  return v;
}

std::int64_t ColoredPointSet::delta(std::int32_t q, std::int32_t r,
                                    std::int64_t i, std::int64_t j) const {
  MONGE_CHECK(q < r);
  return F(q, i, j) - F(r, i, j);
}

std::int32_t ColoredPointSet::opt(std::int64_t i, std::int64_t j) const {
  std::int32_t best = 0;
  std::int64_t best_v = F(0, i, j);
  for (std::int32_t q = 1; q < num_colors_; ++q) {
    const std::int64_t v = F(q, i, j);
    if (v < best_v) {
      best_v = v;
      best = q;
    }
  }
  return best;
}

Perm ColoredPointSet::color_slice(std::int32_t x) const {
  Perm p(n_, n_);
  for (const auto& pt : pts_) {
    if (pt.color == x) p.set(pt.row, pt.col);
  }
  return p;
}

Perm combine_opt_table(const ColoredPointSet& s) {
  MONGE_CHECK_MSG(s.is_full_union(),
                  "combine requires the colored union to be a permutation");
  const std::int64_t n = s.n();
  // Precompute the opt table once (the per-query brute force would be
  // O(n^3 * H) otherwise).
  std::vector<std::int32_t> opt(static_cast<std::size_t>((n + 1) * (n + 1)));
  for (std::int64_t i = 0; i <= n; ++i) {
    for (std::int64_t j = 0; j <= n; ++j) {
      opt[static_cast<std::size_t>(i * (n + 1) + j)] = s.opt(i, j);
    }
  }
  const auto at = [&](std::int64_t i, std::int64_t j) {
    return opt[static_cast<std::size_t>(i * (n + 1) + j)];
  };

  // color_of[r][c] lookup for Lemma 3.10 cells.
  std::vector<std::int32_t> cell_color(static_cast<std::size_t>(n), kNone);
  std::vector<std::int32_t> cell_col(static_cast<std::size_t>(n), kNone);
  for (const auto& p : s.points()) {
    cell_color[static_cast<std::size_t>(p.row)] = p.color;
    cell_col[static_cast<std::size_t>(p.row)] = static_cast<std::int32_t>(p.col);
  }

  Perm out(n, n);
  for (std::int64_t r = 0; r < n; ++r) {
    for (std::int64_t c = 0; c < n; ++c) {
      const std::int32_t a = at(r, c), b = at(r, c + 1), d = at(r + 1, c),
                         e = at(r + 1, c + 1);
      if (a == b && a == d && a != e) {
        // Lemma 3.9: interesting point, PC(r,c) = 1.
        MONGE_CHECK(out.row_empty(r));
        out.set(r, c);
      } else {
        // Lemmas 3.7/3.8/3.10: in every other corner pattern the proofs give
        // PΣ_C = F_e on all four corners with e = opt(r+1, c+1), hence
        // PC(r,c) = PC,e(r,c). (When all corners agree this is Lemma 3.10.)
        if (cell_col[static_cast<std::size_t>(r)] == c &&
            cell_color[static_cast<std::size_t>(r)] == e) {
          MONGE_CHECK(out.row_empty(r));
          out.set(r, c);
        }
      }
    }
  }
  MONGE_CHECK_MSG(out.is_full_permutation(),
                  "combine did not produce a permutation");
  return out;
}

}  // namespace monge
