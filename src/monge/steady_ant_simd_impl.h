// Internal: the blocked steady-ant combine shared by every SIMD kernel.
// Included only by the steady_ant_simd*.cpp translation units — each
// instantiates combine_blocked<Ops> with its ISA's block primitives, so
// the walk's control flow is written exactly once.
#pragma once

#include <cstdint>
#include <span>

// Hot-loop invariants: MONGE_DCHECK normally, compiled out entirely when
// the including TU defines MONGE_STEADY_ANT_SIMD_LEAN. The -mavx2 TU must
// stay lean: any shared inline symbol it emits (check_failed, the
// ostringstream machinery, std::fill) would be an AVX2-encoded comdat the
// linker may select program-wide — reachable WITHOUT the runtime feature
// check, i.e. a latent SIGILL on pre-AVX2 hosts. The scalar/SSE2/NEON
// instantiations keep full debug checking, and the differential tests pin
// the lean path against them bit-for-bit.
#if defined(MONGE_STEADY_ANT_SIMD_LEAN)
#define MONGE_SA_DCHECK(expr) \
  do {                        \
  } while (0)
#define MONGE_SA_DEBUG_VERIFY 0
#else
#include <algorithm>

#include "monge/permutation.h"
#include "util/check.h"
#define MONGE_SA_DCHECK(expr) MONGE_DCHECK(expr)
#ifndef NDEBUG
#define MONGE_SA_DEBUG_VERIFY 1
#else
#define MONGE_SA_DEBUG_VERIFY 0
#endif
#endif

namespace monge::detail {

// Per-ISA kernels, defined in their own translation units (the AVX2 one is
// compiled with -mavx2, so its symbols must only be reached after runtime
// feature detection). When a path is compiled out, its *_compiled() stub
// returns false and the kernel stub throws.
bool steady_ant_avx2_compiled();
void steady_ant_packed_avx2(std::span<const std::int32_t> row_pk,
                            std::span<std::int32_t> col_pk,
                            std::span<std::int32_t> t,
                            std::span<std::int32_t> out);

// The Ops contract each ISA provides:
//   static constexpr std::int64_t kWidth;
//       block width in 32-bit lanes (a power of two, <= 32).
//   static std::uint32_t step_mask(const std::int32_t* rows,
//                                  std::int32_t thr);
//       the Lemma 3.4 row steps for kWidth packed rows at column boundary
//       j + 1, with thr = 2 * j + 1: bit b is set iff
//       (rows[b] > thr) XOR (rows[b] & 1) — i.e. iff descending past that
//       row decrements delta.
//   static void resolve_block(const std::int32_t* rows, std::int32_t r0,
//                             const std::int32_t* t, std::int32_t* out);
//       the Lemma 3.7–3.10 resolution for rows [r0, r0 + kWidth) as a
//       mask-select: lane b writes c = rows[b] >> 1 into out[b] iff the
//       point's color equals e = [r0 + b >= t[c + 1]], else keeps out[b].
//
// Why the mask-select needs no "interesting cell" test: an interesting
// cell (r, c) has r == t[c+1] (so e = 1) and was already written as
// out[r] = c by the walk; rewriting the same value when the color is 1 is
// idempotent, and rows whose point fails the color test keep the walk's
// value untouched. This is exactly the scalar pass's final state.
// monge-lint: hot
template <typename Ops>
void combine_blocked(std::span<const std::int32_t> row_pk,
                     std::span<std::int32_t> col_pk,
                     std::span<std::int32_t> t,
                     std::span<std::int32_t> out) {
  constexpr std::int64_t W = Ops::kWidth;
  static_assert(W >= 2 && W <= 32 && (W & (W - 1)) == 0);
  const auto n = static_cast<std::int64_t>(row_pk.size());

  // Column packs: same scalar scatter as the reference walk (data-dependent
  // store addresses; gather/scatter-free ISAs cannot improve on it).
  for (std::int64_t r = 0; r < n; ++r) {
    const std::int32_t pk = row_pk[static_cast<std::size_t>(r)];
    const std::int32_t c = pk >> 1;
    MONGE_SA_DCHECK(c >= 0 && c < n);
    col_pk[static_cast<std::size_t>(c)] =
        static_cast<std::int32_t>((r << 1) | (pk & 1));
  }
#if MONGE_SA_DEBUG_VERIFY
  std::fill(out.begin(), out.end(), kNone);
#endif

  // The Lemma 3.3/3.4 walk with a blocked descent. delta is 0 or 1 at
  // every point (each column adds at most one and the descent drains it
  // to zero), so descending means: find the nearest row below i whose
  // step bit is set. Instead of stepping one row per iteration, grab the
  // step bits of the W rows below i in one vector compare — hop the whole
  // block when the mask is empty, land on its top set bit otherwise.
  std::int64_t i = n;
  std::int64_t delta = 0;
  t[0] = static_cast<std::int32_t>(n);
  for (std::int64_t j = 0; j < n; ++j) {
    const std::int32_t pk = col_pk[static_cast<std::size_t>(j)];
    const std::int32_t pr = pk >> 1;
    delta += (pk & 1) == 0 ? (pr >= i ? 1 : 0) : (pr < i ? 1 : 0);
    const std::int64_t prev = i;
    const auto thr = static_cast<std::int32_t>(2 * j + 1);
    while (delta > 0) {
      if (i >= W) {
        const std::uint32_t mask =
            Ops::step_mask(row_pk.data() + (i - W), thr);
        if (mask == 0) {
          i -= W;
          continue;
        }
        // Bit b of mask is row i - W + b; land on the top set bit — the
        // row where the scalar loop pauses. (__builtin_clz, not
        // std::countl_zero: the std template is a weak comdat a LEAN TU
        // must not emit, see above, and the builtin always inlines; the
        // mask is nonzero here, satisfying its precondition.)
        i = i - W + (31 - __builtin_clz(mask));
        --delta;
      } else {
        MONGE_SA_DCHECK(i > 0);
        --i;
        const std::int32_t qk = row_pk[static_cast<std::size_t>(i)];
        delta -= ((qk > thr) != ((qk & 1) != 0)) ? 1 : 0;
      }
    }
    t[static_cast<std::size_t>(j) + 1] = static_cast<std::int32_t>(i);
    if (i < prev) {
      // Interesting cell (Lemma 3.9): t drops strictly at column j.
      out[static_cast<std::size_t>(i)] = static_cast<std::int32_t>(j);
    }
  }

  // Resolution pass as a mask-select over row_pk (see the Ops contract
  // comment above for why this matches the scalar pass bit-for-bit).
  std::int64_t r = 0;
  for (; r + W <= n; r += W) {
    Ops::resolve_block(row_pk.data() + r, static_cast<std::int32_t>(r),
                       t.data(), out.data() + r);
  }
  for (; r < n; ++r) {
    const std::int32_t pk = row_pk[static_cast<std::size_t>(r)];
    const std::int32_t c = pk >> 1;
    const bool e = r >= t[static_cast<std::size_t>(c) + 1];
    if (((pk & 1) != 0) == e) out[static_cast<std::size_t>(r)] = c;
  }
#if MONGE_SA_DEBUG_VERIFY
  for (std::int64_t rr = 0; rr < n; ++rr) {
    MONGE_SA_DCHECK(out[static_cast<std::size_t>(rr)] != kNone);
  }
#endif
}

}  // namespace monge::detail
