// The two-subproblem combine (H = 2 specialisation of §3) in O(n) time,
// classically known as the "steady ant" step of Tiskin's sequential
// unit-Monge multiplication.
//
// Input: a full n×n permutation that is the disjoint union of the two
// expanded subproblem results PC,lo (color 0) and PC,hi (color 1); every row
// and column holds exactly one point. Output: PC with
// PΣ_C(i,j) = min(F_0(i,j), F_1(i,j)) (Lemma 3.2 with H = 2).
//
// The implementation walks the monotone demarcation line t(j) = max{ i :
// δ_{0,1}(i,j) <= 0 } from (n,0) to (t(n),n), using the 0/1 increment rules
// proved in Lemmas 3.3/3.4, and reconstructs PC via the corner
// characterisation of Lemmas 3.7–3.10.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "monge/permutation.h"

namespace monge {

/// Raw variant used in hot recursions: `union_row_to_col[r]` is the column
/// of row r's point, `row_color[r]` in {0,1} its owning subproblem. The
/// union must be a full permutation (checked only in debug builds).
std::vector<std::int32_t> steady_ant_combine_raw(
    std::span<const std::int32_t> union_row_to_col,
    std::span<const std::uint8_t> row_color);

/// The demarcation thresholds (length n+1):
/// t[j] = max{ i in [0,n] : δ_{0,1}(i,j) <= 0 }, i.e. opt(i,j) = 0 iff
/// i <= t[j]. Exposed separately for tests.
std::vector<std::int64_t> steady_ant_thresholds(
    std::span<const std::int32_t> union_row_to_col,
    std::span<const std::uint8_t> row_color);

/// Validating wrapper over steady_ant_combine_raw.
Perm steady_ant_combine(const Perm& union_perm,
                        const std::vector<std::uint8_t>& row_color);

/// The packed scalar combine — the SeaweedEngine's hot-loop contract and
/// the differential oracle for the SIMD paths in steady_ant_simd.h.
///
/// Points are packed as (coord << 1) | color in one int32: `row_pk[r]`
/// holds the column+color of row r's point. `col_pk` (size n) and `t`
/// (size n + 1) are caller-provided scratch, overwritten with the
/// column->row+color packs and the demarcation thresholds; `out[r]`
/// receives the combined product's column of row r. This is the branchy
/// reference walk (data-dependent descent, per-row resolution branch);
/// every accelerated path must reproduce its `out`, `t` and `col_pk`
/// bit-for-bit.
void steady_ant_packed_scalar(std::span<const std::int32_t> row_pk,
                              std::span<std::int32_t> col_pk,
                              std::span<std::int32_t> t,
                              std::span<std::int32_t> out);

}  // namespace monge
