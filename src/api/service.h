// monge::SolverService — the asynchronous, deduplicating serving tier.
//
// Solver (api/solver.h) is deliberately synchronous and single-tenant: one
// engine arena, one cluster, one request at a time. SolverService is the
// layer the ROADMAP's "traffic from millions of users" north star needs on
// top of it: submit(Request) -> std::future<Result> over a pool of N
// workers, EACH owning a private Solver (per-worker engines, so arenas
// never contend and MpcSim clusters never interleave requests), with
//
//   * bounded admission — a request queue of configurable depth. When it
//     is full, submit() either blocks until a slot frees
//     (AdmissionPolicy::kBlock) or refuses immediately
//     (AdmissionPolicy::kReject: submit throws OverloadedError, try_submit
//     returns a SolveReport with SolveStatus::kOverloaded). Coalesced and
//     cache-served requests never consume a queue slot.
//
//   * request deduplication — every request is keyed by a 128-bit digest
//     of its payload (request_digest below). Concurrent identical requests
//     coalesce onto ONE underlying solve: the first submit enqueues a job,
//     later identical submits just attach a waiter to the in-flight entry
//     and are fulfilled from the same computation. Identical permutations
//     or sequences submitted by many users are solved exactly once — the
//     request-level analogue of the semi-local "index once, query many"
//     direction (Gawrychowski–Mozes–Weimann, arXiv 1307.2313).
//
//   * a result cache — completed results enter an LRU-bounded,
//     digest-keyed cache (cache_capacity entries per request type); a
//     later identical request is fulfilled immediately with a copy, bit-
//     identical to a fresh solve (pinned in tests/test_service.cpp).
//     try_submit marks such answers report.cached. Degraded results
//     (MpcSim fallback) are NOT cached: their shape (rounds, reports)
//     differs from what a healthy backend returns.
//
// submit() and try_submit() differ exactly like Solver::solve() and
// Solver::try_solve(): a submit() future rethrows the monge::Error
// taxonomy from get(), while a try_submit() future always resolves to a
// TrySolveResult whose SolveReport classifies the outcome — including the
// PR 6 chaos path, where an unrecoverable MpcSim fault degrades the
// request to the Sequential backend on the worker and the report says so.
// Because the two flavors have different failure semantics (throw vs
// degrade), they coalesce only with in-flight requests of the SAME flavor;
// both share the result cache.
//
// Lifecycle: the destructor stops admitting, wakes blocked submitters
// (they observe the shutdown and refuse), DRAINS every already-admitted
// job, and joins the workers — an admitted future is always fulfilled
// (the ThreadPool shutdown-drain contract, util/thread_pool.h).
//
// Thread safety: all public members are safe to call from any number of
// threads concurrently, except the destructor, which must not race other
// calls (standard object lifetime rules).
#pragma once

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <list>
#include <memory>
#include <mutex>
#include <type_traits>
#include <unordered_map>
#include <utility>
#include <vector>

#include "api/solver.h"
#include "util/thread_pool.h"

namespace monge {

/// 128-bit digest of a request payload — the dedup/cache key. Collisions
/// between distinct payloads are treated as impossible (2^-64 birthday
/// regime at any plausible cache size); equal payloads always digest
/// equally, so a hit is a semantic hit.
struct RequestDigest {
  std::uint64_t lo = 0;
  std::uint64_t hi = 0;

  friend bool operator==(const RequestDigest&, const RequestDigest&) = default;
};

/// Digest of a multiply request: kind, shapes and both row->col arrays,
/// length-prefixed so concatenation ambiguities cannot collide.
RequestDigest request_digest(const MultiplyRequest& req);
/// Digest of a LIS request: sequence, want_kernel flag and windows.
RequestDigest request_digest(const LisRequest& req);
/// Digest of an LCS request: both sequences, length-prefixed.
RequestDigest request_digest(const LcsRequest& req);
/// Digest of an index build: kind plus both sequences. Identical builds
/// digest equally, so the service dedups/caches them onto ONE shared
/// index — the handle lifecycle the query tier documents.
RequestDigest request_digest(const BuildIndexRequest& req);
/// Digest of a window-LIS query batch: the index's process-unique id()
/// (never reused, so a cached answer can never alias a different index)
/// plus the windows.
RequestDigest request_digest(const WindowLisQuery& req);
/// Digest of a substring-LCS query batch: index id() plus the substrings.
RequestDigest request_digest(const SubstringLcsQuery& req);

/// What submit() does when the bounded queue is at queue_depth.
enum class AdmissionPolicy {
  /// Block the submitting thread until a slot frees (backpressure).
  kBlock = 0,
  /// Refuse immediately: submit() throws OverloadedError, try_submit()
  /// returns SolveStatus::kOverloaded (load shedding).
  kReject = 1,
};

/// Construction-time configuration of a SolverService. Validated by the
/// constructor; invalid values throw monge::InvalidRequestError.
struct ServiceOptions {
  /// Per-worker Solver configuration (backend, engine knobs, MPC
  /// provisioning, chaos plans). Every worker constructs its own Solver
  /// from this, so engine arenas and clusters are never shared.
  SolverOptions solver{};
  /// Worker count; 0 picks hardware_concurrency (at least 1).
  unsigned workers = 0;
  /// Bounded request-queue depth (admitted-but-unstarted jobs). Must be
  /// >= 1. Coalesced/cached requests never occupy a slot.
  std::size_t queue_depth = 256;
  /// Full-queue behavior of submit()/try_submit().
  AdmissionPolicy admission = AdmissionPolicy::kBlock;
  /// Result-cache capacity in entries PER request type (multiply/LIS/LCS
  /// results are cached in separate LRU maps). 0 disables caching;
  /// in-flight dedup still applies.
  std::size_t cache_capacity = 1024;
  /// Test/telemetry seam: when set, every worker calls this immediately
  /// before each underlying solve (on the worker thread). Must not throw.
  /// The dedup and admission tests use it to hold workers at a barrier.
  std::function<void()> solve_hook;
};

/// Monotonic counters of one SolverService, returned by stats() as a
/// consistent snapshot.
struct ServiceStats {
  std::int64_t submitted = 0;    ///< submit/try_submit calls accepted into
                                 ///< the service (any outcome).
  std::int64_t admitted = 0;     ///< jobs enqueued for a worker.
  std::int64_t rejected = 0;     ///< admissions refused (queue full or
                                 ///< shutdown).
  std::int64_t coalesced = 0;    ///< requests attached to an in-flight
                                 ///< identical computation.
  std::int64_t cache_hits = 0;   ///< requests served from the result cache.
  std::int64_t solves = 0;       ///< underlying Solver solve/try_solve
                                 ///< calls actually executed.
  std::int64_t solve_errors = 0; ///< solves that ended in an exception
                                 ///< (submit flavor) or a non-ok report.

  friend bool operator==(const ServiceStats&, const ServiceStats&) = default;
};

/// Outcome of try_submit: an admission report plus, when admitted, a
/// future resolving to the request's TrySolveResult.
template <typename Result>
struct Submission {
  /// Valid iff admitted(): resolves to value + SolveReport, never throws
  /// from get() for taxonomy errors (kInternalError covers the rest).
  std::future<TrySolveResult<Result>> future;
  /// Admission outcome: kOk (queued, coalesced, or cache-served) or
  /// kOverloaded (queue full under kReject, or shutting down — `future`
  /// is invalid and the request was not accepted).
  SolveReport admission;

  bool admitted() const { return admission.ok(); }
};

class SolverService {
 public:
  /// Validates the options (InvalidRequestError on bad knobs; the nested
  /// SolverOptions are validated by each worker's Solver constructor, so
  /// invalid solver knobs also throw here, from the first worker), then
  /// starts the workers.
  explicit SolverService(ServiceOptions options = {});

  /// Stops admitting, wakes blocked submitters, drains every admitted job
  /// and joins the workers. Every future returned by submit/try_submit is
  /// fulfilled before the destructor returns.
  ~SolverService();

  SolverService(const SolverService&) = delete;
  SolverService& operator=(const SolverService&) = delete;

  /// Asynchronous Solver::solve(): the future resolves to the result, or
  /// rethrows the monge::Error taxonomy from get(). Served from the
  /// result cache or an in-flight identical computation when possible;
  /// otherwise admitted under the configured policy — throws
  /// OverloadedError when refused (kReject and full, or shutting down).
  std::future<MultiplyResult> submit(MultiplyRequest req);
  /// @copydoc submit(MultiplyRequest)
  std::future<LisResult> submit(LisRequest req);
  /// @copydoc submit(MultiplyRequest)
  std::future<LcsResult> submit(LcsRequest req);
  /// @copydoc submit(MultiplyRequest)
  std::future<BuildIndexResult> submit(BuildIndexRequest req);
  /// @copydoc submit(MultiplyRequest)
  std::future<WindowLisResult> submit(WindowLisQuery req);
  /// @copydoc submit(MultiplyRequest)
  std::future<SubstringLcsResult> submit(SubstringLcsQuery req);

  /// Asynchronous Solver::try_solve(): never throws for taxonomy errors.
  /// Admission refusals come back synchronously in Submission::admission
  /// (SolveStatus::kOverloaded); admitted requests resolve to the worker's
  /// TrySolveResult — including MpcSim degradation, exactly as
  /// Solver::try_solve reports it. Cache hits resolve immediately with
  /// report.cached = true.
  Submission<MultiplyResult> try_submit(MultiplyRequest req);
  /// @copydoc try_submit(MultiplyRequest)
  Submission<LisResult> try_submit(LisRequest req);
  /// @copydoc try_submit(MultiplyRequest)
  Submission<LcsResult> try_submit(LcsRequest req);
  /// @copydoc try_submit(MultiplyRequest)
  Submission<BuildIndexResult> try_submit(BuildIndexRequest req);
  /// @copydoc try_submit(MultiplyRequest)
  Submission<WindowLisResult> try_submit(WindowLisQuery req);
  /// @copydoc try_submit(MultiplyRequest)
  Submission<SubstringLcsResult> try_submit(SubstringLcsQuery req);

  /// A consistent snapshot of the service counters.
  ServiceStats stats() const;

  /// The options, exactly as validated at construction.
  const ServiceOptions& options() const { return options_; }

  /// Number of running workers (resolved from options().workers).
  unsigned workers() const { return pool_->thread_count(); }

 private:
  /// One in-flight computation: the promises of every coalesced waiter of
  /// one flavor. Fulfilled (and erased) by the worker that runs the job.
  template <typename Result>
  struct Flight {
    std::vector<std::promise<Result>> solve_waiters;
    std::vector<std::promise<TrySolveResult<Result>>> try_waiters;
  };

  struct DigestHash {
    std::size_t operator()(const RequestDigest& d) const {
      return static_cast<std::size_t>(d.lo ^ (d.hi * 0x9e3779b97f4a7c15ULL));
    }
  };

  /// Per-request-type state: the in-flight table (keyed by digest with the
  /// submit/try flavor mixed in — the flavors have different failure
  /// semantics, so they never coalesce with each other) and the LRU result
  /// cache (keyed by the pure digest — both flavors share values).
  template <typename Request, typename Result>
  struct Lane {
    using FlightPtr = std::shared_ptr<Flight<Result>>;
    std::unordered_map<RequestDigest, FlightPtr, DigestHash> in_flight;
    std::list<std::pair<RequestDigest, Result>> lru;  // front = most recent
    std::unordered_map<
        RequestDigest,
        typename std::list<std::pair<RequestDigest, Result>>::iterator,
        DigestHash>
        cache;
  };

  template <typename Request, typename Result>
  Lane<Request, Result>& lane();

  /// Shared submit machinery; IsTry selects the flavor. Defined in
  /// service.cpp (only instantiated there).
  template <bool IsTry, typename Request, typename Result>
  std::conditional_t<IsTry, Submission<Result>, std::future<Result>>
  submit_impl(Request req);

  /// Runs one admitted job on a worker's Solver and fulfills its waiters.
  template <bool IsTry, typename Request, typename Result>
  void run_job(Solver& solver, const Request& req, RequestDigest key,
               RequestDigest flight_key);

  template <typename Request, typename Result>
  const Result* cache_find_locked(RequestDigest key);
  template <typename Request, typename Result>
  void cache_insert_locked(RequestDigest key, const Result& value);

  void worker_loop();

  ServiceOptions options_;
  mutable std::mutex mu_;
  std::condition_variable queue_cv_;  ///< workers: a job or shutdown.
  std::condition_variable space_cv_;  ///< blocked submitters: a free slot.
  std::deque<std::function<void(Solver&)>> queue_;
  bool shutdown_ = false;
  ServiceStats stats_;
  Lane<MultiplyRequest, MultiplyResult> multiply_lane_;
  Lane<LisRequest, LisResult> lis_lane_;
  Lane<LcsRequest, LcsResult> lcs_lane_;
  /// The query tier's lanes: cached BuildIndexResults keep their handles
  /// (and through them the shared indexes) alive while hot, so identical
  /// builds from many clients resolve to ONE index; query batches cache
  /// like any other result, keyed on (index id, windows).
  Lane<BuildIndexRequest, BuildIndexResult> build_index_lane_;
  Lane<WindowLisQuery, WindowLisResult> window_lis_lane_;
  Lane<SubstringLcsQuery, SubstringLcsResult> substring_lcs_lane_;
  /// Last member: its destructor joins the worker loops, which may touch
  /// every field above while draining.
  std::unique_ptr<ThreadPool> pool_;
};

}  // namespace monge
