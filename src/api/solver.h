// monge::Solver — the unified, backend-pluggable request API.
//
// The paper's deliverables are implemented as free functions spread over
// src/monge (engine, subunit), src/lis, src/lcs and src/core (the MPC
// algorithms), each with its own engine/pool/options plumbing. Solver is
// the service-style facade over all of them: construct one from
// SolverOptions, then feed it typed requests (api/request.h) via solve()
// and solve_batch(). The free functions stay public — the facade only
// delegates, so every Solver result is bit-identical to the corresponding
// direct call by construction (pinned by tests/test_solver.cpp).
//
// Routing table (request × backend → delegate):
//
// | Request            | kSequential                    | kMpcSim                          | kReference                  |
// | ------------------ | ------------------------------ | -------------------------------- | --------------------------- |
// | Multiply kFull     | SeaweedEngine::multiply        | core::mpc_unit_monge_multiply    | seaweed_multiply_reference_raw |
// | Multiply kSubunit  | subunit_multiply               | core::mpc_subunit_multiply       | subunit_multiply_padded     |
// | Multiply batch     | multiply_batch_into /          | core::mpc_*_multiply_batch       | per-pair reference calls    |
// |                    | subunit_multiply_batch_into    | (rounds shared per level)        |                             |
// | Lis length-only    | lis::lis_length (patience)     | lis::mpc_lis                     | lis::lis_length_dp          |
// | Lis kernel         | lis::lis_kernel                | lis::mpc_lis                     | lis::lis_kernel_reference   |
// | Lis windows        | kernel + kernel_window_lis_batch | mpc_lis kernel + same          | lis::lis_window_batch       |
// | Lis batch (kernel) | lis::lis_kernel_batch          | per-request mpc_lis              | per-request reference       |
// | Lcs                | lcs::lcs_hs                    | lcs::mpc_lcs                     | lcs::lcs_dp                 |
// | BuildIndex         | SemiLocalIndex over lis_kernel | SemiLocalIndex over mpc_lis      | SemiLocalIndex over         |
// |                    |                                | kernel (rounds reported)         | lis_kernel_reference        |
// | WindowLis /        | pure index lookups — backend-independent by construction (the index already holds the       |
// | SubstringLcs query | semi-local distribution; no engine or cluster work on any backend)                          |
//
// Batching contract: a Sequential solve_batch costs exactly one batched
// engine call per request kind — MultiplyRequest batches group into at
// most one multiply_batch_into and one subunit_multiply_batch_into call
// (one arena sizing each, striped across the engine pool when one is
// configured), and LisRequest batches solve all kernels through one
// lis_kernel_batch forest pass (one batched engine call per merge level).
// The MpcSim backend routes multiply batches through the *_batch cluster
// entry points, so all pairs of a batch share every round.
//
// LCS match-count guard: every route that would hand a Hunt–Szymanski
// match sequence to the seaweed machinery (the Sequential batch grouping's
// kernels, the MpcSim cluster solve) first checks the match count against
// SolverOptions::lcs_engine_match_limit and falls back to patience sorting
// on the match sequence above it — bit-identical results (lcs_hs IS
// patience over the matches), no engine size-guard throw. The
// single-request Sequential route always uses patience directly, so it is
// immune by construction; single and batch solves therefore agree for
// every match count.
//
// Backend resources: the Solver owns one SeaweedEngine (arena reused
// across requests) and, for the MpcSim backend, one lazily constructed
// mpc::Cluster. The cluster is provisioned on first use — either from the
// explicit SolverOptions::cluster config, or auto-sized per request via
// MpcConfig::fully_scalable(n, mpc_delta, mpc_slack, mpc_strict) — and
// reused while the computed config is unchanged (an auto-provisioned
// request of a different size rebuilds it, exactly reproducing what a
// direct caller constructing a fresh per-problem cluster would see; round
// counts in results are per-request deltas either way).
//
// Error handling: solve() throws the monge::Error taxonomy —
// InvalidRequestError (bad options or request shapes), SpaceLimitError
// (strict-mode budget overruns), FaultError (an injected fault the
// cluster could not recover from), CodecError (corrupt payloads).
// try_solve() never throws on those: it returns the same result plus a
// SolveReport carrying a SolveStatus, the per-request RecoveryStats
// delta, and a human-readable message. When the MpcSim backend fails
// with a fault or space overrun, try_solve degrades the request to the
// Sequential backend and flags it (report.degraded) — callers get an
// answer plus a diagnosis instead of an exception.
//
// Thread compatibility: a Solver instance is NOT thread-safe (it owns one
// engine arena and one cluster). Use one Solver per thread, or serialize
// access externally; distinct Solver instances never share mutable state,
// and results are bit-identical across instances and thread counts.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "api/request.h"
#include "lis/mpc_lis.h"
#include "monge/engine.h"
#include "mpc/cluster.h"

namespace monge {

/// Which implementation family a Solver routes requests to.
enum class SolverBackend {
  /// The arena-backed SeaweedEngine and the sequential LIS/LCS paths.
  kSequential = 0,
  /// The paper's MPC algorithms on the simulated cluster (rounds/space
  /// accounting in the results).
  kMpcSim = 1,
  /// The retained reference oracles (textbook recursion, padded subunit
  /// reduction, depth-first kernel, DP/patience oracles) — for
  /// differential testing; asymptotically slower on some routes.
  kReference = 2,
};

/// @return a stable human-readable name ("sequential", "mpc-sim",
///     "reference") for logging and bench labels.
const char* solver_backend_name(SolverBackend backend);

/// Outcome classification of a try_solve / try_submit call — the ErrorCode
/// taxonomy (util/error.h) plus kOk and a kInternalError catch-all.
enum class SolveStatus {
  kOk = 0,             ///< the request solved (possibly degraded).
  kInvalidRequest = 1, ///< InvalidRequestError or a failed precondition.
  kSpaceLimit = 2,     ///< SpaceLimitError (strict-mode budget overrun).
  kFault = 3,          ///< FaultError (unrecoverable injected fault).
  kCodec = 4,          ///< CodecError (corrupt payload).
  kInternalError = 5,  ///< any other exception — a bug, report it.
  kOverloaded = 6,     ///< OverloadedError (service admission refused).
};

/// @return a stable human-readable name ("ok", "invalid-request",
///     "space-limit", "fault", "codec", "internal-error", "overloaded").
const char* solve_status_name(SolveStatus status);

/// Per-request outcome report returned by try_solve alongside the result.
struct SolveReport {
  /// Final outcome. kOk when `value` is usable (even if degraded).
  SolveStatus status = SolveStatus::kOk;
  /// The backend that produced the result — options().backend normally,
  /// kSequential when the request was degraded.
  SolverBackend backend = SolverBackend::kSequential;
  /// True when the MpcSim backend failed (fault / space overrun) and the
  /// request was re-solved on the Sequential backend.
  bool degraded = false;
  /// True when the value was served from the SolverService result cache
  /// (api/service.h) instead of a fresh solve. Always false from
  /// Solver::try_solve.
  bool cached = false;
  /// Human-readable diagnosis; empty on a clean kOk.
  std::string message;
  /// Recovery activity this request caused on the MpcSim cluster
  /// (checkpoints, re-executed rounds, masked message faults) — a
  /// per-request delta, zeros for non-MpcSim backends.
  mpc::RecoveryStats recovery{};
  /// Representation decisions this request caused on the Solver-owned
  /// engine (dense vs. core-sparse nodes, block outcomes) — a per-request
  /// delta of SeaweedEngine::representation_stats(). Zeros for routes that
  /// never touch the owned engine (patience/DP oracles, the MpcSim
  /// cluster's per-worker engines, index lookups).
  RepresentationStats representation{};

  bool ok() const { return status == SolveStatus::kOk; }
};

/// Result-plus-report pair returned by try_solve. `value` is only
/// meaningful when report.ok().
template <typename Result>
struct TrySolveResult {
  Result value{};
  SolveReport report;

  bool ok() const { return report.ok(); }
};

/// Construction-time configuration of a Solver. Validated by the Solver
/// constructor: invalid values throw monge::InvalidRequestError (never
/// silently clamped). The nested engine options are validated by the
/// SeaweedEngine constructor, which throws std::logic_error.
struct SolverOptions {
  /// Implementation family every request routes to.
  SolverBackend backend = SolverBackend::kSequential;

  /// Knobs of the owned SeaweedEngine (base-case cutoff, parallel grain,
  /// optional borrowed ThreadPool). Validated by the engine constructor.
  SeaweedEngineOptions engine{};

  /// MpcSim backend: explicit cluster config, used when num_machines > 0.
  /// The default (num_machines == 0) auto-provisions
  /// MpcConfig::fully_scalable(n, mpc_delta, mpc_slack, mpc_strict) from
  /// each request's input size n (match count for LCS), reusing the
  /// cluster while the computed config stays the same. The threads,
  /// faults and checkpoint_interval fields carry over into
  /// auto-provisioned clusters, so chaos plans apply either way.
  mpc::MpcConfig cluster{.num_machines = 0};
  /// Auto-provisioning exponent δ: m = n^δ machines. Must be in (0, 1).
  double mpc_delta = 0.5;
  /// Auto-provisioning space slack (the Õ(·) constant). Must be > 0.
  double mpc_slack = 24.0;
  /// Auto-provisioned clusters throw SpaceLimitError on budget overruns.
  bool mpc_strict = true;

  /// Per-call multiply knobs for the MpcSim backend; zero-valued fields
  /// resolve to the paper schedule inside core (identical to
  /// core::paper_profile). Validated: no negative fields.
  core::MpcMultiplyOptions multiply{};
  /// lis::MpcLisOptions::leaf_classes for the MpcSim LIS driver
  /// (0 = number of machines). Must be >= 0.
  std::int64_t lis_leaf_classes = 0;

  /// Largest Hunt–Szymanski match count an LCS solve hands to the seaweed
  /// machinery; groups/requests above it are answered by patience sorting
  /// on the match sequence instead (identical results — lcs_hs IS patience
  /// over the matches). Applies uniformly to the Sequential batch grouping
  /// AND the single-request MpcSim route, which would otherwise throw from
  /// the engine's size guard instead of degrading. Must be in
  /// [1, kSeaweedEngineMaxN] (the default; the engine cannot accept more).
  /// Lower it in tests to exercise the fallback at practical sizes.
  std::int64_t lcs_engine_match_limit = kSeaweedEngineMaxN;
};

class Solver {
 public:
  /// Validates and fixes the options for the Solver's lifetime; throws
  /// monge::InvalidRequestError on invalid backend/MPC knobs (the engine
  /// knobs are validated by the SeaweedEngine constructor, which throws
  /// std::logic_error). Constructs the engine (empty arena); the cluster
  /// is NOT constructed until the first MpcSim-backend request.
  explicit Solver(SolverOptions options = {});

  Solver(const Solver&) = delete;
  Solver& operator=(const Solver&) = delete;

  /// One product PC = PA ⊡ PB (full or subunit). Validates shapes
  /// (b.rows() == a.cols(); kFull additionally requires full
  /// permutations). Bit-identical to the delegate in the routing table.
  MultiplyResult solve(const MultiplyRequest& req);

  /// LIS (strict) of req.seq, plus kernel/window answers when requested.
  LisResult solve(const LisRequest& req);

  /// LCS of req.s and req.t via the Hunt–Szymanski match sequence.
  LcsResult solve(const LcsRequest& req);

  /// Builds a query::SemiLocalIndex once (Sequential: lis_kernel on the
  /// owned engine; Reference: lis_kernel_reference; MpcSim: the
  /// lis::mpc_lis kernel, rounds reported) and returns it as a shared
  /// QueryHandle. All backends produce bit-identical indexes. The handle
  /// is self-owning — no Solver state outlives the call, so handles work
  /// across Solver instances and service workers.
  BuildIndexResult solve(const BuildIndexRequest& req);

  /// Answers req.windows against req.handle's index in O(log² n) each —
  /// no engine work on any backend (the index already holds the semi-local
  /// distribution). Throws InvalidRequestError on an empty handle or a
  /// kSubstringLcs-mode index.
  WindowLisResult solve(const WindowLisQuery& req);

  /// Answers req.substrings against req.handle's kSubstringLcs index.
  /// Throws InvalidRequestError on an empty handle or a kWindowLis-mode
  /// index.
  SubstringLcsResult solve(const SubstringLcsQuery& req);

  /// Batched products, results in request order. Sequential: at most one
  /// batched engine call per request kind (one arena sizing each, striped
  /// across the pool when configured). MpcSim: one *_batch cluster call
  /// per kind, all pairs sharing rounds (the report in every result of a
  /// kind group is that group's shared batch report). Reference: per-pair
  /// reference calls. Bit-identical to per-request solve() on the
  /// Sequential and Reference backends.
  std::vector<MultiplyResult> solve_batch(
      std::span<const MultiplyRequest> reqs);

  /// Batched LIS, results in request order. Sequential: every kernel the
  /// batch needs is built through ONE lis_kernel_batch forest pass (one
  /// batched engine call per merge level); length-only requests route to
  /// patience sorting. MpcSim/Reference: per-request solve().
  std::vector<LisResult> solve_batch(std::span<const LisRequest> reqs);

  /// Batched LCS, results in request order. Sequential: requests are
  /// grouped by (t, s) — the Hunt–Szymanski occurrence table is built once
  /// per distinct t, identical (s, t) pairs collapse onto one subproblem,
  /// and all distinct match-sequence LIS subproblems ride one
  /// lis_kernel_batch forest pass. Bit-identical to per-request solve().
  /// MpcSim/Reference: per-request solve().
  std::vector<LcsResult> solve_batch(std::span<const LcsRequest> reqs);

  /// Non-throwing solve(): classifies any monge::Error into a SolveStatus
  /// and returns it in the report instead of propagating. An MpcSim
  /// fault/space failure is degraded to the Sequential backend
  /// (report.degraded = true, report.message explains); the failed
  /// cluster is torn down so the next MpcSim request starts clean. The
  /// report also carries the per-request RecoveryStats delta, so chaos
  /// runs can audit how much recovery work their answer cost.
  TrySolveResult<MultiplyResult> try_solve(const MultiplyRequest& req);
  /// @copydoc try_solve(const MultiplyRequest&)
  TrySolveResult<LisResult> try_solve(const LisRequest& req);
  /// @copydoc try_solve(const MultiplyRequest&)
  TrySolveResult<LcsResult> try_solve(const LcsRequest& req);
  /// @copydoc try_solve(const MultiplyRequest&)
  TrySolveResult<BuildIndexResult> try_solve(const BuildIndexRequest& req);
  /// @copydoc try_solve(const MultiplyRequest&)
  TrySolveResult<WindowLisResult> try_solve(const WindowLisQuery& req);
  /// @copydoc try_solve(const MultiplyRequest&)
  TrySolveResult<SubstringLcsResult> try_solve(const SubstringLcsQuery& req);

  /// @return the options, exactly as validated at construction.
  const SolverOptions& options() const { return options_; }

  /// The owned engine (arena stats, subunit_batch_calls counters — the
  /// Sequential backend's engine counters). Mutable access is safe only
  /// between solve calls.
  SeaweedEngine& engine() { return engine_; }
  const SeaweedEngine& engine() const { return engine_; }

  /// The lazily constructed cluster of the MpcSim backend, or nullptr if
  /// no MpcSim request ran yet. Exposed for introspection (stats(),
  /// machines(), space_words()); stats accumulate across requests —
  /// results carry per-request round deltas.
  mpc::Cluster* cluster() { return cluster_.get(); }
  const mpc::Cluster* cluster() const { return cluster_.get(); }

 private:
  /// solve() bodies, parameterized on the backend so try_solve can
  /// re-route a failed MpcSim request to kSequential.
  MultiplyResult solve_on(SolverBackend backend, const MultiplyRequest& req);
  LisResult solve_on(SolverBackend backend, const LisRequest& req);
  LcsResult solve_on(SolverBackend backend, const LcsRequest& req);
  BuildIndexResult solve_on(SolverBackend backend,
                            const BuildIndexRequest& req);
  WindowLisResult solve_on(SolverBackend backend, const WindowLisQuery& req);
  SubstringLcsResult solve_on(SolverBackend backend,
                              const SubstringLcsQuery& req);

  /// Shared try_solve machinery: run on options().backend, classify any
  /// escape into a SolveStatus, degrade MpcSim fault/space failures to
  /// the Sequential backend. Defined in solver.cpp (only instantiated
  /// there).
  template <typename Result, typename Request>
  TrySolveResult<Result> try_solve_impl(const Request& req);

  /// Returns the cluster to use for an MpcSim request of input size n,
  /// (re)provisioning if none exists or the auto-computed config changed.
  mpc::Cluster& provisioned_cluster(std::int64_t n);

  /// Resolved lis::MpcLisOptions from the solver options.
  lis::MpcLisOptions mpc_lis_options() const;

  SolverOptions options_;
  SeaweedEngine engine_;
  std::unique_ptr<mpc::Cluster> cluster_;
  mpc::MpcConfig cluster_cfg_{};  ///< config cluster_ was built with.
};

}  // namespace monge
