#include "api/service.h"

#include <string>

#include "util/check.h"
#include "util/error.h"

namespace monge {

// ---------------------------------------------------------------------------
// Request digests.
// ---------------------------------------------------------------------------

namespace {

/// Two independent 64-bit accumulation streams (FNV-1a-style fold followed
/// by the splitmix64 finalizer, with distinct offsets and combining rules)
/// over the request's words. Every variable-length field is preceded by
/// its length and every request by a type tag, so no two distinct payloads
/// serialize to the same word stream.
struct DigestBuilder {
  std::uint64_t lo = 0xcbf29ce484222325ULL;  // FNV-1a offset basis
  std::uint64_t hi = 0x6a09e667f3bcc909ULL;  // frac(sqrt(2))

  static std::uint64_t mix(std::uint64_t z) {  // splitmix64 finalizer
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

  void word(std::uint64_t w) {
    lo = mix((lo ^ w) * 0x100000001b3ULL);  // FNV-1a prime
    hi = mix((hi + w) * 0x9e3779b97f4a7c15ULL + 0x2545f4914f6cdd1dULL);
  }

  void words32(std::span<const std::int32_t> v) {
    word(static_cast<std::uint64_t>(v.size()));
    for (const std::int32_t x : v) {
      word(static_cast<std::uint64_t>(static_cast<std::int64_t>(x)));
    }
  }

  void words64(std::span<const std::int64_t> v) {
    word(static_cast<std::uint64_t>(v.size()));
    for (const std::int64_t x : v) word(static_cast<std::uint64_t>(x));
  }

  RequestDigest digest() const { return {lo, hi}; }
};

}  // namespace

RequestDigest request_digest(const MultiplyRequest& req) {
  DigestBuilder b;
  b.word('M');
  b.word(static_cast<std::uint64_t>(req.kind));
  b.word(static_cast<std::uint64_t>(req.a.cols()));
  b.words32(req.a.row_to_col());
  b.word(static_cast<std::uint64_t>(req.b.cols()));
  b.words32(req.b.row_to_col());
  return b.digest();
}

RequestDigest request_digest(const LisRequest& req) {
  DigestBuilder b;
  b.word('L');
  b.words64(req.seq);
  b.word(req.want_kernel ? 1 : 0);
  b.word(static_cast<std::uint64_t>(req.windows.size()));
  for (const auto& [l, r] : req.windows) {
    b.word(static_cast<std::uint64_t>(l));
    b.word(static_cast<std::uint64_t>(r));
  }
  return b.digest();
}

RequestDigest request_digest(const LcsRequest& req) {
  DigestBuilder b;
  b.word('C');
  b.words64(req.s);
  b.words64(req.t);
  return b.digest();
}

RequestDigest request_digest(const BuildIndexRequest& req) {
  DigestBuilder b;
  b.word('B');
  b.word(static_cast<std::uint64_t>(req.kind));
  b.words64(req.seq);
  b.words64(req.t);
  return b.digest();
}

RequestDigest request_digest(const WindowLisQuery& req) {
  DigestBuilder b;
  b.word('W');
  // The index id is process-unique and never reused, so the digest can
  // stand in for the whole indexed payload.
  b.word(req.handle.id());
  b.word(static_cast<std::uint64_t>(req.windows.size()));
  for (const auto& [l, r] : req.windows) {
    b.word(static_cast<std::uint64_t>(l));
    b.word(static_cast<std::uint64_t>(r));
  }
  return b.digest();
}

RequestDigest request_digest(const SubstringLcsQuery& req) {
  DigestBuilder b;
  b.word('S');
  b.word(req.handle.id());
  b.word(static_cast<std::uint64_t>(req.substrings.size()));
  for (const auto& [i, j] : req.substrings) {
    b.word(static_cast<std::uint64_t>(i));
    b.word(static_cast<std::uint64_t>(j));
  }
  return b.digest();
}

// ---------------------------------------------------------------------------
// Lifecycle.
// ---------------------------------------------------------------------------

SolverService::SolverService(ServiceOptions options)
    : options_(std::move(options)) {
  if (options_.queue_depth < 1) {
    throw InvalidRequestError("ServiceOptions.queue_depth must be >= 1");
  }
  if (options_.admission != AdmissionPolicy::kBlock &&
      options_.admission != AdmissionPolicy::kReject) {
    throw InvalidRequestError(
        "ServiceOptions.admission is not a valid AdmissionPolicy");
  }
  // Validate the per-worker solver configuration eagerly on this thread
  // (constructing a Solver is cheap — the arena starts empty and the
  // cluster is lazy), so bad knobs throw here instead of on a worker.
  { Solver probe(options_.solver); }

  pool_ = std::make_unique<ThreadPool>(options_.workers);
  const unsigned n = pool_->thread_count();
  for (unsigned i = 0; i < n; ++i) {
    const bool posted = pool_->post([this] { worker_loop(); });
    MONGE_CHECK(posted);  // the pool cannot be stopping during construction
  }
}

SolverService::~SolverService() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  queue_cv_.notify_all();  // workers: drain, then exit
  space_cv_.notify_all();  // blocked submitters: observe shutdown, refuse
  pool_.reset();           // drains the admitted jobs and joins the workers
}

void SolverService::worker_loop() {
  // The worker's private Solver: its own engine arena and (for MpcSim) its
  // own lazily provisioned cluster — workers never contend on either.
  Solver solver(options_.solver);
  for (;;) {
    std::function<void(Solver&)> job;
    {
      std::unique_lock<std::mutex> lock(mu_);
      queue_cv_.wait(lock, [&] { return shutdown_ || !queue_.empty(); });
      if (queue_.empty()) return;  // shutdown and fully drained
      job = std::move(queue_.front());
      queue_.pop_front();
      space_cv_.notify_one();  // a queue slot freed
    }
    job(solver);
  }
}

// ---------------------------------------------------------------------------
// Cache + lanes.
// ---------------------------------------------------------------------------

template <>
SolverService::Lane<MultiplyRequest, MultiplyResult>&
SolverService::lane<MultiplyRequest, MultiplyResult>() {
  return multiply_lane_;
}
template <>
SolverService::Lane<LisRequest, LisResult>&
SolverService::lane<LisRequest, LisResult>() {
  return lis_lane_;
}
template <>
SolverService::Lane<LcsRequest, LcsResult>&
SolverService::lane<LcsRequest, LcsResult>() {
  return lcs_lane_;
}
template <>
SolverService::Lane<BuildIndexRequest, BuildIndexResult>&
SolverService::lane<BuildIndexRequest, BuildIndexResult>() {
  return build_index_lane_;
}
template <>
SolverService::Lane<WindowLisQuery, WindowLisResult>&
SolverService::lane<WindowLisQuery, WindowLisResult>() {
  return window_lis_lane_;
}
template <>
SolverService::Lane<SubstringLcsQuery, SubstringLcsResult>&
SolverService::lane<SubstringLcsQuery, SubstringLcsResult>() {
  return substring_lcs_lane_;
}

template <typename Request, typename Result>
const Result* SolverService::cache_find_locked(RequestDigest key) {
  auto& ln = lane<Request, Result>();
  const auto it = ln.cache.find(key);
  if (it == ln.cache.end()) return nullptr;
  ln.lru.splice(ln.lru.begin(), ln.lru, it->second);  // refresh recency
  return &it->second->second;
}

template <typename Request, typename Result>
void SolverService::cache_insert_locked(RequestDigest key,
                                        const Result& value) {
  if (options_.cache_capacity == 0) return;
  auto& ln = lane<Request, Result>();
  if (const auto it = ln.cache.find(key); it != ln.cache.end()) {
    it->second->second = value;
    ln.lru.splice(ln.lru.begin(), ln.lru, it->second);
    return;
  }
  ln.lru.emplace_front(key, value);
  ln.cache[key] = ln.lru.begin();
  if (ln.cache.size() > options_.cache_capacity) {
    ln.cache.erase(ln.lru.back().first);
    ln.lru.pop_back();
  }
}

// ---------------------------------------------------------------------------
// Jobs.
// ---------------------------------------------------------------------------

template <bool IsTry, typename Request, typename Result>
void SolverService::run_job(Solver& solver, const Request& req,
                            RequestDigest key, RequestDigest flight_key) {
  if (options_.solve_hook) options_.solve_hook();
  if constexpr (!IsTry) {
    Result value{};
    std::exception_ptr error;
    try {
      value = solver.solve(req);
    } catch (...) {
      error = std::current_exception();
    }
    std::vector<std::promise<Result>> waiters;
    {
      std::lock_guard<std::mutex> lock(mu_);
      ++stats_.solves;
      if (error) ++stats_.solve_errors;
      auto& ln = lane<Request, Result>();
      const auto it = ln.in_flight.find(flight_key);
      waiters = std::move(it->second->solve_waiters);
      ln.in_flight.erase(it);
      // Errors are never cached: faults and space overruns depend on
      // mutable cluster state, so a retry can legitimately succeed.
      if (!error) cache_insert_locked<Request, Result>(key, value);
    }
    for (auto& p : waiters) {
      if (error) {
        p.set_exception(error);
      } else {
        p.set_value(value);
      }
    }
  } else {
    const TrySolveResult<Result> res = solver.try_solve(req);
    std::vector<std::promise<TrySolveResult<Result>>> waiters;
    {
      std::lock_guard<std::mutex> lock(mu_);
      ++stats_.solves;
      if (!res.report.ok()) ++stats_.solve_errors;
      auto& ln = lane<Request, Result>();
      const auto it = ln.in_flight.find(flight_key);
      waiters = std::move(it->second->try_waiters);
      ln.in_flight.erase(it);
      // Degraded values are correct but shaped like the fallback backend
      // (zero rounds/reports), so they must not satisfy future requests
      // that expect a healthy MpcSim answer.
      if (res.report.ok() && !res.report.degraded) {
        cache_insert_locked<Request, Result>(key, res.value);
      }
    }
    for (auto& p : waiters) p.set_value(res);
  }
}

// ---------------------------------------------------------------------------
// Admission.
// ---------------------------------------------------------------------------

template <bool IsTry, typename Request, typename Result>
std::conditional_t<IsTry, Submission<Result>, std::future<Result>>
SolverService::submit_impl(Request req) {
  using Ret = std::conditional_t<IsTry, Submission<Result>, std::future<Result>>;

  const RequestDigest key = request_digest(req);
  // The submit and try_submit flavors fail differently (throwing future vs
  // degrading report), so they never coalesce with each other: the
  // in-flight table is keyed with the flavor mixed in. The result cache
  // uses the pure digest — values are shared.
  RequestDigest flight_key = key;
  if constexpr (IsTry) flight_key.hi ^= 0x7472795f666c7476ULL;

  const auto reject = [&](const std::string& why) -> Ret {
    ++stats_.rejected;
    if constexpr (IsTry) {
      Submission<Result> sub;
      sub.admission.status = SolveStatus::kOverloaded;
      sub.admission.backend = options_.solver.backend;
      sub.admission.message = why;
      return sub;
    } else {
      throw OverloadedError(why);
    }
  };

  std::unique_lock<std::mutex> lock(mu_);
  ++stats_.submitted;
  for (;;) {
    if (shutdown_) return reject("SolverService is shutting down");

    // 1) Completed identical request in the result cache.
    if (const Result* hit = cache_find_locked<Request, Result>(key)) {
      ++stats_.cache_hits;
      if constexpr (IsTry) {
        TrySolveResult<Result> res;
        res.value = *hit;
        res.report.backend = options_.solver.backend;
        res.report.cached = true;
        std::promise<TrySolveResult<Result>> p;
        p.set_value(std::move(res));
        Submission<Result> sub;
        sub.future = p.get_future();
        sub.admission.backend = options_.solver.backend;
        return sub;
      } else {
        std::promise<Result> p;
        p.set_value(*hit);
        return p.get_future();
      }
    }

    // 2) Identical request already in flight: attach, consume no slot.
    auto& ln = lane<Request, Result>();
    if (const auto it = ln.in_flight.find(flight_key);
        it != ln.in_flight.end()) {
      ++stats_.coalesced;
      if constexpr (IsTry) {
        std::promise<TrySolveResult<Result>> p;
        Submission<Result> sub;
        sub.future = p.get_future();
        sub.admission.backend = options_.solver.backend;
        it->second->try_waiters.push_back(std::move(p));
        return sub;
      } else {
        std::promise<Result> p;
        auto fut = p.get_future();
        it->second->solve_waiters.push_back(std::move(p));
        return fut;
      }
    }

    // 3) Admission control on the bounded queue.
    if (queue_.size() < options_.queue_depth) break;
    if (options_.admission == AdmissionPolicy::kReject) {
      return reject("queue full (depth " +
                    std::to_string(options_.queue_depth) + ")");
    }
    // Block until a worker frees a slot, then re-run the whole ladder:
    // while we slept the request may have become in-flight or cached.
    space_cv_.wait(lock);
  }

  // 4) Admit: one flight, one queued job.
  auto flight = std::make_shared<Flight<Result>>();
  Ret ret;
  if constexpr (IsTry) {
    std::promise<TrySolveResult<Result>> p;
    ret.future = p.get_future();
    ret.admission.backend = options_.solver.backend;
    flight->try_waiters.push_back(std::move(p));
  } else {
    std::promise<Result> p;
    ret = p.get_future();
    flight->solve_waiters.push_back(std::move(p));
  }
  lane<Request, Result>().in_flight.emplace(flight_key, std::move(flight));
  ++stats_.admitted;
  queue_.push_back(
      [this, req = std::move(req), key, flight_key](Solver& solver) {
        run_job<IsTry, Request, Result>(solver, req, key, flight_key);
      });
  lock.unlock();
  queue_cv_.notify_one();
  return ret;
}

std::future<MultiplyResult> SolverService::submit(MultiplyRequest req) {
  return submit_impl<false, MultiplyRequest, MultiplyResult>(std::move(req));
}
std::future<LisResult> SolverService::submit(LisRequest req) {
  return submit_impl<false, LisRequest, LisResult>(std::move(req));
}
std::future<LcsResult> SolverService::submit(LcsRequest req) {
  return submit_impl<false, LcsRequest, LcsResult>(std::move(req));
}
std::future<BuildIndexResult> SolverService::submit(BuildIndexRequest req) {
  return submit_impl<false, BuildIndexRequest, BuildIndexResult>(
      std::move(req));
}
std::future<WindowLisResult> SolverService::submit(WindowLisQuery req) {
  return submit_impl<false, WindowLisQuery, WindowLisResult>(std::move(req));
}
std::future<SubstringLcsResult> SolverService::submit(SubstringLcsQuery req) {
  return submit_impl<false, SubstringLcsQuery, SubstringLcsResult>(
      std::move(req));
}

Submission<MultiplyResult> SolverService::try_submit(MultiplyRequest req) {
  return submit_impl<true, MultiplyRequest, MultiplyResult>(std::move(req));
}
Submission<LisResult> SolverService::try_submit(LisRequest req) {
  return submit_impl<true, LisRequest, LisResult>(std::move(req));
}
Submission<LcsResult> SolverService::try_submit(LcsRequest req) {
  return submit_impl<true, LcsRequest, LcsResult>(std::move(req));
}
Submission<BuildIndexResult> SolverService::try_submit(BuildIndexRequest req) {
  return submit_impl<true, BuildIndexRequest, BuildIndexResult>(
      std::move(req));
}
Submission<WindowLisResult> SolverService::try_submit(WindowLisQuery req) {
  return submit_impl<true, WindowLisQuery, WindowLisResult>(std::move(req));
}
Submission<SubstringLcsResult> SolverService::try_submit(
    SubstringLcsQuery req) {
  return submit_impl<true, SubstringLcsQuery, SubstringLcsResult>(
      std::move(req));
}

ServiceStats SolverService::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

}  // namespace monge
