// Typed request/result structs for the monge::Solver facade.
//
// A request is pure data: the inputs of one of the library's deliverables
// (Theorem 1.1 full multiply, Theorem 1.2 subunit multiply, Theorem 1.3
// LIS with the semi-local kernel and windowed queries, Corollary 1.3.1
// LCS). Which algorithm actually runs — the sequential engine, the
// simulated MPC cluster, or the retained reference oracles — is chosen by
// the Solver's backend, never by the request; the same request can be
// replayed against every backend, which is exactly what the bit-identity
// tests do.
//
// Results carry the existing reports/stats unchanged: the MPC backend
// fills core::MpcMultiplyReport / round counts, the other backends leave
// them zero. See api/solver.h for the routing table.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "core/mpc_multiply.h"
#include "monge/permutation.h"

namespace monge {

/// One product PC = PA ⊡ PB.
struct MultiplyRequest {
  enum class Kind {
    kFull = 0,     ///< full n×n permutations (Theorem 1.1)
    kSubunit = 1,  ///< sub-permutations, shapes rA×n2 · n2×cB (Theorem 1.2)
  };

  Perm a;  ///< PA; full permutation for kFull, sub-permutation for kSubunit.
  Perm b;  ///< PB with b.rows() == a.cols().
  Kind kind = Kind::kFull;
};

struct MultiplyResult {
  Perm c;  ///< the product PA ⊡ PB.
  /// Round/space accounting of the cluster call. Filled by the MpcSim
  /// backend; all-zero for Sequential and Reference.
  core::MpcMultiplyReport report{};
};

/// LIS of a sequence (duplicates allowed; strict LIS), optionally with the
/// semi-local kernel and an offline batch of window queries.
struct LisRequest {
  std::vector<std::int64_t> seq;  ///< the input sequence.
  /// Build and return the semi-local kernel (Corollary 1.3.2). Without it
  /// a length-only request routes to the cheapest length algorithm of the
  /// backend (patience sorting on Sequential).
  bool want_kernel = false;
  /// Inclusive [l, r] windows answered offline; l > r is a legitimate
  /// empty window (answers 0). Non-empty implies a kernel is built
  /// internally (except on the Reference backend, which answers windows
  /// with the per-window patience oracle).
  std::vector<std::pair<std::int64_t, std::int64_t>> windows;
};

struct LisResult {
  std::int64_t lis = 0;  ///< LIS of the whole sequence.
  Perm kernel;           ///< populated iff LisRequest::want_kernel.
  /// One answer per LisRequest::windows entry, in input order.
  std::vector<std::int64_t> window_lis;
  std::int64_t rounds = 0;        ///< MPC rounds consumed (MpcSim only).
  std::int64_t merge_levels = 0;  ///< kernel merge-tree levels (MpcSim only).
};

/// LCS of two sequences via the Hunt–Szymanski reduction to strict LIS.
struct LcsRequest {
  std::vector<std::int64_t> s;
  std::vector<std::int64_t> t;
};

struct LcsResult {
  std::int64_t lcs = 0;
  /// Size of the HS match sequence (the LIS input; what the MPC cluster
  /// must be provisioned for). Filled by every backend.
  std::int64_t matches = 0;
  std::int64_t rounds = 0;  ///< MPC rounds consumed (MpcSim only).
};

}  // namespace monge
