// Typed request/result structs for the monge::Solver facade.
//
// A request is pure data: the inputs of one of the library's deliverables
// (Theorem 1.1 full multiply, Theorem 1.2 subunit multiply, Theorem 1.3
// LIS with the semi-local kernel and windowed queries, Corollary 1.3.1
// LCS). Which algorithm actually runs — the sequential engine, the
// simulated MPC cluster, or the retained reference oracles — is chosen by
// the Solver's backend, never by the request; the same request can be
// replayed against every backend, which is exactly what the bit-identity
// tests do.
//
// Results carry the existing reports/stats unchanged: the MPC backend
// fills core::MpcMultiplyReport / round counts, the other backends leave
// them zero. See api/solver.h for the routing table.
#pragma once

#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "core/mpc_multiply.h"
#include "monge/permutation.h"
#include "query/semilocal_index.h"

namespace monge {

/// One product PC = PA ⊡ PB.
struct MultiplyRequest {
  enum class Kind {
    kFull = 0,     ///< full n×n permutations (Theorem 1.1)
    kSubunit = 1,  ///< sub-permutations, shapes rA×n2 · n2×cB (Theorem 1.2)
  };

  Perm a;  ///< PA; full permutation for kFull, sub-permutation for kSubunit.
  Perm b;  ///< PB with b.rows() == a.cols().
  Kind kind = Kind::kFull;
};

struct MultiplyResult {
  Perm c;  ///< the product PA ⊡ PB.
  /// Round/space accounting of the cluster call. Filled by the MpcSim
  /// backend; all-zero for Sequential and Reference.
  core::MpcMultiplyReport report{};
};

/// LIS of a sequence (duplicates allowed; strict LIS), optionally with the
/// semi-local kernel and an offline batch of window queries.
struct LisRequest {
  std::vector<std::int64_t> seq;  ///< the input sequence.
  /// Build and return the semi-local kernel (Corollary 1.3.2). Without it
  /// a length-only request routes to the cheapest length algorithm of the
  /// backend (patience sorting on Sequential).
  bool want_kernel = false;
  /// Inclusive [l, r] windows answered offline; l > r is a legitimate
  /// empty window (answers 0). Non-empty implies a kernel is built
  /// internally (except on the Reference backend, which answers windows
  /// with the per-window patience oracle).
  std::vector<std::pair<std::int64_t, std::int64_t>> windows;
};

struct LisResult {
  std::int64_t lis = 0;  ///< LIS of the whole sequence.
  Perm kernel;           ///< populated iff LisRequest::want_kernel.
  /// One answer per LisRequest::windows entry, in input order.
  std::vector<std::int64_t> window_lis;
  std::int64_t rounds = 0;        ///< MPC rounds consumed (MpcSim only).
  std::int64_t merge_levels = 0;  ///< kernel merge-tree levels (MpcSim only).
};

/// LCS of two sequences via the Hunt–Szymanski reduction to strict LIS.
struct LcsRequest {
  std::vector<std::int64_t> s;
  std::vector<std::int64_t> t;
};

struct LcsResult {
  std::int64_t lcs = 0;
  /// Size of the HS match sequence (the LIS input; what the MPC cluster
  /// must be provisioned for). Filled by every backend.
  std::int64_t matches = 0;
  std::int64_t rounds = 0;  ///< MPC rounds consumed (MpcSim only).
};

/// Shared reference to an immutable query::SemiLocalIndex — what a
/// BuildIndexRequest returns and what every query request carries. The
/// handle IS the lifecycle: the index lives as long as any handle (or any
/// SolverService cache entry) references it, and queries against a handle
/// are safe from any thread because the index never mutates. The digest of
/// a query request keys on id(), which is process-unique and never reused,
/// so a cached query result can never be served against a different index.
struct QueryHandle {
  std::shared_ptr<const query::SemiLocalIndex> index;

  bool valid() const { return index != nullptr; }
  /// The index's process-unique id; 0 for an empty handle.
  std::uint64_t id() const { return index ? index->id() : 0; }

  friend bool operator==(const QueryHandle& a, const QueryHandle& b) {
    return a.index == b.index;
  }
};

/// Build a SemiLocalIndex once so arbitrarily many WindowLisQuery /
/// SubstringLcsQuery batches answer without re-running the seaweed
/// machinery. The backend chooses which kernel builder runs (all three
/// produce bit-identical kernels, so the served answers never depend on
/// the backend).
struct BuildIndexRequest {
  enum class Kind {
    kWindowLis = 0,     ///< index seq for LIS(seq[l..r]) queries.
    kSubstringLcs = 1,  ///< index (s=seq, t) for LCS(seq[i..j], t) queries.
  };

  Kind kind = Kind::kWindowLis;
  std::vector<std::int64_t> seq;  ///< the sequence (s in kSubstringLcs).
  /// The fixed text t of a kSubstringLcs index; must be empty for
  /// kWindowLis.
  std::vector<std::int64_t> t;
};

struct BuildIndexResult {
  QueryHandle handle;        ///< the built (or cache-shared) index.
  std::int64_t n = 0;        ///< indexed length (match count for LCS mode).
  std::int64_t points = 0;   ///< kernel points retained by the index.
  /// The full-range answer: LIS(seq), or LCS(seq, t) in kSubstringLcs
  /// mode — the O(1) special case of the window queries.
  std::int64_t full = 0;
  std::int64_t rounds = 0;   ///< MPC rounds consumed (MpcSim only).
};

/// A batch of window-LIS queries against a kWindowLis index.
struct WindowLisQuery {
  QueryHandle handle;
  /// Inclusive [l, r] windows; l > r is a legitimate empty window
  /// (answers 0).
  std::vector<std::pair<std::int64_t, std::int64_t>> windows;
};

struct WindowLisResult {
  /// One LIS length per WindowLisQuery::windows entry, in input order.
  std::vector<std::int64_t> lis;
};

/// A batch of substring-LCS queries against a kSubstringLcs index.
struct SubstringLcsQuery {
  QueryHandle handle;
  /// Inclusive [i, j] substrings of s; i > j is a legitimate empty
  /// substring (answers 0).
  std::vector<std::pair<std::int64_t, std::int64_t>> substrings;
};

struct SubstringLcsResult {
  /// One LCS length per SubstringLcsQuery::substrings entry, in input
  /// order.
  std::vector<std::int64_t> lcs;
};

}  // namespace monge
