#include "api/solver.h"

#include <algorithm>
#include <cstddef>
#include <numeric>
#include <optional>
#include <stdexcept>
#include <string>
#include <utility>

#include "core/mpc_subperm.h"
#include "lcs/hunt_szymanski.h"
#include "lcs/mpc_lcs.h"
#include "lis/kernel.h"
#include "lis/mpc_lis.h"
#include "lis/sequential.h"
#include "monge/seaweed.h"
#include "monge/subperm.h"
#include "util/check.h"

namespace monge {

namespace {

using MultiplyKind = MultiplyRequest::Kind;

/// O(1) shape validation shared by solve and solve_batch. Full-permutation
/// *content* validation is O(n) and most delegates (SeaweedEngine::multiply,
/// the subunit compaction, the MPC batch prep) already perform it, so the
/// facade only adds validate_multiply_full on the routes whose delegate
/// does not — never paying the check twice on the dispatch hot path.
void validate_multiply_shape(const MultiplyRequest& req) {
  MONGE_CHECK_MSG(req.a.cols() == req.b.rows(),
                  "MultiplyRequest inner dimensions disagree: "
                      << req.a.cols() << " vs " << req.b.rows());
  MONGE_CHECK_MSG(
      req.kind == MultiplyKind::kFull || req.kind == MultiplyKind::kSubunit,
      "MultiplyRequest.kind is not a valid Kind");
}

/// Full-permutation content check for kFull requests routed to delegates
/// that take raw arrays on trust (the reference recursion, the engine's
/// release-mode batch entry points).
void validate_multiply_full(const MultiplyRequest& req) {
  if (req.kind == MultiplyKind::kFull) {
    MONGE_CHECK_MSG(req.a.is_full_permutation() && req.b.is_full_permutation(),
                    "MultiplyRequest kFull requires full permutations (use "
                    "kSubunit for sub-permutations)");
  }
}

/// The core problem size an MpcSim multiply pays for: n for full pairs,
/// the inner dimension n2 (the §4.1 padded size) for subunit pairs.
std::int64_t mpc_multiply_size(const MultiplyRequest& req) {
  return req.kind == MultiplyKind::kFull ? req.a.rows() : req.a.cols();
}

}  // namespace

const char* solver_backend_name(SolverBackend backend) {
  switch (backend) {
    case SolverBackend::kSequential:
      return "sequential";
    case SolverBackend::kMpcSim:
      return "mpc-sim";
    case SolverBackend::kReference:
      return "reference";
  }
  MONGE_CHECK_MSG(false, "invalid SolverBackend");
}

const char* solve_status_name(SolveStatus status) {
  switch (status) {
    case SolveStatus::kOk:
      return "ok";
    case SolveStatus::kInvalidRequest:
      return "invalid-request";
    case SolveStatus::kSpaceLimit:
      return "space-limit";
    case SolveStatus::kFault:
      return "fault";
    case SolveStatus::kCodec:
      return "codec";
    case SolveStatus::kInternalError:
      return "internal-error";
    case SolveStatus::kOverloaded:
      return "overloaded";
  }
  MONGE_CHECK_MSG(false, "invalid SolveStatus");
}

Solver::Solver(SolverOptions options)
    : options_(std::move(options)), engine_(options_.engine) {
  const auto require = [](bool ok, const std::string& what) {
    if (!ok) throw InvalidRequestError(what);
  };
  require(options_.backend == SolverBackend::kSequential ||
              options_.backend == SolverBackend::kMpcSim ||
              options_.backend == SolverBackend::kReference,
          "SolverOptions.backend is not a valid SolverBackend");
  require(options_.cluster.num_machines >= 0,
          "SolverOptions.cluster.num_machines must be >= 0 (0 = "
          "auto-provision)");
  if (options_.cluster.num_machines > 0) {
    require(options_.cluster.space_words >= 1,
            "SolverOptions.cluster.space_words must be >= 1");
  }
  require(options_.mpc_delta > 0.0 && options_.mpc_delta < 1.0,
          "SolverOptions.mpc_delta must be in (0, 1), got " +
              std::to_string(options_.mpc_delta));
  require(options_.mpc_slack > 0.0,
          "SolverOptions.mpc_slack must be > 0, got " +
              std::to_string(options_.mpc_slack));
  require(options_.multiply.split_h >= 0 && options_.multiply.tree_fanout >= 0 &&
              options_.multiply.box_g >= 0,
          "SolverOptions.multiply knobs must be >= 0 (0 = paper schedule)");
  require(options_.lis_leaf_classes >= 0,
          "SolverOptions.lis_leaf_classes must be >= 0 (0 = number of "
          "machines)");
  require(options_.lcs_engine_match_limit >= 1 &&
              options_.lcs_engine_match_limit <= kSeaweedEngineMaxN,
          "SolverOptions.lcs_engine_match_limit must be in [1, 2^30], got " +
              std::to_string(options_.lcs_engine_match_limit));
}

mpc::Cluster& Solver::provisioned_cluster(std::int64_t n) {
  mpc::MpcConfig want = options_.cluster;
  if (want.num_machines <= 0) {
    want = mpc::MpcConfig::fully_scalable(std::max<std::int64_t>(n, 1),
                                          options_.mpc_delta,
                                          options_.mpc_slack,
                                          options_.mpc_strict);
    want.threads = options_.cluster.threads;
    // Chaos knobs carry over into auto-provisioned clusters.
    want.faults = options_.cluster.faults;
    want.checkpoint_interval = options_.cluster.checkpoint_interval;
  }
  const bool reusable = cluster_ && want == cluster_cfg_;
  if (!reusable) {
    cluster_.reset();  // release the old pool before spinning a new one
    cluster_ = std::make_unique<mpc::Cluster>(want);
    cluster_cfg_ = want;
  }
  return *cluster_;
}

lis::MpcLisOptions Solver::mpc_lis_options() const {
  lis::MpcLisOptions o;
  o.multiply = options_.multiply;
  o.leaf_classes = options_.lis_leaf_classes;
  return o;
}

MultiplyResult Solver::solve(const MultiplyRequest& req) {
  return solve_on(options_.backend, req);
}

MultiplyResult Solver::solve_on(SolverBackend backend,
                                const MultiplyRequest& req) {
  validate_multiply_shape(req);
  MultiplyResult out;
  switch (backend) {
    case SolverBackend::kSequential:
      out.c = req.kind == MultiplyKind::kFull
                  ? engine_.multiply(req.a, req.b)  // validates content
                  : subunit_multiply(req.a, req.b, engine_);
      break;
    case SolverBackend::kReference:
      validate_multiply_full(req);  // the raw reference takes inputs on trust
      out.c = req.kind == MultiplyKind::kFull
                  ? Perm::from_rows(
                        seaweed_multiply_reference_raw(req.a.row_to_col(),
                                                       req.b.row_to_col()),
                        req.b.cols())
                  : subunit_multiply_padded(req.a, req.b, engine_);
      break;
    case SolverBackend::kMpcSim: {
      mpc::Cluster& cluster = provisioned_cluster(mpc_multiply_size(req));
      out.c = req.kind == MultiplyKind::kFull
                  ? core::mpc_unit_monge_multiply(cluster, req.a, req.b,
                                                  options_.multiply,
                                                  &out.report)
                  : core::mpc_subunit_multiply(cluster, req.a, req.b,
                                               options_.multiply, &out.report);
      break;
    }
  }
  return out;
}

std::vector<MultiplyResult> Solver::solve_batch(
    std::span<const MultiplyRequest> reqs) {
  std::vector<MultiplyResult> out(reqs.size());
  std::vector<std::size_t> full_idx, sub_idx;
  for (std::size_t i = 0; i < reqs.size(); ++i) {
    validate_multiply_shape(reqs[i]);
    (reqs[i].kind == MultiplyKind::kFull ? full_idx : sub_idx).push_back(i);
  }

  switch (options_.backend) {
    case SolverBackend::kSequential: {
      // One batched engine call per request kind: the whole group shares
      // one arena sizing and stripes across the engine pool when set.
      if (!full_idx.empty()) {
        std::vector<std::vector<std::int32_t>> bufs(full_idx.size());
        std::vector<PermPairView> views;
        std::vector<std::span<std::int32_t>> outs;
        views.reserve(full_idx.size());
        outs.reserve(full_idx.size());
        for (std::size_t j = 0; j < full_idx.size(); ++j) {
          const MultiplyRequest& req = reqs[full_idx[j]];
          // multiply_batch_into validates content in debug builds only, so
          // the facade keeps the single-call rejection behavior here.
          validate_multiply_full(req);
          bufs[j].resize(static_cast<std::size_t>(req.a.rows()));
          views.push_back({req.a.row_to_col(), req.b.row_to_col()});
          outs.push_back(bufs[j]);
        }
        engine_.multiply_batch_into(views, outs);
        for (std::size_t j = 0; j < full_idx.size(); ++j) {
          out[full_idx[j]].c = Perm::from_rows(std::move(bufs[j]),
                                               reqs[full_idx[j]].b.cols());
        }
      }
      if (!sub_idx.empty()) {
        std::vector<std::vector<std::int32_t>> bufs(sub_idx.size());
        std::vector<SubunitPairView> views;
        std::vector<std::span<std::int32_t>> outs;
        views.reserve(sub_idx.size());
        outs.reserve(sub_idx.size());
        for (std::size_t j = 0; j < sub_idx.size(); ++j) {
          const MultiplyRequest& req = reqs[sub_idx[j]];
          bufs[j].assign(static_cast<std::size_t>(req.a.rows()), kNone);
          views.push_back(
              {req.a.row_to_col(), req.b.row_to_col(), req.b.cols()});
          outs.push_back(bufs[j]);
        }
        engine_.subunit_multiply_batch_into(views, outs);
        for (std::size_t j = 0; j < sub_idx.size(); ++j) {
          out[sub_idx[j]].c = Perm::from_rows(std::move(bufs[j]),
                                              reqs[sub_idx[j]].b.cols());
        }
      }
      break;
    }
    case SolverBackend::kReference:
      for (std::size_t i = 0; i < reqs.size(); ++i) out[i] = solve(reqs[i]);
      break;
    case SolverBackend::kMpcSim: {
      // One *_batch cluster call per kind; every pair of a kind group
      // shares rounds, and every result of the group carries the group's
      // shared batch report.
      std::int64_t max_n = 0;
      for (const MultiplyRequest& req : reqs) {
        max_n = std::max(max_n, mpc_multiply_size(req));
      }
      if (!full_idx.empty()) {
        std::vector<std::pair<Perm, Perm>> pairs;
        pairs.reserve(full_idx.size());
        for (const std::size_t i : full_idx) {
          pairs.emplace_back(reqs[i].a, reqs[i].b);
        }
        core::MpcMultiplyReport rep;
        auto products = core::mpc_unit_monge_multiply_batch(
            provisioned_cluster(max_n), pairs, options_.multiply, &rep);
        for (std::size_t j = 0; j < full_idx.size(); ++j) {
          out[full_idx[j]].c = std::move(products[j]);
          out[full_idx[j]].report = rep;
        }
      }
      if (!sub_idx.empty()) {
        std::vector<std::pair<Perm, Perm>> pairs;
        pairs.reserve(sub_idx.size());
        for (const std::size_t i : sub_idx) {
          pairs.emplace_back(reqs[i].a, reqs[i].b);
        }
        core::MpcMultiplyReport rep;
        auto products = core::mpc_subunit_multiply_batch(
            provisioned_cluster(max_n), pairs, options_.multiply, &rep);
        for (std::size_t j = 0; j < sub_idx.size(); ++j) {
          out[sub_idx[j]].c = std::move(products[j]);
          out[sub_idx[j]].report = rep;
        }
      }
      break;
    }
  }
  return out;
}

LisResult Solver::solve(const LisRequest& req) {
  return solve_on(options_.backend, req);
}

LisResult Solver::solve_on(SolverBackend backend, const LisRequest& req) {
  LisResult out;
  const bool need_kernel = req.want_kernel || !req.windows.empty();
  switch (backend) {
    case SolverBackend::kSequential:
      if (need_kernel) {
        Perm kernel = lis::lis_kernel(lis::rank_reduce_strict(req.seq),
                                      engine_);
        out.lis = lis::lis_from_kernel(kernel);
        if (!req.windows.empty()) {
          out.window_lis = lis::kernel_window_lis_batch(kernel, req.windows);
        }
        if (req.want_kernel) out.kernel = std::move(kernel);
      } else {
        out.lis = lis::lis_length(req.seq);
      }
      break;
    case SolverBackend::kReference:
      out.lis = lis::lis_length_dp(req.seq);
      if (req.want_kernel) {
        out.kernel = lis::lis_kernel_reference(
            lis::rank_reduce_strict(req.seq), engine_);
      }
      if (!req.windows.empty()) {
        out.window_lis = lis::lis_window_batch(req.seq, req.windows);
      }
      break;
    case SolverBackend::kMpcSim: {
      mpc::Cluster& cluster = provisioned_cluster(
          static_cast<std::int64_t>(req.seq.size()));
      auto res = lis::mpc_lis(cluster, req.seq, mpc_lis_options());
      out.lis = res.lis;
      out.rounds = res.rounds;
      out.merge_levels = res.merge_levels;
      if (!req.windows.empty()) {
        out.window_lis = lis::kernel_window_lis_batch(res.kernel, req.windows);
      }
      if (req.want_kernel) out.kernel = std::move(res.kernel);
      break;
    }
  }
  return out;
}

std::vector<LisResult> Solver::solve_batch(std::span<const LisRequest> reqs) {
  std::vector<LisResult> out(reqs.size());
  if (options_.backend != SolverBackend::kSequential) {
    for (std::size_t i = 0; i < reqs.size(); ++i) out[i] = solve(reqs[i]);
    return out;
  }
  // Sequential: every kernel the batch needs is built through ONE
  // lis_kernel_batch forest pass — one batched engine call per global
  // merge level — while length-only requests route to patience sorting.
  std::vector<std::vector<std::int32_t>> perms;
  std::vector<std::size_t> kernel_idx;
  for (std::size_t i = 0; i < reqs.size(); ++i) {
    if (reqs[i].want_kernel || !reqs[i].windows.empty()) {
      perms.push_back(lis::rank_reduce_strict(reqs[i].seq));
      kernel_idx.push_back(i);
    } else {
      out[i].lis = lis::lis_length(reqs[i].seq);
    }
  }
  if (kernel_idx.empty()) return out;
  auto kernels = lis::lis_kernel_batch(perms, engine_);
  for (std::size_t j = 0; j < kernel_idx.size(); ++j) {
    const std::size_t i = kernel_idx[j];
    out[i].lis = lis::lis_from_kernel(kernels[j]);
    if (!reqs[i].windows.empty()) {
      out[i].window_lis =
          lis::kernel_window_lis_batch(kernels[j], reqs[i].windows);
    }
    if (reqs[i].want_kernel) out[i].kernel = std::move(kernels[j]);
  }
  return out;
}

LcsResult Solver::solve(const LcsRequest& req) {
  return solve_on(options_.backend, req);
}

LcsResult Solver::solve_on(SolverBackend backend, const LcsRequest& req) {
  LcsResult out;
  switch (backend) {
    case SolverBackend::kSequential: {
      // lcs_hs is lis_length over the match sequence; computing the
      // sequence once serves both the count and the length bit-identically.
      const auto seq = lcs::hs_match_sequence(req.s, req.t);
      out.matches = static_cast<std::int64_t>(seq.size());
      out.lcs = lis::lis_length(seq);
      break;
    }
    case SolverBackend::kReference:
      // Counting matches does not need the (worst-case |s|·|t|-sized)
      // match sequence itself — hs_match_count streams the occurrence
      // table instead of materializing it just to read .size().
      out.matches = lcs::hs_match_count(req.s, req.t);
      out.lcs = lcs::lcs_dp(req.s, req.t);
      break;
    case SolverBackend::kMpcSim: {
      // The cluster must be provisioned for the match count (the paper's
      // m = n^{1+δ} regime) — the match sequence is the LIS input, so it
      // is generated once and handed through.
      const auto seq = lcs::hs_match_sequence(req.s, req.t);
      if (static_cast<std::int64_t>(seq.size()) >
          options_.lcs_engine_match_limit) {
        // Same guard as the Sequential batch grouping: past the limit the
        // cluster's leaf engines would reject the kernel, so patience
        // answers directly (bit-identical; rounds stays 0 — no cluster
        // work happened).
        out.matches = static_cast<std::int64_t>(seq.size());
        out.lcs = lis::lis_length(seq);
        break;
      }
      mpc::Cluster& cluster =
          provisioned_cluster(static_cast<std::int64_t>(seq.size()));
      const auto res =
          lcs::mpc_lcs_over_matches(cluster, seq, mpc_lis_options());
      out.lcs = res.lcs;
      out.matches = res.matches;
      out.rounds = res.rounds;
      break;
    }
  }
  return out;
}

std::vector<LcsResult> Solver::solve_batch(std::span<const LcsRequest> reqs) {
  std::vector<LcsResult> out(reqs.size());
  if (options_.backend != SolverBackend::kSequential || reqs.size() <= 1) {
    for (std::size_t i = 0; i < reqs.size(); ++i) out[i] = solve(reqs[i]);
    return out;
  }
  // Sequential fast path: requests are grouped by (t, s), so the
  // Hunt–Szymanski occurrence table is built once per distinct t, the
  // match sequence once per distinct (s, t) pair (identical requests
  // collapse onto one subproblem), and every distinct LIS subproblem rides
  // ONE lis_kernel_batch forest pass — one batched engine call per merge
  // level, striped across the engine pool when one is configured. The LIS
  // length read off a kernel equals patience sorting's, so results stay
  // bit-identical to the per-request loop (pinned in test_solver.cpp).
  std::vector<std::size_t> order(reqs.size());
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t x, std::size_t y) {
                     if (reqs[x].t != reqs[y].t) return reqs[x].t < reqs[y].t;
                     return reqs[x].s < reqs[y].s;
                   });

  std::optional<lcs::HsOccurrences> occ;  // of the current t group
  std::vector<std::vector<std::int32_t>> perms;
  std::vector<std::vector<std::size_t>> perm_users;  // perms[k] answers these
  for (std::size_t g = 0; g < order.size();) {
    const LcsRequest& head = reqs[order[g]];
    if (g == 0 || reqs[order[g - 1]].t != head.t) occ.emplace(head.t);
    std::size_t h = g;
    while (h < order.size() && reqs[order[h]].t == head.t &&
           reqs[order[h]].s == head.s) {
      ++h;
    }
    auto seq = occ->match_sequence(head.s);
    const auto matches = static_cast<std::int64_t>(seq.size());
    for (std::size_t k = g; k < h; ++k) out[order[k]].matches = matches;
    if (seq.empty()) {
      // No matches: LCS is 0, no LIS subproblem to schedule.
    } else if (matches > options_.lcs_engine_match_limit) {
      // Too large for one engine kernel; patience answers the group once.
      const std::int64_t lcs_len = lis::lis_length(seq);
      for (std::size_t k = g; k < h; ++k) out[order[k]].lcs = lcs_len;
    } else {
      perms.push_back(lis::rank_reduce_strict(seq));
      perm_users.emplace_back(order.begin() + static_cast<std::ptrdiff_t>(g),
                              order.begin() + static_cast<std::ptrdiff_t>(h));
    }
    g = h;
  }
  if (!perms.empty()) {
    const auto kernels = lis::lis_kernel_batch(perms, engine_);
    for (std::size_t k = 0; k < kernels.size(); ++k) {
      const std::int64_t lcs_len = lis::lis_from_kernel(kernels[k]);
      for (const std::size_t i : perm_users[k]) out[i].lcs = lcs_len;
    }
  }
  return out;
}

BuildIndexResult Solver::solve(const BuildIndexRequest& req) {
  return solve_on(options_.backend, req);
}

BuildIndexResult Solver::solve_on(SolverBackend backend,
                                  const BuildIndexRequest& req) {
  using Kind = BuildIndexRequest::Kind;
  if (req.kind != Kind::kWindowLis && req.kind != Kind::kSubstringLcs) {
    throw InvalidRequestError("BuildIndexRequest.kind is not a valid Kind");
  }
  if (req.kind == Kind::kWindowLis && !req.t.empty()) {
    throw InvalidRequestError(
        "BuildIndexRequest.t must be empty for kWindowLis (use kSubstringLcs "
        "to index a pair)");
  }

  BuildIndexResult out;
  std::shared_ptr<query::SemiLocalIndex> index;
  switch (backend) {
    case SolverBackend::kSequential:
      index = std::make_shared<query::SemiLocalIndex>(
          req.kind == Kind::kWindowLis
              ? query::SemiLocalIndex::from_sequence(req.seq, engine_)
              : query::SemiLocalIndex::from_lcs_pair(req.seq, req.t, engine_));
      break;
    case SolverBackend::kReference: {
      // The depth-first reference kernel builder; bit-identical to the
      // level-order one (pinned in test_lis.cpp), so the index is too.
      if (req.kind == Kind::kWindowLis) {
        const Perm kernel = lis::lis_kernel_reference(
            lis::rank_reduce_strict(req.seq), engine_);
        index = std::make_shared<query::SemiLocalIndex>(
            query::SemiLocalIndex::from_kernel(kernel));
      } else {
        const lcs::HsOccurrences occ(req.t);
        const Perm kernel = lis::lis_kernel_reference(
            lis::rank_reduce_strict(occ.match_sequence(req.seq)), engine_);
        index = std::make_shared<query::SemiLocalIndex>(
            query::SemiLocalIndex::from_lcs_kernel(
                kernel, occ.match_row_starts(req.seq)));
      }
      break;
    }
    case SolverBackend::kMpcSim: {
      // The kernel is built on the cluster (Theorem 1.3); the index
      // adaptation itself is local and round-free.
      if (req.kind == Kind::kWindowLis) {
        mpc::Cluster& cluster = provisioned_cluster(
            static_cast<std::int64_t>(req.seq.size()));
        auto res = lis::mpc_lis(cluster, req.seq, mpc_lis_options());
        out.rounds = res.rounds;
        index = std::make_shared<query::SemiLocalIndex>(
            query::SemiLocalIndex::from_kernel(res.kernel));
      } else {
        const lcs::HsOccurrences occ(req.t);
        const auto seq = occ.match_sequence(req.seq);
        mpc::Cluster& cluster =
            provisioned_cluster(static_cast<std::int64_t>(seq.size()));
        auto res = lis::mpc_lis(cluster, seq, mpc_lis_options());
        out.rounds = res.rounds;
        index = std::make_shared<query::SemiLocalIndex>(
            query::SemiLocalIndex::from_lcs_kernel(
                res.kernel, occ.match_row_starts(req.seq)));
      }
      break;
    }
  }
  out.handle.index = std::move(index);
  out.n = out.handle.index->size();
  out.points = out.handle.index->point_count();
  out.full = out.handle.index->full_answer();
  return out;
}

WindowLisResult Solver::solve(const WindowLisQuery& req) {
  return solve_on(options_.backend, req);
}

WindowLisResult Solver::solve_on(SolverBackend /*backend*/,
                                 const WindowLisQuery& req) {
  if (!req.handle.valid()) {
    throw InvalidRequestError("WindowLisQuery.handle is empty");
  }
  if (req.handle.index->lcs_mode()) {
    throw InvalidRequestError(
        "WindowLisQuery.handle is a kSubstringLcs index (use "
        "SubstringLcsQuery)");
  }
  return {req.handle.index->window_lis_batch(req.windows)};
}

SubstringLcsResult Solver::solve(const SubstringLcsQuery& req) {
  return solve_on(options_.backend, req);
}

SubstringLcsResult Solver::solve_on(SolverBackend /*backend*/,
                                    const SubstringLcsQuery& req) {
  if (!req.handle.valid()) {
    throw InvalidRequestError("SubstringLcsQuery.handle is empty");
  }
  if (!req.handle.index->lcs_mode()) {
    throw InvalidRequestError(
        "SubstringLcsQuery.handle is a kWindowLis index (use WindowLisQuery)");
  }
  return {req.handle.index->substring_lcs_batch(req.substrings)};
}

namespace {

/// monge::Error codes map 1:1 onto SolveStatus values.
SolveStatus status_of(const Error& e) {
  switch (e.code()) {
    case ErrorCode::kInvalidRequest:
      return SolveStatus::kInvalidRequest;
    case ErrorCode::kCodec:
      return SolveStatus::kCodec;
    case ErrorCode::kFault:
      return SolveStatus::kFault;
    case ErrorCode::kSpaceLimit:
      return SolveStatus::kSpaceLimit;
    case ErrorCode::kOverloaded:
      return SolveStatus::kOverloaded;
  }
  return SolveStatus::kInternalError;
}

}  // namespace

template <typename Result, typename Request>
TrySolveResult<Result> Solver::try_solve_impl(const Request& req) {
  TrySolveResult<Result> out;
  out.report.backend = options_.backend;

  // The recovery counters accumulate across requests on one cluster, so
  // the per-request delta is (after - before) — unless the request itself
  // re-provisioned the cluster, in which case the counters started at
  // zero and are already the delta.
  const mpc::Cluster* before_cluster = cluster_.get();
  const mpc::RecoveryStats before =
      cluster_ ? cluster_->stats().recovery : mpc::RecoveryStats{};
  const auto recovery_delta = [&]() {
    if (!cluster_) return mpc::RecoveryStats{};
    const mpc::RecoveryStats now = cluster_->stats().recovery;
    return cluster_.get() == before_cluster ? now - before : now;
  };
  // The owned engine outlives every request, so its representation
  // counters delta is a plain subtraction.
  const RepresentationStats rep_before = engine_.representation_stats();
  const auto representation_delta = [&]() {
    return engine_.representation_stats() - rep_before;
  };

  SolveStatus status = SolveStatus::kOk;
  std::string message;
  try {
    out.value = solve_on(options_.backend, req);
    out.report.recovery = recovery_delta();
    out.report.representation = representation_delta();
    return out;
  } catch (const Error& e) {
    status = status_of(e);
    message = e.what();
  } catch (const std::logic_error& e) {
    // MONGE_CHECK precondition failures: caller-facing validation.
    status = SolveStatus::kInvalidRequest;
    message = e.what();
  } catch (const std::exception& e) {
    status = SolveStatus::kInternalError;
    message = e.what();
  }
  out.report.status = status;
  out.report.message = message;
  out.report.recovery = recovery_delta();
  out.report.representation = representation_delta();

  // Graceful degradation: an MpcSim run killed by an unrecoverable fault
  // or a space overrun falls back to the Sequential backend. The failed
  // cluster is torn down — a crashed round leaves mailboxes/resident
  // state mid-flight, so the next MpcSim request must start clean.
  const bool degradable = options_.backend == SolverBackend::kMpcSim &&
                          (status == SolveStatus::kFault ||
                           status == SolveStatus::kSpaceLimit);
  if (!degradable) return out;
  cluster_.reset();
  cluster_cfg_ = mpc::MpcConfig{};
  try {
    out.value = solve_on(SolverBackend::kSequential, req);
    out.report.status = SolveStatus::kOk;
    out.report.backend = SolverBackend::kSequential;
    out.report.representation = representation_delta();
    out.report.degraded = true;
    out.report.message = std::string("MpcSim failed (") +
                         solve_status_name(status) + "): " + message +
                         "; degraded to sequential";
  } catch (const std::exception& e) {
    // Fallback failed too: keep the original classification, note both.
    out.report.message =
        message + " (sequential fallback also failed: " + e.what() + ")";
  }
  return out;
}

TrySolveResult<MultiplyResult> Solver::try_solve(const MultiplyRequest& req) {
  return try_solve_impl<MultiplyResult>(req);
}

TrySolveResult<LisResult> Solver::try_solve(const LisRequest& req) {
  return try_solve_impl<LisResult>(req);
}

TrySolveResult<LcsResult> Solver::try_solve(const LcsRequest& req) {
  return try_solve_impl<LcsResult>(req);
}

TrySolveResult<BuildIndexResult> Solver::try_solve(
    const BuildIndexRequest& req) {
  return try_solve_impl<BuildIndexResult>(req);
}

TrySolveResult<WindowLisResult> Solver::try_solve(const WindowLisQuery& req) {
  return try_solve_impl<WindowLisResult>(req);
}

TrySolveResult<SubstringLcsResult> Solver::try_solve(
    const SubstringLcsQuery& req) {
  return try_solve_impl<SubstringLcsResult>(req);
}

}  // namespace monge
