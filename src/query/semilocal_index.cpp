#include "query/semilocal_index.h"

#include <algorithm>
#include <atomic>
#include <bit>

#include "lcs/hunt_szymanski.h"
#include "lis/kernel.h"
#include "lis/sequential.h"
#include "monge/engine.h"
#include "util/check.h"

namespace monge::query {

namespace {

/// Process-unique index ids. Starts at 1 so 0 always means "no index"
/// (the empty QueryHandle in the API tier).
std::uint64_t next_index_id() {
  static std::atomic<std::uint64_t> counter{1};
  return counter.fetch_add(1, std::memory_order_relaxed);
}

}  // namespace

SemiLocalIndex SemiLocalIndex::build(std::span<const std::int32_t> kernel_rows,
                                     std::vector<std::int64_t> row_starts) {
  SemiLocalIndex idx;
  idx.n_ = static_cast<std::int64_t>(kernel_rows.size());
  idx.id_ = next_index_id();
  idx.row_starts_ = std::move(row_starts);
  if (idx.n_ == 0) return idx;  // every non-empty window is out of range

  // Heap-ordered merge tree over rows: leaves_ = bit_ceil(n) leaves, node k
  // covers rows [ (k - leaves_) ... ] at the leaf level and the union of
  // its children above. Sizes first (a leaf holds 1 column iff its row has
  // a kernel point), then one prefix-sum pass fixes the flattened offsets,
  // then leaves are filled and parents merged bottom-up with std::merge —
  // every level is O(n), the whole build O(n log n).
  idx.leaves_ = static_cast<std::int64_t>(
      std::bit_ceil(static_cast<std::uint64_t>(idx.n_)));
  const std::size_t nodes = static_cast<std::size_t>(2 * idx.leaves_);
  std::vector<std::int64_t> size(nodes, 0);
  for (std::int64_t r = 0; r < idx.n_; ++r) {
    if (kernel_rows[static_cast<std::size_t>(r)] != kNone) {
      size[static_cast<std::size_t>(idx.leaves_ + r)] = 1;
      ++idx.points_;
    }
  }
  for (std::int64_t k = idx.leaves_ - 1; k >= 1; --k) {
    size[static_cast<std::size_t>(k)] = size[static_cast<std::size_t>(2 * k)] +
                                        size[static_cast<std::size_t>(2 * k + 1)];
  }
  idx.node_off_.assign(nodes + 1, 0);
  for (std::size_t k = 1; k < nodes; ++k) {
    idx.node_off_[k + 1] = idx.node_off_[k] + size[k];
  }
  idx.pool_.resize(static_cast<std::size_t>(idx.node_off_[nodes]));
  for (std::int64_t r = 0; r < idx.n_; ++r) {
    const std::int32_t c = kernel_rows[static_cast<std::size_t>(r)];
    if (c != kNone) {
      idx.pool_[static_cast<std::size_t>(
          idx.node_off_[static_cast<std::size_t>(idx.leaves_ + r)])] = c;
    }
  }
  for (std::int64_t k = idx.leaves_ - 1; k >= 1; --k) {
    const auto at = [&](std::int64_t node) {
      return idx.pool_.begin() +
             static_cast<std::ptrdiff_t>(
                 idx.node_off_[static_cast<std::size_t>(node)]);
    };
    std::merge(at(2 * k), at(2 * k + 1), at(2 * k + 1), at(2 * k + 2), at(k));
  }
  return idx;
}

SemiLocalIndex SemiLocalIndex::from_sequence(
    std::span<const std::int64_t> seq) {
  return from_sequence(seq, default_seaweed_engine());
}

SemiLocalIndex SemiLocalIndex::from_sequence(std::span<const std::int64_t> seq,
                                             SeaweedEngine& engine) {
  const Perm kernel = lis::lis_kernel(lis::rank_reduce_strict(seq), engine);
  return build(kernel.row_to_col(), {});
}

SemiLocalIndex SemiLocalIndex::from_kernel(const Perm& kernel) {
  MONGE_CHECK_MSG(kernel.rows() == kernel.cols(),
                  "SemiLocalIndex::from_kernel requires a square kernel, got "
                      << kernel.rows() << "x" << kernel.cols());
  return build(kernel.row_to_col(), {});
}

SemiLocalIndex SemiLocalIndex::from_lcs_pair(std::span<const std::int64_t> s,
                                             std::span<const std::int64_t> t) {
  return from_lcs_pair(s, t, default_seaweed_engine());
}

SemiLocalIndex SemiLocalIndex::from_lcs_pair(std::span<const std::int64_t> s,
                                             std::span<const std::int64_t> t,
                                             SeaweedEngine& engine) {
  const lcs::HsOccurrences occ(t);
  const auto seq = occ.match_sequence(s);
  MONGE_CHECK_MSG(
      static_cast<std::int64_t>(seq.size()) <= kSeaweedEngineMaxN,
      "SemiLocalIndex::from_lcs_pair match sequence has "
          << seq.size() << " entries, above the engine limit "
          << kSeaweedEngineMaxN);
  const Perm kernel = lis::lis_kernel(lis::rank_reduce_strict(seq), engine);
  return build(kernel.row_to_col(), occ.match_row_starts(s));
}

SemiLocalIndex SemiLocalIndex::from_lcs_kernel(
    const Perm& kernel, std::vector<std::int64_t> row_starts) {
  MONGE_CHECK_MSG(kernel.rows() == kernel.cols(),
                  "SemiLocalIndex::from_lcs_kernel requires a square kernel");
  MONGE_CHECK_MSG(!row_starts.empty() && row_starts.front() == 0 &&
                      row_starts.back() == kernel.rows() &&
                      std::is_sorted(row_starts.begin(), row_starts.end()),
                  "SemiLocalIndex::from_lcs_kernel row_starts must ascend "
                  "from 0 to kernel.rows()");
  return build(kernel.row_to_col(), std::move(row_starts));
}

std::int64_t SemiLocalIndex::dominance_count(std::int64_t l,
                                             std::int64_t r_col) const {
  // Decompose rows [l, n) into O(log n) heap nodes; each contributes the
  // number of its columns <= r_col by one binary search.
  std::int64_t count = 0;
  const auto node_hits = [&](std::int64_t k) {
    const auto lo = pool_.begin() + static_cast<std::ptrdiff_t>(
                                        node_off_[static_cast<std::size_t>(k)]);
    const auto hi =
        pool_.begin() +
        static_cast<std::ptrdiff_t>(node_off_[static_cast<std::size_t>(k) + 1]);
    return static_cast<std::int64_t>(
        std::upper_bound(lo, hi, static_cast<std::int32_t>(r_col)) - lo);
  };
  for (std::int64_t a = leaves_ + l, b = leaves_ + n_; a < b;
       a >>= 1, b >>= 1) {
    if (a & 1) count += node_hits(a++);
    if (b & 1) count += node_hits(--b);
  }
  return count;
}

std::int64_t SemiLocalIndex::window_lis(std::int64_t l, std::int64_t r) const {
  // Empty windows (l > r, including r == -1) are legitimate and answer 0 —
  // the same contract as lis::kernel_window_lis.
  if (l > r) return 0;
  MONGE_CHECK_MSG(l >= 0 && r < n_, "window [" << l << ", " << r
                                               << "] out of range for n="
                                               << n_);
  return (r - l + 1) - dominance_count(l, r);
}

std::vector<std::int64_t> SemiLocalIndex::window_lis_batch(
    std::span<const std::pair<std::int64_t, std::int64_t>> windows) const {
  std::vector<std::int64_t> out;
  out.reserve(windows.size());
  for (const auto& [l, r] : windows) out.push_back(window_lis(l, r));
  return out;
}

std::int64_t SemiLocalIndex::substring_lcs(std::int64_t i,
                                           std::int64_t j) const {
  MONGE_CHECK_MSG(lcs_mode(),
                  "substring_lcs requires an LCS-mode index (from_lcs_pair)");
  if (i > j) return 0;
  MONGE_CHECK_MSG(i >= 0 && j < source_rows(),
                  "substring [" << i << ", " << j << "] out of range for |s|="
                                << source_rows());
  // s[i..j]'s matches are the contiguous match window
  // [row_starts[i], row_starts[j+1]); its window-LIS is the LCS.
  return window_lis(row_starts_[static_cast<std::size_t>(i)],
                    row_starts_[static_cast<std::size_t>(j) + 1] - 1);
}

std::vector<std::int64_t> SemiLocalIndex::substring_lcs_batch(
    std::span<const std::pair<std::int64_t, std::int64_t>> substrings) const {
  std::vector<std::int64_t> out;
  out.reserve(substrings.size());
  for (const auto& [i, j] : substrings) out.push_back(substring_lcs(i, j));
  return out;
}

std::int64_t SemiLocalIndex::memory_bytes() const {
  return static_cast<std::int64_t>(pool_.capacity() * sizeof(std::int32_t) +
                                   node_off_.capacity() * sizeof(std::int64_t) +
                                   row_starts_.capacity() *
                                       sizeof(std::int64_t));
}

}  // namespace monge::query
