// monge::query::SemiLocalIndex — precompute-once, query-millions serving of
// window-LIS and substring-LCS from one persisted seaweed permutation.
//
// Every LisRequest/LcsRequest used to discard the semi-local kernel after a
// single batch of answers and re-run the whole seaweed machinery on the
// next request. The index keeps the implicit semi-local distribution
// instead: building it runs the existing kernel builders
// (lis::lis_kernel / lis::lis_kernel_reference / lis::mpc_lis — all
// bit-identical) exactly ONCE, then layers a range-dominance counting
// structure over the kernel points in the style of the submatrix-maximum
// structures of Gawrychowski–Mozes–Weimann (arXiv 1307.2313), so any
// window query answers online in polylog time without touching the engine
// again. The static-index design point is deliberate: the dynamic-LIS
// lower bounds of Gawrychowski–Janczewski (arXiv 2102.11797) rule out
// polylog per-update maintenance, so "index once, serve many" is the
// scalable regime.
//
// Query identities (src/lis/kernel.h):
//   LIS(seq[l..r])   = (r − l + 1) − KΣ(l, r + 1)
//   KΣ(l, r + 1)     = #{kernel points (row, col) : row >= l, col <= r}
// The dominance count is served by a merge tree (a merge-sort tree over
// the kernel rows, each node holding the sorted columns of its row range,
// flattened into one contiguous pool): O(n log n) space built in
// O(n log n), O(log² n) per query — against O(n) per query for the
// kernel-scan kernel_window_lis, and a full kernel rebuild per request
// for the pre-index Solver flow (bench/bench_query.cpp measures the gap).
//
// Substring-LCS rides the same structure. The Hunt–Szymanski match
// sequence of (s, t) is ordered (i asc, j desc), so the matches of any
// s-substring s[i..j] are one CONTIGUOUS window of it, and
//   LCS(s[i..j], t) = window-LIS of the match window —
// the decreasing-j-within-a-row trick makes strictly increasing
// subsequences pick at most one match per s row, a fact that is oblivious
// to which rows the window keeps. An LCS-mode index stores the kernel of
// the rank-reduced match sequence plus the |s|+1 row-start offsets
// (lcs::HsOccurrences::match_row_starts) that translate substring
// endpoints to match-window endpoints.
//
// Immutability & sharing: an index never changes after construction and
// every query member is const — concurrent queries from any number of
// threads are safe. The API tier hands indexes around as
// monge::QueryHandle (api/request.h), a shared_ptr plus the index's
// process-unique id(); the SolverService keeps handles in its digest-keyed
// result cache, so identical BuildIndexRequests dedupe onto one shared
// index.
#pragma once

#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "monge/permutation.h"

namespace monge {
class SeaweedEngine;
}

namespace monge::query {

class SemiLocalIndex {
 public:
  /// Window-LIS index of a sequence (duplicates allowed; strict LIS):
  /// rank-reduces, builds the semi-local kernel through ONE
  /// lis::lis_kernel run on the thread-local default engine, and erects
  /// the merge tree. O(n log² n) build, O(n log n) space retained.
  ///
  /// @param seq the sequence to serve window-LIS queries over.
  /// @return the immutable index.
  static SemiLocalIndex from_sequence(std::span<const std::int64_t> seq);

  /// Same, with the kernel build running on the caller's engine (reusing
  /// its arena and striping across its pool when one is configured).
  ///
  /// @param seq the sequence to serve window-LIS queries over.
  /// @param engine the engine the kernel build runs on.
  /// @return the immutable index.
  static SemiLocalIndex from_sequence(std::span<const std::int64_t> seq,
                                      SeaweedEngine& engine);

  /// Window-LIS index from an already-built kernel (lis::lis_kernel and
  /// friends), for callers that ran the seaweed product themselves — the
  /// Solver's MpcSim route hands lis::mpc_lis kernels through here.
  ///
  /// @param kernel an n×n kernel sub-permutation (validated square).
  /// @return the immutable index.
  static SemiLocalIndex from_kernel(const Perm& kernel);

  /// Substring-LCS index of the pair (s, t): serves LCS(s[i..j], t) for
  /// every substring of s against the fixed text t. Builds the
  /// Hunt–Szymanski match sequence (its size is the indexed n — worst
  /// case |s|·|t|, the paper's m = n^{1+δ} regime; must be
  /// <= kSeaweedEngineMaxN), the kernel of its rank reduction, and the
  /// row-start translation table.
  ///
  /// @param s the query side; substrings of s are the query domain.
  /// @param t the fixed text.
  /// @return the immutable index.
  static SemiLocalIndex from_lcs_pair(std::span<const std::int64_t> s,
                                      std::span<const std::int64_t> t);

  /// Same, with the kernel build running on the caller's engine.
  ///
  /// @param s the query side; substrings of s are the query domain.
  /// @param t the fixed text.
  /// @param engine the engine the kernel build runs on.
  /// @return the immutable index.
  static SemiLocalIndex from_lcs_pair(std::span<const std::int64_t> s,
                                      std::span<const std::int64_t> t,
                                      SeaweedEngine& engine);

  /// Substring-LCS index from a pre-built match-sequence kernel plus the
  /// row-start offsets (lcs::HsOccurrences::match_row_starts(s)): the
  /// Solver's MpcSim route builds the kernel on the cluster and adapts it
  /// here. row_starts must have source_rows + 1 ascending entries ending
  /// at kernel.rows().
  ///
  /// @param kernel the kernel of the rank-reduced match sequence.
  /// @param row_starts |s| + 1 offsets; s-row i's matches are
  ///     [row_starts[i], row_starts[i+1]) in the match sequence.
  /// @return the immutable index.
  static SemiLocalIndex from_lcs_kernel(const Perm& kernel,
                                        std::vector<std::int64_t> row_starts);

  /// LIS(seq[l..r]) in O(log² n) — bit-identical to
  /// lis::kernel_window_lis on the same kernel (pinned against the
  /// lis::lis_window_batch patience oracle in tests/test_query.cpp).
  ///
  /// @param l window start (inclusive).
  /// @param r window end (inclusive); l > r is a legitimate empty window
  ///     and answers 0, even with endpoints outside [0, size()).
  /// @return the LIS length of seq[l..r].
  std::int64_t window_lis(std::int64_t l, std::int64_t r) const;

  /// One window_lis per entry, served online (no offline sweep, no state):
  /// O(q log² n) total.
  ///
  /// @param windows (l, r) inclusive windows; empty (l > r) windows
  ///     answer 0.
  /// @return one LIS length per window, in input order.
  std::vector<std::int64_t> window_lis_batch(
      std::span<const std::pair<std::int64_t, std::int64_t>> windows) const;

  /// LCS(s[i..j], t) in O(log² m), m the match count — LCS mode only
  /// (throws otherwise). Matches lcs::lcs_dp on the substring.
  ///
  /// @param i substring start in s (inclusive).
  /// @param j substring end in s (inclusive); i > j is a legitimate empty
  ///     substring and answers 0, even with endpoints outside
  ///     [0, source_rows()).
  /// @return the LCS length of (s[i..j], t).
  std::int64_t substring_lcs(std::int64_t i, std::int64_t j) const;

  /// One substring_lcs per entry, in input order — LCS mode only.
  ///
  /// @param substrings (i, j) inclusive substrings of s; empty (i > j)
  ///     entries answer 0.
  /// @return one LCS length per substring, in input order.
  std::vector<std::int64_t> substring_lcs_batch(
      std::span<const std::pair<std::int64_t, std::int64_t>> substrings) const;

  /// The full-range answer in O(1): LIS of the whole sequence, or (in LCS
  /// mode) LCS(s, t) — n − point_count().
  std::int64_t full_answer() const { return n_ - points_; }

  /// Indexed length n: the sequence length, or the match-sequence length
  /// in LCS mode.
  std::int64_t size() const { return n_; }
  /// Kernel points retained by the merge tree.
  std::int64_t point_count() const { return points_; }
  /// True for from_lcs_pair / from_lcs_kernel indexes.
  bool lcs_mode() const { return !row_starts_.empty(); }
  /// |s| in LCS mode (the substring query domain), 0 otherwise.
  std::int64_t source_rows() const {
    return lcs_mode() ? static_cast<std::int64_t>(row_starts_.size()) - 1 : 0;
  }
  /// Process-unique id, never reused — the API tier's digest/cache key
  /// component for query requests against this index.
  std::uint64_t id() const { return id_; }
  /// Retained heap footprint of the dominance structure, in bytes.
  std::int64_t memory_bytes() const;

 private:
  SemiLocalIndex() = default;

  /// Shared tail of every factory: takes the kernel's row→col array and
  /// builds the flattened merge tree.
  static SemiLocalIndex build(std::span<const std::int32_t> kernel_rows,
                              std::vector<std::int64_t> row_starts);

  /// KΣ(l, r + 1): kernel points with row >= l and col <= r_col, by
  /// decomposing [l, n) into O(log n) merge-tree nodes and binary-searching
  /// each node's sorted column list.
  std::int64_t dominance_count(std::int64_t l, std::int64_t r_col) const;

  std::int64_t n_ = 0;       ///< indexed rows (= kernel rows).
  std::int64_t points_ = 0;  ///< kernel points in the tree.
  std::int64_t leaves_ = 0;  ///< merge-tree leaf count (bit_ceil(n_)).
  std::uint64_t id_ = 0;
  /// Flattened merge tree: node k (1-indexed heap order, leaves_ leaves)
  /// owns pool_[node_off_[k], node_off_[k+1]), its row range's columns in
  /// ascending order.
  std::vector<std::int32_t> pool_;
  std::vector<std::int64_t> node_off_;
  /// LCS mode: |s| + 1 match-sequence offsets; empty in window-LIS mode.
  std::vector<std::int64_t> row_starts_;
};

}  // namespace monge::query
