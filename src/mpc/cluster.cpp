#include "mpc/cluster.h"

#include <algorithm>

namespace monge::mpc {

std::int64_t MachineCtx::machines() const { return cluster_->machines(); }

std::span<const Message> MachineCtx::inbox() const {
  return cluster_->mailboxes_[static_cast<std::size_t>(id_)];
}

void MachineCtx::send(std::int64_t to, std::int64_t tag,
                      std::vector<Word> payload) {
  MONGE_CHECK_MSG(to >= 0 && to < cluster_->machines(),
                  "send to invalid machine " << to);
  Message m;
  m.from = id_;
  m.to = to;
  m.tag = tag;
  m.payload = std::move(payload);
  outbox_.push_back(std::move(m));
}

Cluster::Cluster(MpcConfig cfg) : cfg_(cfg), pool_(cfg.threads) {
  MONGE_CHECK(cfg_.num_machines >= 1);
  MONGE_CHECK(cfg_.space_words >= 1);
  mailboxes_.resize(static_cast<std::size_t>(cfg_.num_machines));
}

void Cluster::check_space(std::int64_t machine, std::int64_t words,
                          const char* kind) const {
  if (cfg_.strict && words > cfg_.space_words) {
    throw SpaceLimitError(machine, words, cfg_.space_words, kind);
  }
}

std::int64_t Cluster::register_resident(
    std::function<std::int64_t(std::int64_t)> auditor) {
  const std::int64_t id = next_auditor_id_++;
  auditors_[id] = std::move(auditor);
  return id;
}

void Cluster::unregister_resident(std::int64_t id) { auditors_.erase(id); }

std::int64_t Cluster::resident_words(std::int64_t machine) const {
  std::int64_t total = 0;
  for (const auto& [id, fn] : auditors_) total += fn(machine);
  return total;
}

void Cluster::run_round(const std::function<void(MachineCtx&)>& fn) {
  const std::int64_t m = machines();

  // Run the local phase of every machine concurrently. Each machine gets a
  // private context; message routing happens after the barrier, so delivery
  // order is deterministic no matter how the pool schedules machines.
  std::vector<MachineCtx> ctxs;
  ctxs.reserve(static_cast<std::size_t>(m));
  for (std::int64_t i = 0; i < m; ++i) ctxs.push_back(MachineCtx(this, i));

  pool_.parallel_for(m, [&](std::int64_t i) {
    fn(ctxs[static_cast<std::size_t>(i)]);
  });

  // Space accounting: a machine's traffic this round is what it sends plus
  // what it receives; both are bounded by s in the model. Each message
  // carries a 2-word envelope (from, tag).
  std::vector<std::int64_t> incoming_words(static_cast<std::size_t>(m), 0);
  for (std::int64_t i = 0; i < m; ++i) {
    std::int64_t out_words = 0;
    for (const Message& msg : ctxs[static_cast<std::size_t>(i)].outbox_) {
      out_words += static_cast<std::int64_t>(msg.payload.size()) + 2;
    }
    check_space(i, out_words, "outgoing traffic of");
    stats_.total_comm_words += out_words;
  }

  // Route: clear old inboxes, deliver new messages sorted by sender.
  for (auto& box : mailboxes_) box.clear();
  for (std::int64_t i = 0; i < m; ++i) {
    for (Message& msg : ctxs[static_cast<std::size_t>(i)].outbox_) {
      const auto w = static_cast<std::int64_t>(msg.payload.size()) + 2;
      incoming_words[static_cast<std::size_t>(msg.to)] += w;
      mailboxes_[static_cast<std::size_t>(msg.to)].push_back(std::move(msg));
    }
  }

  // Peak accounting after delivery: resident + inbox.
  for (std::int64_t i = 0; i < m; ++i) {
    check_space(i, incoming_words[static_cast<std::size_t>(i)],
                "incoming traffic of");
    const std::int64_t resident = resident_words(i);
    check_space(i, resident, "resident data of");
    stats_.max_resident_words = std::max(stats_.max_resident_words, resident);
    stats_.max_machine_words =
        std::max(stats_.max_machine_words,
                 resident + incoming_words[static_cast<std::size_t>(i)]);
  }
  ++stats_.rounds;
}

}  // namespace monge::mpc
