#include "mpc/cluster.h"

#include <algorithm>
#include <exception>

namespace monge::mpc {

namespace {

void validate_config(const MpcConfig& cfg) {
  const auto require = [](bool ok, const std::string& msg) {
    if (!ok) throw InvalidRequestError("MpcConfig: " + msg);
  };
  require(cfg.num_machines >= 1, "num_machines must be >= 1, got " +
                                     std::to_string(cfg.num_machines));
  require(cfg.space_words >= 1,
          "space_words must be >= 1, got " + std::to_string(cfg.space_words));
  require(cfg.checkpoint_interval >= 1,
          "checkpoint_interval must be >= 1, got " +
              std::to_string(cfg.checkpoint_interval));
  const FaultPlan& fp = cfg.faults;
  for (const double p : {fp.crash_prob, fp.straggle_prob, fp.drop_prob,
                         fp.duplicate_prob, fp.corrupt_prob}) {
    // NaN fails both comparisons and is rejected alongside out-of-range.
    require(p >= 0.0 && p <= 1.0,
            "fault probabilities must be in [0, 1], got " + std::to_string(p));
  }
  require(fp.max_round_retries >= 0, "FaultPlan.max_round_retries must be "
                                     ">= 0, got " +
                                         std::to_string(fp.max_round_retries));
  for (const ScheduledFault& f : fp.scheduled) {
    require(f.round >= 0, "scheduled fault round must be >= 0, got " +
                              std::to_string(f.round));
    require(f.machine >= 0 && f.machine < cfg.num_machines,
            "scheduled fault machine " + std::to_string(f.machine) +
                " outside [0, " + std::to_string(cfg.num_machines) + ")");
  }
}

bool scheduled_hit(const FaultPlan& fp, FaultKind kind, std::int64_t round,
                   std::int64_t machine) {
  for (const ScheduledFault& f : fp.scheduled) {
    if (f.kind == kind && f.round == round && f.machine == machine) {
      return true;
    }
  }
  return false;
}

}  // namespace

std::int64_t MachineCtx::machines() const { return cluster_->machines(); }

std::span<const Message> MachineCtx::inbox() const {
  return cluster_->mailboxes_[static_cast<std::size_t>(id_)];
}

void MachineCtx::send(std::int64_t to, std::int64_t tag,
                      std::vector<Word> payload) {
  MONGE_CHECK_MSG(to >= 0 && to < cluster_->machines(),
                  "send to invalid machine " << to);
  Message m;
  m.from = id_;
  m.to = to;
  m.tag = tag;
  m.payload = std::move(payload);
  outbox_.push_back(std::move(m));
}

Cluster::Cluster(MpcConfig cfg) : cfg_(std::move(cfg)), pool_(cfg_.threads) {
  validate_config(cfg_);
  mailboxes_.resize(static_cast<std::size_t>(cfg_.num_machines));
}

void Cluster::check_space(std::int64_t machine, std::int64_t words,
                          const char* kind) const {
  if (cfg_.strict && words > cfg_.space_words) {
    throw SpaceLimitError(machine, words, cfg_.space_words, kind);
  }
}

std::int64_t Cluster::register_resident(ResidentHooks hooks) {
  MONGE_CHECK_MSG(hooks.words != nullptr,
                  "ResidentHooks.words is mandatory");
  const std::int64_t id = next_auditor_id_++;
  auditors_[id] = std::move(hooks);
  return id;
}

std::int64_t Cluster::register_resident(
    std::function<std::int64_t(std::int64_t)> auditor) {
  ResidentHooks hooks;
  hooks.words = std::move(auditor);
  return register_resident(std::move(hooks));
}

void Cluster::unregister_resident(std::int64_t id) { auditors_.erase(id); }

std::int64_t Cluster::resident_words(std::int64_t machine) const {
  std::int64_t total = 0;
  for (const auto& [id, hooks] : auditors_) total += hooks.words(machine);
  return total;
}

void Cluster::take_checkpoint(std::int64_t round) {
  const std::int64_t m = machines();
  snapshot_.round = round;
  snapshot_.complete = true;
  snapshot_.mailboxes = mailboxes_;
  snapshot_.residents.clear();
  std::int64_t words = 0;
  for (const auto& box : snapshot_.mailboxes) {
    for (const Message& msg : box) {
      words += static_cast<std::int64_t>(msg.payload.size()) + 2;
    }
  }
  for (const auto& [id, hooks] : auditors_) {
    if (!hooks.checkpoint || !hooks.restore) {
      snapshot_.complete = false;
      continue;
    }
    auto& blobs = snapshot_.residents[id];
    blobs.resize(static_cast<std::size_t>(m));
    for (std::int64_t i = 0; i < m; ++i) {
      blobs[static_cast<std::size_t>(i)] = hooks.checkpoint(i);
      words +=
          static_cast<std::int64_t>(blobs[static_cast<std::size_t>(i)].size());
    }
  }
  ++stats_.recovery.checkpoints;
  stats_.recovery.checkpoint_words += words;
}

std::int64_t Cluster::restore_checkpoint() {
  mailboxes_ = snapshot_.mailboxes;
  std::int64_t words = 0;
  for (const auto& [id, blobs] : snapshot_.residents) {
    const auto it = auditors_.find(id);
    if (it == auditors_.end()) continue;  // destroyed since the snapshot
    for (std::int64_t i = 0; i < machines(); ++i) {
      const auto& blob = blobs[static_cast<std::size_t>(i)];
      it->second.restore(i, blob);
      words += static_cast<std::int64_t>(blob.size());
    }
  }
  return words;
}

std::vector<std::int64_t> Cluster::crashed_machines(
    std::int64_t round, std::int64_t attempt) const {
  const FaultPlan& fp = cfg_.faults;
  std::vector<std::int64_t> out;
  for (std::int64_t i = 0; i < machines(); ++i) {
    bool crashed =
        fp.crash_prob > 0.0 &&
        fault_uniform(fp.seed, FaultKind::kCrash, round, attempt, i) <
            fp.crash_prob;
    // Scheduled crashes are one-shot: they strike the first execution only.
    if (!crashed && attempt == 0) {
      crashed = scheduled_hit(fp, FaultKind::kCrash, round, i);
    }
    if (crashed) out.push_back(i);
  }
  return out;
}

void Cluster::inject_message_faults(const Message& msg, std::int64_t round,
                                    std::int64_t seq, bool* retransmitted) {
  const FaultPlan& fp = cfg_.faults;
  const auto w = static_cast<std::int64_t>(msg.payload.size()) + 2;
  const auto hit = [&](FaultKind kind, double prob) {
    return (prob > 0.0 &&
            fault_uniform(fp.seed, kind, round, seq, msg.from, msg.to) <
                prob) ||
           scheduled_hit(fp, kind, round, msg.from);
  };
  if (hit(FaultKind::kDrop, fp.drop_prob)) {
    // Lost in flight; the transport detects the sequence gap and
    // retransmits, so delivery is unchanged and the resend is recovery cost.
    ++stats_.recovery.messages_dropped;
    stats_.recovery.recovery_comm_words += w;
    *retransmitted = true;
  }
  if (hit(FaultKind::kDuplicate, fp.duplicate_prob)) {
    // Arrives twice; sequence numbers unmask the copy, which is discarded.
    ++stats_.recovery.messages_duplicated;
    stats_.recovery.recovery_comm_words += w;
  }
  if (hit(FaultKind::kCorrupt, fp.corrupt_prob) && !msg.payload.empty()) {
    // Damage a copy in flight and prove the checksum catches it; the clean
    // payload is then retransmitted, so what the receiver decodes is
    // bit-identical to the fault-free run.
    std::vector<Word> damaged = msg.payload;
    corrupt_payload(damaged, fp.seed, round, seq * machines() + msg.from);
    MONGE_CHECK(payload_checksum(damaged) != payload_checksum(msg.payload));
    ++stats_.recovery.messages_corrupted;
    stats_.recovery.recovery_comm_words += w;
    *retransmitted = true;
  }
}

void Cluster::run_round(const std::function<void(MachineCtx&)>& fn) {
  const std::int64_t m = machines();
  const std::int64_t round = stats_.rounds;
  const FaultPlan& fp = cfg_.faults;
  const bool chaos = fp.enabled();

  if (chaos && round % cfg_.checkpoint_interval == 0) take_checkpoint(round);

  // Run the local phase of every machine concurrently. Each machine gets a
  // private context; message routing happens after the barrier, so delivery
  // order is deterministic no matter how the pool schedules machines.
  std::vector<MachineCtx> ctxs;
  ctxs.reserve(static_cast<std::size_t>(m));
  for (std::int64_t i = 0; i < m; ++i) ctxs.push_back(MachineCtx(this, i));

  // Machine errors are collected per machine, never rethrown across the
  // pool, so the surfaced exception is deterministic — lowest machine id
  // wins regardless of which worker thread hit its error first.
  std::vector<std::exception_ptr> errors(static_cast<std::size_t>(m));

  for (std::int64_t attempt = 0;; ++attempt) {
    if (attempt > 0) {
      // Coordinated rollback: every machine returns to the round-entry
      // snapshot; the aborted attempt's traffic and the restore traffic
      // are written off to the recovery accounts.
      std::int64_t wasted = 0;
      for (auto& ctx : ctxs) {
        for (const Message& msg : ctx.outbox_) {
          wasted += static_cast<std::int64_t>(msg.payload.size()) + 2;
        }
        ctx.outbox_.clear();
      }
      stats_.recovery.recovery_comm_words += wasted + restore_checkpoint();
      ++stats_.recovery.recovery_rounds;
      std::fill(errors.begin(), errors.end(), nullptr);
    }
    pool_.parallel_for(m, [&](std::int64_t i) {
      try {
        fn(ctxs[static_cast<std::size_t>(i)]);
      } catch (...) {
        errors[static_cast<std::size_t>(i)] = std::current_exception();
      }
    });
    if (!chaos) break;
    const std::vector<std::int64_t> crashed = crashed_machines(round, attempt);
    if (crashed.empty()) break;
    if (snapshot_.round != round) {
      throw FaultError(
          crashed.front(), round,
          "crash in a round with no fresh checkpoint (checkpoint_interval " +
              std::to_string(cfg_.checkpoint_interval) +
              "): a round cannot be replayed once its closure returned");
    }
    if (!snapshot_.complete) {
      throw FaultError(crashed.front(), round,
                       "crash while a resident structure without "
                       "checkpoint/restore hooks is registered");
    }
    if (attempt >= fp.max_round_retries) {
      throw FaultError(crashed.front(), round,
                       "crash retry budget (" +
                           std::to_string(fp.max_round_retries) +
                           ") exhausted");
    }
    stats_.recovery.crashes_recovered +=
        static_cast<std::int64_t>(crashed.size());
  }

  for (std::int64_t i = 0; i < m; ++i) {
    if (errors[static_cast<std::size_t>(i)]) {
      std::rethrow_exception(errors[static_cast<std::size_t>(i)]);
    }
  }

  // Space accounting: a machine's traffic this round is what it sends plus
  // what it receives; both are bounded by s in the model. Each message
  // carries a 2-word envelope (from, tag).
  std::vector<std::int64_t> incoming_words(static_cast<std::size_t>(m), 0);
  for (std::int64_t i = 0; i < m; ++i) {
    std::int64_t out_words = 0;
    for (const Message& msg : ctxs[static_cast<std::size_t>(i)].outbox_) {
      out_words += static_cast<std::int64_t>(msg.payload.size()) + 2;
    }
    check_space(i, out_words, "outgoing traffic of");
    stats_.total_comm_words += out_words;
  }

  // Route: clear old inboxes, deliver new messages sorted by sender. With
  // chaos on, drop/duplicate/corrupt events are injected per message and
  // masked by the simulated reliable transport — the delivered payloads
  // are always pristine; only the recovery accounts move.
  for (auto& box : mailboxes_) box.clear();
  bool retransmitted = false;
  for (std::int64_t i = 0; i < m; ++i) {
    std::int64_t seq = 0;
    for (Message& msg : ctxs[static_cast<std::size_t>(i)].outbox_) {
      const auto w = static_cast<std::int64_t>(msg.payload.size()) + 2;
      if (chaos) inject_message_faults(msg, round, seq, &retransmitted);
      ++seq;
      incoming_words[static_cast<std::size_t>(msg.to)] += w;
      mailboxes_[static_cast<std::size_t>(msg.to)].push_back(std::move(msg));
    }
  }
  if (retransmitted) ++stats_.recovery.recovery_rounds;

  // Stragglers cost no correctness — the round barrier absorbs the delay —
  // but they are observable, so the plan's events are counted.
  if (chaos) {
    for (std::int64_t i = 0; i < m; ++i) {
      const bool straggles =
          (fp.straggle_prob > 0.0 &&
           fault_uniform(fp.seed, FaultKind::kStraggle, round, 0, i) <
               fp.straggle_prob) ||
          scheduled_hit(fp, FaultKind::kStraggle, round, i);
      if (straggles) ++stats_.recovery.straggler_delays;
    }
  }

  // Peak accounting after delivery: resident + inbox.
  for (std::int64_t i = 0; i < m; ++i) {
    check_space(i, incoming_words[static_cast<std::size_t>(i)],
                "incoming traffic of");
    const std::int64_t resident = resident_words(i);
    check_space(i, resident, "resident data of");
    stats_.max_resident_words = std::max(stats_.max_resident_words, resident);
    stats_.max_machine_words =
        std::max(stats_.max_machine_words,
                 resident + incoming_words[static_cast<std::size_t>(i)]);
  }
  ++stats_.rounds;
}

}  // namespace monge::mpc
