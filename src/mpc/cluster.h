// The MPC cluster simulator.
//
// Computation proceeds in rounds (§1.1): in a round every machine runs a
// local function over its resident data and inbox, and emits messages; the
// runtime routes the messages, which become the inboxes of the next round.
// The simulator
//   * counts rounds — the MPC complexity measure every benchmark reports,
//   * accounts communication and resident space per machine per round and
//     (in strict mode) throws SpaceLimitError when the s-word budget is
//     exceeded — this is how the fully-scalability claims are *measured*,
//   * runs machine-local work on a thread pool, with deterministic message
//     delivery (sorted by sender) regardless of scheduling.
//
// Messages are flat arrays of 64-bit words; typed helpers pack/unpack
// trivially-copyable structs through the shared codec in util/codec.h.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

#include "mpc/config.h"
#include "util/check.h"
#include "util/codec.h"
#include "util/thread_pool.h"

namespace monge::mpc {

using Word = std::int64_t;

/// Thrown in strict mode when a machine exceeds its space budget.
class SpaceLimitError : public std::runtime_error {
 public:
  SpaceLimitError(std::int64_t machine, std::int64_t words,
                  std::int64_t limit, const char* what_kind)
      : std::runtime_error("machine " + std::to_string(machine) + " " +
                           what_kind + " " + std::to_string(words) +
                           " words exceeds space budget " +
                           std::to_string(limit)),
        machine_(machine),
        words_(words),
        limit_(limit) {}

  std::int64_t machine() const { return machine_; }
  std::int64_t words() const { return words_; }
  std::int64_t limit() const { return limit_; }

 private:
  std::int64_t machine_, words_, limit_;
};

struct Message {
  std::int64_t from = 0;
  std::int64_t to = 0;
  std::int64_t tag = 0;
  std::vector<Word> payload;

  /// Decodes the payload as an array of T (trivially copyable, packed by
  /// send_items through the util/codec.h word codec).
  template <typename T>
  std::vector<T> decode() const {
    return util::unpack_words<T>(payload);
  }
};

struct ClusterStats {
  std::int64_t rounds = 0;
  std::int64_t total_comm_words = 0;
  /// Peak over rounds and machines of inbox + outbox + resident words.
  std::int64_t max_machine_words = 0;
  /// Peak resident (registered DistVector shards) alone.
  std::int64_t max_resident_words = 0;
};

class Cluster;

/// Handle a machine uses inside a round to read its inbox and send.
class MachineCtx {
 public:
  std::int64_t id() const { return id_; }
  std::int64_t machines() const;
  std::span<const Message> inbox() const;

  void send(std::int64_t to, std::int64_t tag, std::vector<Word> payload);

  /// Typed send: packs an array of T into words (util/codec.h).
  template <typename T>
  void send_items(std::int64_t to, std::int64_t tag, std::span<const T> items) {
    send(to, tag, util::pack_words(items));
  }

 private:
  friend class Cluster;
  MachineCtx(Cluster* cluster, std::int64_t id) : cluster_(cluster), id_(id) {}

  Cluster* cluster_;
  std::int64_t id_;
  std::vector<Message> outbox_;
};

class Cluster {
 public:
  explicit Cluster(MpcConfig cfg);

  std::int64_t machines() const { return cfg_.num_machines; }
  std::int64_t space_words() const { return cfg_.space_words; }
  const MpcConfig& config() const { return cfg_; }
  const ClusterStats& stats() const { return stats_; }
  std::int64_t rounds() const { return stats_.rounds; }

  /// Executes one MPC round: fn runs once per machine (in parallel), then
  /// outgoing messages are validated against the space budget and routed.
  void run_round(const std::function<void(MachineCtx&)>& fn);

  /// Resets round/communication statistics (not mailboxes).
  void reset_stats() { stats_ = ClusterStats{}; }

  /// Registers a resident-space auditor (used by DistVector); returns an id
  /// for unregistering. The auditor reports the words a data structure
  /// currently keeps on a given machine.
  std::int64_t register_resident(
      std::function<std::int64_t(std::int64_t)> auditor);
  void unregister_resident(std::int64_t id);

  /// Current resident words on a machine (sum over live auditors).
  std::int64_t resident_words(std::int64_t machine) const;

 private:
  void check_space(std::int64_t machine, std::int64_t words,
                   const char* kind) const;

  MpcConfig cfg_;
  ThreadPool pool_;
  ClusterStats stats_;
  std::vector<std::vector<Message>> mailboxes_;  // inbox per machine
  std::map<std::int64_t, std::function<std::int64_t(std::int64_t)>> auditors_;
  std::int64_t next_auditor_id_ = 0;

  friend class MachineCtx;
};

}  // namespace monge::mpc
