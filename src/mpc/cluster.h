// The MPC cluster simulator.
//
// Computation proceeds in rounds (§1.1): in a round every machine runs a
// local function over its resident data and inbox, and emits messages; the
// runtime routes the messages, which become the inboxes of the next round.
// The simulator
//   * counts rounds — the MPC complexity measure every benchmark reports,
//   * accounts communication and resident space per machine per round and
//     (in strict mode) throws SpaceLimitError when the s-word budget is
//     exceeded — this is how the fully-scalability claims are *measured*,
//   * runs machine-local work on a thread pool, with deterministic message
//     delivery (sorted by sender) and deterministic error surfacing (lowest
//     machine id wins) regardless of scheduling,
//   * optionally injects a seeded fault schedule (MpcConfig::faults) and
//     recovers from it: at the start of every checkpoint_interval-th round
//     it snapshots the mailboxes and all registered resident state, and a
//     machine crash rolls every machine back to that snapshot and
//     re-executes the round, up to FaultPlan::max_round_retries times.
//     Message drops/duplicates/corruption are masked by the simulated
//     reliable transport (retransmit, sequence-number dedup, checksum
//     verification). All recovery cost — re-executed rounds, wasted and
//     retransmitted words, checkpoint storage — is accounted in
//     ClusterStats::recovery and NEVER in the paper's rounds /
//     total_comm_words, so the complexity measurements stay honest.
//
// The recovery contract for round closures: a crash re-executes the SAME
// closure against the restored snapshot, so closures must be restartable —
// inside a round, mutate only (a) cluster-registered resident state
// (DistVector shards — restored on rollback), (b) host slots written by
// overwrite (idempotent re-execution), or (c) host accumulators that the
// closure itself resets at entry. Every collective and MPC algorithm in
// this repository follows the contract.
//
// Messages are flat arrays of 64-bit words; typed helpers pack/unpack
// trivially-copyable structs through the shared codec in util/codec.h.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <span>
#include <string>
#include <vector>

#include "mpc/config.h"
#include "util/check.h"
#include "util/codec.h"
#include "util/error.h"
#include "util/thread_pool.h"

namespace monge::mpc {

using Word = std::int64_t;

// The space-budget error lives in the shared taxonomy (util/error.h);
// re-exported here where it is thrown from.
using monge::SpaceLimitError;

struct Message {
  std::int64_t from = 0;
  std::int64_t to = 0;
  std::int64_t tag = 0;
  std::vector<Word> payload;

  /// Decodes the payload as an array of T (trivially copyable, packed by
  /// send_items through the util/codec.h word codec). Throws CodecError if
  /// the payload is not a whole number of T strides.
  template <typename T>
  std::vector<T> decode() const {
    return util::unpack_words<T>(payload);
  }
};

/// Recovery-side statistics, kept strictly apart from the paper's
/// round/word numbers so fault injection never distorts the complexity
/// measurements; all-zero when fault injection is off.
struct RecoveryStats {
  std::int64_t checkpoints = 0;          ///< snapshots taken
  std::int64_t checkpoint_words = 0;     ///< words persisted across snapshots
  std::int64_t crashes_recovered = 0;    ///< crash events rolled back
  std::int64_t recovery_rounds = 0;      ///< re-executed + retransmit rounds
  std::int64_t recovery_comm_words = 0;  ///< wasted, restored, resent words
  std::int64_t messages_dropped = 0;     ///< drops masked by retransmission
  std::int64_t messages_duplicated = 0;  ///< duplicates discarded by dedup
  std::int64_t messages_corrupted = 0;   ///< corruptions caught by checksum
  std::int64_t straggler_delays = 0;     ///< stragglers absorbed by barrier

  friend bool operator==(const RecoveryStats&,
                         const RecoveryStats&) = default;
};

/// Per-field difference a − b (used for per-request recovery deltas).
inline RecoveryStats operator-(RecoveryStats a, const RecoveryStats& b) {
  a.checkpoints -= b.checkpoints;
  a.checkpoint_words -= b.checkpoint_words;
  a.crashes_recovered -= b.crashes_recovered;
  a.recovery_rounds -= b.recovery_rounds;
  a.recovery_comm_words -= b.recovery_comm_words;
  a.messages_dropped -= b.messages_dropped;
  a.messages_duplicated -= b.messages_duplicated;
  a.messages_corrupted -= b.messages_corrupted;
  a.straggler_delays -= b.straggler_delays;
  return a;
}

struct ClusterStats {
  std::int64_t rounds = 0;
  std::int64_t total_comm_words = 0;
  /// Peak over rounds and machines of inbox + outbox + resident words.
  std::int64_t max_machine_words = 0;
  /// Peak resident (registered DistVector shards) alone.
  std::int64_t max_resident_words = 0;
  /// Fault-injection recovery accounting (additive, separate from above).
  RecoveryStats recovery{};

  friend bool operator==(const ClusterStats&, const ClusterStats&) = default;
};

/// Hooks a resident data structure (DistVector) registers with the
/// cluster. `words` feeds the per-round space audit and is mandatory;
/// `checkpoint`/`restore` let the cluster snapshot the structure's
/// per-machine state and roll it back for crash recovery. Structures
/// registered without the recovery pair still audit, but a crash while one
/// is live is unrecoverable (FaultError).
struct ResidentHooks {
  /// Words the structure currently keeps on a machine.
  std::function<std::int64_t(std::int64_t machine)> words;
  /// Serializes the machine's state as a flat word blob.
  std::function<std::vector<Word>(std::int64_t machine)> checkpoint;
  /// Inverse of checkpoint: reinstates a previously serialized blob.
  std::function<void(std::int64_t machine, std::span<const Word> blob)>
      restore;
};

class Cluster;

/// Handle a machine uses inside a round to read its inbox and send.
class MachineCtx {
 public:
  std::int64_t id() const { return id_; }
  std::int64_t machines() const;
  std::span<const Message> inbox() const;

  void send(std::int64_t to, std::int64_t tag, std::vector<Word> payload);

  /// Typed send: packs an array of T into words (util/codec.h).
  template <typename T>
  void send_items(std::int64_t to, std::int64_t tag, std::span<const T> items) {
    send(to, tag, util::pack_words(items));
  }

 private:
  friend class Cluster;
  MachineCtx(Cluster* cluster, std::int64_t id) : cluster_(cluster), id_(id) {}

  Cluster* cluster_;
  std::int64_t id_;
  std::vector<Message> outbox_;
};

class Cluster {
 public:
  /// Validates the config (machine/space counts, checkpoint cadence, fault
  /// probabilities and scheduled sites) — invalid values throw
  /// InvalidRequestError, never undefined behavior.
  explicit Cluster(MpcConfig cfg);

  std::int64_t machines() const { return cfg_.num_machines; }
  std::int64_t space_words() const { return cfg_.space_words; }
  const MpcConfig& config() const { return cfg_; }
  const ClusterStats& stats() const { return stats_; }
  std::int64_t rounds() const { return stats_.rounds; }

  /// Executes one MPC round: fn runs once per machine (in parallel), then
  /// outgoing messages are validated against the space budget and routed.
  /// With faults enabled, the round is checkpointed, injected with the
  /// plan's events and recovered as described in the header comment; an
  /// unrecoverable crash throws FaultError. Errors thrown by fn surface
  /// deterministically: the lowest-id machine's exception wins.
  void run_round(const std::function<void(MachineCtx&)>& fn);

  /// Resets round/communication statistics, including recovery counters
  /// (not mailboxes).
  void reset_stats() { stats_ = ClusterStats{}; }

  /// Registers a resident structure's hook set (used by DistVector);
  /// returns an id for unregistering.
  std::int64_t register_resident(ResidentHooks hooks);
  /// Audit-only registration (no crash recovery for this structure).
  std::int64_t register_resident(
      std::function<std::int64_t(std::int64_t)> auditor);
  void unregister_resident(std::int64_t id);

  /// Current resident words on a machine (sum over live auditors).
  std::int64_t resident_words(std::int64_t machine) const;

 private:
  /// Round-entry snapshot crash recovery restores: the delivered-but-
  /// unconsumed mailboxes plus every recoverable resident structure.
  struct Snapshot {
    std::int64_t round = -1;  ///< round the snapshot was taken for
    bool complete = false;    ///< every resident structure was recoverable
    std::vector<std::vector<Message>> mailboxes;
    std::map<std::int64_t, std::vector<std::vector<Word>>> residents;
  };

  void check_space(std::int64_t machine, std::int64_t words,
                   const char* kind) const;
  void take_checkpoint(std::int64_t round);
  /// Rolls mailboxes and resident state back; returns the words restored.
  std::int64_t restore_checkpoint();
  /// Machines the plan crashes at (round, attempt), ascending ids.
  std::vector<std::int64_t> crashed_machines(std::int64_t round,
                                             std::int64_t attempt) const;
  /// Applies drop/duplicate/corrupt events to one routed message; the
  /// delivered payload is always the pristine one (reliable transport) —
  /// only the recovery counters move.
  void inject_message_faults(const Message& msg, std::int64_t round,
                             std::int64_t seq, bool* retransmitted);

  MpcConfig cfg_;
  ThreadPool pool_;
  ClusterStats stats_;
  std::vector<std::vector<Message>> mailboxes_;  // inbox per machine
  std::map<std::int64_t, ResidentHooks> auditors_;
  std::int64_t next_auditor_id_ = 0;
  Snapshot snapshot_;

  friend class MachineCtx;
};

}  // namespace monge::mpc
