#include "mpc/fault.h"

#include "util/check.h"

namespace monge::mpc {

namespace {

// Fixed-increment splitmix64 finalizer: a bijection on 64-bit words with
// good avalanche — the whole fault schedule is built from it.
std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

std::uint64_t mix(std::uint64_t h, std::uint64_t v) {
  return splitmix64(h ^ (v + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2)));
}

std::uint64_t site_hash(std::uint64_t seed, FaultKind kind,
                        std::int64_t round, std::int64_t salt, std::int64_t a,
                        std::int64_t b) {
  std::uint64_t h = splitmix64(seed);
  h = mix(h, static_cast<std::uint64_t>(kind));
  h = mix(h, static_cast<std::uint64_t>(round));
  h = mix(h, static_cast<std::uint64_t>(salt));
  h = mix(h, static_cast<std::uint64_t>(a));
  h = mix(h, static_cast<std::uint64_t>(b));
  return h;
}

}  // namespace

const char* fault_kind_name(FaultKind kind) {
  switch (kind) {
    case FaultKind::kCrash:
      return "crash";
    case FaultKind::kStraggle:
      return "straggle";
    case FaultKind::kDrop:
      return "drop";
    case FaultKind::kDuplicate:
      return "duplicate";
    case FaultKind::kCorrupt:
      return "corrupt";
  }
  return "unknown";
}

double fault_uniform(std::uint64_t seed, FaultKind kind, std::int64_t round,
                     std::int64_t salt, std::int64_t a, std::int64_t b) {
  // Top 53 bits → uniform double in [0, 1).
  return static_cast<double>(site_hash(seed, kind, round, salt, a, b) >> 11) *
         0x1.0p-53;
}

std::uint64_t payload_checksum(std::span<const std::int64_t> payload) {
  std::uint64_t sum = 0;
  for (std::size_t i = 0; i < payload.size(); ++i) {
    // splitmix64 is a bijection, so for a fixed position salt two distinct
    // words map to distinct summands — any single-word damage shifts the sum.
    sum += splitmix64(static_cast<std::uint64_t>(payload[i]) ^
                      splitmix64(static_cast<std::uint64_t>(i) +
                                 0x51ed270b9f6aa03fULL));
  }
  return sum;
}

void corrupt_payload(std::span<std::int64_t> payload, std::uint64_t seed,
                     std::int64_t round, std::int64_t site) {
  MONGE_CHECK(!payload.empty());
  const std::uint64_t h =
      site_hash(seed, FaultKind::kCorrupt, round, site, 0x7a11, 0);
  const auto j = static_cast<std::size_t>(h % payload.size());
  // Odd mask: never zero, so the word always changes.
  payload[j] ^= static_cast<std::int64_t>(splitmix64(h) | 1ULL);
}

}  // namespace monge::mpc
