// Configuration of the simulated MPC cluster (§1.1).
//
// The model: m machines with s words of memory each, input size n,
// m = O(n^δ), s = Õ(n^{1−δ}). An algorithm is *fully scalable* if it works
// for every constant 0 < δ < 1. The simulator enforces the space bound per
// round (message traffic and resident data) and counts rounds — the model's
// complexity measure.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <string>

#include "mpc/fault.h"
#include "util/error.h"
#include "util/math.h"

namespace monge::mpc {

struct MpcConfig {
  std::int64_t num_machines = 1;
  /// Per-machine memory budget in 64-bit words (the model's s, including
  /// the Õ(·) polylog/constant slack).
  std::int64_t space_words = 1 << 20;
  /// If true, exceeding space_words in a round throws SpaceLimitError.
  bool strict = true;
  /// Thread count for simulating machine-local work (0 = hardware).
  unsigned threads = 0;

  /// Chaos schedule (off by default — mpc/fault.h). When enabled the
  /// cluster checkpoints round state and recovers crashed machines; every
  /// recovery cost lands in ClusterStats::recovery, never in the paper's
  /// round/word statistics.
  FaultPlan faults{};
  /// Rounds between checkpoints when faults are enabled (1 = every round).
  /// A crash in a round that started without a fresh checkpoint is
  /// unrecoverable — run_round throws FaultError, the price of a sparser
  /// cadence (closures cannot be replayed once their round returns; see
  /// docs/ARCHITECTURE.md).
  std::int64_t checkpoint_interval = 1;

  friend bool operator==(const MpcConfig&, const MpcConfig&) = default;

  /// The paper's regime for input size n and exponent δ:
  ///   m = n^δ machines, s = slack · n^{1−δ} · log2(n) words.
  /// `slack` absorbs the constants hidden in Õ; the collectives keep a
  /// worst-case 2x imbalance per partition level, so the default is
  /// deliberately generous but still Õ(n^{1−δ}).
  /// Throws InvalidRequestError on n < 1, δ outside (0, 1), or a slack
  /// that is not a positive finite number (NaN never passes).
  static MpcConfig fully_scalable(std::int64_t n, double delta,
                                  double slack = 24.0, bool strict = true) {
    if (n < 1) {
      throw InvalidRequestError("fully_scalable: n must be >= 1, got " +
                                std::to_string(n));
    }
    if (!(delta > 0.0 && delta < 1.0)) {  // NaN fails both comparisons
      throw InvalidRequestError(
          "fully_scalable: delta must be in (0, 1), got " +
          std::to_string(delta));
    }
    if (!(slack > 0.0) || !std::isfinite(slack)) {
      throw InvalidRequestError(
          "fully_scalable: slack must be a positive finite number, got " +
          std::to_string(slack));
    }
    MpcConfig cfg;
    cfg.num_machines = ipow_frac(n, delta);
    const auto log_n = static_cast<double>(std::max(1, ceil_log2(
                           static_cast<std::uint64_t>(n))));
    cfg.space_words = static_cast<std::int64_t>(
        slack * static_cast<double>(ipow_frac(n, 1.0 - delta)) * log_n);
    cfg.strict = strict;
    return cfg;
  }
};

}  // namespace monge::mpc
