// Block-distributed typed arrays living on the simulated cluster.
//
// A DistVector<T> of logical size n is split over the m machines in the
// canonical block layout: machine i owns global indices
// [ i*n/m, (i+1)*n/m )  (floor division). Collectives may transiently leave
// shards unbalanced (e.g. mid-sort); `is_balanced()` tells whether the
// canonical layout currently holds.
//
// Shard contents are registered with the cluster's resident-space auditor,
// so the per-round space checks see them — and with the cluster's
// checkpoint/restore protocol (ResidentHooks), so crash recovery can roll
// a shard back to the round-entry snapshot: checkpoint serializes a shard
// through the util/codec.h word codec, restore reinstates it bit-exactly.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "mpc/cluster.h"
#include "util/check.h"

namespace monge::mpc {

/// Host-side array with one entry per machine; the simulation convention is
/// that machine i only reads/writes index i inside a round.
template <typename T>
using PerMachine = std::vector<T>;

/// Canonical block layout of `total` items over `machines` machines.
struct BlockLayout {
  std::int64_t total = 0;
  std::int64_t machines = 1;

  std::int64_t lo(std::int64_t machine) const {
    return machine * total / machines;
  }
  std::int64_t hi(std::int64_t machine) const {
    return (machine + 1) * total / machines;
  }
  std::int64_t size(std::int64_t machine) const {
    return hi(machine) - lo(machine);
  }
  /// Owner of global index idx: the unique i with lo(i) <= idx < hi(i).
  std::int64_t owner(std::int64_t idx) const {
    MONGE_DCHECK(idx >= 0 && idx < total);
    std::int64_t i = ((idx + 1) * machines - 1) / total;
    // Floor-division rounding can land one off; correct locally.
    while (i > 0 && lo(i) > idx) --i;
    while (i + 1 < machines && hi(i) <= idx) ++i;
    return i;
  }
};

template <typename T>
class DistVector {
 public:
  static_assert(std::is_trivially_copyable_v<T>);

  DistVector(Cluster& cluster, std::int64_t n)
      : cluster_(&cluster),
        layout_{n, cluster.machines()},
        shards_(std::make_shared<std::vector<std::vector<T>>>(
            static_cast<std::size_t>(cluster.machines()))) {
    for (std::int64_t i = 0; i < cluster.machines(); ++i) {
      (*shards_)[static_cast<std::size_t>(i)].resize(
          static_cast<std::size_t>(layout_.size(i)));
    }
    register_auditor();
  }

  /// Loads host data as the initial (already distributed) input; this
  /// models the model's assumption that "in the beginning, the input data
  /// is distributed across the machines" and costs no rounds.
  static DistVector from_host(Cluster& cluster, std::span<const T> data) {
    DistVector dv(cluster, static_cast<std::int64_t>(data.size()));
    for (std::int64_t i = 0; i < cluster.machines(); ++i) {
      auto& loc = dv.local(i);
      const std::int64_t lo = dv.layout_.lo(i);
      for (std::int64_t k = 0; k < dv.layout_.size(i); ++k) {
        loc[static_cast<std::size_t>(k)] = data[static_cast<std::size_t>(lo + k)];
      }
    }
    return dv;
  }

  /// Reads the final output back to the host (no rounds; output reading).
  /// Requires the canonical layout.
  std::vector<T> to_host() const {
    MONGE_CHECK_MSG(is_balanced(), "to_host requires canonical layout");
    std::vector<T> out(static_cast<std::size_t>(layout_.total));
    for (std::int64_t i = 0; i < layout_.machines; ++i) {
      const auto& loc = (*shards_)[static_cast<std::size_t>(i)];
      std::copy(loc.begin(), loc.end(),
                out.begin() + static_cast<std::ptrdiff_t>(layout_.lo(i)));
    }
    return out;
  }

  ~DistVector() {
    if (auditor_id_ >= 0) cluster_->unregister_resident(auditor_id_);
  }

  DistVector(DistVector&& other) noexcept
      : cluster_(other.cluster_),
        layout_(other.layout_),
        shards_(std::move(other.shards_)) {
    if (other.auditor_id_ >= 0) {
      cluster_->unregister_resident(other.auditor_id_);
      other.auditor_id_ = -1;
    }
    register_auditor();
  }
  DistVector& operator=(DistVector&& other) noexcept {
    if (this != &other) {
      if (auditor_id_ >= 0) cluster_->unregister_resident(auditor_id_);
      if (other.auditor_id_ >= 0) {
        cluster_->unregister_resident(other.auditor_id_);
        other.auditor_id_ = -1;
      }
      cluster_ = other.cluster_;
      layout_ = other.layout_;
      shards_ = std::move(other.shards_);
      register_auditor();
    }
    return *this;
  }
  DistVector(const DistVector&) = delete;
  DistVector& operator=(const DistVector&) = delete;

  Cluster& cluster() const { return *cluster_; }
  std::int64_t size() const { return layout_.total; }
  const BlockLayout& layout() const { return layout_; }

  std::vector<T>& local(std::int64_t machine) {
    return (*shards_)[static_cast<std::size_t>(machine)];
  }
  const std::vector<T>& local(std::int64_t machine) const {
    return (*shards_)[static_cast<std::size_t>(machine)];
  }

  bool is_balanced() const {
    for (std::int64_t i = 0; i < layout_.machines; ++i) {
      if (static_cast<std::int64_t>(
              (*shards_)[static_cast<std::size_t>(i)].size()) !=
          layout_.size(i)) {
        return false;
      }
    }
    return true;
  }

 private:
  void register_auditor() {
    constexpr std::int64_t words_per =
        static_cast<std::int64_t>((sizeof(T) + 7) / 8);
    auto shards = shards_;  // keep alive inside the hooks
    ResidentHooks hooks;
    hooks.words = [shards](std::int64_t machine) {
      return static_cast<std::int64_t>(
                 (*shards)[static_cast<std::size_t>(machine)].size()) *
             words_per;
    };
    hooks.checkpoint = [shards](std::int64_t machine) {
      return util::pack_words<T>((*shards)[static_cast<std::size_t>(machine)]);
    };
    hooks.restore = [shards](std::int64_t machine,
                             std::span<const Word> blob) {
      (*shards)[static_cast<std::size_t>(machine)] =
          util::unpack_words<T>(blob);
    };
    auditor_id_ = cluster_->register_resident(std::move(hooks));
  }

  Cluster* cluster_;
  BlockLayout layout_;
  std::shared_ptr<std::vector<std::vector<T>>> shards_;
  std::int64_t auditor_id_ = -1;
};

}  // namespace monge::mpc
