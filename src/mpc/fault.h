// Deterministic fault injection for the MPC simulator.
//
// A FaultPlan describes *when* the simulated cluster misbehaves: machine
// crashes, straggler delays, and message drop/duplicate/corrupt events —
// either probabilistically (seeded) or at explicitly scheduled
// (round, machine) sites. Every decision is a pure hash of
// (seed, kind, round, site identifiers); no RNG stream is consumed, so a
// schedule replays bit-for-bit regardless of thread count or the order the
// pool happens to run machines in.
//
// Cluster::run_round consults the plan: crashes trigger checkpoint
// rollback and bounded re-execution, message faults are masked by the
// simulated reliable transport (retransmit / dedup / checksum-verify), and
// stragglers are absorbed by the round barrier. All recovery cost lands in
// ClusterStats::recovery, never in the paper's round/word statistics
// (mpc/cluster.h).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace monge::mpc {

/// The kinds of injected fault events.
enum class FaultKind : std::uint64_t {
  kCrash = 1,      ///< a machine dies mid-round; recovered from checkpoint
  kStraggle = 2,   ///< a machine is slow; absorbed by the round barrier
  kDrop = 3,       ///< a message is lost in flight and retransmitted
  kDuplicate = 4,  ///< a message arrives twice; the copy is discarded
  kCorrupt = 5,    ///< a payload is damaged in flight; caught by checksum
};

/// @return a stable lowercase name ("crash", "straggle", "drop",
///     "duplicate", "corrupt") for logs and reports.
const char* fault_kind_name(FaultKind kind);

/// One explicitly scheduled fault. For kCrash/kStraggle, `machine` is the
/// affected machine; for the message kinds, every message `machine` sends
/// in `round` is affected. Scheduled crashes strike the first execution of
/// the round only (the re-executed attempt succeeds), modelling a
/// one-shot hardware loss rather than a deterministic repeat-offender.
struct ScheduledFault {
  std::int64_t round = 0;    ///< cluster round index (stats().rounds)
  std::int64_t machine = 0;  ///< affected machine (sender for message kinds)
  FaultKind kind = FaultKind::kCrash;

  friend bool operator==(const ScheduledFault&,
                         const ScheduledFault&) = default;
};

/// A seeded, replayable chaos schedule. Probabilities are per event site:
/// crash and straggle per (round, attempt, machine), message faults per
/// individual message. The default (all probabilities zero, no scheduled
/// faults) disables injection entirely — the simulator then behaves, and
/// costs, exactly as without this subsystem.
struct FaultPlan {
  /// Seed of the pure decision hash; same seed → same schedule, at any
  /// thread count.
  std::uint64_t seed = 0;

  double crash_prob = 0.0;      ///< P[a machine crashes in a round attempt]
  double straggle_prob = 0.0;   ///< P[a machine straggles in a round]
  double drop_prob = 0.0;       ///< P[a message is dropped in flight]
  double duplicate_prob = 0.0;  ///< P[a message is duplicated in flight]
  double corrupt_prob = 0.0;    ///< P[a message payload is damaged]

  /// Explicit (round, machine) fault sites, applied on top of the
  /// probabilistic schedule.
  std::vector<ScheduledFault> scheduled;

  /// How many times one round may be rolled back and re-executed before a
  /// crash is declared unrecoverable and run_round throws FaultError.
  std::int64_t max_round_retries = 8;

  /// True when any injection is configured; Cluster skips the whole
  /// checkpoint/injection machinery when false.
  bool enabled() const {
    return crash_prob > 0.0 || straggle_prob > 0.0 || drop_prob > 0.0 ||
           duplicate_prob > 0.0 || corrupt_prob > 0.0 || !scheduled.empty();
  }

  friend bool operator==(const FaultPlan&, const FaultPlan&) = default;
};

/// Deterministic uniform draw in [0, 1) for one fault site: a pure hash of
/// (seed, kind, round, salt, a, b). `salt` carries the retry attempt for
/// crash/straggle sites and the per-sender message sequence number for
/// message sites; `a`/`b` carry machine ids.
double fault_uniform(std::uint64_t seed, FaultKind kind, std::int64_t round,
                     std::int64_t salt, std::int64_t a, std::int64_t b = 0);

/// Position-salted payload checksum the simulated transport verifies.
/// Each word is passed through a per-position bijection before summing, so
/// changing any single word to a different value always changes the sum —
/// injected corruption (corrupt_payload) is detected with certainty.
std::uint64_t payload_checksum(std::span<const std::int64_t> payload);

/// Deterministically damages exactly one word of a non-empty payload in
/// place (XOR with a nonzero mask derived from the arguments).
void corrupt_payload(std::span<std::int64_t> payload, std::uint64_t seed,
                     std::int64_t round, std::int64_t site);

}  // namespace monge::mpc
