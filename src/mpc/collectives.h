// Deterministic O(1)-round MPC collectives (the [GSZ11] toolbox of §2.2).
//
// Everything here is measured, not assumed: each collective advances the
// cluster's round counter and routes real messages subject to the space
// checks. For a fixed δ the round counts are constants (they grow only with
// 1/(1−δ), never with n):
//
//   sample_sort        Lemma 2.5 — top-down F-ary splitter refinement with
//                      mergeable quantile sketches, F = Θ(√s); the group
//                      hierarchy has ⌈log_F m⌉ = O(δ/(1−δ)) levels.
//   exclusive_prefix   Lemma 2.4 — F-ary up/down sweep.
//   broadcast_from     F-ary tree broadcast.
//   route_items        one all-to-all round (messages grouped per
//                      destination).
//   scatter_to_layout  route (global_index, value) pairs into a canonical
//                      block-distributed vector.
//   inverse_permutation Lemma 2.3 — one routing round.
//   rank_search        Lemma 2.6 — tag, sort together, prefix, route back.
//   gather_to_machine  collect a whole DistVector on one machine (used for
//                      machine-local base cases; throws SpaceLimitError if
//                      it does not fit, which is exactly the fully-
//                      scalability experiment).
//
// Every round closure here follows the cluster's restartable-round
// contract (mpc/cluster.h): host-side accumulators are cleared at round
// entry or double-buffered, so crash recovery can roll registered state
// back and re-execute a round without double-absorbing anything.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <functional>
#include <vector>

#include "mpc/cluster.h"
#include "mpc/dist_vector.h"
#include "util/check.h"
#include "util/math.h"

namespace monge::mpc {

// ---------------------------------------------------------------------------
// F-ary rank-tree helpers (BFS numbering: children of p are pF+1 .. pF+F).
// ---------------------------------------------------------------------------

inline std::int64_t tree_parent(std::int64_t rank, std::int64_t f) {
  return (rank - 1) / f;
}

inline int tree_depth_of_rank(std::int64_t rank, std::int64_t f) {
  int d = 0;
  while (rank > 0) {
    rank = (rank - 1) / f;
    ++d;
  }
  return d;
}

/// Depth of the deepest rank in a tree over ranks [0, size). BFS numbering
/// makes depth nondecreasing in rank, so it is depth(size-1).
inline int tree_max_depth(std::int64_t size, std::int64_t f) {
  return size <= 1 ? 0 : tree_depth_of_rank(size - 1, f);
}

/// Collective fan-out: F = Θ(√s), so one tree node's traffic (F sketches of
/// O(F) words) fits the space budget at every δ.
inline std::int64_t collective_fanout(const Cluster& c) {
  const auto s = static_cast<double>(c.space_words());
  auto f = static_cast<std::int64_t>(std::sqrt(s / 16.0));
  f = std::max<std::int64_t>(f, 2);
  f = std::min<std::int64_t>(f, 1 << 12);
  return f;
}

namespace tags {
inline constexpr std::int64_t kSketch = 1;
inline constexpr std::int64_t kSplitters = 2;
inline constexpr std::int64_t kFragment = 3;
inline constexpr std::int64_t kChunk = 4;
inline constexpr std::int64_t kDown = 6;
inline constexpr std::int64_t kBcast = 7;
inline constexpr std::int64_t kItem = 8;
/// Up-sweep messages use tags [kUp, kUp + fanout) to carry the child slot.
inline constexpr std::int64_t kUp = 1 << 20;
}  // namespace tags

// ---------------------------------------------------------------------------
// Prefix sums over one value per machine (Lemma 2.4).
// ---------------------------------------------------------------------------

struct PrefixResult {
  PerMachine<std::int64_t> prefix;  // exclusive prefix of machine values
  std::int64_t total = 0;           // known by every machine afterwards
};

/// Exclusive prefix sums of one int64 per machine via an F-ary up/down
/// sweep; 2·depth + 2 rounds.
PrefixResult exclusive_prefix(Cluster& c, const PerMachine<std::int64_t>& val);

/// Broadcast a word payload from `root` to all machines along the F-ary
/// tree; depth + 1 rounds. Returns the payload (identical on every machine).
std::vector<Word> broadcast_from(Cluster& c, std::int64_t root,
                                 std::vector<Word> payload);

// ---------------------------------------------------------------------------
// One-round routing of typed items.
// ---------------------------------------------------------------------------

/// Delivers arbitrary (destination, item) pairs; messages are grouped per
/// destination. Two rounds (send, absorb). Returns the items received per
/// machine, ordered by sender id (deterministic).
template <typename T>
PerMachine<std::vector<T>> route_items(
    Cluster& c, const PerMachine<std::vector<std::pair<std::int64_t, T>>>& out) {
  PerMachine<std::vector<T>> received(static_cast<std::size_t>(c.machines()));
  c.run_round([&](MachineCtx& mc) {
    const auto& mine = out[static_cast<std::size_t>(mc.id())];
    // Group by destination (stable to preserve send order).
    std::vector<std::pair<std::int64_t, T>> sorted(mine.begin(), mine.end());
    std::stable_sort(sorted.begin(), sorted.end(),
                     [](const auto& a, const auto& b) { return a.first < b.first; });
    std::size_t i = 0;
    while (i < sorted.size()) {
      std::size_t j = i;
      std::vector<T> batch;
      while (j < sorted.size() && sorted[j].first == sorted[i].first) {
        batch.push_back(sorted[j].second);
        ++j;
      }
      mc.send_items<T>(sorted[i].first, tags::kItem, batch);
      i = j;
    }
  });
  c.run_round([&](MachineCtx& mc) {
    auto& mine = received[static_cast<std::size_t>(mc.id())];
    mine.clear();  // restartable: crash recovery re-executes the round
    for (const Message& msg : mc.inbox()) {
      auto items = msg.decode<T>();
      mine.insert(mine.end(), items.begin(), items.end());
    }
  });
  return received;
}

/// Routes (global_index, value) pairs into a fresh canonically block-
/// distributed DistVector of the given size. Every index must be covered
/// exactly once (checked).
template <typename T>
DistVector<T> scatter_to_layout(
    Cluster& c, std::int64_t total,
    const PerMachine<std::vector<std::pair<std::int64_t, T>>>& items) {
  struct Slot {
    std::int64_t idx;
    T value;
  };
  DistVector<T> dv(c, total);
  const BlockLayout& layout = dv.layout();
  PerMachine<std::vector<std::pair<std::int64_t, Slot>>> out(
      static_cast<std::size_t>(c.machines()));
  for (std::int64_t i = 0; i < c.machines(); ++i) {
    for (const auto& [idx, value] : items[static_cast<std::size_t>(i)]) {
      MONGE_DCHECK(idx >= 0 && idx < total);
      out[static_cast<std::size_t>(i)].push_back(
          {layout.owner(idx), Slot{idx, value}});
    }
  }
  auto received = route_items<Slot>(c, out);
  std::vector<std::uint8_t> seen;
  for (std::int64_t i = 0; i < c.machines(); ++i) {
    auto& loc = dv.local(i);
    seen.assign(loc.size(), 0);
    for (const Slot& s : received[static_cast<std::size_t>(i)]) {
      const std::int64_t k = s.idx - layout.lo(i);
      MONGE_CHECK_MSG(k >= 0 && k < static_cast<std::int64_t>(loc.size()),
                      "index " << s.idx << " not owned by machine " << i);
      MONGE_CHECK_MSG(!seen[static_cast<std::size_t>(k)],
                      "duplicate index " << s.idx);
      seen[static_cast<std::size_t>(k)] = 1;
      loc[static_cast<std::size_t>(k)] = s.value;
    }
    for (std::uint8_t s : seen) {
      MONGE_CHECK_MSG(s, "scatter_to_layout left an index unset");
    }
  }
  return dv;
}

// ---------------------------------------------------------------------------
// Sorting (Lemma 2.5).
// ---------------------------------------------------------------------------

namespace detail {

struct SketchItem {
  std::int64_t key;
  std::int64_t weight;
};

/// Compress a key-sorted weighted sketch to at most `cap` items.
std::vector<SketchItem> compress_sketch(std::vector<SketchItem> items,
                                        std::int64_t cap);

/// Regular weighted samples of a sorted run.
template <typename T, typename KeyFn>
std::vector<SketchItem> leaf_sketch(const std::vector<T>& sorted,
                                    std::int64_t cap, KeyFn&& key) {
  const auto n = static_cast<std::int64_t>(sorted.size());
  std::vector<SketchItem> out;
  if (n == 0) return out;
  const std::int64_t chunks = std::min(cap, n);
  std::int64_t prev = 0;
  for (std::int64_t t = 0; t < chunks; ++t) {
    const std::int64_t end = (t + 1) * n / chunks;
    if (end == prev) continue;
    out.push_back(SketchItem{key(sorted[static_cast<std::size_t>(end - 1)]),
                             end - prev});
    prev = end;
  }
  return out;
}

}  // namespace detail

/// Deterministic sort of a DistVector by an int64 key (Lemma 2.5).
/// Afterwards the vector is globally sorted and in canonical block layout.
/// Round count is Θ((δ/(1−δ))²) — independent of n for fixed δ.
template <typename T, typename KeyFn>
void sample_sort(Cluster& c, DistVector<T>& dv, KeyFn key) {
  const std::int64_t m = c.machines();
  const auto by_key = [&key](const T& a, const T& b) { return key(a) < key(b); };

  // Local sort (one compute round).
  c.run_round([&](MachineCtx& mc) {
    auto& v = dv.local(mc.id());
    std::sort(v.begin(), v.end(), by_key);
  });
  if (m == 1) return;

  const std::int64_t f = collective_fanout(c);
  const std::int64_t cap = 4 * f;  // sketch capacity per tree node

  // Host-side per-machine protocol state (machine i only touches slot i).
  PerMachine<std::vector<detail::SketchItem>> sketch(
      static_cast<std::size_t>(m));
  PerMachine<std::vector<std::int64_t>> splitters(static_cast<std::size_t>(m));

  // Top-down splitter refinement: every group splits into subgroups of
  // size ceil(group/F) until each machine is its own group. Group extents
  // are tracked explicitly per machine: subgroup boundaries are relative to
  // the parent group's base, so they are NOT globally aligned to a common
  // modulus once sizes stop dividing evenly.
  PerMachine<std::int64_t> grp_base(static_cast<std::size_t>(m), 0);
  PerMachine<std::int64_t> grp_size(static_cast<std::size_t>(m), m);

  for (;;) {
    std::int64_t g = 1;  // largest current group
    for (std::int64_t i = 0; i < m; ++i) {
      g = std::max(g, grp_size[static_cast<std::size_t>(i)]);
    }
    if (g <= 1) break;
    const auto group_base = [&](std::int64_t i) {
      return grp_base[static_cast<std::size_t>(i)];
    };
    const auto group_size = [&](std::int64_t i) {
      return grp_size[static_cast<std::size_t>(i)];
    };
    // Per-group split width; every machine can derive it from its own
    // group's size.
    const auto sub_width = [&](std::int64_t i) {
      return ceil_div(std::max<std::int64_t>(group_size(i), 1), f);
    };
    const int dmax = tree_max_depth(g, f);

    // --- Sketch up-sweep: leaves to root of each group's rank tree.
    for (std::int64_t i = 0; i < m; ++i) {
      sketch[static_cast<std::size_t>(i)] =
          detail::leaf_sketch(dv.local(i), cap, key);
    }
    // Double-buffered so every round is restartable: a hop merges the
    // previous hop's sketch (read-only this round) with the inbox into the
    // next buffer — crash recovery re-executes the merge instead of
    // absorbing the same children twice.
    PerMachine<std::vector<detail::SketchItem>> next_sketch(
        static_cast<std::size_t>(m));
    for (int hop = dmax; hop >= 1; --hop) {
      c.run_round([&](MachineCtx& mc) {
        const std::int64_t i = mc.id();
        auto sk = sketch[static_cast<std::size_t>(i)];
        for (const Message& msg : mc.inbox()) {
          if (msg.tag != tags::kSketch) continue;
          auto items = msg.decode<detail::SketchItem>();
          sk.insert(sk.end(), items.begin(), items.end());
        }
        std::sort(sk.begin(), sk.end(), [](const auto& a, const auto& b) {
          return a.key < b.key;
        });
        sk = detail::compress_sketch(std::move(sk), cap);
        const std::int64_t rank = i - group_base(i);
        if (rank < group_size(i) && tree_depth_of_rank(rank, f) == hop) {
          mc.send_items<detail::SketchItem>(
              group_base(i) + tree_parent(rank, f), tags::kSketch, sk);
        }
        next_sketch[static_cast<std::size_t>(i)] = std::move(sk);
      });
      sketch.swap(next_sketch);
    }
    // Absorb the hop-1 sends at the roots and compute splitters there (on
    // a local merge copy — the sketches are dead after this round).
    c.run_round([&](MachineCtx& mc) {
      const std::int64_t i = mc.id();
      auto sk = sketch[static_cast<std::size_t>(i)];
      for (const Message& msg : mc.inbox()) {
        if (msg.tag != tags::kSketch) continue;
        auto items = msg.decode<detail::SketchItem>();
        sk.insert(sk.end(), items.begin(), items.end());
      }
      std::sort(sk.begin(), sk.end(),
                [](const auto& a, const auto& b) { return a.key < b.key; });
      splitters[static_cast<std::size_t>(i)].clear();
      if (i != group_base(i)) return;  // only group roots pick splitters
      const std::int64_t gsize = group_size(i);
      const std::int64_t buckets = ceil_div(gsize, sub_width(i));
      std::int64_t w_total = 0;
      for (const auto& item : sk) w_total += item.weight;
      auto& spl = splitters[static_cast<std::size_t>(i)];
      std::size_t pos = 0;
      std::int64_t acc = 0;
      for (std::int64_t t = 1; t < buckets; ++t) {
        const std::int64_t target = w_total * t / buckets;
        while (pos + 1 < sk.size() && acc + sk[pos].weight < target) {
          acc += sk[pos].weight;
          ++pos;
        }
        spl.push_back(sk.empty() ? 0 : sk[pos].key);
      }
    });

    // --- Broadcast splitters down each group's rank tree.
    for (int hop = 0; hop <= dmax; ++hop) {
      c.run_round([&](MachineCtx& mc) {
        const std::int64_t i = mc.id();
        for (const Message& msg : mc.inbox()) {
          if (msg.tag == tags::kSplitters) {
            splitters[static_cast<std::size_t>(i)] =
                msg.decode<std::int64_t>();
          }
        }
        const std::int64_t rank = i - group_base(i);
        if (tree_depth_of_rank(rank, f) != hop) return;
        for (std::int64_t k = 1; k <= f; ++k) {
          const std::int64_t child = rank * f + k;
          if (child >= group_size(i)) break;
          mc.send_items<std::int64_t>(group_base(i) + child, tags::kSplitters,
                                      splitters[static_cast<std::size_t>(i)]);
        }
      });
    }

    // --- Route fragments to their destination subgroups.
    c.run_round([&](MachineCtx& mc) {
      const std::int64_t i = mc.id();
      const std::int64_t base = group_base(i);
      const std::int64_t gsize = group_size(i);
      const std::int64_t rank = i - base;
      const auto& spl = splitters[static_cast<std::size_t>(i)];
      auto& v = dv.local(i);
      // v is sorted; fragment t = keys in [spl[t-1], spl[t]).
      std::size_t lo = 0;
      const std::int64_t buckets =
          static_cast<std::int64_t>(spl.size()) + 1;
      for (std::int64_t t = 0; t < buckets; ++t) {
        std::size_t hi = v.size();
        if (t < static_cast<std::int64_t>(spl.size())) {
          hi = static_cast<std::size_t>(
              std::lower_bound(v.begin() + static_cast<std::ptrdiff_t>(lo),
                               v.end(), spl[static_cast<std::size_t>(t)],
                               [&](const T& a, std::int64_t s) {
                                 return key(a) < s;
                               }) -
              v.begin());
        }
        if (hi > lo) {
          const std::int64_t w = sub_width(i);
          const std::int64_t sub_base = base + t * w;
          const std::int64_t sub_size = std::min(w, gsize - t * w);
          MONGE_DCHECK(sub_size > 0);
          const std::int64_t dest = sub_base + (rank % sub_size);
          mc.send_items<T>(dest, tags::kFragment,
                           std::span<const T>(v.data() + lo, hi - lo));
        }
        lo = hi;
      }
      v.clear();
    });
    c.run_round([&](MachineCtx& mc) {
      auto& v = dv.local(mc.id());
      for (const Message& msg : mc.inbox()) {
        if (msg.tag != tags::kFragment) continue;
        auto items = msg.decode<T>();
        v.insert(v.end(), items.begin(), items.end());
      }
      std::sort(v.begin(), v.end(), by_key);
    });

    // Descend into subgroups: machine i's next group is the subgroup of its
    // parent group that contains it.
    for (std::int64_t i = 0; i < m; ++i) {
      const std::int64_t base = group_base(i);
      const std::int64_t gsize = group_size(i);
      const std::int64_t w = sub_width(i);
      const std::int64_t t = (i - base) / w;
      grp_base[static_cast<std::size_t>(i)] = base + t * w;
      grp_size[static_cast<std::size_t>(i)] = std::min(w, gsize - t * w);
    }
  }

  // --- Exact rebalance to the canonical block layout.
  PerMachine<std::int64_t> counts(static_cast<std::size_t>(m));
  for (std::int64_t i = 0; i < m; ++i) {
    counts[static_cast<std::size_t>(i)] =
        static_cast<std::int64_t>(dv.local(i).size());
  }
  const PrefixResult pr = exclusive_prefix(c, counts);
  MONGE_CHECK(pr.total == dv.size());
  const BlockLayout& layout = dv.layout();
  c.run_round([&](MachineCtx& mc) {
    const std::int64_t i = mc.id();
    auto& v = dv.local(i);
    std::int64_t rank = pr.prefix[static_cast<std::size_t>(i)];
    std::size_t pos = 0;
    while (pos < v.size()) {
      const std::int64_t owner = layout.owner(rank);
      const std::int64_t take = std::min<std::int64_t>(
          static_cast<std::int64_t>(v.size() - pos), layout.hi(owner) - rank);
      // The tag carries the destination-local offset of this chunk.
      mc.send_items<T>(owner, (rank - layout.lo(owner)) << 8 | tags::kChunk,
                       std::span<const T>(v.data() + pos,
                                          static_cast<std::size_t>(take)));
      rank += take;
      pos += static_cast<std::size_t>(take);
    }
    v.clear();
  });
  c.run_round([&](MachineCtx& mc) {
    const std::int64_t i = mc.id();
    auto& v = dv.local(i);
    v.assign(static_cast<std::size_t>(layout.size(i)), T{});
    for (const Message& msg : mc.inbox()) {
      if ((msg.tag & 0xff) != tags::kChunk) continue;
      const std::int64_t offset = msg.tag >> 8;
      auto items = msg.decode<T>();
      for (std::size_t k = 0; k < items.size(); ++k) {
        v[static_cast<std::size_t>(offset) + k] = items[k];
      }
    }
  });
}

// ---------------------------------------------------------------------------
// Rank searching (Lemma 2.6) and permutation inversion (Lemma 2.3).
// ---------------------------------------------------------------------------

/// For each query key, the number of value keys strictly smaller than it.
/// Implemented exactly as the Lemma 2.6 proof: tag values/queries, sort
/// them together with queries preceding equal values, take a prefix sum of
/// the value indicator, and route answers back by query index.
/// Keys must fit in 62 bits (they are combined with a tie-break bit).
DistVector<std::int64_t> rank_search(Cluster& c,
                                     const DistVector<std::int64_t>& values,
                                     const DistVector<std::int64_t>& queries);

/// Lemma 2.3: inv[p[i]] = i in one routing step.
DistVector<std::int32_t> inverse_permutation(Cluster& c,
                                             const DistVector<std::int32_t>& p);

// ---------------------------------------------------------------------------
// Gather / element-wise prefix.
// ---------------------------------------------------------------------------

/// Collects the whole vector on `target` (host-visible return). Two rounds.
/// Strict mode throws SpaceLimitError when dv does not fit on one machine —
/// the scalability-restriction experiments rely on this.
template <typename T>
std::vector<T> gather_to_machine(Cluster& c, const DistVector<T>& dv,
                                 std::int64_t target) {
  std::vector<T> out(static_cast<std::size_t>(dv.size()));
  c.run_round([&](MachineCtx& mc) {
    const std::int64_t i = mc.id();
    const auto& v = dv.local(i);
    if (!v.empty()) {
      mc.send_items<T>(target, (dv.layout().lo(i)) << 8 | tags::kChunk, v);
    }
  });
  c.run_round([&](MachineCtx& mc) {
    if (mc.id() != target) return;
    for (const Message& msg : mc.inbox()) {
      if ((msg.tag & 0xff) != tags::kChunk) continue;
      const std::int64_t offset = msg.tag >> 8;
      auto items = msg.decode<T>();
      for (std::size_t k = 0; k < items.size(); ++k) {
        out[static_cast<std::size_t>(offset) + k] = items[k];
      }
    }
  });
  return out;
}

/// Element-wise exclusive prefix sum over a DistVector<int64>.
DistVector<std::int64_t> dv_exclusive_prefix(Cluster& c,
                                             const DistVector<std::int64_t>& v);

}  // namespace monge::mpc
