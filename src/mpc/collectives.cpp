#include "mpc/collectives.h"

namespace monge::mpc {

namespace detail {

std::vector<SketchItem> compress_sketch(std::vector<SketchItem> items,
                                        std::int64_t cap) {
  if (static_cast<std::int64_t>(items.size()) <= cap) return items;
  std::int64_t w_total = 0;
  for (const auto& it : items) w_total += it.weight;
  const std::int64_t step = std::max<std::int64_t>(1, ceil_div(w_total, cap));
  std::vector<SketchItem> out;
  out.reserve(static_cast<std::size_t>(cap) + 1);
  std::int64_t carry = 0;
  for (const auto& it : items) {
    carry += it.weight;
    if (carry >= step) {
      out.push_back(SketchItem{it.key, carry});
      carry = 0;
    }
  }
  if (carry > 0) out.push_back(SketchItem{items.back().key, carry});
  return out;
}

}  // namespace detail

namespace {

// Contiguous-range tree over machines [0, m): the node for range [lo, hi)
// lives on machine `lo`, and its children are the <= f near-equal chunks of
// [lo+1, hi). Unlike a heap-numbered tree, the preorder of this tree equals
// machine-id order, which is what prefix sums need.
struct RangeTree {
  std::vector<std::int64_t> parent;             // parent machine, -1 for root
  std::vector<int> depth;                       // 0 for root
  std::vector<std::vector<std::int64_t>> kids;  // child machines, in order
  int max_depth = 0;

  RangeTree(std::int64_t m, std::int64_t f) {
    parent.assign(static_cast<std::size_t>(m), -1);
    depth.assign(static_cast<std::size_t>(m), 0);
    kids.resize(static_cast<std::size_t>(m));
    if (m == 0) return;
    // DFS from the root range.
    std::vector<std::pair<std::int64_t, std::int64_t>> stack{{0, m}};
    while (!stack.empty()) {
      const auto [lo, hi] = stack.back();
      stack.pop_back();
      const std::int64_t start = lo + 1;
      const std::int64_t len = hi - start;
      if (len <= 0) continue;
      const std::int64_t parts = std::min<std::int64_t>(f, len);
      for (std::int64_t k = 0; k < parts; ++k) {
        const std::int64_t a = start + k * len / parts;
        const std::int64_t b = start + (k + 1) * len / parts;
        if (b <= a) continue;
        parent[static_cast<std::size_t>(a)] = lo;
        depth[static_cast<std::size_t>(a)] =
            depth[static_cast<std::size_t>(lo)] + 1;
        max_depth = std::max(max_depth, depth[static_cast<std::size_t>(a)]);
        kids[static_cast<std::size_t>(lo)].push_back(a);
        stack.push_back({a, b});
      }
    }
  }
};

}  // namespace

PrefixResult exclusive_prefix(Cluster& c,
                              const PerMachine<std::int64_t>& val) {
  const std::int64_t m = c.machines();
  MONGE_CHECK(static_cast<std::int64_t>(val.size()) == m);
  const std::int64_t f = collective_fanout(c);
  const RangeTree tree(m, f);

  // subtree[i] accumulates the sum of machine i's tree subtree; child_sum
  // records each child's subtree sum at the parent for the down-sweep.
  PerMachine<std::int64_t> subtree(val.begin(), val.end());
  PerMachine<std::vector<std::int64_t>> child_sum(static_cast<std::size_t>(m));
  for (std::int64_t i = 0; i < m; ++i) {
    child_sum[static_cast<std::size_t>(i)].assign(
        tree.kids[static_cast<std::size_t>(i)].size(), 0);
  }

  const auto absorb_up = [&](MachineCtx& mc) {
    const std::int64_t i = mc.id();
    for (const Message& msg : mc.inbox()) {
      if (msg.tag < tags::kUp) continue;
      const std::int64_t k = msg.tag - tags::kUp;  // child slot
      const auto v = msg.decode<std::int64_t>();
      child_sum[static_cast<std::size_t>(i)][static_cast<std::size_t>(k)] =
          v[0];
    }
    // Restartable: the subtree sum is recomputed from the overwrite-once
    // child slots (all of a node's children report in the same round), so
    // a re-executed round never double-absorbs a child.
    std::int64_t sum = val[static_cast<std::size_t>(i)];
    for (const std::int64_t cs : child_sum[static_cast<std::size_t>(i)]) {
      sum += cs;
    }
    subtree[static_cast<std::size_t>(i)] = sum;
  };

  // Up-sweep: depth-hop machines push their subtree sums to parents.
  for (int hop = tree.max_depth; hop >= 1; --hop) {
    c.run_round([&](MachineCtx& mc) {
      const std::int64_t i = mc.id();
      absorb_up(mc);
      if (tree.depth[static_cast<std::size_t>(i)] == hop) {
        const std::int64_t p = tree.parent[static_cast<std::size_t>(i)];
        const auto& siblings = tree.kids[static_cast<std::size_t>(p)];
        const std::int64_t slot =
            std::find(siblings.begin(), siblings.end(), i) - siblings.begin();
        mc.send(p, tags::kUp + slot, {subtree[static_cast<std::size_t>(i)]});
      }
    });
  }
  // Absorb the hop-1 sends at the root.
  PerMachine<std::int64_t> prefix(static_cast<std::size_t>(m), 0);
  PerMachine<std::int64_t> total(static_cast<std::size_t>(m), 0);
  c.run_round([&](MachineCtx& mc) {
    absorb_up(mc);
    if (mc.id() == 0) {
      prefix[0] = 0;
      total[0] = subtree[0];
    }
  });

  // Down-sweep. Children of a node cover the contiguous range after the
  // node itself, in order, so child k's exclusive prefix is
  // parent prefix + parent value + subtree sums of children 0..k-1.
  for (int hop = 0; hop <= tree.max_depth; ++hop) {
    c.run_round([&](MachineCtx& mc) {
      const std::int64_t i = mc.id();
      for (const Message& msg : mc.inbox()) {
        if (msg.tag != tags::kDown) continue;
        const auto v = msg.decode<std::int64_t>();
        prefix[static_cast<std::size_t>(i)] = v[0];
        total[static_cast<std::size_t>(i)] = v[1];
      }
      if (tree.depth[static_cast<std::size_t>(i)] != hop) return;
      std::int64_t acc = prefix[static_cast<std::size_t>(i)] +
                         val[static_cast<std::size_t>(i)];
      const auto& kids = tree.kids[static_cast<std::size_t>(i)];
      for (std::size_t k = 0; k < kids.size(); ++k) {
        mc.send(kids[k], tags::kDown, {acc, total[static_cast<std::size_t>(i)]});
        acc += child_sum[static_cast<std::size_t>(i)][k];
      }
    });
  }

  PrefixResult out;
  out.prefix = std::move(prefix);
  out.total = total.empty() ? 0 : total[0];
  return out;
}

std::vector<Word> broadcast_from(Cluster& c, std::int64_t root,
                                 std::vector<Word> payload) {
  const std::int64_t m = c.machines();
  const std::int64_t f = collective_fanout(c);
  const int dmax = tree_max_depth(m, f);
  // Tree ranks are machine ids rotated so that `root` is rank 0.
  const auto rank_of = [&](std::int64_t machine) {
    return (machine - root + m) % m;
  };
  const auto machine_of = [&](std::int64_t rank) { return (rank + root) % m; };

  PerMachine<std::vector<Word>> have(static_cast<std::size_t>(m));
  have[static_cast<std::size_t>(root)] = payload;
  for (int hop = 0; hop <= dmax; ++hop) {
    c.run_round([&](MachineCtx& mc) {
      const std::int64_t i = mc.id();
      for (const Message& msg : mc.inbox()) {
        if (msg.tag == tags::kBcast) {
          have[static_cast<std::size_t>(i)] = msg.payload;
        }
      }
      const std::int64_t rank = rank_of(i);
      if (tree_depth_of_rank(rank, f) != hop) return;
      for (std::int64_t k = 1; k <= f; ++k) {
        const std::int64_t child = rank * f + k;
        if (child >= m) break;
        mc.send(machine_of(child), tags::kBcast,
                have[static_cast<std::size_t>(i)]);
      }
    });
  }
  return payload;
}

DistVector<std::int64_t> rank_search(Cluster& c,
                                     const DistVector<std::int64_t>& values,
                                     const DistVector<std::int64_t>& queries) {
  const std::int64_t m = c.machines();
  const std::int64_t nv = values.size();
  const std::int64_t nq = queries.size();

  struct Tagged {
    std::int64_t sort_key;  // (key << 1) | is_value, so queries come first
    std::int64_t id;        // query index, or -1 for values
  };

  // 1. Build the combined vector (values then queries) by routing.
  PerMachine<std::vector<std::pair<std::int64_t, Tagged>>> items(
      static_cast<std::size_t>(m));
  for (std::int64_t i = 0; i < m; ++i) {
    const auto& vloc = values.local(i);
    const std::int64_t vlo = values.layout().lo(i);
    for (std::size_t k = 0; k < vloc.size(); ++k) {
      MONGE_DCHECK(std::llabs(vloc[k]) < (std::int64_t{1} << 62));
      items[static_cast<std::size_t>(i)].push_back(
          {vlo + static_cast<std::int64_t>(k),
           Tagged{(vloc[k] << 1) | 1, -1}});
    }
    const auto& qloc = queries.local(i);
    const std::int64_t qlo = queries.layout().lo(i);
    for (std::size_t k = 0; k < qloc.size(); ++k) {
      const std::int64_t qidx = qlo + static_cast<std::int64_t>(k);
      items[static_cast<std::size_t>(i)].push_back(
          {nv + qidx, Tagged{qloc[k] << 1, qidx}});
    }
  }
  DistVector<Tagged> combined = scatter_to_layout(c, nv + nq, items);

  // 2. Sort together; the tie-break bit puts each query before the values
  //    that share its key, so its rank counts strictly-smaller values.
  sample_sort(c, combined, [](const Tagged& t) { return t.sort_key; });

  // 3. Prefix-count the value indicator.
  PerMachine<std::int64_t> local_values(static_cast<std::size_t>(m), 0);
  for (std::int64_t i = 0; i < m; ++i) {
    for (const Tagged& t : combined.local(i)) {
      local_values[static_cast<std::size_t>(i)] += (t.id < 0);
    }
  }
  const PrefixResult pr = exclusive_prefix(c, local_values);

  // 4. Route answers back, aligned with the query layout.
  PerMachine<std::vector<std::pair<std::int64_t, std::int64_t>>> answers(
      static_cast<std::size_t>(m));
  for (std::int64_t i = 0; i < m; ++i) {
    std::int64_t rank = pr.prefix[static_cast<std::size_t>(i)];
    for (const Tagged& t : combined.local(i)) {
      if (t.id < 0) {
        ++rank;
      } else {
        answers[static_cast<std::size_t>(i)].push_back({t.id, rank});
      }
    }
  }
  return scatter_to_layout(c, nq, answers);
}

DistVector<std::int32_t> inverse_permutation(
    Cluster& c, const DistVector<std::int32_t>& p) {
  const std::int64_t m = c.machines();
  PerMachine<std::vector<std::pair<std::int64_t, std::int32_t>>> items(
      static_cast<std::size_t>(m));
  for (std::int64_t i = 0; i < m; ++i) {
    const auto& loc = p.local(i);
    const std::int64_t lo = p.layout().lo(i);
    for (std::size_t k = 0; k < loc.size(); ++k) {
      items[static_cast<std::size_t>(i)].push_back(
          {static_cast<std::int64_t>(loc[k]),
           static_cast<std::int32_t>(lo + static_cast<std::int64_t>(k))});
    }
  }
  return scatter_to_layout(c, p.size(), items);
}

DistVector<std::int64_t> dv_exclusive_prefix(
    Cluster& c, const DistVector<std::int64_t>& v) {
  const std::int64_t m = c.machines();
  PerMachine<std::int64_t> sums(static_cast<std::size_t>(m), 0);
  for (std::int64_t i = 0; i < m; ++i) {
    for (std::int64_t x : v.local(i)) sums[static_cast<std::size_t>(i)] += x;
  }
  const PrefixResult pr = exclusive_prefix(c, sums);
  DistVector<std::int64_t> out(c, v.size());
  c.run_round([&](MachineCtx& mc) {
    const std::int64_t i = mc.id();
    const auto& in = v.local(i);
    auto& loc = out.local(i);
    MONGE_CHECK(loc.size() == in.size());
    std::int64_t acc = pr.prefix[static_cast<std::size_t>(i)];
    for (std::size_t k = 0; k < in.size(); ++k) {
      loc[k] = acc;
      acc += in[k];
    }
  });
  return out;
}

}  // namespace monge::mpc
