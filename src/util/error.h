// Structured error taxonomy of the monge library.
//
// Every runtime condition a caller can meaningfully react to derives from
// monge::Error (itself std::runtime_error), so call sites can catch one
// base, switch on code(), or catch the concrete class:
//
//   * InvalidRequestError — a caller-provided configuration or request
//     value is out of range (bad MpcConfig, bad SolverOptions, malformed
//     FaultPlan). Retrying the same request cannot succeed.
//   * CodecError — a message payload cannot be decoded: its word count is
//     not a whole number of item strides (util/codec.h), i.e. the payload
//     was truncated or corrupted.
//   * FaultError — an injected fault could not be recovered: a machine
//     crashed in a round that started without a fresh checkpoint, a
//     resident structure had no restore hook, or the retry budget ran out
//     (mpc/fault.h, mpc/cluster.h).
//   * SpaceLimitError — a machine exceeded the s-word budget in strict
//     mode; this is how the fully-scalability claims are *measured*
//     (mpc/cluster.h).
//   * OverloadedError — the serving tier refused admission: the request
//     queue was at its configured depth under the rejecting admission
//     policy, or the service was shutting down (api/service.h). Retrying
//     the same request later can succeed — unlike InvalidRequestError.
//
// MONGE_CHECK contract violations (programming errors — bad shapes, broken
// invariants) remain std::logic_error: the taxonomy covers conditions of
// the *runtime*, not of the code. Solver::try_solve() maps both worlds to
// a non-throwing status + report.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>

namespace monge {

/// Machine-readable discriminator carried by every monge::Error.
enum class ErrorCode {
  kInvalidRequest = 1,  ///< caller-provided value out of range
  kCodec = 2,           ///< payload cannot be decoded
  kFault = 3,           ///< injected fault unrecoverable
  kSpaceLimit = 4,      ///< strict-mode space budget exceeded
  kOverloaded = 5,      ///< serving tier refused admission (queue full)
};

/// @return a stable lowercase name ("invalid-request", "codec", "fault",
///     "space-limit", "overloaded") for logs and reports.
inline const char* error_code_name(ErrorCode code) {
  switch (code) {
    case ErrorCode::kInvalidRequest:
      return "invalid-request";
    case ErrorCode::kCodec:
      return "codec";
    case ErrorCode::kFault:
      return "fault";
    case ErrorCode::kSpaceLimit:
      return "space-limit";
    case ErrorCode::kOverloaded:
      return "overloaded";
  }
  return "unknown";
}

/// Base of the taxonomy; never thrown directly — always one of the
/// concrete classes below.
class Error : public std::runtime_error {
 public:
  Error(ErrorCode code, const std::string& what)
      : std::runtime_error(what), code_(code) {}

  /// The machine-readable discriminator of the concrete class.
  ErrorCode code() const { return code_; }

 private:
  ErrorCode code_;
};

/// A caller-provided configuration or request value is invalid; retrying
/// the same request cannot succeed.
class InvalidRequestError : public Error {
 public:
  explicit InvalidRequestError(const std::string& what)
      : Error(ErrorCode::kInvalidRequest, what) {}
};

/// A word payload cannot be decoded as the requested item type (truncated
/// or corrupted stride — util/codec.h).
class CodecError : public Error {
 public:
  explicit CodecError(const std::string& what)
      : Error(ErrorCode::kCodec, what) {}
};

/// An injected fault exhausted the simulator's recovery options; carries
/// the first (lowest-id) affected machine and the round it struck.
class FaultError : public Error {
 public:
  FaultError(std::int64_t machine, std::int64_t round,
             const std::string& what)
      : Error(ErrorCode::kFault, "machine " + std::to_string(machine) +
                                     ", round " + std::to_string(round) +
                                     ": " + what),
        machine_(machine),
        round_(round) {}

  /// Lowest-id machine the unrecoverable fault struck.
  std::int64_t machine() const { return machine_; }
  /// Cluster round index (stats().rounds at round entry) of the fault.
  std::int64_t round() const { return round_; }

 private:
  std::int64_t machine_, round_;
};

/// The serving tier (api/service.h) refused to admit a request: the
/// bounded queue was at capacity under AdmissionPolicy::kReject, or the
/// service had begun shutting down. A retry after load drains can succeed.
class OverloadedError : public Error {
 public:
  explicit OverloadedError(const std::string& what)
      : Error(ErrorCode::kOverloaded, what) {}
};

/// Thrown in strict mode when a machine exceeds its space budget; carries
/// the machine, the observed words and the budget.
class SpaceLimitError : public Error {
 public:
  SpaceLimitError(std::int64_t machine, std::int64_t words,
                  std::int64_t limit, const char* what_kind)
      : Error(ErrorCode::kSpaceLimit,
              "machine " + std::to_string(machine) + " " + what_kind + " " +
                  std::to_string(words) + " words exceeds space budget " +
                  std::to_string(limit)),
        machine_(machine),
        words_(words),
        limit_(limit) {}

  std::int64_t machine() const { return machine_; }
  std::int64_t words() const { return words_; }
  std::int64_t limit() const { return limit_; }

 private:
  std::int64_t machine_, words_, limit_;
};

}  // namespace monge
