#ifndef MONGE_UTIL_OVERFLOW_H_
#define MONGE_UTIL_OVERFLOW_H_

#include <cstdint>
#include <initializer_list>

/// Exact overflow-aware integer arithmetic for capacity guards.
///
/// Motivation (found by the static-analysis baseline pass): the TreeIndex
/// packed-key guard in src/core/mpc_multiply.cpp used to evaluate
/// `subs * nodes * (h + 2) * coord_mult < 2^62` directly in int64. The
/// product overflows — undefined behavior — precisely in the regime the
/// guard exists to reject, so the check could "pass" on wrapped garbage.
/// A double-precision rewrite avoids the UB but loses exactness near 2^62
/// (1024-ulp spacing). These helpers keep the guard exact at any magnitude.

namespace monge::util {

/// @return true and set *out = a * b if the product of two non-negative
/// int64 values is representable; false (leaving *out unspecified) on
/// overflow. Division-based, so it is exact and portable — no dependence
/// on compiler builtins or wider integer types.
inline bool checked_mul_nonneg(std::int64_t a, std::int64_t b,
                               std::int64_t* out) {
  if (a == 0 || b == 0) {
    *out = 0;
    return true;
  }
  if (a > INT64_MAX / b) return false;
  *out = a * b;
  return true;
}

/// @return true iff the product of the non-negative factors is
/// representable in int64 AND strictly below `bound`. Overflow counts as
/// "not below": a guard written as `product_below({...}, limit)` fails
/// closed instead of wrapping.
inline bool product_below(std::initializer_list<std::int64_t> factors,
                          std::int64_t bound) {
  std::int64_t acc = 1;
  for (const std::int64_t f : factors) {
    if (!checked_mul_nonneg(acc, f, &acc)) return false;
  }
  return acc < bound;
}

}  // namespace monge::util

#endif  // MONGE_UTIL_OVERFLOW_H_
