// Word codec for trivially-copyable items.
//
// The MPC simulator moves everything as flat arrays of 64-bit words
// (mpc::Message payloads); typed senders/receivers pack and unpack arrays
// of trivially-copyable structs, each item padded up to whole words. Both
// halves of that codec used to live duplicated inside src/mpc/cluster.h
// (MachineCtx::send_items / Message::decode); they are hoisted here so the
// stride arithmetic and the memcpy loops exist exactly once.
//
// Contract: pack_words(items).size() == items.size() * kWordsPerItem<T>,
// padding bytes are zero, and unpack_words<T>(pack_words<T>(items)) is the
// identity for every trivially-copyable T (round-trip pinned by
// tests/test_codec.cpp).
#pragma once

#include <cstdint>
#include <cstring>
#include <span>
#include <string>
#include <type_traits>
#include <vector>

#include "util/error.h"

namespace monge::util {

/// Number of 64-bit words one packed T occupies (sizeof(T) rounded up to
/// whole words — the codec's stride).
template <typename T>
inline constexpr std::size_t kWordsPerItem = (sizeof(T) + 7) / 8;

/// Packs an array of T into a flat word array, one kWordsPerItem<T> stride
/// per item; padding bytes are zeroed so packed payloads compare equal.
template <typename T>
std::vector<std::int64_t> pack_words(std::span<const T> items) {
  static_assert(std::is_trivially_copyable_v<T>);
  constexpr std::size_t wpe = kWordsPerItem<T>;
  std::vector<std::int64_t> words(items.size() * wpe, 0);
  for (std::size_t i = 0; i < items.size(); ++i) {
    std::memcpy(words.data() + i * wpe, &items[i], sizeof(T));
  }
  return words;
}

/// Inverse of pack_words: words.size() must be a whole number of item
/// strides — a truncated or corrupted payload throws monge::CodecError
/// instead of misdecoding.
template <typename T>
std::vector<T> unpack_words(std::span<const std::int64_t> words) {
  static_assert(std::is_trivially_copyable_v<T>);
  constexpr std::size_t wpe = kWordsPerItem<T>;
  if (words.size() % wpe != 0) {
    throw CodecError("payload of " + std::to_string(words.size()) +
                     " words is not a whole number of " +
                     std::to_string(wpe) + "-word items");
  }
  std::vector<T> items(words.size() / wpe);
  for (std::size_t i = 0; i < items.size(); ++i) {
    // The static_assert above makes the memcpy well-defined even when T is
    // "non-trivial" only through default member initializers; the void* cast
    // tells -Wclass-memaccess exactly that.
    std::memcpy(static_cast<void*>(&items[i]), words.data() + i * wpe,
                sizeof(T));
  }
  return items;
}

}  // namespace monge::util
