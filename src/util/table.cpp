#include "util/table.h"

#include <algorithm>
#include <cstdint>
#include <iomanip>
#include <sstream>

#include "util/check.h"

namespace monge {

Table::Table(std::vector<std::string> header) {
  rows_.push_back(std::move(header));
}

Table& Table::add_row(std::vector<std::string> cells) {
  MONGE_CHECK_MSG(cells.size() == rows_[0].size(),
                  "row width " << cells.size() << " != header width "
                               << rows_[0].size());
  rows_.push_back(std::move(cells));
  return *this;
}

std::string Table::to_string() const {
  std::vector<std::size_t> width(rows_[0].size(), 0);
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      width[c] = std::max(width[c], row[c].size());
    }
  }
  std::ostringstream os;
  for (std::size_t r = 0; r < rows_.size(); ++r) {
    os << "  ";
    for (std::size_t c = 0; c < rows_[r].size(); ++c) {
      os << std::left << std::setw(static_cast<int>(width[c]) + 2)
         << rows_[r][c];
    }
    os << '\n';
    if (r == 0) {
      os << "  ";
      for (std::size_t c = 0; c < rows_[0].size(); ++c) {
        os << std::string(width[c], '-') << "  ";
      }
      os << '\n';
    }
  }
  return os.str();
}

std::string Table::num(double v, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << v;
  return os.str();
}

std::string Table::num(std::int64_t v) { return std::to_string(v); }

}  // namespace monge
