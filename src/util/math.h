// Small integer-math helpers shared by the simulator and the algorithms.
#pragma once

#include <cmath>
#include <cstdint>

#include "util/check.h"

namespace monge {

/// ceil(a / b) for non-negative a, positive b.
constexpr std::int64_t ceil_div(std::int64_t a, std::int64_t b) {
  return (a + b - 1) / b;
}

/// floor(log2(x)) for x >= 1.
constexpr int floor_log2(std::uint64_t x) {
  int r = 0;
  while (x >>= 1) ++r;
  return r;
}

/// ceil(log2(x)) for x >= 1.
constexpr int ceil_log2(std::uint64_t x) {
  return x <= 1 ? 0 : floor_log2(x - 1) + 1;
}

/// Integer power base^e (no overflow checks; callers keep results small).
constexpr std::int64_t ipow(std::int64_t base, int e) {
  std::int64_t r = 1;
  while (e-- > 0) r *= base;
  return r;
}

/// round(n^alpha) clamped to [1, n]; used for machine counts m = n^delta and
/// fan-outs H = n^eta where the paper's parameters are real exponents.
inline std::int64_t ipow_frac(std::int64_t n, double alpha) {
  MONGE_CHECK(n >= 1);
  if (alpha <= 0.0) return 1;
  if (alpha >= 1.0) return n;
  const double v = std::pow(static_cast<double>(n), alpha);
  auto r = static_cast<std::int64_t>(std::llround(v));
  if (r < 1) r = 1;
  if (r > n) r = n;
  return r;
}

/// Smallest power of two >= x (x >= 1).
constexpr std::int64_t next_pow2(std::int64_t x) {
  std::int64_t p = 1;
  while (p < x) p <<= 1;
  return p;
}

}  // namespace monge
