// A small work-stealing-free thread pool with a parallel_for helper.
//
// The MPC simulator uses it to run machine-local computation of one round
// concurrently, mirroring how a real cluster executes a superstep. The pool
// is created once per Cluster; parallel_for blocks until every chunk is done
// (a round is a barrier, exactly like a BSP superstep). The SolverService
// (api/service.h) posts its long-lived worker loops through post().
//
// Shutdown-drain guarantee: the destructor first runs EVERY task queued
// before destruction began, then joins — queued-but-unstarted work is never
// silently dropped, so a posted task's promise is always fulfilled. The
// complementary half of the contract is post()'s stop check: once
// destruction has begun post() refuses (returns false) instead of
// enqueuing into a pool whose workers may already have exited, which would
// strand the task (and any future riding on it) forever. Pinned by
// ThreadPool.ShutdownDrains* in tests/test_util.cpp.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace monge {

class ThreadPool {
 public:
  /// threads == 0 picks hardware_concurrency (at least 1).
  explicit ThreadPool(unsigned threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  unsigned thread_count() const { return static_cast<unsigned>(workers_.size()); }

  /// Enqueues fn for asynchronous execution on some worker and returns
  /// true. Returns false — WITHOUT enqueuing — once destruction has begun:
  /// the caller keeps ownership of the work (run it inline or drop it
  /// knowingly) instead of it vanishing into a dead queue. Every task
  /// accepted (true) is guaranteed to run: the destructor drains the queue
  /// before joining. fn must not throw (an escaping exception would
  /// std::terminate the worker); wrap fallible work in its own try/catch
  /// or a std::promise.
  bool post(std::function<void()> fn);

  /// Runs fn(i) for i in [0, n); blocks until all iterations complete.
  /// Iterations are chunked to limit scheduling overhead. Exceptions thrown
  /// by fn are rethrown (first one wins) on the calling thread.
  void parallel_for(std::int64_t n, const std::function<void(std::int64_t)>& fn);

  /// Fork-join: runs `a` and `b`, potentially concurrently, returning once
  /// both finished. `b` is offered to the pool while the caller runs `a`
  /// inline; while joining, the caller helps execute queued tasks instead of
  /// blocking, so invoke_two may be nested arbitrarily (including from
  /// worker threads) without deadlock. If `a` throws it is rethrown first,
  /// otherwise `b`'s exception is rethrown.
  void invoke_two(const std::function<void()>& a,
                  const std::function<void()>& b);

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> tasks_;
  std::mutex mu_;
  std::condition_variable cv_;
  bool stop_ = false;
};

}  // namespace monge
