// Lightweight runtime-check macros used across the library.
//
// MONGE_CHECK is always on (it guards API contracts and simulator
// invariants such as MPC space limits); MONGE_DCHECK compiles out in
// release builds and is used for hot-loop invariants.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace monge::detail {

[[noreturn]] inline void check_failed(const char* expr, const char* file,
                                      int line, const std::string& msg) {
  std::ostringstream os;
  os << "check failed: " << expr << " at " << file << ":" << line;
  if (!msg.empty()) os << " — " << msg;
  throw std::logic_error(os.str());
}

}  // namespace monge::detail

#define MONGE_CHECK(expr)                                               \
  do {                                                                  \
    if (!(expr))                                                        \
      ::monge::detail::check_failed(#expr, __FILE__, __LINE__, "");     \
  } while (0)

#define MONGE_CHECK_MSG(expr, msg)                                      \
  do {                                                                  \
    if (!(expr)) {                                                      \
      std::ostringstream os_;                                           \
      os_ << msg;                                                       \
      ::monge::detail::check_failed(#expr, __FILE__, __LINE__,          \
                                    os_.str());                         \
    }                                                                   \
  } while (0)

#ifdef NDEBUG
#define MONGE_DCHECK(expr) \
  do {                     \
  } while (0)
#else
#define MONGE_DCHECK(expr) MONGE_CHECK(expr)
#endif
