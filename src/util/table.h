// Plain-text table printer used by the benchmark harness to emit
// paper-style tables (rows/series) on stdout.
#pragma once

#include <string>
#include <vector>

namespace monge {

class Table {
 public:
  explicit Table(std::vector<std::string> header);

  Table& add_row(std::vector<std::string> cells);

  /// Renders with aligned columns; first row is underlined.
  std::string to_string() const;

  /// Convenience: format a double with the given precision.
  static std::string num(double v, int precision = 2);
  static std::string num(std::int64_t v);

 private:
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace monge
