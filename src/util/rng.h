// Deterministic PRNG (xoshiro256**) plus input-generation helpers.
//
// All tests and benchmarks seed explicitly so runs are reproducible; we do
// not use std::mt19937 because its distribution implementations differ
// between standard libraries.
#pragma once

#include <cstdint>
#include <numeric>
#include <vector>

#include "util/check.h"

namespace monge {

class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) {
    // splitmix64 seeding, as recommended by the xoshiro authors.
    std::uint64_t x = seed;
    for (auto& word : state_) {
      x += 0x9e3779b97f4a7c15ULL;
      std::uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
      word = z ^ (z >> 31);
    }
  }

  std::uint64_t next() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound).
  std::uint64_t next_below(std::uint64_t bound) {
    MONGE_CHECK(bound > 0);
    // Rejection sampling to avoid modulo bias.
    const std::uint64_t limit = ~std::uint64_t{0} - ~std::uint64_t{0} % bound;
    std::uint64_t x;
    do {
      x = next();
    } while (x >= limit);
    return x % bound;
  }

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t next_in(std::int64_t lo, std::int64_t hi) {
    MONGE_CHECK(lo <= hi);
    return lo + static_cast<std::int64_t>(
                    next_below(static_cast<std::uint64_t>(hi - lo + 1)));
  }

  double next_double() {  // in [0, 1)
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      std::size_t j = next_below(i);
      std::swap(v[i - 1], v[j]);
    }
  }

  /// Uniformly random permutation of [0, n) as a vector.
  std::vector<std::int32_t> permutation(std::int64_t n) {
    std::vector<std::int32_t> p(static_cast<std::size_t>(n));
    std::iota(p.begin(), p.end(), 0);
    shuffle(p);
    return p;
  }

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4];
};

}  // namespace monge
