#include "util/thread_pool.h"

#include <algorithm>
#include <exception>

#include "util/check.h"
#include "util/math.h"

namespace monge {

ThreadPool::ThreadPool(unsigned threads) {
  if (threads == 0) {
    threads = std::max(1u, std::thread::hardware_concurrency());
  }
  workers_.reserve(threads);
  for (unsigned i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

bool ThreadPool::post(std::function<void()> fn) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stop_) return false;
    tasks_.push(std::move(fn));
  }
  cv_.notify_one();
  return true;
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stop_ || !tasks_.empty(); });
      if (stop_ && tasks_.empty()) return;
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    task();
  }
}

void ThreadPool::invoke_two(const std::function<void()>& a,
                            const std::function<void()>& b) {
  if (thread_count() <= 1) {
    a();
    b();
    return;
  }

  // `b` and the join state are captured by reference: invoke_two never
  // returns before the enqueued task completes (the join loop below holds
  // until `done`, on every path), so the caller's frame outlives the task.
  struct Join {
    bool done = false;
    std::exception_ptr error;
  };
  Join join;
  {
    std::lock_guard<std::mutex> lock(mu_);
    tasks_.push([this, &join, &b] {
      std::exception_ptr error;
      try {
        b();
      } catch (...) {
        error = std::current_exception();
      }
      {
        std::lock_guard<std::mutex> inner(mu_);
        join.error = error;
        join.done = true;
      }
      cv_.notify_all();
    });
  }
  cv_.notify_one();

  std::exception_ptr error_a;
  try {
    a();
  } catch (...) {
    error_a = std::current_exception();
  }

  // Join: drain queued tasks (ours or anybody's) while `b` is pending. This
  // guarantees progress even when every worker is itself blocked in a
  // nested invoke_two. A helped task that throws must not abort the join —
  // returning with `b` still queued would dangle the captured references —
  // so its exception is held until `b` has completed.
  std::exception_ptr error_helped;
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [&] { return join.done || !tasks_.empty(); });
      if (join.done) break;
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    try {
      task();
    } catch (...) {
      if (!error_helped) error_helped = std::current_exception();
    }
  }

  if (error_a) std::rethrow_exception(error_a);
  if (join.error) std::rethrow_exception(join.error);
  if (error_helped) std::rethrow_exception(error_helped);
}

void ThreadPool::parallel_for(std::int64_t n,
                              const std::function<void(std::int64_t)>& fn) {
  if (n <= 0) return;
  const auto threads = static_cast<std::int64_t>(thread_count());
  // With a single worker (or tiny n) run inline: avoids latency and makes
  // single-core debugging deterministic.
  if (threads <= 1 || n == 1) {
    for (std::int64_t i = 0; i < n; ++i) fn(i);
    return;
  }

  const std::int64_t chunks = std::min<std::int64_t>(n, 4 * threads);
  const std::int64_t chunk = ceil_div(n, chunks);

  // The join state lives on this stack frame, so the last worker's final
  // touch of it must happen entirely under done_mu: decrementing a bare
  // atomic before taking the lock would let a (possibly spurious) caller
  // wake-up observe remaining == 0 and destroy the frame while the worker
  // is still entering the mutex — a use-after-scope that crashes rarely
  // and only under scheduling pressure.
  std::exception_ptr first_error;
  std::mutex done_mu;  // guards remaining and first_error
  std::condition_variable done_cv;

  std::int64_t scheduled = 0;
  for (std::int64_t lo = 0; lo < n; lo += chunk) ++scheduled;
  std::int64_t remaining = scheduled;

  for (std::int64_t lo = 0; lo < n; lo += chunk) {
    const std::int64_t hi = std::min(n, lo + chunk);
    std::function<void()> task = [&, lo, hi] {
      std::exception_ptr error;
      try {
        for (std::int64_t i = lo; i < hi; ++i) fn(i);
      } catch (...) {
        error = std::current_exception();
      }
      std::lock_guard<std::mutex> lock(done_mu);
      if (error && !first_error) first_error = error;
      if (--remaining == 0) done_cv.notify_all();
    };
    {
      std::lock_guard<std::mutex> lock(mu_);
      tasks_.push(std::move(task));
    }
    cv_.notify_one();
  }

  std::unique_lock<std::mutex> lock(done_mu);
  done_cv.wait(lock, [&] { return remaining == 0; });
  if (first_error) std::rethrow_exception(first_error);
}

}  // namespace monge
