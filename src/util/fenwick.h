// Fenwick (binary indexed) tree over a fixed-size array of integers.
// Used by sequential oracles (dominance counting, windowed LIS queries).
#pragma once

#include <cstdint>
#include <vector>

#include "util/check.h"

namespace monge {

class Fenwick {
 public:
  explicit Fenwick(std::int64_t n) : tree_(static_cast<std::size_t>(n) + 1) {}

  std::int64_t size() const { return static_cast<std::int64_t>(tree_.size()) - 1; }

  void add(std::int64_t i, std::int64_t delta) {
    MONGE_DCHECK(i >= 0 && i < size());
    for (++i; i <= size(); i += i & -i) tree_[static_cast<std::size_t>(i)] += delta;
  }

  /// Sum of entries [0, i)  (i in [0, size()]).
  std::int64_t prefix(std::int64_t i) const {
    MONGE_DCHECK(i >= 0 && i <= size());
    std::int64_t s = 0;
    for (; i > 0; i -= i & -i) s += tree_[static_cast<std::size_t>(i)];
    return s;
  }

  /// Sum of entries [lo, hi).
  std::int64_t range(std::int64_t lo, std::int64_t hi) const {
    return prefix(hi) - prefix(lo);
  }

  void reset() { std::fill(tree_.begin(), tree_.end(), 0); }

 private:
  std::vector<std::int64_t> tree_;
};

}  // namespace monge
