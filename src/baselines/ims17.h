// IMS17-style (1+ε)-approximate MPC LIS baseline (Table 1 rows 2 and 3).
//
// The skeleton follows [IMS17]: partition by machine blocks, compress each
// block's LIS information into a DP table over a value net of K thresholds
// (T_B[u][v] = LIS of the block restricted to values in net interval
// (u, v]), and combine tables by (max,+) products. Two variants:
//
//   * fully_scalable = true: tables merge pairwise up a binary tree —
//     Θ(log m) rounds, per-machine space Θ(K²), works for every δ.
//   * fully_scalable = false: every block ships its table to one machine
//     which runs the chain DP — O(1) rounds, but the coordinator must hold
//     m·K² words; in strict mode this throws SpaceLimitError once
//     m·K² > s, which is exactly the δ < 1/4-style restriction the paper's
//     Table 1 reports for the O(1)-round variant.
//
// The estimate never exceeds the true LIS and loses at most the elements
// straddling net thresholds at block boundaries (additive O(n·ε) for net
// size K = Θ(levels/ε); the (1+ε) multiplicative guarantee therefore holds
// for inputs whose LIS is Ω(n), and is validated empirically in the tests
// and the ablation bench). See DESIGN.md for this substitution.
#pragma once

#include <cstdint>
#include <span>

#include "mpc/cluster.h"

namespace monge::baselines {

struct Ims17Options {
  double eps = 0.1;
  bool fully_scalable = true;
  /// Net size override (0 = ceil(merge_levels / eps), clamped to [2, n]).
  std::int64_t net_size = 0;
};

struct Ims17Result {
  std::int64_t lis_estimate = 0;
  std::int64_t rounds = 0;
  std::int64_t net_size = 0;
  std::int64_t table_words = 0;  // per-block DP table size
};

Ims17Result ims17_lis(mpc::Cluster& cluster,
                      std::span<const std::int64_t> seq,
                      const Ims17Options& options = {});

}  // namespace monge::baselines
