#include "baselines/ims17.h"

#include <algorithm>
#include <limits>

#include "mpc/collectives.h"
#include "mpc/dist_vector.h"
#include "util/check.h"
#include "util/math.h"

namespace monge::baselines {

namespace {

using mpc::Cluster;
using mpc::MachineCtx;
using mpc::PerMachine;

/// T[u][v] for 0 <= u <= v <= K: LIS of `block` restricted to values in
/// (net[u], net[v]] (net[0] = -inf conceptually; net has K entries, and
/// index K means +inf). Flattened (K+1)x(K+1), row-major.
std::vector<std::int64_t> block_table(std::span<const std::int64_t> block,
                                      std::span<const std::int64_t> net) {
  const auto k = static_cast<std::int64_t>(net.size());
  std::vector<std::int64_t> table(
      static_cast<std::size_t>((k + 1) * (k + 1)), 0);
  for (std::int64_t u = 0; u <= k; ++u) {
    // Patience over elements with value strictly above net[u-1]. tails[L-1]
    // is the minimum possible maximum of an increasing subsequence of
    // length L, so an IS of length L fits (u, v] iff tails[L-1] <= net[v-1]
    // (the tail is the subsequence's largest element).
    std::vector<std::int64_t> tails;
    for (std::int64_t x : block) {
      if (u > 0 && x <= net[static_cast<std::size_t>(u - 1)]) continue;
      const auto it = std::lower_bound(tails.begin(), tails.end(), x);
      if (it == tails.end()) {
        tails.push_back(x);
      } else {
        *it = x;
      }
    }
    // Interval levels: L_0 = -inf, L_t = net[t-1]; T[u][v] covers (L_u, L_v].
    // net[k-1] is the maximum value, so L_k covers everything.
    for (std::int64_t v = std::max<std::int64_t>(u, 1); v <= k; ++v) {
      const std::int64_t bound = net[static_cast<std::size_t>(v - 1)];
      const auto it = std::upper_bound(tails.begin(), tails.end(), bound);
      table[static_cast<std::size_t>(u * (k + 1) + v)] =
          static_cast<std::int64_t>(it - tails.begin());
    }
  }
  return table;
}

/// (max,+) merge: left block strictly before right block.
std::vector<std::int64_t> merge_tables(const std::vector<std::int64_t>& a,
                                       const std::vector<std::int64_t>& b,
                                       std::int64_t k) {
  std::vector<std::int64_t> out(static_cast<std::size_t>((k + 1) * (k + 1)),
                                0);
  for (std::int64_t u = 0; u <= k; ++u) {
    for (std::int64_t v = u; v <= k; ++v) {
      std::int64_t best = 0;
      for (std::int64_t w = u; w <= v; ++w) {
        best = std::max(best,
                        a[static_cast<std::size_t>(u * (k + 1) + w)] +
                            b[static_cast<std::size_t>(w * (k + 1) + v)]);
      }
      out[static_cast<std::size_t>(u * (k + 1) + v)] = best;
    }
  }
  return out;
}

}  // namespace

Ims17Result ims17_lis(Cluster& cluster, std::span<const std::int64_t> seq,
                      const Ims17Options& options) {
  const auto n = static_cast<std::int64_t>(seq.size());
  const std::int64_t m = cluster.machines();
  Ims17Result out;
  const std::int64_t start = cluster.rounds();
  if (n == 0) return out;

  const auto levels = static_cast<std::int64_t>(
      std::max(1, ceil_log2(static_cast<std::uint64_t>(m))));
  std::int64_t k = options.net_size > 0
                       ? options.net_size
                       : static_cast<std::int64_t>(std::llround(
                             static_cast<double>(levels) / options.eps));
  k = std::clamp<std::int64_t>(k, 2, n);
  out.net_size = k;
  out.table_words = (k + 1) * (k + 1);

  // Value net = K quantiles, computed with one cluster sort (Lemma 2.5).
  auto dv = mpc::DistVector<std::int64_t>::from_host(cluster, seq);
  mpc::sample_sort(cluster, dv, [](std::int64_t x) { return x; });
  const auto sorted = dv.to_host();
  std::vector<std::int64_t> net;
  for (std::int64_t t = 1; t <= k; ++t) {
    net.push_back(sorted[static_cast<std::size_t>(
        std::min(n - 1, t * n / k))]);
  }
  net.erase(std::unique(net.begin(), net.end()), net.end());
  k = static_cast<std::int64_t>(net.size());
  out.net_size = k;
  out.table_words = (k + 1) * (k + 1);

  // Per-block tables (machine-local; blocks are the canonical layout).
  const mpc::BlockLayout layout{n, m};
  PerMachine<std::vector<std::int64_t>> tables(static_cast<std::size_t>(m));
  cluster.run_round([&](MachineCtx& mc) {
    const std::int64_t i = mc.id();
    tables[static_cast<std::size_t>(i)] = block_table(
        seq.subspan(static_cast<std::size_t>(layout.lo(i)),
                    static_cast<std::size_t>(layout.size(i))),
        net);
  });

  if (options.fully_scalable) {
    // Binary merge tree over machines; tables move as real messages.
    for (std::int64_t stride = 1; stride < m; stride *= 2) {
      cluster.run_round([&](MachineCtx& mc) {
        const std::int64_t i = mc.id();
        if ((i / stride) % 2 == 1 && i % stride == 0) {
          mc.send_items<std::int64_t>(i - stride, 0,
                                      tables[static_cast<std::size_t>(i)]);
        }
      });
      // Restartable: merge into a next buffer (overwrite), never in place,
      // so crash recovery can re-execute the round without double-merging.
      PerMachine<std::vector<std::int64_t>> next_tables(
          static_cast<std::size_t>(m));
      cluster.run_round([&](MachineCtx& mc) {
        const std::int64_t i = mc.id();
        auto merged = tables[static_cast<std::size_t>(i)];
        for (const mpc::Message& msg : mc.inbox()) {
          const auto other = msg.decode<std::int64_t>();
          merged = merge_tables(merged, other, k);
        }
        next_tables[static_cast<std::size_t>(i)] = std::move(merged);
      });
      tables.swap(next_tables);
    }
  } else {
    // O(1)-round variant: gather every table on machine 0. In strict mode
    // this throws once m·(K+1)² exceeds s — the scalability restriction.
    cluster.run_round([&](MachineCtx& mc) {
      if (mc.id() != 0) {
        mc.send_items<std::int64_t>(0, mc.id(),
                                    tables[static_cast<std::size_t>(mc.id())]);
      }
    });
    std::vector<std::int64_t> merged0;
    cluster.run_round([&](MachineCtx& mc) {
      if (mc.id() != 0) return;
      std::vector<std::pair<std::int64_t, std::vector<std::int64_t>>> got;
      for (const mpc::Message& msg : mc.inbox()) {
        got.push_back({msg.from, msg.decode<std::int64_t>()});
      }
      std::sort(got.begin(), got.end());
      // Restartable: accumulate into a fresh buffer, written by overwrite.
      auto acc = tables[0];
      for (auto& [from, tbl] : got) {
        acc = merge_tables(acc, tbl, k);
      }
      merged0 = std::move(acc);
    });
    tables[0] = std::move(merged0);
  }

  out.lis_estimate = tables[0][static_cast<std::size_t>(k)];
  out.rounds = cluster.rounds() - start;
  return out;
}

}  // namespace monge::baselines
