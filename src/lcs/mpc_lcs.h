// Corollary 1.3.1 on the cluster: MPC LCS = Hunt–Szymanski match pairs +
// the Theorem 1.3 MPC LIS over the match sequence.
#pragma once

#include <cstdint>
#include <span>

#include "lis/mpc_lis.h"
#include "mpc/cluster.h"

namespace monge::lcs {

struct MpcLcsResult {
  std::int64_t lcs = 0;
  std::int64_t matches = 0;  // size of the HS match sequence (input to LIS)
  std::int64_t rounds = 0;
};

/// LCS of two sequences. The match-pair generation is the standard HS
/// product; the cluster must be provisioned for the match count (the
/// paper's m = n^{1+δ} machines / Θ̃(n²) total space regime).
MpcLcsResult mpc_lcs(mpc::Cluster& cluster, std::span<const std::int64_t> s,
                     std::span<const std::int64_t> t,
                     const lis::MpcLisOptions& options = {});

/// Same, over a precomputed hs_match_sequence(s, t). For callers that
/// already needed the match sequence — e.g. to size the cluster from the
/// match count, as monge::Solver does — so the worst-case-quadratic HS
/// product is not generated twice. mpc_lcs delegates here; results and
/// round accounting are identical.
MpcLcsResult mpc_lcs_over_matches(mpc::Cluster& cluster,
                                  std::span<const std::int64_t> match_seq,
                                  const lis::MpcLisOptions& options = {});

}  // namespace monge::lcs
