#include "lcs/hunt_szymanski.h"

#include <algorithm>
#include <map>

#include "lis/sequential.h"

namespace monge::lcs {

HsOccurrences::HsOccurrences(std::span<const std::int64_t> t) {
  for (std::size_t j = 0; j < t.size(); ++j) {
    positions_[t[j]].push_back(static_cast<std::int64_t>(j));
  }
}

std::vector<std::int64_t> HsOccurrences::match_sequence(
    std::span<const std::int64_t> s) const {
  std::vector<std::int64_t> out;
  for (std::size_t i = 0; i < s.size(); ++i) {
    const auto it = positions_.find(s[i]);
    if (it == positions_.end()) continue;
    for (auto rj = it->second.rbegin(); rj != it->second.rend(); ++rj) {
      out.push_back(*rj);  // j descending within one i
    }
  }
  return out;
}

std::int64_t HsOccurrences::match_count(
    std::span<const std::int64_t> s) const {
  std::int64_t count = 0;
  for (std::size_t i = 0; i < s.size(); ++i) {
    const auto it = positions_.find(s[i]);
    if (it != positions_.end()) {
      count += static_cast<std::int64_t>(it->second.size());
    }
  }
  return count;
}

std::vector<std::int64_t> HsOccurrences::match_row_starts(
    std::span<const std::int64_t> s) const {
  std::vector<std::int64_t> starts;
  starts.reserve(s.size() + 1);
  starts.push_back(0);
  for (std::size_t i = 0; i < s.size(); ++i) {
    const auto it = positions_.find(s[i]);
    const std::int64_t run =
        it == positions_.end() ? 0
                               : static_cast<std::int64_t>(it->second.size());
    starts.push_back(starts.back() + run);
  }
  return starts;
}

std::vector<std::int64_t> hs_match_sequence(std::span<const std::int64_t> s,
                                            std::span<const std::int64_t> t) {
  return HsOccurrences(t).match_sequence(s);
}

std::int64_t hs_match_count(std::span<const std::int64_t> s,
                            std::span<const std::int64_t> t) {
  return HsOccurrences(t).match_count(s);
}

std::int64_t lcs_hs(std::span<const std::int64_t> s,
                    std::span<const std::int64_t> t) {
  const auto seq = hs_match_sequence(s, t);
  return lis::lis_length(seq);
}

std::int64_t lcs_dp(std::span<const std::int64_t> s,
                    std::span<const std::int64_t> t) {
  const auto ns = static_cast<std::int64_t>(s.size());
  const auto nt = static_cast<std::int64_t>(t.size());
  std::vector<std::int64_t> prev(static_cast<std::size_t>(nt) + 1, 0);
  std::vector<std::int64_t> cur(static_cast<std::size_t>(nt) + 1, 0);
  for (std::int64_t i = 1; i <= ns; ++i) {
    for (std::int64_t j = 1; j <= nt; ++j) {
      if (s[static_cast<std::size_t>(i - 1)] ==
          t[static_cast<std::size_t>(j - 1)]) {
        cur[static_cast<std::size_t>(j)] =
            prev[static_cast<std::size_t>(j - 1)] + 1;
      } else {
        cur[static_cast<std::size_t>(j)] =
            std::max(prev[static_cast<std::size_t>(j)],
                     cur[static_cast<std::size_t>(j - 1)]);
      }
    }
    std::swap(prev, cur);
  }
  return prev[static_cast<std::size_t>(nt)];
}

}  // namespace monge::lcs
