#include "lcs/mpc_lcs.h"

#include "lcs/hunt_szymanski.h"

namespace monge::lcs {

MpcLcsResult mpc_lcs(mpc::Cluster& cluster, std::span<const std::int64_t> s,
                     std::span<const std::int64_t> t,
                     const lis::MpcLisOptions& options) {
  return mpc_lcs_over_matches(cluster, hs_match_sequence(s, t), options);
}

MpcLcsResult mpc_lcs_over_matches(mpc::Cluster& cluster,
                                  std::span<const std::int64_t> match_seq,
                                  const lis::MpcLisOptions& options) {
  MpcLcsResult out;
  const std::int64_t start = cluster.rounds();
  out.matches = static_cast<std::int64_t>(match_seq.size());
  if (!match_seq.empty()) {
    const auto lis = lis::mpc_lis(cluster, match_seq, options);
    out.lcs = lis.lis;
  }
  out.rounds = cluster.rounds() - start;
  return out;
}

}  // namespace monge::lcs
