#include "lcs/mpc_lcs.h"

#include "lcs/hunt_szymanski.h"

namespace monge::lcs {

MpcLcsResult mpc_lcs(mpc::Cluster& cluster, std::span<const std::int64_t> s,
                     std::span<const std::int64_t> t,
                     const lis::MpcLisOptions& options) {
  MpcLcsResult out;
  const std::int64_t start = cluster.rounds();
  const auto seq = hs_match_sequence(s, t);
  out.matches = static_cast<std::int64_t>(seq.size());
  if (!seq.empty()) {
    const auto lis = lis::mpc_lis(cluster, seq, options);
    out.lcs = lis.lis;
  }
  out.rounds = cluster.rounds() - start;
  return out;
}

}  // namespace monge::lcs
