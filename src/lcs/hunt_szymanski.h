// Corollary 1.3.1: LCS via the Hunt–Szymanski reduction to strict LIS.
//
// List all matching pairs (i, j) with s_i == t_j in order (i asc, j desc);
// common subsequences of S and T correspond exactly to strictly increasing
// subsequences of the j-sequence. Requires Θ̃(#matches) total space — the
// paper's m = n^{1+δ} regime; for small alphabets #matches ≈ n²/σ.
//
// Representation note: when the match sequence feeds the seaweed-kernel
// route (Solver LCS on the engine/cluster paths), high-similarity S/T
// pairs yield nearly sorted match sequences and therefore near-identity
// kernel merges — the engine's density-adaptive dispatch
// (monge/core_sparse.h) picks those up automatically; nothing in this
// layer changes.
#pragma once

#include <cstdint>
#include <map>
#include <span>
#include <vector>

namespace monge::lcs {

/// Occurrence table of one text T: value -> positions j (ascending). Build
/// it once per distinct T and stream many queries S against it — the table
/// is the O(|t| log |t|) half of hs_match_sequence, so batch callers
/// (Solver::solve_batch over LcsRequests) amortize it across every request
/// sharing T instead of rebuilding it per pair.
class HsOccurrences {
 public:
  explicit HsOccurrences(std::span<const std::int64_t> t);

  /// All matching pairs' j values against the table's T, ordered by
  /// (i asc, j desc) — identical to hs_match_sequence(s, t).
  std::vector<std::int64_t> match_sequence(
      std::span<const std::int64_t> s) const;

  /// Number of matching pairs — match_sequence(s).size() without
  /// materializing the (worst-case |s|·|t|-sized) sequence: O(|s| log |t|).
  std::int64_t match_count(std::span<const std::int64_t> s) const;

  /// Offsets of each s-row's match run inside match_sequence(s): entry i is
  /// the number of matches contributed by s[0..i), so row i's matches
  /// occupy [starts[i], starts[i+1]) — size |s| + 1, last entry the total
  /// match count. Because the sequence is ordered (i asc, j desc), the
  /// matches of any s-substring s[i..j] are exactly the CONTIGUOUS window
  /// [starts[i], starts[j+1]) — the mapping query/semilocal_index.h uses to
  /// turn substring-LCS into window-LIS over the match sequence.
  std::vector<std::int64_t> match_row_starts(
      std::span<const std::int64_t> s) const;

 private:
  std::map<std::int64_t, std::vector<std::int64_t>> positions_;
};

/// All matching pairs' j values, ordered by (i asc, j desc).
std::vector<std::int64_t> hs_match_sequence(std::span<const std::int64_t> s,
                                            std::span<const std::int64_t> t);

/// Number of matching pairs (i, j) with s_i == t_j, without materializing
/// the match sequence. Always equal to hs_match_sequence(s, t).size().
std::int64_t hs_match_count(std::span<const std::int64_t> s,
                            std::span<const std::int64_t> t);

/// Sequential LCS via Hunt–Szymanski (patience on the match sequence).
std::int64_t lcs_hs(std::span<const std::int64_t> s,
                    std::span<const std::int64_t> t);

/// O(|s|·|t|) DP oracle.
std::int64_t lcs_dp(std::span<const std::int64_t> s,
                    std::span<const std::int64_t> t);

}  // namespace monge::lcs
