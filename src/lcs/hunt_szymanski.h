// Corollary 1.3.1: LCS via the Hunt–Szymanski reduction to strict LIS.
//
// List all matching pairs (i, j) with s_i == t_j in order (i asc, j desc);
// common subsequences of S and T correspond exactly to strictly increasing
// subsequences of the j-sequence. Requires Θ̃(#matches) total space — the
// paper's m = n^{1+δ} regime; for small alphabets #matches ≈ n²/σ.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace monge::lcs {

/// All matching pairs' j values, ordered by (i asc, j desc).
std::vector<std::int64_t> hs_match_sequence(std::span<const std::int64_t> s,
                                            std::span<const std::int64_t> t);

/// Sequential LCS via Hunt–Szymanski (patience on the match sequence).
std::int64_t lcs_hs(std::span<const std::int64_t> s,
                    std::span<const std::int64_t> t);

/// O(|s|·|t|) DP oracle.
std::int64_t lcs_dp(std::span<const std::int64_t> s,
                    std::span<const std::int64_t> t);

}  // namespace monge::lcs
