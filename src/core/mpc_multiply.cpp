#include "core/mpc_multiply.h"

#include <algorithm>
#include <cmath>
#include <map>

#include "monge/engine.h"
#include "monge/multiway.h"
#include "mpc/collectives.h"
#include "mpc/dist_vector.h"
#include "util/check.h"
#include "util/math.h"
#include "util/overflow.h"

namespace monge::core {

namespace {

using mpc::Cluster;
using mpc::DistVector;
using mpc::MachineCtx;
using mpc::PerMachine;

struct SubPoint {
  std::int32_t sub;
  std::int32_t row;
  std::int32_t col;
};

struct ColoredPt {
  std::int32_t sub;
  std::int32_t row;
  std::int32_t col;
  std::int32_t color;
};

/// Host-side description of one recursion level's subproblems. Every level
/// holds exactly n points in total, laid out sub-by-sub, so the global
/// index of (sub, local_row) is offset[sub] + local_row.
struct LevelMeta {
  std::vector<std::int64_t> offset;
  std::vector<std::int64_t> size;
  std::int64_t max_size = 0;

  std::int64_t subs() const { return static_cast<std::int64_t>(size.size()); }
  /// Subproblem owning a global index (offsets ascending).
  std::int32_t sub_of(std::int64_t global) const {
    const auto it =
        std::upper_bound(offset.begin(), offset.end(), global) - 1;
    return static_cast<std::int32_t>(it - offset.begin());
  }
};

// ---------------------------------------------------------------------------
// Distributed merge-tree index (§3.2's tree T, one sorted array per level).
// ---------------------------------------------------------------------------

struct RankQuery {
  std::int32_t level;
  std::int32_t sub;
  std::int64_t node_start;  // aligned to width(level)
  std::int32_t color;       // in [0, H+1]
  std::int64_t thr;         // exclusive upper bound on the free coordinate
};

class TreeIndex {
 public:
  /// row_axis: nodes partition the row coordinate, the free coordinate is
  /// the column (vertical grid lines); col_axis is the mirror image.
  TreeIndex(Cluster& c, const DistVector<ColoredPt>& pts,
            const LevelMeta& meta, std::int64_t h, std::int64_t fanout,
            bool row_axis)
      : h_(h), fanout_(fanout), coord_mult_(meta.max_size + 2) {
    // The root is strictly wider than any subproblem, so a descent that
    // never sees a positive δ ends at node_start >= size, which encodes
    // cmp = size + 1 ("no such i").
    top_ = 0;
    width_top_ = 1;
    while (width_top_ <= meta.max_size) {
      width_top_ *= fanout_;
      ++top_;
    }
    for (std::int32_t level = 0; level <= top_; ++level) {
      nodes_per_sub_.push_back(width_top_ / width(level));
    }
    // Exact, overflow-checked: the naive int64 product overflows (UB)
    // exactly when the guard should reject; see util/overflow.h.
    MONGE_CHECK(util::product_below(
        {meta.subs(), nodes_per_sub_[0], h_ + 2, coord_mult_},
        std::int64_t{1} << 62));
    for (std::int32_t level = 0; level <= top_; ++level) {
      DistVector<std::int64_t> keys(c, pts.size());
      c.run_round([&](MachineCtx& mc) {
        const auto& loc = pts.local(mc.id());
        auto& out = keys.local(mc.id());
        MONGE_CHECK(out.size() == loc.size());
        for (std::size_t k = 0; k < loc.size(); ++k) {
          const std::int64_t node =
              (row_axis ? loc[k].row : loc[k].col) / width(level);
          const std::int64_t free_coord = row_axis ? loc[k].col : loc[k].row;
          out[k] = pack(level, loc[k].sub, node, loc[k].color, free_coord);
        }
      });
      mpc::sample_sort(c, keys, [](std::int64_t x) { return x; });
      levels_.push_back(std::move(keys));
    }
  }

  std::int32_t top_level() const { return top_; }
  std::int64_t width(std::int32_t level) const {
    return ipow(fanout_, level);
  }

  std::int64_t pack(std::int32_t level, std::int64_t sub, std::int64_t node,
                    std::int64_t color, std::int64_t coord) const {
    return ((sub * nodes_per_sub_[static_cast<std::size_t>(level)] + node) *
                (h_ + 2) +
            color) *
               coord_mult_ +
           coord;
  }

  /// Answers #points with key < (query) for a batch of queries, grouping by
  /// tree level; each level present costs one offline rank search.
  std::vector<std::int64_t> answer(Cluster& c,
                                   const std::vector<RankQuery>& queries,
                                   std::int64_t* counter) const {
    std::vector<std::int64_t> result(queries.size(), 0);
    if (counter) *counter += static_cast<std::int64_t>(queries.size());
    std::map<std::int32_t, std::vector<std::size_t>> by_level;
    for (std::size_t i = 0; i < queries.size(); ++i) {
      by_level[queries[i].level].push_back(i);
    }
    for (const auto& [level, idx] : by_level) {
      std::vector<std::int64_t> keys;
      keys.reserve(idx.size());
      for (std::size_t i : idx) {
        const auto& q = queries[i];
        keys.push_back(pack(level, q.sub, q.node_start / width(level),
                            q.color, q.thr));
      }
      auto dq = DistVector<std::int64_t>::from_host(c, keys);
      const auto counts =
          mpc::rank_search(c, levels_[static_cast<std::size_t>(level)], dq)
              .to_host();
      for (std::size_t k = 0; k < idx.size(); ++k) result[idx[k]] = counts[k];
    }
    return result;
  }

 private:
  std::int64_t h_;
  std::int64_t fanout_;
  std::int64_t coord_mult_;
  std::int32_t top_ = 0;
  std::int64_t width_top_ = 1;
  std::vector<std::int64_t> nodes_per_sub_;
  std::vector<DistVector<std::int64_t>> levels_;
};

// ---------------------------------------------------------------------------
// Grid-line descent (§3.2).
// ---------------------------------------------------------------------------

struct LineTask {
  std::int32_t sub;
  std::int64_t pos;   // the fixed coordinate of this line, in [0, size]
  std::int64_t size;  // parent size
  // Filled by the descent:
  std::vector<std::int64_t> c_below;  // per color: #points with coord < pos
  std::vector<std::int64_t> totals;   // per color: #points
  // cmp[pair(q,r)] = first i with δ_{q,r}(i, pos) > 0 (size+1 if none).
  std::vector<std::int64_t> cmp;
  monge::LineData data;  // assembled intervals (grid_anchors filled later)
};

std::size_t pair_index(std::int32_t q, std::int32_t r, std::int64_t h) {
  // index of (q, r), q < r, in lexicographic pair order
  return static_cast<std::size_t>(q * (2 * h - q - 1) / 2 + (r - q - 1));
}

/// δ_{q,r}(0, pos) = Σ_{q<=x<r} (C_x(pos) − cnt_x)  (always <= 0).
std::int64_t delta_at_zero(const LineTask& line, std::int32_t q,
                           std::int32_t r) {
  std::int64_t v = 0;
  for (std::int32_t x = q; x < r; ++x) {
    v += line.c_below[static_cast<std::size_t>(x)] -
         line.totals[static_cast<std::size_t>(x)];
  }
  return v;
}

/// Runs all line descents against one axis index. `h` is the number of
/// colors. Fills c_below/totals/cmp/data for every line.
void run_line_descents(Cluster& c, const TreeIndex& tree,
                       std::vector<LineTask>& lines, std::int64_t h,
                       std::int64_t* query_counter) {
  // Phase A: base counts (root-node queries).
  {
    std::vector<RankQuery> qs;
    for (const auto& line : lines) {
      for (std::int32_t x = 0; x < h; ++x) {
        qs.push_back(RankQuery{tree.top_level(), line.sub, 0, x, line.pos});
        qs.push_back(RankQuery{tree.top_level(), line.sub, 0, x, 0});
      }
      qs.push_back(RankQuery{tree.top_level(), line.sub, 0,
                             static_cast<std::int32_t>(h), 0});
    }
    const auto ans = tree.answer(c, qs, query_counter);
    std::size_t at = 0;
    for (auto& line : lines) {
      line.c_below.assign(static_cast<std::size_t>(h), 0);
      line.totals.assign(static_cast<std::size_t>(h), 0);
      std::vector<std::int64_t> lo(static_cast<std::size_t>(h) + 1, 0);
      for (std::int32_t x = 0; x < h; ++x) {
        line.c_below[static_cast<std::size_t>(x)] = ans[at] - ans[at + 1];
        lo[static_cast<std::size_t>(x)] = ans[at + 1];
        at += 2;
      }
      lo[static_cast<std::size_t>(h)] = ans[at++];
      for (std::int32_t x = 0; x < h; ++x) {
        line.totals[static_cast<std::size_t>(x)] =
            lo[static_cast<std::size_t>(x) + 1] -
            lo[static_cast<std::size_t>(x)];
      }
    }
  }

  // Phase B: simultaneous descents for every (line, q<r) pair.
  struct Search {
    std::size_t line;
    std::int32_t q, r;
    std::int64_t node_start = 0;
    std::int64_t delta = 0;  // δ at node_start (invariant: <= 0)
  };
  std::vector<Search> searches;
  for (std::size_t li = 0; li < lines.size(); ++li) {
    lines[li].cmp.assign(static_cast<std::size_t>(h * (h - 1) / 2), 0);
    for (std::int32_t q = 0; q < h; ++q) {
      for (std::int32_t r = q + 1; r < h; ++r) {
        Search s;
        s.line = li;
        s.q = q;
        s.r = r;
        s.delta = delta_at_zero(lines[li], q, r);
        searches.push_back(s);
      }
    }
  }

  const std::int64_t f = tree.width(1);
  for (std::int32_t level = tree.top_level(); level >= 1; --level) {
    const std::int64_t w = tree.width(level - 1);
    std::vector<RankQuery> qs;
    qs.reserve(searches.size() * static_cast<std::size_t>(2 * f));
    for (const auto& s : searches) {
      for (std::int64_t k = 0; k < f; ++k) {
        const std::int64_t child = s.node_start + k * w;
        qs.push_back(RankQuery{static_cast<std::int32_t>(level - 1),
                               lines[s.line].sub, child, s.r,
                               lines[s.line].pos});
        qs.push_back(RankQuery{static_cast<std::int32_t>(level - 1),
                               lines[s.line].sub, child, s.q,
                               lines[s.line].pos});
      }
    }
    const auto ans = tree.answer(c, qs, query_counter);
    std::size_t at = 0;
    for (auto& s : searches) {
      // Boundary deltas: δ(start + (k+1)w) = δ(start + kw) + Δ_k with
      // Δ_k = RANK(child_k, r, pos) − RANK(child_k, q, pos).
      std::int64_t best_k = 0;
      std::int64_t best_delta = s.delta;
      std::int64_t cur = s.delta;
      for (std::int64_t k = 0; k < f; ++k) {
        const std::int64_t d = ans[at] - ans[at + 1];
        at += 2;
        if (k + 1 < f) {
          cur += d;
          if (cur <= 0) {
            best_k = k + 1;
            best_delta = cur;
          }
        }
      }
      s.node_start += best_k * w;
      s.delta = best_delta;
    }
  }

  for (const auto& s : searches) {
    auto& line = lines[s.line];
    // Leaf node [t, t+1) with δ(t) <= 0; δ(t+1) > 0 or t beyond the end.
    line.cmp[pair_index(s.q, s.r, h)] =
        std::min<std::int64_t>(s.node_start + 1, line.size + 1);
  }

  // Assemble opt intervals per line: opt(0) = 0 always (δ_{q,r}(0) <= 0);
  // opt can change only at cmp breakpoints.
  for (auto& line : lines) {
    std::vector<std::int64_t> bps(line.cmp.begin(), line.cmp.end());
    std::sort(bps.begin(), bps.end());
    bps.erase(std::unique(bps.begin(), bps.end()), bps.end());
    const auto opt_at = [&](std::int64_t i) {
      std::int32_t best = 0;
      for (std::int32_t r = 1; r < h; ++r) {
        if (i >= line.cmp[pair_index(best, r, h)]) best = r;
      }
      return best;
    };
    line.data.pos = line.pos;
    line.data.start = {0};
    line.data.value = {0};
    for (std::int64_t bp : bps) {
      if (bp <= 0 || bp > line.size) continue;
      const std::int32_t v = opt_at(bp);
      if (v != line.data.value.back()) {
        line.data.start.push_back(bp);
        line.data.value.push_back(v);
      }
    }
  }
}

/// Decomposes [0, end) into tree nodes (aligned, widths F^l), greedily from
/// the largest width. At most (F-1)·levels nodes.
std::vector<std::pair<std::int32_t, std::int64_t>> node_decomposition(
    const TreeIndex& tree, std::int64_t end) {
  std::vector<std::pair<std::int32_t, std::int64_t>> out;
  std::int64_t pos = 0;
  for (std::int32_t level = tree.top_level(); level >= 0 && pos < end;
       --level) {
    const std::int64_t w = tree.width(level);
    while (pos + w <= end) {
      out.push_back({level, pos});
      pos += w;
    }
  }
  MONGE_CHECK(pos == end);
  return out;
}

}  // namespace

std::vector<Perm> mpc_unit_monge_multiply_batch(
    Cluster& cluster, const std::vector<std::pair<Perm, Perm>>& pairs,
    const MpcMultiplyOptions& options, MpcMultiplyReport* report) {
  const std::int64_t m = cluster.machines();

  MpcMultiplyReport rep;
  const std::int64_t start_rounds = cluster.rounds();

  // Level 0: one subproblem per input pair.
  LevelMeta meta0;
  meta0.max_size = 0;
  std::vector<SubPoint> host_a, host_b;
  for (std::size_t t = 0; t < pairs.size(); ++t) {
    const Perm& a = pairs[t].first;
    const Perm& b = pairs[t].second;
    MONGE_CHECK_MSG(a.is_full_permutation() && b.is_full_permutation(),
                    "Theorem 1.1 takes full permutations; use "
                    "mpc_subunit_multiply for sub-permutations");
    MONGE_CHECK(b.rows() == a.rows());
    meta0.offset.push_back(meta0.offset.empty()
                               ? 0
                               : meta0.offset.back() + meta0.size.back());
    meta0.size.push_back(a.rows());
    meta0.max_size = std::max(meta0.max_size, a.rows());
    for (std::int64_t r = 0; r < a.rows(); ++r) {
      host_a.push_back(SubPoint{static_cast<std::int32_t>(t),
                                static_cast<std::int32_t>(r), a.col_of(r)});
      host_b.push_back(SubPoint{static_cast<std::int32_t>(t),
                                static_cast<std::int32_t>(r), b.col_of(r)});
    }
  }
  const auto n = static_cast<std::int64_t>(host_a.size());  // total points

  // Resolve the schedule from the largest problem in the batch.
  const std::int64_t n_sched = std::max<std::int64_t>(meta0.max_size, 2);
  const double delta =
      std::log(static_cast<double>(std::max<std::int64_t>(m, 2))) /
      std::log(static_cast<double>(n_sched));
  const double eta =
      options.split_eta >= 0 ? options.split_eta
                             : std::max(0.0, (1.0 - delta)) / 10.0;
  const std::int64_t h_split =
      options.split_h > 0 ? options.split_h
                          : std::max<std::int64_t>(2, ipow_frac(n_sched, eta));
  const std::int64_t fanout =
      options.tree_fanout > 0 ? options.tree_fanout : h_split;
  const std::int64_t g = options.box_g > 0
                             ? options.box_g
                             : std::max<std::int64_t>(1, ceil_div(n, m));
  rep.split_h = h_split;
  rep.tree_fanout = fanout;
  rep.box_g = g;

  if (n == 0) {
    if (report) *report = rep;
    std::vector<Perm> out;
    for (const auto& pr : pairs) out.push_back(Perm(pr.first.rows(), pr.first.rows()));
    return out;
  }

  auto a_pts = DistVector<SubPoint>::from_host(cluster, host_a);
  auto b_pts = DistVector<SubPoint>::from_host(cluster, host_b);

  std::vector<LevelMeta> metas;
  metas.push_back(std::move(meta0));

  // -------------------------------------------------------------------
  // Top-down split phase (§3.1): one sort of PA and PB per level.
  // -------------------------------------------------------------------
  std::vector<DistVector<std::int32_t>> row_maps, col_maps;
  while (metas.back().max_size > g) {
    const LevelMeta& meta = metas.back();
    LevelMeta next;
    next.max_size = 0;
    for (std::int64_t t = 0; t < meta.subs(); ++t) {
      const std::int64_t k = meta.size[static_cast<std::size_t>(t)];
      for (std::int64_t q = 0; q < h_split; ++q) {
        const std::int64_t sz = (q + 1) * k / h_split - q * k / h_split;
        next.offset.push_back(
            next.offset.empty()
                ? 0
                : next.offset.back() + next.size.back());
        next.size.push_back(sz);
        next.max_size = std::max(next.max_size, sz);
      }
    }

    // Child id and block base for a point, given its splitting coordinate.
    const auto child_of = [&](std::int32_t sub, std::int64_t coord) {
      const std::int64_t k = meta.size[static_cast<std::size_t>(sub)];
      const std::int64_t q = std::min<std::int64_t>(
          h_split - 1, coord * h_split / std::max<std::int64_t>(k, 1));
      // floor rounding can be off by one around block boundaries
      std::int64_t qq = q;
      while (qq > 0 && coord < qq * k / h_split) --qq;
      while (qq + 1 < h_split && coord >= (qq + 1) * k / h_split) ++qq;
      return qq;
    };
    const auto block_base = [&](std::int32_t sub, std::int64_t q) {
      const std::int64_t k = meta.size[static_cast<std::size_t>(sub)];
      return q * k / h_split;
    };

    const std::int64_t key_mult = meta.max_size + 1;

    // PA: child by column block, rows compacted by rank (the sort), columns
    // shifted into the block.
    mpc::sample_sort(cluster, a_pts, [&](const SubPoint& p) {
      const std::int64_t q = child_of(p.sub, p.col);
      return (static_cast<std::int64_t>(p.sub) * h_split + q) * key_mult +
             p.row;
    });
    DistVector<std::int32_t> row_map(cluster, n);
    cluster.run_round([&](MachineCtx& mc) {
      auto& loc = a_pts.local(mc.id());
      auto& map_loc = row_map.local(mc.id());
      const std::int64_t lo = a_pts.layout().lo(mc.id());
      for (std::size_t i = 0; i < loc.size(); ++i) {
        const std::int64_t global = lo + static_cast<std::int64_t>(i);
        const std::int32_t child = next.sub_of(global);
        map_loc[i] = loc[i].row;  // parent-local row of this child row
        const std::int64_t q = child % h_split;
        loc[i].col = static_cast<std::int32_t>(
            loc[i].col - block_base(loc[i].sub, q));
        loc[i].row = static_cast<std::int32_t>(
            global - next.offset[static_cast<std::size_t>(child)]);
        loc[i].sub = child;
      }
    });

    // PB: child by row block, columns compacted by rank, rows shifted.
    mpc::sample_sort(cluster, b_pts, [&](const SubPoint& p) {
      const std::int64_t q = child_of(p.sub, p.row);
      return (static_cast<std::int64_t>(p.sub) * h_split + q) * key_mult +
             p.col;
    });
    DistVector<std::int32_t> col_map(cluster, n);
    cluster.run_round([&](MachineCtx& mc) {
      auto& loc = b_pts.local(mc.id());
      auto& map_loc = col_map.local(mc.id());
      const std::int64_t lo = b_pts.layout().lo(mc.id());
      for (std::size_t i = 0; i < loc.size(); ++i) {
        const std::int64_t global = lo + static_cast<std::int64_t>(i);
        const std::int32_t child = next.sub_of(global);
        map_loc[i] = loc[i].col;  // parent-local column of this child column
        const std::int64_t q = child % h_split;
        loc[i].row = static_cast<std::int32_t>(
            loc[i].row - block_base(loc[i].sub, q));
        loc[i].col = static_cast<std::int32_t>(
            global - next.offset[static_cast<std::size_t>(child)]);
        loc[i].sub = child;
      }
    });

    row_maps.push_back(std::move(row_map));
    col_maps.push_back(std::move(col_map));
    metas.push_back(std::move(next));
  }
  rep.levels = static_cast<std::int64_t>(metas.size()) - 1;

  // -------------------------------------------------------------------
  // Leaf solve: every subproblem fits one machine.
  // -------------------------------------------------------------------
  const LevelMeta& leaf = metas.back();
  const mpc::BlockLayout leaf_owner{n, m};
  const auto leaf_machine = [&](std::int32_t sub) {
    return leaf.size[static_cast<std::size_t>(sub)] == 0
               ? 0
               : leaf_owner.owner(leaf.offset[static_cast<std::size_t>(sub)]);
  };
  PerMachine<std::vector<std::pair<std::int64_t, SubPoint>>> a_out(
      static_cast<std::size_t>(m)),
      b_out(static_cast<std::size_t>(m));
  for (std::int64_t i = 0; i < m; ++i) {
    for (const SubPoint& p : a_pts.local(i)) {
      a_out[static_cast<std::size_t>(i)].push_back({leaf_machine(p.sub), p});
    }
    for (const SubPoint& p : b_pts.local(i)) {
      b_out[static_cast<std::size_t>(i)].push_back({leaf_machine(p.sub), p});
    }
  }
  const auto a_in = mpc::route_items<SubPoint>(cluster, a_out);
  const auto b_in = mpc::route_items<SubPoint>(cluster, b_out);

  PerMachine<std::vector<std::pair<std::int64_t, SubPoint>>> c_out(
      static_cast<std::size_t>(m));
  cluster.run_round([&](MachineCtx& mc) {
    const std::int64_t i = mc.id();
    c_out[static_cast<std::size_t>(i)].clear();  // restartable on recovery
    // Group the received points by subproblem.
    std::map<std::int32_t, std::vector<SubPoint>> as, bs;
    for (const SubPoint& p : a_in[static_cast<std::size_t>(i)]) {
      as[p.sub].push_back(p);
    }
    for (const SubPoint& p : b_in[static_cast<std::size_t>(i)]) {
      bs[p.sub].push_back(p);
    }
    // Pack every leaf into one contiguous buffer and hand the whole batch
    // to this worker thread's engine in ONE call: a single arena sizing
    // and zero per-leaf heap allocations, instead of one multiply_raw
    // (with its own output vector) per leaf. Machines still run
    // concurrently on the cluster pool; within a machine the batch is
    // solved back-to-back (the thread-local engine is sequential).
    std::int64_t total = 0;
    for (auto& [sub, ap] : as) {
      const std::int64_t k = leaf.size[static_cast<std::size_t>(sub)];
      MONGE_CHECK_MSG(static_cast<std::int64_t>(ap.size()) == k &&
                          static_cast<std::int64_t>(bs[sub].size()) == k,
                      "leaf sub " << sub << " expected " << k << " points, got "
                                  << ap.size() << "/" << bs[sub].size());
      total += k;
    }
    std::vector<std::int32_t> pa_store(static_cast<std::size_t>(total)),
        pb_store(static_cast<std::size_t>(total)),
        pc_store(static_cast<std::size_t>(total));
    std::vector<std::int32_t> batch_subs;
    std::vector<std::int64_t> batch_offsets;
    std::int64_t at = 0;
    for (auto& [sub, ap] : as) {
      const std::int64_t k = leaf.size[static_cast<std::size_t>(sub)];
      for (const SubPoint& p : ap) {
        MONGE_CHECK_MSG(p.row >= 0 && p.row < k && p.col >= 0 && p.col < k,
                        "leaf A point out of range: sub " << sub << " row "
                                                          << p.row << " col "
                                                          << p.col << " k "
                                                          << k);
        pa_store[static_cast<std::size_t>(at + p.row)] = p.col;
      }
      for (const SubPoint& p : bs[sub]) {
        MONGE_CHECK_MSG(p.row >= 0 && p.row < k && p.col >= 0 && p.col < k,
                        "leaf B point out of range: sub " << sub << " row "
                                                          << p.row << " col "
                                                          << p.col << " k "
                                                          << k);
        pb_store[static_cast<std::size_t>(at + p.row)] = p.col;
      }
      batch_subs.push_back(sub);
      batch_offsets.push_back(at);
      at += k;
    }
    std::vector<PermPairView> views;
    std::vector<std::span<std::int32_t>> outs;
    views.reserve(batch_subs.size());
    outs.reserve(batch_subs.size());
    for (std::size_t j = 0; j < batch_subs.size(); ++j) {
      const auto off = static_cast<std::size_t>(batch_offsets[j]);
      const auto k = static_cast<std::size_t>(
          leaf.size[static_cast<std::size_t>(batch_subs[j])]);
      views.push_back({std::span<const std::int32_t>(pa_store).subspan(off, k),
                       std::span<const std::int32_t>(pb_store).subspan(off, k)});
      outs.push_back(std::span<std::int32_t>(pc_store).subspan(off, k));
    }
    default_seaweed_engine().multiply_batch_into(views, outs);
    for (std::size_t j = 0; j < batch_subs.size(); ++j) {
      const std::int32_t sub = batch_subs[j];
      const std::int64_t k = leaf.size[static_cast<std::size_t>(sub)];
      for (std::int64_t r = 0; r < k; ++r) {
        c_out[static_cast<std::size_t>(i)].push_back(
            {leaf.offset[static_cast<std::size_t>(sub)] + r,
             SubPoint{sub, static_cast<std::int32_t>(r),
                      pc_store[static_cast<std::size_t>(batch_offsets[j] + r)]}});
      }
    }
  });
  auto c_pts = mpc::scatter_to_layout<SubPoint>(cluster, n, c_out);

  // -------------------------------------------------------------------
  // Bottom-up combines.
  // -------------------------------------------------------------------
  for (std::int64_t level = rep.levels - 1; level >= 0; --level) {
    const LevelMeta& parent = metas[static_cast<std::size_t>(level)];
    const LevelMeta& child = metas[static_cast<std::size_t>(level) + 1];
    const DistVector<std::int32_t>& row_map =
        row_maps[static_cast<std::size_t>(level)];
    const DistVector<std::int32_t>& col_map =
        col_maps[static_cast<std::size_t>(level)];

    // --- Expand child results to parent coordinates. The row map is
    // index-aligned with c_pts (child row r of child t sits at global index
    // offset[t]+r), so rows resolve locally; columns need one lookup trip.
    struct ColReq {
      std::int64_t back_idx;  // global index of the requesting entry
      std::int64_t map_idx;   // col_map index to read
    };
    PerMachine<std::vector<std::pair<std::int64_t, ColReq>>> req_out(
        static_cast<std::size_t>(m));
    for (std::int64_t i = 0; i < m; ++i) {
      const std::int64_t lo = c_pts.layout().lo(i);
      const auto& loc = c_pts.local(i);
      for (std::size_t k = 0; k < loc.size(); ++k) {
        const std::int64_t map_idx =
            child.offset[static_cast<std::size_t>(loc[k].sub)] + loc[k].col;
        req_out[static_cast<std::size_t>(i)].push_back(
            {col_map.layout().owner(map_idx),
             ColReq{lo + static_cast<std::int64_t>(k), map_idx}});
      }
    }
    const auto reqs = mpc::route_items<ColReq>(cluster, req_out);
    struct ColAns {
      std::int64_t back_idx;
      std::int32_t value;
    };
    PerMachine<std::vector<std::pair<std::int64_t, ColAns>>> ans_out(
        static_cast<std::size_t>(m));
    for (std::int64_t i = 0; i < m; ++i) {
      const std::int64_t lo = col_map.layout().lo(i);
      for (const ColReq& rq : reqs[static_cast<std::size_t>(i)]) {
        ans_out[static_cast<std::size_t>(i)].push_back(
            {c_pts.layout().owner(rq.back_idx),
             ColAns{rq.back_idx,
                    col_map.local(i)[static_cast<std::size_t>(
                        rq.map_idx - lo)]}});
      }
    }
    const auto answers = mpc::route_items<ColAns>(cluster, ans_out);

    // Build the colored union in parent coordinates.
    PerMachine<std::vector<std::pair<std::int64_t, ColoredPt>>> u_out(
        static_cast<std::size_t>(m));
    for (std::int64_t i = 0; i < m; ++i) {
      const std::int64_t lo = c_pts.layout().lo(i);
      const auto& loc = c_pts.local(i);
      const auto& rm = row_map.local(i);
      for (const ColAns& an : answers[static_cast<std::size_t>(i)]) {
        const auto k = static_cast<std::size_t>(an.back_idx - lo);
        const SubPoint& p = loc[k];
        const std::int32_t psub =
            static_cast<std::int32_t>(p.sub / h_split);
        const std::int32_t color =
            static_cast<std::int32_t>(p.sub % h_split);
        const std::int32_t prow = rm[k];  // aligned with this entry
        const ColoredPt cp{psub, prow, an.value, color};
        u_out[static_cast<std::size_t>(i)].push_back(
            {parent.offset[static_cast<std::size_t>(psub)] + prow, cp});
      }
    }
    auto u_pts = mpc::scatter_to_layout<ColoredPt>(cluster, n, u_out);

    // --- Merge-tree indices for both axes.
    const TreeIndex row_tree(cluster, u_pts, parent, h_split, fanout, true);
    const TreeIndex col_tree(cluster, u_pts, parent, h_split, fanout, false);

    // --- Grid lines: descents on both axes.
    std::vector<LineTask> vlines, hlines;
    std::vector<std::vector<std::size_t>> vline_of(
        static_cast<std::size_t>(parent.subs()));
    std::vector<std::vector<std::size_t>> hline_of(
        static_cast<std::size_t>(parent.subs()));
    for (std::int64_t t = 0; t < parent.subs(); ++t) {
      const std::int64_t k = parent.size[static_cast<std::size_t>(t)];
      if (k == 0) continue;
      const std::int64_t nb = ceil_div(k, g);
      for (std::int64_t j = 0; j <= nb; ++j) {
        vline_of[static_cast<std::size_t>(t)].push_back(vlines.size());
        vlines.push_back(LineTask{static_cast<std::int32_t>(t),
                                  std::min(j * g, k), k, {}, {}, {}, {}});
        hline_of[static_cast<std::size_t>(t)].push_back(hlines.size());
        hlines.push_back(LineTask{static_cast<std::int32_t>(t),
                                  std::min(j * g, k), k, {}, {}, {}, {}});
      }
    }
    run_line_descents(cluster, row_tree, vlines, h_split, &rep.rank_queries);
    run_line_descents(cluster, col_tree, hlines, h_split, &rep.rank_queries);
    rep.lines += static_cast<std::int64_t>(vlines.size() + hlines.size());

    // --- Classify boxes; issue anchor queries for crossed ones.
    struct Box {
      std::int32_t sub;
      std::int64_t bi, bj;
      std::int64_t r0, r1, c0, c1;
      std::int32_t kmin, kmax;
      std::size_t vline_right, hline_top;
    };
    std::vector<Box> crossed;
    // box_dir[sub] maps (bi, bj) -> uniform opt value, or ~index into
    // `crossed` for crossed boxes.
    std::vector<std::map<std::pair<std::int64_t, std::int64_t>, std::int64_t>>
        box_dir(static_cast<std::size_t>(parent.subs()));
    for (std::int64_t t = 0; t < parent.subs(); ++t) {
      const std::int64_t k = parent.size[static_cast<std::size_t>(t)];
      if (k == 0) continue;
      const std::int64_t nb = ceil_div(k, g);
      const auto& vl = vline_of[static_cast<std::size_t>(t)];
      const auto& hl = hline_of[static_cast<std::size_t>(t)];
      const auto corner = [&](std::int64_t i, std::int64_t j) {
        return vlines[vl[static_cast<std::size_t>(j)]].data.opt_at(
            std::min(i * g, k));
      };
      for (std::int64_t bi = 0; bi < nb; ++bi) {
        for (std::int64_t bj = 0; bj < nb; ++bj) {
          const std::int32_t c00 = corner(bi, bj), c01 = corner(bi, bj + 1),
                             c10 = corner(bi + 1, bj),
                             c11 = corner(bi + 1, bj + 1);
          if (c00 == c01 && c00 == c10 && c00 == c11) {
            box_dir[static_cast<std::size_t>(t)][{bi, bj}] = c00;
            continue;
          }
          Box box;
          box.sub = static_cast<std::int32_t>(t);
          box.bi = bi;
          box.bj = bj;
          box.r0 = bi * g;
          box.r1 = std::min((bi + 1) * g, k);
          box.c0 = bj * g;
          box.c1 = std::min((bj + 1) * g, k);
          box.kmin = std::min(std::min(c00, c01), std::min(c10, c11));
          box.kmax = std::max(std::max(c00, c01), std::max(c10, c11));
          box.vline_right = vl[static_cast<std::size_t>(bj + 1)];
          box.hline_top = hl[static_cast<std::size_t>(bi)];
          box_dir[static_cast<std::size_t>(t)][{bi, bj}] =
              ~static_cast<std::int64_t>(crossed.size());
          crossed.push_back(box);
        }
      }
    }
    rep.crossed_boxes += static_cast<std::int64_t>(crossed.size());

    // Anchor values δ_{k,k+1}(r0, c1) for every crossed box: δ at row 0
    // plus rank counts over the node decomposition of [0, r0).
    std::vector<std::vector<std::int64_t>> box_anchor(crossed.size());
    {
      std::vector<RankQuery> qs;
      std::vector<std::tuple<std::size_t, std::int32_t>> slots;
      for (std::size_t bx = 0; bx < crossed.size(); ++bx) {
        const Box& box = crossed[bx];
        box_anchor[bx].assign(
            static_cast<std::size_t>(box.kmax - box.kmin), 0);
        const auto decomp = node_decomposition(row_tree, box.r0);
        for (std::int32_t kk = box.kmin; kk < box.kmax; ++kk) {
          box_anchor[bx][static_cast<std::size_t>(kk - box.kmin)] =
              delta_at_zero(vlines[box.vline_right], kk, kk + 1);
          for (const auto& [lvl, start] : decomp) {
            qs.push_back(RankQuery{lvl, box.sub, start, kk + 1,
                                   vlines[box.vline_right].pos});
            qs.push_back(RankQuery{lvl, box.sub, start, kk,
                                   vlines[box.vline_right].pos});
            slots.push_back({bx, kk});
          }
        }
      }
      const auto ans = row_tree.answer(cluster, qs, &rep.rank_queries);
      for (std::size_t s = 0; s < slots.size(); ++s) {
        const auto [bx, kk] = slots[s];
        box_anchor[bx][static_cast<std::size_t>(kk - crossed[bx].kmin)] +=
            ans[2 * s] - ans[2 * s + 1];
      }
    }

    // --- Route strip points to box machines, and uncrossed survivors
    // straight to the assembly.
    const auto box_machine = [&](std::size_t bx) {
      return static_cast<std::int64_t>((bx * 2654435761u) % static_cast<std::size_t>(m));
    };
    struct StripPt {
      std::int32_t box;
      std::int32_t row, col, color;
      std::int32_t is_row_strip;
    };
    // Per-parent lists of crossed boxes by row and column block, so a point
    // touches only the boxes of its own strips.
    std::vector<std::map<std::int64_t, std::vector<std::size_t>>> row_boxes(
        static_cast<std::size_t>(parent.subs())),
        col_boxes(static_cast<std::size_t>(parent.subs()));
    for (std::size_t bx = 0; bx < crossed.size(); ++bx) {
      row_boxes[static_cast<std::size_t>(crossed[bx].sub)][crossed[bx].bi]
          .push_back(bx);
      col_boxes[static_cast<std::size_t>(crossed[bx].sub)][crossed[bx].bj]
          .push_back(bx);
    }
    PerMachine<std::vector<std::pair<std::int64_t, StripPt>>> strip_out(
        static_cast<std::size_t>(m));
    PerMachine<std::vector<std::pair<std::int64_t, SubPoint>>> asm_out(
        static_cast<std::size_t>(m));
    for (std::int64_t i = 0; i < m; ++i) {
      for (const ColoredPt& p : u_pts.local(i)) {
        const auto& dir = box_dir[static_cast<std::size_t>(p.sub)];
        const std::int64_t bi = p.row / g, bj = p.col / g;
        const std::int64_t own_state = dir.at({bi, bj});
        if (own_state >= 0 && p.color == own_state) {
          asm_out[static_cast<std::size_t>(i)].push_back(
              {parent.offset[static_cast<std::size_t>(p.sub)] + p.row,
               SubPoint{p.sub, p.row, p.col}});
        }
        const auto& rb = row_boxes[static_cast<std::size_t>(p.sub)];
        if (const auto it = rb.find(bi); it != rb.end()) {
          for (std::size_t bx : it->second) {
            const Box& box = crossed[bx];
            if (p.color < box.kmin || p.color > box.kmax) continue;
            strip_out[static_cast<std::size_t>(i)].push_back(
                {box_machine(bx),
                 StripPt{static_cast<std::int32_t>(bx), p.row, p.col,
                         p.color, 1}});
          }
        }
        const auto& cb = col_boxes[static_cast<std::size_t>(p.sub)];
        if (const auto it = cb.find(bj); it != cb.end()) {
          for (std::size_t bx : it->second) {
            const Box& box = crossed[bx];
            if (p.color < box.kmin || p.color > box.kmax) continue;
            strip_out[static_cast<std::size_t>(i)].push_back(
                {box_machine(bx),
                 StripPt{static_cast<std::int32_t>(bx), p.row, p.col,
                         p.color, 0}});
          }
        }
      }
    }
    const auto strips = mpc::route_items<StripPt>(cluster, strip_out);

    // --- Solve crossed boxes locally on their machines. Machines run
    // concurrently, so per-machine counters are accumulated in disjoint
    // slots and summed after the round (incrementing rep directly from the
    // lambda would race).
    std::vector<std::int64_t> interesting_per_machine(
        static_cast<std::size_t>(m), 0);
    // asm_out already holds the host-pushed uncrossed survivors; remember
    // where they end so a recovery re-execution can truncate back to the
    // baseline instead of appending box results twice.
    std::vector<std::size_t> asm_base(static_cast<std::size_t>(m));
    for (std::int64_t i = 0; i < m; ++i) {
      asm_base[static_cast<std::size_t>(i)] =
          asm_out[static_cast<std::size_t>(i)].size();
    }
    cluster.run_round([&](MachineCtx& mc) {
      const std::int64_t i = mc.id();
      asm_out[static_cast<std::size_t>(i)].resize(
          asm_base[static_cast<std::size_t>(i)]);
      std::int64_t interesting = 0;
      std::map<std::int32_t, BoxTask> tasks;
      for (std::size_t bx = 0; bx < crossed.size(); ++bx) {
        if (box_machine(bx) != i) continue;
        const Box& box = crossed[bx];
        BoxTask task;
        task.r0 = box.r0;
        task.r1 = box.r1;
        task.c0 = box.c0;
        task.c1 = box.c1;
        task.kmin = box.kmin;
        task.kmax = box.kmax;
        const LineData& top = hlines[box.hline_top].data;
        const LineData& right = vlines[box.vline_right].data;
        for (std::int64_t cc = box.c0; cc <= box.c1; ++cc) {
          task.top_opt.push_back(top.opt_at(cc));
        }
        for (std::int64_t rr = box.r0; rr <= box.r1; ++rr) {
          task.right_opt.push_back(right.opt_at(rr));
        }
        task.anchor = box_anchor[bx];
        tasks[static_cast<std::int32_t>(bx)] = std::move(task);
      }
      for (const StripPt& sp : strips[static_cast<std::size_t>(i)]) {
        auto& task = tasks.at(sp.box);
        const ColoredPoint cp{sp.row, sp.col, sp.color};
        if (sp.is_row_strip) {
          task.row_points.push_back(cp);
        } else {
          task.col_points.push_back(cp);
        }
      }
      for (auto& [bx, task] : tasks) {
        const BoxResult res = solve_box(task);
        const Box& box = crossed[static_cast<std::size_t>(bx)];
        for (const Point& p : res.interesting) {
          asm_out[static_cast<std::size_t>(i)].push_back(
              {parent.offset[static_cast<std::size_t>(box.sub)] + p.row,
               SubPoint{box.sub, static_cast<std::int32_t>(p.row),
                        static_cast<std::int32_t>(p.col)}});
        }
        for (const Point& p : res.surviving) {
          asm_out[static_cast<std::size_t>(i)].push_back(
              {parent.offset[static_cast<std::size_t>(box.sub)] + p.row,
               SubPoint{box.sub, static_cast<std::int32_t>(p.row),
                        static_cast<std::int32_t>(p.col)}});
        }
        interesting += static_cast<std::int64_t>(res.interesting.size());
      }
      interesting_per_machine[static_cast<std::size_t>(i)] = interesting;
    });
    for (std::int64_t cnt : interesting_per_machine) {
      rep.interesting_points += cnt;
    }

    // --- Assemble this level's results (validates one point per row).
    c_pts = mpc::scatter_to_layout<SubPoint>(cluster, n, asm_out);
  }

  // Read out the result permutations, one per input pair.
  const auto host = c_pts.to_host();
  const LevelMeta& top = metas[0];
  std::vector<Perm> out;
  for (std::int64_t t = 0; t < top.subs(); ++t) {
    const std::int64_t k = top.size[static_cast<std::size_t>(t)];
    std::vector<std::int32_t> rc(static_cast<std::size_t>(k), kNone);
    for (std::int64_t idx = 0; idx < k; ++idx) {
      const SubPoint& p = host[static_cast<std::size_t>(
          top.offset[static_cast<std::size_t>(t)] + idx)];
      MONGE_CHECK(p.sub == t);
      rc[static_cast<std::size_t>(p.row)] = p.col;
    }
    Perm perm = Perm::from_rows(std::move(rc), k);
    MONGE_CHECK_MSG(perm.is_full_permutation(),
                    "MPC multiply did not produce a permutation");
    out.push_back(std::move(perm));
  }

  rep.rounds = cluster.rounds() - start_rounds;
  rep.max_machine_words = cluster.stats().max_machine_words;
  if (report) *report = rep;
  return out;
}

Perm mpc_unit_monge_multiply(Cluster& cluster, const Perm& a, const Perm& b,
                             const MpcMultiplyOptions& options,
                             MpcMultiplyReport* report) {
  std::vector<std::pair<Perm, Perm>> pairs;
  pairs.emplace_back(a, b);
  auto out = mpc_unit_monge_multiply_batch(cluster, pairs, options, report);
  return std::move(out[0]);
}

namespace {

std::int64_t paper_h(std::int64_t n, const Cluster& cluster) {
  const std::int64_t m = cluster.machines();
  const double delta =
      std::log(static_cast<double>(std::max<std::int64_t>(m, 2))) /
      std::log(static_cast<double>(std::max<std::int64_t>(n, 2)));
  return std::max<std::int64_t>(
      2, ipow_frac(std::max<std::int64_t>(n, 2),
                   std::max(0.0, 1.0 - delta) / 10.0));
}

}  // namespace

MpcMultiplyOptions paper_profile(std::int64_t n, const Cluster& cluster) {
  MpcMultiplyOptions o;
  o.split_h = paper_h(n, cluster);
  o.tree_fanout = o.split_h;
  return o;
}

MpcMultiplyOptions warmup_profile(std::int64_t n, const Cluster& cluster) {
  MpcMultiplyOptions o;
  o.split_h = 2;
  o.tree_fanout = paper_h(n, cluster);
  return o;
}

MpcMultiplyOptions chs23_profile(std::int64_t, const Cluster&) {
  MpcMultiplyOptions o;
  o.split_h = 2;
  o.tree_fanout = 2;
  return o;
}

}  // namespace monge::core
