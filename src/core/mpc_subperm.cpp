#include "core/mpc_subperm.h"

#include "monge/subperm.h"
#include "mpc/collectives.h"
#include "mpc/dist_vector.h"
#include "util/check.h"

namespace monge::core {

namespace {

/// Executes the Lemma 2.4 prefix-sum collective over the nonzero-row
/// indicators of all pairs, which is exactly the communication the §4.1
/// padding performs; the returned ranks equal the host-side compaction.
void charge_padding_rounds(mpc::Cluster& cluster,
                           const std::vector<std::pair<Perm, Perm>>& pairs) {
  std::vector<std::int64_t> indicator;
  for (const auto& [a, b] : pairs) {
    for (std::int64_t r = 0; r < a.rows(); ++r) {
      indicator.push_back(a.row_empty(r) ? 0 : 1);
    }
    const auto ctr = b.col_to_row();
    for (std::int32_t c : ctr) indicator.push_back(c == kNone ? 0 : 1);
  }
  if (indicator.empty()) return;
  auto dv = mpc::DistVector<std::int64_t>::from_host(cluster, indicator);
  (void)mpc::dv_exclusive_prefix(cluster, dv);
}

}  // namespace

std::vector<Perm> mpc_subunit_multiply_batch(
    mpc::Cluster& cluster, const std::vector<std::pair<Perm, Perm>>& pairs,
    const MpcMultiplyOptions& options, MpcMultiplyReport* report) {
  charge_padding_rounds(cluster, pairs);

  // §4.1 padding via the shared sequential helpers (monge/subperm.h); the
  // cluster multiply needs the padded full permutations materialized, unlike
  // the sequential direct path which keeps them in engine scratch.
  std::vector<SubunitPadding> infos(pairs.size());
  std::vector<std::pair<Perm, Perm>> padded;
  std::vector<std::size_t> padded_of;  // index into `padded`, or npos
  for (std::size_t t = 0; t < pairs.size(); ++t) {
    auto pr = subunit_pad_pair(pairs[t].first, pairs[t].second, infos[t]);
    if (!infos[t].empty) {
      padded_of.push_back(padded.size());
      padded.push_back(std::move(pr));
    } else {
      padded_of.push_back(static_cast<std::size_t>(-1));
    }
  }

  std::vector<Perm> products;
  if (!padded.empty()) {
    products =
        mpc_unit_monge_multiply_batch(cluster, padded, options, report);
  } else if (report) {
    *report = MpcMultiplyReport{};
  }

  std::vector<Perm> out;
  for (std::size_t t = 0; t < pairs.size(); ++t) {
    const SubunitPadding& info = infos[t];
    out.push_back(info.empty ? Perm(info.out_rows, info.out_cols)
                             : subunit_unpad(info, products[padded_of[t]]));
  }
  return out;
}

Perm mpc_subunit_multiply(mpc::Cluster& cluster, const Perm& a, const Perm& b,
                          const MpcMultiplyOptions& options,
                          MpcMultiplyReport* report) {
  std::vector<std::pair<Perm, Perm>> pairs;
  pairs.emplace_back(a, b);
  auto out = mpc_subunit_multiply_batch(cluster, pairs, options, report);
  return std::move(out[0]);
}

}  // namespace monge::core
