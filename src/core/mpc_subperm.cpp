#include "core/mpc_subperm.h"

#include "mpc/collectives.h"
#include "mpc/dist_vector.h"
#include "util/check.h"

namespace monge::core {

namespace {

/// Executes the Lemma 2.4 prefix-sum collective over the nonzero-row
/// indicators of all pairs, which is exactly the communication the §4.1
/// padding performs; the returned ranks equal the host-side compaction.
void charge_padding_rounds(mpc::Cluster& cluster,
                           const std::vector<std::pair<Perm, Perm>>& pairs) {
  std::vector<std::int64_t> indicator;
  for (const auto& [a, b] : pairs) {
    for (std::int64_t r = 0; r < a.rows(); ++r) {
      indicator.push_back(a.row_empty(r) ? 0 : 1);
    }
    const auto ctr = b.col_to_row();
    for (std::int32_t c : ctr) indicator.push_back(c == kNone ? 0 : 1);
  }
  if (indicator.empty()) return;
  auto dv = mpc::DistVector<std::int64_t>::from_host(cluster, indicator);
  (void)mpc::dv_exclusive_prefix(cluster, dv);
}

struct PadInfo {
  std::vector<std::int32_t> rows_a;  // surviving rows of A
  std::vector<std::int32_t> cols_b;  // surviving columns of B
  std::int64_t shift = 0;            // n2 - n1
  std::int64_t n3 = 0;
  std::int64_t out_rows = 0, out_cols = 0;
  bool empty = false;
};

/// §4.1 padding (same arithmetic as the sequential subunit_multiply).
std::pair<Perm, Perm> pad_pair(const Perm& a, const Perm& b, PadInfo& info) {
  MONGE_CHECK(a.cols() == b.rows());
  const std::int64_t n2 = a.cols();
  info.out_rows = a.rows();
  info.out_cols = b.cols();

  for (std::int64_t r = 0; r < a.rows(); ++r) {
    if (!a.row_empty(r)) info.rows_a.push_back(static_cast<std::int32_t>(r));
  }
  const auto b_col_to_row = b.col_to_row();
  std::vector<std::int32_t> col_rank_b(static_cast<std::size_t>(b.cols()),
                                       kNone);
  for (std::int64_t c = 0; c < b.cols(); ++c) {
    if (b_col_to_row[static_cast<std::size_t>(c)] != kNone) {
      col_rank_b[static_cast<std::size_t>(c)] =
          static_cast<std::int32_t>(info.cols_b.size());
      info.cols_b.push_back(static_cast<std::int32_t>(c));
    }
  }
  const auto n1 = static_cast<std::int64_t>(info.rows_a.size());
  info.n3 = static_cast<std::int64_t>(info.cols_b.size());
  info.shift = n2 - n1;
  if (n1 == 0 || info.n3 == 0 || n2 == 0) {
    info.empty = true;
    return {Perm(0, 0), Perm(0, 0)};
  }

  std::vector<std::uint8_t> col_used(static_cast<std::size_t>(n2), 0);
  for (std::int32_t r : info.rows_a) {
    col_used[static_cast<std::size_t>(a.col_of(r))] = 1;
  }
  std::vector<std::int32_t> pa(static_cast<std::size_t>(n2));
  std::int64_t top = 0;
  for (std::int64_t c = 0; c < n2; ++c) {
    if (!col_used[static_cast<std::size_t>(c)]) {
      pa[static_cast<std::size_t>(top++)] = static_cast<std::int32_t>(c);
    }
  }
  for (std::int64_t i = 0; i < n1; ++i) {
    pa[static_cast<std::size_t>(top + i)] =
        a.col_of(info.rows_a[static_cast<std::size_t>(i)]);
  }

  std::vector<std::int32_t> pb(static_cast<std::size_t>(n2));
  std::int64_t appended = 0;
  for (std::int64_t r = 0; r < n2; ++r) {
    if (b.row_empty(r)) {
      pb[static_cast<std::size_t>(r)] =
          static_cast<std::int32_t>(info.n3 + appended++);
    } else {
      pb[static_cast<std::size_t>(r)] =
          col_rank_b[static_cast<std::size_t>(b.col_of(r))];
    }
  }
  return {Perm::from_rows(std::move(pa), n2),
          Perm::from_rows(std::move(pb), n2)};
}

}  // namespace

std::vector<Perm> mpc_subunit_multiply_batch(
    mpc::Cluster& cluster, const std::vector<std::pair<Perm, Perm>>& pairs,
    const MpcMultiplyOptions& options, MpcMultiplyReport* report) {
  charge_padding_rounds(cluster, pairs);

  std::vector<PadInfo> infos(pairs.size());
  std::vector<std::pair<Perm, Perm>> padded;
  std::vector<std::size_t> padded_of;  // index into `padded`, or npos
  for (std::size_t t = 0; t < pairs.size(); ++t) {
    auto pr = pad_pair(pairs[t].first, pairs[t].second, infos[t]);
    if (!infos[t].empty) {
      padded_of.push_back(padded.size());
      padded.push_back(std::move(pr));
    } else {
      padded_of.push_back(static_cast<std::size_t>(-1));
    }
  }

  std::vector<Perm> products;
  if (!padded.empty()) {
    products =
        mpc_unit_monge_multiply_batch(cluster, padded, options, report);
  } else if (report) {
    *report = MpcMultiplyReport{};
  }

  std::vector<Perm> out;
  for (std::size_t t = 0; t < pairs.size(); ++t) {
    const PadInfo& info = infos[t];
    Perm res(info.out_rows, info.out_cols);
    if (!info.empty) {
      const Perm& pc = products[padded_of[t]];
      for (std::int64_t r = info.shift; r < pc.rows(); ++r) {
        const std::int32_t c = pc.col_of(r);
        if (c < info.n3) {
          res.set(info.rows_a[static_cast<std::size_t>(r - info.shift)],
                  info.cols_b[static_cast<std::size_t>(c)]);
        }
      }
    }
    out.push_back(std::move(res));
  }
  return out;
}

Perm mpc_subunit_multiply(mpc::Cluster& cluster, const Perm& a, const Perm& b,
                          const MpcMultiplyOptions& options,
                          MpcMultiplyReport* report) {
  std::vector<std::pair<Perm, Perm>> pairs;
  pairs.emplace_back(a, b);
  auto out = mpc_subunit_multiply_batch(cluster, pairs, options, report);
  return std::move(out[0]);
}

}  // namespace monge::core
