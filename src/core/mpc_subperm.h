// Theorem 1.2 on the cluster: subunit-Monge multiplication of
// sub-permutation matrices via the §4.1 padding reduction to Theorem 1.1.
//
// The padding itself is the O(1)-round transformation of §4.1 (an inverse
// permutation plus prefix sums, Lemmas 2.3/2.4); the prefix-sum collectives
// are executed on the cluster so the round/traffic accounting is real,
// while the element-wise index arithmetic is orchestrated by the driver.
#pragma once

#include <cstdint>
#include <vector>

#include "core/mpc_multiply.h"
#include "monge/permutation.h"
#include "mpc/cluster.h"

namespace monge::core {

/// PC = PA ⊡ PB for sub-permutations (batch variant; all pairs share
/// rounds). Shapes: a_i is r_i×k_i, b_i is k_i×c_i.
std::vector<Perm> mpc_subunit_multiply_batch(
    mpc::Cluster& cluster, const std::vector<std::pair<Perm, Perm>>& pairs,
    const MpcMultiplyOptions& options = {},
    MpcMultiplyReport* report = nullptr);

Perm mpc_subunit_multiply(mpc::Cluster& cluster, const Perm& a, const Perm& b,
                          const MpcMultiplyOptions& options = {},
                          MpcMultiplyReport* report = nullptr);

}  // namespace monge::core
