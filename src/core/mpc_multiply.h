// Theorem 1.1: O(1)-round fully-scalable deterministic MPC algorithm for
// implicit unit-Monge matrix multiplication, on the simulated cluster.
//
// Structure (§3):
//   1. Split PA into H column blocks and PB into H row blocks, compact
//      empty rows/columns (one sort each, Lemmas 2.3/2.5), and recurse; the
//      recursion is executed iteratively level by level, all subproblems of
//      a level in parallel.
//   2. Leaves (subproblem size <= G) are solved machine-locally with the
//      sequential seaweed algorithm.
//   3. The combine re-expands the H child results into the parent index
//      space (colored union), computes opt(·, jG) / opt(iG, ·) on grid
//      lines via the flattened-tree descent — each descent phase is one
//      batched offline rank search (Lemma 2.6) over a level of the
//      merge-tree index; the per-child δ increment collapses to
//      RANK(node, r, col) − RANK(node, q, col) — and finishes the crossed
//      G×G subgrids locally (§3.3, shared solve_box).
//
// Knobs reproduce the paper's baselines:
//   split_h = 2, tree_fanout large  -> the §1.4 "warmup": Θ(log n) rounds.
//   split_h = 2, tree_fanout = 2    -> "CHS23-profile": Θ(log² n) rounds.
//   paper schedule (H = n^{(1−δ)/10}) -> Θ((δ/(1−δ))²) rounds, flat in n.
//
// The control plane (which line/box lives where, interval metadata) is
// orchestrated by the simulation driver; all point data, tree indices,
// rank queries and result routing move through counted, space-checked
// messages. See DESIGN.md for the exact list of shortcuts.
#pragma once

#include <cstdint>

#include "monge/permutation.h"
#include "mpc/cluster.h"

namespace monge::core {

struct MpcMultiplyOptions {
  /// Split arity H. 0 = paper schedule max(2, round(n^eta)).
  std::int64_t split_h = 0;
  /// Exponent for the paper schedule; <0 means (1-δ)/10 with δ inferred
  /// from the cluster (δ = log m / log n).
  double split_eta = -1.0;
  /// Merge-tree fanout for the grid-line descent. 0 = same as split H.
  std::int64_t tree_fanout = 0;
  /// Grid spacing G (also the leaf threshold). 0 = ceil(n / m), the
  /// paper's G = n^{1−δ}.
  std::int64_t box_g = 0;
};

struct MpcMultiplyReport {
  std::int64_t rounds = 0;           // cluster rounds consumed by this call
  std::int64_t levels = 0;           // recursion depth
  std::int64_t split_h = 2;          // resolved H
  std::int64_t tree_fanout = 2;      // resolved descent fanout
  std::int64_t box_g = 0;            // resolved G
  std::int64_t lines = 0;            // grid lines processed (all levels)
  std::int64_t crossed_boxes = 0;    // §3.3 subgrid instances
  std::int64_t interesting_points = 0;
  std::int64_t rank_queries = 0;     // batched rank-search queries issued
  std::int64_t max_machine_words = 0;
};

/// PC = PA ⊡ PB for full n×n permutations (Theorem 1.1). Inputs and output
/// are host-side (input loading / output reading are free in the model);
/// all intermediate state lives on the cluster.
Perm mpc_unit_monge_multiply(mpc::Cluster& cluster, const Perm& a,
                             const Perm& b,
                             const MpcMultiplyOptions& options = {},
                             MpcMultiplyReport* report = nullptr);

/// Batch variant: many independent products share every round (the level
/// structure of §3.1 is indexed by subproblem anyway). This is what the
/// LIS divide-and-conquer (Theorem 1.3) uses so that all merges of a level
/// cost one combine. Sizes may differ between pairs.
std::vector<Perm> mpc_unit_monge_multiply_batch(
    mpc::Cluster& cluster, const std::vector<std::pair<Perm, Perm>>& pairs,
    const MpcMultiplyOptions& options = {},
    MpcMultiplyReport* report = nullptr);

/// Option presets reproducing the paper's comparison rows (resolved for a
/// given input size and cluster):
///  - paper_profile: the Theorem 1.1 schedule (H = max(2, n^{(1−δ)/10})).
///  - warmup_profile: §1.4 warmup — two-way splits with a flattened search
///    tree; Θ(log n) rounds per multiply.
///  - chs23_profile: two-way splits *and* a binary search tree — the
///    unflattened [CHS23]-style profile, Θ(log² n) rounds per multiply.
MpcMultiplyOptions paper_profile(std::int64_t n, const mpc::Cluster& cluster);
MpcMultiplyOptions warmup_profile(std::int64_t n, const mpc::Cluster& cluster);
MpcMultiplyOptions chs23_profile(std::int64_t n, const mpc::Cluster& cluster);

}  // namespace monge::core
