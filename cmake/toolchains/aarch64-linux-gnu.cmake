# Cross toolchain: build the library and tests for aarch64 on an x86-64
# host, with qemu-user as the test-time emulator. Used by the CI
# cross-aarch64 job to exercise the NEON steady-ant kernel (the only ISA
# path no native runner covers); see .github/workflows/ci.yml.
#
#   cmake -B build-aarch64 -S . \
#     -DCMAKE_TOOLCHAIN_FILE=cmake/toolchains/aarch64-linux-gnu.cmake
set(CMAKE_SYSTEM_NAME Linux)
set(CMAKE_SYSTEM_PROCESSOR aarch64)

set(CMAKE_C_COMPILER aarch64-linux-gnu-gcc)
set(CMAKE_CXX_COMPILER aarch64-linux-gnu-g++)

# Let the cross sysroot win for libraries/headers while host CMake keeps
# finding its own programs. Package roots passed explicitly (GTest_ROOT)
# still take priority over the root path.
set(CMAKE_FIND_ROOT_PATH /usr/aarch64-linux-gnu)
set(CMAKE_FIND_ROOT_PATH_MODE_PROGRAM NEVER)

# Lets ctest (and any add_custom_command test runner) execute the cross
# binaries when qemu-user is installed; the CI job also invokes
# qemu-aarch64 explicitly so a missing emulator fails loudly, not weirdly.
set(CMAKE_CROSSCOMPILING_EMULATOR "qemu-aarch64;-L;/usr/aarch64-linux-gnu")
