// Quickstart: the three core operations of the library through the
// monge::Solver facade in ~60 lines.
//   1. sequential unit-Monge multiplication (the seaweed product),
//   2. the same product on a simulated MPC cluster (Theorem 1.1),
//   3. exact LIS in O(log n) rounds (Theorem 1.3).
// One Solver per backend: requests are pure data, so the SAME request can
// be replayed against every backend (that is how the MPC run is checked
// against the sequential one below).
#include <cstdio>

#include "api/solver.h"
#include "lis/sequential.h"
#include "util/rng.h"

using namespace monge;

int main() {
  // --- 1. Sequential seaweed product -----------------------------------
  Rng rng(2024);
  const std::int64_t n = 1024;
  const MultiplyRequest product{Perm::random(n, rng), Perm::random(n, rng)};

  Solver seq;  // default backend: the arena-backed SeaweedEngine
  const Perm c_seq = seq.solve(product).c;  // O(n log n)
  std::printf("seaweed product of two %lld-permutations: %lld points\n",
              static_cast<long long>(n),
              static_cast<long long>(c_seq.point_count()));

  // --- 2. The same request on a simulated MPC cluster ------------------
  // The cluster is provisioned lazily: m = n^delta machines with
  // s = Õ(n^{1-delta}) words each, sized from the request.
  Solver mpc({.backend = SolverBackend::kMpcSim, .mpc_delta = 0.5});
  const MultiplyResult res = mpc.solve(product);
  std::printf(
      "MPC product: %s, %lld rounds on %lld machines, peak %lld words "
      "per machine (budget %lld)\n",
      res.c == c_seq ? "matches sequential" : "MISMATCH",
      static_cast<long long>(res.report.rounds),
      static_cast<long long>(mpc.cluster()->machines()),
      static_cast<long long>(res.report.max_machine_words),
      static_cast<long long>(mpc.cluster()->space_words()));

  // --- 3. Exact LIS in O(log n) rounds ----------------------------------
  LisRequest lis_req;
  lis_req.seq.resize(2048);
  for (auto& x : lis_req.seq) x = rng.next_in(0, 1 << 30);
  const LisResult lis = mpc.solve(lis_req);  // re-provisions for 2048
  std::printf("LIS of %zu random numbers: %lld (patience agrees: %s), "
              "%lld rounds\n",
              lis_req.seq.size(), static_cast<long long>(lis.lis),
              lis.lis == lis::lis_length(lis_req.seq) ? "yes" : "NO",
              static_cast<long long>(lis.rounds));
  return 0;
}
