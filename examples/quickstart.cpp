// Quickstart: the three core operations of the library in ~60 lines.
//   1. sequential unit-Monge multiplication (the seaweed product),
//   2. the same product on a simulated MPC cluster (Theorem 1.1),
//   3. exact LIS in O(log n) rounds (Theorem 1.3).
#include <cstdio>

#include "core/mpc_multiply.h"
#include "lis/mpc_lis.h"
#include "lis/sequential.h"
#include "monge/seaweed.h"
#include "util/rng.h"

using namespace monge;

int main() {
  // --- 1. Sequential seaweed product -----------------------------------
  Rng rng(2024);
  const std::int64_t n = 1024;
  const Perm a = Perm::random(n, rng);
  const Perm b = Perm::random(n, rng);
  const Perm c_seq = seaweed_multiply(a, b);  // O(n log n)
  std::printf("seaweed product of two %lld-permutations: %lld points\n",
              static_cast<long long>(n),
              static_cast<long long>(c_seq.point_count()));

  // --- 2. The same product on a simulated MPC cluster ------------------
  // m = n^delta machines with s = Õ(n^{1-delta}) words each.
  mpc::Cluster cluster(mpc::MpcConfig::fully_scalable(n, /*delta=*/0.5));
  core::MpcMultiplyReport rep;
  const Perm c_mpc = core::mpc_unit_monge_multiply(
      cluster, a, b, core::paper_profile(n, cluster), &rep);
  std::printf(
      "MPC product: %s, %lld rounds on %lld machines, peak %lld words "
      "per machine (budget %lld)\n",
      c_mpc == c_seq ? "matches sequential" : "MISMATCH",
      static_cast<long long>(rep.rounds),
      static_cast<long long>(cluster.machines()),
      static_cast<long long>(rep.max_machine_words),
      static_cast<long long>(cluster.space_words()));

  // --- 3. Exact LIS in O(log n) rounds ----------------------------------
  std::vector<std::int64_t> seq(2048);
  for (auto& x : seq) x = rng.next_in(0, 1 << 30);
  mpc::Cluster lis_cluster(mpc::MpcConfig::fully_scalable(
      static_cast<std::int64_t>(seq.size()), 0.5));
  const auto lis = lis::mpc_lis(lis_cluster, seq);
  std::printf("LIS of %zu random numbers: %lld (patience agrees: %s), "
              "%lld rounds\n",
              seq.size(), static_cast<long long>(lis.lis),
              lis.lis == lis::lis_length(seq) ? "yes" : "NO",
              static_cast<long long>(lis.rounds));
  return 0;
}
