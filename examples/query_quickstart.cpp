// Indexing & queries quickstart: build a query::SemiLocalIndex ONCE
// through the API tier, then serve window-LIS and substring-LCS queries
// online without ever re-running the seaweed machinery.
//   1. BuildIndexRequest -> QueryHandle (the seaweed kernel runs here,
//      exactly once per distinct input),
//   2. WindowLisQuery batches answer in O(log² n) per window,
//   3. the same index class serves substring-LCS against a fixed text,
//   4. through SolverService, identical builds dedupe onto ONE shared
//      index and query batches cache like any other result.
#include <cstdio>
#include <future>
#include <utility>
#include <vector>

#include "api/service.h"
#include "util/rng.h"

using namespace monge;

int main() {
  Rng rng(11);

  // --- 1. Index once -----------------------------------------------------
  BuildIndexRequest build;
  build.seq.resize(1 << 14);
  for (auto& x : build.seq) x = rng.next_in(0, 1 << 20);

  Solver solver;
  const BuildIndexResult built = solver.solve(build);
  std::printf("indexed %lld elements: LIS=%lld, %lld kernel points, %.1f MiB\n",
              static_cast<long long>(built.n),
              static_cast<long long>(built.full),
              static_cast<long long>(built.points),
              static_cast<double>(built.handle.index->memory_bytes()) /
                  (1024.0 * 1024.0));

  // --- 2. Query many -----------------------------------------------------
  // Any window of the original sequence, any time, no re-solve. l > r is a
  // legitimate empty window and answers 0.
  WindowLisQuery windows{built.handle,
                         {{0, 4095}, {4096, 12287}, {100, 100}, {9, 3}}};
  const WindowLisResult answers = solver.solve(windows);
  for (std::size_t q = 0; q < answers.lis.size(); ++q) {
    std::printf("  LIS(seq[%lld..%lld]) = %lld\n",
                static_cast<long long>(windows.windows[q].first),
                static_cast<long long>(windows.windows[q].second),
                static_cast<long long>(answers.lis[q]));
  }

  // --- 3. Substring-LCS rides the same structure -------------------------
  // Index (s, t) once; LCS(s[i..j], t) for every substring of s becomes a
  // window query over the Hunt-Szymanski match sequence.
  std::vector<std::int64_t> s(600), t(500);
  for (auto& x : s) x = rng.next_in(0, 3);  // small alphabet: dense matches
  for (auto& x : t) x = rng.next_in(0, 3);
  const BuildIndexResult lcs_built = solver.solve(BuildIndexRequest{
      .kind = BuildIndexRequest::Kind::kSubstringLcs, .seq = s, .t = t});
  const SubstringLcsResult lcs = solver.solve(SubstringLcsQuery{
      lcs_built.handle, {{0, 599}, {0, 299}, {300, 599}}});
  std::printf("LCS(s, t)=%lld  LCS(s[0..299], t)=%lld  LCS(s[300..599], t)=%lld"
              "  (%lld matches indexed)\n",
              static_cast<long long>(lcs.lcs[0]),
              static_cast<long long>(lcs.lcs[1]),
              static_cast<long long>(lcs.lcs[2]),
              static_cast<long long>(lcs_built.n));

  // --- 4. Through the service --------------------------------------------
  // Identical builds from many clients digest equally and resolve to ONE
  // shared index (same process-unique id); query batches ride the worker
  // pool and the result cache.
  SolverService service({.workers = 2});
  const QueryHandle h1 = service.submit(build).get().handle;
  const QueryHandle h2 = service.submit(build).get().handle;
  std::future<WindowLisResult> f1 =
      service.submit(WindowLisQuery{h1, {{0, 8191}}});
  std::future<WindowLisResult> f2 =
      service.submit(WindowLisQuery{h2, {{8192, 16383}}});
  const std::int64_t left = f1.get().lis[0];
  const std::int64_t right = f2.get().lis[0];
  const ServiceStats stats = service.stats();
  std::printf(
      "service: two identical builds -> one index (id %llu == %llu), "
      "%lld underlying solves; halves answer %lld / %lld\n",
      static_cast<unsigned long long>(h1.id()),
      static_cast<unsigned long long>(h2.id()),
      static_cast<long long>(stats.solves), static_cast<long long>(left),
      static_cast<long long>(right));
  return 0;
}
