// Scenario: inspecting the MPC cost model. Runs the [GSZ11] collectives and
// one full Theorem 1.1 multiplication, printing the rounds, communication
// and peak space the simulator measured — the numbers every claim in the
// paper is stated in. The collectives drive the cluster directly (they are
// below the facade); the multiplication goes through a monge::Solver
// pinned to the same explicit cluster config, whose lazily constructed
// cluster is then inspected for the traffic totals.
#include <cstdio>

#include "api/solver.h"
#include "mpc/collectives.h"
#include "util/rng.h"
#include "util/table.h"

using namespace monge;

int main() {
  const std::int64_t n = 1 << 12;
  const double delta = 0.5;
  auto cfg = mpc::MpcConfig::fully_scalable(n, delta);
  std::printf(
      "cluster: n = %lld, delta = %.1f  =>  m = %lld machines, s = %lld "
      "words each\n\n",
      static_cast<long long>(n), delta,
      static_cast<long long>(cfg.num_machines),
      static_cast<long long>(cfg.space_words));

  Table t({"operation", "rounds", "total comm (words)", "peak machine words"});
  Rng rng(1);

  {
    mpc::Cluster c(cfg);
    std::vector<std::int64_t> data(static_cast<std::size_t>(n));
    for (auto& x : data) x = rng.next_in(0, 1 << 30);
    auto dv = mpc::DistVector<std::int64_t>::from_host(c, data);
    mpc::sample_sort(c, dv, [](std::int64_t x) { return x; });
    t.add_row({"sort (Lemma 2.5)", std::to_string(c.rounds()),
               std::to_string(c.stats().total_comm_words),
               std::to_string(c.stats().max_machine_words)});
  }
  {
    mpc::Cluster c(cfg);
    auto p = mpc::DistVector<std::int32_t>::from_host(c, rng.permutation(n));
    (void)mpc::inverse_permutation(c, p);
    t.add_row({"inverse permutation (Lemma 2.3)", std::to_string(c.rounds()),
               std::to_string(c.stats().total_comm_words),
               std::to_string(c.stats().max_machine_words)});
  }
  {
    mpc::Cluster c(cfg);
    std::vector<std::int64_t> vals(static_cast<std::size_t>(n), 1);
    auto dv = mpc::DistVector<std::int64_t>::from_host(c, vals);
    (void)mpc::dv_exclusive_prefix(c, dv);
    t.add_row({"prefix sums (Lemma 2.4)", std::to_string(c.rounds()),
               std::to_string(c.stats().total_comm_words),
               std::to_string(c.stats().max_machine_words)});
  }
  {
    // Pinning SolverOptions::cluster to cfg gives the facade exactly the
    // cluster the collectives above used; default multiply knobs resolve
    // to the paper schedule.
    Solver solver({.backend = SolverBackend::kMpcSim, .cluster = cfg});
    const MultiplyResult res = solver.solve(
        MultiplyRequest{Perm::random(n, rng), Perm::random(n, rng)});
    t.add_row({"unit-Monge multiply (Thm 1.1)",
               std::to_string(res.report.rounds),
               std::to_string(solver.cluster()->stats().total_comm_words),
               std::to_string(res.report.max_machine_words)});
  }
  std::printf("%s\n", t.to_string().c_str());
  return 0;
}
