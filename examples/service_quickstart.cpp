// Serving quickstart: monge::SolverService, the asynchronous tier over
// the Solver facade.
//   1. submit() -> std::future, workers solve concurrently,
//   2. identical concurrent requests coalesce onto ONE solve,
//   3. repeated requests are served from the digest-keyed LRU cache,
//   4. bounded admission sheds load instead of queueing without limit.
#include <cstdio>
#include <future>
#include <vector>

#include "api/service.h"
#include "util/rng.h"

using namespace monge;

int main() {
  Rng rng(7);

  // --- 1. Futures over a worker pool ------------------------------------
  // Each worker owns a private Solver (its own engine arena), so requests
  // never contend on solver state. queue_depth bounds admitted-but-
  // unstarted work; kReject sheds the overflow instead of blocking.
  SolverService service({.workers = 2,
                         .queue_depth = 64,
                         .admission = AdmissionPolicy::kReject,
                         .cache_capacity = 256});

  LisRequest lis;
  lis.seq.resize(4096);
  for (auto& x : lis.seq) x = rng.next_in(0, 1 << 30);
  const MultiplyRequest product{Perm::random(512, rng),
                                Perm::random(512, rng)};

  std::future<LisResult> f_lis = service.submit(lis);
  std::future<MultiplyResult> f_mul = service.submit(product);
  std::printf("LIS of %zu numbers: %lld; product has %lld points\n",
              lis.seq.size(), static_cast<long long>(f_lis.get().lis),
              static_cast<long long>(f_mul.get().c.point_count()));

  // --- 2 + 3. Dedup and the result cache --------------------------------
  // Eight users ask the same question at once: the digest matches, so the
  // service runs ONE solve and fans the result out; afterwards the answer
  // is cache-resident and later submits return an already-ready future.
  std::vector<std::future<LisResult>> same;
  for (int i = 0; i < 8; ++i) same.push_back(service.submit(lis));
  for (auto& f : same) (void)f.get();
  const ServiceStats stats = service.stats();
  std::printf(
      "11 submits so far -> %lld underlying solves "
      "(%lld coalesced in flight, %lld served from cache)\n",
      static_cast<long long>(stats.solves),
      static_cast<long long>(stats.coalesced),
      static_cast<long long>(stats.cache_hits));

  // --- 4. The non-throwing flavor ---------------------------------------
  // try_submit mirrors Solver::try_solve: admission refusals and solve
  // outcomes come back as SolveReports, never exceptions. A cache-served
  // answer says so.
  Submission<LisResult> sub = service.try_submit(lis);
  if (sub.admitted()) {
    const TrySolveResult<LisResult> res = sub.future.get();
    std::printf("try_submit: status=%s cached=%s lis=%lld\n",
                solve_status_name(res.report.status),
                res.report.cached ? "yes" : "no",
                static_cast<long long>(res.value.lis));
  }
  return 0;
}
