// Scenario: monitoring trend strength over a noisy telemetry stream.
//
// A service reports a latency sample per minute. "Trend strength" of any
// time window is the LIS of the window — long increasing runs indicate
// sustained degradation. One windowed LisRequest on the MPC backend builds
// the semi-local LIS kernel (Corollary 1.3.2) ONCE in O(log n) rounds and
// answers every window query offline, instead of re-running LIS per
// window.
#include <cstdio>

#include "api/solver.h"
#include "lis/sequential.h"
#include "util/check.h"
#include "util/rng.h"
#include "util/table.h"

using namespace monge;

int main() {
  // Synthetic day of per-minute latencies: baseline noise + two slow
  // degradation ramps.
  const std::int64_t n = 1440;
  Rng rng(7);
  LisRequest req;
  req.seq.resize(static_cast<std::size_t>(n));
  for (std::int64_t t = 0; t < n; ++t) {
    std::int64_t base = 200 + rng.next_in(-40, 40);
    if (t >= 300 && t < 420) base += (t - 300) * 3;   // morning incident
    if (t >= 1000 && t < 1300) base += (t - 1000);    // slow afternoon leak
    req.seq[static_cast<std::size_t>(t)] = base;
  }

  // Scan every 2-hour window at 30-minute stride via one offline batch.
  for (std::int64_t start = 0; start + 120 <= n; start += 30) {
    req.windows.push_back({start, start + 119});
  }

  Solver solver({.backend = SolverBackend::kMpcSim, .mpc_delta = 0.5});
  const LisResult res = solver.solve(req);
  std::printf("built semi-local LIS kernel for %lld samples in %lld MPC "
              "rounds, answered %zu windows offline\n\n",
              static_cast<long long>(n), static_cast<long long>(res.rounds),
              res.window_lis.size());

  Table t({"window (min)", "LIS (trend strength)", "alert?"});
  for (std::size_t w = 0; w < req.windows.size(); ++w) {
    const std::int64_t trend = res.window_lis[w];
    const bool alert = trend > 70;  // >58% of the window rising
    if (w % 4 == 0 || alert) {
      t.add_row({std::to_string(req.windows[w].first) + ".." +
                     std::to_string(req.windows[w].second),
                 std::to_string(trend), alert ? "ALERT" : ""});
    }
    // Cross-check a few against patience sorting.
    if (w % 10 == 0) {
      MONGE_CHECK(trend == lis::lis_window(req.seq, req.windows[w].first,
                                           req.windows[w].second));
    }
  }
  std::printf("%s\n", t.to_string().c_str());
  return 0;
}
