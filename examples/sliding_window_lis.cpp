// Scenario: monitoring trend strength over a noisy telemetry stream.
//
// A service reports a latency sample per minute. "Trend strength" of any
// time window is the LIS of the window — long increasing runs indicate
// sustained degradation. The semi-local LIS kernel (Corollary 1.3.2) is
// built ONCE in O(log n) rounds and then answers every window query
// offline, instead of re-running LIS per window.
#include <cstdio>

#include "lis/kernel.h"
#include "lis/mpc_lis.h"
#include "lis/sequential.h"
#include "util/rng.h"
#include "util/table.h"

using namespace monge;

int main() {
  // Synthetic day of per-minute latencies: baseline noise + two slow
  // degradation ramps.
  const std::int64_t n = 1440;
  Rng rng(7);
  std::vector<std::int64_t> latency(static_cast<std::size_t>(n));
  for (std::int64_t t = 0; t < n; ++t) {
    std::int64_t base = 200 + rng.next_in(-40, 40);
    if (t >= 300 && t < 420) base += (t - 300) * 3;   // morning incident
    if (t >= 1000 && t < 1300) base += (t - 1000);    // slow afternoon leak
    latency[static_cast<std::size_t>(t)] = base;
  }

  mpc::Cluster cluster(mpc::MpcConfig::fully_scalable(n, 0.5));
  const auto res = lis::mpc_lis(cluster, latency);
  std::printf("built semi-local LIS kernel for %lld samples in %lld MPC "
              "rounds\n\n",
              static_cast<long long>(n), static_cast<long long>(res.rounds));

  // Scan every 2-hour window at 30-minute stride via one offline batch.
  std::vector<std::pair<std::int64_t, std::int64_t>> windows;
  for (std::int64_t start = 0; start + 120 <= n; start += 30) {
    windows.push_back({start, start + 119});
  }
  const auto trend = lis::kernel_window_lis_batch(res.kernel, windows);

  Table t({"window (min)", "LIS (trend strength)", "alert?"});
  for (std::size_t w = 0; w < windows.size(); ++w) {
    const bool alert = trend[w] > 70;  // >58% of the window rising
    if (w % 4 == 0 || alert) {
      t.add_row({std::to_string(windows[w].first) + ".." +
                     std::to_string(windows[w].second),
                 std::to_string(trend[w]), alert ? "ALERT" : ""});
    }
    // Cross-check a few against patience sorting.
    if (w % 10 == 0) {
      MONGE_CHECK(trend[w] == lis::lis_window(latency, windows[w].first,
                                              windows[w].second));
    }
  }
  std::printf("%s\n", t.to_string().c_str());
  return 0;
}
