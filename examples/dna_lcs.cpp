// Scenario: similarity of two DNA fragments via LCS (Corollary 1.3.1).
//
// The Hunt–Szymanski reduction lists matching position pairs (quadratic in
// the worst case, n²/4 expected for DNA's 4-letter alphabet) and computes
// the LCS as a strict LIS of the pair sequence — the regime the paper's
// Corollary 1.3.1 addresses with m = n^{1+δ} machines. One LcsRequest on
// the MPC backend does all of it: the Solver provisions the cluster for
// the match count and runs the Theorem 1.3 LIS over the match sequence.
#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <string>

#include "api/solver.h"
#include "lcs/hunt_szymanski.h"
#include "util/rng.h"

using namespace monge;

namespace {

std::vector<std::int64_t> mutate(const std::vector<std::int64_t>& src,
                                 double rate, Rng& rng) {
  std::vector<std::int64_t> out;
  for (std::int64_t base : src) {
    const double roll = rng.next_double();
    if (roll < rate / 3) continue;               // deletion
    if (roll < 2 * rate / 3) {                   // substitution
      out.push_back(rng.next_in(0, 3));
      continue;
    }
    out.push_back(base);
    if (roll >= 1.0 - rate / 3) out.push_back(rng.next_in(0, 3));  // insertion
  }
  return out;
}

std::string preview(const std::vector<std::int64_t>& s) {
  static const char* alpha = "ACGT";
  std::string out;
  for (std::size_t i = 0; i < std::min<std::size_t>(s.size(), 48); ++i) {
    out += alpha[s[i] & 3];
  }
  return out + "...";
}

}  // namespace

int main(int argc, char** argv) {
  // Optional ancestor length (default 600 bp). The match-pair count — and
  // the simulated cluster work — grows quadratically, so CI smoke-runs
  // pass a smaller size while the default stays a meaty demo.
  std::int64_t length = 600;
  if (argc > 1) {
    char* end = nullptr;
    errno = 0;
    const long long parsed = std::strtoll(argv[1], &end, 10);
    // The match-pair count is Θ(n²/4), so cap n where the demo stays
    // tractable (10^4 → ~25M pairs, minutes of simulated-cluster work);
    // the cap also rejects ERANGE-saturated values.
    constexpr long long kMaxLength = 10'000;
    if (end == argv[1] || *end != '\0' || errno == ERANGE || parsed < 4 ||
        parsed > kMaxLength) {
      std::fprintf(stderr, "usage: %s [ancestor_length in [4, %lld]]\n",
                   argv[0], kMaxLength);
      return 1;
    }
    length = parsed;
  }
  Rng rng(42);
  std::vector<std::int64_t> ancestor(static_cast<std::size_t>(length));
  for (auto& b : ancestor) b = rng.next_in(0, 3);
  const auto fragment_a = mutate(ancestor, 0.15, rng);
  const auto fragment_b = mutate(ancestor, 0.15, rng);

  std::printf("fragment A (%zu bp): %s\n", fragment_a.size(),
              preview(fragment_a).c_str());
  std::printf("fragment B (%zu bp): %s\n\n", fragment_b.size(),
              preview(fragment_b).c_str());

  // The Solver provisions the cluster for the match count (Θ(n²/4) pairs
  // for DNA — the paper's m = n^{1+δ} regime relative to the fragments).
  Solver solver({.backend = SolverBackend::kMpcSim, .mpc_delta = 0.5});
  const LcsResult res = solver.solve(LcsRequest{fragment_a, fragment_b});

  const std::int64_t oracle = lcs::lcs_dp(fragment_a, fragment_b);
  std::printf("match pairs: %lld   MPC rounds: %lld\n",
              static_cast<long long>(res.matches),
              static_cast<long long>(res.rounds));
  std::printf("LCS length: %lld (DP oracle %lld, %s)\n",
              static_cast<long long>(res.lcs),
              static_cast<long long>(oracle),
              res.lcs == oracle ? "agrees" : "MISMATCH");
  std::printf("similarity: %.1f%% of the shorter fragment\n",
              100.0 * static_cast<double>(res.lcs) /
                  static_cast<double>(
                      std::min(fragment_a.size(), fragment_b.size())));
  return 0;
}
