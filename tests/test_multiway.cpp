// Tests for the §3.2/§3.3 grid-line + subgrid combine.
#include "monge/multiway.h"

#include <gtest/gtest.h>

#include <string>

#include "monge/distribution.h"
#include "monge/seaweed.h"
#include "testing.h"
#include "util/rng.h"

namespace monge {
namespace {

using testing::make_colored_split;

TEST(LineSweep, VerticalMatchesBruteForceOpt) {
  Rng rng(3);
  const std::int64_t n = 24;
  const Perm a = Perm::random(n, rng);
  const Perm b = Perm::random(n, rng);
  const ColoredPointSet s = make_colored_split(a, b, 4);
  for (std::int64_t col : {0L, 1L, 7L, 12L, 23L, 24L}) {
    const LineData line = sweep_vertical_line(s, col, 8);
    for (std::int64_t i = 0; i <= n; ++i) {
      ASSERT_EQ(line.opt_at(i), s.opt(i, col)) << "col=" << col << " i=" << i;
    }
  }
}

TEST(LineSweep, HorizontalMatchesBruteForceOpt) {
  Rng rng(5);
  const std::int64_t n = 24;
  const Perm a = Perm::random(n, rng);
  const Perm b = Perm::random(n, rng);
  const ColoredPointSet s = make_colored_split(a, b, 3);
  for (std::int64_t row : {0L, 1L, 9L, 16L, 24L}) {
    const LineData line = sweep_horizontal_line(s, row);
    for (std::int64_t j = 0; j <= n; ++j) {
      ASSERT_EQ(line.opt_at(j), s.opt(row, j)) << "row=" << row << " j=" << j;
    }
  }
}

TEST(LineSweep, AnchorsMatchBruteForceDeltas) {
  Rng rng(7);
  const std::int64_t n = 20;
  const Perm a = Perm::random(n, rng);
  const Perm b = Perm::random(n, rng);
  const ColoredPointSet s = make_colored_split(a, b, 5);
  const std::int64_t g = 4;
  for (std::int64_t col : {0L, 4L, 13L, 20L}) {
    const LineData line = sweep_vertical_line(s, col, g);
    for (std::int64_t gi = 0; gi <= n / g; ++gi) {
      for (std::int32_t k = 0; k + 1 < s.num_colors(); ++k) {
        ASSERT_EQ(line.grid_anchors[static_cast<std::size_t>(gi)]
                                   [static_cast<std::size_t>(k)],
                  s.delta(k, k + 1, gi * g, col))
            << "col=" << col << " gi=" << gi << " k=" << k;
      }
    }
  }
}

TEST(LineSweep, IntervalsAreCanonical) {
  Rng rng(11);
  const std::int64_t n = 32;
  const Perm a = Perm::random(n, rng);
  const Perm b = Perm::random(n, rng);
  const ColoredPointSet s = make_colored_split(a, b, 8);
  const LineData line = sweep_vertical_line(s, 16, 8);
  ASSERT_FALSE(line.start.empty());
  EXPECT_EQ(line.start[0], 0);
  for (std::size_t k = 1; k < line.start.size(); ++k) {
    EXPECT_LT(line.start[k - 1], line.start[k]);
    EXPECT_LT(line.value[k - 1], line.value[k]);  // opt monotone in i
  }
  EXPECT_LE(static_cast<std::int64_t>(line.start.size()), s.num_colors());
}

struct MwCase {
  std::int64_t n;
  std::int32_t h;
  std::int64_t g;
  std::uint64_t seed;
};

class MultiwaySweep : public ::testing::TestWithParam<MwCase> {};

TEST_P(MultiwaySweep, MatchesNaiveOracle) {
  const auto& cse = GetParam();
  Rng rng(cse.seed);
  for (int trial = 0; trial < 4; ++trial) {
    const Perm a = Perm::random(cse.n, rng);
    const Perm b = Perm::random(cse.n, rng);
    const ColoredPointSet s = make_colored_split(a, b, cse.h);
    MultiwayStats stats;
    const Perm got = multiway_combine_seq(s, cse.g, &stats);
    ASSERT_EQ(got, multiply_naive(a, b))
        << "n=" << cse.n << " h=" << cse.h << " g=" << cse.g;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, MultiwaySweep,
    ::testing::Values(MwCase{4, 2, 2, 1}, MwCase{8, 2, 4, 2},
                      MwCase{8, 4, 2, 3}, MwCase{12, 3, 4, 4},
                      MwCase{16, 4, 4, 5}, MwCase{16, 8, 4, 6},
                      MwCase{16, 2, 16, 7},  // single box
                      MwCase{24, 6, 5, 8},   // g does not divide n
                      MwCase{32, 8, 8, 9}, MwCase{33, 4, 8, 10},
                      MwCase{48, 12, 6, 11}, MwCase{64, 8, 16, 12},
                      MwCase{64, 16, 8, 13}, MwCase{96, 4, 32, 14}),
    [](const auto& tpi) {
      // Appends, not an operator+ chain: the chain trips a gcc-12
      // -Wrestrict false positive (PR105651) once inlined at -O3.
      std::string name;
      name += "n";
      name += std::to_string(tpi.param.n);
      name += "_h";
      name += std::to_string(tpi.param.h);
      name += "_g";
      name += std::to_string(tpi.param.g);
      return name;
    });

TEST(Multiway, HEqualsOneIsIdentityCombine) {
  // A single subproblem: combine must return the union unchanged.
  Rng rng(21);
  const Perm p = Perm::random(20, rng);
  std::vector<ColoredPoint> pts;
  for (const Point& pt : p.points()) pts.push_back({pt.row, pt.col, 0});
  const ColoredPointSet s(20, 1, std::move(pts));
  EXPECT_EQ(multiway_combine_seq(s, 4), p);
}

TEST(Multiway, AgreesWithSeaweedOnLargerInputs) {
  Rng rng(31);
  const std::int64_t n = 256;
  for (std::int32_t h : {2, 4, 8}) {
    const Perm a = Perm::random(n, rng);
    const Perm b = Perm::random(n, rng);
    // make_colored_split uses the naive oracle internally — too slow at
    // n=256? (256^3 = 16M — fine.)
    const ColoredPointSet s = make_colored_split(a, b, h);
    ASSERT_EQ(multiway_combine_seq(s, 32), seaweed_multiply(a, b))
        << "h=" << h;
  }
}

TEST(Multiway, StatsReportCrossedBoxesWithinLemma311Bound) {
  Rng rng(41);
  const std::int64_t n = 128, g = 16;
  const std::int32_t h = 8;
  const Perm a = Perm::random(n, rng);
  const Perm b = Perm::random(n, rng);
  const ColoredPointSet s = make_colored_split(a, b, h);
  MultiwayStats stats;
  multiway_combine_seq(s, g, &stats);
  // Lemma 3.11: at most 2nH/G subgrids are crossed.
  EXPECT_LE(stats.crossed_boxes, 2 * n * h / g + h);
  EXPECT_GT(stats.lines, 0);
}

TEST(Multiway, IdentitySplitEdgeCases) {
  // A ⊡ B where A = identity: PC = B; exercise with extreme splits.
  Rng rng(51);
  const std::int64_t n = 30;
  const Perm b = Perm::random(n, rng);
  const ColoredPointSet s = make_colored_split(Perm::identity(n), b, 5);
  EXPECT_EQ(multiway_combine_seq(s, 7), b);
}

}  // namespace
}  // namespace monge
