#include "monge/distribution.h"

#include <gtest/gtest.h>

#include "monge/permutation.h"
#include "util/rng.h"

namespace monge {
namespace {

TEST(DistMatrix, IdentityDistribution) {
  // For the identity permutation, PΣ(i,j) = #{r : r >= i, r < j}
  //                                       = max(0, min(n,j) - i).
  const std::int64_t n = 6;
  const DistMatrix m = DistMatrix::from(Perm::identity(n));
  for (std::int64_t i = 0; i <= n; ++i) {
    for (std::int64_t j = 0; j <= n; ++j) {
      EXPECT_EQ(m.at(i, j), std::max<std::int64_t>(0, j - i))
          << "(" << i << "," << j << ")";
    }
  }
}

TEST(DistMatrix, MatchesDirectEvaluation) {
  Rng rng(17);
  const Perm p = Perm::random_sub(9, 12, 6, rng);
  const DistMatrix m = DistMatrix::from(p);
  for (std::int64_t i = 0; i <= p.rows(); ++i) {
    for (std::int64_t j = 0; j <= p.cols(); ++j) {
      EXPECT_EQ(m.at(i, j), dist_at(p, i, j));
    }
  }
}

TEST(DistMatrix, BoundaryValues) {
  Rng rng(2);
  const Perm p = Perm::random(10, rng);
  const DistMatrix m = DistMatrix::from(p);
  // PΣ(i, 0) = 0 and PΣ(rows, j) = 0 by definition.
  for (std::int64_t i = 0; i <= 10; ++i) EXPECT_EQ(m.at(i, 0), 0);
  for (std::int64_t j = 0; j <= 10; ++j) EXPECT_EQ(m.at(10, j), 0);
  // PΣ(0, cols) counts all points.
  EXPECT_EQ(m.at(0, 10), 10);
}

TEST(DistMatrix, RoundTripToPerm) {
  Rng rng(23);
  for (int trial = 0; trial < 20; ++trial) {
    const Perm p = Perm::random_sub(15, 11, 8, rng);
    EXPECT_EQ(DistMatrix::from(p).to_perm(), p);
  }
}

TEST(DistMatrix, DistributionMatricesAreMonge) {
  Rng rng(5);
  for (int trial = 0; trial < 10; ++trial) {
    const Perm p = Perm::random(20, rng);
    EXPECT_TRUE(DistMatrix::from(p).is_monge());
  }
}

TEST(DistMatrix, MinPlusProductIsMonge) {
  // Lemma 2.1: the (min,+) product of unit-Monge matrices is unit-Monge,
  // i.e. it is the distribution matrix of a permutation.
  Rng rng(31);
  for (int trial = 0; trial < 10; ++trial) {
    const Perm a = Perm::random(16, rng);
    const Perm b = Perm::random(16, rng);
    const DistMatrix prod = DistMatrix::from(a).minplus(DistMatrix::from(b));
    EXPECT_TRUE(prod.is_monge());
    const Perm c = prod.to_perm();
    EXPECT_TRUE(c.is_full_permutation());
  }
}

TEST(DistMatrix, MinPlusDimensionCheck) {
  const DistMatrix a = DistMatrix::from(Perm::identity(3));
  const DistMatrix b = DistMatrix::from(Perm::identity(4));
  EXPECT_THROW(a.minplus(b), std::logic_error);
}

TEST(DistMatrix, ToPermRejectsNonUnitDensity) {
  // The density at (r,c) must be 0 or 1; a jump of 2 is not a
  // distribution matrix of any sub-permutation.
  DistMatrix m(1, 1);
  m.at(0, 1) = 2;
  EXPECT_THROW(m.to_perm(), std::logic_error);
  // A negative density is just as invalid.
  DistMatrix neg(1, 1);
  neg.at(0, 1) = -1;
  EXPECT_THROW(neg.to_perm(), std::logic_error);
}

TEST(DistMatrix, ToPermRejectsTwoPointsInOneRow) {
  // Unit densities at (0,0) AND (0,1): each delta is a legal 1, but a
  // (sub-)permutation has at most one point per row.
  DistMatrix m(1, 2);
  m.at(0, 1) = 1;
  m.at(0, 2) = 2;
  EXPECT_THROW(m.to_perm(), std::logic_error);
}

TEST(DistMatrix, IsMongeDetectsViolation) {
  // at(0,0) + at(1,1) > at(0,1) + at(1,0) fails the Monge condition.
  DistMatrix m(1, 1);
  m.at(0, 0) = 1;
  EXPECT_FALSE(m.is_monge());
}

TEST(DistMatrix, DirectEvaluationEquivalenceFuzz) {
  // dist_at (O(points), matrix-free) must agree with the materialised
  // DistMatrix::from everywhere, across shapes: square/rectangular,
  // sparse/empty/full.
  Rng rng(29);
  for (int trial = 0; trial < 25; ++trial) {
    const std::int64_t rows = rng.next_in(0, 12);
    const std::int64_t cols = rng.next_in(0, 12);
    const std::int64_t k = rng.next_in(0, std::min(rows, cols));
    const Perm p = Perm::random_sub(rows, cols, k, rng);
    const DistMatrix m = DistMatrix::from(p);
    for (std::int64_t i = 0; i <= rows; ++i) {
      for (std::int64_t j = 0; j <= cols; ++j) {
        ASSERT_EQ(m.at(i, j), dist_at(p, i, j))
            << rows << "x" << cols << " k=" << k << " (" << i << "," << j
            << ")";
      }
    }
  }
  // dist_at validates its own bounds (always-on MONGE_CHECK).
  const Perm p = Perm::identity(4);
  EXPECT_THROW(dist_at(p, -1, 0), std::logic_error);
  EXPECT_THROW(dist_at(p, 0, 5), std::logic_error);
}

TEST(DistMatrix, AtBoundsAreDebugChecked) {
  const DistMatrix m = DistMatrix::from(Perm::identity(3));
  // The closed upper corners are IN range: the matrix is (rows+1)x(cols+1).
  EXPECT_EQ(m.at(3, 3), 0);
  EXPECT_EQ(m.at(0, 3), 3);
#ifndef NDEBUG
  // Out-of-range access throws under MONGE_DCHECK in debug builds (it is
  // compiled out in release, where access is undefined).
  EXPECT_THROW(m.at(-1, 0), std::logic_error);
  EXPECT_THROW(m.at(0, -1), std::logic_error);
  EXPECT_THROW(m.at(4, 0), std::logic_error);
  EXPECT_THROW(m.at(0, 4), std::logic_error);
  DistMatrix mut(2, 2);
  EXPECT_THROW(mut.at(3, 0) = 1, std::logic_error);
#endif
}

TEST(NaiveMultiply, IdentityIsNeutral) {
  Rng rng(7);
  const Perm p = Perm::random(12, rng);
  EXPECT_EQ(multiply_naive(Perm::identity(12), p), p);
  EXPECT_EQ(multiply_naive(p, Perm::identity(12)), p);
}

TEST(NaiveMultiply, ReverseIsIdempotent) {
  // The anti-diagonal permutation is idempotent under ⊡: its distribution
  // matrix is the pointwise-largest unit-Monge matrix, and min-plus with
  // itself reproduces it.
  for (std::int64_t n : {1, 2, 3, 5, 8}) {
    EXPECT_EQ(multiply_naive(Perm::reverse(n), Perm::reverse(n)),
              Perm::reverse(n))
        << "n=" << n;
  }
}

TEST(NaiveMultiply, AssociativityOnRandomInputs) {
  Rng rng(41);
  for (int trial = 0; trial < 5; ++trial) {
    const Perm a = Perm::random(10, rng);
    const Perm b = Perm::random(10, rng);
    const Perm c = Perm::random(10, rng);
    EXPECT_EQ(multiply_naive(multiply_naive(a, b), c),
              multiply_naive(a, multiply_naive(b, c)));
  }
}

TEST(NaiveMultiply, SubPermutationClosure) {
  // Lemma 2.2: products of sub-permutations are sub-permutations.
  Rng rng(43);
  for (int trial = 0; trial < 20; ++trial) {
    const Perm a = Perm::random_sub(9, 7, 5, rng);
    const Perm b = Perm::random_sub(7, 11, 4, rng);
    const Perm c = multiply_naive(a, b);
    EXPECT_EQ(c.rows(), 9);
    EXPECT_EQ(c.cols(), 11);
    EXPECT_LE(c.point_count(), 4);
  }
}

TEST(NaiveMultiply, EmptyOperandGivesEmptyProduct) {
  const Perm a(4, 3);  // all-zero
  Rng rng(1);
  const Perm b = Perm::random_sub(3, 5, 2, rng);
  EXPECT_EQ(multiply_naive(a, b).point_count(), 0);
  EXPECT_EQ(multiply_naive(b.transposed(), a.transposed()).point_count(), 0);
}

}  // namespace
}  // namespace monge
