// Oracle-differential battery for query::SemiLocalIndex and its API-tier
// surface (BuildIndexRequest / WindowLisQuery / SubstringLcsQuery on the
// Solver, plus SolverService handle caching).
//
// The pinning strategy: every window answer the index serves is
// bit-compared against lis::lis_window_batch — the per-window patience
// oracle, itself the reference kernel_window_lis_batch has always been
// fuzzed against — across five sequence families (random, sorted,
// reverse, duplicate-heavy, near-similar), >= 1000 fuzzed windows per
// (family, seed), degenerate shapes included. Substring-LCS answers pin
// against lcs::lcs_dp on the literal substring. A dedicated shuffled
// ctest entry (monge_tests_query_shuffled_stress, CMakeLists.txt) repeats
// the whole file in randomized order, mirroring monge_tests_shuffled_stress.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <future>
#include <utility>
#include <vector>

#include "api/service.h"
#include "api/solver.h"
#include "lcs/hunt_szymanski.h"
#include "lis/kernel.h"
#include "lis/sequential.h"
#include "query/semilocal_index.h"
#include "util/error.h"
#include "util/rng.h"

namespace monge {
namespace {

using query::SemiLocalIndex;
using Windows = std::vector<std::pair<std::int64_t, std::int64_t>>;

// ---------------------------------------------------------------------------
// Sequence families. Each takes the target length and a seeded Rng; the
// battery runs every family through the same fuzz harness.
// ---------------------------------------------------------------------------

std::vector<std::int64_t> family_random(std::int64_t n, Rng& rng) {
  std::vector<std::int64_t> seq(static_cast<std::size_t>(n));
  for (auto& x : seq) x = rng.next_in(-1000, 1000);
  return seq;
}

std::vector<std::int64_t> family_sorted(std::int64_t n, Rng& rng) {
  std::vector<std::int64_t> seq(static_cast<std::size_t>(n));
  std::int64_t v = rng.next_in(-50, 50);
  for (auto& x : seq) {
    v += rng.next_in(0, 3);  // non-strict ascent: duplicates appear
    x = v;
  }
  return seq;
}

std::vector<std::int64_t> family_reverse(std::int64_t n, Rng& rng) {
  auto seq = family_sorted(n, rng);
  std::reverse(seq.begin(), seq.end());
  return seq;
}

std::vector<std::int64_t> family_duplicate_heavy(std::int64_t n, Rng& rng) {
  std::vector<std::int64_t> seq(static_cast<std::size_t>(n));
  for (auto& x : seq) x = rng.next_in(0, 3);  // 4-letter alphabet
  return seq;
}

/// Mostly-sorted with a few transpositions and value nudges — the
/// "near-similar sequences" regime real indexing workloads live in.
std::vector<std::int64_t> family_near_similar(std::int64_t n, Rng& rng) {
  std::vector<std::int64_t> seq(static_cast<std::size_t>(n));
  for (std::int64_t i = 0; i < n; ++i) seq[static_cast<std::size_t>(i)] = i;
  for (std::int64_t k = 0; k < n / 16 + 1; ++k) {
    const auto a = static_cast<std::size_t>(rng.next_below(
        static_cast<std::uint64_t>(n)));
    const auto b = static_cast<std::size_t>(rng.next_below(
        static_cast<std::uint64_t>(n)));
    std::swap(seq[a], seq[b]);
  }
  for (std::int64_t k = 0; k < n / 8 + 1; ++k) {
    seq[static_cast<std::size_t>(
        rng.next_below(static_cast<std::uint64_t>(n)))] +=
        rng.next_in(-2, 2);
  }
  return seq;
}

struct Family {
  const char* name;
  std::vector<std::int64_t> (*make)(std::int64_t, Rng&);
};

constexpr Family kFamilies[] = {
    {"random", family_random},
    {"sorted", family_sorted},
    {"reverse", family_reverse},
    {"duplicate-heavy", family_duplicate_heavy},
    {"near-similar", family_near_similar},
};

/// Fuzzed window mix: uniform spans, tiny windows, singletons, full range,
/// prefixes/suffixes, and legitimate empty (l > r) windows — including
/// out-of-range endpoints, which the contract says still answer 0.
Windows fuzz_windows(std::int64_t n, std::int64_t count, Rng& rng) {
  Windows windows;
  windows.reserve(static_cast<std::size_t>(count));
  for (std::int64_t q = 0; q < count; ++q) {
    switch (rng.next_below(8)) {
      case 0: {  // empty, possibly wildly out of range
        const std::int64_t l = rng.next_in(-5, n + 5);
        windows.emplace_back(l, l - 1 - rng.next_in(0, 7));
        break;
      }
      case 1: {  // singleton
        const std::int64_t l = n == 0 ? 0 : rng.next_in(0, n - 1);
        if (n == 0) {
          windows.emplace_back(0, -1);
        } else {
          windows.emplace_back(l, l);
        }
        break;
      }
      case 2:  // full range
        windows.emplace_back(0, n - 1);
        break;
      case 3: {  // prefix / suffix
        if (n == 0) {
          windows.emplace_back(0, -1);
        } else if (rng.next_below(2) == 0) {
          windows.emplace_back(0, rng.next_in(0, n - 1));
        } else {
          windows.emplace_back(rng.next_in(0, n - 1), n - 1);
        }
        break;
      }
      default: {  // uniform span
        if (n == 0) {
          windows.emplace_back(0, -1);
        } else {
          std::int64_t a = rng.next_in(0, n - 1);
          std::int64_t b = rng.next_in(0, n - 1);
          if (a > b) std::swap(a, b);
          windows.emplace_back(a, b);
        }
        break;
      }
    }
  }
  return windows;
}

// ---------------------------------------------------------------------------
// The oracle-differential battery.
// ---------------------------------------------------------------------------

TEST(SemiLocalIndex, WindowFuzzAgainstPatienceOracleAllFamilies) {
  // >= 1000 fuzzed windows per (family, seed): 5 families x 2 seeds x 1000.
  constexpr std::int64_t kN = 257;  // non-power-of-two exercises tree padding
  constexpr std::int64_t kWindowsPerSeed = 1000;
  for (const Family& family : kFamilies) {
    for (const std::uint64_t seed : {11u, 97u}) {
      Rng rng(seed);
      const auto seq = family.make(kN, rng);
      const SemiLocalIndex index = SemiLocalIndex::from_sequence(seq);
      const Windows windows = fuzz_windows(kN, kWindowsPerSeed, rng);
      const auto got = index.window_lis_batch(windows);
      const auto want = lis::lis_window_batch(seq, windows);
      ASSERT_EQ(got.size(), want.size());
      for (std::size_t q = 0; q < windows.size(); ++q) {
        ASSERT_EQ(got[q], want[q])
            << family.name << " seed=" << seed << " window=["
            << windows[q].first << ", " << windows[q].second << "]";
      }
    }
  }
}

TEST(SemiLocalIndex, LargeWindowFuzzAgainstKernelSweep) {
  // At sizes where the per-window patience oracle is too slow, pin against
  // kernel_window_lis_batch (itself oracle-pinned in test_lis.cpp) on the
  // SAME kernel the index persisted.
  constexpr std::int64_t kN = 4096;
  for (const Family& family : kFamilies) {
    Rng rng(1234);
    const auto seq = family.make(kN, rng);
    const Perm kernel = lis::lis_kernel(lis::rank_reduce_strict(seq));
    const SemiLocalIndex index = SemiLocalIndex::from_kernel(kernel);
    const Windows windows = fuzz_windows(kN, 2000, rng);
    EXPECT_EQ(index.window_lis_batch(windows),
              lis::kernel_window_lis_batch(kernel, windows))
        << family.name;
  }
}

TEST(SemiLocalIndex, DegenerateWindows) {
  const std::vector<std::int64_t> seq{5, 1, 4, 4, 2, 7};
  const SemiLocalIndex index = SemiLocalIndex::from_sequence(seq);
  EXPECT_EQ(index.size(), 6);
  // Empty windows answer 0 even with endpoints far outside [0, n).
  EXPECT_EQ(index.window_lis(0, -1), 0);
  EXPECT_EQ(index.window_lis(3, 2), 0);
  EXPECT_EQ(index.window_lis(100, -100), 0);
  // Singletons answer 1, the full range the global LIS.
  for (std::int64_t i = 0; i < 6; ++i) EXPECT_EQ(index.window_lis(i, i), 1);
  EXPECT_EQ(index.window_lis(0, 5), 3);  // 1, 4|2, 7  (strict LIS)
  EXPECT_EQ(index.full_answer(), 3);
  // Non-empty out-of-range windows are contract violations.
  EXPECT_THROW(index.window_lis(-1, 2), std::logic_error);
  EXPECT_THROW(index.window_lis(0, 6), std::logic_error);
}

TEST(SemiLocalIndex, EmptyAndSingletonSequences) {
  const SemiLocalIndex empty = SemiLocalIndex::from_sequence({});
  EXPECT_EQ(empty.size(), 0);
  EXPECT_EQ(empty.point_count(), 0);
  EXPECT_EQ(empty.full_answer(), 0);
  EXPECT_EQ(empty.window_lis(0, -1), 0);
  EXPECT_EQ(empty.window_lis(5, 1), 0);
  EXPECT_THROW(empty.window_lis(0, 0), std::logic_error);

  const std::vector<std::int64_t> one{42};
  const SemiLocalIndex single = SemiLocalIndex::from_sequence(one);
  EXPECT_EQ(single.size(), 1);
  EXPECT_EQ(single.window_lis(0, 0), 1);
  EXPECT_EQ(single.full_answer(), 1);
  EXPECT_EQ(single.window_lis(1, 0), 0);
  EXPECT_THROW(single.window_lis(0, 1), std::logic_error);
}

TEST(SemiLocalIndex, MatchesKernelWindowLisPointwise) {
  Rng rng(7);
  const auto seq = family_random(129, rng);
  const Perm kernel = lis::lis_kernel(lis::rank_reduce_strict(seq));
  const SemiLocalIndex index = SemiLocalIndex::from_kernel(kernel);
  for (std::int64_t l = 0; l < 129; l += 7) {
    for (std::int64_t r = l; r < 129; r += 5) {
      ASSERT_EQ(index.window_lis(l, r), lis::kernel_window_lis(kernel, l, r))
          << "[" << l << ", " << r << "]";
    }
  }
}

TEST(SemiLocalIndex, FromKernelRejectsNonSquare) {
  Rng rng(3);
  const Perm rect = Perm::random_sub(6, 9, 4, rng);
  EXPECT_THROW(SemiLocalIndex::from_kernel(rect), std::logic_error);
}

TEST(SemiLocalIndex, AccessorsAndUniqueIds) {
  Rng rng(5);
  const auto seq = family_random(64, rng);
  const SemiLocalIndex a = SemiLocalIndex::from_sequence(seq);
  const SemiLocalIndex b = SemiLocalIndex::from_sequence(seq);
  EXPECT_NE(a.id(), 0u);
  EXPECT_NE(a.id(), b.id());  // process-unique, never reused
  EXPECT_FALSE(a.lcs_mode());
  EXPECT_EQ(a.source_rows(), 0);
  EXPECT_EQ(a.point_count(), 64 - a.full_answer());
  EXPECT_GT(a.memory_bytes(), 0);
}

// ---------------------------------------------------------------------------
// Substring-LCS mode.
// ---------------------------------------------------------------------------

TEST(SemiLocalIndex, SubstringLcsExhaustiveAgainstDp) {
  for (const std::uint64_t seed : {2u, 19u, 71u}) {
    Rng rng(seed);
    const std::int64_t ns = rng.next_in(20, 40);
    const std::int64_t nt = rng.next_in(20, 40);
    const auto s = family_duplicate_heavy(ns, rng);  // dense matches
    const auto t = family_duplicate_heavy(nt, rng);
    const SemiLocalIndex index = SemiLocalIndex::from_lcs_pair(s, t);
    EXPECT_TRUE(index.lcs_mode());
    EXPECT_EQ(index.source_rows(), ns);
    for (std::int64_t i = 0; i < ns; ++i) {
      for (std::int64_t j = i; j < ns; ++j) {
        const std::vector<std::int64_t> sub(
            s.begin() + static_cast<std::ptrdiff_t>(i),
            s.begin() + static_cast<std::ptrdiff_t>(j) + 1);
        ASSERT_EQ(index.substring_lcs(i, j), lcs::lcs_dp(sub, t))
            << "seed=" << seed << " s[" << i << ".." << j << "]";
      }
    }
    // Full range is the O(1) answer too.
    EXPECT_EQ(index.substring_lcs(0, ns - 1), index.full_answer());
    EXPECT_EQ(index.full_answer(), lcs::lcs_dp(s, t));
  }
}

TEST(SemiLocalIndex, SubstringLcsSparseAndNoMatchAlphabets) {
  Rng rng(23);
  // Disjoint alphabets: zero matches, every substring answers 0.
  const auto s = family_random(30, rng);  // values in [-1000, 1000]
  std::vector<std::int64_t> t(25);
  for (auto& x : t) x = rng.next_in(5000, 6000);
  t[3] = 5500;  // guaranteed shared symbol for the second half below
  const SemiLocalIndex none = SemiLocalIndex::from_lcs_pair(s, t);
  EXPECT_EQ(none.size(), 0);
  EXPECT_EQ(none.substring_lcs(0, 29), 0);
  EXPECT_EQ(none.substring_lcs(4, 17), 0);
  EXPECT_EQ(none.full_answer(), 0);

  // One shared symbol: LCS is 1 exactly when the substring contains it.
  std::vector<std::int64_t> s2(11, -7);
  for (std::size_t i = 0; i < s2.size(); ++i) {
    s2[i] = i == 6 ? 5500 : -7 - static_cast<std::int64_t>(i);
  }
  const SemiLocalIndex one = SemiLocalIndex::from_lcs_pair(s2, t);
  for (std::int64_t i = 0; i < 11; ++i) {
    for (std::int64_t j = i; j < 11; ++j) {
      EXPECT_EQ(one.substring_lcs(i, j), (i <= 6 && 6 <= j) ? 1 : 0);
    }
  }
}

TEST(SemiLocalIndex, SubstringLcsDegenerateAndModeErrors) {
  Rng rng(31);
  const auto s = family_duplicate_heavy(12, rng);
  const auto t = family_duplicate_heavy(15, rng);
  const SemiLocalIndex index = SemiLocalIndex::from_lcs_pair(s, t);
  EXPECT_EQ(index.substring_lcs(5, 4), 0);    // empty substring
  EXPECT_EQ(index.substring_lcs(50, -3), 0);  // empty, out of range
  EXPECT_THROW(index.substring_lcs(-1, 4), std::logic_error);
  EXPECT_THROW(index.substring_lcs(0, 12), std::logic_error);

  const SemiLocalIndex lis_index = SemiLocalIndex::from_sequence(s);
  EXPECT_THROW(lis_index.substring_lcs(0, 3), std::logic_error);

  // from_lcs_kernel validates the row-start table shape.
  const Perm kernel = lis::lis_kernel(lis::rank_reduce_strict(s));
  EXPECT_THROW(SemiLocalIndex::from_lcs_kernel(kernel, {}), std::logic_error);
  EXPECT_THROW(SemiLocalIndex::from_lcs_kernel(kernel, {0, 3}),
               std::logic_error);
  EXPECT_THROW(SemiLocalIndex::from_lcs_kernel(
                   kernel, {0, 9, 5, kernel.rows()}),
               std::logic_error);
}

TEST(SemiLocalIndex, SubstringLcsBatchMatchesPointwise) {
  Rng rng(47);
  const auto s = family_duplicate_heavy(35, rng);
  const auto t = family_duplicate_heavy(28, rng);
  const SemiLocalIndex index = SemiLocalIndex::from_lcs_pair(s, t);
  Windows subs = fuzz_windows(35, 300, rng);
  const auto got = index.substring_lcs_batch(subs);
  ASSERT_EQ(got.size(), subs.size());
  for (std::size_t q = 0; q < subs.size(); ++q) {
    EXPECT_EQ(got[q], index.substring_lcs(subs[q].first, subs[q].second));
  }
}

// ---------------------------------------------------------------------------
// Solver surface: BuildIndexRequest / WindowLisQuery / SubstringLcsQuery.
// ---------------------------------------------------------------------------

TEST(SolverQuery, BuildAndQueryBitIdenticalAcrossBackends) {
  Rng rng(61);
  const auto seq = family_random(160, rng);
  const Windows windows = fuzz_windows(160, 400, rng);
  const auto want = lis::lis_window_batch(seq, windows);

  for (const SolverBackend backend :
       {SolverBackend::kSequential, SolverBackend::kReference,
        SolverBackend::kMpcSim}) {
    Solver solver({.backend = backend});
    const BuildIndexResult built = solver.solve(BuildIndexRequest{
        .kind = BuildIndexRequest::Kind::kWindowLis, .seq = seq});
    ASSERT_TRUE(built.handle.valid());
    EXPECT_EQ(built.n, 160);
    EXPECT_EQ(built.full, lis::lis_length(seq));
    EXPECT_EQ(built.rounds > 0, backend == SolverBackend::kMpcSim);
    const WindowLisResult res =
        solver.solve(WindowLisQuery{built.handle, windows});
    EXPECT_EQ(res.lis, want) << solver_backend_name(backend);
  }
}

TEST(SolverQuery, SubstringLcsAcrossBackends) {
  Rng rng(67);
  const auto s = family_duplicate_heavy(30, rng);
  const auto t = family_duplicate_heavy(24, rng);
  Windows subs;
  for (std::int64_t i = 0; i < 30; i += 3) {
    for (std::int64_t j = i; j < 30; j += 4) subs.emplace_back(i, j);
  }
  std::vector<std::int64_t> want;
  for (const auto& [i, j] : subs) {
    const std::vector<std::int64_t> sub(
        s.begin() + static_cast<std::ptrdiff_t>(i),
        s.begin() + static_cast<std::ptrdiff_t>(j) + 1);
    want.push_back(lcs::lcs_dp(sub, t));
  }
  for (const SolverBackend backend :
       {SolverBackend::kSequential, SolverBackend::kReference,
        SolverBackend::kMpcSim}) {
    Solver solver({.backend = backend});
    const BuildIndexResult built = solver.solve(BuildIndexRequest{
        .kind = BuildIndexRequest::Kind::kSubstringLcs, .seq = s, .t = t});
    ASSERT_TRUE(built.handle.valid());
    EXPECT_EQ(built.full, lcs::lcs_dp(s, t));
    const SubstringLcsResult res =
        solver.solve(SubstringLcsQuery{built.handle, subs});
    EXPECT_EQ(res.lcs, want) << solver_backend_name(backend);
  }
}

TEST(SolverQuery, HandlesOutliveTheBuildingSolver) {
  QueryHandle handle;
  const std::vector<std::int64_t> seq{3, 1, 4, 1, 5, 9, 2, 6};
  {
    Solver solver;
    handle = solver.solve(BuildIndexRequest{.seq = seq}).handle;
  }  // the Solver (and its engine arena) are gone; the index is not
  Solver other;
  const WindowLisResult res =
      other.solve(WindowLisQuery{handle, {{0, 7}, {2, 5}}});
  EXPECT_EQ(res.lis, (std::vector<std::int64_t>{4, 3}));
}

TEST(SolverQuery, InvalidRequestsThrowTaxonomyErrors) {
  Solver solver;
  // t alongside kWindowLis is a contract violation, not silently ignored.
  EXPECT_THROW(solver.solve(BuildIndexRequest{
                   .kind = BuildIndexRequest::Kind::kWindowLis,
                   .seq = {1, 2},
                   .t = {3}}),
               InvalidRequestError);
  EXPECT_THROW(solver.solve(BuildIndexRequest{
                   .kind = static_cast<BuildIndexRequest::Kind>(9)}),
               InvalidRequestError);
  // Empty handles and mode mismatches.
  EXPECT_THROW(solver.solve(WindowLisQuery{{}, {{0, 0}}}),
               InvalidRequestError);
  EXPECT_THROW(solver.solve(SubstringLcsQuery{{}, {{0, 0}}}),
               InvalidRequestError);
  const QueryHandle lis_handle =
      solver.solve(BuildIndexRequest{.seq = {5, 2, 8}}).handle;
  EXPECT_THROW(solver.solve(SubstringLcsQuery{lis_handle, {{0, 1}}}),
               InvalidRequestError);
  const QueryHandle lcs_handle =
      solver
          .solve(BuildIndexRequest{
              .kind = BuildIndexRequest::Kind::kSubstringLcs,
              .seq = {5, 2, 8},
              .t = {2, 8}})
          .handle;
  EXPECT_THROW(solver.solve(WindowLisQuery{lcs_handle, {{0, 1}}}),
               InvalidRequestError);

  // try_solve classifies the same failures instead of throwing.
  const auto res = solver.try_solve(WindowLisQuery{{}, {{0, 0}}});
  EXPECT_FALSE(res.ok());
  EXPECT_EQ(res.report.status, SolveStatus::kInvalidRequest);
  // Out-of-range windows are MONGE_CHECK logic errors -> kInvalidRequest.
  const auto oob = solver.try_solve(WindowLisQuery{lis_handle, {{0, 99}}});
  EXPECT_EQ(oob.report.status, SolveStatus::kInvalidRequest);
}

// ---------------------------------------------------------------------------
// Service surface: handles in the digest-keyed cache, queries on the pool.
// ---------------------------------------------------------------------------

TEST(QueryService, IdenticalBuildsShareOneIndexThroughTheCache) {
  Rng rng(83);
  const auto seq = family_random(96, rng);
  SolverService service({.workers = 2});
  const BuildIndexRequest req{.seq = seq};
  const BuildIndexResult first = service.submit(req).get();
  const BuildIndexResult second = service.submit(req).get();
  // The second build is served from the digest-keyed cache: same shared
  // index object, not a rebuild.
  EXPECT_EQ(first.handle.id(), second.handle.id());
  EXPECT_EQ(first.handle.index.get(), second.handle.index.get());
  const ServiceStats stats = service.stats();
  EXPECT_EQ(stats.cache_hits, 1);
  EXPECT_EQ(stats.solves, 1);
}

TEST(QueryService, EndToEndMixedQueriesMatchOracle) {
  Rng rng(89);
  const auto seq = family_near_similar(200, rng);
  const auto s = family_duplicate_heavy(26, rng);
  const auto t = family_duplicate_heavy(22, rng);
  SolverService service({.workers = 2});

  const QueryHandle lis_handle =
      service.submit(BuildIndexRequest{.seq = seq}).get().handle;
  const QueryHandle lcs_handle =
      service
          .submit(BuildIndexRequest{
              .kind = BuildIndexRequest::Kind::kSubstringLcs,
              .seq = s,
              .t = t})
          .get()
          .handle;

  // Many concurrent query batches against both handles.
  std::vector<std::future<WindowLisResult>> lis_futs;
  std::vector<Windows> lis_batches;
  std::vector<std::future<SubstringLcsResult>> lcs_futs;
  std::vector<Windows> lcs_batches;
  for (int k = 0; k < 8; ++k) {
    lis_batches.push_back(fuzz_windows(200, 50, rng));
    lis_futs.push_back(
        service.submit(WindowLisQuery{lis_handle, lis_batches.back()}));
    lcs_batches.push_back(fuzz_windows(26, 20, rng));
    lcs_futs.push_back(
        service.submit(SubstringLcsQuery{lcs_handle, lcs_batches.back()}));
  }
  for (int k = 0; k < 8; ++k) {
    EXPECT_EQ(lis_futs[static_cast<std::size_t>(k)].get().lis,
              lis::lis_window_batch(seq,
                                    lis_batches[static_cast<std::size_t>(k)]));
    const auto got = lcs_futs[static_cast<std::size_t>(k)].get().lcs;
    const auto& batch = lcs_batches[static_cast<std::size_t>(k)];
    ASSERT_EQ(got.size(), batch.size());
    for (std::size_t q = 0; q < batch.size(); ++q) {
      const auto [i, j] = batch[q];
      if (i > j) {
        EXPECT_EQ(got[q], 0);
      } else {
        const std::vector<std::int64_t> sub(
            s.begin() + static_cast<std::ptrdiff_t>(i),
            s.begin() + static_cast<std::ptrdiff_t>(j) + 1);
        EXPECT_EQ(got[q], lcs::lcs_dp(sub, t));
      }
    }
  }
}

TEST(QueryService, RepeatedQueryBatchesHitTheResultCache) {
  Rng rng(101);
  const auto seq = family_random(80, rng);
  SolverService service({.workers = 1});
  const QueryHandle handle =
      service.submit(BuildIndexRequest{.seq = seq}).get().handle;
  const Windows windows = fuzz_windows(80, 64, rng);

  auto first = service.try_submit(WindowLisQuery{handle, windows});
  ASSERT_TRUE(first.admitted());
  const auto r1 = first.future.get();
  EXPECT_FALSE(r1.report.cached);
  auto second = service.try_submit(WindowLisQuery{handle, windows});
  ASSERT_TRUE(second.admitted());
  const auto r2 = second.future.get();
  EXPECT_TRUE(r2.report.cached);
  EXPECT_EQ(r1.value.lis, r2.value.lis);
}

TEST(QueryService, TrySubmitReportsInvalidHandle) {
  SolverService service({.workers = 1});
  auto sub = service.try_submit(WindowLisQuery{{}, {{0, 0}}});
  ASSERT_TRUE(sub.admitted());
  const auto res = sub.future.get();
  EXPECT_EQ(res.report.status, SolveStatus::kInvalidRequest);
}

}  // namespace
}  // namespace monge
