// Theorem 1.1 / 1.2 on the simulated cluster, against the sequential
// oracles, across machine counts, schedules and profiles.
#include "core/mpc_multiply.h"

#include <gtest/gtest.h>

#include <string>

#include "core/mpc_subperm.h"
#include "monge/distribution.h"
#include "monge/seaweed.h"
#include "monge/subperm.h"
#include "util/rng.h"

namespace monge::core {
namespace {

mpc::MpcConfig cfg_of(std::int64_t machines, std::int64_t space = 1 << 22,
                      bool strict = true) {
  mpc::MpcConfig cfg;
  cfg.num_machines = machines;
  cfg.space_words = space;
  cfg.strict = strict;
  cfg.threads = 2;
  return cfg;
}

struct MulCase {
  std::int64_t n, m, h, fanout, g;
  std::uint64_t seed;
};

class MpcMulSweep : public ::testing::TestWithParam<MulCase> {};

TEST_P(MpcMulSweep, MatchesSeaweed) {
  const auto& p = GetParam();
  mpc::Cluster cluster(cfg_of(p.m, 1 << 22, /*strict=*/false));
  Rng rng(p.seed);
  MpcMultiplyOptions opt;
  opt.split_h = p.h;
  opt.tree_fanout = p.fanout;
  opt.box_g = p.g;
  for (int trial = 0; trial < 2; ++trial) {
    const Perm a = Perm::random(p.n, rng);
    const Perm b = Perm::random(p.n, rng);
    MpcMultiplyReport rep;
    const Perm got = mpc_unit_monge_multiply(cluster, a, b, opt, &rep);
    ASSERT_EQ(got, seaweed_multiply(a, b))
        << "n=" << p.n << " m=" << p.m << " h=" << p.h;
    EXPECT_GT(rep.rounds, 0);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, MpcMulSweep,
    ::testing::Values(
        // Tiny: everything in one leaf.
        MulCase{8, 2, 2, 2, 8, 1},
        // Single split level, two-way.
        MulCase{16, 4, 2, 2, 8, 2},
        // Multi-level two-way (warmup-like).
        MulCase{64, 8, 2, 2, 8, 3},
        // H-way splits.
        MulCase{64, 8, 4, 4, 8, 4}, MulCase{81, 9, 3, 3, 9, 5},
        MulCase{128, 16, 4, 4, 16, 6},
        // fanout != split arity.
        MulCase{64, 8, 2, 8, 8, 7}, MulCase{128, 8, 4, 2, 16, 8},
        // Uneven sizes: n not divisible by H or G.
        MulCase{100, 7, 3, 3, 13, 9}, MulCase{97, 5, 4, 4, 10, 10},
        // Bigger stress.
        MulCase{256, 16, 4, 4, 32, 11}, MulCase{512, 16, 8, 8, 32, 12}),
    [](const auto& tpi) {
      // Appends, not an operator+ chain: the chain trips a gcc-12
      // -Wrestrict false positive (PR105651) once inlined at -O3.
      std::string name;
      name += "n";
      name += std::to_string(tpi.param.n);
      name += "_m";
      name += std::to_string(tpi.param.m);
      name += "_h";
      name += std::to_string(tpi.param.h);
      name += "_f";
      name += std::to_string(tpi.param.fanout);
      name += "_g";
      name += std::to_string(tpi.param.g);
      return name;
    });

TEST(MpcMultiply, DefaultScheduleOnFullyScalableCluster) {
  const std::int64_t n = 1 << 10;
  for (double delta : {0.3, 0.5}) {
    mpc::Cluster cluster(mpc::MpcConfig::fully_scalable(n, delta));
    Rng rng(static_cast<std::uint64_t>(delta * 100));
    const Perm a = Perm::random(n, rng);
    const Perm b = Perm::random(n, rng);
    MpcMultiplyReport rep;
    const Perm got = mpc_unit_monge_multiply(
        cluster, a, b, paper_profile(n, cluster), &rep);
    ASSERT_EQ(got, seaweed_multiply(a, b)) << "delta=" << delta;
  }
}

TEST(MpcMultiply, BatchSharesRounds) {
  mpc::Cluster cluster(cfg_of(8));
  Rng rng(77);
  std::vector<std::pair<Perm, Perm>> pairs;
  for (int t = 0; t < 6; ++t) {
    const std::int64_t k = 16 + 8 * t;  // mixed sizes
    pairs.emplace_back(Perm::random(k, rng), Perm::random(k, rng));
  }
  MpcMultiplyOptions opt;
  opt.split_h = 2;
  opt.box_g = 16;
  MpcMultiplyReport rep_batch;
  const auto got =
      mpc_unit_monge_multiply_batch(cluster, pairs, opt, &rep_batch);
  ASSERT_EQ(got.size(), pairs.size());
  for (std::size_t t = 0; t < pairs.size(); ++t) {
    ASSERT_EQ(got[t], seaweed_multiply(pairs[t].first, pairs[t].second))
        << "pair " << t;
  }
  // One batched call must cost far fewer rounds than six sequential calls.
  mpc::Cluster c2(cfg_of(8));
  std::int64_t serial_rounds = 0;
  for (const auto& pr : pairs) {
    MpcMultiplyReport r;
    (void)mpc_unit_monge_multiply(c2, pr.first, pr.second, opt, &r);
    serial_rounds += r.rounds;
  }
  EXPECT_LT(rep_batch.rounds, serial_rounds / 2);
}

TEST(MpcMultiply, WarmupProfileCostsMoreRoundsThanPaper) {
  const std::int64_t n = 1 << 9;
  mpc::Cluster c1(cfg_of(16)), c2(cfg_of(16)), c3(cfg_of(16));
  Rng rng(5);
  const Perm a = Perm::random(n, rng);
  const Perm b = Perm::random(n, rng);
  const Perm expect = seaweed_multiply(a, b);

  MpcMultiplyOptions paper;  // H-way split and flattened tree
  paper.split_h = 8;
  paper.tree_fanout = 8;
  MpcMultiplyReport rp, rw, rc;
  ASSERT_EQ(mpc_unit_monge_multiply(c1, a, b, paper, &rp), expect);
  MpcMultiplyOptions warm;  // two-way split, flattened tree
  warm.split_h = 2;
  warm.tree_fanout = 8;
  ASSERT_EQ(mpc_unit_monge_multiply(c2, a, b, warm, &rw), expect);
  MpcMultiplyOptions chs;  // two-way split, binary tree
  chs.split_h = 2;
  chs.tree_fanout = 2;
  ASSERT_EQ(mpc_unit_monge_multiply(c3, a, b, chs, &rc), expect);

  EXPECT_LT(rp.levels, rw.levels);
  EXPECT_LT(rp.rounds, rw.rounds);
  EXPECT_LE(rw.rounds, rc.rounds);
}

// ---------------------------------------------------------------------------
// Report invariants across the batched leaf solve.
//
// The machine-local leaf solve routes through one
// SeaweedEngine::multiply_batch_into call per machine; that is a purely
// local change, so rounds, levels and every other report counter — and of
// course the product itself — must be bit-identical to the pre-batch
// per-leaf path. The goldens below were captured from the pre-batch
// implementation (commit 5796e22) at n=512, m=16, seed 2024 for the three
// profile shapes (paper-style H-way/flat, warmup, CHS23-style).
// ---------------------------------------------------------------------------
TEST(MpcMultiply, ReportInvariantsPinnedAcrossLeafBatching) {
  struct Golden {
    std::int64_t h, fanout;
    std::int64_t rounds, levels, lines, crossed, queries, interesting;
  };
  const Golden goldens[] = {
      {8, 8, 778, 2, 82, 74, 129956, 928},
      {2, 8, 1500, 4, 158, 113, 9732, 1195},
      {2, 2, 3033, 4, 158, 113, 6370, 1195},
  };
  const std::int64_t n = 512;
  for (const Golden& g : goldens) {
    mpc::Cluster cluster(cfg_of(16, 1 << 22, /*strict=*/false));
    Rng rng(2024);
    const Perm a = Perm::random(n, rng);
    const Perm b = Perm::random(n, rng);
    MpcMultiplyOptions opt;
    opt.split_h = g.h;
    opt.tree_fanout = g.fanout;
    MpcMultiplyReport rep;
    const Perm got = mpc_unit_monge_multiply(cluster, a, b, opt, &rep);
    ASSERT_EQ(got, seaweed_multiply(a, b)) << "h=" << g.h << " f=" << g.fanout;
    EXPECT_EQ(rep.rounds, g.rounds) << "h=" << g.h << " f=" << g.fanout;
    EXPECT_EQ(rep.levels, g.levels) << "h=" << g.h << " f=" << g.fanout;
    EXPECT_EQ(rep.box_g, 32) << "h=" << g.h << " f=" << g.fanout;
    EXPECT_EQ(rep.lines, g.lines) << "h=" << g.h << " f=" << g.fanout;
    EXPECT_EQ(rep.crossed_boxes, g.crossed) << "h=" << g.h << " f=" << g.fanout;
    EXPECT_EQ(rep.rank_queries, g.queries) << "h=" << g.h << " f=" << g.fanout;
    EXPECT_EQ(rep.interesting_points, g.interesting)
        << "h=" << g.h << " f=" << g.fanout;
  }
}

// The three option-preset factories must keep resolving to the same
// schedules (at reproduction sizes they all collapse to two-way splits —
// the paper's H = n^{(1−δ)/10} only exceeds 2 at astronomical n) and their
// multiplies must stay correct with the batched leaf solve; rounds/levels
// are pinned to the pre-batch golden.
TEST(MpcMultiply, PresetProfilesUnchangedByLeafBatching) {
  const std::int64_t n = 512;
  int which = 0;
  for (const auto& make :
       {paper_profile, warmup_profile, chs23_profile}) {
    mpc::Cluster cluster(cfg_of(16, 1 << 22, /*strict=*/false));
    const MpcMultiplyOptions opt = make(n, cluster);
    Rng rng(2024);
    const Perm a = Perm::random(n, rng);
    const Perm b = Perm::random(n, rng);
    MpcMultiplyReport rep;
    const Perm got = mpc_unit_monge_multiply(cluster, a, b, opt, &rep);
    ASSERT_EQ(got, seaweed_multiply(a, b)) << "preset " << which;
    EXPECT_EQ(rep.split_h, 2) << "preset " << which;
    EXPECT_EQ(rep.tree_fanout, 2) << "preset " << which;
    EXPECT_EQ(rep.rounds, 3033) << "preset " << which;
    EXPECT_EQ(rep.levels, 4) << "preset " << which;
    ++which;
  }
}

TEST(MpcMultiply, IdentityAndReverse) {
  mpc::Cluster cluster(cfg_of(4));
  Rng rng(9);
  const Perm p = Perm::random(64, rng);
  MpcMultiplyOptions opt;
  opt.split_h = 2;
  opt.box_g = 16;
  EXPECT_EQ(mpc_unit_monge_multiply(cluster, Perm::identity(64), p, opt), p);
  EXPECT_EQ(mpc_unit_monge_multiply(cluster, p, Perm::identity(64), opt), p);
  EXPECT_EQ(mpc_unit_monge_multiply(cluster, Perm::reverse(64),
                                    Perm::reverse(64), opt),
            Perm::reverse(64));
}

struct SubCase {
  std::int64_t ra, n2, cb, ka, kb;
  std::uint64_t seed;
};

class MpcSubSweep : public ::testing::TestWithParam<SubCase> {};

TEST_P(MpcSubSweep, MatchesSequentialSubunit) {
  const auto& p = GetParam();
  mpc::Cluster cluster(cfg_of(6, 1 << 22, false));
  Rng rng(p.seed);
  for (int trial = 0; trial < 3; ++trial) {
    const Perm a = Perm::random_sub(p.ra, p.n2, p.ka, rng);
    const Perm b = Perm::random_sub(p.n2, p.cb, p.kb, rng);
    MpcMultiplyOptions opt;
    opt.split_h = 2;
    opt.box_g = 8;
    ASSERT_EQ(mpc_subunit_multiply(cluster, a, b, opt),
              subunit_multiply(a, b));
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, MpcSubSweep,
    ::testing::Values(SubCase{10, 12, 9, 6, 7, 1}, SubCase{20, 16, 24, 10, 12, 2},
                      SubCase{32, 32, 32, 32, 32, 3},  // full perms
                      SubCase{16, 40, 12, 0, 5, 4},    // empty A
                      SubCase{33, 17, 21, 11, 13, 5}),
    [](const auto& tpi) {
      // Appends, not an operator+ chain: the chain trips a gcc-12
      // -Wrestrict false positive (PR105651) once inlined at -O3.
      std::string name;
      name += "r";
      name += std::to_string(tpi.param.ra);
      name += "m";
      name += std::to_string(tpi.param.n2);
      name += "c";
      name += std::to_string(tpi.param.cb);
      name += "s";
      name += std::to_string(tpi.param.seed);
      return name;
    });

TEST(MpcSubunit, BatchMixedShapes) {
  mpc::Cluster cluster(cfg_of(5, 1 << 22, false));
  Rng rng(13);
  std::vector<std::pair<Perm, Perm>> pairs;
  pairs.emplace_back(Perm::random_sub(8, 10, 5, rng),
                     Perm::random_sub(10, 7, 4, rng));
  pairs.emplace_back(Perm::random(16, rng), Perm::random(16, rng));
  pairs.emplace_back(Perm(4, 6), Perm::random_sub(6, 9, 3, rng));  // empty
  const auto got = mpc_subunit_multiply_batch(cluster, pairs);
  ASSERT_EQ(got.size(), 3u);
  for (std::size_t t = 0; t < 3; ++t) {
    ASSERT_EQ(got[t], subunit_multiply(pairs[t].first, pairs[t].second));
  }
}

TEST(MpcMultiply, StrictSpaceComplianceAtPaperSchedule) {
  // The headline claim: the whole multiplication respects s = Õ(n^{1−δ})
  // per machine, with strict checking on.
  const std::int64_t n = 1 << 10;
  mpc::Cluster cluster(mpc::MpcConfig::fully_scalable(n, 0.5));
  Rng rng(3);
  const Perm a = Perm::random(n, rng);
  const Perm b = Perm::random(n, rng);
  EXPECT_NO_THROW({
    const Perm got = mpc_unit_monge_multiply(cluster, a, b,
                                             paper_profile(n, cluster));
    EXPECT_EQ(got, seaweed_multiply(a, b));
  });
}

}  // namespace
}  // namespace monge::core
