#include "monge/engine.h"

#include <gtest/gtest.h>

#include "lis/kernel.h"
#include "monge/distribution.h"
#include "monge/seaweed.h"
#include "monge/subperm.h"
#include "testing.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace monge {
namespace {

using testing::all_permutations;

std::vector<std::int32_t> random_raw_perm(std::int64_t n, Rng& rng) {
  return rng.permutation(n);
}

TEST(SeaweedEngine, ExhaustiveSmallPermutations) {
  for (const std::int64_t cutoff : {1, 2, 3, 8}) {
    SeaweedEngine engine({.base_case_cutoff = cutoff});
    for (int n = 1; n <= 5; ++n) {
      const auto perms = all_permutations(n);
      for (const auto& pa : perms) {
        for (const auto& pb : perms) {
          const Perm a = Perm::from_rows(pa, n);
          const Perm b = Perm::from_rows(pb, n);
          ASSERT_EQ(engine.multiply(a, b), multiply_naive(a, b))
              << "n=" << n << " cutoff=" << cutoff;
        }
      }
    }
  }
}

// Randomized equivalence fuzz across sizes straddling the base-case cutoff:
// the engine must agree with the naive oracle and be bit-identical to the
// legacy recursion for every cutoff choice.
TEST(SeaweedEngine, EquivalenceFuzzAcrossCutoffs) {
  Rng rng(20240518);
  for (const std::int64_t cutoff : {1, 4, 16, 32, 64}) {
    SeaweedEngine engine({.base_case_cutoff = cutoff});
    for (const std::int64_t n :
         {2, 3, 15, 16, 17, 31, 32, 33, 63, 64, 65, 100, 127, 128, 129}) {
      for (int rep = 0; rep < 3; ++rep) {
        const auto a = random_raw_perm(n, rng);
        const auto b = random_raw_perm(n, rng);
        const auto got = engine.multiply_raw(a, b);
        const auto ref = seaweed_multiply_reference_raw(a, b);
        ASSERT_EQ(got, ref) << "n=" << n << " cutoff=" << cutoff;
        const Perm pa = Perm::from_rows(a, n);
        const Perm pb = Perm::from_rows(b, n);
        ASSERT_EQ(Perm::from_rows(got, n), multiply_naive(pa, pb))
            << "n=" << n << " cutoff=" << cutoff;
      }
    }
  }
}

TEST(SeaweedEngine, BitIdenticalToReferenceLargerSizes) {
  Rng rng(7);
  SeaweedEngine engine;
  for (const std::int64_t n : {255, 256, 257, 777, 1024, 2048}) {
    const auto a = random_raw_perm(n, rng);
    const auto b = random_raw_perm(n, rng);
    ASSERT_EQ(engine.multiply_raw(a, b), seaweed_multiply_reference_raw(a, b))
        << "n=" << n;
  }
}

TEST(SeaweedEngine, EmptyAndTiny) {
  SeaweedEngine engine;
  EXPECT_TRUE(engine.multiply_raw({}, {}).empty());
  EXPECT_EQ(engine.multiply_raw(std::vector<std::int32_t>{0},
                                std::vector<std::int32_t>{0}),
            (std::vector<std::int32_t>{0}));
}

// Knobs are validated at construction — out-of-range values throw instead
// of being silently rewritten, so options() always reports exactly what
// the caller requested.
TEST(SeaweedEngine, RejectsOutOfRangeOptions) {
  EXPECT_THROW(SeaweedEngine({.base_case_cutoff = 0}), std::logic_error);
  EXPECT_THROW(SeaweedEngine({.base_case_cutoff = -5}), std::logic_error);
  EXPECT_THROW(SeaweedEngine({.base_case_cutoff = 257}), std::logic_error);
  EXPECT_THROW(SeaweedEngine({.base_case_cutoff = 1 << 20}), std::logic_error);
  EXPECT_THROW(SeaweedEngine({.parallel_grain = 1}), std::logic_error);
  EXPECT_THROW(SeaweedEngine({.parallel_grain = 0}), std::logic_error);
  EXPECT_THROW(SeaweedEngine({.parallel_grain = -1}), std::logic_error);
  // Boundary values construct, and options() echoes them verbatim.
  const SeaweedEngine lo({.base_case_cutoff = 1, .parallel_grain = 2});
  EXPECT_EQ(lo.options().base_case_cutoff, 1);
  EXPECT_EQ(lo.options().parallel_grain, 2);
  const SeaweedEngine hi({.base_case_cutoff = 256});
  EXPECT_EQ(hi.options().base_case_cutoff, 256);
}

// Inputs beyond kSeaweedEngineMaxN = 2^30 would overflow the packed
// (coord << 1) | color int32 representation; every public entry point must
// reject them with a clear error up front. Sizes are validated before any
// element is touched, so spans with an oversize extent over a dummy
// element never get dereferenced. (Materializing 4 GiB views instead is
// not an option here; the fabricated extent technically violates the
// span-constructor range precondition, which no shipping standard library
// can or does check — if one ever grows full bounds metadata, swap these
// for allocation-backed views.)
TEST(SeaweedEngine, RejectsOversizeInputs) {
  SeaweedEngine engine;
  const auto huge =
      static_cast<std::size_t>(kSeaweedEngineMaxN) + 1;
  std::int32_t dummy = 0;
  const std::span<const std::int32_t> big(&dummy, huge);
  std::span<std::int32_t> big_out(&dummy, huge);
  EXPECT_THROW(engine.multiply_into(big, big, big_out), std::logic_error);
  const std::vector<PermPairView> pairs{{big, big}};
  const std::vector<std::span<std::int32_t>> outs{big_out};
  EXPECT_THROW(engine.multiply_batch_into(pairs, outs), std::logic_error);
  // Subunit paths: every dimension is guarded, including b_cols.
  const std::vector<std::int32_t> a{0, 1};
  const std::vector<std::int32_t> b{0, 1};
  std::vector<std::int32_t> out(2);
  EXPECT_THROW(
      engine.subunit_multiply_into(a, b, kSeaweedEngineMaxN + 1, out),
      std::logic_error);
  EXPECT_THROW(engine.subunit_multiply_into(big, b, 2, big_out),
               std::logic_error);
  const std::vector<SubunitPairView> spairs{{a, big, 2}};
  const std::vector<std::span<std::int32_t>> souts{out};
  EXPECT_THROW(engine.subunit_multiply_batch_into(spairs, souts),
               std::logic_error);
  // The engine stays usable after a rejected call.
  EXPECT_EQ(engine.subunit_multiply_raw(a, b, 2), a);
}

// The arena is sized once: repeating a multiply of the same (or smaller)
// size must not grow the buffer.
TEST(SeaweedEngine, ArenaIsReusedAcrossCalls) {
  Rng rng(11);
  SeaweedEngine engine;
  const auto a = random_raw_perm(1024, rng);
  const auto b = random_raw_perm(1024, rng);
  const auto first = engine.multiply_raw(a, b);
  const std::size_t cap = engine.arena_capacity();
  EXPECT_GE(cap, engine.arena_bytes_for(1024));
  for (const std::int64_t n : {1024, 512, 100}) {
    const auto pa = random_raw_perm(n, rng);
    const auto pb = random_raw_perm(n, rng);
    ASSERT_EQ(engine.multiply_raw(pa, pb),
              seaweed_multiply_reference_raw(pa, pb));
  }
  EXPECT_EQ(engine.arena_capacity(), cap);
  EXPECT_EQ(engine.multiply_raw(a, b), first);
}

TEST(SeaweedEngine, MultiplyIntoWritesCallerBuffer) {
  Rng rng(13);
  SeaweedEngine engine;
  const auto a = random_raw_perm(300, rng);
  const auto b = random_raw_perm(300, rng);
  std::vector<std::int32_t> out(300, kNone);
  engine.multiply_into(a, b, out);
  EXPECT_EQ(out, seaweed_multiply_reference_raw(a, b));
}

// Determinism: the forked execution must produce the exact same bits for
// every thread count and grain size (subproblems write disjoint arena
// slices, so scheduling cannot leak into results).
TEST(SeaweedEngine, DeterministicUnderThreadCounts) {
  Rng rng(42);
  const std::int64_t n = 4096;
  const auto a = random_raw_perm(n, rng);
  const auto b = random_raw_perm(n, rng);
  const auto ref = seaweed_multiply_reference_raw(a, b);
  for (const unsigned threads : {1u, 2u, 3u, 4u}) {
    ThreadPool pool(threads);
    for (const std::int64_t grain : {64, 256, 1024}) {
      SeaweedEngine engine(
          {.parallel_grain = grain, .pool = &pool});
      ASSERT_EQ(engine.multiply_raw(a, b), ref)
          << "threads=" << threads << " grain=" << grain;
      // Repeat on the warm arena: still identical.
      ASSERT_EQ(engine.multiply_raw(a, b), ref)
          << "threads=" << threads << " grain=" << grain;
    }
  }
}

// Nested invoke_two from pool workers must not deadlock even when the
// fork tree is much deeper than the worker count.
TEST(ThreadPool, InvokeTwoNestedFork) {
  ThreadPool pool(2);
  std::function<std::int64_t(std::int64_t, std::int64_t)> sum =
      [&](std::int64_t lo, std::int64_t hi) -> std::int64_t {
    if (hi - lo <= 1) return lo;
    const std::int64_t mid = lo + (hi - lo) / 2;
    std::int64_t left = 0, right = 0;
    pool.invoke_two([&] { left = sum(lo, mid); },
                    [&] { right = sum(mid, hi); });
    return left + right;
  };
  EXPECT_EQ(sum(0, 1024), 1024 * 1023 / 2);
}

TEST(ThreadPool, InvokeTwoPropagatesExceptions) {
  ThreadPool pool(2);
  EXPECT_THROW(
      pool.invoke_two([] { throw std::runtime_error("a"); }, [] {}),
      std::runtime_error);
  EXPECT_THROW(
      pool.invoke_two([] {}, [] { throw std::runtime_error("b"); }),
      std::runtime_error);
}

// ---------------------------------------------------------------------------
// multiply_raw_batch: differential fuzz against per-pair multiply_raw.
// ---------------------------------------------------------------------------

// Random batches (including the empty batch) of random mixed sizes
// (including 0 and 1): the batched solve must be bit-identical to solving
// every pair with an independent engine. Covers well over 1000 pairs.
TEST(SeaweedEngineBatch, MatchesPerPairMultiplyFuzz) {
  Rng rng(20260729);
  SeaweedEngine batch_engine;
  SeaweedEngine single_engine;
  std::int64_t cases = 0;
  for (int round = 0; round < 140; ++round) {
    const std::uint64_t batch_size = rng.next_below(17);  // 0..16
    std::vector<std::vector<std::int32_t>> as, bs;
    std::vector<PermPairView> views;
    for (std::uint64_t t = 0; t < batch_size; ++t) {
      // Mixed sizes, biased toward small but straddling the cutoff, with
      // explicit 0/1 degenerate entries sprinkled in.
      const std::uint64_t kind = rng.next_below(8);
      const std::int64_t n = kind == 0   ? 0
                             : kind == 1 ? 1
                                         : rng.next_in(2, 160);
      as.push_back(rng.permutation(n));
      bs.push_back(rng.permutation(n));
    }
    views.reserve(as.size());
    for (std::size_t t = 0; t < as.size(); ++t) {
      views.push_back({as[t], bs[t]});
    }
    const auto got = batch_engine.multiply_raw_batch(views);
    ASSERT_EQ(got.size(), as.size());
    for (std::size_t t = 0; t < as.size(); ++t) {
      ASSERT_EQ(got[t], single_engine.multiply_raw(as[t], bs[t]))
          << "round=" << round << " pair=" << t << " n=" << as[t].size();
      ++cases;
    }
  }
  EXPECT_GE(cases, 1000);
}

// Striping across a ThreadPool must not change a single bit, for every
// thread count and batch shape; repeated on the warm arena.
TEST(SeaweedEngineBatch, StripedAcrossPoolMatchesSequential) {
  Rng rng(4242);
  std::vector<std::vector<std::int32_t>> as, bs;
  std::vector<PermPairView> views;
  for (const std::int64_t n : {0, 1, 7, 64, 65, 128, 300, 33, 2, 511}) {
    as.push_back(rng.permutation(n));
    bs.push_back(rng.permutation(n));
  }
  for (std::size_t t = 0; t < as.size(); ++t) views.push_back({as[t], bs[t]});
  SeaweedEngine sequential;
  const auto expect = sequential.multiply_raw_batch(views);
  for (const unsigned threads : {2u, 3u, 4u}) {
    ThreadPool pool(threads);
    // A tiny grain also forces forking inside the larger pairs, nesting
    // invoke_two under the batch fork-join.
    SeaweedEngine striped({.parallel_grain = 64, .pool = &pool});
    ASSERT_EQ(striped.multiply_raw_batch(views), expect)
        << "threads=" << threads;
    ASSERT_EQ(striped.multiply_raw_batch(views), expect)
        << "threads=" << threads << " (warm arena)";
  }
}

TEST(SeaweedEngineBatch, EmptyBatchAndDegeneratePairs) {
  SeaweedEngine engine;
  EXPECT_TRUE(engine.multiply_raw_batch({}).empty());
  const std::vector<std::int32_t> empty;
  const std::vector<std::int32_t> one{0};
  std::vector<PermPairView> views{{empty, empty}, {one, one}, {empty, empty}};
  const auto got = engine.multiply_raw_batch(views);
  ASSERT_EQ(got.size(), 3u);
  EXPECT_TRUE(got[0].empty());
  EXPECT_EQ(got[1], (std::vector<std::int32_t>{0}));
  EXPECT_TRUE(got[2].empty());
}

// The arena is sized once for the whole batch: re-running the same batch
// (or any batch of no-larger pairs) must not grow the buffer, and the
// sequential batch needs no more scratch than its largest pair.
TEST(SeaweedEngineBatch, ArenaSizedOnceForWholeBatch) {
  Rng rng(31337);
  SeaweedEngine engine;
  std::vector<std::vector<std::int32_t>> as, bs;
  std::vector<PermPairView> views;
  for (const std::int64_t n : {100, 700, 50, 512}) {
    as.push_back(rng.permutation(n));
    bs.push_back(rng.permutation(n));
  }
  for (std::size_t t = 0; t < as.size(); ++t) views.push_back({as[t], bs[t]});
  const auto first = engine.multiply_raw_batch(views);
  const std::size_t cap = engine.arena_capacity();
  EXPECT_GE(cap, engine.arena_bytes_for(700));
  EXPECT_EQ(engine.multiply_raw_batch(views), first);
  EXPECT_EQ(engine.arena_capacity(), cap);
}

// ---------------------------------------------------------------------------
// subunit_multiply_batch_into: differential fuzz against per-call
// subunit_multiply_into over randomized shapes, including empty, size-1 and
// heavily skewed ones.
// ---------------------------------------------------------------------------

struct SubunitBatchInputs {
  std::vector<std::vector<std::int32_t>> as, bs;
  std::vector<std::int64_t> b_cols;
  std::vector<SubunitPairView> views;
};

// One random (ra×n2) ⊡ (n2×cb) shape; `kind` steers degenerate and skewed
// cases so the fuzz hits empty inputs, single elements, thin/fat inner
// dimensions and all-empty-row sub-permutations.
void push_random_subunit_pair(SubunitBatchInputs& in, Rng& rng) {
  std::int64_t ra, n2, cb;
  switch (rng.next_below(8)) {
    case 0:  // an empty side
      ra = 0, n2 = rng.next_in(0, 8), cb = rng.next_in(0, 8);
      break;
    case 1:
      ra = rng.next_in(0, 8), n2 = 0, cb = rng.next_in(0, 8);
      break;
    case 2:
      ra = rng.next_in(0, 8), n2 = rng.next_in(0, 8), cb = 0;
      break;
    case 3:  // single element
      ra = n2 = cb = 1;
      break;
    case 4:  // skewed: thin inner dimension
      ra = rng.next_in(1, 120), n2 = rng.next_in(1, 8),
      cb = rng.next_in(1, 120);
      break;
    case 5:  // skewed: fat inner dimension
      ra = rng.next_in(1, 8), n2 = rng.next_in(1, 120), cb = rng.next_in(1, 8);
      break;
    default:  // generic mixed sizes straddling the base-case cutoff
      ra = rng.next_in(1, 100), n2 = rng.next_in(1, 100),
      cb = rng.next_in(1, 100);
      break;
  }
  const std::int64_t ka = std::min(ra, n2) > 0
                              ? rng.next_in(0, std::min(ra, n2))
                              : 0;  // 0 = all rows empty
  const std::int64_t kb =
      std::min(n2, cb) > 0 ? rng.next_in(0, std::min(n2, cb)) : 0;
  in.as.push_back(Perm::random_sub(ra, n2, ka, rng).row_to_col());
  in.bs.push_back(Perm::random_sub(n2, cb, kb, rng).row_to_col());
  in.b_cols.push_back(cb);
}

void finalize_views(SubunitBatchInputs& in) {
  in.views.clear();
  for (std::size_t t = 0; t < in.as.size(); ++t) {
    in.views.push_back({in.as[t], in.bs[t], in.b_cols[t]});
  }
}

// Random batches (including the empty batch) of random shapes: the batched
// subunit solve must be bit-identical to solving every pair with an
// independent engine. Covers well over 1000 shapes.
TEST(SeaweedEngineSubunitBatch, MatchesPerCallFuzz) {
  Rng rng(20260729);
  SeaweedEngine batch_engine;
  SeaweedEngine single_engine;
  std::int64_t cases = 0;
  for (int round = 0; round < 150; ++round) {
    SubunitBatchInputs in;
    const std::uint64_t batch_size = rng.next_below(17);  // 0..16
    for (std::uint64_t t = 0; t < batch_size; ++t) {
      push_random_subunit_pair(in, rng);
    }
    finalize_views(in);
    const auto got = batch_engine.subunit_multiply_raw_batch(in.views);
    ASSERT_EQ(got.size(), in.as.size());
    for (std::size_t t = 0; t < in.as.size(); ++t) {
      ASSERT_EQ(got[t], single_engine.subunit_multiply_raw(in.as[t], in.bs[t],
                                                           in.b_cols[t]))
          << "round=" << round << " pair=" << t << " ra=" << in.as[t].size()
          << " n2=" << in.bs[t].size() << " cb=" << in.b_cols[t];
      ++cases;
    }
  }
  EXPECT_GE(cases, 1000);
}

// Striping a subunit batch across a ThreadPool must not change a single
// bit, for every thread count; repeated on the warm arena.
TEST(SeaweedEngineSubunitBatch, StripedAcrossPoolMatchesSequential) {
  Rng rng(777);
  SubunitBatchInputs in;
  for (int t = 0; t < 24; ++t) push_random_subunit_pair(in, rng);
  finalize_views(in);
  SeaweedEngine sequential;
  const auto expect = sequential.subunit_multiply_raw_batch(in.views);
  for (const unsigned threads : {2u, 3u, 4u}) {
    ThreadPool pool(threads);
    // A tiny grain also forces forking inside the larger core solves,
    // nesting invoke_two under the batch fork-join.
    SeaweedEngine striped({.parallel_grain = 32, .pool = &pool});
    ASSERT_EQ(striped.subunit_multiply_raw_batch(in.views), expect)
        << "threads=" << threads;
    ASSERT_EQ(striped.subunit_multiply_raw_batch(in.views), expect)
        << "threads=" << threads << " (warm arena)";
  }
}

TEST(SeaweedEngineSubunitBatch, EmptyBatchAndDegeneratePairs) {
  SeaweedEngine engine;
  EXPECT_TRUE(engine.subunit_multiply_raw_batch({}).empty());
  const std::vector<std::int32_t> empty;
  const std::vector<std::int32_t> none_row{kNone, kNone};
  const std::vector<std::int32_t> ident{0, 1};
  std::vector<SubunitPairView> views{
      {empty, empty, 0},      // 0×0 ⊡ 0×0
      {none_row, ident, 2},   // all rows of A empty
      {ident, none_row, 2},   // all rows of B empty
      {ident, ident, 2},      // tiny identity product
  };
  const auto got = engine.subunit_multiply_raw_batch(views);
  ASSERT_EQ(got.size(), 4u);
  EXPECT_TRUE(got[0].empty());
  EXPECT_EQ(got[1], none_row);
  EXPECT_EQ(got[2], none_row);
  EXPECT_EQ(got[3], ident);
}

// The arena is sized once for the whole batch: re-running the same batch
// must not grow the buffer.
TEST(SeaweedEngineSubunitBatch, ArenaSizedOnceForWholeBatch) {
  Rng rng(31338);
  SeaweedEngine engine;
  SubunitBatchInputs in;
  for (int t = 0; t < 12; ++t) push_random_subunit_pair(in, rng);
  finalize_views(in);
  const auto first = engine.subunit_multiply_raw_batch(in.views);
  const std::size_t cap = engine.arena_capacity();
  EXPECT_EQ(engine.subunit_multiply_raw_batch(in.views), first);
  EXPECT_EQ(engine.arena_capacity(), cap);
}

TEST(SeaweedEngine, SubunitMultiplyOverload) {
  Rng rng(99);
  SeaweedEngine engine;
  for (int rep = 0; rep < 10; ++rep) {
    const Perm a = Perm::random_sub(40, 30, 18, rng);
    const Perm b = Perm::random_sub(30, 50, 21, rng);
    ASSERT_EQ(subunit_multiply(a, b, engine), multiply_naive(a, b));
  }
}

TEST(SeaweedEngine, LisKernelOverload) {
  Rng rng(123);
  SeaweedEngine engine;
  const auto p = rng.permutation(200);
  EXPECT_EQ(lis::lis_kernel(p, engine), lis::lis_kernel(p));
}

}  // namespace
}  // namespace monge
