#include "monge/seaweed.h"

#include <gtest/gtest.h>

#include "monge/distribution.h"
#include "testing.h"
#include "util/rng.h"

namespace monge {
namespace {

using testing::all_permutations;

TEST(Seaweed, ExhaustiveSmallPermutations) {
  for (int n = 1; n <= 5; ++n) {
    const auto perms = all_permutations(n);
    for (const auto& pa : perms) {
      for (const auto& pb : perms) {
        const Perm a = Perm::from_rows(pa, n);
        const Perm b = Perm::from_rows(pb, n);
        ASSERT_EQ(seaweed_multiply(a, b), multiply_naive(a, b)) << "n=" << n;
      }
    }
  }
}

class SeaweedRandom : public ::testing::TestWithParam<std::int64_t> {};

TEST_P(SeaweedRandom, MatchesNaiveOracle) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 104729);
  for (int trial = 0; trial < 6; ++trial) {
    const Perm a = Perm::random(GetParam(), rng);
    const Perm b = Perm::random(GetParam(), rng);
    ASSERT_EQ(seaweed_multiply(a, b), multiply_naive(a, b));
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, SeaweedRandom,
                         ::testing::Values<std::int64_t>(1, 2, 3, 5, 8, 13, 21,
                                                         34, 55, 89, 100, 128));

TEST(Seaweed, IdentityIsNeutral) {
  Rng rng(5);
  const Perm p = Perm::random(200, rng);
  EXPECT_EQ(seaweed_multiply(Perm::identity(200), p), p);
  EXPECT_EQ(seaweed_multiply(p, Perm::identity(200)), p);
}

TEST(Seaweed, ReverseIsIdempotent) {
  for (std::int64_t n : {1, 2, 7, 64, 129}) {
    EXPECT_EQ(seaweed_multiply(Perm::reverse(n), Perm::reverse(n)),
              Perm::reverse(n));
  }
}

TEST(Seaweed, AssociativityOnRandomInputs) {
  Rng rng(71);
  for (int trial = 0; trial < 10; ++trial) {
    const std::int64_t n = 64;
    const Perm a = Perm::random(n, rng);
    const Perm b = Perm::random(n, rng);
    const Perm c = Perm::random(n, rng);
    ASSERT_EQ(seaweed_multiply(seaweed_multiply(a, b), c),
              seaweed_multiply(a, seaweed_multiply(b, c)));
  }
}

TEST(Seaweed, ProductIsAlwaysFullPermutation) {
  // Lemma 2.1 closure under ⊡, checked at a size where the recursion is
  // several levels deep and sizes are odd at many levels.
  Rng rng(13);
  for (int trial = 0; trial < 5; ++trial) {
    const std::int64_t n = 997;  // prime: every split is uneven
    const Perm a = Perm::random(n, rng);
    const Perm b = Perm::random(n, rng);
    EXPECT_TRUE(seaweed_multiply(a, b).is_full_permutation());
  }
}

TEST(Seaweed, LargeAgreementSpotCheck) {
  // At n = 2048 the naive oracle is too slow; verify against the
  // distribution-matrix definition at sampled entries instead.
  Rng rng(3);
  const std::int64_t n = 2048;
  const Perm a = Perm::random(n, rng);
  const Perm b = Perm::random(n, rng);
  const Perm c = seaweed_multiply(a, b);
  for (int trial = 0; trial < 50; ++trial) {
    const std::int64_t i = rng.next_in(0, n);
    const std::int64_t k = rng.next_in(0, n);
    // PΣ_C(i,k) = min_j (PΣ_A(i,j) + PΣ_B(j,k)); evaluate the min by a
    // linear scan using O(n) per-row/col prefix counting.
    std::vector<std::int64_t> pa_row(static_cast<std::size_t>(n) + 1);
    std::vector<std::int64_t> pb_col(static_cast<std::size_t>(n) + 1);
    // PΣ_A(i, j) over j: count of points with row >= i, col < j.
    {
      std::vector<std::int64_t> cnt(static_cast<std::size_t>(n) + 1, 0);
      for (std::int64_t r = i; r < n; ++r) {
        cnt[static_cast<std::size_t>(a.col_of(r)) + 1] += 1;
      }
      for (std::int64_t j = 0; j < n; ++j) {
        cnt[static_cast<std::size_t>(j) + 1] += cnt[static_cast<std::size_t>(j)];
      }
      pa_row = cnt;
    }
    // PΣ_B(j, k) over j: count of points with row >= j, col < k.
    {
      std::int64_t acc = 0;
      for (std::int64_t j = n; j >= 0; --j) {
        if (j < n && b.col_of(j) < k) ++acc;
        pb_col[static_cast<std::size_t>(j)] = acc;
      }
    }
    std::int64_t expect = std::numeric_limits<std::int64_t>::max();
    for (std::int64_t j = 0; j <= n; ++j) {
      expect = std::min(expect, pa_row[static_cast<std::size_t>(j)] +
                                    pb_col[static_cast<std::size_t>(j)]);
    }
    ASSERT_EQ(dist_at(c, i, k), expect) << "i=" << i << " k=" << k;
  }
}

TEST(Seaweed, RejectsSubPermutations) {
  Perm p(3, 3);
  p.set(0, 0);
  EXPECT_THROW(seaweed_multiply(p, Perm::identity(3)), std::logic_error);
}

TEST(Seaweed, EmptyInput) {
  EXPECT_EQ(seaweed_multiply_raw({}, {}).size(), 0u);
}

}  // namespace
}  // namespace monge
