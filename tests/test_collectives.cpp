#include "mpc/collectives.h"

#include <gtest/gtest.h>

#include <numeric>
#include <string>

#include "mpc/cluster.h"
#include "mpc/dist_vector.h"
#include "util/rng.h"

namespace monge::mpc {
namespace {

MpcConfig cfg_of(std::int64_t machines, std::int64_t space = 1 << 22,
                 bool strict = true) {
  MpcConfig cfg;
  cfg.num_machines = machines;
  cfg.space_words = space;
  cfg.strict = strict;
  cfg.threads = 2;
  return cfg;
}

// --- exclusive_prefix -------------------------------------------------------

class PrefixSweep
    : public ::testing::TestWithParam<std::pair<std::int64_t, std::int64_t>> {};

TEST_P(PrefixSweep, MatchesSequentialScan) {
  const auto [m, space] = GetParam();
  Cluster c(cfg_of(m, space, /*strict=*/false));
  Rng rng(static_cast<std::uint64_t>(m * 31 + space));
  PerMachine<std::int64_t> vals(static_cast<std::size_t>(m));
  for (auto& v : vals) v = rng.next_in(-50, 50);

  const PrefixResult pr = exclusive_prefix(c, vals);
  std::int64_t acc = 0;
  for (std::int64_t i = 0; i < m; ++i) {
    EXPECT_EQ(pr.prefix[static_cast<std::size_t>(i)], acc) << "i=" << i;
    acc += vals[static_cast<std::size_t>(i)];
  }
  EXPECT_EQ(pr.total, acc);
}

using MP = std::pair<std::int64_t, std::int64_t>;
INSTANTIATE_TEST_SUITE_P(
    Sweep, PrefixSweep,
    ::testing::Values(MP{1, 1 << 20}, MP{2, 1 << 20}, MP{3, 1 << 20},
                      MP{16, 1 << 20}, MP{33, 1 << 20}, MP{64, 1 << 20},
                      // Tiny space forces fanout 2 => deep trees.
                      MP{17, 64}, MP{64, 64}, MP{100, 64}));

TEST(Prefix, RoundsGrowOnlyWithTreeDepth) {
  // With a large space budget the fanout covers all machines: constant
  // rounds regardless of m.
  Cluster c64(cfg_of(64));
  Cluster c8(cfg_of(8));
  PerMachine<std::int64_t> v64(64, 1), v8(8, 1);
  exclusive_prefix(c64, v64);
  exclusive_prefix(c8, v8);
  EXPECT_EQ(c64.rounds(), c8.rounds());
}

// --- broadcast --------------------------------------------------------------

TEST(Broadcast, ReachesEveryMachine) {
  for (std::int64_t m : {1, 2, 5, 32}) {
    Cluster c(cfg_of(m));
    // Probe delivery by having every machine count broadcast traffic: after
    // the collective, total communicated words >= (m-1) * payload.
    const auto out = broadcast_from(c, 0, {42, 43});
    EXPECT_EQ(out, (std::vector<Word>{42, 43}));
    if (m > 1) {
      EXPECT_GE(c.stats().total_comm_words, (m - 1) * 2);
    }
  }
}

TEST(Broadcast, NonZeroRoot) {
  Cluster c(cfg_of(7));
  EXPECT_EQ(broadcast_from(c, 3, {9}), (std::vector<Word>{9}));
}

// --- route / scatter --------------------------------------------------------

TEST(RouteItems, DeliversGroupedByDestination) {
  Cluster c(cfg_of(4));
  PerMachine<std::vector<std::pair<std::int64_t, std::int64_t>>> out(4);
  // Every machine sends (i*10 + dest) to every dest.
  for (std::int64_t i = 0; i < 4; ++i) {
    for (std::int64_t d = 0; d < 4; ++d) {
      out[static_cast<std::size_t>(i)].push_back({d, i * 10 + d});
    }
  }
  const auto got = route_items<std::int64_t>(c, out);
  for (std::int64_t d = 0; d < 4; ++d) {
    std::vector<std::int64_t> expect;
    for (std::int64_t i = 0; i < 4; ++i) expect.push_back(i * 10 + d);
    EXPECT_EQ(got[static_cast<std::size_t>(d)], expect);  // sender order
  }
}

TEST(ScatterToLayout, PlacesEveryIndex) {
  Cluster c(cfg_of(5));
  const std::int64_t n = 37;
  PerMachine<std::vector<std::pair<std::int64_t, std::int64_t>>> items(5);
  // Machine i contributes indices congruent to i mod 5, value = idx^2.
  for (std::int64_t idx = 0; idx < n; ++idx) {
    items[static_cast<std::size_t>(idx % 5)].push_back({idx, idx * idx});
  }
  auto dv = scatter_to_layout<std::int64_t>(c, n, items);
  const auto host = dv.to_host();
  for (std::int64_t idx = 0; idx < n; ++idx) {
    EXPECT_EQ(host[static_cast<std::size_t>(idx)], idx * idx);
  }
}

TEST(ScatterToLayout, RejectsMissingIndex) {
  Cluster c(cfg_of(2));
  PerMachine<std::vector<std::pair<std::int64_t, std::int64_t>>> items(2);
  items[0].push_back({0, 5});  // index 1 missing
  EXPECT_THROW(scatter_to_layout<std::int64_t>(c, 2, items), std::logic_error);
}

// --- sort -------------------------------------------------------------------

struct SortCase {
  std::int64_t m;
  std::int64_t n;
  std::int64_t space;
  std::uint64_t seed;
};

class SortSweep : public ::testing::TestWithParam<SortCase> {};

TEST_P(SortSweep, SortsAndRebalances) {
  const auto& p = GetParam();
  Cluster c(cfg_of(p.m, p.space, /*strict=*/false));
  Rng rng(p.seed);
  std::vector<std::int64_t> data(static_cast<std::size_t>(p.n));
  for (auto& x : data) x = rng.next_in(-1000000, 1000000);

  auto dv = DistVector<std::int64_t>::from_host(c, data);
  sample_sort(c, dv, [](std::int64_t x) { return x; });

  std::sort(data.begin(), data.end());
  EXPECT_TRUE(dv.is_balanced());
  EXPECT_EQ(dv.to_host(), data);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, SortSweep,
    ::testing::Values(SortCase{1, 100, 1 << 22, 1}, SortCase{2, 1000, 1 << 22, 2},
                      SortCase{3, 1000, 1 << 22, 3},
                      SortCase{7, 5000, 1 << 22, 4},
                      SortCase{16, 10000, 1 << 22, 5},
                      SortCase{33, 9999, 1 << 22, 6},
                      // Small space => fanout 2 => many levels.
                      SortCase{16, 4000, 2048, 7},
                      SortCase{32, 6000, 2048, 8},
                      // Regression: >= 3 group levels with non-dividing
                      // group sizes (misaligned subgroup bases).
                      SortCase{128, 1024, 1920, 12},
                      SortCase{200, 4096, 1000, 13},
                      SortCase{64, 999, 500, 14},
                      // More machines than elements and tiny inputs.
                      SortCase{8, 5, 1 << 22, 9}, SortCase{4, 0, 1 << 22, 10},
                      SortCase{5, 4, 1 << 22, 11}),
    [](const auto& tpi) {
      // Appends, not an operator+ chain: the chain trips a gcc-12
      // -Wrestrict false positive (PR105651) once inlined at -O3.
      std::string name;
      name += "m";
      name += std::to_string(tpi.param.m);
      name += "_n";
      name += std::to_string(tpi.param.n);
      name += "_s";
      name += std::to_string(tpi.param.space);
      return name;
    });

TEST(Sort, HandlesDuplicateKeys) {
  Cluster c(cfg_of(8, 4096, false));
  Rng rng(17);
  std::vector<std::int64_t> data(5000);
  for (auto& x : data) x = rng.next_in(0, 7);  // heavy duplication
  auto dv = DistVector<std::int64_t>::from_host(c, data);
  sample_sort(c, dv, [](std::int64_t x) { return x; });
  std::sort(data.begin(), data.end());
  EXPECT_EQ(dv.to_host(), data);
}

TEST(Sort, AlreadySortedAndReversed) {
  for (bool reversed : {false, true}) {
    Cluster c(cfg_of(9, 1 << 22));
    std::vector<std::int64_t> data(4321);
    std::iota(data.begin(), data.end(), 0);
    if (reversed) std::reverse(data.begin(), data.end());
    auto dv = DistVector<std::int64_t>::from_host(c, data);
    sample_sort(c, dv, [](std::int64_t x) { return x; });
    std::sort(data.begin(), data.end());
    EXPECT_EQ(dv.to_host(), data);
  }
}

TEST(Sort, CustomKeyOnStructs) {
  struct Rec {
    std::int64_t key;
    std::int64_t payload;
  };
  Cluster c(cfg_of(6));
  Rng rng(23);
  std::vector<Rec> data(2000);
  for (std::size_t i = 0; i < data.size(); ++i) {
    data[i] = Rec{rng.next_in(0, 100000), static_cast<std::int64_t>(i)};
  }
  auto dv = DistVector<Rec>::from_host(c, data);
  sample_sort(c, dv, [](const Rec& r) { return r.key; });
  const auto got = dv.to_host();
  for (std::size_t i = 1; i < got.size(); ++i) {
    EXPECT_LE(got[i - 1].key, got[i].key);
  }
  // Same multiset of payloads.
  std::vector<std::int64_t> pays;
  for (const auto& r : got) pays.push_back(r.payload);
  std::sort(pays.begin(), pays.end());
  for (std::size_t i = 0; i < pays.size(); ++i) {
    EXPECT_EQ(pays[i], static_cast<std::int64_t>(i));
  }
}

TEST(Sort, RoundCountIndependentOfNForFixedDelta) {
  // The fully-scalable profile: for fixed δ, sort rounds are O(1) — the
  // level structure depends on δ only (up to fan-out rounding).
  std::vector<std::int64_t> rounds;
  for (std::int64_t n : {std::int64_t{1} << 12, std::int64_t{1} << 14,
                         std::int64_t{1} << 16}) {
    Cluster c(MpcConfig::fully_scalable(n, 0.5));
    Rng rng(static_cast<std::uint64_t>(n));
    std::vector<std::int64_t> data(static_cast<std::size_t>(n));
    for (auto& x : data) x = rng.next_in(0, 1 << 30);
    auto dv = DistVector<std::int64_t>::from_host(c, data);
    sample_sort(c, dv, [](std::int64_t x) { return x; });
    std::sort(data.begin(), data.end());
    ASSERT_EQ(dv.to_host(), data);
    rounds.push_back(c.rounds());
  }
  // Allow small wobble from fanout rounding, but no growth trend.
  EXPECT_LE(rounds.back(), rounds.front() + 2);
}

TEST(Sort, RespectsStrictSpaceAtScale) {
  // Under the paper's regime the sort must stay within s per machine.
  const std::int64_t n = 1 << 14;
  for (double delta : {0.3, 0.5}) {
    Cluster c(MpcConfig::fully_scalable(n, delta));
    Rng rng(42);
    std::vector<std::int64_t> data(static_cast<std::size_t>(n));
    for (auto& x : data) x = rng.next_in(0, 1 << 30);
    auto dv = DistVector<std::int64_t>::from_host(c, data);
    EXPECT_NO_THROW(sample_sort(c, dv, [](std::int64_t x) { return x; }))
        << "delta=" << delta;
  }
}

// --- rank search / inverse permutation / prefix -----------------------------

TEST(RankSearch, MatchesBruteForce) {
  Cluster c(cfg_of(7));
  Rng rng(5);
  std::vector<std::int64_t> values(500), queries(300);
  for (auto& v : values) v = rng.next_in(0, 200);
  for (auto& q : queries) q = rng.next_in(-5, 205);

  auto dvv = DistVector<std::int64_t>::from_host(c, values);
  auto dvq = DistVector<std::int64_t>::from_host(c, queries);
  const auto got = rank_search(c, dvv, dvq).to_host();

  ASSERT_EQ(got.size(), queries.size());
  for (std::size_t i = 0; i < queries.size(); ++i) {
    std::int64_t expect = 0;
    for (std::int64_t v : values) expect += (v < queries[i]);
    EXPECT_EQ(got[i], expect) << "query " << queries[i];
  }
}

TEST(RankSearch, TiesCountStrictlySmaller) {
  Cluster c(cfg_of(3));
  std::vector<std::int64_t> values = {5, 5, 5, 7};
  std::vector<std::int64_t> queries = {5, 6, 7, 8};
  auto dvv = DistVector<std::int64_t>::from_host(c, values);
  auto dvq = DistVector<std::int64_t>::from_host(c, queries);
  EXPECT_EQ(rank_search(c, dvv, dvq).to_host(),
            (std::vector<std::int64_t>{0, 3, 3, 4}));
}

TEST(InversePermutation, MatchesDirectInverse) {
  for (std::int64_t m : {1, 4, 9}) {
    Cluster c(cfg_of(m));
    Rng rng(static_cast<std::uint64_t>(m));
    const auto p = rng.permutation(1000);
    auto dv = DistVector<std::int32_t>::from_host(c, p);
    const auto inv = inverse_permutation(c, dv).to_host();
    for (std::size_t i = 0; i < p.size(); ++i) {
      EXPECT_EQ(inv[static_cast<std::size_t>(p[i])],
                static_cast<std::int32_t>(i));
    }
  }
}

TEST(DvExclusivePrefix, MatchesScan) {
  Cluster c(cfg_of(6));
  Rng rng(9);
  std::vector<std::int64_t> data(777);
  for (auto& x : data) x = rng.next_in(-10, 10);
  auto dv = DistVector<std::int64_t>::from_host(c, data);
  const auto got = dv_exclusive_prefix(c, dv).to_host();
  std::int64_t acc = 0;
  for (std::size_t i = 0; i < data.size(); ++i) {
    ASSERT_EQ(got[i], acc);
    acc += data[i];
  }
}

TEST(GatherToMachine, CollectsWholeVector) {
  Cluster c(cfg_of(5));
  std::vector<std::int64_t> data(100);
  std::iota(data.begin(), data.end(), 7);
  auto dv = DistVector<std::int64_t>::from_host(c, data);
  EXPECT_EQ(gather_to_machine(c, dv, 3), data);
}

TEST(GatherToMachine, ThrowsWhenItDoesNotFit) {
  Cluster c(cfg_of(8, /*space=*/32, /*strict=*/true));
  std::vector<std::int64_t> data(200, 1);
  // from_host splits 25 words per machine (fits); gathering 200 does not.
  auto dv = DistVector<std::int64_t>::from_host(c, data);
  EXPECT_THROW(gather_to_machine(c, dv, 0), SpaceLimitError);
}

TEST(Determinism, IdenticalRunsProduceIdenticalStats) {
  const auto run = [] {
    Cluster c(cfg_of(13));
    Rng rng(77);
    std::vector<std::int64_t> data(3000);
    for (auto& x : data) x = rng.next_in(0, 1 << 20);
    auto dv = DistVector<std::int64_t>::from_host(c, data);
    sample_sort(c, dv, [](std::int64_t x) { return x; });
    return std::pair{c.stats().total_comm_words, dv.to_host()};
  };
  const auto a = run();
  const auto b = run();
  EXPECT_EQ(a.first, b.first);
  EXPECT_EQ(a.second, b.second);
}

}  // namespace
}  // namespace monge::mpc
