// monge::Solver facade: every route (single + batch, all three backends)
// is pinned bit-identical against the direct free-function calls it
// delegates to, plus SolverOptions validation (invalid backend/engine/MPC
// knobs throw at construction, mirroring SeaweedEngineOptions semantics).
#include "api/solver.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <stdexcept>
#include <utility>
#include <vector>

#include "core/mpc_subperm.h"
#include "lcs/hunt_szymanski.h"
#include "lcs/mpc_lcs.h"
#include "lis/kernel.h"
#include "lis/mpc_lis.h"
#include "lis/sequential.h"
#include "monge/seaweed.h"
#include "monge/subperm.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace monge {
namespace {

std::vector<std::int64_t> random_sequence(std::int64_t n, std::int64_t hi,
                                          Rng& rng) {
  std::vector<std::int64_t> seq(static_cast<std::size_t>(n));
  for (auto& x : seq) x = rng.next_in(0, hi);
  return seq;
}

std::vector<std::pair<std::int64_t, std::int64_t>> random_windows(
    std::int64_t n, std::int64_t q, Rng& rng) {
  std::vector<std::pair<std::int64_t, std::int64_t>> windows;
  for (std::int64_t i = 0; i < q; ++i) {
    windows.push_back({rng.next_in(0, n - 1), rng.next_in(0, n - 1)});
  }
  windows.push_back({3, 2});  // legitimate empty window
  return windows;
}

TEST(SolverOptions, ValidationThrowsAtConstruction) {
  EXPECT_NO_THROW(Solver{});
  EXPECT_NO_THROW(Solver{SolverOptions{.backend = SolverBackend::kMpcSim}});

  // Solver-validated knobs throw the taxonomy's InvalidRequestError.
  SolverOptions bad_backend;
  bad_backend.backend = static_cast<SolverBackend>(7);
  EXPECT_THROW(Solver{bad_backend}, InvalidRequestError);

  // Engine knobs are validated by the owned engine's constructor, which
  // keeps its std::logic_error contract.
  SolverOptions bad_cutoff;
  bad_cutoff.engine.base_case_cutoff = 0;
  EXPECT_THROW(Solver{bad_cutoff}, std::logic_error);
  SolverOptions bad_grain;
  bad_grain.engine.parallel_grain = 1;
  EXPECT_THROW(Solver{bad_grain}, std::logic_error);

  SolverOptions bad_delta;
  bad_delta.mpc_delta = 1.0;
  EXPECT_THROW(Solver{bad_delta}, InvalidRequestError);
  SolverOptions bad_slack;
  bad_slack.mpc_slack = 0.0;
  EXPECT_THROW(Solver{bad_slack}, InvalidRequestError);
  SolverOptions bad_machines;
  bad_machines.cluster.num_machines = -1;
  EXPECT_THROW(Solver{bad_machines}, InvalidRequestError);
  SolverOptions bad_space;
  bad_space.cluster.num_machines = 2;
  bad_space.cluster.space_words = 0;
  EXPECT_THROW(Solver{bad_space}, InvalidRequestError);
  SolverOptions bad_multiply;
  bad_multiply.multiply.split_h = -1;
  EXPECT_THROW(Solver{bad_multiply}, InvalidRequestError);
  SolverOptions bad_classes;
  bad_classes.lis_leaf_classes = -1;
  EXPECT_THROW(Solver{bad_classes}, InvalidRequestError);
}

TEST(SolverOptions, EchoedExactlyAndBackendNames) {
  SolverOptions opts;
  opts.backend = SolverBackend::kReference;
  opts.engine.base_case_cutoff = 3;
  opts.mpc_delta = 0.25;
  Solver solver(opts);
  EXPECT_EQ(solver.options().backend, SolverBackend::kReference);
  EXPECT_EQ(solver.options().engine.base_case_cutoff, 3);
  EXPECT_EQ(solver.options().mpc_delta, 0.25);
  EXPECT_EQ(solver.engine().options().base_case_cutoff, 3);
  EXPECT_STREQ(solver_backend_name(SolverBackend::kSequential), "sequential");
  EXPECT_STREQ(solver_backend_name(SolverBackend::kMpcSim), "mpc-sim");
  EXPECT_STREQ(solver_backend_name(SolverBackend::kReference), "reference");
}

TEST(SolverOptions, ShapeValidationOnRequests) {
  Solver solver;
  Rng rng(3);
  // Inner dimension mismatch.
  MultiplyRequest bad{Perm::random(4, rng), Perm::random(5, rng)};
  EXPECT_THROW(solver.solve(bad), std::logic_error);
  // kFull on a sub-permutation.
  MultiplyRequest sub{Perm::random_sub(4, 4, 2, rng), Perm::random(4, rng),
                      MultiplyRequest::Kind::kFull};
  EXPECT_THROW(solver.solve(sub), std::logic_error);
}

TEST(SolverMultiply, SequentialBitIdenticalToDirectCalls) {
  Rng rng(11);
  Solver solver;
  for (const std::int64_t n : {1, 2, 3, 5, 16, 33, 64, 257}) {
    const MultiplyRequest full{Perm::random(n, rng), Perm::random(n, rng)};
    EXPECT_EQ(solver.solve(full).c, seaweed_multiply(full.a, full.b)) << n;

    const MultiplyRequest sub{
        Perm::random_sub(n, n, n / 2, rng),
        Perm::random_sub(n, (3 * n) / 2, n / 2, rng),
        MultiplyRequest::Kind::kSubunit};
    EXPECT_EQ(solver.solve(sub).c, subunit_multiply(sub.a, sub.b)) << n;
  }
}

TEST(SolverMultiply, ReferenceBitIdenticalToReferenceOracles) {
  Rng rng(12);
  Solver solver({.backend = SolverBackend::kReference});
  for (const std::int64_t n : {1, 2, 7, 32, 65}) {
    const MultiplyRequest full{Perm::random(n, rng), Perm::random(n, rng)};
    EXPECT_EQ(solver.solve(full).c,
              Perm::from_rows(seaweed_multiply_reference_raw(
                                  full.a.row_to_col(), full.b.row_to_col()),
                              n))
        << n;

    const MultiplyRequest sub{Perm::random_sub(n, n, n / 2, rng),
                              Perm::random_sub(n, n, n / 2, rng),
                              MultiplyRequest::Kind::kSubunit};
    EXPECT_EQ(solver.solve(sub).c, subunit_multiply_padded(sub.a, sub.b)) << n;
  }
}

TEST(SolverMultiply, SequentialBatchBitIdenticalAndOneEngineCallPerKind) {
  Rng rng(13);
  Solver solver;
  std::vector<MultiplyRequest> reqs;
  for (const std::int64_t n : {1, 2, 5, 16, 64, 33}) {
    reqs.push_back({Perm::random(n, rng), Perm::random(n, rng)});
    reqs.push_back({Perm::random_sub(n, n, n / 2, rng),
                    Perm::random_sub(n, n, n / 2, rng),
                    MultiplyRequest::Kind::kSubunit});
  }
  const std::int64_t sub_calls_before = solver.engine().subunit_batch_calls();
  const auto results = solver.solve_batch(reqs);
  // The whole subunit group went through exactly ONE batched engine call.
  EXPECT_EQ(solver.engine().subunit_batch_calls(), sub_calls_before + 1);
  ASSERT_EQ(results.size(), reqs.size());
  for (std::size_t i = 0; i < reqs.size(); ++i) {
    const Perm direct = reqs[i].kind == MultiplyRequest::Kind::kFull
                            ? seaweed_multiply(reqs[i].a, reqs[i].b)
                            : subunit_multiply(reqs[i].a, reqs[i].b);
    EXPECT_EQ(results[i].c, direct) << i;
  }
}

TEST(SolverMultiply, SequentialBatchMatchesWithThreadPool) {
  Rng rng(14);
  std::vector<MultiplyRequest> reqs;
  for (const std::int64_t n : {1, 3, 16, 64, 128}) {
    reqs.push_back({Perm::random(n, rng), Perm::random(n, rng)});
    reqs.push_back({Perm::random_sub(n, n, n / 2, rng),
                    Perm::random_sub(n, n, n / 2, rng),
                    MultiplyRequest::Kind::kSubunit});
  }
  Solver seq_solver;
  ThreadPool pool(3);
  Solver pool_solver({.engine = {.parallel_grain = 32, .pool = &pool}});
  const auto seq_res = seq_solver.solve_batch(reqs);
  const auto pool_res = pool_solver.solve_batch(reqs);
  for (std::size_t i = 0; i < reqs.size(); ++i) {
    EXPECT_EQ(seq_res[i].c, pool_res[i].c) << i;
  }
}

TEST(SolverMultiply, MpcSimBitIdenticalToDirectCalls) {
  Rng rng(15);
  mpc::MpcConfig cfg;
  cfg.num_machines = 4;
  cfg.space_words = 1 << 20;
  cfg.threads = 2;
  const std::int64_t n = 64;
  const MultiplyRequest full{Perm::random(n, rng), Perm::random(n, rng)};
  const MultiplyRequest sub{Perm::random_sub(n, n, n / 2, rng),
                            Perm::random_sub(n, n, n / 2, rng),
                            MultiplyRequest::Kind::kSubunit};

  Solver solver({.backend = SolverBackend::kMpcSim, .cluster = cfg});
  const auto full_res = solver.solve(full);
  const auto sub_res = solver.solve(sub);

  {
    mpc::Cluster direct_cluster(cfg);
    core::MpcMultiplyReport rep;
    const Perm direct =
        core::mpc_unit_monge_multiply(direct_cluster, full.a, full.b, {}, &rep);
    EXPECT_EQ(full_res.c, direct);
    EXPECT_EQ(full_res.report.rounds, rep.rounds);
    EXPECT_EQ(full_res.report.levels, rep.levels);
    EXPECT_EQ(full_res.report.split_h, rep.split_h);
    EXPECT_EQ(full_res.report.rank_queries, rep.rank_queries);
  }
  {
    mpc::Cluster direct_cluster(cfg);
    core::MpcMultiplyReport rep;
    const Perm direct =
        core::mpc_subunit_multiply(direct_cluster, sub.a, sub.b, {}, &rep);
    EXPECT_EQ(sub_res.c, direct);
    EXPECT_EQ(sub_res.report.rounds, rep.rounds);
  }
}

TEST(SolverMultiply, MpcSimBatchBitIdenticalToDirectBatch) {
  Rng rng(16);
  mpc::MpcConfig cfg;
  cfg.num_machines = 4;
  cfg.space_words = 1 << 20;
  cfg.threads = 2;
  std::vector<MultiplyRequest> reqs;
  for (const std::int64_t n : {16, 32, 64}) {
    reqs.push_back({Perm::random(n, rng), Perm::random(n, rng)});
  }
  Solver solver({.backend = SolverBackend::kMpcSim, .cluster = cfg});
  const auto results = solver.solve_batch(reqs);

  std::vector<std::pair<Perm, Perm>> pairs;
  for (const auto& r : reqs) pairs.emplace_back(r.a, r.b);
  mpc::Cluster direct_cluster(cfg);
  core::MpcMultiplyReport rep;
  const auto direct =
      core::mpc_unit_monge_multiply_batch(direct_cluster, pairs, {}, &rep);
  ASSERT_EQ(results.size(), direct.size());
  for (std::size_t i = 0; i < direct.size(); ++i) {
    EXPECT_EQ(results[i].c, direct[i]) << i;
    EXPECT_EQ(results[i].report.rounds, rep.rounds);
  }
}

TEST(SolverLis, SequentialRoutesBitIdenticalToDirectCalls) {
  Rng rng(17);
  Solver solver;
  for (const std::int64_t n : {1, 2, 37, 192}) {
    const auto seq = random_sequence(n, 40, rng);  // duplicates likely

    // Length-only routes to patience sorting.
    EXPECT_EQ(solver.solve(LisRequest{.seq = seq}).lis, lis::lis_length(seq));

    // Kernel route: rank reduction + the level-order kernel builder.
    const auto kres = solver.solve(LisRequest{.seq = seq, .want_kernel = true});
    const Perm direct_kernel = lis::lis_kernel(lis::rank_reduce_strict(seq));
    EXPECT_EQ(kres.kernel, direct_kernel);
    EXPECT_EQ(kres.lis, lis::lis_from_kernel(direct_kernel));

    // Windowed batch answers through the kernel.
    const auto windows = random_windows(n, 6, rng);
    const auto wres = solver.solve(LisRequest{.seq = seq, .windows = windows});
    EXPECT_EQ(wres.window_lis,
              lis::kernel_window_lis_batch(direct_kernel, windows));
    EXPECT_TRUE(wres.kernel.row_to_col().empty());  // not requested
  }
}

TEST(SolverLis, ReferenceRoutesBitIdenticalToOracles) {
  Rng rng(18);
  Solver solver({.backend = SolverBackend::kReference});
  const std::int64_t n = 48;
  const auto seq = random_sequence(n, 12, rng);
  const auto windows = random_windows(n, 5, rng);
  const auto res = solver.solve(
      LisRequest{.seq = seq, .want_kernel = true, .windows = windows});
  EXPECT_EQ(res.lis, lis::lis_length_dp(seq));
  EXPECT_EQ(res.kernel,
            lis::lis_kernel_reference(lis::rank_reduce_strict(seq)));
  EXPECT_EQ(res.window_lis, lis::lis_window_batch(seq, windows));
}

TEST(SolverLis, SequentialBatchBitIdenticalToPerRequestSolve) {
  Rng rng(19);
  Solver solver;
  std::vector<LisRequest> reqs;
  for (const std::int64_t n : {5, 64, 33, 128}) {
    reqs.push_back({.seq = random_sequence(n, 25, rng)});  // length-only
    reqs.push_back({.seq = random_sequence(n, 25, rng), .want_kernel = true});
    reqs.push_back({.seq = random_sequence(n, 25, rng),
                    .windows = random_windows(n, 4, rng)});
  }
  const auto batch = solver.solve_batch(reqs);
  ASSERT_EQ(batch.size(), reqs.size());
  for (std::size_t i = 0; i < reqs.size(); ++i) {
    const auto single = solver.solve(reqs[i]);
    EXPECT_EQ(batch[i].lis, single.lis) << i;
    EXPECT_EQ(batch[i].kernel, single.kernel) << i;
    EXPECT_EQ(batch[i].window_lis, single.window_lis) << i;
  }
}

TEST(SolverLis, MpcSimBitIdenticalToDirectCalls) {
  Rng rng(20);
  const std::int64_t n = 256;
  const auto seq = random_sequence(n, 1 << 20, rng);
  const auto windows = random_windows(n, 8, rng);

  Solver solver({.backend = SolverBackend::kMpcSim});  // auto-provisioned
  const auto res = solver.solve(
      LisRequest{.seq = seq, .want_kernel = true, .windows = windows});

  mpc::Cluster direct_cluster(mpc::MpcConfig::fully_scalable(n, 0.5));
  const auto direct = lis::mpc_lis(direct_cluster, seq);
  EXPECT_EQ(res.lis, direct.lis);
  EXPECT_EQ(res.kernel, direct.kernel);
  EXPECT_EQ(res.rounds, direct.rounds);
  EXPECT_EQ(res.merge_levels, direct.merge_levels);
  EXPECT_EQ(res.window_lis,
            lis::kernel_window_lis_batch(direct.kernel, windows));
  EXPECT_EQ(res.lis, lis::lis_length(seq));  // and it is the right answer
}

TEST(SolverLcs, AllBackendsBitIdenticalToDirectCalls) {
  Rng rng(21);
  const auto s = random_sequence(96, 6, rng);
  const auto t = random_sequence(80, 6, rng);
  const auto matches =
      static_cast<std::int64_t>(lcs::hs_match_sequence(s, t).size());

  Solver seq_solver;
  const auto seq_res = seq_solver.solve(LcsRequest{s, t});
  EXPECT_EQ(seq_res.lcs, lcs::lcs_hs(s, t));
  EXPECT_EQ(seq_res.matches, matches);

  Solver ref_solver({.backend = SolverBackend::kReference});
  const auto ref_res = ref_solver.solve(LcsRequest{s, t});
  EXPECT_EQ(ref_res.lcs, lcs::lcs_dp(s, t));
  EXPECT_EQ(ref_res.matches, matches);

  Solver mpc_solver({.backend = SolverBackend::kMpcSim});
  const auto mpc_res = mpc_solver.solve(LcsRequest{s, t});
  mpc::Cluster direct_cluster(mpc::MpcConfig::fully_scalable(matches, 0.5));
  const auto direct = lcs::mpc_lcs(direct_cluster, s, t);
  EXPECT_EQ(mpc_res.lcs, direct.lcs);
  EXPECT_EQ(mpc_res.matches, direct.matches);
  EXPECT_EQ(mpc_res.rounds, direct.rounds);
}

TEST(SolverLcs, ReferenceAndSequentialReportIdenticalMatches) {
  // Regression: the Reference route used to materialize the full HS match
  // sequence just to read .size(); it now uses lcs::hs_match_count, which
  // must agree exactly with what the Sequential route reports.
  Rng rng(31);
  Solver seq_solver;
  Solver ref_solver({.backend = SolverBackend::kReference});
  for (int trial = 0; trial < 12; ++trial) {
    const LcsRequest req{random_sequence(rng.next_in(0, 64), 5, rng),
                         random_sequence(rng.next_in(0, 64), 5, rng)};
    const auto seq_res = seq_solver.solve(req);
    const auto ref_res = ref_solver.solve(req);
    ASSERT_EQ(ref_res.matches, seq_res.matches) << trial;
    ASSERT_EQ(ref_res.lcs, seq_res.lcs) << trial;
  }
}

TEST(SolverLcs, BatchBitIdenticalToPerRequestSolveAllBackends) {
  // The Sequential batch fast path groups by (t, s) and shares occurrence
  // tables and one lis_kernel_batch pass; it must stay bit-identical to
  // the per-call loop. Duplicates and shared-t requests stress the
  // grouping; the empty pair stresses the zero-match path.
  Rng rng(32);
  const auto shared_t = random_sequence(48, 4, rng);
  std::vector<LcsRequest> reqs;
  reqs.push_back({random_sequence(40, 4, rng), shared_t});
  reqs.push_back({random_sequence(30, 4, rng), shared_t});
  reqs.push_back(reqs[0]);  // exact duplicate collapses in the batch
  reqs.push_back({random_sequence(25, 3, rng), random_sequence(31, 3, rng)});
  reqs.push_back({{}, shared_t});
  reqs.push_back({random_sequence(10, 2, rng), {}});
  reqs.push_back({shared_t, shared_t});

  for (const auto backend :
       {SolverBackend::kSequential, SolverBackend::kMpcSim,
        SolverBackend::kReference}) {
    SolverOptions opts;
    opts.backend = backend;
    opts.cluster.threads = 1;
    Solver solver(opts);
    const auto batch = solver.solve_batch(reqs);
    ASSERT_EQ(batch.size(), reqs.size());
    Solver fresh(opts);  // per-call loop on an independent instance
    for (std::size_t i = 0; i < reqs.size(); ++i) {
      const auto single = fresh.solve(reqs[i]);
      EXPECT_EQ(batch[i].lcs, single.lcs) << i;
      EXPECT_EQ(batch[i].matches, single.matches) << i;
    }
  }
}

TEST(SolverCluster, LazyProvisioningAndReuse) {
  Rng rng(22);
  Solver solver({.backend = SolverBackend::kMpcSim});
  EXPECT_EQ(solver.cluster(), nullptr);  // lazy: nothing until first use

  const auto seq = random_sequence(128, 1 << 16, rng);
  const auto first = solver.solve(LisRequest{.seq = seq});
  const mpc::Cluster* cluster_after_first = solver.cluster();
  ASSERT_NE(cluster_after_first, nullptr);

  // Same-size request: the cluster is reused and the per-request round
  // delta is reproducible.
  const auto second = solver.solve(LisRequest{.seq = seq});
  EXPECT_EQ(solver.cluster(), cluster_after_first);
  EXPECT_EQ(second.lis, first.lis);
  EXPECT_EQ(second.rounds, first.rounds);

  // A different input size re-provisions (fully_scalable config changes).
  const auto big = random_sequence(512, 1 << 16, rng);
  (void)solver.solve(LisRequest{.seq = big});
  EXPECT_EQ(solver.cluster()->machines(),
            mpc::MpcConfig::fully_scalable(512, 0.5).num_machines);
}

TEST(SolverTrySolve, OkPathMatchesSolveBitIdentically) {
  Rng rng(31);
  const auto seq = random_sequence(96, 1 << 12, rng);
  Solver solver;
  const auto direct = solver.solve(LisRequest{.seq = seq, .want_kernel = true});
  auto res = solver.try_solve(LisRequest{.seq = seq, .want_kernel = true});
  ASSERT_TRUE(res.ok());
  EXPECT_EQ(res.report.status, SolveStatus::kOk);
  EXPECT_EQ(res.report.backend, SolverBackend::kSequential);
  EXPECT_FALSE(res.report.degraded);
  EXPECT_TRUE(res.report.message.empty());
  EXPECT_EQ(res.report.recovery, mpc::RecoveryStats{});
  EXPECT_EQ(res.value.lis, direct.lis);
  EXPECT_EQ(res.value.kernel, direct.kernel);
}

TEST(SolverTrySolve, InvalidRequestIsClassifiedNotDegraded) {
  Rng rng(32);
  Solver solver;
  // Inner dimension mismatch: invalid on every backend, never degraded.
  MultiplyRequest bad{Perm::random(4, rng), Perm::random(5, rng)};
  const auto res = solver.try_solve(bad);
  EXPECT_FALSE(res.ok());
  EXPECT_EQ(res.report.status, SolveStatus::kInvalidRequest);
  EXPECT_FALSE(res.report.degraded);
  EXPECT_FALSE(res.report.message.empty());
}

TEST(SolverTrySolve, ReportsRecoveryActivityOnChaoticOkRuns) {
  // Auto-provisioned MpcSim cluster with a recoverable chaos plan: the
  // faults carry into the provisioned config, the run succeeds, and the
  // report's recovery delta shows the masked events.
  Rng rng(33);
  const auto seq = random_sequence(96, 1 << 12, rng);
  SolverOptions opts;
  opts.backend = SolverBackend::kMpcSim;
  opts.cluster.threads = 1;
  opts.cluster.faults.seed = 7;
  opts.cluster.faults.drop_prob = 1.0;
  Solver solver(opts);
  Solver clean({.backend = SolverBackend::kMpcSim,
                .cluster = {.num_machines = 0, .threads = 1}});
  const auto baseline = clean.solve(LisRequest{.seq = seq});
  auto res = solver.try_solve(LisRequest{.seq = seq});
  ASSERT_TRUE(res.ok());
  EXPECT_FALSE(res.report.degraded);
  EXPECT_EQ(res.value.lis, baseline.lis);
  EXPECT_EQ(res.value.rounds, baseline.rounds);  // paper ledger unchanged
  EXPECT_GT(res.report.recovery.messages_dropped, 0);
  EXPECT_GT(res.report.recovery.recovery_comm_words, 0);
}

TEST(SolverTrySolve, UnrecoverableFaultDegradesToSequential) {
  Rng rng(34);
  const auto seq = random_sequence(96, 1 << 12, rng);
  SolverOptions opts;
  opts.backend = SolverBackend::kMpcSim;
  opts.cluster.num_machines = 4;
  opts.cluster.space_words = 1 << 20;
  opts.cluster.threads = 1;
  // Crash in an uncheckpointed round: recovery is impossible by design.
  opts.cluster.checkpoint_interval = 2;
  opts.cluster.faults.scheduled.push_back(
      {/*round=*/1, /*machine=*/0, mpc::FaultKind::kCrash});
  Solver solver(opts);

  // solve() throws the taxonomy error; try_solve degrades instead.
  EXPECT_THROW(solver.solve(LisRequest{.seq = seq}), FaultError);
  auto res = solver.try_solve(LisRequest{.seq = seq});
  ASSERT_TRUE(res.ok());
  EXPECT_TRUE(res.report.degraded);
  EXPECT_EQ(res.report.backend, SolverBackend::kSequential);
  EXPECT_NE(res.report.message.find("fault"), std::string::npos);
  EXPECT_NE(res.report.message.find("degraded to sequential"),
            std::string::npos);
  EXPECT_EQ(res.value.lis, lis::lis_length(seq));
  // The failed cluster was torn down for a clean slate.
  EXPECT_EQ(solver.cluster(), nullptr);
}

TEST(SolverTrySolve, SpaceOverrunDegradesToSequential) {
  Rng rng(35);
  const auto seq = random_sequence(256, 1 << 12, rng);
  SolverOptions opts;
  opts.backend = SolverBackend::kMpcSim;
  opts.cluster.num_machines = 4;
  opts.cluster.space_words = 8;  // absurdly tight: guaranteed overrun
  opts.cluster.strict = true;
  opts.cluster.threads = 1;
  Solver solver(opts);
  auto res = solver.try_solve(LisRequest{.seq = seq});
  ASSERT_TRUE(res.ok());
  EXPECT_TRUE(res.report.degraded);
  EXPECT_NE(res.report.message.find("space-limit"), std::string::npos);
  EXPECT_EQ(res.value.lis, lis::lis_length(seq));
}

TEST(SolverTrySolve, StatusNames) {
  EXPECT_STREQ(solve_status_name(SolveStatus::kOk), "ok");
  EXPECT_STREQ(solve_status_name(SolveStatus::kInvalidRequest),
               "invalid-request");
  EXPECT_STREQ(solve_status_name(SolveStatus::kSpaceLimit), "space-limit");
  EXPECT_STREQ(solve_status_name(SolveStatus::kFault), "fault");
  EXPECT_STREQ(solve_status_name(SolveStatus::kCodec), "codec");
  EXPECT_STREQ(solve_status_name(SolveStatus::kInternalError),
               "internal-error");
}

}  // namespace
}  // namespace monge
