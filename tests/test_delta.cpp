// Property tests for the §3.1 machinery: Lemmas 3.1–3.10 exercised on real
// decompositions of unit-Monge products.
#include "monge/delta.h"

#include <gtest/gtest.h>

#include <string>

#include "monge/distribution.h"
#include "testing.h"
#include "util/rng.h"

namespace monge {
namespace {

using testing::make_colored_split;

struct SplitCase {
  std::int64_t n;
  std::int32_t h;
  std::uint64_t seed;
};

class DeltaSplit : public ::testing::TestWithParam<SplitCase> {
 protected:
  void SetUp() override {
    Rng rng(GetParam().seed);
    a_ = Perm::random(GetParam().n, rng);
    b_ = Perm::random(GetParam().n, rng);
    set_.emplace(make_colored_split(a_, b_, GetParam().h));
  }

  Perm a_, b_;
  std::optional<ColoredPointSet> set_;
};

TEST_P(DeltaSplit, Lemma32MinOfFEqualsProductDistribution) {
  // PΣ_C(i,j) = min_q F_q(i,j).
  const Perm expected = multiply_naive(a_, b_);
  const DistMatrix dist = DistMatrix::from(expected);
  const std::int64_t n = GetParam().n;
  for (std::int64_t i = 0; i <= n; ++i) {
    for (std::int64_t j = 0; j <= n; ++j) {
      std::int64_t best = set_->F(0, i, j);
      for (std::int32_t q = 1; q < set_->num_colors(); ++q) {
        best = std::min(best, set_->F(q, i, j));
      }
      ASSERT_EQ(best, dist.at(i, j)) << "(" << i << "," << j << ")";
    }
  }
}

TEST_P(DeltaSplit, Lemma33ColumnStepsAreZeroOrOne) {
  const std::int64_t n = GetParam().n;
  const std::int32_t h = set_->num_colors();
  for (std::int32_t q = 0; q < h; ++q) {
    for (std::int32_t r = q + 1; r < h; ++r) {
      for (std::int64_t i = 0; i <= n; i += std::max<std::int64_t>(1, n / 5)) {
        for (std::int64_t j = 0; j < n; ++j) {
          const std::int64_t step =
              set_->delta(q, r, i, j + 1) - set_->delta(q, r, i, j);
          ASSERT_TRUE(step == 0 || step == 1)
              << "q=" << q << " r=" << r << " i=" << i << " j=" << j;
        }
      }
    }
  }
}

TEST_P(DeltaSplit, Lemma34RowStepsAreZeroOrOne) {
  const std::int64_t n = GetParam().n;
  const std::int32_t h = set_->num_colors();
  for (std::int32_t q = 0; q < h; ++q) {
    for (std::int32_t r = q + 1; r < h; ++r) {
      for (std::int64_t j = 0; j <= n; j += std::max<std::int64_t>(1, n / 5)) {
        for (std::int64_t i = 0; i < n; ++i) {
          const std::int64_t step =
              set_->delta(q, r, i + 1, j) - set_->delta(q, r, i, j);
          ASSERT_TRUE(step == 0 || step == 1)
              << "q=" << q << " r=" << r << " i=" << i << " j=" << j;
        }
      }
    }
  }
}

TEST_P(DeltaSplit, Lemmas3536OptIsMonotone) {
  const std::int64_t n = GetParam().n;
  for (std::int64_t i = 0; i <= n; ++i) {
    std::int32_t prev = set_->opt(i, 0);
    for (std::int64_t j = 1; j <= n; ++j) {
      const std::int32_t cur = set_->opt(i, j);
      ASSERT_LE(prev, cur);
      prev = cur;
    }
  }
  for (std::int64_t j = 0; j <= n; ++j) {
    std::int32_t prev = set_->opt(0, j);
    for (std::int64_t i = 1; i <= n; ++i) {
      const std::int32_t cur = set_->opt(i, j);
      ASSERT_LE(prev, cur);
      prev = cur;
    }
  }
}

TEST_P(DeltaSplit, Lemmas37To310ReconstructionMatchesNaive) {
  EXPECT_EQ(combine_opt_table(*set_), multiply_naive(a_, b_));
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, DeltaSplit,
    ::testing::Values(SplitCase{4, 2, 1}, SplitCase{6, 2, 2},
                      SplitCase{6, 3, 3}, SplitCase{8, 4, 4},
                      SplitCase{12, 3, 5}, SplitCase{16, 4, 6},
                      SplitCase{16, 8, 7}, SplitCase{24, 5, 8},
                      SplitCase{32, 4, 9}, SplitCase{32, 8, 10},
                      SplitCase{33, 7, 11}, SplitCase{40, 6, 12},
                      SplitCase{48, 16, 13}, SplitCase{64, 8, 14}),
    [](const auto& tpi) {
      // Appends, not an operator+ chain: the chain trips a gcc-12
      // -Wrestrict false positive (PR105651) once inlined at -O3.
      std::string name;
      name += "n";
      name += std::to_string(tpi.param.n);
      name += "_h";
      name += std::to_string(tpi.param.h);
      name += "_s";
      name += std::to_string(tpi.param.seed);
      return name;
    });

TEST(ColoredPointSet, FullUnionDetection) {
  // Two points sharing a row are not a permutation union.
  ColoredPointSet bad(2, 2, {{0, 0, 0}, {0, 1, 1}});
  EXPECT_FALSE(bad.is_full_union());
  ColoredPointSet good(2, 2, {{0, 0, 0}, {1, 1, 1}});
  EXPECT_TRUE(good.is_full_union());
  ColoredPointSet missing(2, 2, {{0, 0, 0}});
  EXPECT_FALSE(missing.is_full_union());
}

TEST(ColoredPointSet, CountsAgainstHandComputedValues) {
  // Points: (0,1,c0), (1,0,c0), (2,2,c1).
  ColoredPointSet s(3, 2, {{0, 1, 0}, {1, 0, 0}, {2, 2, 1}});
  EXPECT_EQ(s.A(0, 0, 2), 2);  // both color-0 points have col < 2, row >= 0
  EXPECT_EQ(s.A(0, 1, 2), 1);  // only (1,0)
  EXPECT_EQ(s.A(1, 0, 3), 1);
  EXPECT_EQ(s.A(1, 0, 2), 0);
  EXPECT_EQ(s.C(0, 1), 1);
  EXPECT_EQ(s.R(0, 1), 1);
  EXPECT_EQ(s.R(1, 3), 0);
}

TEST(ColoredPointSet, ColorSliceExtractsSubPermutation) {
  ColoredPointSet s(3, 2, {{0, 1, 0}, {1, 0, 0}, {2, 2, 1}});
  const Perm p0 = s.color_slice(0);
  EXPECT_EQ(p0.point_count(), 2);
  EXPECT_EQ(p0.col_of(0), 1);
  EXPECT_EQ(p0.col_of(1), 0);
  const Perm p1 = s.color_slice(1);
  EXPECT_EQ(p1.point_count(), 1);
  EXPECT_EQ(p1.col_of(2), 2);
}

TEST(ColoredPointSet, RejectsOutOfRangePoints) {
  EXPECT_THROW(ColoredPointSet(2, 1, {{2, 0, 0}}), std::logic_error);
  EXPECT_THROW(ColoredPointSet(2, 1, {{0, 0, 1}}), std::logic_error);
}

}  // namespace
}  // namespace monge
