#include "lis/sequential.h"

#include <gtest/gtest.h>

#include <string>

#include "lis/kernel.h"
#include "lis/mpc_lis.h"
#include "monge/engine.h"
#include "testing.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace monge::lis {
namespace {

std::vector<std::int64_t> to64(const std::vector<std::int32_t>& v) {
  return std::vector<std::int64_t>(v.begin(), v.end());
}

TEST(LisSequential, KnownValues) {
  EXPECT_EQ(lis_length(std::vector<std::int64_t>{}), 0);
  EXPECT_EQ(lis_length(std::vector<std::int64_t>{5}), 1);
  EXPECT_EQ(lis_length(std::vector<std::int64_t>{1, 2, 3}), 3);
  EXPECT_EQ(lis_length(std::vector<std::int64_t>{3, 2, 1}), 1);
  EXPECT_EQ(lis_length(std::vector<std::int64_t>{3, 1, 4, 1, 5, 9, 2, 6}), 4);
  // Duplicates: strictly increasing.
  EXPECT_EQ(lis_length(std::vector<std::int64_t>{2, 2, 2}), 1);
  EXPECT_EQ(lis_length(std::vector<std::int64_t>{1, 2, 2, 3}), 3);
}

TEST(LisSequential, PatienceMatchesDp) {
  Rng rng(3);
  for (int trial = 0; trial < 30; ++trial) {
    std::vector<std::int64_t> seq(static_cast<std::size_t>(rng.next_in(0, 60)));
    for (auto& x : seq) x = rng.next_in(0, 20);  // duplicates likely
    ASSERT_EQ(lis_length(seq), lis_length_dp(seq));
  }
}

TEST(LisSequential, RankReduceStrictPreservesLis) {
  Rng rng(7);
  for (int trial = 0; trial < 30; ++trial) {
    std::vector<std::int64_t> seq(static_cast<std::size_t>(rng.next_in(1, 50)));
    for (auto& x : seq) x = rng.next_in(-5, 5);
    const auto rank = rank_reduce_strict(seq);
    ASSERT_EQ(lis_length(seq), lis_length(to64(rank)));
  }
}

TEST(LisKernel, ExhaustiveSmallPermutations) {
  // Every permutation of sizes 1..7: the kernel must answer every window.
  for (int n = 1; n <= 7; ++n) {
    const auto perms = testing::all_permutations(n);
    for (const auto& p : perms) {
      const Perm kernel = lis_kernel(p);
      const auto seq = to64(p);
      for (std::int64_t l = 0; l < n; ++l) {
        for (std::int64_t r = l; r < n; ++r) {
          ASSERT_EQ(kernel_window_lis(kernel, l, r), lis_window(seq, l, r))
              << "n=" << n << " l=" << l << " r=" << r;
        }
      }
      ASSERT_EQ(lis_from_kernel(kernel), lis_length(seq));
    }
  }
}

TEST(LisWindow, EmptyWindowsAnswerZero) {
  // Empty windows (l > r) are legitimate queries and answer 0, even when
  // their endpoints fall outside [0, n): the r == -1 query on an empty
  // sequence, and off-the-end sliding windows.
  const std::vector<std::int64_t> empty;
  EXPECT_EQ(lis_window(empty, 0, -1), 0);
  const std::vector<std::int64_t> seq = {3, 1, 2};
  EXPECT_EQ(lis_window(seq, 0, -1), 0);
  EXPECT_EQ(lis_window(seq, 2, 1), 0);
  EXPECT_EQ(lis_window(seq, 5, 4), 0);
  EXPECT_THROW(lis_window(seq, 1, 3), std::logic_error);  // non-empty, OOB

  const Perm kernel = lis_kernel(std::vector<std::int32_t>{2, 0, 1});
  EXPECT_EQ(kernel_window_lis(kernel, 0, -1), 0);
  EXPECT_EQ(kernel_window_lis(kernel, 5, 4), 0);
  const std::vector<std::pair<std::int64_t, std::int64_t>> windows = {
      {0, 2}, {0, -1}, {5, 4}, {1, 2}};
  const auto batch = kernel_window_lis_batch(kernel, windows);
  EXPECT_EQ(batch[1], 0);
  EXPECT_EQ(batch[2], 0);
  EXPECT_EQ(batch[0], lis_window(to64({2, 0, 1}), 0, 2));
}

class KernelRandom : public ::testing::TestWithParam<std::int64_t> {};

TEST_P(KernelRandom, WindowsMatchOracle) {
  Rng rng(static_cast<std::uint64_t>(GetParam()));
  const auto p = rng.permutation(GetParam());
  const Perm kernel = lis_kernel(p);
  const auto seq = to64(p);
  EXPECT_EQ(lis_from_kernel(kernel), lis_length(seq));
  std::vector<std::pair<std::int64_t, std::int64_t>> windows;
  for (int trial = 0; trial < 40; ++trial) {
    const std::int64_t l = rng.next_in(0, GetParam() - 1);
    const std::int64_t r = rng.next_in(l, GetParam() - 1);
    windows.push_back({l, r});
  }
  const auto batch = kernel_window_lis_batch(kernel, windows);
  for (std::size_t i = 0; i < windows.size(); ++i) {
    ASSERT_EQ(batch[i],
              lis_window(seq, windows[i].first, windows[i].second));
    ASSERT_EQ(batch[i], kernel_window_lis(kernel, windows[i].first,
                                          windows[i].second));
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, KernelRandom,
                         ::testing::Values<std::int64_t>(8, 17, 33, 64, 128,
                                                         257));

// Stress loop: duplicate-heavy random sequences, rank-reduced to a kernel,
// answered against the per-window patience oracle batch. (rank_reduce_strict
// preserves strict comparisons pointwise, so every window agrees.)
TEST(LisKernelStress, WindowBatchMatchesSequentialOracle) {
  Rng rng(20260729);
  for (int trial = 0; trial < 25; ++trial) {
    const std::int64_t n = rng.next_in(1, 200);
    std::vector<std::int64_t> seq(static_cast<std::size_t>(n));
    for (auto& x : seq) x = rng.next_in(-8, 8);
    const Perm kernel = lis_kernel(rank_reduce_strict(seq));
    std::vector<std::pair<std::int64_t, std::int64_t>> windows;
    for (int q = 0; q < 30; ++q) {
      const std::int64_t l = rng.next_in(0, n - 1);
      windows.push_back({l, rng.next_in(l - 1, n - 1)});  // l-1 = empty window
    }
    ASSERT_EQ(kernel_window_lis_batch(kernel, windows),
              lis_window_batch(seq, windows))
        << "trial " << trial << " n=" << n;
  }
}

// ---------------------------------------------------------------------------
// Level-order builder vs the pre-change depth-first recursion.
// ---------------------------------------------------------------------------

// Kernels pinned from the depth-first recursion BEFORE the level-order
// restructuring (generated with the PR-2 kernel_rec on seeds 101..110,
// one rng.permutation(n) per seed). The level-order builder must
// reproduce them bit for bit.
TEST(LisKernelLevelOrder, PinnedGoldens) {
  struct Golden {
    std::vector<std::int32_t> perm;
    std::vector<std::int32_t> kernel;  // row->col, -1 = empty row
  };
  const std::vector<Golden> goldens = {
      // seed=101 n=1
      {{0}, {-1}},
      // seed=102 n=2
      {{0, 1}, {-1, -1}},
      // seed=103 n=5
      {{0, 1, 3, 2, 4}, {-1, -1, 3, -1, -1}},
      // seed=104 n=8
      {{5, 7, 0, 3, 6, 1, 4, 2}, {3, 2, -1, 6, 5, -1, 7, -1}},
      // seed=105 n=13
      {{5, 6, 1, 7, 4, 0, 3, 2, 10, 9, 11, 8, 12},
       {-1, 2, 6, 4, 5, -1, 7, -1, 9, -1, 11, -1, -1}},
      // seed=106 n=16
      {{11, 13, 14, 7, 6, 4, 15, 8, 3, 2, 10, 9, 0, 5, 12, 1},
       {14, 10, 3, 4, 5, -1, 7, 8, 9, 13, 11, 12, -1, -1, 15, -1}},
      // seed=107 n=23
      {{15, 16, 1, 8, 20, 14, 9, 19, 10, 5, 22, 21, 6, 17, 18, 4, 13, 7, 11,
        2, 3, 12, 0},
       {3, 2, -1, 21, 5, 6, 13, 8, 9, -1, 11, 12, 18, 16, 15, -1, 17, 20, 19,
        -1, -1, 22, -1}},
      // seed=108 n=32
      {{19, 14, 31, 4, 12, 27, 17, 25, 11, 24, 5, 21, 26, 29, 28, 6, 16, 9, 0,
        18, 22, 7, 3, 15, 30, 2, 10, 1, 13, 20, 23, 8},
       {1, 4, 3, -1, 20, 6, 9, 8, 11, 10, -1, 19, 16, 14, 15, 29, 17, 18, -1,
        23, 21, 22, 28, 26, 25, -1, 27, -1, -1, -1, 31, -1}},
      // seed=109 n=47
      {{2,  14, 42, 21, 39, 8,  20, 27, 6,  17, 23, 37, 13, 34, 18, 30,
        7,  35, 41, 9,  25, 0,  3,  5,  1,  15, 33, 40, 28, 43, 12, 44,
        22, 45, 32, 29, 46, 26, 24, 10, 31, 36, 38, 19, 11, 4,  16},
       {-1, 7,  3,  6,  5,  10, 9,  8,  27, 15, 13, 12, 26, 14, 25, 16,
        23, 20, 19, 22, 21, -1, -1, 24, -1, -1, 42, 28, 41, 30, -1, 32,
        -1, 34, 35, 40, 37, 38, 39, -1, -1, 46, 43, 44, 45, -1, -1}},
      // seed=110 n=64
      {{10, 3,  48, 31, 61, 50, 51, 40, 39, 30, 42, 19, 14, 38, 46, 24,
        34, 11, 25, 26, 59, 16, 18, 23, 53, 9,  52, 28, 36, 43, 27, 22,
        2,  13, 5,  45, 63, 0,  33, 12, 62, 15, 55, 29, 4,  20, 37, 47,
        21, 41, 49, 56, 54, 8,  58, 1,  32, 7,  6,  17, 44, 35, 57, 60},
       {1,  -1, 3,  19, 5,  10, 7,  8,  9,  13, 11, 12, 24, 16, 15, 18,
        17, -1, 23, 22, 21, -1, 47, 26, 25, 46, 27, 42, 33, 30, 31, 32,
        -1, 34, 40, 38, 37, -1, 39, -1, 41, 45, 43, 44, -1, -1, 49, 48,
        62, 60, 59, 52, 53, 56, 55, -1, 57, 58, -1, -1, 61, -1, -1, -1}},
  };
  for (std::size_t g = 0; g < goldens.size(); ++g) {
    const Perm got = lis_kernel(goldens[g].perm);
    const Perm want = Perm::from_rows(
        goldens[g].kernel, static_cast<std::int64_t>(goldens[g].perm.size()));
    ASSERT_EQ(got, want) << "golden " << g;
  }
}

// >1000 random permutations across sizes: the level-order builder must be
// bit-identical to the retained depth-first reference (which still issues
// one engine call per merge).
TEST(LisKernelLevelOrder, BitIdenticalToReferenceFuzz) {
  Rng rng(20260729);
  SeaweedEngine engine;
  std::int64_t cases = 0;
  while (cases < 1050) {
    const std::int64_t n = rng.next_in(1, 130);
    const auto p = rng.permutation(n);
    ASSERT_EQ(lis_kernel(p, engine), lis_kernel_reference(p, engine))
        << "case " << cases << " n=" << n;
    ++cases;
  }
  // A few larger sizes so multiple merge levels exceed the base-case
  // cutoff.
  for (const std::int64_t n : {257, 512, 1000}) {
    const auto p = rng.permutation(n);
    ASSERT_EQ(lis_kernel(p, engine), lis_kernel_reference(p, engine))
        << "n=" << n;
  }
}

// Call-structure pin: the level-order builder issues exactly one batched
// engine call per merge level — ceil(log2 n) calls total, vs the
// reference's one call per merge.
TEST(LisKernelLevelOrder, OneBatchedEngineCallPerLevel) {
  Rng rng(2026);
  for (const std::int64_t n : {1, 2, 3, 8, 9, 100, 128, 1000}) {
    SeaweedEngine engine;
    lis_kernel(rng.permutation(n), engine);
    std::int64_t levels = 0;
    while ((std::int64_t{1} << levels) < n) ++levels;  // ceil(log2 n)
    EXPECT_EQ(engine.subunit_batch_calls(), levels) << "n=" << n;
  }
  // A forest shares levels: many inputs still cost one call per global
  // level (the deepest input dominates).
  SeaweedEngine engine;
  std::vector<std::vector<std::int32_t>> perms;
  for (const std::int64_t n : {64, 7, 1, 33}) perms.push_back(rng.permutation(n));
  lis_kernel_batch(perms, engine);
  EXPECT_EQ(engine.subunit_batch_calls(), 6);  // ceil(log2 64)
}

// lis_kernel_batch must match per-input lis_kernel (mixed sizes, including
// empty and single-element inputs), sequentially and with a striping pool.
TEST(LisKernelLevelOrder, BatchMatchesPerInput) {
  Rng rng(424242);
  std::vector<std::vector<std::int32_t>> perms;
  for (const std::int64_t n : {17, 0, 1, 64, 5, 33, 128, 2, 0, 90}) {
    perms.push_back(rng.permutation(n));
  }
  const auto batch = lis_kernel_batch(perms);
  ASSERT_EQ(batch.size(), perms.size());
  for (std::size_t t = 0; t < perms.size(); ++t) {
    ASSERT_EQ(batch[t], lis_kernel(perms[t])) << "input " << t;
  }
  EXPECT_TRUE(lis_kernel_batch({}).empty());
  for (const unsigned threads : {2u, 4u}) {
    ThreadPool pool(threads);
    SeaweedEngine striped({.parallel_grain = 64, .pool = &pool});
    ASSERT_EQ(lis_kernel_batch(perms, striped), batch)
        << "threads=" << threads;
  }
}

TEST(LisKernel, SortedAndReversedExtremes) {
  std::vector<std::int32_t> sorted(50), rev(50);
  for (int i = 0; i < 50; ++i) {
    sorted[static_cast<std::size_t>(i)] = i;
    rev[static_cast<std::size_t>(i)] = 49 - i;
  }
  EXPECT_EQ(lis_kernel(sorted).point_count(), 0);  // LIS = n everywhere
  EXPECT_EQ(lis_from_kernel(lis_kernel(rev)), 1);
}

mpc::MpcConfig cfg_of(std::int64_t machines) {
  mpc::MpcConfig cfg;
  cfg.num_machines = machines;
  cfg.space_words = 1 << 22;
  cfg.strict = false;
  cfg.threads = 2;
  return cfg;
}

struct MpcLisCase {
  std::int64_t n, m, classes;
  std::uint64_t seed;
};

class MpcLisSweep : public ::testing::TestWithParam<MpcLisCase> {};

TEST_P(MpcLisSweep, MatchesPatienceAndKernelOracle) {
  const auto& p = GetParam();
  mpc::Cluster cluster(cfg_of(p.m));
  Rng rng(p.seed);
  std::vector<std::int64_t> seq(static_cast<std::size_t>(p.n));
  for (auto& x : seq) x = rng.next_in(0, p.n);  // duplicates allowed

  MpcLisOptions opt;
  opt.leaf_classes = p.classes;
  opt.multiply.split_h = 2;
  const auto res = mpc_lis(cluster, seq, opt);
  ASSERT_EQ(res.lis, lis_length(seq));
  EXPECT_GT(res.rounds, 0);

  // Semi-local: windows answered from the MPC kernel must match patience.
  for (int trial = 0; trial < 15; ++trial) {
    const std::int64_t l = rng.next_in(0, p.n - 1);
    const std::int64_t r = rng.next_in(l, p.n - 1);
    ASSERT_EQ(kernel_window_lis(res.kernel, l, r), lis_window(seq, l, r))
        << "l=" << l << " r=" << r;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, MpcLisSweep,
    ::testing::Values(MpcLisCase{16, 2, 2, 1}, MpcLisCase{32, 4, 4, 2},
                      MpcLisCase{64, 4, 8, 3}, MpcLisCase{100, 5, 4, 4},
                      MpcLisCase{128, 8, 8, 5}, MpcLisCase{200, 8, 16, 6},
                      MpcLisCase{256, 16, 16, 7}, MpcLisCase{333, 8, 8, 8}),
    [](const auto& tpi) {
      // Appends, not an operator+ chain: the chain trips a gcc-12
      // -Wrestrict false positive (PR105651) once inlined at -O3.
      std::string name;
      name += "n";
      name += std::to_string(tpi.param.n);
      name += "_m";
      name += std::to_string(tpi.param.m);
      name += "_c";
      name += std::to_string(tpi.param.classes);
      return name;
    });

TEST(MpcLis, AdversarialShapes) {
  mpc::Cluster cluster(cfg_of(4));
  // Sorted, reversed, sawtooth, constant.
  std::vector<std::vector<std::int64_t>> inputs;
  std::vector<std::int64_t> sorted(64), rev(64), saw(64), flat(64, 7);
  for (int i = 0; i < 64; ++i) {
    sorted[static_cast<std::size_t>(i)] = i;
    rev[static_cast<std::size_t>(i)] = 64 - i;
    saw[static_cast<std::size_t>(i)] = i % 8;
  }
  inputs = {sorted, rev, saw, flat};
  for (const auto& seq : inputs) {
    const auto res = mpc_lis(cluster, seq);
    ASSERT_EQ(res.lis, lis_length(seq));
  }
}

TEST(MpcLis, RoundsGrowLogarithmically) {
  // Theorem 1.3 shape check: rounds scale with the number of merge levels
  // (log n), not with n. Quadrupling n with fixed classes-per-machine adds
  // ~2 levels of merging.
  std::vector<std::int64_t> rounds;
  for (std::int64_t n : {64, 256, 1024}) {
    mpc::Cluster cluster(cfg_of(8));
    Rng rng(static_cast<std::uint64_t>(n));
    std::vector<std::int64_t> seq(static_cast<std::size_t>(n));
    for (auto& x : seq) x = rng.next_in(0, 1 << 30);
    MpcLisOptions opt;
    opt.leaf_classes = n / 16;  // leaf size fixed => levels grow with log n
    const auto res = mpc_lis(cluster, seq, opt);
    ASSERT_EQ(res.lis, lis_length(seq));
    rounds.push_back(res.rounds);
  }
  EXPECT_LT(rounds[0], rounds[1]);
  EXPECT_LT(rounds[1], rounds[2]);
  // Sub-linear growth: quadrupling n should nowhere near quadruple rounds.
  EXPECT_LT(rounds[2], rounds[0] * 4);
}

}  // namespace
}  // namespace monge::lis
