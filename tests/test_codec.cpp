// Round-trip tests for the word codec (util/codec.h) that the MPC
// simulator's typed message helpers (MachineCtx::send_items /
// Message::decode) are built on.
#include "util/codec.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "mpc/cluster.h"
#include "util/error.h"
#include "util/rng.h"

namespace monge::util {
namespace {

struct ThreeInts {  // 12 bytes -> 2 words, 4 padding bytes
  std::int32_t a = 0;
  std::int32_t b = 0;
  std::int32_t c = 0;
  friend bool operator==(const ThreeInts&, const ThreeInts&) = default;
};

struct WordPair {  // 16 bytes -> exactly 2 words, no padding
  std::int64_t lo = 0;
  std::int64_t hi = 0;
  friend bool operator==(const WordPair&, const WordPair&) = default;
};

TEST(Codec, WordsPerItemStride) {
  EXPECT_EQ(kWordsPerItem<std::uint8_t>, 1u);
  EXPECT_EQ(kWordsPerItem<std::int32_t>, 1u);
  EXPECT_EQ(kWordsPerItem<std::int64_t>, 1u);
  EXPECT_EQ(kWordsPerItem<ThreeInts>, 2u);
  EXPECT_EQ(kWordsPerItem<WordPair>, 2u);
}

TEST(Codec, RoundTripFuzz) {
  Rng rng(2024);
  for (int it = 0; it < 200; ++it) {
    const auto n = static_cast<std::size_t>(rng.next_below(64));
    std::vector<ThreeInts> items(n);
    for (auto& x : items) {
      x.a = static_cast<std::int32_t>(rng.next_in(-1000000, 1000000));
      x.b = static_cast<std::int32_t>(rng.next_in(-1000000, 1000000));
      x.c = static_cast<std::int32_t>(rng.next_in(-1000000, 1000000));
    }
    const auto words = pack_words<ThreeInts>(items);
    ASSERT_EQ(words.size(), n * kWordsPerItem<ThreeInts>);
    EXPECT_EQ(unpack_words<ThreeInts>(words), items);
  }
}

TEST(Codec, RoundTripScalarAndEmpty) {
  const std::vector<std::int64_t> scalars{-1, 0, 1, INT64_MIN, INT64_MAX};
  EXPECT_EQ(unpack_words<std::int64_t>(pack_words<std::int64_t>(scalars)),
            scalars);
  EXPECT_TRUE(pack_words<WordPair>({}).empty());
  EXPECT_TRUE(unpack_words<WordPair>({}).empty());
}

TEST(Codec, PaddingBytesAreZeroed) {
  // Equal items must produce bitwise-equal payloads: the 4 padding bytes
  // of each ThreeInts stride are zeroed, never uninitialized.
  const std::vector<ThreeInts> items{{1, 2, 3}, {1, 2, 3}};
  const auto words = pack_words<ThreeInts>(items);
  ASSERT_EQ(words.size(), 4u);
  EXPECT_EQ(words[0], words[2]);
  EXPECT_EQ(words[1], words[3]);
}

TEST(Codec, TruncatedPayloadThrows) {
  const std::vector<std::int64_t> odd(3, 0);  // 3 words, 2-word stride
  EXPECT_THROW(unpack_words<ThreeInts>(odd), CodecError);
}

TEST(Codec, CorruptPayloadErrorsCarryTheTaxonomy) {
  // A CodecError is a monge::Error with code kCodec — and, unlike the
  // MONGE_CHECK logic_error family, a runtime_error: corrupt payloads are
  // an input/transport condition, not a programming bug.
  const std::vector<std::int64_t> bad(5, 42);  // 5 words, 2-word stride
  try {
    unpack_words<WordPair>(bad);
    FAIL() << "expected CodecError";
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), ErrorCode::kCodec);
    EXPECT_NE(std::string(e.what()).find("5 words"), std::string::npos);
  }
  EXPECT_THROW(unpack_words<WordPair>(bad), std::runtime_error);
}

TEST(Codec, CorruptPayloadEveryTruncationLength) {
  // Every word count that is not a multiple of the stride throws; every
  // multiple decodes.
  for (std::size_t len = 0; len <= 8; ++len) {
    const std::vector<std::int64_t> payload(len, 7);
    if (len % kWordsPerItem<ThreeInts> == 0) {
      EXPECT_EQ(unpack_words<ThreeInts>(payload).size(),
                len / kWordsPerItem<ThreeInts>);
    } else {
      EXPECT_THROW(unpack_words<ThreeInts>(payload), CodecError);
    }
  }
}

TEST(Codec, MessageDecodeRejectsCorruptPayload) {
  // The typed-message path surfaces the same CodecError: a Message whose
  // payload lost a word (transport corruption) fails decode<T>().
  mpc::Message msg;
  msg.from = 0;
  msg.tag = 0;
  msg.payload = {1, 2, 3};  // not a multiple of the 2-word stride
  EXPECT_THROW(msg.decode<ThreeInts>(), CodecError);
  msg.payload = {1, 2, 3, 4};
  EXPECT_NO_THROW(msg.decode<ThreeInts>());
}

}  // namespace
}  // namespace monge::util
