// SolverService: request digests, in-flight dedup (K identical concurrent
// submits -> exactly one underlying solve), bounded admission (reject and
// block), LRU result-cache behavior incl. eviction, bit-identity of
// service answers vs direct Solver::solve on all three backends (fresh and
// cached), shutdown drain, and the chaos path (unrecoverable MpcSim fault
// -> degraded report through the future).
#include "api/service.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <future>
#include <latch>
#include <thread>
#include <utility>
#include <vector>

#include "lis/sequential.h"
#include "util/error.h"
#include "util/rng.h"

namespace monge {
namespace {

std::vector<std::int64_t> random_sequence(std::int64_t n, std::int64_t hi,
                                          Rng& rng) {
  std::vector<std::int64_t> seq(static_cast<std::size_t>(n));
  for (auto& x : seq) x = rng.next_in(0, hi);
  return seq;
}

TEST(RequestDigest, IdenticalPayloadsDigestEqually) {
  Rng rng(1);
  const auto seq = random_sequence(32, 100, rng);
  const LisRequest a{.seq = seq, .want_kernel = true, .windows = {{1, 5}}};
  const LisRequest b{.seq = seq, .want_kernel = true, .windows = {{1, 5}}};
  EXPECT_EQ(request_digest(a), request_digest(b));

  MultiplyRequest m1{Perm::identity(8), Perm::reverse(8)};
  MultiplyRequest m2{Perm::identity(8), Perm::reverse(8)};
  EXPECT_EQ(request_digest(m1), request_digest(m2));
}

TEST(RequestDigest, DistinguishesPayloadsAndFieldBoundaries) {
  // The s/t split is length-prefixed: moving one element across the
  // boundary must change the digest even though the concatenation agrees.
  const LcsRequest split_a{.s = {1, 2}, .t = {3}};
  const LcsRequest split_b{.s = {1}, .t = {2, 3}};
  EXPECT_NE(request_digest(split_a), request_digest(split_b));

  Rng rng(2);
  const auto seq = random_sequence(32, 100, rng);
  const LisRequest plain{.seq = seq};
  const LisRequest kernel{.seq = seq, .want_kernel = true};
  const LisRequest windowed{.seq = seq, .windows = {{0, 3}}};
  EXPECT_NE(request_digest(plain), request_digest(kernel));
  EXPECT_NE(request_digest(plain), request_digest(windowed));

  MultiplyRequest full{Perm::identity(8), Perm::identity(8),
                       MultiplyRequest::Kind::kFull};
  MultiplyRequest sub{Perm::identity(8), Perm::identity(8),
                      MultiplyRequest::Kind::kSubunit};
  EXPECT_NE(request_digest(full), request_digest(sub));

  // Different request types never share a digest (type tag word).
  const LisRequest lis_like{.seq = {1, 2}};
  const LcsRequest lcs_like{.s = {1, 2}, .t = {}};
  EXPECT_NE(request_digest(lis_like), request_digest(lcs_like));
}

TEST(SolverService, OptionsValidatedAtConstruction) {
  EXPECT_NO_THROW(SolverService{ServiceOptions{.workers = 2}});
  ServiceOptions bad_depth;
  bad_depth.queue_depth = 0;
  EXPECT_THROW(SolverService{bad_depth}, InvalidRequestError);
  ServiceOptions bad_admission;
  bad_admission.admission = static_cast<AdmissionPolicy>(7);
  EXPECT_THROW(SolverService{bad_admission}, InvalidRequestError);
  // Nested solver knobs are validated eagerly, on the constructing thread.
  ServiceOptions bad_solver;
  bad_solver.solver.mpc_delta = 2.0;
  EXPECT_THROW(SolverService{bad_solver}, InvalidRequestError);
}

TEST(SolverService, MatchesDirectSolverOnSequentialAndReference) {
  for (const auto backend :
       {SolverBackend::kSequential, SolverBackend::kReference}) {
    Rng rng(10);
    SolverOptions sopts;
    sopts.backend = backend;
    Solver direct(sopts);
    SolverService service({.solver = sopts, .workers = 2});

    const MultiplyRequest mul{Perm::random(32, rng), Perm::random(32, rng)};
    const MultiplyRequest sub{Perm::random_sub(20, 28, 12, rng),
                              Perm::random_sub(28, 24, 14, rng),
                              MultiplyRequest::Kind::kSubunit};
    const LisRequest lis{.seq = random_sequence(48, 200, rng),
                         .want_kernel = true,
                         .windows = {{0, 10}, {5, 30}, {7, 2}}};
    const LcsRequest lcs{.s = random_sequence(24, 6, rng),
                         .t = random_sequence(30, 6, rng)};

    auto fm = service.submit(mul);
    auto fs = service.submit(sub);
    auto fl = service.submit(lis);
    auto fc = service.submit(lcs);

    EXPECT_EQ(fm.get().c, direct.solve(mul).c);
    EXPECT_EQ(fs.get().c, direct.solve(sub).c);
    const auto lis_direct = direct.solve(lis);
    const auto lis_served = fl.get();
    EXPECT_EQ(lis_served.lis, lis_direct.lis);
    EXPECT_EQ(lis_served.kernel, lis_direct.kernel);
    EXPECT_EQ(lis_served.window_lis, lis_direct.window_lis);
    const auto lcs_direct = direct.solve(lcs);
    const auto lcs_served = fc.get();
    EXPECT_EQ(lcs_served.lcs, lcs_direct.lcs);
    EXPECT_EQ(lcs_served.matches, lcs_direct.matches);
  }
}

TEST(SolverService, MatchesDirectSolverOnMpcSimIncludingRounds) {
  Rng rng(11);
  SolverOptions sopts;
  sopts.backend = SolverBackend::kMpcSim;
  sopts.cluster.threads = 1;
  Solver direct(sopts);
  SolverService service({.solver = sopts, .workers = 1});

  const LisRequest lis{.seq = random_sequence(96, 1 << 12, rng)};
  const LcsRequest lcs{.s = random_sequence(20, 5, rng),
                       .t = random_sequence(24, 5, rng)};

  auto fl = service.submit(lis);
  auto fc = service.submit(lcs);
  const auto lis_direct = direct.solve(lis);
  const auto lis_served = fl.get();
  EXPECT_EQ(lis_served.lis, lis_direct.lis);
  EXPECT_EQ(lis_served.rounds, lis_direct.rounds);
  EXPECT_EQ(lis_served.merge_levels, lis_direct.merge_levels);
  const auto lcs_direct = direct.solve(lcs);
  const auto lcs_served = fc.get();
  EXPECT_EQ(lcs_served.lcs, lcs_direct.lcs);
  EXPECT_EQ(lcs_served.matches, lcs_direct.matches);
  EXPECT_EQ(lcs_served.rounds, lcs_direct.rounds);
}

TEST(SolverService, DedupCoalescesConcurrentIdenticalSubmits) {
  Rng rng(12);
  std::latch release(1);
  ServiceOptions opts;
  opts.workers = 1;
  opts.solve_hook = [&] { release.wait(); };
  SolverService service(opts);

  const LisRequest req{.seq = random_sequence(64, 500, rng),
                       .want_kernel = true};
  constexpr int kIdentical = 6;
  std::vector<std::future<LisResult>> futs;
  for (int i = 0; i < kIdentical; ++i) futs.push_back(service.submit(req));
  // The worker is held at the hook, so every later submit coalesced onto
  // the single in-flight computation instead of spending a queue slot.
  release.count_down();

  std::vector<LisResult> results;
  for (auto& f : futs) results.push_back(f.get());
  for (const auto& r : results) {
    EXPECT_EQ(r.lis, results[0].lis);
    EXPECT_EQ(r.kernel, results[0].kernel);
  }
  const auto stats = service.stats();
  EXPECT_EQ(stats.submitted, kIdentical);
  EXPECT_EQ(stats.admitted, 1);
  EXPECT_EQ(stats.solves, 1);  // exactly ONE underlying solve
  EXPECT_EQ(stats.coalesced, kIdentical - 1);
  EXPECT_EQ(stats.cache_hits, 0);
  EXPECT_EQ(stats.rejected, 0);
}

TEST(SolverService, QueueFullRejectsWithOverloadedStatus) {
  Rng rng(13);
  std::latch entered(1);
  std::latch release(1);
  std::atomic<bool> first_call{true};
  ServiceOptions opts;
  opts.workers = 1;
  opts.queue_depth = 1;
  opts.admission = AdmissionPolicy::kReject;
  opts.solve_hook = [&] {
    if (first_call.exchange(false)) entered.count_down();
    release.wait();
  };
  SolverService service(opts);

  const LisRequest plug{.seq = random_sequence(32, 100, rng)};
  const LisRequest queued{.seq = random_sequence(33, 100, rng)};
  const LisRequest refused_a{.seq = random_sequence(34, 100, rng)};
  const LcsRequest refused_b{.s = {1, 2, 3}, .t = {3, 2, 1}};

  auto f_plug = service.submit(plug);
  entered.wait();  // the worker holds `plug`; the queue is empty again
  auto f_queued = service.submit(queued);  // fills the depth-1 queue

  // Queue full: try_submit reports kOverloaded, submit throws.
  auto rejected = service.try_submit(refused_a);
  EXPECT_FALSE(rejected.admitted());
  EXPECT_EQ(rejected.admission.status, SolveStatus::kOverloaded);
  EXPECT_FALSE(rejected.future.valid());
  EXPECT_THROW(service.submit(refused_b), OverloadedError);

  // Coalescing and cache hits bypass admission: an identical in-flight
  // request attaches even though the queue is full.
  auto f_coalesced = service.submit(queued);

  release.count_down();
  EXPECT_EQ(f_plug.get().lis, lis::lis_length(plug.seq));
  EXPECT_EQ(f_queued.get().lis, lis::lis_length(queued.seq));
  EXPECT_EQ(f_coalesced.get().lis, lis::lis_length(queued.seq));
  const auto stats = service.stats();
  EXPECT_EQ(stats.rejected, 2);
  EXPECT_EQ(stats.coalesced, 1);
  EXPECT_EQ(stats.solves, 2);
}

TEST(SolverService, BlockingAdmissionWaitsForASlot) {
  Rng rng(14);
  std::latch entered(1);
  std::latch release(1);
  std::atomic<bool> first_call{true};
  ServiceOptions opts;
  opts.workers = 1;
  opts.queue_depth = 1;
  opts.admission = AdmissionPolicy::kBlock;
  opts.solve_hook = [&] {
    if (first_call.exchange(false)) entered.count_down();
    release.wait();
  };
  SolverService service(opts);

  const LisRequest a{.seq = random_sequence(32, 100, rng)};
  const LisRequest b{.seq = random_sequence(33, 100, rng)};
  const LisRequest c{.seq = random_sequence(34, 100, rng)};

  auto fa = service.submit(a);
  entered.wait();
  auto fb = service.submit(b);  // queue now full

  std::future<LisResult> fc;
  std::thread blocked([&] { fc = service.submit(c); });  // must block
  release.count_down();
  blocked.join();

  EXPECT_EQ(fa.get().lis, lis::lis_length(a.seq));
  EXPECT_EQ(fb.get().lis, lis::lis_length(b.seq));
  EXPECT_EQ(fc.get().lis, lis::lis_length(c.seq));
  const auto stats = service.stats();
  EXPECT_EQ(stats.rejected, 0);
  EXPECT_EQ(stats.admitted, 3);
}

TEST(SolverService, CacheServesRepeatsAndEvictsLeastRecentlyUsed) {
  Rng rng(15);
  ServiceOptions opts;
  opts.workers = 1;
  opts.cache_capacity = 2;
  SolverService service(opts);

  const LisRequest a{.seq = random_sequence(40, 300, rng)};
  const LisRequest b{.seq = random_sequence(41, 300, rng)};
  const LisRequest c{.seq = random_sequence(42, 300, rng)};

  const auto a_fresh = service.submit(a).get();
  EXPECT_EQ(service.stats().solves, 1);
  const auto a_cached = service.submit(a).get();  // hit
  EXPECT_EQ(service.stats().solves, 1);
  EXPECT_EQ(service.stats().cache_hits, 1);
  EXPECT_EQ(a_cached.lis, a_fresh.lis);

  // The cache is shared across submit flavors; try_submit flags the hit.
  auto a_try = service.try_submit(a);
  ASSERT_TRUE(a_try.admitted());
  const auto a_try_res = a_try.future.get();
  EXPECT_TRUE(a_try_res.report.cached);
  EXPECT_EQ(a_try_res.value.lis, a_fresh.lis);
  EXPECT_EQ(service.stats().cache_hits, 2);

  (void)service.submit(b).get();  // LRU: {B, A}
  (void)service.submit(c).get();  // evicts A -> {C, B}
  EXPECT_EQ(service.stats().solves, 3);
  (void)service.submit(a).get();  // miss: A was evicted
  EXPECT_EQ(service.stats().solves, 4);
  (void)service.submit(c).get();  // C survived the eviction: hit
  EXPECT_EQ(service.stats().solves, 4);
  EXPECT_EQ(service.stats().cache_hits, 3);
}

TEST(SolverService, CachedResultsBitIdenticalToFreshOnAllBackends) {
  Rng rng(16);
  const auto seq = random_sequence(96, 1 << 12, rng);
  const auto s = random_sequence(20, 5, rng);
  const auto t = random_sequence(24, 5, rng);
  for (const auto backend :
       {SolverBackend::kSequential, SolverBackend::kMpcSim,
        SolverBackend::kReference}) {
    SolverOptions sopts;
    sopts.backend = backend;
    sopts.cluster.threads = 1;
    Solver direct(sopts);
    SolverService service({.solver = sopts, .workers = 1});

    const LisRequest lis{.seq = seq, .want_kernel = true};
    const LcsRequest lcs{.s = s, .t = t};
    const auto lis_fresh = service.submit(lis).get();
    const auto lis_cached = service.submit(lis).get();
    const auto lcs_fresh = service.submit(lcs).get();
    const auto lcs_cached = service.submit(lcs).get();
    EXPECT_GE(service.stats().cache_hits, 2);

    const auto lis_direct = direct.solve(lis);
    EXPECT_EQ(lis_cached.lis, lis_fresh.lis);
    EXPECT_EQ(lis_cached.kernel, lis_fresh.kernel);
    EXPECT_EQ(lis_cached.rounds, lis_fresh.rounds);
    EXPECT_EQ(lis_fresh.lis, lis_direct.lis);
    EXPECT_EQ(lis_fresh.kernel, lis_direct.kernel);
    EXPECT_EQ(lis_fresh.rounds, lis_direct.rounds);
    EXPECT_EQ(lcs_cached.lcs, lcs_fresh.lcs);
    EXPECT_EQ(lcs_cached.matches, lcs_fresh.matches);
    EXPECT_EQ(lcs_cached.rounds, lcs_fresh.rounds);
    EXPECT_EQ(lcs_fresh.lcs, direct.solve(lcs).lcs);
  }
}

TEST(SolverService, ConcurrentSubmitsFromManyThreads) {
  Rng rng(17);
  // A pool of request templates every submitter draws from, so duplicate
  // traffic exercises the cache and in-flight dedup under contention.
  std::vector<LisRequest> lis_pool;
  for (int i = 0; i < 4; ++i) {
    lis_pool.push_back({.seq = random_sequence(40 + i, 200, rng)});
  }
  std::vector<LcsRequest> lcs_pool;
  for (int i = 0; i < 3; ++i) {
    lcs_pool.push_back({.s = random_sequence(16 + i, 4, rng),
                        .t = random_sequence(18 + i, 4, rng)});
  }
  std::vector<MultiplyRequest> mul_pool;
  for (int i = 0; i < 3; ++i) {
    mul_pool.push_back({Perm::random(24, rng), Perm::random(24, rng)});
  }

  Solver direct;
  std::vector<std::int64_t> lis_expected, lcs_expected;
  std::vector<Perm> mul_expected;
  for (const auto& r : lis_pool) lis_expected.push_back(direct.solve(r).lis);
  for (const auto& r : lcs_pool) lcs_expected.push_back(direct.solve(r).lcs);
  for (const auto& r : mul_pool) mul_expected.push_back(direct.solve(r).c);

  SolverService service({.workers = 2});
  constexpr int kThreads = 4;
  constexpr int kPerThread = 30;
  std::atomic<int> failures{0};
  std::vector<std::thread> submitters;
  for (int tid = 0; tid < kThreads; ++tid) {
    submitters.emplace_back([&, tid] {
      for (int i = 0; i < kPerThread; ++i) {
        const int pick = (tid * 7 + i) % 10;
        if (pick < 4) {
          auto f = service.submit(lis_pool[static_cast<std::size_t>(pick)]);
          if (f.get().lis != lis_expected[static_cast<std::size_t>(pick)]) {
            ++failures;
          }
        } else if (pick < 7) {
          const int k = pick - 4;
          auto f = service.submit(lcs_pool[static_cast<std::size_t>(k)]);
          if (f.get().lcs != lcs_expected[static_cast<std::size_t>(k)]) {
            ++failures;
          }
        } else {
          const int k = pick - 7;
          auto f = service.submit(mul_pool[static_cast<std::size_t>(k)]);
          if (!(f.get().c == mul_expected[static_cast<std::size_t>(k)])) {
            ++failures;
          }
        }
      }
    });
  }
  for (auto& th : submitters) th.join();
  EXPECT_EQ(failures, 0);

  const auto stats = service.stats();
  EXPECT_EQ(stats.submitted, kThreads * kPerThread);
  // Each of the 10 templates is solved exactly once: after the first
  // completion it is cache-resident (capacity never overflows here), and
  // while in flight identical submits coalesce.
  EXPECT_EQ(stats.solves, 10);
  EXPECT_EQ(stats.cache_hits + stats.coalesced + stats.solves,
            stats.submitted);
  EXPECT_EQ(stats.rejected, 0);
}

TEST(SolverService, ShutdownDrainsAdmittedWork) {
  Rng rng(18);
  std::latch release(1);
  std::vector<LisRequest> reqs;
  for (int i = 0; i < 4; ++i) {
    reqs.push_back({.seq = random_sequence(30 + i, 100, rng)});
  }
  std::vector<std::future<LisResult>> futs;
  std::thread releaser;
  {
    ServiceOptions opts;
    opts.workers = 1;
    opts.solve_hook = [&] { release.wait(); };
    SolverService service(opts);
    for (const auto& r : reqs) futs.push_back(service.submit(r));
    releaser = std::thread([&] {
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
      release.count_down();
    });
    // ~SolverService: three of the four jobs are still queued (the worker
    // is held at the hook) — all must drain, none may be dropped.
  }
  releaser.join();
  for (std::size_t i = 0; i < reqs.size(); ++i) {
    ASSERT_TRUE(futs[i].valid());
    EXPECT_EQ(futs[i].get().lis, lis::lis_length(reqs[i].seq));
  }
}

TEST(ServiceChaos, UnrecoverableFaultDegradesThroughTheFuture) {
  Rng rng(19);
  const auto seq = random_sequence(96, 1 << 12, rng);
  ServiceOptions opts;
  opts.workers = 1;
  opts.solver.backend = SolverBackend::kMpcSim;
  opts.solver.cluster.num_machines = 4;
  opts.solver.cluster.space_words = 1 << 20;
  opts.solver.cluster.threads = 1;
  // Crash in an uncheckpointed round: recovery is impossible by design
  // (same schedule as SolverTrySolve.UnrecoverableFaultDegradesToSequential).
  opts.solver.cluster.checkpoint_interval = 2;
  opts.solver.cluster.faults.scheduled.push_back(
      {/*round=*/1, /*machine=*/0, mpc::FaultKind::kCrash});
  SolverService service(opts);

  const LisRequest req{.seq = seq};
  auto sub = service.try_submit(req);
  ASSERT_TRUE(sub.admitted());
  const auto res = sub.future.get();
  ASSERT_TRUE(res.ok());
  EXPECT_TRUE(res.report.degraded);
  EXPECT_EQ(res.report.backend, SolverBackend::kSequential);
  EXPECT_FALSE(res.report.cached);
  EXPECT_NE(res.report.message.find("degraded to sequential"),
            std::string::npos);
  EXPECT_EQ(res.value.lis, lis::lis_length(seq));

  // Degraded values are not cached: an identical try_submit re-solves
  // (the fresh per-worker cluster replays the same deterministic crash).
  auto again = service.try_submit(req);
  ASSERT_TRUE(again.admitted());
  const auto res2 = again.future.get();
  EXPECT_TRUE(res2.report.degraded);
  EXPECT_FALSE(res2.report.cached);
  EXPECT_EQ(res2.value.lis, res.value.lis);
  EXPECT_EQ(service.stats().solves, 2);
  EXPECT_EQ(service.stats().cache_hits, 0);

  // The throwing flavor surfaces the taxonomy through future::get().
  auto thrown = service.submit(req);
  EXPECT_THROW(thrown.get(), FaultError);
  EXPECT_EQ(service.stats().solve_errors, 1);
}

}  // namespace
}  // namespace monge
