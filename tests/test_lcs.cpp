#include "lcs/hunt_szymanski.h"

#include <gtest/gtest.h>

#include "lcs/mpc_lcs.h"
#include "util/rng.h"

namespace monge::lcs {
namespace {

std::vector<std::int64_t> str(const char* s) {
  std::vector<std::int64_t> v;
  for (const char* p = s; *p; ++p) v.push_back(*p);
  return v;
}

TEST(LcsSequential, KnownValues) {
  EXPECT_EQ(lcs_dp(str("abcde"), str("ace")), 3);
  EXPECT_EQ(lcs_dp(str("abc"), str("def")), 0);
  EXPECT_EQ(lcs_dp(str(""), str("abc")), 0);
  EXPECT_EQ(lcs_dp(str("aaaa"), str("aa")), 2);
  EXPECT_EQ(lcs_hs(str("abcde"), str("ace")), 3);
  EXPECT_EQ(lcs_hs(str("aaaa"), str("aa")), 2);
}

TEST(LcsSequential, HuntSzymanskiMatchesDpRandom) {
  Rng rng(11);
  for (int trial = 0; trial < 40; ++trial) {
    const std::int64_t ns = rng.next_in(0, 40), nt = rng.next_in(0, 40);
    std::vector<std::int64_t> s(static_cast<std::size_t>(ns)),
        t(static_cast<std::size_t>(nt));
    const std::int64_t sigma = rng.next_in(2, 6);
    for (auto& x : s) x = rng.next_in(0, sigma);
    for (auto& x : t) x = rng.next_in(0, sigma);
    ASSERT_EQ(lcs_hs(s, t), lcs_dp(s, t));
  }
}

TEST(LcsSequential, MatchSequenceOrdering) {
  // s = "ab", t = "aba": pairs (i asc, j desc):
  // s[0]='a' matches j=2,0 (desc); s[1]='b' matches j=1.
  const auto seq = hs_match_sequence(str("ab"), str("aba"));
  EXPECT_EQ(seq, (std::vector<std::int64_t>{2, 0, 1}));
}

TEST(LcsSequential, MatchCountAgreesWithMatchSequenceSize) {
  Rng rng(17);
  for (int trial = 0; trial < 40; ++trial) {
    const std::int64_t ns = rng.next_in(0, 50), nt = rng.next_in(0, 50);
    std::vector<std::int64_t> s(static_cast<std::size_t>(ns)),
        t(static_cast<std::size_t>(nt));
    const std::int64_t sigma = rng.next_in(1, 5);
    for (auto& x : s) x = rng.next_in(0, sigma);
    for (auto& x : t) x = rng.next_in(0, sigma);
    ASSERT_EQ(hs_match_count(s, t),
              static_cast<std::int64_t>(hs_match_sequence(s, t).size()));
  }
}

TEST(LcsSequential, OccurrenceTableReusableAcrossQueries) {
  Rng rng(19);
  std::vector<std::int64_t> t(60);
  for (auto& x : t) x = rng.next_in(0, 4);
  const HsOccurrences occ(t);  // built once, queried with many patterns
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<std::int64_t> s(static_cast<std::size_t>(rng.next_in(0, 40)));
    for (auto& x : s) x = rng.next_in(0, 5);
    ASSERT_EQ(occ.match_sequence(s), hs_match_sequence(s, t));
    ASSERT_EQ(occ.match_count(s), hs_match_count(s, t));
  }
}

TEST(MpcLcs, MatchesDpOracle) {
  Rng rng(23);
  mpc::MpcConfig cfg;
  cfg.num_machines = 6;
  cfg.space_words = 1 << 22;
  cfg.strict = false;
  cfg.threads = 2;
  for (int trial = 0; trial < 6; ++trial) {
    mpc::Cluster cluster(cfg);
    const std::int64_t ns = rng.next_in(10, 60), nt = rng.next_in(10, 60);
    std::vector<std::int64_t> s(static_cast<std::size_t>(ns)),
        t(static_cast<std::size_t>(nt));
    for (auto& x : s) x = rng.next_in(0, 4);
    for (auto& x : t) x = rng.next_in(0, 4);
    const auto res = mpc_lcs(cluster, s, t);
    ASSERT_EQ(res.lcs, lcs_dp(s, t));
    EXPECT_GT(res.matches, 0);
  }
}

TEST(MpcLcs, DisjointAlphabetsGiveZero) {
  mpc::MpcConfig cfg;
  cfg.num_machines = 2;
  cfg.threads = 1;
  mpc::Cluster cluster(cfg);
  const auto res = mpc_lcs(cluster, str("aaa"), str("bbb"));
  EXPECT_EQ(res.lcs, 0);
  EXPECT_EQ(res.matches, 0);
}

}  // namespace
}  // namespace monge::lcs
