// Shared helpers for the test suite.
#pragma once

#include <algorithm>
#include <cstdint>
#include <vector>

#include "monge/delta.h"
#include "monge/distribution.h"
#include "monge/permutation.h"
#include "util/check.h"

namespace monge::testing {

/// Performs the §3.1 decomposition of a product PA ⊡ PB into H colored
/// subproblem results: PA is split into H column blocks, PB into H row
/// blocks, each pair is compacted, multiplied (with the naive oracle),
/// re-expanded through M_A/M_B, and the union is returned as a colored
/// point set. Lemma 3.2 says combining this set must reproduce PA ⊡ PB.
inline ColoredPointSet make_colored_split(const Perm& a, const Perm& b,
                                          std::int32_t h) {
  const std::int64_t n = a.rows();
  MONGE_CHECK(a.is_full_permutation() && b.is_full_permutation());
  MONGE_CHECK(b.rows() == n && h >= 1);

  std::vector<ColoredPoint> pts;
  for (std::int32_t q = 0; q < h; ++q) {
    const std::int64_t c_lo = q * n / h;
    const std::int64_t c_hi = (q + 1) * n / h;
    if (c_lo == c_hi) continue;

    // PA,q: rows of A whose column lies in [c_lo, c_hi), compacted.
    std::vector<std::int32_t> rows_a;
    Perm pa(c_hi - c_lo, c_hi - c_lo);
    for (std::int64_t r = 0; r < n; ++r) {
      const std::int32_t c = a.col_of(r);
      if (c >= c_lo && c < c_hi) {
        pa.set(static_cast<std::int64_t>(rows_a.size()), c - c_lo);
        rows_a.push_back(static_cast<std::int32_t>(r));
      }
    }
    // PB,q: rows [c_lo, c_hi) of B, columns compacted by rank.
    std::vector<std::int32_t> cols_b;
    for (std::int64_t r = c_lo; r < c_hi; ++r) cols_b.push_back(b.col_of(r));
    std::sort(cols_b.begin(), cols_b.end());
    Perm pb(c_hi - c_lo, c_hi - c_lo);
    for (std::int64_t r = c_lo; r < c_hi; ++r) {
      const auto it =
          std::lower_bound(cols_b.begin(), cols_b.end(), b.col_of(r));
      pb.set(r - c_lo, it - cols_b.begin());
    }

    const Perm pc = multiply_naive(pa, pb);
    for (const Point& p : pc.points()) {
      pts.push_back(ColoredPoint{rows_a[static_cast<std::size_t>(p.row)],
                                 cols_b[static_cast<std::size_t>(p.col)], q});
    }
  }
  ColoredPointSet set(n, h, std::move(pts));
  MONGE_CHECK(set.is_full_union());
  return set;
}

/// All permutations of [0,n) in lexicographic order (n small).
inline std::vector<std::vector<std::int32_t>> all_permutations(int n) {
  std::vector<std::int32_t> p(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) p[static_cast<std::size_t>(i)] = i;
  std::vector<std::vector<std::int32_t>> out;
  do {
    out.push_back(p);
  } while (std::next_permutation(p.begin(), p.end()));
  return out;
}

}  // namespace monge::testing
