// Chaos differential harness for the fault-injected MPC runtime.
//
// The core guarantee under test: a recoverable seeded fault schedule is
// INVISIBLE — the run's outputs are bit-identical to the fault-free run,
// the paper-side statistics (rounds, total_comm_words) are unchanged, and
// every cost of surviving the schedule lands on the recovery ledger. The
// harness drives >= 500 distinct seeded schedules (kSeedsPerRoute per
// route) across the three MpcSim routes (unit-Monge multiply, LIS, LCS),
// plus a thread-count determinism check: the same schedule must produce
// the same ClusterStats at 1, 2 and hardware threads.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "core/mpc_multiply.h"
#include "lcs/mpc_lcs.h"
#include "lis/mpc_lis.h"
#include "mpc/cluster.h"
#include "mpc/fault.h"
#include "util/rng.h"

namespace monge {
namespace {

using mpc::Cluster;
using mpc::ClusterStats;
using mpc::FaultKind;
using mpc::FaultPlan;
using mpc::MpcConfig;
using mpc::RecoveryStats;

// 3 routes x 170 seeds = 510 seeded fault schedules per suite run.
constexpr std::uint64_t kSeedsPerRoute = 170;

MpcConfig chaos_config(std::uint64_t seed, unsigned threads = 1) {
  MpcConfig cfg;
  cfg.num_machines = 4;
  cfg.space_words = 1 << 20;
  cfg.strict = true;
  cfg.threads = threads;
  if (seed != 0) {
    cfg.faults.seed = seed;
    cfg.faults.crash_prob = 0.02;
    cfg.faults.straggle_prob = 0.05;
    cfg.faults.drop_prob = 0.03;
    cfg.faults.duplicate_prob = 0.03;
    cfg.faults.corrupt_prob = 0.02;
    cfg.faults.max_round_retries = 16;
  }
  return cfg;
}

/// One route execution: a flat fingerprint of the outputs plus the stats.
struct RouteRun {
  std::vector<std::int64_t> fingerprint;
  ClusterStats stats;
};

RouteRun run_multiply(const MpcConfig& cfg) {
  Rng rng(1234);
  const Perm a = Perm::random(48, rng);
  const Perm b = Perm::random(48, rng);
  Cluster c(cfg);
  const Perm prod = core::mpc_unit_monge_multiply(c, a, b);
  RouteRun out;
  for (const std::int32_t col : prod.row_to_col()) out.fingerprint.push_back(col);
  out.stats = c.stats();
  return out;
}

RouteRun run_lis(const MpcConfig& cfg) {
  Rng rng(5678);
  std::vector<std::int64_t> seq(96);
  for (auto& x : seq) x = rng.next_in(0, 1 << 12);
  Cluster c(cfg);
  const auto res = lis::mpc_lis(c, seq, {});
  RouteRun out;
  out.fingerprint.push_back(res.lis);
  for (const Point& pt : res.kernel.points()) {
    out.fingerprint.push_back(pt.row);
    out.fingerprint.push_back(pt.col);
  }
  out.stats = c.stats();
  return out;
}

RouteRun run_lcs(const MpcConfig& cfg) {
  Rng rng(9012);
  std::vector<std::int64_t> s(48), t(48);
  for (auto& x : s) x = rng.next_in(0, 6);
  for (auto& x : t) x = rng.next_in(0, 6);
  Cluster c(cfg);
  const auto res = lcs::mpc_lcs(c, s, t);
  RouteRun out;
  out.fingerprint.push_back(res.lcs);
  out.fingerprint.push_back(res.matches);
  out.stats = c.stats();
  return out;
}

using RouteFn = RouteRun (*)(const MpcConfig&);

struct Route {
  const char* name;
  RouteFn run;
};

constexpr Route kRoutes[] = {
    {"multiply", run_multiply},
    {"lis", run_lis},
    {"lcs", run_lcs},
};

TEST(ChaosHarness, RecoverableSchedulesAreBitInvisible) {
  for (const Route& route : kRoutes) {
    const RouteRun clean = route.run(chaos_config(0));
    ASSERT_EQ(clean.stats.recovery, RecoveryStats{}) << route.name;

    RecoveryStats totals;
    for (std::uint64_t seed = 1; seed <= kSeedsPerRoute; ++seed) {
      const RouteRun chaos = route.run(chaos_config(seed));
      // The schedule must be invisible: identical outputs, identical
      // paper-side accounting.
      ASSERT_EQ(chaos.fingerprint, clean.fingerprint)
          << route.name << " seed " << seed;
      ASSERT_EQ(chaos.stats.rounds, clean.stats.rounds)
          << route.name << " seed " << seed;
      ASSERT_EQ(chaos.stats.total_comm_words, clean.stats.total_comm_words)
          << route.name << " seed " << seed;
      // Chaos runs always checkpoint; everything else accumulates for the
      // coverage assertions below.
      ASSERT_GT(chaos.stats.recovery.checkpoints, 0)
          << route.name << " seed " << seed;
      totals.crashes_recovered += chaos.stats.recovery.crashes_recovered;
      totals.recovery_rounds += chaos.stats.recovery.recovery_rounds;
      totals.recovery_comm_words += chaos.stats.recovery.recovery_comm_words;
      totals.messages_dropped += chaos.stats.recovery.messages_dropped;
      totals.messages_duplicated += chaos.stats.recovery.messages_duplicated;
      totals.messages_corrupted += chaos.stats.recovery.messages_corrupted;
      totals.straggler_delays += chaos.stats.recovery.straggler_delays;
    }
    // Every fault kind fired somewhere across the route's seeds — the
    // harness exercises crash recovery AND all three transport masks.
    EXPECT_GT(totals.crashes_recovered, 0) << route.name;
    EXPECT_GT(totals.recovery_rounds, 0) << route.name;
    EXPECT_GT(totals.recovery_comm_words, 0) << route.name;
    EXPECT_GT(totals.messages_dropped, 0) << route.name;
    EXPECT_GT(totals.messages_duplicated, 0) << route.name;
    EXPECT_GT(totals.messages_corrupted, 0) << route.name;
    EXPECT_GT(totals.straggler_delays, 0) << route.name;
  }
}

TEST(ChaosHarness, SameSeedSameStatsAcrossThreadCounts) {
  // Fault decisions are pure hashes of (seed, kind, round, site) — no RNG
  // stream — so a schedule replays bit-for-bit regardless of how the pool
  // schedules machines. ClusterStats (defaulted ==, recovery included)
  // must match at 1, 2 and hardware threads on every route.
  constexpr std::uint64_t kSeed = 42;
  for (const Route& route : kRoutes) {
    const RouteRun one = route.run(chaos_config(kSeed, /*threads=*/1));
    const RouteRun two = route.run(chaos_config(kSeed, /*threads=*/2));
    const RouteRun hw = route.run(chaos_config(kSeed, /*threads=*/0));
    EXPECT_EQ(one.fingerprint, two.fingerprint) << route.name;
    EXPECT_EQ(one.fingerprint, hw.fingerprint) << route.name;
    EXPECT_EQ(one.stats, two.stats) << route.name;
    EXPECT_EQ(one.stats, hw.stats) << route.name;
  }
}

TEST(ChaosHarness, FaultDrawsArePureFunctions) {
  // Same site, same draw; different seeds decorrelate; draws live in [0,1).
  for (std::uint64_t seed : {1ULL, 7ULL, 123456789ULL}) {
    for (std::int64_t round = 0; round < 8; ++round) {
      const double a =
          mpc::fault_uniform(seed, FaultKind::kCrash, round, 0, 3);
      const double b =
          mpc::fault_uniform(seed, FaultKind::kCrash, round, 0, 3);
      EXPECT_EQ(a, b);
      EXPECT_GE(a, 0.0);
      EXPECT_LT(a, 1.0);
      EXPECT_NE(a, mpc::fault_uniform(seed + 1, FaultKind::kCrash, round, 0, 3));
      EXPECT_NE(a, mpc::fault_uniform(seed, FaultKind::kDrop, round, 0, 3));
    }
  }
}

TEST(ChaosHarness, ChecksumCatchesEveryInjectedCorruption) {
  // The reliable-transport story rests on the checksum detecting the
  // damage corrupt_payload injects. Fuzz it: random payloads of varied
  // sizes, every corruption site the cluster would use.
  Rng rng(77);
  for (int it = 0; it < 500; ++it) {
    const auto n = static_cast<std::size_t>(rng.next_in(1, 64));
    std::vector<std::int64_t> payload(n);
    for (auto& w : payload) {
      w = rng.next_in(std::int64_t{-1} << 40, std::int64_t{1} << 40);
    }
    std::vector<std::int64_t> damaged = payload;
    mpc::corrupt_payload(damaged, /*seed=*/static_cast<std::uint64_t>(it),
                         /*round=*/it % 13, /*site=*/it % 29);
    EXPECT_NE(damaged, payload);
    EXPECT_NE(mpc::payload_checksum(damaged), mpc::payload_checksum(payload));
  }
}

}  // namespace
}  // namespace monge
