#include "monge/subperm.h"

#include <gtest/gtest.h>

#include <string>

#include "monge/distribution.h"
#include "monge/engine.h"
#include "monge/seaweed.h"
#include "util/rng.h"

namespace monge {
namespace {

struct SubCase {
  std::int64_t ra, n2, cb;  // a: ra×n2, b: n2×cb
  std::int64_t ka, kb;      // point counts
  std::uint64_t seed;
};

class SubPerm : public ::testing::TestWithParam<SubCase> {};

TEST_P(SubPerm, MatchesNaiveOracle) {
  const auto& cse = GetParam();
  Rng rng(cse.seed);
  for (int trial = 0; trial < 10; ++trial) {
    const Perm a = Perm::random_sub(cse.ra, cse.n2, cse.ka, rng);
    const Perm b = Perm::random_sub(cse.n2, cse.cb, cse.kb, rng);
    const Perm expect = multiply_naive(a, b);
    // Direct engine path and the padded legacy reference must both agree
    // with the oracle (and hence with each other) on every shape.
    ASSERT_EQ(subunit_multiply(a, b), expect);
    ASSERT_EQ(subunit_multiply_padded(a, b), expect);
  }
}

// ---------------------------------------------------------------------------
// Differential fuzz: the direct (in-arena, no Perm round-trip) subunit path
// vs the §4.1 padded legacy reduction, over >1000 randomized shapes
// including degenerate (zero-dimension, empty, full) cases.
// ---------------------------------------------------------------------------
TEST(SubPermFuzz, DirectMatchesPaddedLegacy) {
  Rng rng(0xC0FFEE);
  SeaweedEngine direct_engine;
  SeaweedEngine padded_engine;
  std::int64_t cases = 0;
  while (cases < 1200) {
    const std::int64_t ra = static_cast<std::int64_t>(rng.next_below(41));
    const std::int64_t n2 = static_cast<std::int64_t>(rng.next_below(41));
    const std::int64_t cb = static_cast<std::int64_t>(rng.next_below(41));
    const std::int64_t max_ka = std::min(ra, n2);
    const std::int64_t max_kb = std::min(n2, cb);
    // Bias toward the boundary densities (empty / full) now and then.
    const auto pick_k = [&](std::int64_t mx) -> std::int64_t {
      const std::uint64_t kind = rng.next_below(6);
      if (kind == 0) return 0;
      if (kind == 1) return mx;
      return static_cast<std::int64_t>(
          rng.next_below(static_cast<std::uint64_t>(mx) + 1));
    };
    const Perm a = Perm::random_sub(ra, n2, pick_k(max_ka), rng);
    const Perm b = Perm::random_sub(n2, cb, pick_k(max_kb), rng);
    const Perm got = subunit_multiply(a, b, direct_engine);
    ASSERT_EQ(got, subunit_multiply_padded(a, b, padded_engine))
        << "ra=" << ra << " n2=" << n2 << " cb=" << cb;
    // Spot-check a slice against the O(n^3) oracle as well.
    if (cases % 8 == 0) {
      ASSERT_EQ(got, multiply_naive(a, b))
          << "ra=" << ra << " n2=" << n2 << " cb=" << cb;
    }
    ++cases;
  }
}

// The raw-span entry point is the same computation without the Perm wrap
// (this is what the LIS kernel recursion calls).
TEST(SubPermFuzz, RawEntryPointMatchesPermWrapper) {
  Rng rng(555);
  SeaweedEngine engine;
  for (int trial = 0; trial < 50; ++trial) {
    const std::int64_t ra = static_cast<std::int64_t>(rng.next_below(30));
    const std::int64_t n2 = static_cast<std::int64_t>(rng.next_below(30));
    const std::int64_t cb = static_cast<std::int64_t>(rng.next_below(30));
    const std::int64_t ka = static_cast<std::int64_t>(
        rng.next_below(static_cast<std::uint64_t>(std::min(ra, n2)) + 1));
    const std::int64_t kb = static_cast<std::int64_t>(
        rng.next_below(static_cast<std::uint64_t>(std::min(n2, cb)) + 1));
    const Perm a = Perm::random_sub(ra, n2, ka, rng);
    const Perm b = Perm::random_sub(n2, cb, kb, rng);
    const auto raw =
        engine.subunit_multiply_raw(a.row_to_col(), b.row_to_col(), b.cols());
    ASSERT_EQ(Perm::from_rows(raw, b.cols()), subunit_multiply(a, b, engine));
  }
}

// Invalid sub-permutations (duplicate columns, out-of-range columns) are
// rejected by the direct path's always-on input validation.
TEST(SubPermFuzz, DirectPathRejectsMalformedInputs) {
  SeaweedEngine engine;
  std::vector<std::int32_t> dup{1, 1, kNone};   // duplicate column 1
  std::vector<std::int32_t> oob{0, 5, kNone};   // column 5 out of [0, 3)
  std::vector<std::int32_t> b{0, 1, 2};
  std::vector<std::int32_t> out(3, kNone);
  EXPECT_THROW(engine.subunit_multiply_into(dup, b, 3, out), std::logic_error);
  EXPECT_THROW(engine.subunit_multiply_into(oob, b, 3, out), std::logic_error);
  EXPECT_THROW(engine.subunit_multiply_into(b, dup, 3, out), std::logic_error);
  EXPECT_THROW(engine.subunit_multiply_into(b, oob, 3, out), std::logic_error);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, SubPerm,
    ::testing::Values(SubCase{4, 4, 4, 2, 3, 1}, SubCase{6, 9, 5, 4, 4, 2},
                      SubCase{10, 7, 12, 5, 6, 3}, SubCase{1, 8, 1, 1, 1, 4},
                      SubCase{16, 16, 16, 16, 16, 5},  // full permutations
                      SubCase{16, 16, 16, 0, 8, 6},    // empty A
                      SubCase{12, 20, 9, 7, 0, 7},     // empty B
                      SubCase{33, 17, 21, 11, 13, 8},
                      SubCase{5, 40, 6, 5, 6, 9},   // tall middle dimension
                      SubCase{40, 5, 40, 3, 2, 10}  // tiny middle dimension
                      ),
    [](const auto& tpi) {
      // Appends, not an operator+ chain: the chain trips a gcc-12
      // -Wrestrict false positive (PR105651) once inlined at -O3.
      std::string name;
      name += "r";
      name += std::to_string(tpi.param.ra);
      name += "m";
      name += std::to_string(tpi.param.n2);
      name += "c";
      name += std::to_string(tpi.param.cb);
      name += "ka";
      name += std::to_string(tpi.param.ka);
      name += "kb";
      name += std::to_string(tpi.param.kb);
      return name;
    });

TEST(SubPermBasics, FullPermutationsReduceToSeaweed) {
  Rng rng(11);
  for (int trial = 0; trial < 5; ++trial) {
    const Perm a = Perm::random(64, rng);
    const Perm b = Perm::random(64, rng);
    EXPECT_EQ(subunit_multiply(a, b), seaweed_multiply(a, b));
  }
}

TEST(SubPermBasics, ZeroDimensions) {
  const Perm a(0, 0);
  const Perm b(0, 0);
  const Perm c = subunit_multiply(a, b);
  EXPECT_EQ(c.rows(), 0);
  EXPECT_EQ(c.cols(), 0);
}

TEST(SubPermBasics, MismatchedDimensionsThrow) {
  const Perm a(3, 4);
  const Perm b(5, 3);
  EXPECT_THROW(subunit_multiply(a, b), std::logic_error);
}

TEST(SubPermBasics, PaddingContentIrrelevance) {
  // §4.1 argues the ∗ blocks are irrelevant. Cross-check: computing
  // through the naive oracle on the *unpadded* sub-permutations agrees
  // with the padded reduction for many shapes (covered above); here we
  // additionally pin down one hand-checked product.
  //   A = [ (0,1) ] in 2×3,  B = [ (1,0) ] in 3×2.
  Perm a(2, 3);
  a.set(0, 1);
  Perm b(3, 2);
  b.set(1, 0);
  const Perm c = subunit_multiply(a, b);
  // PΣ_A(i,j) = [i<=0][j>=2]; PΣ_B(j,k) = [j<=1][k>=1].
  // PΣ_C(i,k) = min_j(PΣ_A(i,j)+PΣ_B(j,k)): for (i,k)=(0,1): j=2 gives 1+0;
  // j=1 gives 0+1 ⇒ min 1... all entries: only C(0,?): the product has a
  // single point at (0,0).
  EXPECT_EQ(c, multiply_naive(a, b));
  EXPECT_EQ(c.point_count(), 1);
  EXPECT_EQ(c.col_of(0), 0);
}

TEST(SubPermBasics, ChainOfProductsStaysSubPermutation) {
  Rng rng(17);
  Perm acc = Perm::random_sub(20, 20, 15, rng);
  for (int step = 0; step < 6; ++step) {
    const Perm next = Perm::random_sub(20, 20, 12 + step, rng);
    acc = subunit_multiply(acc, next);
    // Closure (Lemma 2.2): still a valid sub-permutation; validation
    // happens inside Perm, so reaching here is the assertion. Point count
    // can only shrink or stay equal relative to min of operands.
    EXPECT_LE(acc.point_count(), 20);
  }
}

}  // namespace
}  // namespace monge
