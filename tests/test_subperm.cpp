#include "monge/subperm.h"

#include <gtest/gtest.h>

#include "monge/distribution.h"
#include "monge/seaweed.h"
#include "util/rng.h"

namespace monge {
namespace {

struct SubCase {
  std::int64_t ra, n2, cb;  // a: ra×n2, b: n2×cb
  std::int64_t ka, kb;      // point counts
  std::uint64_t seed;
};

class SubPerm : public ::testing::TestWithParam<SubCase> {};

TEST_P(SubPerm, MatchesNaiveOracle) {
  const auto& cse = GetParam();
  Rng rng(cse.seed);
  for (int trial = 0; trial < 10; ++trial) {
    const Perm a = Perm::random_sub(cse.ra, cse.n2, cse.ka, rng);
    const Perm b = Perm::random_sub(cse.n2, cse.cb, cse.kb, rng);
    ASSERT_EQ(subunit_multiply(a, b), multiply_naive(a, b));
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, SubPerm,
    ::testing::Values(SubCase{4, 4, 4, 2, 3, 1}, SubCase{6, 9, 5, 4, 4, 2},
                      SubCase{10, 7, 12, 5, 6, 3}, SubCase{1, 8, 1, 1, 1, 4},
                      SubCase{16, 16, 16, 16, 16, 5},  // full permutations
                      SubCase{16, 16, 16, 0, 8, 6},    // empty A
                      SubCase{12, 20, 9, 7, 0, 7},     // empty B
                      SubCase{33, 17, 21, 11, 13, 8},
                      SubCase{5, 40, 6, 5, 6, 9},   // tall middle dimension
                      SubCase{40, 5, 40, 3, 2, 10}  // tiny middle dimension
                      ),
    [](const auto& info) {
      return "r" + std::to_string(info.param.ra) + "m" +
             std::to_string(info.param.n2) + "c" +
             std::to_string(info.param.cb) + "ka" +
             std::to_string(info.param.ka) + "kb" +
             std::to_string(info.param.kb);
    });

TEST(SubPermBasics, FullPermutationsReduceToSeaweed) {
  Rng rng(11);
  for (int trial = 0; trial < 5; ++trial) {
    const Perm a = Perm::random(64, rng);
    const Perm b = Perm::random(64, rng);
    EXPECT_EQ(subunit_multiply(a, b), seaweed_multiply(a, b));
  }
}

TEST(SubPermBasics, ZeroDimensions) {
  const Perm a(0, 0);
  const Perm b(0, 0);
  const Perm c = subunit_multiply(a, b);
  EXPECT_EQ(c.rows(), 0);
  EXPECT_EQ(c.cols(), 0);
}

TEST(SubPermBasics, MismatchedDimensionsThrow) {
  const Perm a(3, 4);
  const Perm b(5, 3);
  EXPECT_THROW(subunit_multiply(a, b), std::logic_error);
}

TEST(SubPermBasics, PaddingContentIrrelevance) {
  // §4.1 argues the ∗ blocks are irrelevant. Cross-check: computing
  // through the naive oracle on the *unpadded* sub-permutations agrees
  // with the padded reduction for many shapes (covered above); here we
  // additionally pin down one hand-checked product.
  //   A = [ (0,1) ] in 2×3,  B = [ (1,0) ] in 3×2.
  Perm a(2, 3);
  a.set(0, 1);
  Perm b(3, 2);
  b.set(1, 0);
  const Perm c = subunit_multiply(a, b);
  // PΣ_A(i,j) = [i<=0][j>=2]; PΣ_B(j,k) = [j<=1][k>=1].
  // PΣ_C(i,k) = min_j(PΣ_A(i,j)+PΣ_B(j,k)): for (i,k)=(0,1): j=2 gives 1+0;
  // j=1 gives 0+1 ⇒ min 1... all entries: only C(0,?): the product has a
  // single point at (0,0).
  EXPECT_EQ(c, multiply_naive(a, b));
  EXPECT_EQ(c.point_count(), 1);
  EXPECT_EQ(c.col_of(0), 0);
}

TEST(SubPermBasics, ChainOfProductsStaysSubPermutation) {
  Rng rng(17);
  Perm acc = Perm::random_sub(20, 20, 15, rng);
  for (int step = 0; step < 6; ++step) {
    const Perm next = Perm::random_sub(20, 20, 12 + step, rng);
    acc = subunit_multiply(acc, next);
    // Closure (Lemma 2.2): still a valid sub-permutation; validation
    // happens inside Perm, so reaching here is the assertion. Point count
    // can only shrink or stay equal relative to min of operands.
    EXPECT_LE(acc.point_count(), 20);
  }
}

}  // namespace
}  // namespace monge
