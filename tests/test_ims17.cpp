#include "baselines/ims17.h"

#include <gtest/gtest.h>

#include "lis/sequential.h"
#include "util/rng.h"

namespace monge::baselines {
namespace {

mpc::MpcConfig cfg_of(std::int64_t machines, std::int64_t space = 1 << 22,
                      bool strict = false) {
  mpc::MpcConfig cfg;
  cfg.num_machines = machines;
  cfg.space_words = space;
  cfg.strict = strict;
  cfg.threads = 2;
  return cfg;
}

/// Near-sorted input: LIS = Θ(n), the regime where the (1+ε) guarantee of
/// the net-discretised DP is meaningful.
std::vector<std::int64_t> near_sorted(std::int64_t n, double noise, Rng& rng) {
  std::vector<std::int64_t> seq(static_cast<std::size_t>(n));
  for (std::int64_t i = 0; i < n; ++i) {
    seq[static_cast<std::size_t>(i)] = 4 * i;
  }
  const auto swaps = static_cast<std::int64_t>(noise * static_cast<double>(n));
  for (std::int64_t s = 0; s < swaps; ++s) {
    const std::int64_t i = rng.next_in(0, n - 1), j = rng.next_in(0, n - 1);
    std::swap(seq[static_cast<std::size_t>(i)], seq[static_cast<std::size_t>(j)]);
  }
  return seq;
}

TEST(Ims17, NeverOverestimates) {
  Rng rng(3);
  mpc::Cluster cluster(cfg_of(8));
  for (int trial = 0; trial < 10; ++trial) {
    std::vector<std::int64_t> seq(500);
    for (auto& x : seq) x = rng.next_in(0, 1000);
    const auto res = ims17_lis(cluster, seq, {});
    ASSERT_LE(res.lis_estimate, lis::lis_length(seq));
  }
}

TEST(Ims17, OnePlusEpsOnLongLisInputs) {
  Rng rng(7);
  mpc::Cluster cluster(cfg_of(8));
  for (double eps : {0.5, 0.2, 0.1}) {
    const auto seq = near_sorted(2000, 0.1, rng);
    const std::int64_t exact = lis::lis_length(seq);
    Ims17Options opt;
    opt.eps = eps;
    const auto res = ims17_lis(cluster, seq, opt);
    ASSERT_LE(res.lis_estimate, exact);
    EXPECT_GE(static_cast<double>(res.lis_estimate) * (1.0 + eps),
              static_cast<double>(exact))
        << "eps=" << eps << " exact=" << exact
        << " estimate=" << res.lis_estimate;
  }
}

TEST(Ims17, ExactWithFullValueNet) {
  // With a net containing every distinct value there is no discretisation
  // and the estimate is exact.
  mpc::Cluster cluster(cfg_of(4));
  std::vector<std::int64_t> sorted(256), rev(256);
  for (int i = 0; i < 256; ++i) {
    sorted[static_cast<std::size_t>(i)] = i;
    rev[static_cast<std::size_t>(i)] = 256 - i;
  }
  Ims17Options exact;
  exact.net_size = 256;
  EXPECT_EQ(ims17_lis(cluster, sorted, exact).lis_estimate, 256);
  EXPECT_EQ(ims17_lis(cluster, rev, exact).lis_estimate, 1);
  // The default coarse net still cannot overestimate.
  EXPECT_LE(ims17_lis(cluster, sorted, {}).lis_estimate, 256);
  EXPECT_GE(ims17_lis(cluster, sorted, {}).lis_estimate, 200);
}

TEST(Ims17, FullyScalableUsesMoreRoundsThanGather) {
  Rng rng(5);
  const auto seq = near_sorted(1024, 0.2, rng);
  mpc::Cluster c1(cfg_of(16)), c2(cfg_of(16));
  Ims17Options tree;
  tree.fully_scalable = true;
  Ims17Options gather;
  gather.fully_scalable = false;
  const auto r_tree = ims17_lis(c1, seq, tree);
  const auto r_gather = ims17_lis(c2, seq, gather);
  EXPECT_EQ(r_tree.lis_estimate, r_gather.lis_estimate);
  EXPECT_GT(r_tree.rounds, r_gather.rounds);
}

TEST(Ims17, GatherVariantHitsSpaceWallOnStrictCluster) {
  // Table 1's scalability restriction, measured: the O(1)-round variant
  // needs m·K² words on one machine and must die on a strict cluster with
  // a small space budget, while the fully-scalable variant survives.
  Rng rng(9);
  const auto seq = near_sorted(4096, 0.2, rng);
  Ims17Options gather;
  gather.fully_scalable = false;
  gather.net_size = 24;
  {
    mpc::Cluster cluster(cfg_of(64, /*space=*/3000, /*strict=*/true));
    EXPECT_THROW(ims17_lis(cluster, seq, gather), mpc::SpaceLimitError);
  }
  Ims17Options tree = gather;
  tree.fully_scalable = true;
  {
    mpc::Cluster cluster(cfg_of(64, /*space=*/3000, /*strict=*/true));
    EXPECT_NO_THROW(ims17_lis(cluster, seq, tree));
  }
}

TEST(Ims17, TighterEpsImprovesEstimate) {
  Rng rng(13);
  const auto seq = near_sorted(2048, 0.3, rng);
  mpc::Cluster cluster(cfg_of(8));
  Ims17Options loose, tight;
  loose.eps = 0.5;
  tight.eps = 0.05;
  const auto r_loose = ims17_lis(cluster, seq, loose);
  const auto r_tight = ims17_lis(cluster, seq, tight);
  EXPECT_LE(r_loose.lis_estimate, r_tight.lis_estimate);
  EXPECT_GT(r_tight.net_size, r_loose.net_size);
}

}  // namespace
}  // namespace monge::baselines
