#include "monge/steady_ant.h"

#include <gtest/gtest.h>

#include <span>
#include <string>

#include "monge/delta.h"
#include "monge/distribution.h"
#include "monge/steady_ant_simd.h"
#include "testing.h"
#include "util/rng.h"

namespace monge {
namespace {

using testing::all_permutations;
using testing::make_colored_split;

/// Splits the product a⊡b into two colored halves and runs the ant.
Perm ant_product(const Perm& a, const Perm& b) {
  const ColoredPointSet set = make_colored_split(a, b, 2);
  Perm union_perm(set.n(), set.n());
  std::vector<std::uint8_t> color(static_cast<std::size_t>(set.n()), 0);
  for (const auto& p : set.points()) {
    union_perm.set(p.row, p.col);
    color[static_cast<std::size_t>(p.row)] =
        static_cast<std::uint8_t>(p.color);
  }
  return steady_ant_combine(union_perm, color);
}

TEST(SteadyAnt, ExhaustiveSmallPermutations) {
  // Every pair of permutations of size 1..5 — 5!^2 products at the top size.
  for (int n = 1; n <= 5; ++n) {
    const auto perms = all_permutations(n);
    for (const auto& pa : perms) {
      for (const auto& pb : perms) {
        const Perm a = Perm::from_rows(pa, n);
        const Perm b = Perm::from_rows(pb, n);
        ASSERT_EQ(ant_product(a, b), multiply_naive(a, b))
            << "n=" << n;
      }
    }
  }
}

class SteadyAntRandom : public ::testing::TestWithParam<std::int64_t> {};

TEST_P(SteadyAntRandom, MatchesNaiveOracle) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 7919);
  for (int trial = 0; trial < 8; ++trial) {
    const Perm a = Perm::random(GetParam(), rng);
    const Perm b = Perm::random(GetParam(), rng);
    ASSERT_EQ(ant_product(a, b), multiply_naive(a, b));
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, SteadyAntRandom,
                         ::testing::Values<std::int64_t>(2, 3, 6, 7, 8, 15, 16,
                                                         31, 33, 48, 64, 96));

TEST(SteadyAnt, ThresholdsMatchBruteForceDelta) {
  Rng rng(99);
  for (int trial = 0; trial < 10; ++trial) {
    const std::int64_t n = 24;
    const Perm a = Perm::random(n, rng);
    const Perm b = Perm::random(n, rng);
    const ColoredPointSet set = make_colored_split(a, b, 2);

    std::vector<std::int32_t> rc(static_cast<std::size_t>(n));
    std::vector<std::uint8_t> color(static_cast<std::size_t>(n));
    for (const auto& p : set.points()) {
      rc[static_cast<std::size_t>(p.row)] = static_cast<std::int32_t>(p.col);
      color[static_cast<std::size_t>(p.row)] =
          static_cast<std::uint8_t>(p.color);
    }
    const auto t = steady_ant_thresholds(rc, color);
    ASSERT_EQ(static_cast<std::int64_t>(t.size()), n + 1);
    for (std::int64_t j = 0; j <= n; ++j) {
      // t[j] = max{i : delta(i,j) <= 0}.
      std::int64_t expect = 0;
      for (std::int64_t i = 0; i <= n; ++i) {
        if (set.delta(0, 1, i, j) <= 0) expect = i;
      }
      ASSERT_EQ(t[static_cast<std::size_t>(j)], expect) << "j=" << j;
    }
    // Thresholds are nonincreasing (monotone demarcation line).
    for (std::int64_t j = 0; j < n; ++j) {
      ASSERT_GE(t[static_cast<std::size_t>(j)],
                t[static_cast<std::size_t>(j) + 1]);
    }
    EXPECT_EQ(t[0], n);
  }
}

TEST(SteadyAnt, AgreesWithOptTableReconstruction) {
  Rng rng(123);
  for (int trial = 0; trial < 10; ++trial) {
    const std::int64_t n = 20;
    const Perm a = Perm::random(n, rng);
    const Perm b = Perm::random(n, rng);
    const ColoredPointSet set = make_colored_split(a, b, 2);
    EXPECT_EQ(combine_opt_table(set), ant_product(a, b));
  }
}

TEST(SteadyAnt, SingleColorUnionIsIdentityOperation) {
  // If every point belongs to subproblem 0 the combine must return the
  // union unchanged (F_0 is the only candidate).
  Rng rng(7);
  const Perm p = Perm::random(32, rng);
  std::vector<std::uint8_t> color(32, 0);
  EXPECT_EQ(steady_ant_combine(p, color), p);
  std::vector<std::uint8_t> color1(32, 1);
  EXPECT_EQ(steady_ant_combine(p, color1), p);
}

TEST(SteadyAnt, RejectsNonPermutationUnion) {
  Perm p(3, 3);
  p.set(0, 0);
  p.set(1, 1);  // row 2 empty
  std::vector<std::uint8_t> color(3, 0);
  EXPECT_THROW(steady_ant_combine(p, color), std::logic_error);
}

// ---------------------------------------------------------------------------
// The SIMD steady-ant combine (steady_ant_simd.h): every available ISA path
// must be bit-identical — out, t AND col_pk — to the packed scalar walk,
// which is itself pinned to the legacy standalone reference.
// ---------------------------------------------------------------------------

/// row_pk[r] = (col << 1) | color, the packed input the engine's combine
/// consumes.
std::vector<std::int32_t> pack_rows(std::span<const std::int32_t> rc,
                                    std::span<const std::uint8_t> color) {
  std::vector<std::int32_t> row_pk(rc.size());
  for (std::size_t r = 0; r < rc.size(); ++r) {
    row_pk[r] = static_cast<std::int32_t>((rc[r] << 1) |
                                          static_cast<std::int32_t>(color[r]));
  }
  return row_pk;
}

struct PackedCombineResult {
  std::vector<std::int32_t> col_pk, t, out;
  friend bool operator==(const PackedCombineResult&,
                         const PackedCombineResult&) = default;
};

PackedCombineResult run_scalar_oracle(std::span<const std::int32_t> row_pk) {
  const std::size_t n = row_pk.size();
  PackedCombineResult res{std::vector<std::int32_t>(n),
                          std::vector<std::int32_t>(n + 1),
                          std::vector<std::int32_t>(n)};
  steady_ant_packed_scalar(row_pk, res.col_pk, res.t, res.out);
  return res;
}

PackedCombineResult run_isa(SteadyAntIsa isa,
                            std::span<const std::int32_t> row_pk) {
  const std::size_t n = row_pk.size();
  PackedCombineResult res{std::vector<std::int32_t>(n),
                          std::vector<std::int32_t>(n + 1),
                          std::vector<std::int32_t>(n)};
  steady_ant_packed_into(isa, row_pk, res.col_pk, res.t, res.out);
  return res;
}

/// Runs every available ISA (kScalar included — it exercises the shared
/// dispatch plumbing) against the scalar oracle.
void expect_all_isas_match(std::span<const std::int32_t> row_pk,
                           const std::string& what) {
  const PackedCombineResult expect = run_scalar_oracle(row_pk);
  for (const SteadyAntIsa isa : steady_ant_available_isas()) {
    const PackedCombineResult got = run_isa(isa, row_pk);
    ASSERT_EQ(got.out, expect.out)
        << what << " isa=" << steady_ant_isa_name(isa);
    ASSERT_EQ(got.t, expect.t) << what << " isa=" << steady_ant_isa_name(isa);
    ASSERT_EQ(got.col_pk, expect.col_pk)
        << what << " isa=" << steady_ant_isa_name(isa);
  }
}

TEST(SteadyAntSimd, ScalarIsAlwaysAvailable) {
  const auto isas = steady_ant_available_isas();
  ASSERT_FALSE(isas.empty());
  EXPECT_EQ(isas.front(), SteadyAntIsa::kScalar);
  bool active_listed = false;
  for (const SteadyAntIsa isa : isas) {
    EXPECT_STRNE(steady_ant_isa_name(isa), "unknown");
    active_listed = active_listed || isa == steady_ant_active_isa();
  }
  EXPECT_TRUE(active_listed)
      << "active ISA " << steady_ant_isa_name(steady_ant_active_isa())
      << " not in the available list";
}

// >1000 differential fuzz cases per run: random colorings, all-one-color
// and alternating-color unions, adversarial monotone permutations
// (identity / reversal with block colorings force the longest descents),
// and real §3.1 product splits. Any row coloring of a full permutation is
// a valid H = 2 union (each color class is a sub-permutation of its rows
// and columns), so the generators below are all within contract.
TEST(SteadyAntSimd, DifferentialFuzzAgainstScalar) {
  Rng rng(20260730);
  std::int64_t cases = 0;
  const std::int64_t sizes[] = {2,  3,  4,  5,  7,  8,   9,   15,  16,
                                17, 31, 33, 63, 64, 65,  96,  128, 200};
  for (const std::int64_t n : sizes) {
    for (int rep = 0; rep < 10; ++rep) {  // 18 sizes × 10 reps × 6 colorings
      // Permutation family: random, identity, reversal.
      std::vector<std::int32_t> rc;
      switch (rep % 3) {
        case 0:
          rc = rng.permutation(n);
          break;
        case 1:
          rc.resize(static_cast<std::size_t>(n));
          for (std::int64_t r = 0; r < n; ++r) {
            rc[static_cast<std::size_t>(r)] = static_cast<std::int32_t>(r);
          }
          break;
        default:
          rc.resize(static_cast<std::size_t>(n));
          for (std::int64_t r = 0; r < n; ++r) {
            rc[static_cast<std::size_t>(r)] =
                static_cast<std::int32_t>(n - 1 - r);
          }
          break;
      }
      // Coloring family: random, all-0, all-1, alternating, top/bottom
      // half blocks (both orders) — the block colorings on monotone
      // permutations are the adversarial long-descent inputs.
      for (int fam = 0; fam < 6; ++fam) {
        std::vector<std::uint8_t> color(static_cast<std::size_t>(n));
        for (std::int64_t r = 0; r < n; ++r) {
          const auto u = static_cast<std::size_t>(r);
          switch (fam) {
            case 0:
              color[u] = static_cast<std::uint8_t>(rng.next_below(2));
              break;
            case 1:
              color[u] = 0;
              break;
            case 2:
              color[u] = 1;
              break;
            case 3:
              color[u] = static_cast<std::uint8_t>(r & 1);
              break;
            case 4:
              color[u] = static_cast<std::uint8_t>(r < n / 2 ? 0 : 1);
              break;
            default:
              color[u] = static_cast<std::uint8_t>(r < n / 2 ? 1 : 0);
              break;
          }
        }
        const auto row_pk = pack_rows(rc, color);
        expect_all_isas_match(row_pk, "n=" + std::to_string(n) +
                                          " fam=" + std::to_string(fam));
        ++cases;
      }
    }
  }
  // Real product splits on top of the synthetic families.
  for (int rep = 0; rep < 40; ++rep) {
    const std::int64_t n = rng.next_in(2, 48);
    const ColoredPointSet set =
        make_colored_split(Perm::random(n, rng), Perm::random(n, rng), 2);
    std::vector<std::int32_t> rc(static_cast<std::size_t>(n));
    std::vector<std::uint8_t> color(static_cast<std::size_t>(n));
    for (const auto& p : set.points()) {
      rc[static_cast<std::size_t>(p.row)] = static_cast<std::int32_t>(p.col);
      color[static_cast<std::size_t>(p.row)] =
          static_cast<std::uint8_t>(p.color);
    }
    expect_all_isas_match(pack_rows(rc, color), "product split");
    ++cases;
  }
  EXPECT_GT(cases, 1000);
}

// Beyond scalar-equivalence: on real splits the packed combine (every ISA)
// must reconstruct the actual product PA ⊡ PB.
TEST(SteadyAntSimd, MatchesNaiveOracleOnProductSplits) {
  Rng rng(424242);
  for (const std::int64_t n : {16, 33, 64}) {
    for (int rep = 0; rep < 4; ++rep) {
      const Perm a = Perm::random(n, rng);
      const Perm b = Perm::random(n, rng);
      const ColoredPointSet set = make_colored_split(a, b, 2);
      std::vector<std::int32_t> rc(static_cast<std::size_t>(n));
      std::vector<std::uint8_t> color(static_cast<std::size_t>(n));
      for (const auto& p : set.points()) {
        rc[static_cast<std::size_t>(p.row)] = static_cast<std::int32_t>(p.col);
        color[static_cast<std::size_t>(p.row)] =
            static_cast<std::uint8_t>(p.color);
      }
      const auto row_pk = pack_rows(rc, color);
      const Perm expect = multiply_naive(a, b);
      for (const SteadyAntIsa isa : steady_ant_available_isas()) {
        const PackedCombineResult got = run_isa(isa, row_pk);
        ASSERT_EQ(Perm::from_rows(got.out, n), expect)
            << "n=" << n << " isa=" << steady_ant_isa_name(isa);
      }
    }
  }
}

// The packed scalar walk is itself pinned to the legacy standalone
// reference: same product and same demarcation thresholds.
TEST(SteadyAntSimd, ScalarPackedMatchesLegacyStandalone) {
  Rng rng(55);
  for (int rep = 0; rep < 20; ++rep) {
    const std::int64_t n = rng.next_in(2, 80);
    const auto rc = rng.permutation(n);
    std::vector<std::uint8_t> color(static_cast<std::size_t>(n));
    for (auto& c : color) c = static_cast<std::uint8_t>(rng.next_below(2));
    const PackedCombineResult got = run_scalar_oracle(pack_rows(rc, color));
    EXPECT_EQ(got.out, steady_ant_combine_raw(rc, color));
    const auto t64 = steady_ant_thresholds(rc, color);
    ASSERT_EQ(got.t.size(), t64.size());
    for (std::size_t j = 0; j < t64.size(); ++j) {
      EXPECT_EQ(static_cast<std::int64_t>(got.t[j]), t64[j]) << "j=" << j;
    }
  }
}

// Pinned golden (Rng(20260729), n = 24): a future ISA path or a combine
// refactor cannot silently drift — the expected bytes are spelled out.
TEST(SteadyAntSimd, PinnedGolden) {
  const std::vector<std::int32_t> kGoldenRowPk{
      26, 18, 12, 35, 4,  11, 9,  24, 15, 28, 45, 46,
      30, 3,  38, 21, 1,  7,  37, 43, 40, 23, 32, 16};
  const std::vector<std::int32_t> kGoldenT{24, 23, 22, 22, 20, 17, 16, 16, 14,
                                           13, 13, 13, 13, 13, 13, 13, 13, 11,
                                           8,  8,  6,  5,  5,  5,  3};
  const std::vector<std::int32_t> kGoldenOut{13, 9,  6,  23, 2, 20, 19, 12,
                                             17, 14, 22, 16, 15, 8, 7,  10,
                                             5,  4,  18, 21, 3,  11, 1,  0};
  for (const SteadyAntIsa isa : steady_ant_available_isas()) {
    const PackedCombineResult got = run_isa(isa, kGoldenRowPk);
    EXPECT_EQ(got.out, kGoldenOut) << steady_ant_isa_name(isa);
    EXPECT_EQ(got.t, kGoldenT) << steady_ant_isa_name(isa);
  }
  EXPECT_EQ(run_scalar_oracle(kGoldenRowPk).out, kGoldenOut);
}

// Degenerate shapes are resolved by explicit early-outs in the dispatcher;
// no ISA kernel may ever see an empty span, and n = 1 must match the
// scalar walk for both colors.
TEST(SteadyAntSimd, DegenerateShapes) {
  for (const SteadyAntIsa isa : steady_ant_available_isas()) {
    {
      std::vector<std::int32_t> t(1, -7);
      steady_ant_packed_into(isa, {}, {}, t, {});
      EXPECT_EQ(t[0], 0) << steady_ant_isa_name(isa);
    }
    for (const std::int32_t color : {0, 1}) {
      const std::vector<std::int32_t> row_pk{color};
      const PackedCombineResult got = run_isa(isa, row_pk);
      const PackedCombineResult expect = run_scalar_oracle(row_pk);
      EXPECT_EQ(got.out, expect.out)
          << steady_ant_isa_name(isa) << " color=" << color;
      EXPECT_EQ(got.t, expect.t)
          << steady_ant_isa_name(isa) << " color=" << color;
      EXPECT_EQ(got.col_pk, expect.col_pk)
          << steady_ant_isa_name(isa) << " color=" << color;
      EXPECT_EQ(got.out[0], 0);
    }
  }
}

}  // namespace
}  // namespace monge
