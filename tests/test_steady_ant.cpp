#include "monge/steady_ant.h"

#include <gtest/gtest.h>

#include "monge/delta.h"
#include "monge/distribution.h"
#include "testing.h"
#include "util/rng.h"

namespace monge {
namespace {

using testing::all_permutations;
using testing::make_colored_split;

/// Splits the product a⊡b into two colored halves and runs the ant.
Perm ant_product(const Perm& a, const Perm& b) {
  const ColoredPointSet set = make_colored_split(a, b, 2);
  Perm union_perm(set.n(), set.n());
  std::vector<std::uint8_t> color(static_cast<std::size_t>(set.n()), 0);
  for (const auto& p : set.points()) {
    union_perm.set(p.row, p.col);
    color[static_cast<std::size_t>(p.row)] =
        static_cast<std::uint8_t>(p.color);
  }
  return steady_ant_combine(union_perm, color);
}

TEST(SteadyAnt, ExhaustiveSmallPermutations) {
  // Every pair of permutations of size 1..5 — 5!^2 products at the top size.
  for (int n = 1; n <= 5; ++n) {
    const auto perms = all_permutations(n);
    for (const auto& pa : perms) {
      for (const auto& pb : perms) {
        const Perm a = Perm::from_rows(pa, n);
        const Perm b = Perm::from_rows(pb, n);
        ASSERT_EQ(ant_product(a, b), multiply_naive(a, b))
            << "n=" << n;
      }
    }
  }
}

class SteadyAntRandom : public ::testing::TestWithParam<std::int64_t> {};

TEST_P(SteadyAntRandom, MatchesNaiveOracle) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 7919);
  for (int trial = 0; trial < 8; ++trial) {
    const Perm a = Perm::random(GetParam(), rng);
    const Perm b = Perm::random(GetParam(), rng);
    ASSERT_EQ(ant_product(a, b), multiply_naive(a, b));
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, SteadyAntRandom,
                         ::testing::Values<std::int64_t>(2, 3, 6, 7, 8, 15, 16,
                                                         31, 33, 48, 64, 96));

TEST(SteadyAnt, ThresholdsMatchBruteForceDelta) {
  Rng rng(99);
  for (int trial = 0; trial < 10; ++trial) {
    const std::int64_t n = 24;
    const Perm a = Perm::random(n, rng);
    const Perm b = Perm::random(n, rng);
    const ColoredPointSet set = make_colored_split(a, b, 2);

    std::vector<std::int32_t> rc(static_cast<std::size_t>(n));
    std::vector<std::uint8_t> color(static_cast<std::size_t>(n));
    for (const auto& p : set.points()) {
      rc[static_cast<std::size_t>(p.row)] = static_cast<std::int32_t>(p.col);
      color[static_cast<std::size_t>(p.row)] =
          static_cast<std::uint8_t>(p.color);
    }
    const auto t = steady_ant_thresholds(rc, color);
    ASSERT_EQ(static_cast<std::int64_t>(t.size()), n + 1);
    for (std::int64_t j = 0; j <= n; ++j) {
      // t[j] = max{i : delta(i,j) <= 0}.
      std::int64_t expect = 0;
      for (std::int64_t i = 0; i <= n; ++i) {
        if (set.delta(0, 1, i, j) <= 0) expect = i;
      }
      ASSERT_EQ(t[static_cast<std::size_t>(j)], expect) << "j=" << j;
    }
    // Thresholds are nonincreasing (monotone demarcation line).
    for (std::int64_t j = 0; j < n; ++j) {
      ASSERT_GE(t[static_cast<std::size_t>(j)],
                t[static_cast<std::size_t>(j) + 1]);
    }
    EXPECT_EQ(t[0], n);
  }
}

TEST(SteadyAnt, AgreesWithOptTableReconstruction) {
  Rng rng(123);
  for (int trial = 0; trial < 10; ++trial) {
    const std::int64_t n = 20;
    const Perm a = Perm::random(n, rng);
    const Perm b = Perm::random(n, rng);
    const ColoredPointSet set = make_colored_split(a, b, 2);
    EXPECT_EQ(combine_opt_table(set), ant_product(a, b));
  }
}

TEST(SteadyAnt, SingleColorUnionIsIdentityOperation) {
  // If every point belongs to subproblem 0 the combine must return the
  // union unchanged (F_0 is the only candidate).
  Rng rng(7);
  const Perm p = Perm::random(32, rng);
  std::vector<std::uint8_t> color(32, 0);
  EXPECT_EQ(steady_ant_combine(p, color), p);
  std::vector<std::uint8_t> color1(32, 1);
  EXPECT_EQ(steady_ant_combine(p, color1), p);
}

TEST(SteadyAnt, RejectsNonPermutationUnion) {
  Perm p(3, 3);
  p.set(0, 0);
  p.set(1, 1);  // row 2 empty
  std::vector<std::uint8_t> color(3, 0);
  EXPECT_THROW(steady_ant_combine(p, color), std::logic_error);
}

}  // namespace
}  // namespace monge
