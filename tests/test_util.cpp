#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <future>
#include <latch>
#include <memory>
#include <numeric>
#include <set>
#include <thread>

#include "util/fenwick.h"
#include "util/math.h"
#include "util/rng.h"
#include "util/table.h"
#include "util/thread_pool.h"

namespace monge {
namespace {

TEST(Math, CeilDiv) {
  EXPECT_EQ(ceil_div(0, 3), 0);
  EXPECT_EQ(ceil_div(1, 3), 1);
  EXPECT_EQ(ceil_div(3, 3), 1);
  EXPECT_EQ(ceil_div(4, 3), 2);
  EXPECT_EQ(ceil_div(9, 3), 3);
}

TEST(Math, Logs) {
  EXPECT_EQ(floor_log2(1), 0);
  EXPECT_EQ(floor_log2(2), 1);
  EXPECT_EQ(floor_log2(3), 1);
  EXPECT_EQ(floor_log2(1024), 10);
  EXPECT_EQ(ceil_log2(1), 0);
  EXPECT_EQ(ceil_log2(2), 1);
  EXPECT_EQ(ceil_log2(3), 2);
  EXPECT_EQ(ceil_log2(1025), 11);
}

TEST(Math, IpowFrac) {
  EXPECT_EQ(ipow_frac(1024, 0.5), 32);
  EXPECT_EQ(ipow_frac(1, 0.5), 1);
  EXPECT_EQ(ipow_frac(100, 0.0), 1);
  EXPECT_EQ(ipow_frac(100, 1.0), 100);
  // Clamped to [1, n].
  EXPECT_GE(ipow_frac(7, 0.01), 1);
  EXPECT_LE(ipow_frac(7, 0.99), 7);
}

TEST(Math, NextPow2) {
  EXPECT_EQ(next_pow2(1), 1);
  EXPECT_EQ(next_pow2(2), 2);
  EXPECT_EQ(next_pow2(3), 4);
  EXPECT_EQ(next_pow2(1000), 1024);
}

TEST(Rng, DeterministicAndDistinctSeeds) {
  Rng a(42), b(42), c(43);
  for (int i = 0; i < 100; ++i) {
    const auto va = a.next();
    EXPECT_EQ(va, b.next());
    (void)c.next();
  }
  Rng a2(42), c2(43);
  bool differs = false;
  for (int i = 0; i < 10; ++i) differs |= (a2.next() != c2.next());
  EXPECT_TRUE(differs);
}

TEST(Rng, NextBelowInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.next_below(17), 17u);
  }
}

TEST(Rng, PermutationIsPermutation) {
  Rng rng(1);
  const auto p = rng.permutation(257);
  std::set<std::int32_t> s(p.begin(), p.end());
  EXPECT_EQ(s.size(), 257u);
  EXPECT_EQ(*s.begin(), 0);
  EXPECT_EQ(*s.rbegin(), 256);
}

TEST(Fenwick, PrefixAndRange) {
  Fenwick f(10);
  for (int i = 0; i < 10; ++i) f.add(i, i);
  EXPECT_EQ(f.prefix(0), 0);
  EXPECT_EQ(f.prefix(10), 45);
  EXPECT_EQ(f.range(3, 7), 3 + 4 + 5 + 6);
  f.add(5, 100);
  EXPECT_EQ(f.range(5, 6), 105);
}

TEST(ThreadPool, ParallelForCoversAllIndices) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  pool.parallel_for(1000, [&](std::int64_t i) { hits[i].fetch_add(1); });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, PropagatesExceptions) {
  ThreadPool pool(2);
  EXPECT_THROW(pool.parallel_for(100,
                                 [&](std::int64_t i) {
                                   if (i == 57) throw std::runtime_error("x");
                                 }),
               std::runtime_error);
}

TEST(ThreadPool, ZeroAndOneIterations) {
  ThreadPool pool(3);
  int count = 0;
  pool.parallel_for(0, [&](std::int64_t) { ++count; });
  EXPECT_EQ(count, 0);
  pool.parallel_for(1, [&](std::int64_t) { ++count; });
  EXPECT_EQ(count, 1);
}

TEST(ThreadPool, PostRunsTasksAsynchronously) {
  ThreadPool pool(2);
  std::promise<int> p;
  auto f = p.get_future();
  ASSERT_TRUE(pool.post([&p] { p.set_value(41 + 1); }));
  EXPECT_EQ(f.get(), 42);
}

TEST(ThreadPool, ShutdownDrainsQueuedWorkAndRefusesLatePosts) {
  constexpr int kTasks = 16;
  std::vector<std::future<int>> futs;
  // -1 = nested task never queued; 0 = post() refused mid-drain (the task
  // ran inline); 1 = post() accepted (the pool was not yet stopping).
  std::atomic<int> late_post_accepted{-1};
  std::latch release(1);
  std::thread releaser;
  {
    ThreadPool pool(2);
    // Two blockers occupy both workers; everything behind them sits
    // queued-but-unstarted when the destructor runs.
    for (int i = 0; i < kTasks; ++i) {
      auto task = std::make_shared<std::packaged_task<int()>>([i, &release] {
        if (i < 2) release.wait();
        return i;
      });
      futs.push_back(task->get_future());
      ASSERT_TRUE(pool.post([task] { (*task)(); }));
    }
    // A queued task that posts MORE work mid-drain: post() must either
    // refuse (pool stopping — run inline) or guarantee the accepted task
    // still runs before join. Either way the future is fulfilled.
    auto nested = std::make_shared<std::packaged_task<int()>>([] { return 99; });
    futs.push_back(nested->get_future());
    ASSERT_TRUE(pool.post([nested, &pool, &late_post_accepted] {
      if (pool.post([nested] { (*nested)(); })) {
        late_post_accepted = 1;
      } else {
        late_post_accepted = 0;
        (*nested)();
      }
    }));
    releaser = std::thread([&release] {
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
      release.count_down();
    });
    // ~ThreadPool: must drain all queued tasks — no deadlock, no dropped
    // futures (the SolverService destructor relies on this contract).
  }
  releaser.join();
  for (int i = 0; i < kTasks; ++i) {
    ASSERT_TRUE(futs[static_cast<std::size_t>(i)].valid());
    EXPECT_EQ(futs[static_cast<std::size_t>(i)].get(), i);
  }
  EXPECT_EQ(futs.back().get(), 99);
  EXPECT_NE(late_post_accepted.load(), -1);
}

TEST(Table, RendersAlignedColumns) {
  Table t({"name", "value"});
  t.add_row({"x", "1"});
  t.add_row({"longer-name", "22"});
  const std::string s = t.to_string();
  EXPECT_NE(s.find("name"), std::string::npos);
  EXPECT_NE(s.find("longer-name"), std::string::npos);
  EXPECT_NE(s.find("----"), std::string::npos);
}

TEST(Table, RejectsMismatchedRowWidth) {
  Table t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), std::logic_error);
}

}  // namespace
}  // namespace monge
