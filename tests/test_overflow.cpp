// Pinning regression tests for util/overflow.h.
//
// Background: the static-analysis baseline pass (-Wconversion audit of the
// monge/core targets) flagged the TreeIndex packed-key guard in
// src/core/mpc_multiply.cpp. It computed
//     subs * nodes * (h + 2) * coord_mult < 2^62
// directly in int64: the left-hand side overflows — undefined behavior —
// precisely in the oversized regime the guard exists to reject, so the
// check could accept wrapped (even negative) garbage. The guard now goes
// through util::product_below, which fails closed on overflow. These tests
// pin that behavior, including the exact wrap-to-small case the original
// code got wrong.
#include "util/overflow.h"

#include <gtest/gtest.h>

#include <cstdint>

namespace monge::util {
namespace {

TEST(Overflow, CheckedMulBasics) {
  std::int64_t out = -1;
  EXPECT_TRUE(checked_mul_nonneg(0, INT64_MAX, &out));
  EXPECT_EQ(out, 0);
  EXPECT_TRUE(checked_mul_nonneg(INT64_MAX, 0, &out));
  EXPECT_EQ(out, 0);
  EXPECT_TRUE(checked_mul_nonneg(1, INT64_MAX, &out));
  EXPECT_EQ(out, INT64_MAX);
  EXPECT_TRUE(checked_mul_nonneg(std::int64_t{1} << 31, std::int64_t{1} << 31,
                                 &out));
  EXPECT_EQ(out, std::int64_t{1} << 62);
}

TEST(Overflow, CheckedMulDetectsOverflow) {
  std::int64_t out = 0;
  EXPECT_FALSE(checked_mul_nonneg(std::int64_t{1} << 32, std::int64_t{1} << 32,
                                  &out));
  EXPECT_FALSE(checked_mul_nonneg(INT64_MAX, 2, &out));
  EXPECT_FALSE(checked_mul_nonneg(INT64_MAX, INT64_MAX, &out));
  // Boundary: (2^31) * (2^31 + 1) overflows nothing; largest exact cases
  // right at the edge stay representable.
  EXPECT_TRUE(checked_mul_nonneg(INT64_MAX / 3, 3, &out));
  EXPECT_EQ(out, (INT64_MAX / 3) * 3);
  EXPECT_FALSE(checked_mul_nonneg(INT64_MAX / 3 + 1, 3, &out));
}

TEST(Overflow, ProductBelowExactAtBound) {
  const std::int64_t bound = std::int64_t{1} << 62;
  // Strictly below.
  EXPECT_TRUE(product_below({(std::int64_t{1} << 62) - 1}, bound));
  // Equal is not below.
  EXPECT_FALSE(product_below({std::int64_t{1} << 31, std::int64_t{1} << 31},
                             bound));
  // One above.
  EXPECT_FALSE(product_below({(std::int64_t{1} << 61) + 1, 2}, bound));
  // A double-based comparison cannot distinguish 2^62 - 1 from 2^62 (ulp
  // spacing at that magnitude is 1024); the exact path must.
  EXPECT_TRUE(product_below({2, (std::int64_t{1} << 61) - 1}, bound));
}

TEST(Overflow, ProductBelowFailsClosedOnWrap) {
  const std::int64_t bound = std::int64_t{1} << 62;
  // Regression: 2^16 * 2^16 * 2^16 * 2^16 = 2^64 wraps to 0 in int64
  // arithmetic, so the original inline guard saw "0 < 2^62" and passed.
  const std::int64_t f = std::int64_t{1} << 16;
  EXPECT_FALSE(product_below({f, f, f, f}, bound));
  // Wrap-to-negative variant: 2^63 (mod 2^64) is INT64_MIN < bound.
  EXPECT_FALSE(product_below({std::int64_t{1} << 31, std::int64_t{1} << 32},
                             bound));
  // Representative real-shape magnitudes: subs, nodes, h + 2, coord_mult.
  EXPECT_TRUE(product_below({64, 1 << 20, 10, (1 << 20) + 2}, bound));
  EXPECT_FALSE(product_below({std::int64_t{1} << 20, std::int64_t{1} << 20,
                              std::int64_t{1} << 20, std::int64_t{1} << 20},
                             bound));
}

TEST(Overflow, ProductBelowEmptyAndZero) {
  // Empty product is 1.
  EXPECT_TRUE(product_below({}, 2));
  EXPECT_FALSE(product_below({}, 1));
  // Any zero factor collapses the product regardless of the rest.
  EXPECT_TRUE(product_below({0, INT64_MAX, INT64_MAX}, 1));
}

}  // namespace
}  // namespace monge::util
