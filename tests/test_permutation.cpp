#include "monge/permutation.h"

#include <gtest/gtest.h>

#include "util/rng.h"

namespace monge {
namespace {

TEST(Perm, IdentityAndReverse) {
  const Perm id = Perm::identity(5);
  EXPECT_TRUE(id.is_full_permutation());
  EXPECT_EQ(id.point_count(), 5);
  for (std::int64_t r = 0; r < 5; ++r) EXPECT_EQ(id.col_of(r), r);

  const Perm rev = Perm::reverse(5);
  EXPECT_TRUE(rev.is_full_permutation());
  for (std::int64_t r = 0; r < 5; ++r) EXPECT_EQ(rev.col_of(r), 4 - r);
}

TEST(Perm, EmptySubPermutation) {
  const Perm p(4, 7);
  EXPECT_EQ(p.rows(), 4);
  EXPECT_EQ(p.cols(), 7);
  EXPECT_EQ(p.point_count(), 0);
  EXPECT_FALSE(p.is_full_permutation());
  EXPECT_TRUE(p.points().empty());
}

TEST(Perm, FromRowsValidates) {
  EXPECT_NO_THROW(Perm::from_rows({2, kNone, 0}, 3));
  // Duplicate column.
  EXPECT_THROW(Perm::from_rows({1, 1}, 3), std::logic_error);
  // Out of range.
  EXPECT_THROW(Perm::from_rows({3}, 3), std::logic_error);
}

TEST(Perm, FromPointsValidates) {
  const Point pts[] = {{0, 1}, {2, 0}};
  const Perm p = Perm::from_points(3, 2, pts);
  EXPECT_EQ(p.col_of(0), 1);
  EXPECT_EQ(p.col_of(1), kNone);
  EXPECT_EQ(p.col_of(2), 0);

  const Point dup_row[] = {{0, 0}, {0, 1}};
  EXPECT_THROW(Perm::from_points(2, 2, dup_row), std::logic_error);
  const Point dup_col[] = {{0, 1}, {1, 1}};
  EXPECT_THROW(Perm::from_points(2, 2, dup_col), std::logic_error);
}

TEST(Perm, PointsSortedByRow) {
  const Perm p = Perm::from_rows({2, kNone, 0, 1}, 3);
  const auto pts = p.points();
  ASSERT_EQ(pts.size(), 3u);
  EXPECT_EQ(pts[0], (Point{0, 2}));
  EXPECT_EQ(pts[1], (Point{2, 0}));
  EXPECT_EQ(pts[2], (Point{3, 1}));
}

TEST(Perm, TransposeIsInverseForFullPermutations) {
  Rng rng(3);
  const Perm p = Perm::random(50, rng);
  const Perm t = p.transposed();
  EXPECT_TRUE(t.is_full_permutation());
  for (std::int64_t r = 0; r < 50; ++r) {
    EXPECT_EQ(t.col_of(p.col_of(r)), r);
  }
  EXPECT_EQ(p.transposed().transposed(), p);
}

TEST(Perm, TransposeOfRectangularSubPermutation) {
  const Point pts[] = {{1, 4}, {2, 0}};
  const Perm p = Perm::from_points(3, 5, pts);
  const Perm t = p.transposed();
  EXPECT_EQ(t.rows(), 5);
  EXPECT_EQ(t.cols(), 3);
  EXPECT_EQ(t.col_of(4), 1);
  EXPECT_EQ(t.col_of(0), 2);
  EXPECT_EQ(t.col_of(1), kNone);
}

TEST(Perm, ColToRow) {
  const Perm p = Perm::from_rows({2, kNone, 0}, 4);
  const auto inv = p.col_to_row();
  ASSERT_EQ(inv.size(), 4u);
  EXPECT_EQ(inv[0], 2);
  EXPECT_EQ(inv[1], kNone);
  EXPECT_EQ(inv[2], 0);
  EXPECT_EQ(inv[3], kNone);
}

TEST(Perm, RandomIsFullPermutation) {
  Rng rng(11);
  for (int trial = 0; trial < 5; ++trial) {
    EXPECT_TRUE(Perm::random(97, rng).is_full_permutation());
  }
}

TEST(Perm, RandomSubHasExactlyKPoints) {
  Rng rng(5);
  for (std::int64_t k : {0, 1, 5, 9}) {
    const Perm p = Perm::random_sub(9, 13, k, rng);
    EXPECT_EQ(p.point_count(), k);
    EXPECT_EQ(p.rows(), 9);
    EXPECT_EQ(p.cols(), 13);
    // Column uniqueness is part of the invariant; from_points would have
    // thrown. Check via transpose round-trip.
    EXPECT_EQ(p.transposed().point_count(), k);
  }
}

TEST(Perm, SetAndClearRow) {
  Perm p(3, 3);
  p.set(1, 2);
  EXPECT_EQ(p.col_of(1), 2);
  p.clear_row(1);
  EXPECT_TRUE(p.row_empty(1));
}

}  // namespace
}  // namespace monge
