// The representation-layer battery: CoreSparsePerm converters, the
// core-sparse multiply vs. the dense engine oracle, the engine's
// density-adaptive dispatch (including batch/subunit entry points and
// thread-count determinism), and the Solver threading of the knob and the
// per-solve representation counters. Every multiply here is differential:
// the product permutation is mathematically unique, so the core-sparse
// paths must be bit-identical to a cutoff-0 (pure dense) engine on every
// input — the PR 2/4 oracle harness style.
//
// All suites are named CoreSparse* so the
// monge_tests_core_sparse_shuffled_stress ctest entry and the sanitizer CI
// filters can select the whole battery with one pattern.
#include "monge/core_sparse.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <numeric>
#include <stdexcept>

#include "api/solver.h"
#include "lcs/hunt_szymanski.h"
#include "lis/sequential.h"
#include "monge/engine.h"
#include "monge/permutation.h"
#include "testing.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace monge {
namespace {

using testing::all_permutations;

std::vector<std::int32_t> identity_raw(std::int64_t n) {
  std::vector<std::int32_t> p(static_cast<std::size_t>(n));
  std::iota(p.begin(), p.end(), std::int32_t{0});
  return p;
}

void shuffle_window(std::vector<std::int32_t>& p, std::int64_t start,
                    std::int64_t width, Rng& rng) {
  for (std::int64_t i = width - 1; i > 0; --i) {
    std::swap(p[static_cast<std::size_t>(start + i)],
              p[static_cast<std::size_t>(start + rng.next_below(i + 1))]);
  }
}

/// Identity with `clusters` shuffled windows of the given width — the
/// near-identity / block-shuffled shape family (small localized core).
std::vector<std::int32_t> near_identity_perm(std::int64_t n,
                                             std::int64_t clusters,
                                             std::int64_t width, Rng& rng) {
  auto p = identity_raw(n);
  for (std::int64_t c = 0; c < clusters && width <= n; ++c) {
    shuffle_window(p, rng.next_below(n - width + 1), width, rng);
  }
  return p;
}

/// Adversarial dense-core shape: one long-range swap blocks every interior
/// boundary, so the decomposition degenerates to a single block even
/// though the core has only two points.
std::vector<std::int32_t> long_swap_perm(std::int64_t n) {
  auto p = identity_raw(n);
  if (n >= 2) std::swap(p.front(), p.back());
  return p;
}

std::vector<std::int32_t> reverse_perm(std::int64_t n) {
  std::vector<std::int32_t> p(static_cast<std::size_t>(n));
  for (std::int64_t i = 0; i < n; ++i) {
    p[static_cast<std::size_t>(i)] = static_cast<std::int32_t>(n - 1 - i);
  }
  return p;
}

/// The pure dense differential oracle: probing disabled entirely.
SeaweedEngine& oracle_engine() {
  static SeaweedEngine engine({.core_density_cutoff = 0.0});
  return engine;
}

DenseBlockSolver oracle_block_solver() {
  return [](std::span<const std::int32_t> a, std::span<const std::int32_t> b,
            std::span<std::int32_t> out) {
    oracle_engine().multiply_into(a, b, out);
  };
}

// ---------------------------------------------------------------------------
// CoreSparsePerm: converters, probes, run metadata.
// ---------------------------------------------------------------------------

TEST(CoreSparsePerm, RoundTripIsLosslessAcrossShapes) {
  Rng rng(20260808);
  int cases = 0;
  for (const std::int64_t n : {0, 1, 2, 3, 7, 64, 257}) {
    std::vector<std::vector<std::int32_t>> shapes;
    shapes.push_back(identity_raw(n));
    shapes.push_back(long_swap_perm(n));
    shapes.push_back(reverse_perm(n));
    for (int rep = 0; rep < 4; ++rep) shapes.push_back(rng.permutation(n));
    if (n >= 8) shapes.push_back(near_identity_perm(n, 2, 4, rng));
    for (const auto& p : shapes) {
      const auto sparse = CoreSparsePerm::from_dense(p);
      EXPECT_EQ(sparse.n(), n);
      EXPECT_EQ(sparse.to_dense(), p);
      EXPECT_EQ(sparse.core_size(), core_size_of(p));
      EXPECT_EQ(sparse, CoreSparsePerm::from_dense(p));
      std::vector<std::int32_t> out(static_cast<std::size_t>(n));
      sparse.to_dense_into(out);
      EXPECT_EQ(out, p);
      ++cases;
    }
  }
  EXPECT_GE(cases, 50);
}

TEST(CoreSparsePerm, IdentityHasEmptyCore) {
  const auto id = CoreSparsePerm::identity(9);
  EXPECT_EQ(id.n(), 9);
  EXPECT_EQ(id.core_size(), 0);
  EXPECT_EQ(id.core_density(), 0.0);
  EXPECT_EQ(id, CoreSparsePerm::from_dense(identity_raw(9)));
  const auto runs = id.identity_runs();
  ASSERT_EQ(runs.size(), 1u);
  EXPECT_EQ(runs[0], (IdentityRun{0, 9}));
  EXPECT_EQ(CoreSparsePerm::identity(0).core_density(), 0.0);
  EXPECT_TRUE(CoreSparsePerm::identity(0).identity_runs().empty());
}

TEST(CoreSparsePerm, IdentityRunsTileTheComplementOfTheCore) {
  // p = [0 1 | 3 2 | 4 5 6 | 8 7]: runs {0,2}, {4,3}; core rows 2,3,7,8.
  std::vector<std::int32_t> p{0, 1, 3, 2, 4, 5, 6, 8, 7};
  const auto sparse = CoreSparsePerm::from_dense(p);
  EXPECT_EQ(sparse.core_size(), 4);
  const auto runs = sparse.identity_runs();
  ASSERT_EQ(runs.size(), 2u);
  EXPECT_EQ(runs[0], (IdentityRun{0, 2}));
  EXPECT_EQ(runs[1], (IdentityRun{4, 3}));

  // Invariant fuzz: run lengths total n - core_size, runs avoid core rows.
  Rng rng(7);
  for (int rep = 0; rep < 50; ++rep) {
    const std::int64_t n = 1 + rng.next_below(80);
    const auto q = near_identity_perm(n, 1 + rng.next_below(3),
                                      std::min<std::int64_t>(n, 5), rng);
    const auto s = CoreSparsePerm::from_dense(q);
    std::int64_t total = 0;
    for (const auto& run : s.identity_runs()) total += run.len;
    EXPECT_EQ(total, n - s.core_size());
  }

  // A full-core permutation has no identity runs.
  EXPECT_TRUE(CoreSparsePerm::from_dense(reverse_perm(6))
                  .identity_runs()
                  .empty());
}

TEST(CoreSparsePerm, FromDenseValidates) {
  EXPECT_THROW(CoreSparsePerm::from_dense(std::vector<std::int32_t>{0, 0}),
               std::logic_error);
  EXPECT_THROW(CoreSparsePerm::from_dense(std::vector<std::int32_t>{2, 0}),
               std::logic_error);
  EXPECT_THROW(CoreSparsePerm::from_dense(std::vector<std::int32_t>{-1, 0}),
               std::logic_error);
  EXPECT_THROW(CoreSparsePerm::identity(-1), std::logic_error);
  std::vector<std::int32_t> two(2);
  EXPECT_THROW(CoreSparsePerm::identity(3).to_dense_into(two),
               std::logic_error);
}

TEST(CoreSparsePerm, CoreExceedsAgreesWithCoreSizeOf) {
  Rng rng(11);
  for (int rep = 0; rep < 100; ++rep) {
    const std::int64_t n = rng.next_below(64);
    const auto p = rep % 2 == 0 ? rng.permutation(n)
                                : near_identity_perm(
                                      n, 1, std::min<std::int64_t>(n, 6), rng);
    const std::int64_t core = core_size_of(p);
    for (const std::int64_t limit : {std::int64_t{-1}, std::int64_t{0},
                                     core - 1, core, core + 1, n}) {
      EXPECT_EQ(core_exceeds(p, limit), core > limit)
          << "n=" << n << " core=" << core << " limit=" << limit;
    }
  }
}

TEST(CoreSparsePerm, PermCoreHelpersCountOffIdentityRows) {
  EXPECT_EQ(Perm::identity(8).core_size(), 0);
  EXPECT_EQ(Perm::identity(8).core_density(), 0.0);
  EXPECT_EQ(Perm::reverse(8).core_size(), 8);
  EXPECT_EQ(Perm::reverse(8).core_density(), 1.0);
  EXPECT_EQ(Perm().core_size(), 0);
  EXPECT_EQ(Perm().core_density(), 0.0);
  // Empty (kNone) rows differ from the identity pattern and count as core.
  Perm sub(4, 4);
  sub.set(0, 0);
  sub.set(2, 1);
  EXPECT_EQ(sub.core_size(), 3);  // rows 1, 3 empty; row 2 off-diagonal
  EXPECT_EQ(sub.core_density(), 0.75);
  // Agreement with the raw-span helper on full permutations.
  Rng rng(13);
  for (int rep = 0; rep < 20; ++rep) {
    const Perm p = Perm::random(1 + rng.next_below(50), rng);
    EXPECT_EQ(p.core_size(), core_size_of(p.row_to_col()));
  }
}

// ---------------------------------------------------------------------------
// core_sparse_multiply vs. the dense oracle.
// ---------------------------------------------------------------------------

TEST(CoreSparseMultiply, ExhaustiveSmallPermutations) {
  for (int n = 0; n <= 5; ++n) {
    const auto perms = all_permutations(n);
    for (const auto& pa : perms) {
      for (const auto& pb : perms) {
        const auto got = core_sparse_multiply(CoreSparsePerm::from_dense(pa),
                                              CoreSparsePerm::from_dense(pb),
                                              oracle_block_solver());
        ASSERT_EQ(got.to_dense(), oracle_engine().multiply_raw(pa, pb))
            << "n=" << n;
      }
    }
  }
}

// The headline differential fuzz: >= 1000 cases over random, near-identity,
// block-shuffled and adversarial dense-core shapes (plus n = 0/1 above).
TEST(CoreSparseMultiply, MatchesDenseOracleFuzz) {
  Rng rng(20260808);
  int cases = 0;
  const auto check = [&](const std::vector<std::int32_t>& a,
                         const std::vector<std::int32_t>& b) {
    const auto got = core_sparse_multiply(CoreSparsePerm::from_dense(a),
                                          CoreSparsePerm::from_dense(b),
                                          oracle_block_solver());
    ASSERT_EQ(got.to_dense(), oracle_engine().multiply_raw(a, b))
        << "n=" << a.size();
    ++cases;
  };
  for (const std::int64_t n : {2, 3, 5, 16, 17, 33, 64, 100, 129, 256}) {
    const auto shapes = [&](int which) -> std::vector<std::int32_t> {
      switch (which % 5) {
        case 0:
          return rng.permutation(n);
        case 1:
          return near_identity_perm(n, 1, std::min<std::int64_t>(n, 4), rng);
        case 2:
          return near_identity_perm(n, 3, std::min<std::int64_t>(n, 8), rng);
        case 3:
          return long_swap_perm(n);
        default:
          return n > 1 && rng.next_below(2) == 0 ? reverse_perm(n)
                                                 : identity_raw(n);
      }
    };
    for (int rep = 0; rep < 95; ++rep) {
      check(shapes(rep), shapes(rep + rng.next_below(5)));
    }
  }
  // Identity absorption: id ⊡ X == X == X ⊡ id, with zero dense blocks.
  for (int rep = 0; rep < 60; ++rep) {
    const std::int64_t n = 1 + rng.next_below(128);
    const auto x = rng.permutation(n);
    int dense_calls = 0;
    const DenseBlockSolver counting =
        [&](std::span<const std::int32_t> a, std::span<const std::int32_t> b,
            std::span<std::int32_t> out) {
          ++dense_calls;
          oracle_engine().multiply_into(a, b, out);
        };
    const auto sx = CoreSparsePerm::from_dense(x);
    const auto id = CoreSparsePerm::identity(n);
    EXPECT_EQ(core_sparse_multiply(id, sx, counting).to_dense(), x);
    EXPECT_EQ(core_sparse_multiply(sx, id, counting).to_dense(), x);
    EXPECT_EQ(dense_calls, 0);
    cases += 2;
  }
  EXPECT_GE(cases, 1000) << "differential battery shrank below the floor";
}

TEST(CoreSparseMultiply, DisjointCoresNeverPayADenseSolve) {
  // a's core lives in [0, 8), b's in [24, 32): every block is one-sided,
  // so the callback must never fire and the product is the overlay.
  Rng rng(99);
  auto a = identity_raw(32);
  shuffle_window(a, 0, 8, rng);
  auto b = identity_raw(32);
  shuffle_window(b, 24, 8, rng);
  int dense_calls = 0;
  const DenseBlockSolver counting =
      [&](std::span<const std::int32_t> da, std::span<const std::int32_t> db,
          std::span<std::int32_t> out) {
        ++dense_calls;
        oracle_engine().multiply_into(da, db, out);
      };
  const auto got = core_sparse_multiply(CoreSparsePerm::from_dense(a),
                                        CoreSparsePerm::from_dense(b),
                                        counting);
  EXPECT_EQ(dense_calls, 0);
  EXPECT_EQ(got.to_dense(), oracle_engine().multiply_raw(a, b));
}

TEST(CoreSparseMultiply, InteractingClustersPayOneBlockEach) {
  // Both cores perturb the same two windows; everything else is identity,
  // so exactly the two shared windows reach the dense solver, each as a
  // block no larger than the window.
  Rng rng(7);
  auto a = identity_raw(256);
  auto b = identity_raw(256);
  for (const std::int64_t start : {std::int64_t{10}, std::int64_t{200}}) {
    shuffle_window(a, start, 8, rng);
    shuffle_window(b, start, 8, rng);
  }
  int dense_calls = 0;
  std::size_t max_block = 0;
  const DenseBlockSolver counting =
      [&](std::span<const std::int32_t> da, std::span<const std::int32_t> db,
          std::span<std::int32_t> out) {
        ++dense_calls;
        max_block = std::max(max_block, da.size());
        oracle_engine().multiply_into(da, db, out);
      };
  const auto got = core_sparse_multiply(CoreSparsePerm::from_dense(a),
                                        CoreSparsePerm::from_dense(b),
                                        counting);
  EXPECT_LE(dense_calls, 2);
  EXPECT_LE(max_block, 8u);
  EXPECT_EQ(got.to_dense(), oracle_engine().multiply_raw(a, b));
}

TEST(CoreSparseMultiply, DefaultOverloadUsesTheThreadLocalEngine) {
  Rng rng(3);
  const auto a = near_identity_perm(100, 2, 6, rng);
  const auto b = rng.permutation(100);
  const auto got = core_sparse_multiply(CoreSparsePerm::from_dense(a),
                                        CoreSparsePerm::from_dense(b));
  EXPECT_EQ(got.to_dense(), oracle_engine().multiply_raw(a, b));
}

TEST(CoreSparseMultiply, SizeMismatchThrows) {
  EXPECT_THROW(core_sparse_multiply(CoreSparsePerm::identity(3),
                                    CoreSparsePerm::identity(4)),
               std::logic_error);
}

// ---------------------------------------------------------------------------
// The engine's density-adaptive dispatch.
// ---------------------------------------------------------------------------

TEST(CoreSparseEngine, RejectsOutOfRangeOptions) {
  EXPECT_THROW(SeaweedEngine({.core_density_cutoff = -0.1}), std::logic_error);
  EXPECT_THROW(SeaweedEngine({.core_density_cutoff = 1.5}), std::logic_error);
  EXPECT_THROW(SeaweedEngine({.core_density_cutoff =
                                  std::numeric_limits<double>::quiet_NaN()}),
               std::logic_error);
  EXPECT_THROW(SeaweedEngine({.core_probe_min_n = 1}), std::logic_error);
  EXPECT_THROW(SeaweedEngine({.core_probe_min_n = 0}), std::logic_error);
  EXPECT_THROW(SeaweedEngine({.core_probe_min_n = -5}), std::logic_error);
  // Boundary values are legal and echoed verbatim, never clamped.
  const SeaweedEngine off({.core_density_cutoff = 0.0});
  EXPECT_EQ(off.options().core_density_cutoff, 0.0);
  const SeaweedEngine max({.core_density_cutoff = 1.0, .core_probe_min_n = 2});
  EXPECT_EQ(max.options().core_density_cutoff, 1.0);
  EXPECT_EQ(max.options().core_probe_min_n, 2);
}

// The adaptive engine vs. the cutoff-0 oracle across every shape family
// and knob mix — the engine-level half of the >= 1000-case battery. An
// aggressive probe configuration (cutoff 1.0, probe from n = 2) maximizes
// block-path traffic; the default configuration checks the shipped knobs.
TEST(CoreSparseEngine, AdaptiveMatchesDenseOracleFuzz) {
  Rng rng(20260809);
  int cases = 0;
  SeaweedEngine aggressive({.base_case_cutoff = 1,
                            .core_density_cutoff = 1.0,
                            .core_probe_min_n = 2});
  SeaweedEngine shipped{};  // default knobs
  const auto check = [&](const std::vector<std::int32_t>& a,
                         const std::vector<std::int32_t>& b) {
    const auto want = oracle_engine().multiply_raw(a, b);
    ASSERT_EQ(aggressive.multiply_raw(a, b), want) << "n=" << a.size();
    ASSERT_EQ(shipped.multiply_raw(a, b), want) << "n=" << a.size();
    cases += 2;
  };
  for (const std::int64_t n : {2, 3, 8, 31, 64, 65, 128, 200, 256}) {
    for (int rep = 0; rep < 56; ++rep) {
      const auto shape = [&](int which) -> std::vector<std::int32_t> {
        switch (which % 5) {
          case 0:
            return rng.permutation(n);
          case 1:
            return near_identity_perm(n, 1, std::min<std::int64_t>(n, 4),
                                      rng);
          case 2:
            return near_identity_perm(n, 4, std::min<std::int64_t>(n, 16),
                                      rng);
          case 3:
            return long_swap_perm(n);
          default:
            return identity_raw(n);
        }
      };
      check(shape(rep), shape(rep + 1 + rng.next_below(4)));
    }
  }
  EXPECT_GE(cases, 1000);
}

TEST(CoreSparseEngine, SubunitPathsMatchOracleAcrossDensities) {
  Rng rng(20260810);
  SeaweedEngine adaptive({.core_density_cutoff = 1.0, .core_probe_min_n = 2});
  int cases = 0;
  for (int rep = 0; rep < 120; ++rep) {
    const std::int64_t ra = rng.next_below(40);
    const std::int64_t n2 = rng.next_below(40);
    const std::int64_t bc = rng.next_below(40);
    const std::int64_t ka = std::min(ra, n2) == 0
                                ? 0
                                : rng.next_below(std::min(ra, n2) + 1);
    const std::int64_t kb = std::min(n2, bc) == 0
                                ? 0
                                : rng.next_below(std::min(n2, bc) + 1);
    const auto a = Perm::random_sub(ra, n2, ka, rng).row_to_col();
    const auto b = Perm::random_sub(n2, bc, kb, rng).row_to_col();
    EXPECT_EQ(adaptive.subunit_multiply_raw(a, b, bc),
              oracle_engine().subunit_multiply_raw(a, b, bc))
        << "ra=" << ra << " n2=" << n2 << " bc=" << bc;
    ++cases;
  }
  // Near-identity square subunit inputs: the padded core solve sees tiny
  // cores and must take the block path (counter check below relies on it).
  for (int rep = 0; rep < 40; ++rep) {
    const std::int64_t n = 80 + rng.next_below(80);
    auto a = near_identity_perm(n, 2, 6, rng);
    auto b = near_identity_perm(n, 2, 6, rng);
    EXPECT_EQ(adaptive.subunit_multiply_raw(a, b, n),
              oracle_engine().subunit_multiply_raw(a, b, n));
    ++cases;
  }
  EXPECT_GE(cases, 160);
}

TEST(CoreSparseEngine, BatchEntryPointsMatchPerPairSolves) {
  Rng rng(20260811);
  for (const int threads : {0, 2, 4}) {
    std::unique_ptr<ThreadPool> pool;
    SeaweedEngineOptions opt{.core_density_cutoff = 0.5,
                             .core_probe_min_n = 8};
    if (threads > 0) {
      pool = std::make_unique<ThreadPool>(threads);
      opt.pool = pool.get();
      opt.parallel_grain = 16;
    }
    SeaweedEngine adaptive(opt);

    std::vector<std::vector<std::int32_t>> storage;
    for (const std::int64_t n : {0, 1, 5, 33, 64, 150}) {
      storage.push_back(rng.permutation(n));
      storage.push_back(near_identity_perm(
          n, 2, std::min<std::int64_t>(n, 8), rng));
      storage.push_back(identity_raw(n));
      storage.push_back(long_swap_perm(n));
    }
    std::vector<PermPairView> pairs;
    for (std::size_t i = 0; i + 1 < storage.size(); i += 2) {
      if (storage[i].size() == storage[i + 1].size()) {
        pairs.push_back({storage[i], storage[i + 1]});
      }
    }
    const auto got = adaptive.multiply_raw_batch(pairs);
    ASSERT_EQ(got.size(), pairs.size());
    for (std::size_t i = 0; i < pairs.size(); ++i) {
      EXPECT_EQ(got[i],
                oracle_engine().multiply_raw(pairs[i].first, pairs[i].second))
          << "pair " << i << " threads=" << threads;
    }
  }
}

TEST(CoreSparseEngine, CountersTrackDispatchDecisions) {
  // Sparse input at probing size: the block path must fire and copy.
  SeaweedEngine adaptive({.core_density_cutoff = 0.25,
                          .core_probe_min_n = 64});
  Rng rng(20260812);
  const std::int64_t n = 4096;
  const auto a = near_identity_perm(n, 3, 8, rng);
  const auto b = near_identity_perm(n, 3, 8, rng);
  const auto before = adaptive.representation_stats();
  const auto got = adaptive.multiply_raw(a, b);
  const auto delta = adaptive.representation_stats() - before;
  EXPECT_EQ(got, oracle_engine().multiply_raw(a, b));
  EXPECT_GT(delta.core_sparse_nodes, 0);
  EXPECT_GT(delta.blocks_copied + delta.blocks_dense, 0);

  // Dense random input: the probe must bail out at every node.
  const auto before_dense = adaptive.representation_stats();
  adaptive.multiply_raw(rng.permutation(n), rng.permutation(n));
  const auto dense_delta = adaptive.representation_stats() - before_dense;
  EXPECT_GT(dense_delta.dense_nodes, 0);
  EXPECT_EQ(dense_delta.core_sparse_nodes, 0);
  EXPECT_EQ(dense_delta.blocks_copied, 0);
  EXPECT_EQ(dense_delta.blocks_dense, 0);

  // cutoff 0 never probes, so it never counts.
  const auto oracle_before = oracle_engine().representation_stats();
  oracle_engine().multiply_raw(a, b);
  EXPECT_EQ(oracle_engine().representation_stats() - oracle_before,
            RepresentationStats{});
}

TEST(CoreSparseEngine, ResultsAndCountersDeterministicUnderThreadCounts) {
  Rng rng(20260813);
  const std::int64_t n = 2048;
  const auto a = near_identity_perm(n, 4, 16, rng);
  const auto b = near_identity_perm(n, 4, 16, rng);
  const auto want = oracle_engine().multiply_raw(a, b);

  RepresentationStats first{};
  bool have_first = false;
  for (const int threads : {1, 2, 3, 4}) {
    ThreadPool pool(threads);
    SeaweedEngine engine({.parallel_grain = 64,
                          .pool = &pool,
                          .core_density_cutoff = 0.25,
                          .core_probe_min_n = 64});
    const auto before = engine.representation_stats();
    EXPECT_EQ(engine.multiply_raw(a, b), want) << "threads=" << threads;
    const auto delta = engine.representation_stats() - before;
    if (!have_first) {
      first = delta;
      have_first = true;
    } else {
      EXPECT_EQ(delta, first) << "threads=" << threads;
    }
  }
  EXPECT_GT(first.core_sparse_nodes, 0);
}

TEST(CoreSparseEngine, SubunitNearIdentityTakesTheBlockPath) {
  SeaweedEngine adaptive({.core_density_cutoff = 0.25,
                          .core_probe_min_n = 64});
  Rng rng(20260814);
  const std::int64_t n = 1024;
  const auto a = near_identity_perm(n, 2, 6, rng);
  const auto b = near_identity_perm(n, 2, 6, rng);
  const auto before = adaptive.representation_stats();
  const auto got = adaptive.subunit_multiply_raw(a, b, n);
  const auto delta = adaptive.representation_stats() - before;
  EXPECT_EQ(got, oracle_engine().subunit_multiply_raw(a, b, n));
  EXPECT_GT(delta.core_sparse_nodes, 0)
      << "the padded subunit core solve should probe sparse";
}

// ---------------------------------------------------------------------------
// Solver threading: the knob and the per-solve representation delta.
// ---------------------------------------------------------------------------

TEST(CoreSparseSolver, ReportCarriesPerSolveRepresentationDelta) {
  Solver solver({.engine = {.core_density_cutoff = 0.25,
                            .core_probe_min_n = 64}});
  Rng rng(20260815);
  const std::int64_t n = 2048;

  MultiplyRequest sparse_req;
  sparse_req.a = Perm::from_rows(near_identity_perm(n, 3, 8, rng), n);
  sparse_req.b = Perm::from_rows(near_identity_perm(n, 3, 8, rng), n);
  const auto sparse_res = solver.try_solve(sparse_req);
  ASSERT_TRUE(sparse_res.ok());
  EXPECT_GT(sparse_res.report.representation.core_sparse_nodes, 0);

  MultiplyRequest dense_req;
  dense_req.a = Perm::random(n, rng);
  dense_req.b = Perm::random(n, rng);
  const auto dense_res = solver.try_solve(dense_req);
  ASSERT_TRUE(dense_res.ok());
  // A per-request delta, not a lifetime total: the sparse request's
  // decisions must not leak into this report.
  EXPECT_EQ(dense_res.report.representation.core_sparse_nodes, 0);
  EXPECT_GT(dense_res.report.representation.dense_nodes, 0);

  // Knob off through SolverOptions: all-zero representation stats.
  Solver dense_only({.engine = {.core_density_cutoff = 0.0}});
  const auto off_res = dense_only.try_solve(sparse_req);
  ASSERT_TRUE(off_res.ok());
  EXPECT_EQ(off_res.report.representation, RepresentationStats{});
  EXPECT_EQ(off_res.value.c, sparse_res.value.c);
}

TEST(CoreSparseSolver, LisKernelRouteOptsInAutomatically) {
  // A nearly sorted sequence rank-reduces to a near-identity permutation;
  // the level-order kernel merges must hit the block path with no caller
  // changes beyond the engine knob.
  Solver solver({.engine = {.core_density_cutoff = 0.25,
                            .core_probe_min_n = 64}});
  LisRequest req;
  req.seq.resize(4096);
  std::iota(req.seq.begin(), req.seq.end(), 0);
  std::swap(req.seq[100], req.seq[101]);
  std::swap(req.seq[3000], req.seq[3007]);
  req.want_kernel = true;
  const auto res = solver.try_solve(req);
  ASSERT_TRUE(res.ok());
  EXPECT_EQ(res.value.lis, lis::lis_length(req.seq));
  EXPECT_GT(res.report.representation.core_sparse_nodes, 0);
}

// ---------------------------------------------------------------------------
// Satellite: the LCS match-limit guard, aligned across single and batch.
// ---------------------------------------------------------------------------

TEST(CoreSparseSolver, LcsMatchLimitValidation) {
  EXPECT_THROW(Solver({.lcs_engine_match_limit = 0}), InvalidRequestError);
  EXPECT_THROW(Solver({.lcs_engine_match_limit = -3}), InvalidRequestError);
  EXPECT_THROW(Solver({.lcs_engine_match_limit = kSeaweedEngineMaxN + 1}),
               InvalidRequestError);
  const Solver ok({.lcs_engine_match_limit = 5});
  EXPECT_EQ(ok.options().lcs_engine_match_limit, 5);
}

TEST(CoreSparseSolver, LcsMatchLimitAlignsSingleAndBatchAcrossBackends) {
  // Requests straddling the limit: fallback groups and engine groups must
  // produce identical answers on every route, single or batched.
  std::vector<LcsRequest> reqs;
  reqs.push_back({.s = {1, 2, 3, 4, 5, 6}, .t = {1, 2, 3, 4, 5, 6}});
  reqs.push_back({.s = {1, 1, 2, 2}, .t = {1, 2, 1, 2}});  // 8 matches
  reqs.push_back({.s = {7, 8, 9}, .t = {9, 8, 7}});        // 3 matches
  reqs.push_back({.s = {1, 2, 3, 4, 5, 6}, .t = {1, 2, 3, 4, 5, 6}});
  reqs.push_back({.s = {5, 5, 5}, .t = {6, 7}});           // 0 matches

  Solver reference({.backend = SolverBackend::kReference});
  std::vector<std::int64_t> want_lcs;
  std::vector<std::int64_t> want_matches;
  for (const auto& r : reqs) {
    const auto res = reference.solve(r);
    want_lcs.push_back(res.lcs);
    want_matches.push_back(res.matches);
  }

  for (const std::int64_t limit : {1, 4, 7, 1 << 20}) {
    Solver seq({.lcs_engine_match_limit = limit});
    const auto batch = seq.solve_batch(std::span<const LcsRequest>(reqs));
    for (std::size_t i = 0; i < reqs.size(); ++i) {
      EXPECT_EQ(batch[i].lcs, want_lcs[i]) << "limit=" << limit << " i=" << i;
      EXPECT_EQ(batch[i].matches, want_matches[i]);
      const auto single = seq.solve(reqs[i]);
      EXPECT_EQ(single.lcs, want_lcs[i]);
      EXPECT_EQ(single.matches, want_matches[i]);
    }
  }
}

TEST(CoreSparseSolver, MpcSimLcsFallsBackToPatiencePastTheLimit) {
  // PR 7 added the patience fallback only to the Sequential batch
  // grouping; a single MpcSim request past the limit used to march into
  // the cluster and throw from the engine's size guard. Now it degrades
  // to patience with zero rounds, like the batch grouping does.
  LcsRequest big;
  big.s = {1, 2, 3, 4, 5, 6, 7, 8};
  big.t = {1, 2, 3, 4, 5, 6, 7, 8};  // 8 matches

  Solver limited({.backend = SolverBackend::kMpcSim,
                  .lcs_engine_match_limit = 4});
  const auto res = limited.solve(big);
  EXPECT_EQ(res.lcs, 8);
  EXPECT_EQ(res.matches, 8);
  EXPECT_EQ(res.rounds, 0) << "no cluster work should have happened";
  EXPECT_EQ(limited.cluster(), nullptr)
      << "the fallback must not provision a cluster";

  // Under the limit the cluster route runs and reports rounds.
  Solver unlimited({.backend = SolverBackend::kMpcSim});
  const auto on_cluster = unlimited.solve(big);
  EXPECT_EQ(on_cluster.lcs, 8);
  EXPECT_GT(on_cluster.rounds, 0);
  EXPECT_NE(unlimited.cluster(), nullptr);
}

}  // namespace
}  // namespace monge
