#include "mpc/cluster.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <numeric>
#include <string>

#include "mpc/dist_vector.h"

namespace monge::mpc {
namespace {

MpcConfig small_config(std::int64_t machines, std::int64_t space = 1 << 20,
                       bool strict = true) {
  MpcConfig cfg;
  cfg.num_machines = machines;
  cfg.space_words = space;
  cfg.strict = strict;
  cfg.threads = 2;
  return cfg;
}

TEST(Cluster, CountsRounds) {
  Cluster c(small_config(4));
  EXPECT_EQ(c.rounds(), 0);
  for (int i = 0; i < 5; ++i) c.run_round([](MachineCtx&) {});
  EXPECT_EQ(c.rounds(), 5);
  c.reset_stats();
  EXPECT_EQ(c.rounds(), 0);
}

TEST(Cluster, DeliversMessagesNextRound) {
  Cluster c(small_config(3));
  c.run_round([](MachineCtx& mc) {
    if (mc.id() == 0) mc.send(2, 7, {10, 20});
    EXPECT_TRUE(mc.inbox().empty());  // nothing in flight yet
  });
  c.run_round([](MachineCtx& mc) {
    if (mc.id() == 2) {
      ASSERT_EQ(mc.inbox().size(), 1u);
      EXPECT_EQ(mc.inbox()[0].from, 0);
      EXPECT_EQ(mc.inbox()[0].tag, 7);
      EXPECT_EQ(mc.inbox()[0].payload, (std::vector<Word>{10, 20}));
    } else {
      EXPECT_TRUE(mc.inbox().empty());
    }
  });
  // Mailboxes are cleared after consumption.
  c.run_round([](MachineCtx& mc) { EXPECT_TRUE(mc.inbox().empty()); });
}

TEST(Cluster, DeliveryOrderedBySender) {
  Cluster c(small_config(8));
  c.run_round([](MachineCtx& mc) {
    if (mc.id() > 0) mc.send(0, mc.id(), {mc.id()});
  });
  c.run_round([](MachineCtx& mc) {
    if (mc.id() != 0) return;
    ASSERT_EQ(mc.inbox().size(), 7u);
    for (std::size_t k = 0; k < 7; ++k) {
      EXPECT_EQ(mc.inbox()[k].from, static_cast<std::int64_t>(k) + 1);
    }
  });
}

TEST(Cluster, TypedSendRoundTrip) {
  struct Pair {
    std::int32_t a;
    std::int32_t b;
  };
  Cluster c(small_config(2));
  const std::vector<Pair> sent = {{1, 2}, {3, 4}, {-5, 6}};
  c.run_round([&](MachineCtx& mc) {
    if (mc.id() == 0) mc.send_items<Pair>(1, 0, sent);
  });
  c.run_round([&](MachineCtx& mc) {
    if (mc.id() != 1) return;
    ASSERT_EQ(mc.inbox().size(), 1u);
    const auto got = mc.inbox()[0].decode<Pair>();
    ASSERT_EQ(got.size(), 3u);
    for (std::size_t i = 0; i < 3; ++i) {
      EXPECT_EQ(got[i].a, sent[i].a);
      EXPECT_EQ(got[i].b, sent[i].b);
    }
  });
}

TEST(Cluster, StrictModeRejectsOversizedTraffic) {
  Cluster c(small_config(2, /*space=*/16, /*strict=*/true));
  EXPECT_THROW(c.run_round([](MachineCtx& mc) {
    if (mc.id() == 0) mc.send(1, 0, std::vector<Word>(100, 1));
  }),
               SpaceLimitError);
}

TEST(Cluster, LenientModeAllowsOversizedTraffic) {
  Cluster c(small_config(2, /*space=*/16, /*strict=*/false));
  EXPECT_NO_THROW(c.run_round([](MachineCtx& mc) {
    if (mc.id() == 0) mc.send(1, 0, std::vector<Word>(100, 1));
  }));
  c.run_round([](MachineCtx&) {});
  EXPECT_GT(c.stats().max_machine_words, 16);
}

TEST(Cluster, SpaceErrorCarriesDiagnostics) {
  Cluster c(small_config(2, 16, true));
  try {
    c.run_round([](MachineCtx& mc) {
      if (mc.id() == 1) mc.send(0, 0, std::vector<Word>(50, 0));
    });
    FAIL() << "expected SpaceLimitError";
  } catch (const SpaceLimitError& e) {
    EXPECT_EQ(e.machine(), 1);
    EXPECT_EQ(e.limit(), 16);
    EXPECT_GE(e.words(), 50);
  }
}

TEST(Cluster, TracksCommunicationTotals) {
  Cluster c(small_config(4));
  c.run_round([](MachineCtx& mc) { mc.send((mc.id() + 1) % 4, 0, {1, 2, 3}); });
  c.run_round([](MachineCtx&) {});
  // 4 messages * (3 payload + 2 envelope) words.
  EXPECT_EQ(c.stats().total_comm_words, 4 * 5);
}

TEST(Cluster, ResidentAuditing) {
  Cluster c(small_config(2, /*space=*/64, /*strict=*/true));
  {
    DistVector<std::int64_t> dv(c, 100);  // 50 words per machine
    EXPECT_EQ(c.resident_words(0), 50);
    EXPECT_NO_THROW(c.run_round([](MachineCtx&) {}));
    DistVector<std::int64_t> dv2(c, 60);  // +30 words -> 80 > 64
    EXPECT_THROW(c.run_round([](MachineCtx&) {}), SpaceLimitError);
  }
  // Auditors unregistered on destruction.
  EXPECT_EQ(c.resident_words(0), 0);
  EXPECT_NO_THROW(c.run_round([](MachineCtx&) {}));
}

TEST(Cluster, FullyScalableConfigShapes) {
  const auto cfg = MpcConfig::fully_scalable(1 << 20, 0.5);
  EXPECT_EQ(cfg.num_machines, 1 << 10);
  EXPECT_GT(cfg.space_words, 1 << 10);
  // Machines grow with delta, space shrinks.
  const auto hi = MpcConfig::fully_scalable(1 << 20, 0.7);
  EXPECT_GT(hi.num_machines, cfg.num_machines);
  EXPECT_LT(hi.space_words, cfg.space_words);
}

TEST(DistVectorTest, LayoutCoversAllIndices) {
  for (std::int64_t m : {1, 2, 3, 7, 10}) {
    for (std::int64_t n : {0, 1, 5, 9, 10, 23, 100}) {
      BlockLayout layout{n, m};
      std::int64_t covered = 0;
      for (std::int64_t i = 0; i < m; ++i) {
        EXPECT_EQ(layout.hi(i) - layout.lo(i), layout.size(i));
        covered += layout.size(i);
      }
      EXPECT_EQ(covered, n);
      for (std::int64_t idx = 0; idx < n; ++idx) {
        const std::int64_t o = layout.owner(idx);
        EXPECT_LE(layout.lo(o), idx);
        EXPECT_LT(idx, layout.hi(o));
      }
    }
  }
}

TEST(DistVectorTest, HostRoundTrip) {
  Cluster c(small_config(5));
  std::vector<std::int64_t> data(123);
  std::iota(data.begin(), data.end(), -17);
  auto dv = DistVector<std::int64_t>::from_host(c, data);
  EXPECT_TRUE(dv.is_balanced());
  EXPECT_EQ(dv.to_host(), data);
}

TEST(ClusterValidation, RejectsBadConfigsAtConstruction) {
  EXPECT_THROW(Cluster{small_config(0)}, InvalidRequestError);
  EXPECT_THROW(Cluster{small_config(-3)}, InvalidRequestError);
  EXPECT_THROW(Cluster{small_config(2, /*space=*/0)}, InvalidRequestError);

  MpcConfig cfg = small_config(2);
  cfg.checkpoint_interval = 0;
  EXPECT_THROW(Cluster{cfg}, InvalidRequestError);

  cfg = small_config(2);
  cfg.faults.crash_prob = std::nan("");
  EXPECT_THROW(Cluster{cfg}, InvalidRequestError);

  cfg = small_config(2);
  cfg.faults.drop_prob = 1.5;
  EXPECT_THROW(Cluster{cfg}, InvalidRequestError);

  cfg = small_config(2);
  cfg.faults.corrupt_prob = -0.25;
  EXPECT_THROW(Cluster{cfg}, InvalidRequestError);

  cfg = small_config(2);
  cfg.faults.max_round_retries = -1;
  EXPECT_THROW(Cluster{cfg}, InvalidRequestError);

  cfg = small_config(2);
  cfg.faults.scheduled.push_back({/*round=*/0, /*machine=*/2,
                                  FaultKind::kCrash});  // out of range
  EXPECT_THROW(Cluster{cfg}, InvalidRequestError);

  cfg = small_config(2);
  cfg.faults.scheduled.push_back({/*round=*/-1, /*machine=*/0,
                                  FaultKind::kCrash});
  EXPECT_THROW(Cluster{cfg}, InvalidRequestError);
}

TEST(ClusterValidation, FullyScalableRejectsBadKnobs) {
  EXPECT_THROW(MpcConfig::fully_scalable(0, 0.5), InvalidRequestError);
  EXPECT_THROW(MpcConfig::fully_scalable(1 << 10, 0.0), InvalidRequestError);
  EXPECT_THROW(MpcConfig::fully_scalable(1 << 10, 1.0), InvalidRequestError);
  EXPECT_THROW(MpcConfig::fully_scalable(1 << 10, std::nan("")),
               InvalidRequestError);
  EXPECT_THROW(MpcConfig::fully_scalable(1 << 10, 0.5, 0.0),
               InvalidRequestError);
  EXPECT_THROW(MpcConfig::fully_scalable(1 << 10, 0.5, std::nan("")),
               InvalidRequestError);
  EXPECT_THROW(
      MpcConfig::fully_scalable(1 << 10, 0.5,
                                std::numeric_limits<double>::infinity()),
      InvalidRequestError);
  EXPECT_NO_THROW(MpcConfig::fully_scalable(1 << 10, 0.5));
}

TEST(Cluster, ClosureErrorsSurfaceLowestMachineDeterministically) {
  // Two machines fail in the same round; the surfaced exception must be
  // machine 1's on every execution, regardless of pool scheduling.
  Cluster c(small_config(4));
  for (int it = 0; it < 25; ++it) {
    try {
      c.run_round([](MachineCtx& mc) {
        if (mc.id() == 1 || mc.id() == 3) {
          throw std::runtime_error("boom from machine " +
                                   std::to_string(mc.id()));
        }
      });
      FAIL() << "expected the closure error to propagate";
    } catch (const std::runtime_error& e) {
      EXPECT_STREQ(e.what(), "boom from machine 1");
    }
  }
}

TEST(Cluster, TwoOverBudgetMachinesReportTheLowerId) {
  // Satellite regression: simultaneous budget overruns on machines 1 and 3
  // must always cite machine 1.
  Cluster c(small_config(4, /*space=*/16, /*strict=*/true));
  for (int it = 0; it < 25; ++it) {
    try {
      c.run_round([](MachineCtx& mc) {
        if (mc.id() == 1 || mc.id() == 3) {
          mc.send(mc.id(), 0, std::vector<Word>(100, 1));
        }
      });
      FAIL() << "expected SpaceLimitError";
    } catch (const SpaceLimitError& e) {
      EXPECT_EQ(e.machine(), 1);
    }
  }
}

TEST(ClusterChaos, ScheduledCrashRecoversBitIdentically) {
  // A ring computation over a registered DistVector: each round, machine i
  // adds its inbox word into its shard and forwards its running sum.
  const auto run = [](FaultPlan fp) {
    MpcConfig cfg = small_config(4);
    cfg.faults = std::move(fp);
    Cluster c(cfg);
    std::vector<std::int64_t> init(32);
    std::iota(init.begin(), init.end(), 1);
    auto dv = DistVector<std::int64_t>::from_host(c, init);
    for (int r = 0; r < 4; ++r) {
      c.run_round([&](MachineCtx& mc) {
        const std::int64_t i = mc.id();
        std::int64_t got = 0;
        for (const Message& msg : mc.inbox()) got += msg.payload.at(0);
        auto& shard = dv.local(i);
        std::int64_t sum = 0;
        for (auto& x : shard) {
          x += got;
          sum += x;
        }
        mc.send((i + 1) % mc.machines(), 0, {sum});
      });
    }
    return std::make_pair(dv.to_host(), c.stats());
  };

  const auto [clean, clean_stats] = run(FaultPlan{});
  FaultPlan fp;
  fp.scheduled.push_back({/*round=*/2, /*machine=*/1, FaultKind::kCrash});
  const auto [chaos, chaos_stats] = run(fp);

  // Bit-identical output, identical paper-side accounting.
  EXPECT_EQ(chaos, clean);
  EXPECT_EQ(chaos_stats.rounds, clean_stats.rounds);
  EXPECT_EQ(chaos_stats.total_comm_words, clean_stats.total_comm_words);
  // Recovery strictly on the recovery ledger.
  EXPECT_EQ(clean_stats.recovery, RecoveryStats{});
  EXPECT_EQ(chaos_stats.recovery.crashes_recovered, 1);
  EXPECT_GE(chaos_stats.recovery.recovery_rounds, 1);
  EXPECT_GE(chaos_stats.recovery.checkpoints, 4);
  EXPECT_GT(chaos_stats.recovery.checkpoint_words, 0);
  EXPECT_GT(chaos_stats.recovery.recovery_comm_words, 0);
}

TEST(ClusterChaos, CrashWithoutFreshCheckpointIsUnrecoverable) {
  MpcConfig cfg = small_config(2);
  cfg.checkpoint_interval = 2;  // rounds 0, 2, ... are checkpointed
  cfg.faults.scheduled.push_back({/*round=*/1, /*machine=*/0,
                                  FaultKind::kCrash});
  Cluster c(cfg);
  EXPECT_NO_THROW(c.run_round([](MachineCtx&) {}));  // round 0
  try {
    c.run_round([](MachineCtx&) {});  // round 1: crash, no round-1 snapshot
    FAIL() << "expected FaultError";
  } catch (const FaultError& e) {
    EXPECT_EQ(e.machine(), 0);
    EXPECT_EQ(e.round(), 1);
    EXPECT_EQ(e.code(), ErrorCode::kFault);
  }
}

TEST(ClusterChaos, RetryBudgetExhaustionThrowsFaultError) {
  MpcConfig cfg = small_config(2);
  cfg.faults.crash_prob = 1.0;  // crash on every attempt
  cfg.faults.max_round_retries = 3;
  Cluster c(cfg);
  EXPECT_THROW(c.run_round([](MachineCtx&) {}), FaultError);
  // The exhausted retries are still accounted.
  EXPECT_EQ(c.stats().recovery.recovery_rounds, 3);
}

TEST(ClusterChaos, CrashWithNonRecoverableResidentIsUnrecoverable) {
  MpcConfig cfg = small_config(2);
  cfg.faults.scheduled.push_back({/*round=*/0, /*machine=*/1,
                                  FaultKind::kCrash});
  Cluster c(cfg);
  // Audit-only registration: words but no checkpoint/restore hooks.
  const std::int64_t id = c.register_resident([](std::int64_t) {
    return std::int64_t{1};
  });
  EXPECT_THROW(c.run_round([](MachineCtx&) {}), FaultError);
  c.unregister_resident(id);
}

TEST(ClusterChaos, MessageFaultsAreMaskedByReliableTransport) {
  MpcConfig cfg = small_config(2);
  cfg.faults.drop_prob = 1.0;
  cfg.faults.duplicate_prob = 1.0;
  cfg.faults.corrupt_prob = 1.0;
  Cluster c(cfg);
  c.run_round([](MachineCtx& mc) {
    if (mc.id() == 0) mc.send(1, 9, {10, 20, 30});
  });
  c.run_round([](MachineCtx& mc) {
    if (mc.id() != 1) return;
    // Delivery is pristine: the transport masked every injected event.
    ASSERT_EQ(mc.inbox().size(), 1u);
    EXPECT_EQ(mc.inbox()[0].payload, (std::vector<Word>{10, 20, 30}));
  });
  EXPECT_EQ(c.stats().recovery.messages_dropped, 1);
  EXPECT_EQ(c.stats().recovery.messages_duplicated, 1);
  EXPECT_EQ(c.stats().recovery.messages_corrupted, 1);
  EXPECT_GT(c.stats().recovery.recovery_comm_words, 0);
  // The paper-side ledger records the message once, as if fault-free.
  EXPECT_EQ(c.stats().total_comm_words, 3 + 2);
}

TEST(ClusterChaos, StragglersAreCountedButHarmless) {
  MpcConfig cfg = small_config(3);
  cfg.faults.straggle_prob = 1.0;
  Cluster c(cfg);
  c.run_round([](MachineCtx&) {});
  c.run_round([](MachineCtx&) {});
  EXPECT_EQ(c.stats().recovery.straggler_delays, 2 * 3);
  EXPECT_EQ(c.stats().rounds, 2);
}

TEST(DistVectorTest, MoveKeepsAuditingConsistent) {
  Cluster c(small_config(2));
  DistVector<std::int64_t> a(c, 100);
  const std::int64_t before = c.resident_words(0);
  DistVector<std::int64_t> b = std::move(a);
  EXPECT_EQ(c.resident_words(0), before);  // no double counting
  DistVector<std::int64_t> d(c, 10);
  d = std::move(b);
  EXPECT_EQ(c.resident_words(0), before);  // old shard of d released
}

}  // namespace
}  // namespace monge::mpc
